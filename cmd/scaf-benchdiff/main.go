// Command scaf-benchdiff gates benchmark regressions in CI: it compares
// a fresh scaf-bench -json report against the committed baseline and
// exits non-zero on any answer-distribution drift or on a >tol p50
// query-work regression.
//
//	scaf-benchdiff [-tol 0.20] results/bench-baseline.json BENCH.json
//
// The gate compares the deterministic module-evals work measure, never
// wall clock, so the committed baseline is valid on any host.
package main

import (
	"flag"
	"fmt"
	"os"

	"scaf/internal/bench"
)

func main() {
	tol := flag.Float64("tol", bench.DefaultWorkTolerance,
		"fractional p50 work regression allowed before failing")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: scaf-benchdiff [-tol 0.20] baseline.json fresh.json")
		os.Exit(2)
	}

	base, err := readReport(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "scaf-benchdiff:", err)
		os.Exit(2)
	}
	fresh, err := readReport(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "scaf-benchdiff:", err)
		os.Exit(2)
	}

	fails := bench.CompareReports(base, fresh, *tol)
	if len(fails) > 0 {
		fmt.Fprintf(os.Stderr, "scaf-benchdiff: %d violation(s) against %s:\n", len(fails), flag.Arg(0))
		for _, f := range fails {
			fmt.Fprintln(os.Stderr, "  -", f)
		}
		os.Exit(1)
	}
	fmt.Printf("scaf-benchdiff: %s matches %s (%d benchmarks, work tolerance %d%%)\n",
		flag.Arg(1), flag.Arg(0), len(base.Benchmarks), int(*tol*100))
}

func readReport(path string) (*bench.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := bench.ReadReport(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}
