// Command scafc compiles an MC source file to IR and prints it, optionally
// with control-flow analyses.
//
// Usage:
//
//	scafc prog.mc            # dump SSA-form IR
//	scafc -loops prog.mc     # also dump the loop forest
//	scafc -run prog.mc       # compile and execute, printing output
package main

import (
	"flag"
	"fmt"
	"os"

	"scaf/internal/cfg"
	"scaf/internal/interp"
	"scaf/internal/ir"
	"scaf/internal/lower"
)

func main() {
	loops := flag.Bool("loops", false, "print the loop forest")
	run := flag.Bool("run", false, "execute the program after compiling")
	steps := flag.Int64("maxsteps", 0, "interpreter instruction budget (0 = default)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: scafc [-loops] [-run] file.mc")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	mod, err := lower.Compile(flag.Arg(0), string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	if *run {
		res, err := interp.Run(mod, interp.Options{MaxSteps: *steps})
		if err != nil {
			fmt.Fprintln(os.Stderr, "runtime error:", err)
			os.Exit(1)
		}
		for _, line := range res.Output {
			fmt.Println(line)
		}
		fmt.Fprintf(os.Stderr, "executed %d instructions\n", res.Steps)
		return
	}
	fmt.Print(ir.FormatModule(mod))
	if *loops {
		prog := cfg.NewProgram(mod)
		fmt.Println("\nloop forest:")
		for _, l := range prog.AllLoops() {
			fmt.Printf("  %-30s depth=%d blocks=%d exits=%d\n",
				l.Name(), l.Depth, len(l.Blocks), len(l.Exits))
		}
	}
}
