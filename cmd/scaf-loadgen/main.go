// Command scaf-loadgen offers an open-loop Poisson workload to a
// scaf-serve instance or a scaf-router fleet and prints a two-section
// report: deterministic counters and digests (a pure function of the seed
// and the served bytes — CI asserts them exactly) and measured throughput
// and latency (machine-dependent, never asserted).
//
//	scaf-loadgen -rate 200 -requests 1000 -seed 42            # in-proc server
//	scaf-loadgen -url http://127.0.0.1:8400 -rate 500 ...     # live fleet
//	scaf-loadgen -saturate -sizes 1,2,4 -rate 300 ...         # fleet sweep
//
// With no -url, a single scaf-serve instance is booted in-process. With
// -saturate, in-process fleets of each requested size (backends + router)
// are booted and swept; -url is ignored.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"scaf/internal/loadgen"
	"scaf/internal/server"
)

func main() {
	url := flag.String("url", "", "target base URL (empty: boot an in-process scaf-serve)")
	rate := flag.Float64("rate", 200, "Poisson arrival rate, requests/second")
	requests := flag.Int("requests", 500, "total scheduled arrivals")
	queryFrac := flag.Float64("query-frac", 0.7, "fraction of arrivals that are /query (rest are /analyze)")
	deadlineFrac := flag.Float64("deadline-frac", 0.1, "fraction of arrivals carrying a deadline")
	deadlineMS := flag.Int64("deadline-ms", 50, "deadline attached to deadlined arrivals")
	seed := flag.Int64("seed", 1, "schedule and mix seed")
	scheme := flag.String("scheme", "scaf", "analysis scheme")
	workers := flag.Int("workers", 4, "in-process server worker count")
	saturate := flag.Bool("saturate", false, "run the fleet saturation sweep instead of a single run")
	sizes := flag.String("sizes", "1,2,4", "fleet sizes for -saturate")
	persist := flag.Bool("persist", false, "with -saturate: drain each fleet to snapshots, reboot warm, and report the warm-boot hit rate")
	membership := flag.Bool("membership", false, "with -saturate: rerun each size with a scripted live join and leave mid-run; digests must match the static run, transfer-window 503s are reported separately")
	jsonOut := flag.String("json", "", "write the report as JSON to this path ('-' for stdout)")
	flag.Parse()

	cfg := loadgen.Config{
		BaseURL:      *url,
		Scheme:       *scheme,
		Rate:         *rate,
		Requests:     *requests,
		QueryFrac:    *queryFrac,
		DeadlineFrac: *deadlineFrac,
		DeadlineMS:   *deadlineMS,
		Seed:         *seed,
	}

	if *membership && !*saturate {
		log.Fatal("scaf-loadgen: -membership requires -saturate")
	}

	var report any
	inconsistent := false
	if *saturate {
		var ns []int
		for _, s := range strings.Split(*sizes, ",") {
			s = strings.TrimSpace(s)
			if s == "" {
				continue
			}
			n, err := strconv.Atoi(s)
			if err != nil || n <= 0 {
				log.Fatalf("scaf-loadgen: bad -sizes entry %q", s)
			}
			ns = append(ns, n)
		}
		rep, err := loadgen.Saturate(loadgen.SaturationConfig{
			Sizes: ns, Load: cfg, Workers: *workers, Persist: *persist, Membership: *membership,
		})
		if err != nil {
			log.Fatalf("scaf-loadgen: %v", err)
		}
		printSaturation(rep)
		report = rep
		inconsistent = !rep.Consistent
	} else {
		stop, target, err := ensureTarget(cfg.BaseURL, *workers)
		if err != nil {
			log.Fatalf("scaf-loadgen: %v", err)
		}
		cfg.BaseURL = target
		rep, err := loadgen.Run(cfg)
		stop()
		if err != nil {
			log.Fatalf("scaf-loadgen: %v", err)
		}
		printRun(rep)
		report = rep
	}

	if *jsonOut != "" {
		raw, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatalf("scaf-loadgen: marshal report: %v", err)
		}
		raw = append(raw, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(raw)
		} else if err := os.WriteFile(*jsonOut, raw, 0o644); err != nil {
			log.Fatalf("scaf-loadgen: write %s: %v", *jsonOut, err)
		}
	}
	if inconsistent {
		log.Fatal("scaf-loadgen: fleet sizes served different deterministic sections")
	}
}

// ensureTarget returns the run's base URL, booting a single in-process
// scaf-serve on loopback when none was given.
func ensureTarget(url string, workers int) (stop func(), target string, err error) {
	if url != "" {
		return func() {}, url, nil
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	srv := server.New(server.Config{Workers: workers, MaxQueue: 4 * workers})
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(l)
	stop = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		srv.Shutdown(ctx)
	}
	return stop, "http://" + l.Addr().String(), nil
}

func printRun(rep *loadgen.Report) {
	d, m := rep.Deterministic, rep.Measured
	fmt.Printf("deterministic: requests=%d queries=%d analyzes=%d deadlined=%d samples=%d\n",
		d.Requests, d.Queries, d.Analyzes, d.Deadlined, d.DigestSamples)
	fmt.Printf("deterministic: schedule=%s answers=%s\n", d.ScheduleDigest, d.AnswerDigest)
	fmt.Printf("measured: %.1f qps over %dms; p50=%dus p90=%dus p99=%dus max=%dus; statuses=%v transport=%d\n",
		m.QPS, m.DurationMS, m.P50US, m.P90US, m.P99US, m.MaxUS, m.Statuses, m.Transport)
}

func printSaturation(rep *loadgen.SaturationReport) {
	for _, pt := range rep.Points {
		fmt.Printf("fleet n=%d: %.1f qps p99=%dus remote_hit_rate=%.3f (local=%d remote=%d miss=%d loop_hits=%d) answers=%s\n",
			pt.Instances, pt.Measured.QPS, pt.Measured.P99US, pt.RemoteHitRate,
			pt.FleetLocalHits, pt.FleetRemoteHits, pt.FleetMisses, pt.FleetLoopHits,
			pt.Deterministic.AnswerDigest)
		if mp := pt.Membership; mp != nil {
			fmt.Printf("fleet n=%d membership: %.1f qps p99=%dus joins=%d leaves=%d rollbacks=%d moved_503=%d answers=%s\n",
				pt.Instances, mp.Measured.QPS, mp.Measured.P99US,
				mp.Joins, mp.Leaves, mp.Rollbacks, mp.Moved503, mp.Deterministic.AnswerDigest)
		}
		if w := pt.Warm; w != nil {
			fmt.Printf("fleet n=%d warm: %.1f qps p99=%dus remote_hit_rate=%.3f (local=%d remote=%d miss=%d loop_hits=%d snapshot_loaded=%d) answers=%s\n",
				pt.Instances, w.Measured.QPS, w.Measured.P99US, w.RemoteHitRate,
				w.FleetLocalHits, w.FleetRemoteHits, w.FleetMisses, w.FleetLoopHits,
				w.SnapshotLoaded, w.Deterministic.AnswerDigest)
		}
	}
	fmt.Printf("consistent across sizes: %v\n", rep.Consistent)
}
