// Command scaf-profile runs the profiling ("train input") execution of an
// MC program and reports what the profilers learned: hot loops, biased
// branches, predictable loads, read-only and short-lived allocation sites.
//
// Usage:
//
//	scaf-profile prog.mc
//	scaf-profile -bench 181.mcf     # profile an embedded benchmark
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"scaf"
	"scaf/internal/bench"
	"scaf/internal/ir"
)

func main() {
	benchName := flag.String("bench", "", "profile an embedded benchmark instead of a file")
	flag.Parse()

	var name, src string
	switch {
	case *benchName != "":
		name = *benchName
		var ok bool
		src, ok = bench.Sources[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown benchmark %q; known: %v\n", name, bench.Names())
			os.Exit(2)
		}
	case flag.NArg() == 1:
		name = flag.Arg(0)
		data, err := os.ReadFile(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		src = string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: scaf-profile [-bench name] [file.mc]")
		os.Exit(2)
	}

	sys, err := scaf.Load(name, src, scaf.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	d := sys.Profiles
	fmt.Printf("program %s: %d dynamic instructions\n", name, d.Steps)
	fmt.Printf("output: %v\n\n", d.Output)

	fmt.Println("hot loops (≥10% of execution, ≥50 avg iterations):")
	hot := sys.HotLoops()
	for _, l := range hot {
		st := d.LoopStats[l]
		fmt.Printf("  %-30s weight=%5.1f%% invocations=%d avg-iters=%.1f\n",
			l.Name(), 100*d.LoopWeightFrac(l), st.Invocations, st.AvgIters())
	}

	fmt.Println("\nbiased (never-taken) edges:")
	for _, f := range sys.Mod.Funcs {
		for _, e := range d.Edge.BiasedEdges(f) {
			fmt.Printf("  %s: %s -> %s\n", f.Name, e.From, e.To)
		}
	}

	fmt.Println("\npredictable loads:")
	for _, f := range sys.Mod.Funcs {
		f.Instrs(func(in *ir.Instr) {
			if in.Op != ir.OpLoad {
				return
			}
			if v, ok := d.Value.Predictable(in); ok && d.Value.ExecCount(in) > 1 {
				fmt.Printf("  %s:%s = %d (executed %d times)\n",
					f.Name, ir.FormatInstr(in), int64(v), d.Value.ExecCount(in))
			}
		})
	}

	for _, l := range hot {
		ro := d.Lifetime.ReadOnlySites(l)
		sl := d.Lifetime.ShortLivedSites(l)
		if len(ro)+len(sl) == 0 {
			continue
		}
		fmt.Printf("\nloop %s:\n", l.Name())
		var names []string
		for _, s := range ro {
			names = append(names, s.String())
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  read-only:   %s\n", n)
		}
		names = names[:0]
		for _, s := range sl {
			names = append(names, s.String())
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  short-lived: %s\n", n)
		}
	}
}
