// Command scaf-serve runs the SCAF analysis daemon: it loads compiled MC
// programs as sessions (program + profile + validated speculation plan +
// warm orchestrator pool) and serves alias/mod-ref/dependence queries
// over HTTP/JSON until terminated.
//
//	scaf-serve -addr :8347 -preload 181.mcf,052.alvinn
//
// Endpoints:
//
//	GET    /healthz                  liveness + session count
//	GET    /metrics                  server counters + per-session stats,
//	                                 latency percentiles, trace metrics
//	POST   /sessions                 load a program ({"bench":"181.mcf"} or
//	                                 {"name":...,"source":...}); a
//	                                 speculation plan that fails validation
//	                                 rejects the session with 422
//	GET    /sessions                 list sessions
//	GET    /sessions/{id}            describe one session
//	DELETE /sessions/{id}            unload a session
//	POST   /sessions/{id}/analyze    batch loop analysis
//	                                 ({"scheme":"scaf","loops":[...],
//	                                 "deadline_ms":100})
//	POST   /sessions/{id}/query      one dependence query
//	POST   /sessions/{id}/observe    report misspeculations seen in
//	                                 production ({"violations":[{"assertion":
//	                                 ...}]}); quarantines them, invalidates
//	                                 predicated answers, re-resolves under
//	                                 the degraded plan
//
// SIGINT/SIGTERM starts a graceful drain: listeners stop accepting, new
// requests get 503, and in-flight queries run to completion (bounded by
// -drain).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"scaf/internal/server"
)

func main() {
	addr := flag.String("addr", ":8347", "listen address")
	workers := flag.Int("workers", 4, "concurrent analysis requests")
	queue := flag.Int("queue", 16, "max requests waiting for a worker (beyond: 429)")
	deadline := flag.Duration("deadline", 0, "default per-request deadline (0: unbounded)")
	preload := flag.String("preload", "", "comma-separated embedded benchmarks to load as sessions at startup")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	fleetSelf := flag.String("fleet-self", "", "fleet node ID; empty disables fleet mode")
	fleetPeers := flag.String("fleet-peers", "", "comma-separated id=url peer list (e.g. b1=http://127.0.0.1:8348)")
	fleetSalt := flag.String("fleet-salt", "", "deployment salt folded into every fleet cache key")
	fleetFlush := flag.Duration("fleet-flush", 250*time.Millisecond, "publication batch auto-flush period")
	cacheDir := flag.String("cache-dir", "", "directory for cache snapshots and the revoked journal; boots warm, snapshots on drain")
	snapEvery := flag.Duration("snapshot-every", 0, "also snapshot the cache shard on this period (0: only on drain)")
	flag.Parse()

	cfg := server.Config{
		Workers:         *workers,
		MaxQueue:        *queue,
		DefaultDeadline: *deadline,
	}
	if *fleetSelf != "" {
		peers := map[string]string{}
		for _, kv := range strings.Split(*fleetPeers, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			id, url, ok := strings.Cut(kv, "=")
			if !ok {
				log.Fatalf("scaf-serve: -fleet-peers entry %q is not id=url", kv)
			}
			peers[id] = url
		}
		cfg.Fleet = &server.FleetConfig{
			Self:      *fleetSelf,
			Peers:     peers,
			Salt:      *fleetSalt,
			AutoFlush: *fleetFlush,
		}
	}
	if *cacheDir != "" {
		// The server degrades to memory-only on a bad directory; the CLI
		// fails loudly instead, since the operator asked for durability.
		if err := os.MkdirAll(*cacheDir, 0o755); err != nil {
			log.Fatalf("scaf-serve: -cache-dir: %v", err)
		}
		if cfg.Fleet == nil {
			// Persistence rides on the cache tier; a standalone instance
			// gets a fleet-of-one (local shard only, no peers).
			cfg.Fleet = &server.FleetConfig{Self: "solo"}
		}
		cfg.Fleet.CacheDir = *cacheDir
		cfg.Fleet.SnapshotEvery = *snapEvery
	}

	srv := server.New(cfg)
	if st := srv.PersistStats(); st != nil {
		log.Printf("scaf-serve: cache dir %s: %d entries loaded warm, %d rejected", *cacheDir, st.Loaded, st.Rejected)
	}
	if cfg.Fleet != nil {
		if err := srv.FleetSync(); err != nil {
			log.Printf("scaf-serve: fleet state sync (continuing degraded): %v", err)
		}
		log.Printf("scaf-serve: fleet node %s with %d peers", cfg.Fleet.Self, len(cfg.Fleet.Peers))
	}
	if *preload != "" {
		for _, name := range strings.Split(*preload, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			info, err := srv.Preload(name)
			if err != nil {
				log.Fatalf("scaf-serve: preload %s: %v", name, err)
			}
			log.Printf("scaf-serve: session %s: %s (%d hot loops)", info.ID, info.Name, len(info.HotLoops))
		}
	}

	hs := server.NewHTTPServer(*addr, srv.Handler())
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("scaf-serve: listening on %s (%d workers, queue %d)", *addr, *workers, *queue)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("scaf-serve: %v", err)
	case sig := <-sigc:
		log.Printf("scaf-serve: %v: draining (budget %s)", sig, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "scaf-serve: http shutdown: %v\n", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "scaf-serve: %v\n", err)
		os.Exit(1)
	}
	log.Printf("scaf-serve: drained cleanly")
}
