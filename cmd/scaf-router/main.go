// Command scaf-router fronts a fleet of scaf-serve instances: it speaks
// the exact scaf-serve HTTP surface, broadcasts session mutations to every
// backend in one serialized order (keeping their session registries and
// IDs identical), and shards analyze/query traffic across the fleet by
// consistent hash or round-robin.
//
//	scaf-router -addr :8400 \
//	  -backends b0=http://127.0.0.1:8347,b1=http://127.0.0.1:8348
//
// A down backend's shard is refused with 503 + Retry-After (no failover);
// the prober replays the session journal and re-syncs quarantine state
// when the backend comes back.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"scaf/internal/server"
)

func main() {
	addr := flag.String("addr", ":8400", "listen address")
	backends := flag.String("backends", "", "comma-separated id=url backend list (required)")
	route := flag.String("route", "hash", "read routing policy: hash (consistent placement) or rr (round-robin)")
	timeout := flag.Duration("timeout", 0, "per-backend request timeout (0: unbounded)")
	probe := flag.Duration("probe", 2*time.Second, "down-backend health probe period (the backoff base)")
	probeMax := flag.Duration("probe-max", 0, "cap on the probe backoff for persistently down backends (0: 16x the probe period)")
	drainTimeout := flag.Duration("drain-timeout", 0, "bound on waiting out in-flight reads during a membership cutover; exceeding it rolls the move back (0: 30s)")
	cacheDir := flag.String("cache-dir", "", "directory for the session-journal snapshot; reboots resume session IDs, rejoin replay, and live-joined members")
	flag.Parse()

	bk := map[string]string{}
	for _, kv := range strings.Split(*backends, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		id, url, ok := strings.Cut(kv, "=")
		if !ok {
			log.Fatalf("scaf-router: -backends entry %q is not id=url", kv)
		}
		bk[id] = url
	}
	if len(bk) == 0 {
		log.Fatal("scaf-router: -backends is required")
	}
	if *route != "hash" && *route != "rr" {
		log.Fatalf("scaf-router: unknown -route %q (want hash or rr)", *route)
	}
	if *cacheDir != "" {
		if err := os.MkdirAll(*cacheDir, 0o755); err != nil {
			log.Fatalf("scaf-router: -cache-dir: %v", err)
		}
	}

	rt := server.NewRouter(server.RouterConfig{
		Backends:     bk,
		Route:        *route,
		Timeout:      *timeout,
		Probe:        *probe,
		ProbeMax:     *probeMax,
		DrainTimeout: *drainTimeout,
		CacheDir:     *cacheDir,
	})
	hs := server.NewHTTPServer(*addr, rt.Handler())
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("scaf-router: listening on %s, %d backends, %s routing", *addr, len(bk), *route)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("scaf-router: %v", err)
	case sig := <-sigc:
		log.Printf("scaf-router: %v: shutting down", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("scaf-router: http shutdown: %v", err)
	}
	rt.Close()
}
