// Command scaf-bench regenerates the paper's tables and figures over the
// 16 embedded benchmark programs.
//
// Usage:
//
//	scaf-bench                  # everything
//	scaf-bench -fig 8           # one figure (7, 8, 9, 10)
//	scaf-bench -table 2         # one table
//	scaf-bench -bench 181.mcf   # restrict to chosen benchmarks
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"scaf/internal/bench"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (7, 8, 9, 10); 0 = all")
	table := flag.Int("table", 0, "table to regenerate (1, 2); 0 = all")
	benches := flag.String("bench", "", "comma-separated benchmark subset (default: all 16)")
	csvDir := flag.String("csv", "", "also write machine-readable CSVs into this directory (requires running everything)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"PDG worker-pool size per benchmark (1 = serial; results are identical)")
	flag.Parse()

	var names []string
	if *benches != "" {
		names = strings.Split(*benches, ",")
	}

	wantFig := func(n int) bool { return (*fig == 0 && *table == 0) || *fig == n }
	wantTable := func(n int) bool { return (*fig == 0 && *table == 0) || *table == n }

	if wantFig(7) {
		fmt.Println(bench.RenderFig7())
	}
	if wantTable(1) {
		fmt.Println(bench.RenderTable1())
	}
	if !wantFig(8) && !wantFig(9) && !wantFig(10) && !wantTable(2) {
		return
	}

	fmt.Fprintf(os.Stderr, "loading and profiling benchmarks...\n")
	suite, err := bench.LoadSuite(names...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	suite.Parallelism = *parallel

	var analyses []*bench.Analysis
	if wantFig(8) || wantFig(9) || wantTable(2) {
		fmt.Fprintf(os.Stderr, "analyzing hot loops under CAF / confluence / SCAF (%d workers)...\n", *parallel)
		analyses = bench.AnalyzeSuite(suite)
	}

	if wantFig(8) {
		fmt.Println(bench.RenderFig8(bench.Fig8(analyses)))
	}
	if wantFig(9) {
		fmt.Println(bench.RenderFig9(bench.Fig9(analyses)))
	}
	if wantTable(2) {
		fmt.Println(bench.RenderTable2(bench.Table2(analyses)))
	}
	var latencies []bench.Fig10Series
	if wantFig(10) {
		fmt.Fprintf(os.Stderr, "measuring query latencies...\n")
		latencies = bench.Fig10(suite)
		fmt.Println(bench.RenderFig10(latencies))
	}
	if *csvDir != "" {
		if analyses == nil || latencies == nil {
			fmt.Fprintln(os.Stderr, "-csv requires running all experiments (omit -fig/-table)")
			os.Exit(2)
		}
		err := bench.WriteCSVs(*csvDir,
			bench.Fig8(analyses), bench.Fig9(analyses), bench.Table2(analyses), latencies)
		if err != nil {
			fmt.Fprintln(os.Stderr, "csv:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "CSVs written to %s\n", *csvDir)
	}
}
