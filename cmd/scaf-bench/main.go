// Command scaf-bench regenerates the paper's tables and figures over the
// 16 embedded benchmark programs.
//
// Usage:
//
//	scaf-bench                  # everything
//	scaf-bench -fig 8           # one figure (7, 8, 9, 10)
//	scaf-bench -table 2         # one table
//	scaf-bench -bench 181.mcf   # restrict to chosen benchmarks
//	scaf-bench -execute         # also run the speculative-parallel runtime
//	                            # and print the speedup / abort-cost table
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"scaf"
	"scaf/internal/bench"
	"scaf/internal/trace"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (7, 8, 9, 10); 0 = all")
	table := flag.Int("table", 0, "table to regenerate (1, 2); 0 = all")
	benches := flag.String("bench", "", "comma-separated benchmark subset (default: all 16)")
	csvDir := flag.String("csv", "", "also write machine-readable CSVs into this directory (requires running everything)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"PDG worker-pool size per benchmark (1 = serial; results are identical)")
	jsonPath := flag.String("json", "", "write a machine-readable per-benchmark report (coverage + orchestration counters) to this file")
	tracePath := flag.String("trace", "", "run one traced SCAF analysis per benchmark and write the query-resolution events (JSONL) to this file")
	traceDot := flag.String("trace-dot", "", "also render the traced queries as a Graphviz collaboration graph to this file (requires -trace)")
	execute := flag.Bool("execute", false, "execute each benchmark under the speculative-parallel runtime (SCAF plans), print the realized speedup / abort-cost table, and add the deterministic commit/abort counters to the -json report")
	execWorkers := flag.Int("exec-workers", 4, "speculative worker count for -execute")
	learnOrder := flag.Bool("learn-order", true,
		"learn a verified per-scheme module consult order from the hot loops before the measured analysis (answers are unchanged; module evaluations drop)")
	flag.Parse()

	if *traceDot != "" && *tracePath == "" {
		fmt.Fprintln(os.Stderr, "-trace-dot requires -trace")
		os.Exit(2)
	}

	var names []string
	if *benches != "" {
		names = strings.Split(*benches, ",")
	}

	wantFig := func(n int) bool { return (*fig == 0 && *table == 0) || *fig == n }
	wantTable := func(n int) bool { return (*fig == 0 && *table == 0) || *table == n }

	if wantFig(7) {
		fmt.Println(bench.RenderFig7())
	}
	if wantTable(1) {
		fmt.Println(bench.RenderTable1())
	}
	needSuite := wantFig(8) || wantFig(9) || wantFig(10) || wantTable(2) ||
		*jsonPath != "" || *tracePath != "" || *execute
	if !needSuite {
		return
	}

	fmt.Fprintf(os.Stderr, "loading and profiling benchmarks...\n")
	suite, err := bench.LoadSuite(names...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	suite.Parallelism = *parallel
	// The JSON report carries per-query latency summaries (the regression
	// gate's deterministic work measure), so record samples when asked
	// for one.
	suite.Latency = *jsonPath != ""
	suite.LearnOrder = *learnOrder

	var analyses []*bench.Analysis
	if wantFig(8) || wantFig(9) || wantTable(2) || *jsonPath != "" {
		fmt.Fprintf(os.Stderr, "analyzing hot loops under CAF / confluence / SCAF (%d workers)...\n", *parallel)
		analyses = bench.AnalyzeSuite(suite)
	}

	if wantFig(8) {
		fmt.Println(bench.RenderFig8(bench.Fig8(analyses)))
	}
	if wantFig(9) {
		fmt.Println(bench.RenderFig9(bench.Fig9(analyses)))
	}
	if wantTable(2) {
		fmt.Println(bench.RenderTable2(bench.Table2(analyses)))
	}
	var latencies []bench.Fig10Series
	if wantFig(10) {
		fmt.Fprintf(os.Stderr, "measuring query latencies...\n")
		latencies = bench.Fig10(suite)
		fmt.Println(bench.RenderFig10(latencies))
	}
	var execRows []bench.ExecRow
	if *execute {
		fmt.Fprintf(os.Stderr, "executing benchmarks speculatively (%d workers)...\n", *execWorkers)
		execRows, err = bench.ExecuteSuite(suite, *execWorkers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "execute:", err)
			os.Exit(1)
		}
		fmt.Println(bench.RenderExec(execRows))
	}
	if *csvDir != "" {
		if analyses == nil || latencies == nil {
			fmt.Fprintln(os.Stderr, "-csv requires running all experiments (omit -fig/-table)")
			os.Exit(2)
		}
		err := bench.WriteCSVs(*csvDir,
			bench.Fig8(analyses), bench.Fig9(analyses), bench.Table2(analyses), latencies)
		if err != nil {
			fmt.Fprintln(os.Stderr, "csv:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "CSVs written to %s\n", *csvDir)
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, suite, analyses, execRows); err != nil {
			fmt.Fprintln(os.Stderr, "json:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "report written to %s\n", *jsonPath)
	}
	if *tracePath != "" {
		if err := writeTrace(*tracePath, *traceDot, suite, *parallel); err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
	}
}

func writeJSON(path string, suite *bench.Suite, analyses []*bench.Analysis, execRows []bench.ExecRow) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	report := bench.BuildReport(suite, analyses)
	bench.AttachExec(report, execRows)
	if err := bench.WriteReport(f, report); err != nil {
		return err
	}
	return f.Close()
}

// maxDOTTrees caps how many query trees the -trace-dot rendering includes;
// whole-suite traces hold thousands of queries and Graphviz stops being
// readable long before that.
const maxDOTTrees = 40

func writeTrace(path, dotPath string, suite *bench.Suite, parallel int) error {
	var all []trace.Event
	for _, b := range suite.Benchmarks {
		fmt.Fprintf(os.Stderr, "tracing SCAF analysis of %s...\n", b.Name)
		events, _, st := bench.TracedAnalysis(b, scaf.SchemeSCAF, parallel)
		fmt.Fprint(os.Stderr, bench.RenderTraceMetrics(b.Name, events, st))
		if err := trace.Aggregate(events).Reconcile(st); err != nil {
			return fmt.Errorf("%s: %w", b.Name, err)
		}
		all = trace.Concat(all, events)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.WriteJSONL(f, all); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%d trace events written to %s\n", len(all), path)
	if dotPath == "" {
		return nil
	}
	trees := trace.BuildTrees(all)
	if len(trees) > maxDOTTrees {
		fmt.Fprintf(os.Stderr, "rendering first %d of %d query trees to %s\n",
			maxDOTTrees, len(trees), dotPath)
		trees = trees[:maxDOTTrees]
	}
	df, err := os.Create(dotPath)
	if err != nil {
		return err
	}
	defer df.Close()
	if err := trace.WriteDOT(df, trees); err != nil {
		return err
	}
	return df.Close()
}
