// Command scaf-oracle fuzzes the analysis stack with the differential
// oracle: random MC programs are checked for soundness against profiled
// ground truth, for answer drift across execution paths (serial, parallel,
// shared-cache, HTTP), and for answer stability under semantics-preserving
// metamorphic transforms. Failures can be shrunk to minimal reproducers.
//
// Usage:
//
//	scaf-oracle -seeds 200                 # sweep 200 seeds, full checks
//	scaf-oracle -seeds 2000 -start 5000    # a different seed window
//	scaf-oracle -seeds 200 -shrink         # also reduce failures to repros
//	scaf-oracle -run repro.mc              # re-check one program file
//	scaf-oracle -fast -seeds 1000          # soundness+monotonicity only
//	scaf-oracle -fast -recovery -seeds 500 # plus misspeculation recovery
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"scaf/internal/oracle"
)

func main() {
	seeds := flag.Int("seeds", 200, "number of mcgen seeds to sweep")
	start := flag.Int64("start", 1, "first seed of the sweep")
	shrink := flag.Bool("shrink", false, "reduce each failing program to a minimal reproducer")
	out := flag.String("out", "testdata/repros", "directory for shrunk reproducers")
	run := flag.String("run", "", "check one MC program file instead of sweeping seeds")
	fast := flag.Bool("fast", false, "soundness and monotonicity only (no drift or metamorphic checks)")
	recov := flag.Bool("recovery", false, "force the misspeculation-recovery pass (fault injection + quarantine + equivalence); always on without -fast")
	execute := flag.Bool("execute", false, "force the execution-equivalence pass (speculative-parallel runtime vs serial, plus chaos-forced misspeculation recovery); always on without -fast")
	fleetPass := flag.Bool("fleet", false, "force the fleet byte-identity pass (router + 2 peer backends vs a single cold instance); always on without -fast")
	persistPass := flag.Bool("persist", false, "force the warm-restart pass (snapshot, restart, byte-compare against a cold instance); always on without -fast")
	elasticPass := flag.Bool("elastic", false, "force the live-membership pass (join and leave under concurrent fire, byte-compare against the static fleet); always on without -fast")
	transforms := flag.String("transforms", "all", `metamorphic transforms: "all", "none", or a comma-separated subset (rename,deadcode,reorder,peel)`)
	verbose := flag.Bool("v", false, "log every seed, not just failures and progress")
	flag.Parse()

	cfg := oracle.FullConfig()
	if *fast {
		cfg = oracle.FastConfig()
	}
	if *recov {
		cfg.Recovery = true
	}
	if *execute {
		cfg.Execution = true
	}
	if *fleetPass {
		cfg.Fleet = true
	}
	if *persistPass {
		cfg.Persist = true
	}
	if *elasticPass {
		cfg.Elastic = true
	}
	switch *transforms {
	case "all":
	case "none":
		cfg.Transforms = nil
	default:
		cfg.Transforms = nil
		for _, name := range strings.Split(*transforms, ",") {
			tr, ok := oracle.TransformByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown transform %q\n", name)
				os.Exit(2)
			}
			cfg.Transforms = append(cfg.Transforms, tr)
		}
	}

	if *run != "" {
		os.Exit(runOne(cfg, *run, *shrink, *out))
	}

	failures := 0
	var queries, applied, compared, lies, execMisspecs int
	var specIters, warmHits, elasticHits int64
	for i := 0; i < *seeds; i++ {
		seed := *start + int64(i)
		rep, err := oracle.CheckSeed(cfg, seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "seed %d: %v\n", seed, err)
			os.Exit(2) // generator or harness bug, not an analysis finding
		}
		queries += rep.Queries
		applied += rep.TransformsApplied
		compared += rep.ComparedLoops
		lies += rep.ChaosLies
		specIters += rep.ExecSpecIters
		execMisspecs += rep.ExecMisspecs
		warmHits += rep.PersistWarmHits
		elasticHits += rep.ElasticWarmHits
		if *verbose {
			fmt.Printf("seed %d: %d hot loops, %d queries, %d transforms\n",
				seed, rep.HotLoops, rep.Queries, rep.TransformsApplied)
		}
		if rep.Failed() {
			failures++
			fmt.Println(rep.Summary())
			if *shrink {
				shrinkAndWrite(cfg, rep, *out, fmt.Sprintf("seed%d", seed))
			}
		}
		if n := i + 1; n%50 == 0 || n == *seeds {
			fmt.Printf("[%d/%d] %d failures, %d queries checked, %d transforms applied, %d loop comparisons, %d lies quarantined, %d spec iters, %d misspecs recovered, %d warm hits, %d elastic hits\n",
				n, *seeds, failures, queries, applied, compared, lies, specIters, execMisspecs, warmHits, elasticHits)
		}
	}
	if failures > 0 {
		os.Exit(1)
	}
}

// runOne re-checks one program file (e.g. a committed reproducer).
func runOne(cfg oracle.Config, path string, shrink bool, out string) int {
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	name := strings.TrimSuffix(filepath.Base(path), ".mc")
	rep, err := oracle.CheckProgram(cfg, name, string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
		return 2
	}
	if !rep.Failed() {
		fmt.Printf("%s: ok (%d hot loops, %d queries, %d transforms)\n",
			path, rep.HotLoops, rep.Queries, rep.TransformsApplied)
		return 0
	}
	fmt.Println(rep.Summary())
	if shrink {
		shrinkAndWrite(cfg, rep, out, name)
	}
	return 1
}

func shrinkAndWrite(cfg oracle.Config, rep *oracle.Report, out, name string) {
	red := oracle.Reduce(rep.Source, func(src string) bool {
		r, err := oracle.CheckProgram(cfg, name, src)
		return err == nil && r.Failed()
	})
	path, err := oracle.WriteRepro(out, name, rep, red)
	if err != nil {
		fmt.Fprintf(os.Stderr, "writing reproducer: %v\n", err)
		return
	}
	fmt.Printf("reduced to %d statements (%d oracle evaluations): %s\n",
		red.Stmts, red.Tests, path)
}
