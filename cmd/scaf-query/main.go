// Command scaf-query runs the PDG client over a program's hot loops and
// prints every dependence query with its resolution under a chosen scheme.
//
// Usage:
//
//	scaf-query -scheme scaf prog.mc
//	scaf-query -scheme confluence -bench 183.equake
//	scaf-query -diff -bench 456.hmmer    # queries SCAF resolves beyond confluence
//
// Degraded-plan analysis: -quarantine withdraws one speculative assertion
// by its wire identity (repeatable; the identity is the "module/kind{...}"
// string printed in /observe payloads and plan listings), -quarantine-module
// withdraws a whole module. The analysis then shows exactly the answers a
// recovered production session would serve after observing those
// misspeculations:
//
//	scaf-query -quarantine 'mdp-spec/no-flow{p1,p2 cost=20}' -bench 181.mcf
//	scaf-query -quarantine-module value-pred prog.mc
//
// Speculative execution: -execute runs the program under the scheme's
// plan with the speculative-parallel runtime after printing the analysis,
// reporting per-loop commit/abort statistics and any assertions the run
// disproved:
//
//	scaf-query -scheme scaf -execute -workers 8 prog.mc
package main

import (
	"flag"
	"fmt"
	"os"

	"scaf"
	"scaf/internal/bench"
	"scaf/internal/core"
	"scaf/internal/ir"
	"scaf/internal/pdg"
	"scaf/internal/recovery"
	"scaf/internal/runtime"
)

// stringList is a repeatable string flag.
type stringList []string

func (l *stringList) String() string { return fmt.Sprint(*l) }
func (l *stringList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	schemeName := flag.String("scheme", "scaf", "caf | confluence | scaf")
	benchName := flag.String("bench", "", "analyze an embedded benchmark instead of a file")
	diff := flag.Bool("diff", false, "show only queries SCAF resolves beyond confluence")
	dot := flag.Bool("dot", false, "emit the dependence graphs in Graphviz DOT format")
	execute := flag.Bool("execute", false, "after printing the analysis, execute the program speculatively under the scheme's plan and report commit/abort statistics")
	workers := flag.Int("workers", 4, "speculative worker count for -execute")
	var quarAsserts, quarModules stringList
	flag.Var(&quarAsserts, "quarantine", "withdraw one assertion by wire identity (repeatable)")
	flag.Var(&quarModules, "quarantine-module", "withdraw a whole module (repeatable)")
	flag.Parse()

	var name, src string
	switch {
	case *benchName != "":
		name = *benchName
		var ok bool
		src, ok = bench.Sources[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", name)
			os.Exit(2)
		}
	case flag.NArg() == 1:
		name = flag.Arg(0)
		data, err := os.ReadFile(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		src = string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: scaf-query [-scheme s] [-diff] [-bench name | file.mc]")
		os.Exit(2)
	}

	var scheme scaf.Scheme
	switch *schemeName {
	case "caf":
		scheme = scaf.SchemeCAF
	case "confluence":
		scheme = scaf.SchemeConfluence
	case "scaf":
		scheme = scaf.SchemeSCAF
	default:
		fmt.Fprintln(os.Stderr, "unknown scheme", *schemeName)
		os.Exit(2)
	}

	sys, err := scaf.Load(name, src, scaf.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	var opts []scaf.OrchOption
	if len(quarAsserts) > 0 || len(quarModules) > 0 {
		q := recovery.New()
		for _, k := range quarAsserts {
			q.AddAssert(k, "scaf-query flag")
		}
		for _, m := range quarModules {
			q.AddModule(m, "scaf-query flag")
		}
		opts = append(opts, scaf.WithModuleWrapper(recovery.Wrapper(q)))
	}
	client := sys.Client()
	o := sys.Orchestrator(scheme, opts...)
	var conf *core.Orchestrator
	if *diff {
		conf = sys.Orchestrator(scaf.SchemeConfluence, opts...)
	}

	for _, l := range sys.HotLoops() {
		res := client.ResolveLoop(o, l)
		if *dot {
			fmt.Println(res.ToDOT())
			continue
		}
		var confRes map[pdg.Key]*pdg.Query
		if *diff {
			confRes = client.ResolveLoop(conf, l).ByKey()
		}
		fmt.Printf("loop %s: %%NoDep = %.1f over %d queries\n", l.Name(), res.NoDepPct(), len(res.Queries))
		for _, q := range res.Queries {
			if *diff {
				ck := confRes[pdg.Key{I1: q.I1, I2: q.I2, Rel: q.Rel}]
				if !q.NoDep || (ck != nil && ck.NoDep) {
					continue
				}
			}
			status := "DEP"
			if q.NoDep {
				status = "nodep"
			}
			fmt.Printf("  [%s] %-6s %s  --(%s)->  %s", status, q.Resp.Result, describe(q.I1), q.Rel, describe(q.I2))
			if q.NoDep && q.Cost > 0 {
				fmt.Printf("  cost=%.0f", q.Cost)
			}
			if len(q.Resp.Contribs) > 0 {
				fmt.Printf("  via %v", q.Resp.Contribs)
			}
			fmt.Println()
		}
	}

	if *execute {
		rep, err := sys.ExecutePlan(scheme, runtime.Config{Workers: *workers}, opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "execute:", err)
			os.Exit(1)
		}
		printExecReport(rep)
	}
}

// printExecReport renders the speculative-execution outcome: per-loop
// commit/abort statistics plus the run's aggregate counters.
func printExecReport(rep *runtime.Report) {
	fmt.Printf("\nspeculative execution (%d doall, %d refused of %d hot loops):\n",
		rep.DoallLoops, rep.RefusedLoops, len(rep.Loops))
	for _, ls := range rep.Loops {
		if ls.Refusal != "" {
			fmt.Printf("  %-24s refused: %s\n", ls.Loop, ls.Refusal)
			continue
		}
		fmt.Printf("  %-24s spec %d/%d invocations, %d/%d chunks committed, %d spec + %d serial iters",
			ls.Loop, ls.SpecInvocations, ls.Invocations,
			ls.CommittedChunks, ls.Chunks, ls.SpecIters, ls.SerialIters)
		if ls.Misspecs > 0 {
			fmt.Printf(", %d misspec(s)", ls.Misspecs)
		}
		fmt.Println()
	}
	fmt.Printf("total: %d spec iters, %d serial iters, %d aborts, %d replan rounds, %d quarantined asserts, %.2fms wall\n",
		rep.SpecIters, rep.SerialIters, rep.AbortedChunks, rep.ReplanRounds,
		len(rep.QuarantinedAsserts), float64(rep.WallNanos)/1e6)
	for _, k := range rep.QuarantinedAsserts {
		fmt.Printf("  quarantined: %s\n", k)
	}
}

func describe(in *ir.Instr) string {
	return fmt.Sprintf("%s[%s]", in, ir.FormatInstr(in))
}
