// Command scaf-query runs the PDG client over a program's hot loops and
// prints every dependence query with its resolution under a chosen scheme.
//
// Usage:
//
//	scaf-query -scheme scaf prog.mc
//	scaf-query -scheme confluence -bench 183.equake
//	scaf-query -diff -bench 456.hmmer    # queries SCAF resolves beyond confluence
package main

import (
	"flag"
	"fmt"
	"os"

	"scaf"
	"scaf/internal/bench"
	"scaf/internal/core"
	"scaf/internal/ir"
	"scaf/internal/pdg"
)

func main() {
	schemeName := flag.String("scheme", "scaf", "caf | confluence | scaf")
	benchName := flag.String("bench", "", "analyze an embedded benchmark instead of a file")
	diff := flag.Bool("diff", false, "show only queries SCAF resolves beyond confluence")
	dot := flag.Bool("dot", false, "emit the dependence graphs in Graphviz DOT format")
	flag.Parse()

	var name, src string
	switch {
	case *benchName != "":
		name = *benchName
		var ok bool
		src, ok = bench.Sources[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", name)
			os.Exit(2)
		}
	case flag.NArg() == 1:
		name = flag.Arg(0)
		data, err := os.ReadFile(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		src = string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: scaf-query [-scheme s] [-diff] [-bench name | file.mc]")
		os.Exit(2)
	}

	var scheme scaf.Scheme
	switch *schemeName {
	case "caf":
		scheme = scaf.SchemeCAF
	case "confluence":
		scheme = scaf.SchemeConfluence
	case "scaf":
		scheme = scaf.SchemeSCAF
	default:
		fmt.Fprintln(os.Stderr, "unknown scheme", *schemeName)
		os.Exit(2)
	}

	sys, err := scaf.Load(name, src, scaf.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	client := sys.Client()
	o := sys.Orchestrator(scheme)
	var conf *core.Orchestrator
	if *diff {
		conf = sys.Orchestrator(scaf.SchemeConfluence)
	}

	for _, l := range sys.HotLoops() {
		res := client.AnalyzeLoop(o, l)
		if *dot {
			fmt.Println(res.ToDOT())
			continue
		}
		var confRes map[pdg.Key]*pdg.Query
		if *diff {
			confRes = client.AnalyzeLoop(conf, l).ByKey()
		}
		fmt.Printf("loop %s: %%NoDep = %.1f over %d queries\n", l.Name(), res.NoDepPct(), len(res.Queries))
		for _, q := range res.Queries {
			if *diff {
				ck := confRes[pdg.Key{I1: q.I1, I2: q.I2, Rel: q.Rel}]
				if !q.NoDep || (ck != nil && ck.NoDep) {
					continue
				}
			}
			status := "DEP"
			if q.NoDep {
				status = "nodep"
			}
			fmt.Printf("  [%s] %-6s %s  --(%s)->  %s", status, q.Resp.Result, describe(q.I1), q.Rel, describe(q.I2))
			if q.NoDep && q.Cost > 0 {
				fmt.Printf("  cost=%.0f", q.Cost)
			}
			if len(q.Resp.Contribs) > 0 {
				fmt.Printf("  via %v", q.Resp.Contribs)
			}
			fmt.Println()
		}
	}
}

func describe(in *ir.Instr) string {
	return fmt.Sprintf("%s[%s]", in, ir.FormatInstr(in))
}
