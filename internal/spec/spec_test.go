package spec

import (
	"testing"

	"scaf/internal/analysis"
	"scaf/internal/cfg"
	"scaf/internal/core"
	"scaf/internal/interp"
	"scaf/internal/ir"
	"scaf/internal/lower"
	"scaf/internal/profile"
)

// world compiles AND profiles a program.
type world struct {
	t    *testing.T
	mod  *ir.Module
	prog *cfg.Program
	data *profile.Data
}

func load(t *testing.T, src string) *world {
	t.Helper()
	mod, err := lower.Compile("test", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	prog := cfg.NewProgram(mod)
	data, err := profile.Collect(prog, interp.Options{})
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	return &world{t: t, mod: mod, prog: prog, data: data}
}

func (w *world) storeOf(fn, global string, n int) *ir.Instr {
	return w.memOp(fn, global, ir.OpStore, n)
}

func (w *world) loadOf(fn, global string) *ir.Instr {
	return w.memOp(fn, global, ir.OpLoad, 0)
}

func (w *world) memOp(fn, global string, op ir.Op, n int) *ir.Instr {
	w.t.Helper()
	g := w.mod.GlobalNamed(global)
	var found *ir.Instr
	i := 0
	w.mod.FuncNamed(fn).Instrs(func(in *ir.Instr) {
		if in.Op != op {
			return
		}
		ptr, _, ok := in.PointerOperand()
		if !ok {
			return
		}
		if core.Decompose(ptr).Base == ir.Value(g) {
			if i == n {
				found = in
			}
			i++
		}
	})
	if found == nil {
		w.t.Fatalf("no %s #%d of @%s in %s:\n%s", op, n, global, fn, ir.FormatFunc(w.mod.FuncNamed(fn)))
	}
	return found
}

func (w *world) onlyLoop(fn string) *cfg.Loop {
	w.t.Helper()
	f := w.mod.FuncNamed(fn)
	all := w.prog.Forests[f].All
	if len(all) != 1 {
		w.t.Fatalf("%s has %d loops", fn, len(all))
	}
	return all[0]
}

// scafOrch assembles the full collaborative ensemble.
func (w *world) scafOrch() *core.Orchestrator {
	mods := analysis.DefaultModules(w.prog)
	groups := analysis.Groups(mods)
	mods = append(mods, DefaultModules(w.data)...)
	for k, v := range Groups() {
		groups[k] = v
	}
	return core.NewOrchestrator(core.Config{Modules: mods, Groups: groups})
}

func (w *world) mrq(i1, i2 *ir.Instr, rel core.TemporalRelation, l *cfg.Loop) *core.ModRefQuery {
	return &core.ModRefQuery{
		I1: i1, I2: i2, Rel: rel, Loop: l,
		DT: w.prog.Dom[l.Fn], PDT: w.prog.PostDom[l.Fn],
	}
}

func hasAssert(r core.ModRefResponse, module string) bool {
	for _, o := range r.Options {
		for _, a := range o.Asserts {
			if a.Module == module {
				return true
			}
		}
	}
	return false
}

func TestControlSpecDeadEndpoint(t *testing.T) {
	w := load(t, `
int a;
int errs;
void main() {
    for (int i = 0; i < 200; i++) {
        if (i > 1000000) {
            errs = errs + 1;   // speculatively dead store
        }
        a = a + i;
    }
    print(a);
}`)
	l := w.onlyLoop("main")
	cs := NewControlSpec(w.data)
	deadStore := w.storeOf("main", "errs", 0)
	liveLoad := w.loadOf("main", "a")

	r := cs.ModRef(w.mrq(deadStore, liveLoad, core.Same, l), core.NoHelp{})
	if r.Result != core.NoModRef {
		t.Fatalf("spec-dead source: %s", r.Result)
	}
	if !hasAssert(r, NameControlSpec) {
		t.Error("missing control-spec assertion")
	}
	if core.MinCost(r.Options) != core.CostCtrlCheck {
		t.Errorf("cost = %g", core.MinCost(r.Options))
	}
	// Live endpoints: the module alone cannot answer.
	liveStore := w.storeOf("main", "a", 0)
	r = cs.ModRef(w.mrq(liveStore, liveLoad, core.Same, l), core.NoHelp{})
	if r.Result == core.NoModRef {
		t.Error("live endpoints must not resolve via spec-dead rule alone")
	}
}

func TestControlSpecTreeSubstitution(t *testing.T) {
	// The motivating-example shape, reduced: the common path's store kills
	// the recurrence only under speculative control flow.
	w := load(t, `
int x;
int out;
void main() {
    for (int i = 0; i < 300; i++) {
        if (i > 1000000) {
            out = out + 1;     // rare path: no write to x
        } else {
            x = i;             // kill
        }
        out = out + x;         // read at join
        x = i * 2;             // cross-iteration source
    }
    print(out);
}`)
	l := w.onlyLoop("main")
	o := w.scafOrch()
	// i3 is the trailing store (the largest instruction id).
	i3 := w.storeOf("main", "x", 0)
	if other := w.storeOf("main", "x", 1); other.ID > i3.ID {
		i3 = other
	}
	i2 := w.loadOf("main", "x")
	r := o.ModRef(w.mrq(i3, i2, core.Before, l))
	if r.Result != core.NoModRef {
		t.Fatalf("tree substitution failed: %s via %v", r.Result, r.Contribs)
	}
	if !hasAssert(r, NameControlSpec) {
		t.Error("result must carry the control-flow assertion")
	}
	found := false
	for _, c := range r.Contribs {
		if c == "kill-flow" {
			found = true
		}
	}
	if !found {
		t.Errorf("kill-flow must be credited: %v", r.Contribs)
	}
}

func TestValuePredDirectRules(t *testing.T) {
	w := load(t, `
int cfg;
int out;
void main() {
    cfg = 42;
    for (int i = 0; i < 200; i++) {
        out = out + cfg;       // predictable load of cfg
        cfg = 42;              // stores the same value back
    }
    print(out);
}`)
	l := w.onlyLoop("main")
	vp := NewValuePred(w.data)
	cfgLoad := w.loadOf("main", "cfg")
	cfgStore := w.storeOf("main", "cfg", 1) // the in-loop store

	// Dependence sinking INTO the predictable load vanishes.
	r := vp.ModRef(w.mrq(cfgStore, cfgLoad, core.Before, l), core.NoHelp{})
	if r.Result != core.NoModRef || !hasAssert(r, NameValuePred) {
		t.Errorf("sink into predictable load: %s", r.Result)
	}
	// Dependence sourcing FROM it vanishes too.
	r = vp.ModRef(w.mrq(cfgLoad, cfgStore, core.Same, l), core.NoHelp{})
	if r.Result != core.NoModRef {
		t.Errorf("source from predictable load: %s", r.Result)
	}
	// The validation cost scales with the load's execution count.
	a := vp.checkAssertion(cfgLoad)
	if a.Cost != core.CostValueCheck*200 {
		t.Errorf("cost = %g, want %g", a.Cost, core.CostValueCheck*200)
	}
}

func TestValuePredKillNeedsCollaboration(t *testing.T) {
	w := load(t, `
int cfg;
int guard;
int sum;
void reader() { sum = sum + cfg; }
void main() {
    for (int i = 0; i < 200; i++) {
        cfg = 6 * 2;           // stores the same value every iteration
        guard = guard + cfg;   // predictable load between store and call
        reader();              // callee reads cfg: footprint unknown here
    }
    print(sum);
    print(guard);
}`)
	l := w.onlyLoop("main")
	st := w.storeOf("main", "cfg", 0)
	var call *ir.Instr
	w.mod.FuncNamed("main").Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpCall && in.Callee != nil && in.Callee.Name == "reader" {
			call = in
		}
	})
	if call == nil {
		t.Fatal("call not found")
	}

	// Alone, value prediction cannot prove the footprints match.
	vp := NewValuePred(w.data)
	r := vp.ModRef(w.mrq(st, call, core.Same, l), core.NoHelp{})
	if r.Result == core.NoModRef {
		t.Fatal("VP alone must not resolve the kill")
	}
	// With the ensemble, the MustAlias premise resolves and the kill fires.
	o := w.scafOrch()
	r2 := o.ModRef(w.mrq(st, call, core.Same, l))
	if r2.Result != core.NoModRef || !hasAssert(r2, NameValuePred) {
		t.Fatalf("collaborative VP kill failed: %s via %v", r2.Result, r2.Contribs)
	}
}

func TestPointsToDisjointAndContainment(t *testing.T) {
	w := load(t, `
int* pa;
int* pb;
void main() {
    pa = malloc(int, 8);
    pb = malloc(int, 8);
    for (int i = 0; i < 100; i++) {
        int* x = pa;
        int* y = pb;
        x[i % 8] = i;
        y[i % 8] = i + 1;
    }
}`)
	pt := NewPointsTo(w.data)
	sx := w.heapStore("main", 0)
	sy := w.heapStore("main", 1)
	lx, _, _ := sx.PointerOperand()
	ly, _, _ := sy.PointerOperand()

	r := pt.Alias(&core.AliasQuery{L1: core.MemLoc{Ptr: lx, Size: 8}, L2: core.MemLoc{Ptr: ly, Size: 8}}, core.NoHelp{})
	if r.Result != core.NoAlias {
		t.Fatalf("disjoint points-to: %s", r.Result)
	}
	if core.MinCost(r.Options) < core.Prohibitive {
		t.Error("raw points-to assertions must be prohibitive")
	}
	// Containment against the allocation-site representative.
	var mallocA *ir.Instr
	w.mod.FuncNamed("main").Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpMalloc && mallocA == nil {
			mallocA = in
		}
	})
	r = pt.Alias(&core.AliasQuery{
		L1: core.MemLoc{Ptr: lx, Size: 8},
		L2: core.MemLoc{Ptr: mallocA, Size: core.UnknownSize},
	}, core.NoHelp{})
	if r.Result != core.SubAlias {
		t.Fatalf("containment: %s", r.Result)
	}
}

// heapStore finds the n-th int-valued store whose pointer is derived from
// a loaded pointer (i.e. a store into heap memory through a pointer
// global), in appearance order.
func (w *world) heapStore(fn string, n int) *ir.Instr {
	w.t.Helper()
	var found *ir.Instr
	i := 0
	w.mod.FuncNamed(fn).Instrs(func(in *ir.Instr) {
		if in.Op != ir.OpStore || !ir.Equal(in.Args[0].Type(), ir.Int) {
			return
		}
		base := core.Decompose(in.Args[1]).Base
		if b, ok := base.(*ir.Instr); ok && b.Op == ir.OpLoad {
			if i == n {
				found = in
			}
			i++
		}
	})
	if found == nil {
		w.t.Fatalf("heap store #%d not found", n)
	}
	return found
}

const roProgram = `
float* table;
float* out;
int idx;
void scale(float* t, float* o) {
    for (int i = 0; i < 200; i++) {
        o[i % 64] = t[i % 64] * 2.0;   // t is read-only here; t and o are
    }                                  // statically indistinguishable
}
void main() {
    table = malloc(float, 64);
    out = malloc(float, 64);
    for (int i = 0; i < 64; i++) {
        float* t = table;
        t[i] = (float)i;
    }
    scale(table, out);
    print(out[3]);
}
`

func TestReadOnlyModule(t *testing.T) {
	w := load(t, roProgram)
	f := w.mod.FuncNamed("scale")
	loops := w.prog.Forests[f].All
	if len(loops) != 1 {
		t.Fatalf("loops = %d", len(loops))
	}
	hot := loops[0]
	// Identify the store through `out` and the load through `table` in
	// the second loop.
	var st, ld *ir.Instr
	f.Instrs(func(in *ir.Instr) {
		if !hot.ContainsInstr(in) {
			return
		}
		switch in.Op {
		case ir.OpStore:
			st = in
		case ir.OpLoad:
			if ir.Equal(in.Ty, ir.Float) {
				ld = in
			}
		}
	})
	if st == nil || ld == nil {
		t.Fatalf("accesses not found")
	}
	// The site must be read-only for the hot loop.
	var tableSite profile.Site
	w.mod.FuncNamed("main").Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpMalloc && tableSite.In == nil {
			tableSite = profile.Site{In: in}
		}
	})
	if !w.data.Lifetime.ReadOnly(hot, tableSite) {
		t.Fatal("table site should be read-only in the hot loop")
	}

	// Alone (isolated), read-only cannot resolve its containment premise.
	ro := NewReadOnly(w.data)
	r := ro.ModRef(w.mrq(st, ld, core.Same, hot), core.NoHelp{})
	if r.Result == core.NoModRef {
		t.Fatal("read-only alone must not resolve")
	}
	// With the ensemble the premise resolves (points-to or global-malloc
	// containment) and the store provably misses read-only memory.
	o := w.scafOrch()
	r2 := o.ModRef(w.mrq(st, ld, core.Same, hot))
	if r2.Result != core.NoModRef {
		t.Fatalf("collaborative read-only failed: %s via %v", r2.Result, r2.Contribs)
	}
	if !hasAssert(r2, NameReadOnly) {
		t.Errorf("missing read-only assertion: %v", r2.Options)
	}
	// The prohibitive points-to assertion must have been replaced.
	if core.MinCost(r2.Options) >= core.Prohibitive {
		t.Error("points-to assertion was not replaced by the heap check")
	}
	// Conflict points: the assertion re-allocates the site.
	for _, opt := range r2.Options {
		for _, a := range opt.Asserts {
			if a.Module == NameReadOnly && len(a.Conflicts) == 0 {
				t.Error("read-only assertion must declare its site conflict")
			}
		}
	}
}

func TestShortLivedModule(t *testing.T) {
	w := load(t, `
int* scratch;
int out;
void main() {
    for (int i = 0; i < 150; i++) {
        scratch = malloc(int, 16);
        int* s = scratch;
        s[i % 16] = i;
        out = out + s[i % 16];
        free(scratch);
    }
    print(out);
}`)
	l := w.onlyLoop("main")
	var st, ld *ir.Instr
	w.mod.FuncNamed("main").Instrs(func(in *ir.Instr) {
		ptr, _, ok := in.PointerOperand()
		if !ok {
			return
		}
		base := core.Decompose(ptr).Base
		if bi, isI := base.(*ir.Instr); isI && bi.Op == ir.OpLoad {
			if in.Op == ir.OpStore {
				st = in
			} else {
				ld = in
			}
		}
	})
	if st == nil || ld == nil {
		t.Fatal("scratch accesses not found")
	}
	// Static analysis cannot prove freshness (the pointer went through a
	// global), but short-lived speculation removes cross-iteration deps.
	sl := NewShortLived(w.data)
	if r := sl.ModRef(w.mrq(st, ld, core.Before, l), core.NoHelp{}); r.Result == core.NoModRef {
		t.Fatal("short-lived alone must not resolve")
	}
	o := w.scafOrch()
	r := o.ModRef(w.mrq(st, ld, core.Before, l))
	if r.Result != core.NoModRef || !hasAssert(r, NameShortLived) {
		t.Fatalf("collaborative short-lived failed: %s via %v", r.Result, r.Contribs)
	}
	// Intra-iteration the dependence is real: never removed.
	r = o.ModRef(w.mrq(st, ld, core.Same, l))
	if r.Result == core.NoModRef {
		t.Error("intra-iteration dep through scratch must remain")
	}
}

func TestResidueModule(t *testing.T) {
	w := load(t, `
struct pair { int a; int b; };
int outA;
void main() {
    struct pair* p = malloc(struct pair, 32);
    for (int i = 0; i < 100; i++) {
        p[i % 32].a = i;
        p[i % 32].b = i * 2;
    }
    outA = p[3].a;
    print(outA);
}`)
	l := w.onlyLoop("main")
	res := NewResidue(w.data)
	var sa, sb *ir.Instr
	w.mod.FuncNamed("main").Instrs(func(in *ir.Instr) {
		if in.Op != ir.OpStore {
			return
		}
		if f, ok := in.Args[1].(*ir.Instr); ok && f.Op == ir.OpField && l.ContainsInstr(in) {
			if f.FieldIdx == 0 {
				sa = in
			} else {
				sb = in
			}
		}
	})
	if sa == nil || sb == nil {
		t.Fatal("field stores not found")
	}
	pa, _, _ := sa.PointerOperand()
	pb, _, _ := sb.PointerOperand()
	r := res.Alias(&core.AliasQuery{
		L1:  core.MemLoc{Ptr: pa, Size: 8},
		L2:  core.MemLoc{Ptr: pb, Size: 8},
		Rel: core.Before, Loop: l,
	}, core.NoHelp{})
	if r.Result != core.NoAlias {
		t.Fatalf("residue disjointness: %s", r.Result)
	}
	if !hasAssertAlias(r, NameResidue) {
		t.Error("missing residue assertion")
	}
	// Unknown sizes: bail.
	r = res.Alias(&core.AliasQuery{
		L1: core.MemLoc{Ptr: pa, Size: core.UnknownSize},
		L2: core.MemLoc{Ptr: pb, Size: 8},
	}, core.NoHelp{})
	if r.Result != core.MayAlias {
		t.Error("unknown sizes must bail")
	}
}

func hasAssertAlias(r core.AliasResponse, module string) bool {
	for _, o := range r.Options {
		for _, a := range o.Asserts {
			if a.Module == module {
				return true
			}
		}
	}
	return false
}

func TestReadOnlyShortLivedConflict(t *testing.T) {
	// The same allocation site cannot be re-allocated into two heaps: the
	// assertions must conflict.
	g := &ir.Global{GName: "site", Elem: ir.Int}
	roA := core.Assertion{Module: NameReadOnly, Kind: "ro-heap",
		Conflicts: []core.Point{{G: g}}, Cost: 1}
	slA := core.Assertion{Module: NameShortLived, Kind: "sl-heap",
		Conflicts: []core.Point{{G: g}}, Cost: 1}
	if !core.OptionsConflict(
		[]core.Option{{Asserts: []core.Assertion{roA}}},
		[]core.Option{{Asserts: []core.Assertion{slA}}},
	) {
		t.Error("ro-heap and sl-heap on one site must conflict")
	}
}

func TestGroupsCoverAllModules(t *testing.T) {
	d := &profile.Data{}
	_ = d
	groups := Groups()
	for _, name := range SpecNames() {
		if _, ok := groups[name]; !ok {
			t.Errorf("module %s missing from Groups", name)
		}
	}
	bundled := BundledGroups()
	if bundled[NameReadOnly] != bundled[NamePointsTo] {
		t.Error("bundled groups must join separation modules")
	}
	if g := Groups(); g[NameReadOnly] == g[NamePointsTo] {
		t.Error("paper confluence must isolate read-only from points-to")
	}
}

// TestGlobalMallocControlSpecCollaboration exercises the paper's §4.2.4
// reachability collaboration: a speculatively dead store of an unknown
// pointer into a pointer global would normally destroy the global-malloc
// property; the premise mod-ref query lets control speculation discount
// it, and the resulting NoAlias carries the control assertion.
func TestGlobalMallocControlSpecCollaboration(t *testing.T) {
	w := load(t, `
int* pool;
int* other;
int out;
void main() {
    pool = malloc(int, 16);
    other = malloc(int, 16);
    for (int k = 0; k < 16; k++) {
        int* o = other;
        o[k] = k * 7;                // varying values: loads not predictable
    }
    for (int i = 0; i < 200; i++) {
        if (i > 1000000) {           // never taken
            int* stale = pool;
            pool = stale + 1;        // spec-dead store of an unknown pointer
        }
        int* p = pool;
        int* q = other;
        p[i % 16] = i;
        out = out + q[i % 16];
    }
    print(out);
}`)
	// The main loop is the one with the richer memory-op population (the
	// init loop only stores).
	var l *cfg.Loop
	for _, cand := range w.prog.Forests[w.mod.FuncNamed("main")].All {
		if l == nil || len(cand.MemOps()) > len(l.MemOps()) {
			l = cand
		}
	}
	if l == nil {
		t.Fatal("main loop not found")
	}
	var pStore, qLoad *ir.Instr
	w.mod.FuncNamed("main").Instrs(func(in *ir.Instr) {
		ptr, _, ok := in.PointerOperand()
		if !ok || !l.ContainsInstr(in) {
			return
		}
		base := core.Decompose(ptr).Base
		ld, isLd := base.(*ir.Instr)
		if !isLd || ld.Op != ir.OpLoad {
			return
		}
		switch ld.Args[0] {
		case ir.Value(w.mod.GlobalNamed("pool")):
			if in.Op == ir.OpStore {
				pStore = in
			}
		case ir.Value(w.mod.GlobalNamed("other")):
			if in.Op == ir.OpLoad {
				qLoad = in
			}
		}
	})
	if pStore == nil || qLoad == nil {
		t.Fatal("accesses not found")
	}

	// Confluence: global-malloc's premise cannot reach control speculation
	// (different routing groups), so the unknown store blocks the property.
	confMods := analysis.DefaultModules(w.prog)
	confGroups := analysis.Groups(confMods)
	confMods = append(confMods, DefaultModules(w.data)...)
	for k, v := range Groups() {
		confGroups[k] = v
	}
	conf := core.NewOrchestrator(core.Config{
		Modules: confMods, Groups: confGroups, Routing: core.RouteIsolated,
	})
	r := conf.ModRef(w.mrq(pStore, qLoad, core.Same, l))
	if r.Result == core.NoModRef {
		t.Fatalf("confluence should not resolve this: %s via %v", r.Result, r.Contribs)
	}

	// SCAF: premise reaches control speculation; property holds with the
	// control-flow assertion attached.
	o := w.scafOrch()
	r = o.ModRef(w.mrq(pStore, qLoad, core.Same, l))
	if r.Result != core.NoModRef {
		t.Fatalf("SCAF should resolve via global-malloc x control-spec: %s via %v", r.Result, r.Contribs)
	}
	if !hasAssert(r, NameControlSpec) {
		t.Errorf("missing control assertion: %v", r.Options)
	}
	haveGM := false
	for _, c := range r.Contribs {
		if c == "global-malloc" {
			haveGM = true
		}
	}
	if !haveGM {
		t.Errorf("global-malloc must be credited: %v", r.Contribs)
	}
}
