package spec

import (
	"scaf/internal/cfg"
	"scaf/internal/core"
	"scaf/internal/ir"
	"scaf/internal/profile"
)

// ControlSpec is the control-speculation module (paper §4.2.4). It is
// factored twice over:
//
//  1. speculatively dead instructions (blocks never executed during
//     profiling) cannot source or sink memory dependences, resolving
//     queries directly; and
//  2. it re-issues incoming queries with *speculative* dominator and
//     post-dominator trees — computed on the CFG with never-taken edges
//     removed — so control-flow-sensitive modules (like kill-flow) can
//     resolve them, exactly as in the paper's motivating example.
//
// Validation inserts a misspeculation trigger on each never-taken edge;
// since the branch is computed anyway, the cost is practically zero.
type ControlSpec struct {
	core.BaseModule
	data *profile.Data
	// DisableTreeSubstitution turns off the speculative dominator-tree
	// premise queries (rule 2), leaving only the spec-dead rule — the
	// ablation showing where the motivating example's power comes from.
	DisableTreeSubstitution bool

	specDT  map[*ir.Func]*cfg.Tree
	specPDT map[*ir.Func]*cfg.Tree
	biased  map[*ir.Func][]profile.EdgeKey
	cfgAst  map[*ir.Func]*core.Assertion
}

// NewControlSpec constructs the module from an edge profile.
func NewControlSpec(d *profile.Data) *ControlSpec {
	return &ControlSpec{
		data:    d,
		specDT:  map[*ir.Func]*cfg.Tree{},
		specPDT: map[*ir.Func]*cfg.Tree{},
		biased:  map[*ir.Func][]profile.EdgeKey{},
		cfgAst:  map[*ir.Func]*core.Assertion{},
	}
}

func (m *ControlSpec) Name() string          { return NameControlSpec }
func (m *ControlSpec) Kind() core.ModuleKind { return core.Speculation }

// trees returns the speculative trees of fn, computing them on demand.
// ok is false when fn has no biased edges (speculation cannot help).
func (m *ControlSpec) trees(fn *ir.Func) (dt, pdt *cfg.Tree, ok bool) {
	if t, done := m.specDT[fn]; done {
		return t, m.specPDT[fn], t != nil
	}
	biased := m.data.Edge.BiasedEdges(fn)
	m.biased[fn] = biased
	if len(biased) == 0 {
		m.specDT[fn] = nil
		m.specPDT[fn] = nil
		return nil, nil, false
	}
	dead := map[profile.EdgeKey]bool{}
	for _, e := range biased {
		dead[e] = true
	}
	filter := func(from, to *ir.Block) bool {
		return !dead[profile.EdgeKey{From: from, To: to}]
	}
	dt = cfg.Dominators(fn, filter)
	pdt = cfg.PostDominators(fn, filter)
	m.specDT[fn] = dt
	m.specPDT[fn] = pdt
	return dt, pdt, true
}

// cfgAssertion returns the (free) assertion covering fn's speculative
// control flow: a misspeculation trigger on every never-taken edge.
func (m *ControlSpec) cfgAssertion(fn *ir.Func) core.Assertion {
	if a := m.cfgAst[fn]; a != nil {
		return *a
	}
	a := &core.Assertion{
		Module: NameControlSpec,
		Kind:   "never-taken-edges",
		Cost:   core.CostCtrlCheck,
	}
	for _, e := range m.biased[fn] {
		a.Points = append(a.Points, core.Point{Block: e.From, EdgeTo: e.To})
	}
	m.cfgAst[fn] = a
	return *a
}

// specDead reports whether the instruction is speculatively dead.
func (m *ControlSpec) specDead(in *ir.Instr) bool {
	return in != nil && m.data.Edge.SpecDead(in.Blk)
}

func (m *ControlSpec) ModRef(q *core.ModRefQuery, h core.Handle) core.ModRefResponse {
	if q.I1 == nil {
		return core.ModRefConservative()
	}
	fn := q.I1.Blk.Fn

	// Rule 1: speculatively dead endpoints cannot participate in
	// dependences.
	if m.specDead(q.I1) || m.specDead(q.I2) {
		m.trees(fn) // populate biased-edge list
		return core.ModRefSpec(core.NoModRef, NameControlSpec, m.cfgAssertion(fn))
	}

	// Rule 2: substitute speculative control-flow trees and let the
	// ensemble retry. Modules are agnostic to the trees' provenance.
	if m.DisableTreeSubstitution {
		return core.ModRefConservative()
	}
	dt, pdt, ok := m.trees(fn)
	if !ok || q.DT == dt {
		return core.ModRefConservative() // already speculative, or no bias
	}
	cp := *q
	cp.DT = dt
	cp.PDT = pdt
	pr := h.PremiseModRef(&cp)
	if pr.Result == core.ModRef {
		return core.ModRefConservative()
	}
	aff := core.AffordableOptions(pr.Options)
	if len(aff) == 0 {
		return core.ModRefConservative()
	}
	// The result is now additionally predicated on the speculative CFG.
	withCtrl := core.CrossOptions(aff, []core.Option{{Asserts: []core.Assertion{m.cfgAssertion(fn)}}})
	if len(withCtrl) == 0 {
		return core.ModRefConservative()
	}
	return core.ModRefResponse{
		Result:   pr.Result,
		Options:  withCtrl,
		Contribs: core.MergeContribs([]string{NameControlSpec}, pr.Contribs),
	}
}
