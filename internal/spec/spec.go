// Package spec implements SCAF's speculation modules (paper §4.2): the
// analysis halves of speculative techniques, decomposed per the design
// pattern of §4.2.1. Each module interprets profiling information in terms
// of dependence analysis, produces speculative assertions with transform
// points / costs / conflict points, and collaborates through premise
// queries like any other module.
package spec

import (
	"scaf/internal/core"
	"scaf/internal/profile"
)

// Module names (assertion Module ids).
const (
	NameControlSpec = "control-spec"
	NameValuePred   = "value-pred"
	NamePointsTo    = "points-to"
	NameReadOnly    = "read-only"
	NameShortLived  = "short-lived"
	NameResidue     = "residue"
)

// DefaultModules returns the six speculation modules in recommended order
// (cheapest average assertion cost first; points-to last since its own
// assertions are prohibitive).
func DefaultModules(d *profile.Data) []core.Module {
	return []core.Module{
		NewControlSpec(d),
		NewValuePred(d),
		NewResidue(d),
		NewReadOnly(d),
		NewShortLived(d),
		NewPointsTo(d),
	}
}

// Groups maps each speculation module to its confluence-routing group.
// The paper's composition-by-confluence baseline passes each query "to
// each module in isolation" (§5): every speculation module is its own
// group, so e.g. the read-only module cannot consult the points-to module
// for its containment premises. Only the memory-analysis modules stay
// bundled (CAF is credited as prior collaborative work).
func Groups() map[string]string {
	return map[string]string{
		NameControlSpec: NameControlSpec,
		NameValuePred:   NameValuePred,
		NameResidue:     NameResidue,
		NameReadOnly:    NameReadOnly,
		NameShortLived:  NameShortLived,
		NamePointsTo:    NamePointsTo,
	}
}

// BundledGroups is an ablation variant of Groups that re-bundles the
// three modules decomposed out of monolithic speculative separation
// (Johnson et al. [25]) — read-only, short-lived, points-to — modelling a
// stronger hypothetical baseline where that prior monolith participates
// as one unit.
func BundledGroups() map[string]string {
	g := Groups()
	g[NameReadOnly] = "separation"
	g[NameShortLived] = "separation"
	g[NamePointsTo] = "separation"
	return g
}

// SpecNames lists the speculation module names (reporting order).
func SpecNames() []string {
	return []string{
		NameReadOnly, NameValuePred, NameResidue,
		NameControlSpec, NamePointsTo, NameShortLived,
	}
}
