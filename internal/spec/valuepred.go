package spec

import (
	"scaf/internal/core"
	"scaf/internal/ir"
	"scaf/internal/profile"
)

// ValuePred is the value-prediction module (paper §4.2.4): loads that
// returned one single value during profiling are predictable. Dependences
// that sink into or source from a predictable load disappear (the client
// replaces the load's consumers with the prediction and validates with a
// compare). Additionally, a predictable load that post-dominates a
// dependence's source and dominates its destination acts as a kill: the
// module issues MustAlias premise queries against both footprints.
type ValuePred struct {
	core.BaseModule
	data *profile.Data
}

// NewValuePred constructs the module.
func NewValuePred(d *profile.Data) *ValuePred { return &ValuePred{data: d} }

func (m *ValuePred) Name() string          { return NameValuePred }
func (m *ValuePred) Kind() core.ModuleKind { return core.Speculation }

// predictable reports whether in is a profiled-invariant load.
func (m *ValuePred) predictable(in *ir.Instr) bool {
	if in == nil || in.Op != ir.OpLoad {
		return false
	}
	_, ok := m.data.Value.Predictable(in)
	return ok
}

// checkAssertion is the value-check validation for load ld.
func (m *ValuePred) checkAssertion(ld *ir.Instr) core.Assertion {
	return core.Assertion{
		Module: NameValuePred,
		Kind:   "value-check",
		Points: []core.Point{{Instr: ld}},
		Cost:   core.CostValueCheck * float64(m.data.Value.ExecCount(ld)),
	}
}

// mustCover asks the ensemble whether two locations are the same
// (MustAlias). Per the paper's module design, value prediction never
// reasons about footprints itself — even syntactic identity goes through
// a premise query, making every kill a collaboration.
func (m *ValuePred) mustCover(q *core.ModRefQuery, a, b core.MemLoc, h core.Handle) (bool, []core.Option, []string) {
	pr := h.PremiseAlias(&core.AliasQuery{
		L1: a, L2: b,
		Rel: core.Same, Loop: q.Loop, Ctx: q.Ctx,
		Desired: core.WantMustAlias,
		DT:      q.DT, PDT: q.PDT,
	})
	if pr.Result == core.MustAlias {
		if aff := core.AffordableOptions(pr.Options); len(aff) > 0 {
			return true, aff, pr.Contribs
		}
	}
	return false, nil, nil
}

func (m *ValuePred) ModRef(q *core.ModRefQuery, h core.Handle) core.ModRefResponse {
	if q.I1 == nil || q.Loop == nil {
		return core.ModRefConservative()
	}

	// Dependences sinking into or sourcing from a predictable load vanish.
	if m.predictable(q.I2) {
		return core.ModRefSpec(core.NoModRef, NameValuePred, m.checkAssertion(q.I2))
	}
	if m.predictable(q.I1) {
		return core.ModRefSpec(core.NoModRef, NameValuePred, m.checkAssertion(q.I1))
	}

	// Kill via prediction: P post-dominates the source and dominates the
	// destination; its footprint must-aliases either endpoint's footprint.
	if q.I2 == nil || q.DT == nil || q.PDT == nil {
		return core.ModRefConservative()
	}
	fp1 := core.MemLoc{Size: core.UnknownSize}
	if p, s, ok := q.I1.PointerOperand(); ok {
		fp1 = core.MemLoc{Ptr: p, Size: s}
	}
	fp2, have2 := q.TargetLoc()

	for _, b := range q.I1.Blk.Fn.Blocks {
		if !q.Loop.Contains(b) {
			continue
		}
		for _, p := range b.Instrs {
			if p == q.I1 || p == q.I2 || !m.predictable(p) {
				continue
			}
			if !q.PDT.DominatesInstr(p, q.I1) || !q.DT.DominatesInstr(p, q.I2) {
				continue
			}
			pp, ps, _ := p.PointerOperand()
			ploc := core.MemLoc{Ptr: pp, Size: ps}
			for _, loc := range []core.MemLoc{fp1, fp2} {
				if loc.Ptr == nil {
					continue
				}
				if !have2 && loc.Ptr == fp2.Ptr {
					continue
				}
				if ok, opts, contribs := m.mustCover(q, ploc, loc, h); ok {
					withCheck := core.CrossOptions(opts,
						[]core.Option{{Asserts: []core.Assertion{m.checkAssertion(p)}}})
					if len(withCheck) == 0 {
						continue
					}
					return core.ModRefResponse{
						Result:   core.NoModRef,
						Options:  withCheck,
						Contribs: core.MergeContribs([]string{NameValuePred}, contribs),
					}
				}
			}
		}
	}
	return core.ModRefConservative()
}
