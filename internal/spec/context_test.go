package spec

import (
	"testing"

	"scaf/internal/core"
	"scaf/internal/ir"
)

// ctxProgram calls one helper with two different buffers. The helper's
// static store pointer addresses BOTH allocation sites context-
// insensitively, but exactly one under each call site.
const ctxProgram = `
int* bufA;
int* bufB;
int out;

void fill(int* p, int v) {
    for (int i = 0; i < 60; i++) {
        p[i % 8] = v + i;
    }
}

void main() {
    bufA = malloc(int, 8);
    bufB = malloc(int, 8);
    for (int r = 0; r < 50; r++) {
        fill(bufA, 1);      // call site 1
        fill(bufB, 100);    // call site 2
    }
    int* a = bufA;
    out = a[3];
    print(out);
}
`

// TestCallingContextRefinesPointsTo exercises the cc query parameter
// (§3.2.2): without a context the helper's store may target either
// buffer; scoped to one call site, points-to speculation separates them.
func TestCallingContextRefinesPointsTo(t *testing.T) {
	w := load(t, ctxProgram)
	pt := NewPointsTo(w.data)

	// The store inside fill and its pointer value.
	var st *ir.Instr
	w.mod.FuncNamed("fill").Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpStore {
			st = in
		}
	})
	if st == nil {
		t.Fatal("store not found")
	}
	ptr, _, _ := st.PointerOperand()

	// The two call sites in main, and the malloc site of bufB.
	var calls []*ir.Instr
	var mallocs []*ir.Instr
	w.mod.FuncNamed("main").Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpCall && in.Callee != nil && in.Callee.Name == "fill" {
			calls = append(calls, in)
		}
		if in.Op == ir.OpMalloc {
			mallocs = append(mallocs, in)
		}
	})
	if len(calls) != 2 || len(mallocs) != 2 {
		t.Fatalf("calls=%d mallocs=%d", len(calls), len(mallocs))
	}
	mallocB := mallocs[1]

	repB := core.MemLoc{Ptr: mallocB, Size: core.UnknownSize}
	locStore := core.MemLoc{Ptr: ptr, Size: 8}

	// Context-insensitive: the pointer was observed addressing both
	// buffers, so nothing can be concluded against either site.
	r := pt.Alias(&core.AliasQuery{L1: locStore, L2: repB}, core.NoHelp{})
	if r.Result != core.MayAlias {
		t.Fatalf("context-insensitive: %s, want MayAlias", r.Result)
	}

	// Scoped to call site 1 (the bufA call): disjoint from bufB's site.
	r = pt.Alias(&core.AliasQuery{
		L1: locStore, L2: repB,
		Ctx: &core.CallCtx{Sites: []*ir.Instr{calls[0]}},
	}, core.NoHelp{})
	if r.Result != core.NoAlias {
		t.Fatalf("ctx=call1 vs bufB: %s, want NoAlias", r.Result)
	}

	// Scoped to call site 2: contained in bufB's site.
	r = pt.Alias(&core.AliasQuery{
		L1: locStore, L2: repB,
		Ctx: &core.CallCtx{Sites: []*ir.Instr{calls[1]}},
	}, core.NoHelp{})
	if r.Result != core.SubAlias {
		t.Fatalf("ctx=call2 vs bufB: %s, want SubAlias", r.Result)
	}

	// An unobserved context falls back to the context-insensitive set.
	bogus := calls[0]
	r = pt.Alias(&core.AliasQuery{
		L1: locStore, L2: repB,
		Ctx: &core.CallCtx{Sites: []*ir.Instr{bogus, bogus, bogus, bogus}},
	}, core.NoHelp{})
	if r.Result != core.MayAlias {
		t.Fatalf("bogus deep ctx: %s, want MayAlias fallback", r.Result)
	}
}

// TestCalleeSummaryUsesContext: the factored path — a mod-ref query about
// one call site resolves through a context-scoped premise even though the
// callee's accesses are context-insensitively ambiguous.
func TestCalleeSummaryUsesContext(t *testing.T) {
	w := load(t, ctxProgram)
	o := w.scafOrch()

	var calls []*ir.Instr
	w.mod.FuncNamed("main").Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpCall && in.Callee != nil && in.Callee.Name == "fill" {
			calls = append(calls, in)
		}
	})
	// Does fill(bufA, ..) touch the footprint of fill(bufB, ..)? The
	// callee-summary module maps both calls' param roots to their
	// arguments (loads of different single-site globals), which
	// global-malloc separates; the context plumbing must not break this.
	main := w.mod.FuncNamed("main")
	loop := w.prog.Forests[main].All[0]
	r := o.ModRef(&core.ModRefQuery{
		I1: calls[0], I2: calls[1], Rel: core.Same, Loop: loop,
		DT: w.prog.Dom[main], PDT: w.prog.PostDom[main],
	})
	if r.Result != core.NoModRef {
		t.Fatalf("call1 vs call2: %s via %v, want NoModRef", r.Result, r.Contribs)
	}
}
