package spec

import (
	"scaf/internal/core"
	"scaf/internal/ir"
	"scaf/internal/profile"
)

// PointsTo is the points-to speculation module (paper §4.2.3), a base
// module: the points-to profiler maps every pointer to the allocation
// sites it was observed addressing. Disjoint site sets give NoAlias;
// containment in a single site's object gives SubAlias — including
// against *allocation-site representatives*, the idiom factored modules
// (read-only, short-lived) use in their premise queries.
//
// Raw points-to assertions are prohibitively expensive to validate, so
// clients never pay for them directly; factored modules replace them with
// their own cheap heap checks (§4.2.3).
type PointsTo struct {
	core.BaseModule
	data *profile.Data
}

// NewPointsTo constructs the module.
func NewPointsTo(d *profile.Data) *PointsTo { return &PointsTo{data: d} }

func (m *PointsTo) Name() string          { return NamePointsTo }
func (m *PointsTo) Kind() core.ModuleKind { return core.Speculation }

// assertion is the (prohibitive) points-to objects assertion for ptrs.
func (m *PointsTo) assertion(ptrs ...ir.Value) core.Assertion {
	a := core.Assertion{
		Module: NamePointsTo,
		Kind:   "points-to-objects",
		Cost:   core.Prohibitive,
	}
	for _, p := range ptrs {
		if in, ok := p.(*ir.Instr); ok {
			a.Points = append(a.Points, core.Point{Instr: in})
		}
	}
	return a
}

// siteRep recognizes an allocation-site representative location: a
// pointer that IS an allocation base (offset 0), denoting the whole
// object(s) of that site.
func siteRep(l core.MemLoc) (profile.Site, bool) {
	d := core.Decompose(l.Ptr)
	if !d.KnownOff || d.Off != 0 {
		return profile.Site{}, false
	}
	switch b := d.Base.(type) {
	case *ir.Global:
		if l.Size == core.UnknownSize || l.Size >= b.Elem.Size() {
			return profile.Site{G: b}, true
		}
	case *ir.Instr:
		if b.IsAllocation() {
			sz, known := core.BaseObjectSize(b)
			if l.Size == core.UnknownSize || !known || l.Size >= sz {
				return profile.Site{In: b}, true
			}
		}
	}
	return profile.Site{}, false
}

func (m *PointsTo) Alias(q *core.AliasQuery, h core.Handle) core.AliasResponse {
	pt := m.data.PointsTo

	// The calling-context parameter (§3.2.2) refines the observed set to
	// one chain of call sites, separating dynamic instances of a static
	// pointer.
	setsOf := func(v ir.Value) map[profile.Site]bool {
		if q.Ctx != nil && len(q.Ctx.Sites) > 0 {
			if s := pt.SitesOfCtx(v, q.Ctx.Sites); len(s) > 0 {
				return s
			}
		}
		return pt.SitesOf(v)
	}

	// Location vs allocation-site representative.
	try := func(loc, rep core.MemLoc) (core.AliasResponse, bool) {
		site, ok := siteRep(rep)
		if !ok || !pt.Observed(loc.Ptr) {
			return core.AliasResponse{}, false
		}
		sites := setsOf(loc.Ptr)
		if len(sites) == 1 && sites[site] {
			return core.AliasSpec(core.SubAlias, NamePointsTo, m.assertion(loc.Ptr)), true
		}
		if !sites[site] && q.Desired != core.WantMustAlias {
			return core.AliasSpec(core.NoAlias, NamePointsTo, m.assertion(loc.Ptr)), true
		}
		return core.AliasResponse{}, false
	}
	if r, ok := try(q.L1, q.L2); ok {
		return r
	}
	if r, ok := try(q.L2, q.L1); ok {
		// Containment is directional: L1 ⊆ L2 is what SubAlias reports.
		if r.Result == core.SubAlias {
			return core.MayAliasResponse()
		}
		return r
	}

	// General pointer vs pointer disjointness.
	if q.Desired == core.WantMustAlias {
		return core.MayAliasResponse()
	}
	s1, s2 := setsOf(q.L1.Ptr), setsOf(q.L2.Ptr)
	if len(s1) > 0 && len(s2) > 0 && disjointSiteSets(s1, s2) {
		return core.AliasSpec(core.NoAlias, NamePointsTo, m.assertion(q.L1.Ptr, q.L2.Ptr))
	}
	return core.MayAliasResponse()
}

func disjointSiteSets(a, b map[profile.Site]bool) bool {
	for s := range a {
		if b[s] {
			return false
		}
	}
	return true
}
