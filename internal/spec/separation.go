package spec

import (
	"sort"

	"scaf/internal/cfg"
	"scaf/internal/core"
	"scaf/internal/ir"
	"scaf/internal/profile"
)

// sortSites orders sites deterministically (profile maps are unordered).
func sortSites(s []profile.Site) []profile.Site {
	sort.Slice(s, func(i, j int) bool { return s[i].String() < s[j].String() })
	return s
}

// sitePoint converts an allocation site to an assertion point.
func sitePoint(s profile.Site) core.Point {
	if s.G != nil {
		return core.Point{G: s.G}
	}
	return core.Point{Instr: s.In}
}

// siteRepValue is the IR value representing a site's object(s).
func siteRepValue(s profile.Site) ir.Value {
	if s.G != nil {
		return s.G
	}
	return s.In
}

// containment resolves "is loc fully inside one of sites' objects?" by
// issuing premise alias queries against allocation-site representatives —
// the collaboration idiom of §4.2.3/§4.2.4. On success it returns the
// premise's assertion options with points-to assertions stripped (the
// caller replaces them with its own cheap validation, exactly as the
// paper prescribes), plus whether the containment was proven for free by
// memory analysis (MustAlias with an empty option), which lets the caller
// skip heap checks entirely.
func containment(
	q *core.ModRefQuery, loc core.MemLoc, sites []profile.Site, h core.Handle,
) (site profile.Site, opts []core.Option, contribs []string, free, ok bool) {
	for _, s := range sites {
		rep := core.MemLoc{Ptr: siteRepValue(s), Size: s.Size()}
		if rep.Size == 0 {
			rep.Size = core.UnknownSize
		}
		pr := h.PremiseAlias(&core.AliasQuery{
			L1: loc, L2: rep,
			Rel: core.Same, Loop: q.Loop, Ctx: q.Ctx,
			Desired: core.WantMustAlias,
			DT:      q.DT, PDT: q.PDT,
		})
		if pr.Result != core.MustAlias && pr.Result != core.SubAlias {
			continue
		}
		stripped := stripPointsTo(pr.Options)
		if len(stripped) == 0 {
			continue
		}
		return s, stripped, pr.Contribs, pr.Result == core.MustAlias && core.HasFree(pr.Options), true
	}
	return profile.Site{}, nil, nil, false, false
}

// stripPointsTo removes prohibitively-priced points-to assertions from
// each option: the factored module's own heap separation subsumes them
// (§4.2.3: "these modules can safely ignore the expensive-to-validate
// points-to speculation assertion ... and replace it with their own").
func stripPointsTo(opts []core.Option) []core.Option {
	var out []core.Option
	for _, o := range opts {
		kept := core.Option{}
		for _, a := range o.Asserts {
			if a.Module == NamePointsTo {
				continue
			}
			kept.Asserts = append(kept.Asserts, a)
		}
		out = append(out, kept)
	}
	return core.CheapestOf(out)
}

// ReadOnly is the read-only module (§4.2.4): allocation sites whose
// objects are never written while the target loop runs. Validation
// separates those objects into a read-only heap; pointer heap checks are
// skipped when memory analysis already proves the footprint's identity
// (MustAlias at zero cost). Read-only assertions re-allocate the site, so
// they conflict with any other assertion touching the same site.
type ReadOnly struct {
	core.BaseModule
	data  *profile.Data
	cache map[*cfg.Loop][]profile.Site
}

// NewReadOnly constructs the module.
func NewReadOnly(d *profile.Data) *ReadOnly {
	return &ReadOnly{data: d, cache: map[*cfg.Loop][]profile.Site{}}
}

func (m *ReadOnly) Name() string          { return NameReadOnly }
func (m *ReadOnly) Kind() core.ModuleKind { return core.Speculation }

func (m *ReadOnly) sites(l *cfg.Loop) []profile.Site {
	if s, ok := m.cache[l]; ok {
		return s
	}
	s := sortSites(m.data.Lifetime.ReadOnlySites(l))
	m.cache[l] = s
	return s
}

// assertion builds the ro-heap assertion for a site. The loop header
// travels as a transform point so the validation transform (and our
// runtime monitor) knows the window in which the heap is protected.
func (m *ReadOnly) assertion(l *cfg.Loop, s profile.Site, guarded ir.Value, free bool) core.Assertion {
	cost := 0.0
	if !free {
		cost = core.CostHeapCheck * float64(m.data.PointsTo.ExecCount(guarded))
	}
	return core.Assertion{
		Module:    NameReadOnly,
		Kind:      "ro-heap",
		Points:    []core.Point{sitePoint(s), {Block: l.Header}},
		Conflicts: []core.Point{sitePoint(s)},
		Cost:      cost,
	}
}

func (m *ReadOnly) ModRef(q *core.ModRefQuery, h core.Handle) core.ModRefResponse {
	if q.Loop == nil || q.I1 == nil {
		return core.ModRefConservative()
	}
	sites := m.sites(q.Loop)
	if len(sites) == 0 {
		return core.ModRefConservative()
	}

	build := func(res core.ModRefResult, s profile.Site, guarded ir.Value, opts []core.Option, contribs []string, free bool) core.ModRefResponse {
		withRO := core.CrossOptions(opts, []core.Option{{Asserts: []core.Assertion{m.assertion(q.Loop, s, guarded, free)}}})
		if len(withRO) == 0 {
			return core.ModRefConservative()
		}
		return core.ModRefResponse{
			Result:   res,
			Options:  withRO,
			Contribs: core.MergeContribs([]string{NameReadOnly}, contribs),
		}
	}

	// Case A: the target footprint lies in read-only memory. Writes cannot
	// touch it: a store gets NoModRef, a writing call still may read (Ref).
	if loc, have := q.TargetLoc(); have {
		if s, opts, contribs, free, ok := containment(q, loc, sites, h); ok {
			if q.I1.Op == ir.OpStore {
				return build(core.NoModRef, s, loc.Ptr, opts, contribs, free)
			}
			return build(core.Ref, s, loc.Ptr, opts, contribs, free)
		}
	}

	// Case B: I1's own footprint lies in read-only memory and I2 writes:
	// the write cannot touch read-only memory, so the footprints are
	// disjoint under the assertion.
	if q.I2 != nil && q.I2.Op == ir.OpStore {
		if p1, s1, okP := q.I1.PointerOperand(); okP {
			loc1 := core.MemLoc{Ptr: p1, Size: s1}
			if s, opts, contribs, free, ok := containment(q, loc1, sites, h); ok {
				return build(core.NoModRef, s, loc1.Ptr, opts, contribs, free)
			}
		}
	}
	return core.ModRefConservative()
}

// ShortLived is the short-lived module (§4.2.4): allocation sites whose
// every object lives within a single iteration of the target loop. Such
// objects cannot carry cross-iteration dependences. Validation separates
// the objects into their own heap and checks, at every iteration end,
// that the allocated and freed counts match.
type ShortLived struct {
	core.BaseModule
	data  *profile.Data
	cache map[*cfg.Loop][]profile.Site
}

// NewShortLived constructs the module.
func NewShortLived(d *profile.Data) *ShortLived {
	return &ShortLived{data: d, cache: map[*cfg.Loop][]profile.Site{}}
}

func (m *ShortLived) Name() string          { return NameShortLived }
func (m *ShortLived) Kind() core.ModuleKind { return core.Speculation }

func (m *ShortLived) sites(l *cfg.Loop) []profile.Site {
	if s, ok := m.cache[l]; ok {
		return s
	}
	s := sortSites(m.data.Lifetime.ShortLivedSites(l))
	m.cache[l] = s
	return s
}

func (m *ShortLived) assertion(l *cfg.Loop, s profile.Site, guarded ir.Value, free bool) core.Assertion {
	iters := float64(0)
	if st := m.data.LoopStats[l]; st != nil {
		iters = float64(st.HeaderExecs)
	}
	cost := core.CostIterCheck * iters
	if !free {
		cost += core.CostHeapCheck * float64(m.data.PointsTo.ExecCount(guarded))
	}
	return core.Assertion{
		Module:    NameShortLived,
		Kind:      "sl-heap",
		Points:    []core.Point{sitePoint(s), {Block: l.Header}},
		Conflicts: []core.Point{sitePoint(s)},
		Cost:      cost,
	}
}

func (m *ShortLived) ModRef(q *core.ModRefQuery, h core.Handle) core.ModRefResponse {
	if q.Loop == nil || q.I1 == nil || q.Rel == core.Same {
		return core.ModRefConservative() // only cross-iteration dependences
	}
	sites := m.sites(q.Loop)
	if len(sites) == 0 {
		return core.ModRefConservative()
	}
	locs := make([]core.MemLoc, 0, 2)
	if p1, s1, ok := q.I1.PointerOperand(); ok {
		locs = append(locs, core.MemLoc{Ptr: p1, Size: s1})
	}
	if loc2, have := q.TargetLoc(); have {
		locs = append(locs, loc2)
	}
	for _, loc := range locs {
		if s, opts, contribs, free, ok := containment(q, loc, sites, h); ok {
			withSL := core.CrossOptions(opts, []core.Option{{Asserts: []core.Assertion{m.assertion(q.Loop, s, loc.Ptr, free)}}})
			if len(withSL) == 0 {
				continue
			}
			return core.ModRefResponse{
				Result:   core.NoModRef,
				Options:  withSL,
				Contribs: core.MergeContribs([]string{NameShortLived}, contribs),
			}
		}
	}
	return core.ModRefConservative()
}
