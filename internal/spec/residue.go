package spec

import (
	"scaf/internal/core"
	"scaf/internal/ir"
	"scaf/internal/profile"
)

// Residue is the pointer-residue speculation module (paper §4.2.3, after
// Johnson): each pointer is characterized by the observed values of its
// four least-significant bits; accesses whose expanded residue sets are
// disjoint cannot overlap. Validation is a mask-and-compare on each
// pointer and conflicts with nothing (original instructions stay intact).
type Residue struct {
	core.BaseModule
	data *profile.Data
}

// NewResidue constructs the module.
func NewResidue(d *profile.Data) *Residue { return &Residue{data: d} }

func (m *Residue) Name() string          { return NameResidue }
func (m *Residue) Kind() core.ModuleKind { return core.Speculation }

func (m *Residue) assertion(p ir.Value) core.Assertion {
	a := core.Assertion{
		Module: NameResidue,
		Kind:   "residue-mask",
		Cost:   core.CostResidueCheck * float64(m.data.Residue.ExecCount(p)),
	}
	if in, ok := p.(*ir.Instr); ok {
		a.Points = append(a.Points, core.Point{Instr: in})
	}
	return a
}

func (m *Residue) Alias(q *core.AliasQuery, h core.Handle) core.AliasResponse {
	if !knownSizes(q) {
		return core.MayAliasResponse()
	}
	if m.data.Residue.DisjointAccesses(q.L1.Ptr, q.L1.Size, q.L2.Ptr, q.L2.Size) {
		return core.AliasSpec(core.NoAlias, NameResidue,
			m.assertion(q.L1.Ptr), m.assertion(q.L2.Ptr))
	}
	return core.MayAliasResponse()
}

func knownSizes(q *core.AliasQuery) bool {
	return q.L1.Size != core.UnknownSize && q.L2.Size != core.UnknownSize
}
