// Package loadgen drives a scaf-serve instance (or a scaf-router fleet)
// with an open-loop Poisson workload and reports two strictly separated
// sections: a Deterministic one — request mix, schedule digest, and an
// order-independent digest of every deadline-free answer — that is a pure
// function of the seed and the served bytes (CI asserts it exactly), and
// a Measured one — QPS, latency percentiles — that depends on the machine
// and is reported but never asserted.
//
// Open-loop means arrivals fire on a pre-generated schedule regardless of
// completions: a saturated server sees the offered rate, not a rate
// throttled by its own latency, which is what makes the saturation sweep
// honest.
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// DefaultSource is the workload program: one hot loop with an indirect
// store, so queries have real dependence structure and speculative
// options (the same shape the server test suite uses).
const DefaultSource = `
int a[64];
int idx[64];

int main() {
  int t = 0;
  for (int r = 0; r < 40; r = r + 1) {
    for (int i = 0; i < 64; i = i + 1) {
      a[idx[i]] = a[i] + 1;
      t = t + a[i];
    }
  }
  return t;
}
`

// Config parameterizes one load run.
type Config struct {
	// BaseURL of the scaf-serve instance or scaf-router front tier.
	BaseURL string `json:"base_url"`
	// Source is the MC program loaded as the session (DefaultSource if "").
	Source string `json:"-"`
	// Scheme is the analysis scheme (default "scaf").
	Scheme string `json:"scheme"`
	// Rate is the Poisson arrival rate in requests/second.
	Rate float64 `json:"rate"`
	// Requests is the total number of scheduled arrivals.
	Requests int `json:"requests"`
	// QueryFrac is the fraction of arrivals that are single /query
	// requests; the rest are whole-loop /analyze batches.
	QueryFrac float64 `json:"query_frac"`
	// DeadlineFrac is the fraction of arrivals carrying DeadlineMS.
	// Deadlined answers may be degraded, so they are excluded from the
	// deterministic answer digest.
	DeadlineFrac float64 `json:"deadline_frac"`
	// DeadlineMS is the deadline attached to deadlined arrivals.
	DeadlineMS int64 `json:"deadline_ms"`
	// Seed fixes the arrival schedule and request mix.
	Seed int64 `json:"seed"`
	// Membership is a scripted sequence of live membership changes fired
	// against the target router while the workload runs: each event fires
	// once the schedule has dispatched After arrivals, in order, each
	// waiting for the previous to complete. When the script is non-empty,
	// requests answered 503 during a transfer window are retried (bounded,
	// honoring Retry-After) so every arrival's final answer still folds
	// into the deterministic digest — which must therefore equal a
	// static-fleet run's. Transfer-window 503s are counted separately in
	// Measured.Moved503, never in the digest.
	Membership []MembershipEvent `json:"membership,omitempty"`
}

// MembershipEvent is one scripted membership change.
type MembershipEvent struct {
	// After is the number of dispatched arrivals that triggers the event.
	After int `json:"after"`
	// Op is "join" or "leave".
	Op string `json:"op"`
	// ID is the backend being joined or removed; URL is required for join.
	ID  string `json:"id"`
	URL string `json:"url,omitempty"`
}

// Deterministic is the seed-and-bytes-determined section of a Report: CI
// runs the generator twice and asserts this section is identical.
type Deterministic struct {
	Requests  int `json:"requests"`
	Queries   int `json:"queries"`
	Analyzes  int `json:"analyzes"`
	Deadlined int `json:"deadlined"`
	// ScheduleDigest hashes the arrival schedule (offsets and kinds).
	ScheduleDigest string `json:"schedule_digest"`
	// AnswerDigest is the XOR of a 64-bit hash of every deadline-free 200
	// answer's result payload — order-independent, so it is invariant
	// under scheduling and routing, and equals the single-instance value
	// on any fleet that serves byte-identical answers.
	AnswerDigest string `json:"answer_digest"`
	// DigestSamples counts the answers folded into AnswerDigest.
	DigestSamples int `json:"digest_samples"`
}

// Measured is the wall-clock section of a Report: reported, never
// asserted.
type Measured struct {
	DurationMS int64       `json:"duration_ms"`
	QPS        float64     `json:"qps"`
	P50US      int64       `json:"p50_us"`
	P90US      int64       `json:"p90_us"`
	P99US      int64       `json:"p99_us"`
	MaxUS      int64       `json:"max_us"`
	Statuses   map[int]int `json:"statuses"`
	Transport  int         `json:"transport_errors"`
	// Moved503 counts transfer-window 503 responses that were retried
	// during a membership script — the bounded, client-visible cost of a
	// live move, reported separately from final statuses.
	Moved503 int64 `json:"moved_503"`
}

// Report is one load run's outcome.
type Report struct {
	Config        Config        `json:"config"`
	Session       string        `json:"session"`
	Loops         int           `json:"loops"`
	QueryPairs    int           `json:"query_pairs"`
	Deterministic Deterministic `json:"deterministic"`
	Measured      Measured      `json:"measured"`
}

// arrival is one scheduled request.
type arrival struct {
	at       time.Duration
	isQuery  bool
	deadline bool
	pair     int // index into the harvested query pairs
}

type queryPair struct {
	loop, i1, i2, rel string
}

// wire shapes, kept local so loadgen stays decoupled from the server
// package (it drives the HTTP surface like any external client).
type sessionInfo struct {
	ID       string `json:"id"`
	HotLoops []struct {
		Name string `json:"name"`
	} `json:"hot_loops"`
}

type loopResult struct {
	Loop    string `json:"loop"`
	Queries []struct {
		I1  string `json:"i1"`
		I2  string `json:"i2"`
		Rel string `json:"rel"`
	} `json:"queries"`
}

// Run executes one load run: create a session, harvest query pairs from
// one warmup analyze, replay the pre-generated Poisson schedule, report.
func Run(cfg Config) (*Report, error) {
	if cfg.Scheme == "" {
		cfg.Scheme = "scaf"
	}
	if cfg.Source == "" {
		cfg.Source = DefaultSource
	}
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("loadgen: rate must be positive")
	}
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("loadgen: requests must be positive")
	}
	hc := &http.Client{Timeout: 60 * time.Second}
	// Drop pooled connections on return so a caller tearing down an
	// in-process target isn't stalled by http.Server.Shutdown's grace
	// period for never-used spare connections.
	defer hc.CloseIdleConnections()

	// Session + warmup.
	sess, loops, pairs, err := warmup(hc, cfg)
	if err != nil {
		return nil, err
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("loadgen: warmup analyze yielded no query pairs")
	}

	// Pre-generate the schedule: every random draw happens here, in one
	// fixed order, so the mix and schedule are pure functions of the seed.
	rng := rand.New(rand.NewSource(cfg.Seed))
	schedule := make([]arrival, cfg.Requests)
	var t time.Duration
	for i := range schedule {
		t += time.Duration(rng.ExpFloat64() / cfg.Rate * float64(time.Second))
		schedule[i] = arrival{
			at:       t,
			isQuery:  rng.Float64() < cfg.QueryFrac,
			deadline: rng.Float64() < cfg.DeadlineFrac,
			pair:     rng.Intn(len(pairs)),
		}
	}

	rep := &Report{Config: cfg, Session: sess, Loops: loops, QueryPairs: len(pairs)}
	det := &rep.Deterministic
	det.Requests = len(schedule)
	sh := fnv.New64a()
	for _, a := range schedule {
		fmt.Fprintf(sh, "%d|%v|%v|%d\n", a.at.Nanoseconds(), a.isQuery, a.deadline, a.pair)
		if a.isQuery {
			det.Queries++
		} else {
			det.Analyzes++
		}
		if a.deadline {
			det.Deadlined++
		}
	}
	det.ScheduleDigest = fmt.Sprintf("%016x", sh.Sum64())

	// Replay.
	var (
		mu        sync.Mutex
		digest    uint64
		samples   int
		statuses  = map[int]int{}
		transport int
		lats      []int64
		moved503  int64
	)

	// The membership runner fires scripted events in order, each once the
	// schedule has dispatched its After-th arrival and the previous event
	// has completed — so the ops overlap live traffic but never each other
	// (the router would refuse a concurrent move anyway).
	evCh := make(chan int, len(schedule))
	evErr := make(chan error, 1)
	var evWG sync.WaitGroup
	if len(cfg.Membership) > 0 {
		evWG.Add(1)
		go func() {
			defer evWG.Done()
			next := 0
			fireNext := func(dispatched int) bool {
				for next < len(cfg.Membership) && cfg.Membership[next].After <= dispatched {
					if err := fireEvent(hc, cfg, cfg.Membership[next]); err != nil {
						select {
						case evErr <- err:
						default:
						}
						return false
					}
					next++
				}
				return true
			}
			for i := range evCh {
				if !fireNext(i + 1) {
					return
				}
			}
			// Events scheduled past the last arrival still fire, after it.
			fireNext(cfg.Requests)
		}()
	}

	var wg sync.WaitGroup
	start := time.Now()
	for i, a := range schedule {
		if d := a.at - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		if len(cfg.Membership) > 0 {
			evCh <- i
		}
		wg.Add(1)
		go func(a arrival) {
			defer wg.Done()
			t0 := time.Now()
			status, payload, retries, terr := fireRetry(hc, cfg, sess, pairs[a.pair], a)
			lat := time.Since(t0).Microseconds()
			mu.Lock()
			defer mu.Unlock()
			lats = append(lats, lat)
			moved503 += int64(retries)
			if terr {
				transport++
				return
			}
			statuses[status]++
			if status == http.StatusOK && !a.deadline && payload != nil {
				digest ^= fnvSum(payload)
				samples++
			}
		}(a)
	}
	wg.Wait()
	close(evCh)
	evWG.Wait()
	select {
	case err := <-evErr:
		return nil, err
	default:
	}
	elapsed := time.Since(start)

	det.AnswerDigest = fmt.Sprintf("%016x", digest)
	det.DigestSamples = samples
	rep.Measured = Measured{
		DurationMS: elapsed.Milliseconds(),
		QPS:        float64(len(schedule)) / elapsed.Seconds(),
		P50US:      percentileI64(lats, 50),
		P90US:      percentileI64(lats, 90),
		P99US:      percentileI64(lats, 99),
		MaxUS:      percentileI64(lats, 100),
		Statuses:   statuses,
		Transport:  transport,
		Moved503:   moved503,
	}
	return rep, nil
}

// fireEvent executes one scripted membership change against the router's
// admin surface and waits for the cutover to complete.
func fireEvent(hc *http.Client, cfg Config, ev MembershipEvent) error {
	var path string
	var body []byte
	switch ev.Op {
	case "join":
		path = "/fleet/join"
		body, _ = json.Marshal(map[string]string{"id": ev.ID, "url": ev.URL})
	case "leave":
		path = "/fleet/leave"
		body, _ = json.Marshal(map[string]string{"id": ev.ID})
	default:
		return fmt.Errorf("loadgen: unknown membership op %q", ev.Op)
	}
	status, raw, err := post(hc, cfg.BaseURL+path, body)
	if err != nil {
		return fmt.Errorf("loadgen: membership %s %s: %w", ev.Op, ev.ID, err)
	}
	if status != http.StatusOK {
		return fmt.Errorf("loadgen: membership %s %s: status %d: %.300s", ev.Op, ev.ID, status, raw)
	}
	return nil
}

// fireRetry issues one scheduled request; under a membership script it
// retries bounded 503s (a segment mid-move answers 503 backend_down with
// Retry-After until its drain completes), so the arrival's final answer is
// the one that lands in the digest. The advertised Retry-After is scaled
// down for loopback — the router speaks whole seconds, the window is
// milliseconds — but still ordered by it.
func fireRetry(hc *http.Client, cfg Config, sess string, p queryPair, a arrival) (int, []byte, int, bool) {
	const retryCap = 400
	retries := 0
	for {
		status, payload, retryAfter, terr := fire(hc, cfg, sess, p, a)
		if terr || status != http.StatusServiceUnavailable ||
			len(cfg.Membership) == 0 || retries >= retryCap {
			return status, payload, retries, terr
		}
		retries++
		delay := 25 * time.Millisecond
		if d := time.Duration(retryAfter) * 50 * time.Millisecond; d > delay {
			delay = d
		}
		if delay > 250*time.Millisecond {
			delay = 250 * time.Millisecond
		}
		time.Sleep(delay)
	}
}

// warmup creates the session and harvests (loop, i1, i2, rel) pairs from
// one deadline-free analyze.
func warmup(hc *http.Client, cfg Config) (string, int, []queryPair, error) {
	body, _ := json.Marshal(map[string]any{
		"name": "loadgen", "source": cfg.Source, "plan": "off",
	})
	status, raw, err := post(hc, cfg.BaseURL+"/sessions", body)
	if err != nil {
		return "", 0, nil, fmt.Errorf("loadgen: create session: %w", err)
	}
	if status != http.StatusCreated {
		return "", 0, nil, fmt.Errorf("loadgen: create session: status %d: %.300s", status, raw)
	}
	var info sessionInfo
	if err := json.Unmarshal(raw, &info); err != nil {
		return "", 0, nil, err
	}
	if len(info.HotLoops) == 0 {
		return "", 0, nil, fmt.Errorf("loadgen: session has no hot loops")
	}

	ab, _ := json.Marshal(map[string]any{"scheme": cfg.Scheme})
	status, raw, err = post(hc, cfg.BaseURL+"/sessions/"+info.ID+"/analyze", ab)
	if err != nil {
		return "", 0, nil, fmt.Errorf("loadgen: warmup analyze: %w", err)
	}
	if status != http.StatusOK {
		return "", 0, nil, fmt.Errorf("loadgen: warmup analyze: status %d: %.300s", status, raw)
	}
	var ar struct {
		Results []loopResult `json:"results"`
	}
	if err := json.Unmarshal(raw, &ar); err != nil {
		return "", 0, nil, err
	}
	var pairs []queryPair
	for _, lr := range ar.Results {
		for _, q := range lr.Queries {
			pairs = append(pairs, queryPair{loop: lr.Loop, i1: q.I1, i2: q.I2, rel: q.Rel})
		}
	}
	return info.ID, len(ar.Results), pairs, nil
}

// fire issues one scheduled request and returns the digest payload — the
// response's result field only (the envelope carries scheduling-dependent
// counters like coalesce hits, which must not leak into the digest) —
// plus the advertised Retry-After seconds on refusals.
func fire(hc *http.Client, cfg Config, sess string, p queryPair, a arrival) (int, []byte, int, bool) {
	var path string
	var req map[string]any
	if a.isQuery {
		path = "/sessions/" + sess + "/query"
		req = map[string]any{
			"scheme": cfg.Scheme, "loop": p.loop, "i1": p.i1, "i2": p.i2, "rel": p.rel,
		}
	} else {
		path = "/sessions/" + sess + "/analyze"
		req = map[string]any{"scheme": cfg.Scheme}
	}
	if a.deadline {
		req["deadline_ms"] = cfg.DeadlineMS
	}
	body, _ := json.Marshal(req)
	resp, err := hc.Post(cfg.BaseURL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, 0, true
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	resp.Body.Close()
	if err != nil {
		return 0, nil, 0, true
	}
	status := resp.StatusCode
	retryAfter, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
	if status != http.StatusOK {
		return status, nil, retryAfter, false
	}
	if a.isQuery {
		var env struct {
			Query json.RawMessage `json:"query"`
		}
		if json.Unmarshal(raw, &env) == nil {
			return status, env.Query, 0, false
		}
	} else {
		var env struct {
			Results json.RawMessage `json:"results"`
		}
		if json.Unmarshal(raw, &env) == nil {
			return status, env.Results, 0, false
		}
	}
	return status, nil, 0, false
}

func post(hc *http.Client, url string, body []byte) (int, []byte, error) {
	resp, err := hc.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, raw, nil
}

func fnvSum(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

func percentileI64(s []int64, p int) int64 {
	if len(s) == 0 {
		return 0
	}
	c := append([]int64(nil), s...)
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	idx := (p*len(c) + 99) / 100
	if idx < 1 {
		idx = 1
	}
	if idx > len(c) {
		idx = len(c)
	}
	return c[idx-1]
}
