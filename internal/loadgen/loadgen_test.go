package loadgen

import (
	"net/http/httptest"
	"reflect"
	"testing"

	"scaf/internal/server"
)

// testConfig is the CI smoke configuration: every deterministic counter
// below is a pure function of this seed and mix, so the literals are
// pinned exactly.
func testConfig(baseURL string) Config {
	return Config{
		BaseURL:      baseURL,
		Scheme:       "scaf",
		Rate:         1500,
		Requests:     80,
		QueryFrac:    0.6,
		DeadlineFrac: 0.15,
		DeadlineMS:   50,
		Seed:         42,
	}
}

func runOnce(t *testing.T) Deterministic {
	t.Helper()
	srv := server.New(server.Config{Workers: 4, MaxQueue: 16})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	rep, err := Run(testConfig(ts.URL))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Measured.Transport != 0 {
		t.Fatalf("transport errors: %d", rep.Measured.Transport)
	}
	if got := rep.Measured.Statuses[200]; got != rep.Deterministic.Requests {
		t.Fatalf("statuses = %v, want all %d to be 200", rep.Measured.Statuses, rep.Deterministic.Requests)
	}
	return rep.Deterministic
}

// TestLoadgenDeterministicCounters is the contract the CI loadgen smoke
// step relies on: two runs with the same seed against fresh servers
// produce byte-identical deterministic sections, and the seed-determined
// mix counts match pinned literals. The answer digest is asserted equal
// across runs but not pinned — it also folds in the served bytes, which
// legitimately change when the analysis itself evolves.
func TestLoadgenDeterministicCounters(t *testing.T) {
	first := runOnce(t)
	second := runOnce(t)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("deterministic sections diverged across identical runs:\n  %+v\n  %+v", first, second)
	}
	want := Deterministic{
		Requests:       80,
		Queries:        46,
		Analyzes:       34,
		Deadlined:      13,
		ScheduleDigest: "7c3a062eb828f85e",
		AnswerDigest:   first.AnswerDigest, // equal across runs, not pinned
		DigestSamples:  67,
	}
	if first != want {
		t.Fatalf("deterministic section = %+v, want %+v", first, want)
	}
	if first.AnswerDigest == "" || first.AnswerDigest == "0000000000000000" {
		t.Fatalf("answer digest is degenerate: %q", first.AnswerDigest)
	}
}

// TestLoadgenConfigValidation covers the refusal paths.
func TestLoadgenConfigValidation(t *testing.T) {
	if _, err := Run(Config{BaseURL: "http://127.0.0.1:1", Rate: 0, Requests: 10}); err == nil {
		t.Fatal("want error for zero rate")
	}
	if _, err := Run(Config{BaseURL: "http://127.0.0.1:1", Rate: 100, Requests: 0}); err == nil {
		t.Fatal("want error for zero requests")
	}
}

// TestSaturationSweep boots in-process fleets of 1 and 2 instances and
// checks the sweep's cross-size consistency verdict plus the fleet
// counters: a 2-instance fleet must actually consult the remote tier.
func TestSaturationSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet sweep boots multiple servers")
	}
	load := testConfig("") // BaseURL filled per fleet by Saturate
	rep, err := Saturate(SaturationConfig{Sizes: []int{1, 2}, Load: load, Workers: 4})
	if err != nil {
		t.Fatalf("Saturate: %v", err)
	}
	if !rep.Consistent {
		t.Fatalf("fleet sizes served different deterministic sections: %+v", rep.Points)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(rep.Points))
	}
	for _, pt := range rep.Points {
		if pt.Measured.Transport != 0 {
			t.Fatalf("n=%d: transport errors: %d", pt.Instances, pt.Measured.Transport)
		}
		if pt.FleetLoopHits == 0 {
			t.Fatalf("n=%d: no whole-loop lookaside hits under repeated analyzes", pt.Instances)
		}
	}
	two := rep.Points[1]
	if two.FleetRemoteHits+two.FleetMisses == 0 {
		t.Fatalf("2-instance fleet never consulted the remote tier: %+v", two)
	}
}

// TestSaturationMembership runs one fleet size twice — static, then with
// the scripted live join/leave overlapping the workload — and checks the
// membership contract: the moves really ran (router counters), nothing
// rolled back, and the deterministic section is identical to the static
// pass, transfer-window retries notwithstanding.
func TestSaturationMembership(t *testing.T) {
	if testing.Short() {
		t.Skip("membership sweep boots multiple fleets")
	}
	load := testConfig("")
	load.Requests = 240
	load.Rate = 600
	rep, err := Saturate(SaturationConfig{Sizes: []int{2}, Load: load, Workers: 4, Membership: true})
	if err != nil {
		t.Fatalf("Saturate: %v", err)
	}
	if len(rep.Points) != 1 || rep.Points[0].Membership == nil {
		t.Fatalf("expected one point with a membership rerun: %+v", rep.Points)
	}
	mp := rep.Points[0].Membership
	if mp.Joins != 1 || mp.Leaves != 1 || mp.Rollbacks != 0 {
		t.Fatalf("membership counters: joins=%d leaves=%d rollbacks=%d, want 1/1/0",
			mp.Joins, mp.Leaves, mp.Rollbacks)
	}
	if mp.Measured.Transport != 0 {
		t.Fatalf("transport errors during membership run: %d", mp.Measured.Transport)
	}
	if got := mp.Measured.Statuses[200]; got != mp.Deterministic.Requests {
		t.Fatalf("final statuses = %v (moved_503=%d), want all %d to be 200",
			mp.Measured.Statuses, mp.Moved503, mp.Deterministic.Requests)
	}
	if !rep.Consistent {
		t.Fatalf("membership run served different bytes than the static run:\n  static:     %+v\n  membership: %+v",
			rep.Points[0].Deterministic, mp.Deterministic)
	}
}
