package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"scaf/internal/server"
)

// The saturation sweep boots a complete in-process fleet — N scaf-serve
// backends wired as cache peers plus a scaf-router front tier, all on
// loopback — for each requested size, offers the same open-loop Poisson
// workload to each, and reports throughput, tail latency, and how much of
// the fleet's serving came from the cross-instance cache. The workload's
// deterministic section must be identical across fleet sizes: any
// divergence means a fleet served different bytes than a single instance.

// SaturationConfig parameterizes a sweep.
type SaturationConfig struct {
	// Sizes lists the fleet sizes to sweep (default 1, 2, 4).
	Sizes []int `json:"sizes"`
	// Load is the per-size workload; BaseURL is filled in per fleet.
	Load Config `json:"load"`
	// Workers is each backend's analysis worker count (default 4).
	Workers int `json:"workers"`
	// Persist gives every backend a snapshot directory and runs each size
	// twice: a cold pass, a graceful drain (which writes the snapshots),
	// and a warm pass against rebooted backends. The warm pass must serve
	// the identical deterministic section; its cache economics land in
	// SaturationPoint.Warm.
	Persist bool `json:"persist,omitempty"`
	// Membership reruns each size against a fresh fleet plus one spare
	// backend, with a scripted live join (one third through the schedule)
	// and leave (two thirds through) overlapping the workload. The
	// membership pass's deterministic section must equal the static pass's
	// — a live move may cost bounded 503 retries (reported separately in
	// MembershipPoint), never different bytes.
	Membership bool `json:"membership,omitempty"`
}

// SaturationPoint is one fleet size's outcome.
type SaturationPoint struct {
	Instances     int           `json:"instances"`
	Deterministic Deterministic `json:"deterministic"`
	Measured      Measured      `json:"measured"`
	// FleetLocalHits/FleetRemoteHits/FleetMisses aggregate the backends'
	// cache-tier lookups; FleetLoopHits counts whole /analyze loops served
	// from the shared tier.
	FleetLocalHits  int64 `json:"fleet_local_hits"`
	FleetRemoteHits int64 `json:"fleet_remote_hits"`
	FleetMisses     int64 `json:"fleet_misses"`
	FleetLoopHits   int64 `json:"fleet_loop_hits"`
	// RemoteHitRate is (local+remote tier hits) / all tier lookups.
	RemoteHitRate float64 `json:"remote_hit_rate"`
	// Warm is the warm-boot rerun (Persist mode only).
	Warm *WarmPoint `json:"warm,omitempty"`
	// Membership is the live join/leave rerun (Membership mode only).
	Membership *MembershipPoint `json:"membership,omitempty"`
}

// MembershipPoint is the live-membership rerun of one fleet size: the same
// workload, with a spare backend joined mid-run and an original backend
// departed later. Its deterministic section must equal the static pass's;
// Moved503 is the separately-reported transfer-window cost, and
// Joins/Leaves are the router's own counters (nonvacuity: the moves really
// ran under fire).
type MembershipPoint struct {
	Deterministic Deterministic `json:"deterministic"`
	Measured      Measured      `json:"measured"`
	Moved503      int64         `json:"moved_503"`
	Joins         int64         `json:"joins"`
	Leaves        int64         `json:"leaves"`
	Rollbacks     int64         `json:"rollbacks"`
}

// WarmPoint is the warm-boot rerun of one fleet size: the same workload
// offered to backends rebooted from the snapshots the cold pass drained.
// Its deterministic section must equal the cold pass's, and
// SnapshotLoaded says how many entries the reboot actually restored —
// the warm hit rate is meaningless if the boot was secretly cold.
type WarmPoint struct {
	Deterministic   Deterministic `json:"deterministic"`
	Measured        Measured      `json:"measured"`
	FleetLocalHits  int64         `json:"fleet_local_hits"`
	FleetRemoteHits int64         `json:"fleet_remote_hits"`
	FleetMisses     int64         `json:"fleet_misses"`
	FleetLoopHits   int64         `json:"fleet_loop_hits"`
	RemoteHitRate   float64       `json:"remote_hit_rate"`
	SnapshotLoaded  int64         `json:"snapshot_loaded"`
}

// SaturationReport is the sweep outcome.
type SaturationReport struct {
	Config SaturationConfig  `json:"config"`
	Points []SaturationPoint `json:"points"`
	// Consistent reports whether every size produced the identical
	// deterministic section (schedule and answer digests).
	Consistent bool `json:"consistent"`
}

// Saturate sweeps the configured fleet sizes.
func Saturate(cfg SaturationConfig) (*SaturationReport, error) {
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = []int{1, 2, 4}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	rep := &SaturationReport{Config: cfg, Consistent: true}
	for _, n := range cfg.Sizes {
		pt, err := saturateOne(cfg, n)
		if err != nil {
			return nil, fmt.Errorf("loadgen: fleet of %d: %w", n, err)
		}
		rep.Points = append(rep.Points, *pt)
	}
	for _, pt := range rep.Points[1:] {
		if pt.Deterministic != rep.Points[0].Deterministic {
			rep.Consistent = false
		}
	}
	// A warm boot serving different bytes than its own cold pass is the
	// same lie as cross-size divergence: the cache changed an answer. So
	// is a live membership change: a planned move may cost retries, never
	// bytes.
	for _, pt := range rep.Points {
		if pt.Warm != nil && pt.Warm.Deterministic != pt.Deterministic {
			rep.Consistent = false
		}
		if pt.Membership != nil && pt.Membership.Deterministic != pt.Deterministic {
			rep.Consistent = false
		}
	}
	return rep, nil
}

func saturateOne(cfg SaturationConfig, n int) (*SaturationPoint, error) {
	var dirs []string
	if cfg.Persist {
		for i := 0; i < n; i++ {
			d, err := os.MkdirTemp("", "scaf-loadgen-snap-")
			if err != nil {
				return nil, err
			}
			dirs = append(dirs, d)
		}
		defer func() {
			for _, d := range dirs {
				os.RemoveAll(d)
			}
		}()
	}

	pt, _, err := sweepFleet(cfg, n, dirs)
	if err != nil {
		return nil, err
	}
	if cfg.Membership {
		mp, err := sweepMembership(cfg, n)
		if err != nil {
			return nil, fmt.Errorf("membership run: %w", err)
		}
		pt.Membership = mp
	}
	if cfg.Persist {
		// The cold pass's shutdown drained every backend, writing its
		// snapshot; this boot reloads them and reruns the same workload.
		wpt, loaded, err := sweepFleet(cfg, n, dirs)
		if err != nil {
			return nil, fmt.Errorf("warm boot: %w", err)
		}
		pt.Warm = &WarmPoint{
			Deterministic:   wpt.Deterministic,
			Measured:        wpt.Measured,
			FleetLocalHits:  wpt.FleetLocalHits,
			FleetRemoteHits: wpt.FleetRemoteHits,
			FleetMisses:     wpt.FleetMisses,
			FleetLoopHits:   wpt.FleetLoopHits,
			RemoteHitRate:   wpt.RemoteHitRate,
			SnapshotLoaded:  loaded,
		}
	}
	return pt, nil
}

// sweepFleet boots one fleet (persistent when dirs is non-nil), offers
// the workload, collects the point, and drains the fleet before
// returning — in persist mode the drain is what writes the snapshots the
// next boot warms from, so it cannot be deferred past the caller.
func sweepFleet(cfg SaturationConfig, n int, dirs []string) (*SaturationPoint, int64, error) {
	fl, err := bootFleet(n, cfg.Workers, dirs, false)
	if err != nil {
		return nil, 0, err
	}
	defer fl.shutdown()

	load := cfg.Load
	load.BaseURL = fl.url
	run, err := Run(load)
	if err != nil {
		return nil, 0, err
	}

	pt := &SaturationPoint{
		Instances:     n,
		Deterministic: run.Deterministic,
		Measured:      run.Measured,
	}
	var loaded int64
	for _, srv := range fl.backends {
		if t := srv.Fleet(); t != nil {
			st := t.Stats()
			pt.FleetLocalHits += st.LocalHits
			pt.FleetRemoteHits += st.RemoteHits
			pt.FleetMisses += st.Misses
		}
		if ps := srv.PersistStats(); ps != nil {
			loaded += ps.Loaded
		}
	}
	var rm server.RouterMetrics
	if raw, err := fleetGET(fl.url + "/metrics"); err == nil {
		if json.Unmarshal(raw, &rm) == nil {
			for _, braw := range rm.Backends {
				var bm struct {
					Server struct {
						FleetLoopHits int64 `json:"fleet_loop_hits"`
					} `json:"server"`
				}
				if json.Unmarshal(braw, &bm) == nil {
					pt.FleetLoopHits += bm.Server.FleetLoopHits
				}
			}
		}
	}
	if total := pt.FleetLocalHits + pt.FleetRemoteHits + pt.FleetMisses; total > 0 {
		pt.RemoteHitRate = float64(pt.FleetLocalHits+pt.FleetRemoteHits) / float64(total)
	}
	return pt, loaded, nil
}

// sweepMembership reruns one fleet size with a spare backend and the
// scripted join/leave overlapping the workload: join the spare a third of
// the way through the schedule, depart an original owner at two thirds.
func sweepMembership(cfg SaturationConfig, n int) (*MembershipPoint, error) {
	fl, err := bootFleet(n, cfg.Workers, nil, true)
	if err != nil {
		return nil, err
	}
	defer fl.shutdown()

	load := cfg.Load
	load.BaseURL = fl.url
	load.Membership = []MembershipEvent{
		{After: load.Requests / 3, Op: "join", ID: "j0", URL: fl.spareURL},
		{After: 2 * load.Requests / 3, Op: "leave", ID: "b0"},
	}
	run, err := Run(load)
	if err != nil {
		return nil, err
	}
	mp := &MembershipPoint{
		Deterministic: run.Deterministic,
		Measured:      run.Measured,
		Moved503:      run.Measured.Moved503,
	}
	var rm server.RouterMetrics
	if raw, err := fleetGET(fl.url + "/metrics"); err == nil && json.Unmarshal(raw, &rm) == nil {
		mp.Joins = rm.Router.Joins
		mp.Leaves = rm.Router.Leaves
		mp.Rollbacks = rm.Router.Rollbacks
	}
	return mp, nil
}

// inprocFleet is one booted fleet: n backends + router, all on loopback,
// plus (membership mode) one spare backend outside the router's member
// set, standing by for the scripted join.
type inprocFleet struct {
	url      string
	spareURL string
	backends []*server.Server
	shutdown func()
}

// bootFleet reserves loopback addresses, wires n backends as mutual cache
// peers, fronts them with a hash-routing Router, and serves everything on
// plain http.Servers. A non-nil dirs gives backend i the snapshot
// directory dirs[i], so draining the fleet persists each shard. With
// spare, one extra backend "j0" boots knowing the members as peers but
// outside the router's member set — the membership script joins it live.
func bootFleet(n, workers int, dirs []string, spare bool) (*inprocFleet, error) {
	total := n
	if spare {
		total++
	}
	listeners := make([]net.Listener, total+1) // [0..total-1] backends, [total] router
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners[i] = l
	}
	ids := make([]string, total)
	urls := map[string]string{}
	for i := 0; i < n; i++ {
		ids[i] = fmt.Sprintf("b%d", i)
		urls[ids[i]] = "http://" + listeners[i].Addr().String()
	}
	if spare {
		ids[n] = "j0"
	}

	fl := &inprocFleet{url: "http://" + listeners[total].Addr().String()}
	if spare {
		fl.spareURL = "http://" + listeners[n].Addr().String()
	}
	var servers []*http.Server
	for i, id := range ids {
		peers := map[string]string{}
		for pid, u := range urls {
			// Members peer with each other; the spare knows every member
			// (they learn of it through the join's membership push).
			if pid != id {
				peers[pid] = u
			}
		}
		scfg := server.Config{Workers: workers, MaxQueue: 4 * workers}
		if n > 1 || spare {
			scfg.Fleet = &server.FleetConfig{
				Self: id, Peers: peers, Timeout: 5 * time.Second, AutoFlush: 20 * time.Millisecond,
			}
		} else {
			// A fleet of one still runs the tier (local shard only) so the
			// lookaside counters stay comparable across sizes.
			scfg.Fleet = &server.FleetConfig{Self: id}
		}
		if dirs != nil && i < len(dirs) {
			scfg.Fleet.CacheDir = dirs[i]
		}
		srv := server.New(scfg)
		fl.backends = append(fl.backends, srv)
		hs := &http.Server{Handler: srv.Handler()}
		servers = append(servers, hs)
		go hs.Serve(listeners[i])
	}
	rt := server.NewRouter(server.RouterConfig{Backends: urls, Route: "hash"})
	rhs := &http.Server{Handler: rt.Handler()}
	servers = append(servers, rhs)
	go rhs.Serve(listeners[total])

	fl.shutdown = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		// Client pools close before the HTTP servers: spare pooled
		// connections read as StateNew server-side, and Shutdown only
		// reaps those after a five-second grace.
		http.DefaultClient.CloseIdleConnections()
		rt.Close()
		for _, srv := range fl.backends {
			srv.Shutdown(ctx)
		}
		for _, hs := range servers {
			hs.Shutdown(ctx)
		}
	}
	return fl, nil
}

func fleetGET(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}
