// Package fleet implements the cross-instance tier of scaf-serve: a
// consistent-hash ring for key placement, a wire-level cache shard holding
// canonical entries as opaque bytes, an HTTP peer protocol, and a Tier that
// composes them into a distributed lookaside cache with fleet-wide
// recovery broadcast.
//
// The package is deliberately a leaf: it depends only on the standard
// library and moves opaque keys/bytes, so internal/server (which already
// imports internal/bench and internal/core) can layer codecs on top
// without import cycles. Soundness comes from what callers put in, not
// from this package: only canonical entries (complete, top-level,
// untainted resolutions — identical bytes no matter which instance
// produced them) may be published, and entry keys embed the producer's
// program digest and quarantine fingerprint so hits only occur between
// instances in identical recovery states.
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is an immutable consistent-hash ring. Each node is projected onto
// the ring at VNodes points (FNV-1a of "node#i"); a key is owned by the
// first point clockwise from its own hash. Immutability keeps placement a
// pure function of (nodes, vnodes, key) — the router and every backend
// compute identical owners with no coordination.
type Ring struct {
	points []ringPoint
	nodes  []string
}

type ringPoint struct {
	hash uint64
	node string
}

// DefaultVNodes balances distribution evenness against ring size; with
// 64 points per node, a 4-node ring keeps per-node load within a few
// percent of uniform.
const DefaultVNodes = 64

// NewRing builds a ring over nodes. vnodes <= 0 selects DefaultVNodes.
// Node order does not matter; the ring is identical for any permutation.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{nodes: append([]string(nil), nodes...)}
	sort.Strings(r.nodes)
	for _, n := range r.nodes {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hashKey(fmt.Sprintf("%s#%d", n, i)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on node so equal hashes (vanishingly rare) still
		// order deterministically across instances.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Nodes returns the ring's members in sorted order.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Owner returns the node owning key. Panics on an empty ring — a fleet
// with zero members is a construction error, not a runtime state.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		panic("fleet: Owner on empty ring")
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// OwnerN returns up to n distinct nodes starting at key's owner and
// walking clockwise — the replica set for key.
func (r *Ring) OwnerN(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	var out []string
	seen := make(map[string]bool, n)
	for j := 0; len(out) < n && j < len(r.points); j++ {
		p := r.points[(i+j)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// hashKey is FNV-1a 64 — stable across Go versions and architectures,
// which placement requires (maphash would differ per process).
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
