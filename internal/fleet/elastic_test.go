package fleet

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestRingBoundedMovement pins the consistent-hashing property the live
// cutover design relies on: adding one node to a ring moves only the
// segments that node acquires (every changed key's new owner is the
// added node), and removing one node moves only the segments it owned
// (every changed key's old owner is the removed node). Randomized node
// sets, vnode counts, and key samples across many seeds.
func TestRingBoundedMovement(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	pool := make([]string, 20)
	for i := range pool {
		pool[i] = fmt.Sprintf("node%02d", i)
	}
	for trial := 0; trial < 120; trial++ {
		perm := rng.Perm(len(pool))
		n := 1 + rng.Intn(8)
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = pool[perm[i]]
		}
		extra := pool[perm[n]]
		vnodes := 0
		if rng.Intn(2) == 1 {
			vnodes = 1 + rng.Intn(96)
		}

		without := NewRing(nodes, vnodes)
		with := NewRing(append(append([]string(nil), nodes...), extra), vnodes)

		moved, total := 0, 240
		for i := 0; i < total; i++ {
			key := fmt.Sprintf("k|%d|%d|%d", trial, i, rng.Int63())
			before, after := without.Owner(key), with.Owner(key)
			if before == after {
				continue
			}
			moved++
			// Join direction: a key may only move TO the new node.
			if after != extra {
				t.Fatalf("trial %d: adding %s moved %q from %s to %s (unrelated segment moved)",
					trial, extra, key, before, after)
			}
			// Leave direction is the same comparison read backwards: a key
			// may only move FROM the departing node.
		}
		if n >= 4 && moved > total/2 {
			// Not a tight bound, just a sanity rail: one node joining an
			// n-node ring should claim roughly 1/(n+1) of the keyspace,
			// nowhere near half.
			t.Fatalf("trial %d: %d/%d keys moved when %s joined %d nodes", trial, moved, total, extra, n)
		}
	}
}

// TestTierPeerTimeoutFailOpen: a peer that accepts the connection and
// then stalls must not block the query path — the lookup degrades to a
// local miss within the per-op budget and is counted in peer_timeouts.
func TestTierPeerTimeoutFailOpen(t *testing.T) {
	stall := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-stall // hold the request until teardown
	}))
	defer ts.Close()
	defer close(stall)

	tier := NewTier(TierConfig{
		Self:      "a",
		Peers:     map[string]string{"b": ts.URL},
		OpTimeout: 50 * time.Millisecond,
	})
	defer tier.Close()

	key := ""
	for i := 0; key == ""; i++ {
		k := fmt.Sprintf("dig|scaf|fp|probe%d", i)
		if tier.Owner(k) == "b" {
			key = k
		}
	}
	start := time.Now()
	if _, ok := tier.Get(key); ok {
		t.Fatal("stalled peer produced a hit")
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("lookup blocked %v on a stalled peer; op budget was 50ms", el)
	}
	st := tier.Stats()
	if st.PeerTimeouts < 1 {
		t.Fatalf("peer_timeouts = %d, want >= 1", st.PeerTimeouts)
	}
	if st.Misses < 1 {
		t.Fatalf("misses = %d, want >= 1 (timeout must read as a miss)", st.Misses)
	}
}

// TestTierLiveMembership: AddPeer makes a running tier fetch remote hits
// from a node it was not born knowing, and RemovePeer returns the moved
// segments to self-ownership. Exercised both directly and through the
// members endpoint the router drives.
func TestTierLiveMembership(t *testing.T) {
	remote := NewCache()
	mux := http.NewServeMux()
	(&Handler{Cache: remote}).Register(mux, "/fleet/")
	ts := httptest.NewServer(mux)
	defer ts.Close()

	tier := NewTier(TierConfig{Self: "a"})
	defer tier.Close()
	if got := tier.Owner("dig|s|f|anything"); got != "a" {
		t.Fatalf("peerless tier owner = %s, want a", got)
	}

	// Drive AddPeer the way the router does: over the members endpoint.
	selfMux := http.NewServeMux()
	(&Handler{Cache: tier.Local(), Tier: tier}).Register(selfMux, "/fleet/")
	selfTS := httptest.NewServer(selfMux)
	defer selfTS.Close()
	cl := NewClient(selfTS.URL, 0)
	resp, err := cl.Members(MembersRequest{Add: map[string]string{"b": ts.URL}})
	if err != nil {
		t.Fatalf("members push: %v", err)
	}
	if len(resp.Nodes) != 2 {
		t.Fatalf("post-join nodes = %v, want [a b]", resp.Nodes)
	}

	key := ""
	for i := 0; key == ""; i++ {
		k := fmt.Sprintf("dig|scaf|fp|q%d", i)
		if tier.Owner(k) == "b" {
			key = k
		}
	}
	remote.Put(Entry{Key: key, Value: []byte("v")})
	if v, ok := tier.Get(key); !ok || string(v) != "v" {
		t.Fatalf("remote hit after AddPeer: ok=%v v=%q", ok, v)
	}
	if st := tier.Stats(); st.RemoteHits != 1 {
		t.Fatalf("remote_hits = %d, want 1", st.RemoteHits)
	}

	if _, err := cl.Members(MembersRequest{Remove: []string{"b"}}); err != nil {
		t.Fatalf("members remove: %v", err)
	}
	if got := tier.Owner("dig|s|f|back-to-self"); got != "a" {
		t.Fatalf("post-leave owner = %s, want a", got)
	}
	// Idempotence: re-adding and re-removing are no-ops, not errors.
	tier.AddPeer("a", "http://self") // self: ignored
	tier.RemovePeer("never-joined")  // unknown: ignored
	if n := tier.Stats().Nodes; len(n) != 1 || n[0] != "a" {
		t.Fatalf("membership after no-ops = %v, want [a]", n)
	}
}
