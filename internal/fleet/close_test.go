package fleet

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// newClosableTier builds a tier with an auto-flush goroutine and an
// unreachable peer — the configuration where Close actually has work to
// do (stop the flusher, drop pooled connections).
func newClosableTier() *Tier {
	return NewTier(TierConfig{
		Self:      "a",
		Peers:     map[string]string{"b": "http://127.0.0.1:1"},
		AutoFlush: time.Millisecond,
		Timeout:   10 * time.Millisecond,
	})
}

// TestTierCloseIdempotent: sequential double Close must be a no-op, not
// a double channel close.
func TestTierCloseIdempotent(t *testing.T) {
	tier := newClosableTier()
	tier.Close()
	tier.Close()
}

// TestTierCloseConcurrent is the regression test for the check-then-act
// race the old Close had (select on t.stop, then close(t.stop)): many
// goroutines racing into Close must not panic, and every call must
// return only after teardown completed.
func TestTierCloseConcurrent(t *testing.T) {
	tier := newClosableTier()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tier.Close()
		}()
	}
	wg.Wait()
}

// TestTierCloseDuringGet closes the tier while readers and writers are
// mid-flight (run under -race in the fleet gate): Get/Put/Flush must
// stay safe against a concurrent teardown, and entries put before the
// close must still be served after it — a closed tier is quiescent, not
// broken.
func TestTierCloseDuringGet(t *testing.T) {
	tier := newClosableTier()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := w
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("d|s|f|k%d", i%64)
				tier.Put(key, nil, []byte("v"))
				tier.Get(key)
				i += 4
			}
		}(w)
	}
	time.Sleep(2 * time.Millisecond)
	var cg sync.WaitGroup
	for i := 0; i < 4; i++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			tier.Close()
		}()
	}
	cg.Wait()
	close(stop)
	wg.Wait()

	tier.Put("d|s|f|after", nil, []byte("post-close"))
	if v, ok := tier.Get("d|s|f|after"); !ok || string(v) != "post-close" {
		t.Fatal("closed tier lost its local shard")
	}
}
