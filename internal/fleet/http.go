package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// The peer protocol: five endpoints, JSON bodies, mounted by each backend
// under /fleet/. Everything is idempotent — cache puts are first-write-
// wins, recovery is monotone — so peers retry or drop freely without
// coordination.
//
//	POST {prefix}cache/get  GetRequest -> GetResponse   batch lookup
//	PUT  {prefix}cache      PutRequest -> PutResponse   batch publish
//	POST {prefix}recovery   RecoveryRequest -> {}       revoke asserts fleet-wide
//	GET  {prefix}state      StateResponse               revoked set, for rejoin
//	GET  {prefix}stats      CacheStats                  shard counters

// GetRequest asks a peer for the entries it holds for Keys.
type GetRequest struct {
	Keys []string `json:"keys"`
}

// GetResponse carries the subset of requested entries the peer holds.
type GetResponse struct {
	Entries []Entry `json:"entries,omitempty"`
}

// PutRequest publishes a batch of canonical entries to a peer.
type PutRequest struct {
	Entries []Entry `json:"entries"`
}

// PutResponse reports how many entries the peer inserted (duplicates and
// revoked-predicate entries are silently skipped).
type PutResponse struct {
	Inserted int `json:"inserted"`
}

// RecoveryRequest replicates a recovery event: the assertion keys being
// revoked, the modules being quarantined alongside them (if the event was
// a module panic), the instance where the violation was observed, and an
// opaque scope (the embedding server uses the session's program digest)
// so receivers apply the event only to matching state.
type RecoveryRequest struct {
	Asserts []string `json:"asserts,omitempty"`
	Modules []string `json:"modules,omitempty"`
	Origin  string   `json:"origin,omitempty"`
	Scope   string   `json:"scope,omitempty"`
}

// RecoveryResponse acknowledges a replicated recovery event.
type RecoveryResponse struct {
	Removed int `json:"removed"`
}

// StateResponse is the monotone recovery state a rejoining instance syncs.
type StateResponse struct {
	Revoked []string `json:"revoked,omitempty"`
	Entries int      `json:"entries"`
}

// MembersRequest updates a peer's membership view: Add maps new node IDs
// to base URLs, Remove lists departed node IDs. Both directions are
// idempotent, so the router re-broadcasts membership freely.
type MembersRequest struct {
	Add    map[string]string `json:"add,omitempty"`
	Remove []string          `json:"remove,omitempty"`
}

// MembersResponse echoes the peer's post-update ring membership.
type MembersResponse struct {
	Nodes []string `json:"nodes"`
}

// Handler serves the peer protocol over a shard. OnRecovery, when set, is
// invoked after the shard is invalidated so the embedding server can apply
// the event to its sessions (quarantine + epoch bump); it runs on the
// request goroutine, so replication is synchronous end to end. Tier, when
// set, additionally mounts the members endpoint so the router can push
// live membership changes into this instance's ring.
type Handler struct {
	Cache      *Cache
	OnRecovery func(RecoveryRequest)
	Tier       *Tier
}

// maxPeerBody bounds peer request bodies; batches are capped well below
// this by the tier's MaxBatch.
const maxPeerBody = 32 << 20

// Register mounts the protocol on mux under prefix (normally "/fleet/").
func (h *Handler) Register(mux *http.ServeMux, prefix string) {
	mux.HandleFunc(prefix+"cache/get", h.handleGet)
	mux.HandleFunc(prefix+"cache", h.handlePut)
	mux.HandleFunc(prefix+"recovery", h.handleRecovery)
	mux.HandleFunc(prefix+"state", h.handleState)
	mux.HandleFunc(prefix+"stats", h.handleStats)
	if h.Tier != nil {
		mux.HandleFunc(prefix+"members", h.handleMembers)
	}
}

func (h *Handler) handleMembers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req MembersRequest
	if !decodeBody(w, r, &req) {
		return
	}
	// Removals first: a node moving to a new URL arrives as remove+add.
	for _, id := range req.Remove {
		h.Tier.RemovePeer(id)
	}
	for id, base := range req.Add {
		h.Tier.AddPeer(id, base)
	}
	writePeerJSON(w, MembersResponse{Nodes: h.Tier.Stats().Nodes})
}

func (h *Handler) handleGet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req GetRequest
	if !decodeBody(w, r, &req) {
		return
	}
	writePeerJSON(w, GetResponse{Entries: h.Cache.GetBatch(req.Keys)})
}

func (h *Handler) handlePut(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPut {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req PutRequest
	if !decodeBody(w, r, &req) {
		return
	}
	writePeerJSON(w, PutResponse{Inserted: h.Cache.PutBatch(req.Entries)})
}

func (h *Handler) handleRecovery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req RecoveryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	removed := h.Cache.InvalidateAsserts(req.Asserts)
	if h.OnRecovery != nil {
		h.OnRecovery(req)
	}
	writePeerJSON(w, RecoveryResponse{Removed: removed})
}

func (h *Handler) handleState(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writePeerJSON(w, StateResponse{Revoked: h.Cache.RevokedKeys(), Entries: h.Cache.Len()})
}

func (h *Handler) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writePeerJSON(w, h.Cache.Stats())
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxPeerBody))
	if err != nil {
		http.Error(w, "read: "+err.Error(), http.StatusBadRequest)
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		http.Error(w, "decode: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writePeerJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// Client speaks the peer protocol to one remote instance.
type Client struct {
	base string
	hc   *http.Client
}

// DefaultPeerTimeout bounds each peer RPC. Peer traffic is an
// optimization (cache) or a small state transfer (recovery), never a
// large compute — a second of silence means the peer is gone.
const DefaultPeerTimeout = 2 * time.Second

// NewClient returns a client for the peer at base (e.g.
// "http://127.0.0.1:8091"). timeout <= 0 selects DefaultPeerTimeout.
func NewClient(base string, timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = DefaultPeerTimeout
	}
	return &Client{base: base, hc: &http.Client{Timeout: timeout}}
}

// Base returns the peer's base URL.
func (c *Client) Base() string { return c.base }

// CloseIdle drops pooled connections to the peer.
func (c *Client) CloseIdle() { c.hc.CloseIdleConnections() }

// Get fetches the entries the peer holds for keys.
func (c *Client) Get(keys []string) ([]Entry, error) {
	return c.GetCtx(context.Background(), keys)
}

// GetCtx is Get under a caller-supplied context: the query path uses it
// to give each remote lookup a hard budget tighter than the client's
// transport timeout, so a stalled peer degrades to a miss instead of
// blocking the query.
func (c *Client) GetCtx(ctx context.Context, keys []string) ([]Entry, error) {
	var resp GetResponse
	if err := c.roundTripCtx(ctx, http.MethodPost, "/fleet/cache/get", GetRequest{Keys: keys}, &resp); err != nil {
		return nil, err
	}
	return resp.Entries, nil
}

// Members pushes a membership update to the peer and returns its
// post-update ring.
func (c *Client) Members(req MembersRequest) (MembersResponse, error) {
	var resp MembersResponse
	err := c.roundTrip(http.MethodPost, "/fleet/members", req, &resp)
	return resp, err
}

// Put publishes entries to the peer, returning how many it inserted.
func (c *Client) Put(entries []Entry) (int, error) {
	var resp PutResponse
	if err := c.roundTrip(http.MethodPut, "/fleet/cache", PutRequest{Entries: entries}, &resp); err != nil {
		return 0, err
	}
	return resp.Inserted, nil
}

// Recovery replicates a recovery event to the peer.
func (c *Client) Recovery(req RecoveryRequest) error {
	var resp RecoveryResponse
	return c.roundTrip(http.MethodPost, "/fleet/recovery", req, &resp)
}

// State fetches the peer's monotone recovery state.
func (c *Client) State() (StateResponse, error) {
	var resp StateResponse
	err := c.roundTrip(http.MethodGet, "/fleet/state", nil, &resp)
	return resp, err
}

// Stats fetches the peer's shard counters.
func (c *Client) Stats() (CacheStats, error) {
	var resp CacheStats
	err := c.roundTrip(http.MethodGet, "/fleet/stats", nil, &resp)
	return resp, err
}

func (c *Client) roundTrip(method, path string, reqBody, respBody any) error {
	return c.roundTripCtx(context.Background(), method, path, reqBody, respBody)
}

func (c *Client) roundTripCtx(ctx context.Context, method, path string, reqBody, respBody any) error {
	var body io.Reader
	if reqBody != nil {
		b, err := json.Marshal(reqBody)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerBody))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("peer %s %s: %s: %s", method, path, resp.Status, bytes.TrimSpace(raw))
	}
	return json.Unmarshal(raw, respBody)
}
