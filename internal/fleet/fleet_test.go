package fleet

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestRingDeterministicAndBalanced(t *testing.T) {
	a := NewRing([]string{"b2", "b0", "b1"}, 0)
	b := NewRing([]string{"b0", "b1", "b2"}, 0)
	counts := map[string]int{}
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("key-%d", i)
		oa, ob := a.Owner(k), b.Owner(k)
		if oa != ob {
			t.Fatalf("placement depends on node order: %q vs %q for %s", oa, ob, k)
		}
		counts[oa]++
	}
	for n, c := range counts {
		// With 64 vnodes per node the split should be within a loose
		// factor of uniform (1000 each).
		if c < 500 || c > 1700 {
			t.Errorf("node %s owns %d/3000 keys — ring badly unbalanced", n, c)
		}
	}
}

func TestRingOwnerN(t *testing.T) {
	r := NewRing([]string{"a", "b", "c"}, 8)
	got := r.OwnerN("some-key", 3)
	if len(got) != 3 {
		t.Fatalf("OwnerN returned %v, want 3 distinct nodes", got)
	}
	seen := map[string]bool{}
	for _, n := range got {
		if seen[n] {
			t.Fatalf("OwnerN returned duplicate node in %v", got)
		}
		seen[n] = true
	}
	if got[0] != r.Owner("some-key") {
		t.Errorf("OwnerN[0] = %s, want primary owner %s", got[0], r.Owner("some-key"))
	}
	if more := r.OwnerN("some-key", 99); len(more) != 3 {
		t.Errorf("OwnerN(99) = %v, want clamped to 3 nodes", more)
	}
}

func TestCacheFirstWriteWinsAndInvalidation(t *testing.T) {
	c := NewCache()
	if !c.Put(Entry{Key: "k1", Value: []byte("v1"), Asserts: []string{"a1"}}) {
		t.Fatal("first put rejected")
	}
	if c.Put(Entry{Key: "k1", Value: []byte("OTHER")}) {
		t.Fatal("duplicate key overwrote a canonical entry")
	}
	if v, ok := c.Get("k1"); !ok || string(v) != "v1" {
		t.Fatalf("Get(k1) = %q,%v want v1", v, ok)
	}
	c.Put(Entry{Key: "k2", Value: []byte("v2"), Asserts: []string{"a1", "a2"}})
	c.Put(Entry{Key: "k3", Value: []byte("v3")})

	if n := c.InvalidateAsserts([]string{"a1"}); n != 2 {
		t.Fatalf("invalidated %d entries, want 2 (k1, k2)", n)
	}
	if _, ok := c.Get("k1"); ok {
		t.Fatal("k1 survived invalidation of its predicate")
	}
	if _, ok := c.Get("k3"); !ok {
		t.Fatal("unpredicated k3 was dropped by invalidation")
	}
	// Monotone: a new entry predicated on a revoked assert never lands.
	if c.Put(Entry{Key: "k4", Value: []byte("v4"), Asserts: []string{"a1"}}) {
		t.Fatal("entry predicated on revoked assert was inserted")
	}
	if !c.AnyRevoked([]string{"zzz", "a1"}) {
		t.Fatal("AnyRevoked missed a revoked key")
	}
	if got := c.RevokedKeys(); !reflect.DeepEqual(got, []string{"a1"}) {
		t.Fatalf("RevokedKeys = %v, want [a1]", got)
	}
	c.Flush()
	if c.Len() != 0 {
		t.Fatal("Flush left entries behind")
	}
	if !c.AnyRevoked([]string{"a1"}) {
		t.Fatal("Flush forgot revocations — it must only drop entries")
	}
}

// peerHarness boots a Handler-backed httptest server for a shard.
func peerHarness(t *testing.T, c *Cache, onRecovery func(RecoveryRequest)) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	(&Handler{Cache: c, OnRecovery: onRecovery}).Register(mux, "/fleet/")
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func TestPeerProtocolRoundTrip(t *testing.T) {
	shard := NewCache()
	var recovered []RecoveryRequest
	ts := peerHarness(t, shard, func(r RecoveryRequest) { recovered = append(recovered, r) })
	cl := NewClient(ts.URL, time.Second)

	n, err := cl.Put([]Entry{
		{Key: "k1", Value: []byte("v1"), Asserts: []string{"a1"}},
		{Key: "k2", Value: []byte("v2")},
	})
	if err != nil || n != 2 {
		t.Fatalf("Put = %d,%v want 2 inserted", n, err)
	}
	got, err := cl.Get([]string{"k1", "missing", "k2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Key != "k1" || string(got[0].Value) != "v1" || got[1].Key != "k2" {
		t.Fatalf("Get = %+v, want k1,k2 in order", got)
	}
	if err := cl.Recovery(RecoveryRequest{Asserts: []string{"a1"}, Origin: "test"}); err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 || recovered[0].Origin != "test" {
		t.Fatalf("OnRecovery saw %+v, want one event from origin test", recovered)
	}
	st, err := cl.State()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.Revoked, []string{"a1"}) || st.Entries != 1 {
		t.Fatalf("State = %+v, want revoked [a1] with 1 entry left", st)
	}
	stats, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Puts != 2 || stats.Invalidated != 1 {
		t.Fatalf("Stats = %+v, want 2 puts and 1 invalidated", stats)
	}
}

func TestTierRemoteHitAndLocalInstall(t *testing.T) {
	// Build explicitly so each handler serves its tier's local shard.
	muxA, muxB := http.NewServeMux(), http.NewServeMux()
	tsA, tsB := httptest.NewServer(muxA), httptest.NewServer(muxB)
	defer tsA.Close()
	defer tsB.Close()
	tierA := NewTier(TierConfig{Self: "A", Peers: map[string]string{"B": tsB.URL}})
	tierB := NewTier(TierConfig{Self: "B", Peers: map[string]string{"A": tsA.URL}})
	defer tierA.Close()
	defer tierB.Close()
	(&Handler{Cache: tierA.Local()}).Register(muxA, "/fleet/")
	(&Handler{Cache: tierB.Local()}).Register(muxB, "/fleet/")

	// Find a key homed on B so A's Put queues a publication.
	var key string
	for i := 0; ; i++ {
		key = fmt.Sprintf("probe-%d", i)
		if tierA.Owner(key) == "B" {
			break
		}
	}
	tierA.Put(key, []string{"as1"}, []byte("payload"))
	tierA.Flush()

	if _, ok := tierB.local.Get(key); !ok {
		t.Fatal("published entry did not land on owner B")
	}
	// B reads its own shard (local hit); A reads via B once, then locally.
	if v, ok := tierB.Get(key); !ok || string(v) != "payload" {
		t.Fatalf("B.Get = %q,%v", v, ok)
	}
	// A installed locally at Put time, so its read is a local hit too.
	if v, ok := tierA.Get(key); !ok || string(v) != "payload" {
		t.Fatalf("A.Get = %q,%v", v, ok)
	}

	// A cold restart of A (empty local shard, same ring) fetches the
	// B-homed entry remotely once, then serves re-asks locally.
	tierA2 := NewTier(TierConfig{Self: "A", Peers: map[string]string{"B": tsB.URL}})
	defer tierA2.Close()
	if v, ok := tierA2.Get(key); !ok || string(v) != "payload" {
		t.Fatalf("cold A2 remote Get = %q,%v", v, ok)
	}
	if s := tierA2.Stats(); s.RemoteHits != 1 {
		t.Fatalf("A2 stats = %+v, want 1 remote hit", s)
	}
	if v, ok := tierA2.Get(key); !ok || string(v) != "payload" {
		t.Fatalf("A2 re-Get = %q,%v", v, ok)
	}
	if s := tierA2.Stats(); s.LocalHits != 1 {
		t.Fatalf("A2 stats after re-get = %+v, want the re-ask served locally", s)
	}
}

func TestTierRecoveryBroadcastAndGuaranteedMiss(t *testing.T) {
	muxA, muxB := http.NewServeMux(), http.NewServeMux()
	tsA, tsB := httptest.NewServer(muxA), httptest.NewServer(muxB)
	defer tsA.Close()
	defer tsB.Close()
	tierA := NewTier(TierConfig{Self: "A", Peers: map[string]string{"B": tsB.URL}})
	tierB := NewTier(TierConfig{Self: "B", Peers: map[string]string{"A": tsA.URL}})
	defer tierA.Close()
	defer tierB.Close()
	var bEvents []RecoveryRequest
	var mu sync.Mutex
	(&Handler{Cache: tierA.Local()}).Register(muxA, "/fleet/")
	(&Handler{Cache: tierB.Local(), OnRecovery: func(r RecoveryRequest) {
		mu.Lock()
		bEvents = append(bEvents, r)
		mu.Unlock()
	}}).Register(muxB, "/fleet/")

	// Seed an entry predicated on "bad" on both shards.
	var key string
	for i := 0; ; i++ {
		key = fmt.Sprintf("pred-%d", i)
		if tierA.Owner(key) == "B" {
			break
		}
	}
	tierA.Put(key, []string{"bad"}, []byte("speculative"))
	tierA.Flush()
	if _, ok := tierB.Get(key); !ok {
		t.Fatal("setup: entry missing on B")
	}

	// Violation observed on A: broadcast must revoke on B before returning.
	if failed := tierA.BroadcastRecovery(RecoveryRequest{Asserts: []string{"bad"}}); len(failed) != 0 {
		t.Fatalf("broadcast failed to reach %v", failed)
	}
	if _, ok := tierB.Get(key); ok {
		t.Fatal("B served an entry predicated on a fleet-revoked assertion")
	}
	if _, ok := tierA.Get(key); ok {
		t.Fatal("A served an entry predicated on a revoked assertion")
	}
	mu.Lock()
	ev := len(bEvents)
	mu.Unlock()
	if ev != 1 {
		t.Fatalf("B's OnRecovery fired %d times, want 1", ev)
	}
	// Monotone: republishing the revoked entry is refused everywhere.
	tierA.Put(key, []string{"bad"}, []byte("speculative"))
	tierA.Flush()
	if _, ok := tierB.Get(key); ok {
		t.Fatal("revoked entry resurrected after republish")
	}

	// Rejoin path: a fresh instance pulls recovery state via SyncState.
	tierA3 := NewTier(TierConfig{Self: "A", Peers: map[string]string{"B": tsB.URL}})
	defer tierA3.Close()
	if err := tierA3.SyncState(); err != nil {
		t.Fatal(err)
	}
	if !tierA3.Local().AnyRevoked([]string{"bad"}) {
		t.Fatal("SyncState did not pull the revoked set")
	}
}

func TestTierPeerDownDegradesToMiss(t *testing.T) {
	tier := NewTier(TierConfig{
		Self:    "A",
		Peers:   map[string]string{"B": "http://127.0.0.1:1"}, // nothing listens
		Timeout: 200 * time.Millisecond,
	})
	defer tier.Close()
	var key string
	for i := 0; ; i++ {
		key = fmt.Sprintf("down-%d", i)
		if tier.Owner(key) == "B" {
			break
		}
	}
	if _, ok := tier.Get(key); ok {
		t.Fatal("hit against a dead peer")
	}
	tier.Put(key, nil, []byte("v"))
	tier.Flush() // must not hang or panic
	if failed := tier.BroadcastRecovery(RecoveryRequest{Asserts: []string{"x"}}); len(failed) != 1 || failed[0] != "B" {
		t.Fatalf("BroadcastRecovery failed peers = %v, want [B]", failed)
	}
	if s := tier.Stats(); s.RemoteErrors < 2 {
		t.Fatalf("stats = %+v, want remote errors counted", s)
	}
	// The local copy still serves.
	if v, ok := tier.Get(key); !ok || string(v) != "v" {
		t.Fatalf("local copy lost: %q,%v", v, ok)
	}
}
