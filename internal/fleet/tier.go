package fleet

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TierConfig configures one instance's view of the fleet.
type TierConfig struct {
	// Self is this instance's node ID (must not appear in Peers).
	Self string
	// Peers maps the other instances' node IDs to their base URLs.
	Peers map[string]string
	// VNodes is the ring's virtual-node count (0 = DefaultVNodes).
	VNodes int
	// Timeout bounds each peer RPC (0 = DefaultPeerTimeout).
	Timeout time.Duration
	// AutoFlush, when positive, drains pending publications to peers on
	// this period from a background goroutine. Zero means publications
	// accumulate until an explicit Flush — what deterministic tests want.
	AutoFlush time.Duration
	// MaxBatch caps entries per publication batch; an overfull pending
	// queue triggers an inline drain. 0 = DefaultMaxBatch.
	MaxBatch int
	// OpTimeout bounds each remote lookup issued from the query path
	// (0 = DefaultOpTimeout). Tighter than Timeout on purpose: a remote
	// hit is an optimization, and a peer slow enough to miss this budget
	// must degrade to a local miss rather than stall the query it was
	// supposed to accelerate. Timed-out lookups count in peer_timeouts.
	OpTimeout time.Duration
}

// DefaultMaxBatch bounds one publication RPC to a size that stays well
// under maxPeerBody even with large wire values.
const DefaultMaxBatch = 256

// DefaultOpTimeout is the query-path remote-lookup budget: long enough
// for a loopback or rack-local RTT, far shorter than the answer would
// take to recompute — the only regime where blocking is worth it.
const DefaultOpTimeout = 500 * time.Millisecond

// Tier is one instance's handle on the fleet cache: a local shard, a
// ring placing every key on its home node, and clients to the peers.
//
// Reads are local-first: the local shard covers self-owned keys and
// previously fetched remote entries, so each remote entry costs at most
// one RTT per instance. A remote hit whose predicates are locally revoked
// is discarded — the local recovery state stays authoritative, exactly as
// core.SharedCache's Revoker does for the in-process cache.
//
// Writes install locally and, for keys homed elsewhere, enqueue to the
// owner; batches drain asynchronously (AutoFlush) or on Flush. Dropped
// batches (peer down) only cost future hits — entries are a cache.
//
// Recovery is the one synchronous path: BroadcastRecovery applies locally
// and then POSTs to every peer before returning, so a caller that
// responds to its client after broadcasting knows the whole fleet has
// revoked the assertion.
type Tier struct {
	self        string
	local       *Cache
	vnodes      int
	peerTimeout time.Duration
	opTimeout   time.Duration

	// pmu guards the membership view (ring + peer clients), which is
	// mutable since live join/leave: AddPeer/RemovePeer swap both under
	// the write lock, every other path reads them under the read lock. A
	// stale view is sound — placement only decides who computes/caches an
	// answer, and entry keys are self-validating — so readers never block
	// on a membership change longer than the swap itself.
	pmu   sync.RWMutex
	ring  *Ring
	peers map[string]*Client

	mu      sync.Mutex
	pending map[string][]Entry
	max     int

	localHits, remoteHits, misses    atomic.Int64
	remoteErrors, published, batches atomic.Int64
	peerTimeouts                     atomic.Int64

	stop     chan struct{}
	stopOnce sync.Once
	done     sync.WaitGroup
}

// TierStats snapshots the tier's counters.
type TierStats struct {
	Self         string     `json:"self"`
	Nodes        []string   `json:"nodes"`
	LocalHits    int64      `json:"local_hits"`
	RemoteHits   int64      `json:"remote_hits"`
	Misses       int64      `json:"misses"`
	RemoteErrors int64      `json:"remote_errors"`
	PeerTimeouts int64      `json:"peer_timeouts"`
	Published    int64      `json:"published"`
	Batches      int64      `json:"batches"`
	Local        CacheStats `json:"local"`
}

// NewTier builds a tier. With no peers it degenerates to a purely local
// shard — every key is self-owned and no goroutine is started.
func NewTier(cfg TierConfig) *Tier {
	nodes := []string{cfg.Self}
	peers := make(map[string]*Client, len(cfg.Peers))
	for id, base := range cfg.Peers {
		nodes = append(nodes, id)
		peers[id] = NewClient(base, cfg.Timeout)
	}
	max := cfg.MaxBatch
	if max <= 0 {
		max = DefaultMaxBatch
	}
	opTimeout := cfg.OpTimeout
	if opTimeout <= 0 {
		opTimeout = DefaultOpTimeout
	}
	t := &Tier{
		self:        cfg.Self,
		ring:        NewRing(nodes, cfg.VNodes),
		local:       NewCache(),
		vnodes:      cfg.VNodes,
		peerTimeout: cfg.Timeout,
		opTimeout:   opTimeout,
		peers:       peers,
		pending:     make(map[string][]Entry),
		max:         max,
		stop:        make(chan struct{}),
	}
	// The flusher starts whenever a period is set — not only when peers
	// exist at boot — because live membership can add the first peer long
	// after construction.
	if cfg.AutoFlush > 0 {
		t.done.Add(1)
		go t.flushLoop(cfg.AutoFlush)
	}
	return t
}

// Local exposes the instance's shard — the Handler serves it to peers.
func (t *Tier) Local() *Cache { return t.local }

// Self returns this instance's node ID.
func (t *Tier) Self() string { return t.self }

// Owner returns the node that homes key.
func (t *Tier) Owner(key string) string {
	t.pmu.RLock()
	defer t.pmu.RUnlock()
	return t.ring.Owner(key)
}

// AddPeer admits a peer into this instance's membership view: a client
// is minted for it and the ring is rebuilt to include it. Idempotent —
// re-adding a known peer (or self) is a no-op, so the router can
// broadcast membership without tracking who already knows.
func (t *Tier) AddPeer(id, base string) {
	if id == t.self {
		return
	}
	t.pmu.Lock()
	defer t.pmu.Unlock()
	if _, ok := t.peers[id]; ok {
		return
	}
	t.peers[id] = NewClient(base, t.peerTimeout)
	t.ring = NewRing(append(t.ring.Nodes(), id), t.vnodes)
}

// RemovePeer removes a peer from the membership view and rebuilds the
// ring without it. Pending publications bound for it are dropped (they
// are a cache; the entries stay served from the local shard). Idempotent.
func (t *Tier) RemovePeer(id string) {
	if id == t.self {
		return
	}
	t.pmu.Lock()
	p, ok := t.peers[id]
	if !ok {
		t.pmu.Unlock()
		return
	}
	delete(t.peers, id)
	nodes := t.ring.Nodes()
	for i, n := range nodes {
		if n == id {
			nodes = append(nodes[:i], nodes[i+1:]...)
			break
		}
	}
	t.ring = NewRing(nodes, t.vnodes)
	t.pmu.Unlock()
	t.mu.Lock()
	delete(t.pending, id)
	t.mu.Unlock()
	p.CloseIdle()
}

// Get looks key up: local shard first, then — if the key is homed on a
// peer — one RPC to the owner. Remote hits are installed locally so the
// next ask is free. Returns the canonical bytes and whether they were
// found; ok=false covers true misses, peer errors, and remote entries
// blocked by local revocations alike (all are just misses to the caller).
func (t *Tier) Get(key string) ([]byte, bool) {
	if v, ok := t.local.Get(key); ok {
		t.localHits.Add(1)
		return v, true
	}
	t.pmu.RLock()
	owner := t.ring.Owner(key)
	p := t.peers[owner]
	t.pmu.RUnlock()
	if owner == t.self || p == nil {
		t.misses.Add(1)
		return nil, false
	}
	// Fail-open: the lookup gets a hard per-op budget, independent of the
	// client's transport timeout. A peer that answers slower than this is
	// indistinguishable from one that is down — the query path records a
	// local miss and recomputes rather than waiting.
	ctx, cancel := context.WithTimeout(context.Background(), t.opTimeout)
	defer cancel()
	entries, err := p.GetCtx(ctx, []string{key})
	if err != nil {
		if ctx.Err() != nil {
			t.peerTimeouts.Add(1)
		}
		t.remoteErrors.Add(1)
		t.misses.Add(1)
		return nil, false
	}
	for _, e := range entries {
		if e.Key != key {
			continue
		}
		if t.local.AnyRevoked(e.Asserts) {
			// The peer hasn't seen a revocation we have; serving its
			// entry would break the guaranteed-miss rule.
			t.misses.Add(1)
			return nil, false
		}
		t.local.Put(e)
		t.remoteHits.Add(1)
		return e.Value, true
	}
	t.misses.Add(1)
	return nil, false
}

// Put publishes a canonical entry: it lands in the local shard
// immediately and, when the key is homed on a peer, is queued for that
// owner's next batch.
func (t *Tier) Put(key string, asserts []string, value []byte) {
	e := Entry{Key: key, Value: value, Asserts: asserts}
	t.local.Put(e)
	t.pmu.RLock()
	owner := t.ring.Owner(key)
	_, known := t.peers[owner]
	t.pmu.RUnlock()
	if owner == t.self || !known {
		return
	}
	t.mu.Lock()
	t.pending[owner] = append(t.pending[owner], e)
	over := len(t.pending[owner]) >= t.max
	t.mu.Unlock()
	if over {
		t.Flush()
	}
}

// Flush synchronously drains all pending publication batches. Peers that
// error lose their batch — the entries remain served from the local
// shard, and canonical entries can always be re-derived.
func (t *Tier) Flush() {
	t.mu.Lock()
	batches := t.pending
	t.pending = make(map[string][]Entry)
	t.mu.Unlock()
	ids := make([]string, 0, len(batches))
	for id := range batches {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		es := batches[id]
		if len(es) == 0 {
			continue
		}
		t.pmu.RLock()
		p := t.peers[id]
		t.pmu.RUnlock()
		if p == nil {
			continue // peer left between enqueue and drain
		}
		if _, err := p.Put(es); err != nil {
			t.remoteErrors.Add(1)
			continue
		}
		t.published.Add(int64(len(es)))
		t.batches.Add(1)
	}
}

func (t *Tier) flushLoop(period time.Duration) {
	defer t.done.Done()
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			t.Flush()
		case <-t.stop:
			t.Flush()
			return
		}
	}
}

// ApplyRecovery applies a recovery event to the local shard only —
// what the Handler does when a peer broadcasts to us.
func (t *Tier) ApplyRecovery(req RecoveryRequest) int {
	return t.local.InvalidateAsserts(req.Asserts)
}

// BroadcastRecovery applies req locally, then replicates it to every
// peer synchronously (sorted order, so failures are deterministic to
// attribute). It returns the IDs of peers that could not be reached;
// callers decide whether that is fatal. Because the revoked set is
// monotone and keys embed quarantine fingerprints, a missed peer can
// only serve stale entries to sessions still in the old recovery state —
// never to one that has observed the violation.
func (t *Tier) BroadcastRecovery(req RecoveryRequest) []string {
	t.ApplyRecovery(req)
	if req.Origin == "" {
		req.Origin = t.self
	}
	var failed []string
	for _, pr := range t.peerClients() {
		if err := pr.client.Recovery(req); err != nil {
			t.remoteErrors.Add(1)
			failed = append(failed, pr.id)
		}
	}
	return failed
}

// peerRef pairs a peer's ID with its client, snapshotted outside pmu so
// RPC time never holds the membership lock.
type peerRef struct {
	id     string
	client *Client
}

func (t *Tier) peerClients() []peerRef {
	t.pmu.RLock()
	out := make([]peerRef, 0, len(t.peers))
	for id, p := range t.peers {
		out = append(out, peerRef{id: id, client: p})
	}
	t.pmu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// SyncState pulls every reachable peer's revoked set and applies it
// locally — how a rejoining instance catches up on recovery events it
// missed while down.
func (t *Tier) SyncState() error {
	var firstErr error
	for _, pr := range t.peerClients() {
		st, err := pr.client.State()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			t.remoteErrors.Add(1)
			continue
		}
		t.local.InvalidateAsserts(st.Revoked)
	}
	return firstErr
}

// Stats snapshots the tier's counters, including the local shard's.
func (t *Tier) Stats() TierStats {
	t.pmu.RLock()
	nodes := t.ring.Nodes()
	t.pmu.RUnlock()
	return TierStats{
		Self:         t.self,
		Nodes:        nodes,
		LocalHits:    t.localHits.Load(),
		RemoteHits:   t.remoteHits.Load(),
		Misses:       t.misses.Load(),
		RemoteErrors: t.remoteErrors.Load(),
		PeerTimeouts: t.peerTimeouts.Load(),
		Published:    t.published.Load(),
		Batches:      t.batches.Load(),
		Local:        t.local.Stats(),
	}
}

// Close stops the auto-flush goroutine after a final drain. Idempotent
// and safe under concurrent callers: every Close returns only after the
// teardown has completed exactly once (graceful shutdown can reach it
// from more than one path).
func (t *Tier) Close() {
	t.stopOnce.Do(func() {
		close(t.stop)
		t.done.Wait()
		// Drop pooled peer connections so peers shutting down concurrently
		// don't wait out http.Server.Shutdown's StateNew grace period on a
		// spare connection we left parked there.
		for _, pr := range t.peerClients() {
			pr.client.CloseIdle()
		}
	})
}
