package fleet

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TierConfig configures one instance's view of the fleet.
type TierConfig struct {
	// Self is this instance's node ID (must not appear in Peers).
	Self string
	// Peers maps the other instances' node IDs to their base URLs.
	Peers map[string]string
	// VNodes is the ring's virtual-node count (0 = DefaultVNodes).
	VNodes int
	// Timeout bounds each peer RPC (0 = DefaultPeerTimeout).
	Timeout time.Duration
	// AutoFlush, when positive, drains pending publications to peers on
	// this period from a background goroutine. Zero means publications
	// accumulate until an explicit Flush — what deterministic tests want.
	AutoFlush time.Duration
	// MaxBatch caps entries per publication batch; an overfull pending
	// queue triggers an inline drain. 0 = DefaultMaxBatch.
	MaxBatch int
}

// DefaultMaxBatch bounds one publication RPC to a size that stays well
// under maxPeerBody even with large wire values.
const DefaultMaxBatch = 256

// Tier is one instance's handle on the fleet cache: a local shard, a
// ring placing every key on its home node, and clients to the peers.
//
// Reads are local-first: the local shard covers self-owned keys and
// previously fetched remote entries, so each remote entry costs at most
// one RTT per instance. A remote hit whose predicates are locally revoked
// is discarded — the local recovery state stays authoritative, exactly as
// core.SharedCache's Revoker does for the in-process cache.
//
// Writes install locally and, for keys homed elsewhere, enqueue to the
// owner; batches drain asynchronously (AutoFlush) or on Flush. Dropped
// batches (peer down) only cost future hits — entries are a cache.
//
// Recovery is the one synchronous path: BroadcastRecovery applies locally
// and then POSTs to every peer before returning, so a caller that
// responds to its client after broadcasting knows the whole fleet has
// revoked the assertion.
type Tier struct {
	self  string
	ring  *Ring
	local *Cache
	peers map[string]*Client

	mu      sync.Mutex
	pending map[string][]Entry
	max     int

	localHits, remoteHits, misses    atomic.Int64
	remoteErrors, published, batches atomic.Int64

	stop     chan struct{}
	stopOnce sync.Once
	done     sync.WaitGroup
}

// TierStats snapshots the tier's counters.
type TierStats struct {
	Self         string     `json:"self"`
	Nodes        []string   `json:"nodes"`
	LocalHits    int64      `json:"local_hits"`
	RemoteHits   int64      `json:"remote_hits"`
	Misses       int64      `json:"misses"`
	RemoteErrors int64      `json:"remote_errors"`
	Published    int64      `json:"published"`
	Batches      int64      `json:"batches"`
	Local        CacheStats `json:"local"`
}

// NewTier builds a tier. With no peers it degenerates to a purely local
// shard — every key is self-owned and no goroutine is started.
func NewTier(cfg TierConfig) *Tier {
	nodes := []string{cfg.Self}
	peers := make(map[string]*Client, len(cfg.Peers))
	for id, base := range cfg.Peers {
		nodes = append(nodes, id)
		peers[id] = NewClient(base, cfg.Timeout)
	}
	max := cfg.MaxBatch
	if max <= 0 {
		max = DefaultMaxBatch
	}
	t := &Tier{
		self:    cfg.Self,
		ring:    NewRing(nodes, cfg.VNodes),
		local:   NewCache(),
		peers:   peers,
		pending: make(map[string][]Entry),
		max:     max,
		stop:    make(chan struct{}),
	}
	if cfg.AutoFlush > 0 && len(peers) > 0 {
		t.done.Add(1)
		go t.flushLoop(cfg.AutoFlush)
	}
	return t
}

// Local exposes the instance's shard — the Handler serves it to peers.
func (t *Tier) Local() *Cache { return t.local }

// Self returns this instance's node ID.
func (t *Tier) Self() string { return t.self }

// Owner returns the node that homes key.
func (t *Tier) Owner(key string) string { return t.ring.Owner(key) }

// Get looks key up: local shard first, then — if the key is homed on a
// peer — one RPC to the owner. Remote hits are installed locally so the
// next ask is free. Returns the canonical bytes and whether they were
// found; ok=false covers true misses, peer errors, and remote entries
// blocked by local revocations alike (all are just misses to the caller).
func (t *Tier) Get(key string) ([]byte, bool) {
	if v, ok := t.local.Get(key); ok {
		t.localHits.Add(1)
		return v, true
	}
	owner := t.ring.Owner(key)
	if owner == t.self {
		t.misses.Add(1)
		return nil, false
	}
	p, ok := t.peers[owner]
	if !ok {
		t.misses.Add(1)
		return nil, false
	}
	entries, err := p.Get([]string{key})
	if err != nil {
		t.remoteErrors.Add(1)
		t.misses.Add(1)
		return nil, false
	}
	for _, e := range entries {
		if e.Key != key {
			continue
		}
		if t.local.AnyRevoked(e.Asserts) {
			// The peer hasn't seen a revocation we have; serving its
			// entry would break the guaranteed-miss rule.
			t.misses.Add(1)
			return nil, false
		}
		t.local.Put(e)
		t.remoteHits.Add(1)
		return e.Value, true
	}
	t.misses.Add(1)
	return nil, false
}

// Put publishes a canonical entry: it lands in the local shard
// immediately and, when the key is homed on a peer, is queued for that
// owner's next batch.
func (t *Tier) Put(key string, asserts []string, value []byte) {
	e := Entry{Key: key, Value: value, Asserts: asserts}
	t.local.Put(e)
	owner := t.ring.Owner(key)
	if owner == t.self {
		return
	}
	if _, ok := t.peers[owner]; !ok {
		return
	}
	t.mu.Lock()
	t.pending[owner] = append(t.pending[owner], e)
	over := len(t.pending[owner]) >= t.max
	t.mu.Unlock()
	if over {
		t.Flush()
	}
}

// Flush synchronously drains all pending publication batches. Peers that
// error lose their batch — the entries remain served from the local
// shard, and canonical entries can always be re-derived.
func (t *Tier) Flush() {
	t.mu.Lock()
	batches := t.pending
	t.pending = make(map[string][]Entry)
	t.mu.Unlock()
	ids := make([]string, 0, len(batches))
	for id := range batches {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		es := batches[id]
		if len(es) == 0 {
			continue
		}
		if _, err := t.peers[id].Put(es); err != nil {
			t.remoteErrors.Add(1)
			continue
		}
		t.published.Add(int64(len(es)))
		t.batches.Add(1)
	}
}

func (t *Tier) flushLoop(period time.Duration) {
	defer t.done.Done()
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			t.Flush()
		case <-t.stop:
			t.Flush()
			return
		}
	}
}

// ApplyRecovery applies a recovery event to the local shard only —
// what the Handler does when a peer broadcasts to us.
func (t *Tier) ApplyRecovery(req RecoveryRequest) int {
	return t.local.InvalidateAsserts(req.Asserts)
}

// BroadcastRecovery applies req locally, then replicates it to every
// peer synchronously (sorted order, so failures are deterministic to
// attribute). It returns the IDs of peers that could not be reached;
// callers decide whether that is fatal. Because the revoked set is
// monotone and keys embed quarantine fingerprints, a missed peer can
// only serve stale entries to sessions still in the old recovery state —
// never to one that has observed the violation.
func (t *Tier) BroadcastRecovery(req RecoveryRequest) []string {
	t.ApplyRecovery(req)
	if req.Origin == "" {
		req.Origin = t.self
	}
	ids := make([]string, 0, len(t.peers))
	for id := range t.peers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var failed []string
	for _, id := range ids {
		if err := t.peers[id].Recovery(req); err != nil {
			t.remoteErrors.Add(1)
			failed = append(failed, id)
		}
	}
	return failed
}

// SyncState pulls every reachable peer's revoked set and applies it
// locally — how a rejoining instance catches up on recovery events it
// missed while down.
func (t *Tier) SyncState() error {
	var firstErr error
	ids := make([]string, 0, len(t.peers))
	for id := range t.peers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		st, err := t.peers[id].State()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			t.remoteErrors.Add(1)
			continue
		}
		t.local.InvalidateAsserts(st.Revoked)
	}
	return firstErr
}

// Stats snapshots the tier's counters, including the local shard's.
func (t *Tier) Stats() TierStats {
	return TierStats{
		Self:         t.self,
		Nodes:        t.ring.Nodes(),
		LocalHits:    t.localHits.Load(),
		RemoteHits:   t.remoteHits.Load(),
		Misses:       t.misses.Load(),
		RemoteErrors: t.remoteErrors.Load(),
		Published:    t.published.Load(),
		Batches:      t.batches.Load(),
		Local:        t.local.Stats(),
	}
}

// Close stops the auto-flush goroutine after a final drain. Idempotent
// and safe under concurrent callers: every Close returns only after the
// teardown has completed exactly once (graceful shutdown can reach it
// from more than one path).
func (t *Tier) Close() {
	t.stopOnce.Do(func() {
		close(t.stop)
		t.done.Wait()
		// Drop pooled peer connections so peers shutting down concurrently
		// don't wait out http.Server.Shutdown's StateNew grace period on a
		// spare connection we left parked there.
		for _, p := range t.peers {
			p.CloseIdle()
		}
	})
}
