package fleet

import (
	"sort"
	"sync"
)

// Entry is one canonical cache record as it moves between instances:
// an opaque key, the wire bytes of the answer, and the keys of the
// assertions the answer is predicated on (empty for pure facts). The
// producer guarantees the value is canonical — byte-identical to what any
// instance would compute fresh — so consumers can serve it verbatim.
type Entry struct {
	Key     string   `json:"key"`
	Value   []byte   `json:"value"`
	Asserts []string `json:"asserts,omitempty"`
}

// Cache is one instance's shard of the fleet cache: a first-write-wins
// map from key to Entry, an inverted assertion→keys index mirroring
// core.SharedCache's, and a monotone revoked-assertion set. The monotone
// set gives the fleet the same guarantee recovery.Quarantine gives one
// process: once an assertion key is revoked here, no entry predicated on
// it can be inserted or served, ever — revocation-before-lookup implies a
// guaranteed miss.
type Cache struct {
	mu      sync.RWMutex
	entries map[string]Entry
	index   map[string][]string // assertion key -> entry keys
	revoked map[string]bool

	revokeHook func([]string)

	hits, misses, puts, rejects, invalidated int64
}

// CacheStats is a point-in-time snapshot of a shard's counters.
type CacheStats struct {
	Entries     int   `json:"entries"`
	Revoked     int   `json:"revoked"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Puts        int64 `json:"puts"`
	Rejects     int64 `json:"rejects"`
	Invalidated int64 `json:"invalidated"`
}

// NewCache returns an empty shard.
func NewCache() *Cache {
	return &Cache{
		entries: make(map[string]Entry),
		index:   make(map[string][]string),
		revoked: make(map[string]bool),
	}
}

// Get returns the entry bytes for key, if present.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if ok {
		c.hits++
		return e.Value, true
	}
	c.misses++
	return nil, false
}

// GetBatch returns the entries present for keys, preserving key order.
func (c *Cache) GetBatch(keys []string) []Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Entry
	for _, k := range keys {
		if e, ok := c.entries[k]; ok {
			c.hits++
			out = append(out, e)
		} else {
			c.misses++
		}
	}
	return out
}

// Put inserts e unless the key is already present (entries are canonical,
// so the first writer wins and later identical writes are no-ops) or any
// of its assertions has been revoked (the monotone guaranteed-miss rule).
// Returns whether the entry was inserted.
func (c *Cache) Put(e Entry) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.putLocked(e)
}

// PutBatch inserts each entry under Put's rules and returns how many landed.
func (c *Cache) PutBatch(es []Entry) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range es {
		if c.putLocked(e) {
			n++
		}
	}
	return n
}

func (c *Cache) putLocked(e Entry) bool {
	if _, dup := c.entries[e.Key]; dup {
		return false
	}
	for _, a := range e.Asserts {
		if c.revoked[a] {
			c.rejects++
			return false
		}
	}
	c.entries[e.Key] = e
	for _, a := range e.Asserts {
		c.index[a] = append(c.index[a], e.Key)
	}
	c.puts++
	return true
}

// AnyRevoked reports whether any of keys is in the revoked set.
func (c *Cache) AnyRevoked(keys []string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, k := range keys {
		if c.revoked[k] {
			return true
		}
	}
	return false
}

// InvalidateAsserts marks each assertion key revoked (monotone — never
// un-revoked) and deletes every indexed entry predicated on one. Returns
// the number of entries removed.
func (c *Cache) InvalidateAsserts(keys []string) int {
	c.mu.Lock()
	removed := 0
	for _, a := range keys {
		c.revoked[a] = true
		for _, ek := range c.index[a] {
			if _, ok := c.entries[ek]; ok {
				delete(c.entries, ek)
				removed++
			}
		}
		delete(c.index, a)
	}
	c.invalidated += int64(removed)
	hook := c.revokeHook
	c.mu.Unlock()
	if hook != nil && len(keys) > 0 {
		hook(keys)
	}
	return removed
}

// SetRevokeHook registers fn to observe every revocation, called with
// the assertion keys after they are applied (outside the lock). This is
// the persistence seam: the hook appends to the on-disk revoked-set
// journal, so revocations are durable the moment they happen rather
// than only at the next snapshot. Set once, before traffic.
func (c *Cache) SetRevokeHook(fn func([]string)) {
	c.mu.Lock()
	c.revokeHook = fn
	c.mu.Unlock()
}

// RevokedKeys returns the revoked assertion keys in sorted order — the
// state a rejoining instance pulls to catch up with fleet recovery.
func (c *Cache) RevokedKeys() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.revoked))
	for k := range c.revoked {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SnapshotEntries returns a copy of the live entries sorted by key — a
// consistent point-in-time view taken under the shard lock, so it never
// contains a half-applied mutation. Values are the canonical wire bytes
// and are never mutated after Put, so sharing the slices is safe.
func (c *Cache) SnapshotEntries() []Entry {
	c.mu.RLock()
	out := make([]Entry, 0, len(c.entries))
	for _, e := range c.entries {
		out = append(out, e)
	}
	c.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Restore seeds the shard from persisted state: revocations are applied
// first (monotone, so replaying them is always safe), then entries are
// inserted under Put's rules — which means an entry predicated on a
// revoked assertion is rejected here exactly as it would be live, so a
// reload can never resurrect a quarantined answer. Returns how many
// entries landed and how many were rejected by the revoked check.
func (c *Cache) Restore(revoked []string, entries []Entry) (inserted, rejected int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, a := range revoked {
		c.revoked[a] = true
	}
	for _, e := range entries {
		before := c.rejects
		if c.putLocked(e) {
			inserted++
		} else if c.rejects > before {
			rejected++
		}
	}
	return inserted, rejected
}

// Len returns the number of live entries.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Flush drops all entries (and the index) but keeps the revoked set:
// forgetting answers is always safe, forgetting revocations never is.
func (c *Cache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]Entry)
	c.index = make(map[string][]string)
}

// Stats snapshots the shard's counters.
func (c *Cache) Stats() CacheStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return CacheStats{
		Entries:     len(c.entries),
		Revoked:     len(c.revoked),
		Hits:        c.hits,
		Misses:      c.misses,
		Puts:        c.puts,
		Rejects:     c.rejects,
		Invalidated: c.invalidated,
	}
}
