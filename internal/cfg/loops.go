package cfg

import (
	"fmt"
	"sort"

	"scaf/internal/ir"
)

// Loop is a natural loop: the set of blocks that can reach a back edge
// u→header without passing through the header.
type Loop struct {
	ID       int
	Fn       *ir.Func
	Header   *ir.Block
	Blocks   map[*ir.Block]bool
	Latches  []*ir.Block // in-loop sources of back edges to Header
	Exits    []*ir.Block // out-of-loop targets of edges leaving the loop
	Parent   *Loop
	Children []*Loop
	Depth    int // 1 for top-level loops
}

// Name returns a stable human-readable identifier, e.g. "main/body.3".
func (l *Loop) Name() string { return fmt.Sprintf("%s/%s", l.Fn.Name, l.Header) }

// Contains reports whether block b belongs to the loop.
func (l *Loop) Contains(b *ir.Block) bool { return l.Blocks[b] }

// ContainsInstr reports whether instruction in belongs to the loop.
func (l *Loop) ContainsInstr(in *ir.Instr) bool { return l.Blocks[in.Blk] }

// MemOps returns the loop's memory-accessing instructions in block order.
func (l *Loop) MemOps() []*ir.Instr {
	var out []*ir.Instr
	for _, b := range l.Fn.Blocks {
		if !l.Blocks[b] {
			continue
		}
		for _, in := range b.Instrs {
			if in.AccessesMemory() {
				out = append(out, in)
			}
		}
	}
	return out
}

// Forest is the loop nest of one function.
type Forest struct {
	Fn        *ir.Func
	Top       []*Loop
	All       []*Loop
	ByHeader  map[*ir.Block]*Loop
	Innermost map[*ir.Block]*Loop
}

// LoopOf returns the innermost loop containing b, or nil.
func (f *Forest) LoopOf(b *ir.Block) *Loop { return f.Innermost[b] }

// Loops computes the natural-loop forest of f using dominator tree dt
// (which must be a plain, unfiltered dominator tree of f).
func Loops(f *ir.Func, dt *Tree) *Forest {
	forest := &Forest{
		Fn:        f,
		ByHeader:  map[*ir.Block]*Loop{},
		Innermost: map[*ir.Block]*Loop{},
	}
	// Find back edges; group by header.
	for _, b := range f.Blocks {
		if !dt.Reachable(b) {
			continue
		}
		for _, s := range b.Succs {
			if dt.Dominates(s, b) { // back edge b->s
				l := forest.ByHeader[s]
				if l == nil {
					l = &Loop{
						ID:     len(forest.All),
						Fn:     f,
						Header: s,
						Blocks: map[*ir.Block]bool{s: true},
					}
					forest.ByHeader[s] = l
					forest.All = append(forest.All, l)
				}
				l.Latches = append(l.Latches, b)
				// Backward walk from the latch to collect the body.
				stack := []*ir.Block{b}
				for len(stack) > 0 {
					x := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					if l.Blocks[x] {
						continue
					}
					l.Blocks[x] = true
					for _, p := range x.Preds {
						if dt.Reachable(p) && !l.Blocks[p] {
							stack = append(stack, p)
						}
					}
				}
			}
		}
	}

	// Exits.
	for _, l := range forest.All {
		seen := map[*ir.Block]bool{}
		for b := range l.Blocks {
			for _, s := range b.Succs {
				if !l.Blocks[s] && !seen[s] {
					seen[s] = true
					l.Exits = append(l.Exits, s)
				}
			}
		}
		sort.Slice(l.Exits, func(i, j int) bool { return l.Exits[i].Index < l.Exits[j].Index })
	}

	// Nesting: sort by body size ascending; parent = smallest strictly
	// larger loop containing the header.
	bySize := append([]*Loop(nil), forest.All...)
	sort.Slice(bySize, func(i, j int) bool {
		if len(bySize[i].Blocks) != len(bySize[j].Blocks) {
			return len(bySize[i].Blocks) < len(bySize[j].Blocks)
		}
		return bySize[i].Header.Index < bySize[j].Header.Index
	})
	for i, l := range bySize {
		for j := i + 1; j < len(bySize); j++ {
			cand := bySize[j]
			if cand != l && cand.Blocks[l.Header] && len(cand.Blocks) > len(l.Blocks) {
				l.Parent = cand
				cand.Children = append(cand.Children, l)
				break
			}
		}
		if l.Parent == nil {
			forest.Top = append(forest.Top, l)
		}
	}
	var setDepth func(l *Loop, d int)
	setDepth = func(l *Loop, d int) {
		l.Depth = d
		for _, c := range l.Children {
			setDepth(c, d+1)
		}
	}
	for _, l := range forest.Top {
		setDepth(l, 1)
	}
	// Innermost membership: assign from outermost to innermost so inner
	// loops overwrite outer ones.
	var assign func(l *Loop)
	assign = func(l *Loop) {
		for b := range l.Blocks {
			forest.Innermost[b] = l
		}
		for _, c := range l.Children {
			assign(c)
		}
	}
	for _, l := range forest.Top {
		assign(l)
	}
	sort.Slice(forest.Top, func(i, j int) bool { return forest.Top[i].Header.Index < forest.Top[j].Header.Index })
	return forest
}

// IsBackEdge reports whether from→to is a back edge w.r.t. dt.
func IsBackEdge(dt *Tree, from, to *ir.Block) bool {
	return dt.Dominates(to, from)
}
