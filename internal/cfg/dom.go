// Package cfg provides control-flow analyses over the IR: reachability,
// dominator and post-dominator trees, and the natural-loop forest.
//
// Every analysis accepts an optional EdgeFilter. Filtering edges out is how
// speculative control flow is expressed: the control-speculation module
// removes profiled-never-taken edges and recomputes the trees on the
// filtered graph, without ever mutating the IR (paper §3.5: "SCAF does not
// change the code").
package cfg

import (
	"sort"

	"scaf/internal/ir"
)

// EdgeFilter reports whether the CFG edge from→to should be considered.
// A nil filter keeps every edge.
type EdgeFilter func(from, to *ir.Block) bool

// Tree is a dominator or post-dominator tree. The zero value is not usable;
// construct with Dominators or PostDominators.
type Tree struct {
	fn    *ir.Func
	post  bool
	idom  map[*ir.Block]*ir.Block // nil parent means "child of the virtual root"
	reach map[*ir.Block]bool
	in    map[*ir.Block]int // Euler tour interval for O(1) dominance
	out   map[*ir.Block]int
	kids  map[*ir.Block][]*ir.Block
	roots []*ir.Block
}

// Fn returns the function the tree was computed for.
func (t *Tree) Fn() *ir.Func { return t.fn }

// IsPostDom reports whether this is a post-dominator tree.
func (t *Tree) IsPostDom() bool { return t.post }

// Reachable reports whether b is reachable from the entry under the filter
// the tree was built with. Unreachable blocks are "speculatively dead" when
// the filter encodes control speculation.
func (t *Tree) Reachable(b *ir.Block) bool { return t.reach[b] }

// IDom returns the immediate dominator of b (nil for roots and
// unreachable blocks).
func (t *Tree) IDom(b *ir.Block) *ir.Block { return t.idom[b] }

// Children returns the blocks immediately dominated by b.
func (t *Tree) Children(b *ir.Block) []*ir.Block { return t.kids[b] }

// Roots returns the root blocks of the tree (the entry block for a
// dominator tree; the reachable return blocks for a post-dominator tree).
func (t *Tree) Roots() []*ir.Block { return t.roots }

// Dominates reports whether a dominates b (or post-dominates, for a
// post-dominator tree). A block dominates itself. Returns false when
// either block is unreachable.
func (t *Tree) Dominates(a, b *ir.Block) bool {
	if !t.reach[a] || !t.reach[b] {
		return false
	}
	return t.in[a] <= t.in[b] && t.out[b] <= t.out[a]
}

// InstrIndex returns the position of in within its block.
func InstrIndex(in *ir.Instr) int {
	for i, x := range in.Blk.Instrs {
		if x == in {
			return i
		}
	}
	return -1
}

// DominatesInstr reports instruction-level dominance: every path from the
// entry to i2 passes through i1 first. For a post-dominator tree it reports
// that every path from i2 to the exit passes through i1.
func (t *Tree) DominatesInstr(i1, i2 *ir.Instr) bool {
	if i1.Blk == i2.Blk {
		if !t.reach[i1.Blk] {
			return false
		}
		if t.post {
			return InstrIndex(i1) >= InstrIndex(i2)
		}
		return InstrIndex(i1) <= InstrIndex(i2)
	}
	return t.Dominates(i1.Blk, i2.Blk)
}

// Dominators computes the dominator tree of f under filter using the
// iterative Cooper–Harvey–Kennedy algorithm.
func Dominators(f *ir.Func, filter EdgeFilter) *Tree {
	return build(f, filter, false)
}

// PostDominators computes the post-dominator tree of f under filter. All
// reachable return blocks are attached to a virtual exit, so functions with
// multiple returns are handled uniformly.
func PostDominators(f *ir.Func, filter EdgeFilter) *Tree {
	return build(f, filter, true)
}

// ReachableBlocks returns the set of blocks reachable from the entry under
// the filter.
func ReachableBlocks(f *ir.Func, filter EdgeFilter) map[*ir.Block]bool {
	reach := map[*ir.Block]bool{}
	entry := f.Entry()
	if entry == nil {
		return reach
	}
	stack := []*ir.Block{entry}
	reach[entry] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if filter != nil && !filter(b, s) {
				continue
			}
			if !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	return reach
}

// build constructs the (post-)dominator tree on an integer graph with a
// virtual root at index 0.
func build(f *ir.Func, filter EdgeFilter, post bool) *Tree {
	reach := ReachableBlocks(f, filter)

	// Index reachable blocks from 1; 0 is the virtual root.
	var nodes []*ir.Block
	index := map[*ir.Block]int{}
	for _, b := range f.Blocks {
		if reach[b] {
			index[b] = len(nodes) + 1
			nodes = append(nodes, b)
		}
	}
	n := len(nodes) + 1
	succs := make([][]int, n)
	preds := make([][]int, n)
	addEdge := func(u, v int) {
		succs[u] = append(succs[u], v)
		preds[v] = append(preds[v], u)
	}
	if !post {
		if f.Entry() != nil && reach[f.Entry()] {
			addEdge(0, index[f.Entry()])
		}
		for _, b := range nodes {
			for _, s := range b.Succs {
				if reach[s] && (filter == nil || filter(b, s)) {
					addEdge(index[b], index[s])
				}
			}
		}
	} else {
		for _, b := range nodes {
			if t := b.Term(); t != nil && t.Op == ir.OpRet {
				addEdge(0, index[b])
			}
		}
		for _, b := range nodes {
			for _, s := range b.Succs {
				if reach[s] && (filter == nil || filter(b, s)) {
					addEdge(index[s], index[b]) // reversed
				}
			}
		}
	}

	// Reverse postorder over the integer graph from the virtual root.
	rpo := make([]int, 0, n)
	mark := make([]bool, n)
	var dfs func(u int)
	dfs = func(u int) {
		mark[u] = true
		for _, v := range succs[u] {
			if !mark[v] {
				dfs(v)
			}
		}
		rpo = append(rpo, u)
	}
	dfs(0)
	for i, j := 0, len(rpo)-1; i < j; i, j = i+1, j-1 {
		rpo[i], rpo[j] = rpo[j], rpo[i]
	}
	order := make([]int, n)
	for i := range order {
		order[i] = -1
	}
	for i, u := range rpo {
		order[u] = i
	}

	// Iterative idom computation (Cooper, Harvey, Kennedy).
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[0] = 0
	intersect := func(a, b int) int {
		for a != b {
			for order[a] > order[b] {
				a = idom[a]
			}
			for order[b] > order[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, u := range rpo {
			if u == 0 {
				continue
			}
			newIdom := -1
			for _, p := range preds[u] {
				if idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != -1 && idom[u] != newIdom {
				idom[u] = newIdom
				changed = true
			}
		}
	}

	t := &Tree{
		fn:    f,
		post:  post,
		idom:  map[*ir.Block]*ir.Block{},
		reach: reach,
		in:    map[*ir.Block]int{},
		out:   map[*ir.Block]int{},
		kids:  map[*ir.Block][]*ir.Block{},
	}
	childIdx := make([][]int, n)
	for u := 1; u < n; u++ {
		if idom[u] < 0 || order[u] < 0 {
			continue // dead in the analysis direction (e.g. infinite loop under postdom)
		}
		childIdx[idom[u]] = append(childIdx[idom[u]], u)
		if idom[u] == 0 {
			t.idom[nodes[u-1]] = nil
			t.roots = append(t.roots, nodes[u-1])
		} else {
			t.idom[nodes[u-1]] = nodes[idom[u]-1]
			t.kids[nodes[idom[u]-1]] = append(t.kids[nodes[idom[u]-1]], nodes[u-1])
		}
	}
	// Blocks reachable in the CFG but not reached in the analysis direction
	// (for postdom: blocks that cannot reach any return) are treated as
	// unreachable by dominance queries.
	for _, b := range nodes {
		if order[index[b]] < 0 {
			delete(t.reach, b)
		}
	}

	// Euler tour for O(1) dominance queries.
	clock := 0
	var tour func(u int)
	tour = func(u int) {
		if u != 0 {
			t.in[nodes[u-1]] = clock
		}
		clock++
		for _, v := range childIdx[u] {
			tour(v)
		}
		if u != 0 {
			t.out[nodes[u-1]] = clock
		}
		clock++
	}
	tour(0)
	return t
}

// Frontiers computes dominance frontiers for a dominator tree (used by the
// SSA construction pass).
func Frontiers(t *Tree) map[*ir.Block][]*ir.Block {
	df := map[*ir.Block][]*ir.Block{}
	for _, b := range t.fn.Blocks {
		if !t.reach[b] || len(b.Preds) < 2 {
			continue
		}
		for _, p := range b.Preds {
			if !t.reach[p] {
				continue
			}
			runner := p
			for runner != nil && runner != t.idom[b] && !contains(df[runner], b) {
				df[runner] = append(df[runner], b)
				runner = t.idom[runner]
			}
			// Stop condition subtlety: the loop above must stop at idom(b);
			// when runner becomes nil (a root) we are done too.
		}
	}
	for _, l := range df {
		sort.Slice(l, func(i, j int) bool { return l[i].Index < l[j].Index })
	}
	return df
}

func contains(l []*ir.Block, b *ir.Block) bool {
	for _, x := range l {
		if x == b {
			return true
		}
	}
	return false
}
