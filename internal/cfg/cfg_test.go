package cfg

import (
	"testing"

	"scaf/internal/ir"
)

// diamond builds:
//
//	entry -> (then | else) -> join -> exit(ret)
func diamond(t *testing.T) (*ir.Func, []*ir.Block) {
	t.Helper()
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.Void, &ir.Param{PName: "c", Ty: ir.Int})
	entry := f.NewBlock("entry")
	then := f.NewBlock("then")
	els := f.NewBlock("else")
	join := f.NewBlock("join")
	entry.CondBr(f.Params[0], then, els)
	then.Br(join)
	els.Br(join)
	join.Ret()
	if err := ir.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return f, []*ir.Block{entry, then, els, join}
}

// loopFunc builds: entry -> head; head -> body|exit; body -> head.
func loopFunc(t *testing.T) (*ir.Func, []*ir.Block) {
	t.Helper()
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.Void, &ir.Param{PName: "c", Ty: ir.Int})
	entry := f.NewBlock("entry")
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	entry.Br(head)
	head.CondBr(f.Params[0], body, exit)
	body.Br(head)
	exit.Ret()
	if err := ir.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return f, []*ir.Block{entry, head, body, exit}
}

func TestDominatorsDiamond(t *testing.T) {
	f, bs := diamond(t)
	entry, then, els, join := bs[0], bs[1], bs[2], bs[3]
	dt := Dominators(f, nil)

	checks := []struct {
		a, b *ir.Block
		want bool
	}{
		{entry, entry, true},
		{entry, then, true},
		{entry, els, true},
		{entry, join, true},
		{then, join, false},
		{els, join, false},
		{join, then, false},
		{then, els, false},
	}
	for _, c := range checks {
		if got := dt.Dominates(c.a, c.b); got != c.want {
			t.Errorf("dom(%s,%s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	if dt.IDom(join) != entry {
		t.Errorf("idom(join) = %v, want entry", dt.IDom(join))
	}
	if dt.IDom(entry) != nil {
		t.Errorf("idom(entry) should be nil")
	}
	if len(dt.Roots()) != 1 || dt.Roots()[0] != entry {
		t.Errorf("roots = %v", dt.Roots())
	}
}

func TestPostDominatorsDiamond(t *testing.T) {
	f, bs := diamond(t)
	entry, then, els, join := bs[0], bs[1], bs[2], bs[3]
	pdt := PostDominators(f, nil)

	if !pdt.Dominates(join, entry) {
		t.Error("join should post-dominate entry")
	}
	if !pdt.Dominates(join, then) || !pdt.Dominates(join, els) {
		t.Error("join should post-dominate both arms")
	}
	if pdt.Dominates(then, entry) {
		t.Error("then should not post-dominate entry")
	}
	if pdt.IDom(entry) != join {
		t.Errorf("post-idom(entry) = %v, want join", pdt.IDom(entry))
	}
}

func TestEdgeFilterSpecializesDominance(t *testing.T) {
	f, bs := diamond(t)
	entry, then, _, join := bs[0], bs[1], bs[2], bs[3]

	// Remove the entry->else edge: then now dominates join.
	filter := func(from, to *ir.Block) bool {
		return !(from == entry && to == bs[2])
	}
	dt := Dominators(f, filter)
	if !dt.Dominates(then, join) {
		t.Error("with else-edge removed, then should dominate join")
	}
	if dt.Reachable(bs[2]) {
		t.Error("else should be unreachable under the filter")
	}
	// Post-dominators under the same filter.
	pdt := PostDominators(f, filter)
	if !pdt.Dominates(then, entry) {
		t.Error("with else-edge removed, then should post-dominate entry")
	}
}

func TestDominatesInstrSameBlock(t *testing.T) {
	f, bs := diamond(t)
	entry := bs[0]
	m := f.Mod
	_ = m
	// Insert two instructions before the terminator by rebuilding: use a
	// fresh function instead.
	m2 := ir.NewModule("t2")
	g := m2.NewFunc("g", ir.Void)
	b := g.NewBlock("entry")
	a1 := b.Alloca(ir.Int, "a")
	i1 := b.Store(ir.CI(1), a1)
	i2 := b.Load(a1)
	b.Ret()
	dt := Dominators(g, nil)
	pdt := PostDominators(g, nil)
	if !dt.DominatesInstr(i1, i2) || dt.DominatesInstr(i2, i1) {
		t.Error("same-block dominance by order failed")
	}
	if !pdt.DominatesInstr(i2, i1) || pdt.DominatesInstr(i1, i2) {
		t.Error("same-block post-dominance by order failed")
	}
	_ = entry
	_ = f
}

func TestLoopsSimple(t *testing.T) {
	f, bs := loopFunc(t)
	head, body, exit := bs[1], bs[2], bs[3]
	dt := Dominators(f, nil)
	forest := Loops(f, dt)

	if len(forest.All) != 1 {
		t.Fatalf("found %d loops, want 1", len(forest.All))
	}
	l := forest.All[0]
	if l.Header != head {
		t.Errorf("header = %v", l.Header)
	}
	if !l.Contains(head) || !l.Contains(body) || l.Contains(exit) || l.Contains(bs[0]) {
		t.Errorf("loop membership wrong: %v", l.Blocks)
	}
	if len(l.Latches) != 1 || l.Latches[0] != body {
		t.Errorf("latches = %v", l.Latches)
	}
	if len(l.Exits) != 1 || l.Exits[0] != exit {
		t.Errorf("exits = %v", l.Exits)
	}
	if l.Depth != 1 || l.Parent != nil {
		t.Errorf("depth=%d parent=%v", l.Depth, l.Parent)
	}
	if forest.LoopOf(body) != l || forest.LoopOf(exit) != nil {
		t.Error("LoopOf wrong")
	}
}

func TestNestedLoops(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.Void, &ir.Param{PName: "c", Ty: ir.Int})
	c := f.Params[0]
	entry := f.NewBlock("entry")
	oh := f.NewBlock("outer_head")
	ih := f.NewBlock("inner_head")
	ib := f.NewBlock("inner_body")
	ol := f.NewBlock("outer_latch")
	exit := f.NewBlock("exit")
	entry.Br(oh)
	oh.CondBr(c, ih, exit)
	ih.CondBr(c, ib, ol)
	ib.Br(ih)
	ol.Br(oh)
	exit.Ret()
	if err := ir.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}

	dt := Dominators(f, nil)
	forest := Loops(f, dt)
	if len(forest.All) != 2 {
		t.Fatalf("found %d loops, want 2", len(forest.All))
	}
	outer := forest.ByHeader[oh]
	inner := forest.ByHeader[ih]
	if outer == nil || inner == nil {
		t.Fatal("missing loop headers")
	}
	if inner.Parent != outer || outer.Depth != 1 || inner.Depth != 2 {
		t.Errorf("nesting wrong: inner.Parent=%v outer.Depth=%d inner.Depth=%d", inner.Parent, outer.Depth, inner.Depth)
	}
	if forest.LoopOf(ib) != inner || forest.LoopOf(ol) != outer {
		t.Error("innermost map wrong")
	}
	if len(forest.Top) != 1 || forest.Top[0] != outer {
		t.Errorf("top loops = %v", forest.Top)
	}
}

func TestFrontiers(t *testing.T) {
	f, bs := diamond(t)
	entry, then, els, join := bs[0], bs[1], bs[2], bs[3]
	dt := Dominators(f, nil)
	df := Frontiers(dt)
	if len(df[then]) != 1 || df[then][0] != join {
		t.Errorf("DF(then) = %v, want [join]", df[then])
	}
	if len(df[els]) != 1 || df[els][0] != join {
		t.Errorf("DF(else) = %v, want [join]", df[els])
	}
	if len(df[entry]) != 0 {
		t.Errorf("DF(entry) = %v, want empty", df[entry])
	}
	if len(df[join]) != 0 {
		t.Errorf("DF(join) = %v, want empty", df[join])
	}
}

func TestFrontiersLoop(t *testing.T) {
	f, bs := loopFunc(t)
	head, body := bs[1], bs[2]
	dt := Dominators(f, nil)
	df := Frontiers(dt)
	// The loop body's frontier includes the header (the classic case that
	// places phis at loop headers).
	found := false
	for _, b := range df[body] {
		if b == head {
			found = true
		}
	}
	if !found {
		t.Errorf("DF(body) = %v, want to contain head", df[body])
	}
	// head's own frontier contains head (it is in the loop it heads).
	found = false
	for _, b := range df[head] {
		if b == head {
			found = true
		}
	}
	if !found {
		t.Errorf("DF(head) = %v, want to contain head", df[head])
	}
}

func TestReachableBlocks(t *testing.T) {
	f, bs := diamond(t)
	r := ReachableBlocks(f, nil)
	if len(r) != 4 {
		t.Errorf("reachable = %d blocks, want 4", len(r))
	}
	r = ReachableBlocks(f, func(from, to *ir.Block) bool { return to != bs[3] })
	if r[bs[3]] {
		t.Error("join should be filtered out")
	}
	if !r[bs[1]] || !r[bs[2]] {
		t.Error("arms should stay reachable")
	}
}

func TestIsBackEdge(t *testing.T) {
	f, bs := loopFunc(t)
	dt := Dominators(f, nil)
	if !IsBackEdge(dt, bs[2], bs[1]) {
		t.Error("body->head should be a back edge")
	}
	if IsBackEdge(dt, bs[1], bs[2]) {
		t.Error("head->body is not a back edge")
	}
}

func TestLoopMemOps(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.Void, &ir.Param{PName: "c", Ty: ir.Int})
	entry := f.NewBlock("entry")
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	g := m.NewGlobal("g", ir.Int)
	entry.Br(head)
	head.CondBr(f.Params[0], body, exit)
	body.Store(ir.CI(1), g)
	ld := body.Load(g)
	_ = ld
	body.Br(head)
	exit.Ret()

	dt := Dominators(f, nil)
	forest := Loops(f, dt)
	ops := forest.All[0].MemOps()
	if len(ops) != 2 {
		t.Fatalf("mem ops = %d, want 2", len(ops))
	}
	if ops[0].Op != ir.OpStore || ops[1].Op != ir.OpLoad {
		t.Errorf("mem ops order wrong: %v %v", ops[0].Op, ops[1].Op)
	}
}
