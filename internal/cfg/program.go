package cfg

import "scaf/internal/ir"

// Program bundles a module with its per-function control-flow analyses
// (dominator trees, post-dominator trees, loop forests), computed once and
// shared by profilers and analysis modules.
type Program struct {
	Mod     *ir.Module
	Dom     map[*ir.Func]*Tree
	PostDom map[*ir.Func]*Tree
	Forests map[*ir.Func]*Forest
}

// NewProgram computes the control-flow analyses for every function of m.
func NewProgram(m *ir.Module) *Program {
	p := &Program{
		Mod:     m,
		Dom:     map[*ir.Func]*Tree{},
		PostDom: map[*ir.Func]*Tree{},
		Forests: map[*ir.Func]*Forest{},
	}
	for _, f := range m.Funcs {
		dt := Dominators(f, nil)
		p.Dom[f] = dt
		p.PostDom[f] = PostDominators(f, nil)
		p.Forests[f] = Loops(f, dt)
	}
	return p
}

// AllLoops returns every loop in the program, outermost first per function.
func (p *Program) AllLoops() []*Loop {
	var out []*Loop
	for _, f := range p.Mod.Funcs {
		out = append(out, p.Forests[f].All...)
	}
	return out
}

// LoopOf returns the innermost loop containing instruction in, or nil.
func (p *Program) LoopOf(in *ir.Instr) *Loop {
	return p.Forests[in.Blk.Fn].Innermost[in.Blk]
}
