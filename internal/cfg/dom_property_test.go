package cfg

import (
	"math/rand"
	"testing"

	"scaf/internal/ir"
)

// randomCFG builds a random function: n blocks, block 0 the entry, last
// block the only Ret, others ending in Br or CondBr to random targets.
func randomCFG(rng *rand.Rand, n int) *ir.Func {
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.Void, &ir.Param{PName: "c", Ty: ir.Int})
	blocks := make([]*ir.Block, n)
	for i := 0; i < n; i++ {
		blocks[i] = f.NewBlock("b")
	}
	for i := 0; i < n-1; i++ {
		t1 := blocks[1+rng.Intn(n-1)]
		if rng.Intn(2) == 0 {
			blocks[i].Br(t1)
		} else {
			t2 := blocks[1+rng.Intn(n-1)]
			blocks[i].CondBr(f.Params[0], t1, t2)
		}
	}
	blocks[n-1].Ret()
	return f
}

// bruteDominates computes dominance by definition: a dominates b iff b is
// unreachable from the entry when a is removed (and both are reachable).
func bruteDominates(f *ir.Func, a, b *ir.Block) bool {
	reach := ReachableBlocks(f, nil)
	if !reach[a] || !reach[b] {
		return false
	}
	if a == b {
		return true
	}
	// BFS from entry avoiding a.
	seen := map[*ir.Block]bool{}
	queue := []*ir.Block{f.Entry()}
	if f.Entry() == a {
		return true // removing the entry makes everything unreachable
	}
	seen[f.Entry()] = true
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		if x == b {
			return false
		}
		for _, s := range x.Succs {
			if s != a && !seen[s] {
				seen[s] = true
				queue = append(queue, s)
			}
		}
	}
	return true
}

// brutePostDominates: a post-dominates b iff no return is reachable from
// b when a is removed.
func brutePostDominates(f *ir.Func, a, b *ir.Block) bool {
	reach := ReachableBlocks(f, nil)
	if !reach[a] || !reach[b] {
		return false
	}
	if a == b {
		return true
	}
	seen := map[*ir.Block]bool{b: true}
	queue := []*ir.Block{b}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		if x != a {
			if t := x.Term(); t != nil && t.Op == ir.OpRet {
				return false
			}
		} else {
			continue
		}
		for _, s := range x.Succs {
			if !seen[s] {
				seen[s] = true
				queue = append(queue, s)
			}
		}
	}
	return true
}

// canReachRet reports whether any return is reachable from b.
func canReachRet(b *ir.Block) bool {
	seen := map[*ir.Block]bool{b: true}
	queue := []*ir.Block{b}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		if t := x.Term(); t != nil && t.Op == ir.OpRet {
			return true
		}
		for _, s := range x.Succs {
			if !seen[s] {
				seen[s] = true
				queue = append(queue, s)
			}
		}
	}
	return false
}

// TestDominatorsAgainstBruteForce cross-checks the iterative dominator
// computation against the definition on many random CFGs.
func TestDominatorsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	for trial := 0; trial < 120; trial++ {
		n := 3 + rng.Intn(10)
		f := randomCFG(rng, n)
		dt := Dominators(f, nil)
		reach := ReachableBlocks(f, nil)
		for _, a := range f.Blocks {
			for _, b := range f.Blocks {
				want := bruteDominates(f, a, b)
				got := dt.Dominates(a, b)
				if got != want {
					t.Fatalf("trial %d: dom(%s,%s) = %v, want %v\n%s",
						trial, a, b, got, want, ir.FormatFunc(f))
				}
			}
		}
		// Reachability agrees.
		for _, b := range f.Blocks {
			if dt.Reachable(b) != reach[b] {
				t.Fatalf("trial %d: reachable(%s) mismatch", trial, b)
			}
		}
	}
}

// TestPostDominatorsAgainstBruteForce does the same for the post-dominator
// tree, restricted to blocks that can reach a return (others are outside
// the analysis direction by construction).
func TestPostDominatorsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(999))
	for trial := 0; trial < 120; trial++ {
		n := 3 + rng.Intn(10)
		f := randomCFG(rng, n)
		pdt := PostDominators(f, nil)
		reach := ReachableBlocks(f, nil)
		for _, a := range f.Blocks {
			for _, b := range f.Blocks {
				if !reach[a] || !reach[b] || !canReachRet(a) || !canReachRet(b) {
					continue
				}
				want := brutePostDominates(f, a, b)
				got := pdt.Dominates(a, b)
				if got != want {
					t.Fatalf("trial %d: postdom(%s,%s) = %v, want %v\n%s",
						trial, a, b, got, want, ir.FormatFunc(f))
				}
			}
		}
	}
}

// TestDominanceIsPartialOrder checks reflexivity, antisymmetry and
// transitivity on random CFGs.
func TestDominanceIsPartialOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 60; trial++ {
		f := randomCFG(rng, 3+rng.Intn(12))
		dt := Dominators(f, nil)
		var reachable []*ir.Block
		for _, b := range f.Blocks {
			if dt.Reachable(b) {
				reachable = append(reachable, b)
			}
		}
		for _, a := range reachable {
			if !dt.Dominates(a, a) {
				t.Fatalf("not reflexive at %s", a)
			}
			for _, b := range reachable {
				if a != b && dt.Dominates(a, b) && dt.Dominates(b, a) {
					t.Fatalf("not antisymmetric: %s, %s", a, b)
				}
				for _, c := range reachable {
					if dt.Dominates(a, b) && dt.Dominates(b, c) && !dt.Dominates(a, c) {
						t.Fatalf("not transitive: %s, %s, %s", a, b, c)
					}
				}
			}
		}
		// idom is the unique closest strict dominator.
		for _, b := range reachable {
			id := dt.IDom(b)
			if id == nil {
				continue
			}
			if !dt.Dominates(id, b) || id == b {
				t.Fatalf("idom(%s)=%s does not strictly dominate", b, id)
			}
			for _, a := range reachable {
				if a != b && a != id && dt.Dominates(a, b) && !dt.Dominates(a, id) {
					t.Fatalf("dominator %s of %s not above idom %s", a, b, id)
				}
			}
		}
	}
}

// TestLoopInvariants checks natural-loop facts on random reducible-ish
// structures: headers dominate their loop bodies.
func TestLoopInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 80; trial++ {
		f := randomCFG(rng, 4+rng.Intn(10))
		dt := Dominators(f, nil)
		forest := Loops(f, dt)
		for _, l := range forest.All {
			for b := range l.Blocks {
				if !dt.Dominates(l.Header, b) {
					// Irreducible region: natural-loop construction from
					// back edges guarantees header dominance only for true
					// back edges, which is how we detected them — so this
					// must never fire.
					t.Fatalf("trial %d: header %s does not dominate member %s",
						trial, l.Header, b)
				}
			}
			for _, latch := range l.Latches {
				if !l.Blocks[latch] {
					t.Fatalf("latch %s outside loop", latch)
				}
			}
			for _, exit := range l.Exits {
				if l.Blocks[exit] {
					t.Fatalf("exit %s inside loop", exit)
				}
			}
			if l.Parent != nil && !l.Parent.Blocks[l.Header] {
				t.Fatalf("nesting broken: parent lacks child header")
			}
		}
	}
}
