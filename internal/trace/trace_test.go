package trace

import (
	"bytes"
	"strings"
	"testing"

	"scaf/internal/core"
	"scaf/internal/ir"
)

// stubModule is a minimal core.Module for exercising the tracer.
type stubModule struct {
	name   string
	alias  func(q *core.AliasQuery, h core.Handle) core.AliasResponse
	modref func(q *core.ModRefQuery, h core.Handle) core.ModRefResponse
}

func (m *stubModule) Name() string          { return m.name }
func (m *stubModule) Kind() core.ModuleKind { return core.MemoryAnalysis }
func (m *stubModule) Alias(q *core.AliasQuery, h core.Handle) core.AliasResponse {
	if m.alias != nil {
		return m.alias(q, h)
	}
	return core.MayAliasResponse()
}
func (m *stubModule) ModRef(q *core.ModRefQuery, h core.Handle) core.ModRefResponse {
	if m.modref != nil {
		return m.modref(q, h)
	}
	return core.ModRefConservative()
}

// fixture builds an orchestrator whose resolutions exercise premises,
// cycle breaks, depth limits, and the memo cache, with a Collector
// attached.
func fixture() (*core.Orchestrator, *Collector, []*core.AliasQuery) {
	p1, p2 := ir.CI(1), ir.CI(2)
	mkq := func(size int64) *core.AliasQuery {
		return &core.AliasQuery{
			L1: core.MemLoc{Ptr: p1, Size: size},
			L2: core.MemLoc{Ptr: p2, Size: size},
		}
	}
	// asker resolves size-n by a premise on size-(n+1); size 6 is proven
	// directly but sits beyond MaxDepth 3 from a size-1 start (the chain is
	// truncated at depth 4); size 9 premises on itself (a cycle).
	asker := &stubModule{name: "asker"}
	asker.alias = func(q *core.AliasQuery, h core.Handle) core.AliasResponse {
		switch q.L1.Size {
		case 6:
			return core.AliasFact(core.NoAlias, "asker")
		case 9:
			h.PremiseAlias(mkq(9)) // self-cycle, broken conservatively
			return core.MayAliasResponse()
		default:
			if h.PremiseAlias(mkq(q.L1.Size+1)).Result == core.NoAlias {
				return core.AliasFact(core.NoAlias, "asker")
			}
			return core.MayAliasResponse()
		}
	}
	follower := &stubModule{name: "follower"}
	c := NewCollector()
	o := core.NewOrchestrator(core.Config{
		Modules:     []core.Module{asker, follower},
		EnableCache: true,
		MaxDepth:    3,
		Tracer:      c,
	})
	// Queries: a depth-truncated premise chain, the same again (served by
	// the memo table at the untainted root), and the self-cycle.
	return o, c, []*core.AliasQuery{mkq(1), mkq(1), mkq(9)}
}

func TestCollectorReconcilesWithStats(t *testing.T) {
	o, c, queries := fixture()
	for _, q := range queries {
		o.Alias(q)
	}
	m := Aggregate(c.Events())
	if err := m.Reconcile(o.Stats()); err != nil {
		t.Fatalf("trace does not reconcile: %v", err)
	}
	st := o.Stats()
	if st.PremiseQueries == 0 || st.CycleBreaks == 0 {
		t.Fatalf("fixture exercised nothing: %+v", st)
	}
	if m.TopQueries != 3 {
		t.Errorf("top queries = %d, want 3", m.TopQueries)
	}
	if m.PerModule["asker"] == nil || m.PerModule["asker"].Consults == 0 {
		t.Error("per-module consult aggregation missing asker")
	}
	if m.PerModule["asker"].PremisesAsked == 0 {
		t.Error("premise-edge attribution missing")
	}
	if !strings.Contains(m.Format(), "asker") {
		t.Error("Format omits consulted module")
	}
}

// TestTopEndDurMatchesLatencySample pins the single-measurement rule: the
// Dur a TraceTopEnd event carries and the latency sample recorded for the
// same top-level query come from one time.Since reading, so the trace and
// Stats.Latencies agree exactly, query by query. (They used to be two
// separate readings that always disagreed.)
func TestTopEndDurMatchesLatencySample(t *testing.T) {
	p1, p2 := ir.CI(1), ir.CI(2)
	mkq := func(size int64) *core.AliasQuery {
		return &core.AliasQuery{
			L1: core.MemLoc{Ptr: p1, Size: size},
			L2: core.MemLoc{Ptr: p2, Size: size},
		}
	}
	asker := &stubModule{name: "asker"}
	asker.alias = func(q *core.AliasQuery, h core.Handle) core.AliasResponse {
		if q.L1.Size < 4 {
			h.PremiseAlias(mkq(q.L1.Size + 1))
		}
		return core.MayAliasResponse()
	}
	c := NewCollector()
	o := core.NewOrchestrator(core.Config{
		Modules:       []core.Module{asker},
		RecordLatency: true,
		Tracer:        c,
	})
	for i := 0; i < 8; i++ {
		o.Alias(mkq(1))
		o.ModRef(&core.ModRefQuery{Loc: core.MemLoc{Ptr: p1, Size: int64(i)}})
	}
	st := o.Stats()
	var ends []Event
	for _, e := range c.Events() {
		if e.Kind == core.TraceTopEnd.String() {
			ends = append(ends, e)
		}
	}
	if len(ends) != len(st.Latencies) || len(ends) == 0 {
		t.Fatalf("top-end events %d vs latency samples %d", len(ends), len(st.Latencies))
	}
	for i, e := range ends {
		if e.DurNS != int64(st.Latencies[i]) {
			t.Fatalf("query %d: traced dur %dns != recorded latency %dns (two readings of the same query)",
				i, e.DurNS, int64(st.Latencies[i]))
		}
	}
}

// TestTracedRunAnswersMatchUntraced: attaching a tracer must not change
// any answer — it only observes.
func TestTracedRunAnswersMatchUntraced(t *testing.T) {
	o1, _, queries := fixture()
	o2, _, _ := fixture()
	o2.SetTracer(nil)
	for _, q := range queries {
		r1, r2 := o1.Alias(q), o2.Alias(q)
		if r1.Result != r2.Result {
			t.Fatalf("traced %s != untraced %s", r1.Result, r2.Result)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	o, c, queries := fixture()
	for _, q := range queries {
		o.Alias(q)
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, c.Events()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != c.Len() {
		t.Fatalf("round trip lost events: %d != %d", len(got), c.Len())
	}
	for i, e := range got {
		if !equalEvents(e, c.Events()[i]) {
			t.Fatalf("event %d differs after round trip:\n got %+v\nwant %+v", i, e, c.Events()[i])
		}
	}
	// Round-tripped metrics still reconcile.
	if err := Aggregate(got).Reconcile(o.Stats()); err != nil {
		t.Fatalf("round-tripped trace does not reconcile: %v", err)
	}
}

func equalEvents(a, b Event) bool {
	if a.Seq != b.Seq || a.Query != b.Query || a.Kind != b.Kind || a.Alias != b.Alias ||
		a.Prop != b.Prop || a.Depth != b.Depth || a.From != b.From || a.Module != b.Module ||
		a.Result != b.Result || a.Cost != b.Cost || a.DurNS != b.DurNS ||
		a.TimedOut != b.TimedOut || len(a.Contribs) != len(b.Contribs) {
		return false
	}
	for i := range a.Contribs {
		if a.Contribs[i] != b.Contribs[i] {
			return false
		}
	}
	return true
}

func TestMergeRenumbers(t *testing.T) {
	o1, c1, queries := fixture()
	o2, c2, _ := fixture()
	for _, q := range queries {
		o1.Alias(q)
		o2.Alias(q)
	}
	merged := Merge(c1, nil, c2)
	if len(merged) != c1.Len()+c2.Len() {
		t.Fatalf("merged %d events, want %d", len(merged), c1.Len()+c2.Len())
	}
	for i, e := range merged {
		if e.Seq != int64(i) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
	// Query ordinals continue across the boundary instead of restarting.
	m := Aggregate(merged)
	if m.TopQueries != 6 {
		t.Fatalf("merged top queries = %d, want 6", m.TopQueries)
	}
	last := merged[len(merged)-1]
	if last.Query != 5 {
		t.Errorf("last query ordinal = %d, want 5", last.Query)
	}
	// Merged metrics reconcile with merged stats.
	st := &core.Stats{}
	st.Merge(o1.Stats())
	st.Merge(o2.Stats())
	if err := m.Reconcile(st); err != nil {
		t.Fatalf("merged trace does not reconcile: %v", err)
	}
}

func TestBuildTreesStructure(t *testing.T) {
	o, c, queries := fixture()
	for _, q := range queries {
		o.Alias(q)
	}
	trees := BuildTrees(c.Events())
	if len(trees) != 3 {
		t.Fatalf("trees = %d, want 3", len(trees))
	}
	// Query 0: the premise chain 1→2→3→4 under MaxDepth 3 — at least one
	// nested premise child, and some frame sees the depth limit.
	root := trees[0].Root
	if len(root.Children) == 0 {
		t.Fatal("query 0 has no premise children")
	}
	if root.Children[0].From != "asker" {
		t.Errorf("premise asked by %q, want asker", root.Children[0].From)
	}
	depthLimits := 0
	var walk func(n *Node)
	var nodes int
	walk = func(n *Node) {
		nodes++
		depthLimits += n.DepthLimits
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	walk(root)
	if depthLimits == 0 {
		t.Error("depth limit not attached to any frame")
	}
	// Query 1 repeats query 0: served from the memo table. The hit can be
	// at the root (if untainted) — but the depth-limited chain is tainted,
	// so the root re-resolves and inner frames hit cached clean entries.
	// Either way at least one frame in the tree is a cache hit.
	hits := 0
	var rec func(n *Node)
	rec = func(n *Node) {
		if n.CacheHit {
			hits++
		}
		for _, ch := range n.Children {
			rec(ch)
		}
	}
	rec(trees[1].Root)
	if hits == 0 {
		t.Error("repeat query shows no cache hit in its tree")
	}
	// Query 2: the self-cycle — a cycle break attached below the root.
	breaks := 0
	var rb func(n *Node)
	rb = func(n *Node) {
		breaks += n.CycleBreaks
		for _, ch := range n.Children {
			rb(ch)
		}
	}
	rb(trees[2].Root)
	if breaks == 0 {
		t.Error("cycle break not attached to query 2's tree")
	}
}

func TestWriteDOT(t *testing.T) {
	o, c, queries := fixture()
	for _, q := range queries {
		o.Alias(q)
	}
	var buf bytes.Buffer
	if err := WriteDOT(&buf, BuildTrees(c.Events())); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph scaf_trace", "cluster_q0", "cluster_q2", "asker", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	if strings.Count(out, "{") != strings.Count(out, "}") {
		t.Error("unbalanced braces in DOT output")
	}
}

func TestCollectorReset(t *testing.T) {
	o, c, queries := fixture()
	o.Alias(queries[0])
	if c.Len() == 0 || c.Queries() != 1 {
		t.Fatalf("collector recorded nothing: len=%d queries=%d", c.Len(), c.Queries())
	}
	c.Reset()
	if c.Len() != 0 || c.Queries() != 0 {
		t.Error("Reset left state behind")
	}
	o.Alias(queries[2])
	if c.Queries() != 1 || c.Events()[0].Query != 0 {
		t.Error("post-Reset numbering did not restart at 0")
	}
}
