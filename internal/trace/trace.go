// Package trace records and analyzes query-resolution traces emitted by
// core.Orchestrator through the core.Tracer hook.
//
// The Collector turns the hook's event stream into a flat, order-preserving
// record; WriteJSONL/ReadJSONL give it a stable on-disk form (one JSON
// object per line); Aggregate derives per-module metrics that reconcile
// exactly with core.Stats; BuildTrees reconstructs each top-level query's
// resolution tree, renderable as a Graphviz collaboration graph (the
// per-query view behind the paper's Fig. 9/10 aggregate numbers).
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"scaf/internal/core"
)

// Event is the serializable form of one core.TraceEvent, stamped with its
// position in the stream. Seq orders events within one collector; Query is
// the ordinal of the enclosing top-level query (0-based), so the events of
// one resolution tree share a Query value.
type Event struct {
	Seq      int64    `json:"seq"`
	Query    int64    `json:"query"`
	Kind     string   `json:"kind"`
	Alias    bool     `json:"alias,omitempty"`
	Prop     string   `json:"prop,omitempty"`
	Depth    int      `json:"depth,omitempty"`
	From     string   `json:"from,omitempty"`
	Module   string   `json:"module,omitempty"`
	Result   string   `json:"result,omitempty"`
	Cost     float64  `json:"cost,omitempty"`
	DurNS    int64    `json:"dur_ns,omitempty"`
	Contribs []string `json:"contribs,omitempty"`
	TimedOut bool     `json:"timed_out,omitempty"`
}

// Collector implements core.Tracer by buffering events in memory. Like the
// orchestrator it serves, a Collector is confined to one goroutine; attach
// one per worker and combine with Merge.
type Collector struct {
	events []Event
	query  int64
}

// NewCollector returns an empty Collector.
func NewCollector() *Collector { return &Collector{query: -1} }

// TraceEvent implements core.Tracer.
func (c *Collector) TraceEvent(e core.TraceEvent) {
	if e.Kind == core.TraceTopStart {
		c.query++
	}
	var contribs []string
	if len(e.Contribs) > 0 {
		contribs = append(contribs, e.Contribs...) // hook contract: copy, don't retain
	}
	c.events = append(c.events, Event{
		Seq:      int64(len(c.events)),
		Query:    c.query,
		Kind:     e.Kind.String(),
		Alias:    e.Alias,
		Prop:     e.Prop,
		Depth:    e.Depth,
		From:     e.From,
		Module:   e.Module,
		Result:   e.Result,
		Cost:     e.Cost,
		DurNS:    int64(e.Dur),
		Contribs: contribs,
		TimedOut: e.TimedOut,
	})
}

// Events returns the recorded stream in arrival order. The slice is owned
// by the collector; callers must not append to it.
func (c *Collector) Events() []Event { return c.events }

// Len reports the number of recorded events.
func (c *Collector) Len() int { return len(c.events) }

// Queries reports the number of top-level queries observed.
func (c *Collector) Queries() int64 { return c.query + 1 }

// Reset discards all recorded events.
func (c *Collector) Reset() { c.events = nil; c.query = -1 }

// Merge concatenates the event streams of several collectors into one,
// renumbering Seq and Query so the result reads as a single stream. Like
// core.Stats.Merge, the result is deterministic for a fixed argument order;
// callers combining per-worker collectors should pass them in worker-index
// order.
func Merge(collectors ...*Collector) []Event {
	total := 0
	for _, c := range collectors {
		if c != nil {
			total += len(c.events)
		}
	}
	out := make([]Event, 0, total)
	var queryBase int64
	for _, c := range collectors {
		if c == nil {
			continue
		}
		for _, e := range c.events {
			e.Seq = int64(len(out))
			e.Query += queryBase
			out = append(out, e)
		}
		queryBase += c.query + 1
	}
	return out
}

// Concat appends src to dst, renumbering src's Seq and Query so the result
// reads as one stream (e.g. when concatenating the traces of several
// analyses into one JSONL file).
func Concat(dst, src []Event) []Event {
	var queryBase int64
	if n := len(dst); n > 0 {
		queryBase = dst[n-1].Query + 1
	}
	for _, e := range src {
		e.Seq = int64(len(dst))
		e.Query += queryBase
		dst = append(dst, e)
	}
	return dst
}

// WriteJSONL writes events as JSON Lines: one event object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return fmt.Errorf("trace: encoding event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSON Lines stream produced by WriteJSONL. Blank lines
// are skipped.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return out, nil
}
