package trace

import (
	"fmt"
	"sort"
	"time"

	"scaf/internal/core"
)

// ModuleMetrics aggregates the consults of one module across a trace.
type ModuleMetrics struct {
	// Consults counts evaluations of this module.
	Consults int64
	// Dur is the total wall-clock time spent inside the module.
	Dur time.Duration
	// Results histograms the module's own answers (before joining),
	// lattice point → count.
	Results map[string]int64
	// PremisesAsked counts premise queries this module issued.
	PremisesAsked int64
}

// Metrics holds trace-derived totals. Each counter is the number of events
// of the matching kind, so by the Tracer contract (events fire exactly
// where counters increment) Metrics reconciles with core.Stats.
type Metrics struct {
	TopQueries     int64
	PremiseQueries int64
	Consults       int64
	CacheHits      int64
	SharedHits     int64
	CycleBreaks    int64
	DepthLimits    int64
	Timeouts       int64
	ModulePanics   int64
	// MaxDepth is the deepest premise nesting observed.
	MaxDepth int
	// TopResults histograms the joined top-level answers.
	TopResults map[string]int64
	// TopDur is the total wall clock across top-level queries.
	TopDur time.Duration
	// PerModule maps module name → its consult aggregate.
	PerModule map[string]*ModuleMetrics
	// PremiseEdges counts asker module → premise queries issued; "" keys
	// never occur (the client's queries are top-level, not premises).
	PremiseEdges map[string]int64
}

// NewMetrics returns an empty Metrics ready for incremental Observe calls.
func NewMetrics() *Metrics {
	return &Metrics{
		TopResults:   map[string]int64{},
		PerModule:    map[string]*ModuleMetrics{},
		PremiseEdges: map[string]int64{},
	}
}

// Aggregate derives Metrics from an event stream (any order-preserving
// slice: one collector, a Merge result, or a ReadJSONL round trip).
func Aggregate(events []Event) *Metrics {
	m := NewMetrics()
	for _, e := range events {
		m.Observe(e)
	}
	return m
}

// Observe folds one event into the metrics. Incremental observation of a
// stream is equivalent to Aggregate over the whole of it, which lets
// long-running consumers (e.g. the query server's /metrics endpoint) keep
// a live aggregate without retaining events. The receiver must have been
// built by NewMetrics or Aggregate; Observe itself is not concurrency-safe.
func (m *Metrics) Observe(e Event) {
	mod := func(name string) *ModuleMetrics {
		mm := m.PerModule[name]
		if mm == nil {
			mm = &ModuleMetrics{Results: map[string]int64{}}
			m.PerModule[name] = mm
		}
		return mm
	}
	if e.Depth > m.MaxDepth {
		m.MaxDepth = e.Depth
	}
	switch e.Kind {
	case "top_start":
		m.TopQueries++
	case "top_end":
		m.TopResults[e.Result]++
		m.TopDur += time.Duration(e.DurNS)
	case "premise_start":
		m.PremiseQueries++
		if e.From != "" {
			m.PremiseEdges[e.From]++
			mod(e.From).PremisesAsked++
		}
	case "consult":
		m.Consults++
		mm := mod(e.Module)
		mm.Consults++
		mm.Dur += time.Duration(e.DurNS)
		mm.Results[e.Result]++
	case "cache_hit":
		m.CacheHits++
	case "shared_hit":
		m.SharedHits++
	case "cycle_break":
		m.CycleBreaks++
	case "depth_limit":
		m.DepthLimits++
	case "timeout":
		m.Timeouts++
	case "module_panic":
		m.ModulePanics++
	}
}

// Reconcile checks the trace-derived totals against an orchestrator's
// counters and reports the first mismatch. A nil return is the
// observability guarantee: the trace saw exactly the work the aggregate
// counters accounted for.
func (m *Metrics) Reconcile(st *core.Stats) error {
	checks := []struct {
		name   string
		trace  int64
		direct int64
	}{
		{"top queries", m.TopQueries, st.TopQueries},
		{"premise queries", m.PremiseQueries, st.PremiseQueries},
		{"module evals", m.Consults, st.ModuleEvals},
		{"cache hits", m.CacheHits, st.CacheHits},
		{"shared hits", m.SharedHits, st.SharedHits},
		{"cycle breaks", m.CycleBreaks, st.CycleBreaks},
		{"depth limits", m.DepthLimits, st.DepthLimits},
		{"timeouts", m.Timeouts, st.Timeouts},
		{"module panics", m.ModulePanics, st.ModulePanics},
	}
	for _, c := range checks {
		if c.trace != c.direct {
			return fmt.Errorf("trace: %s diverge: trace saw %d, stats counted %d",
				c.name, c.trace, c.direct)
		}
	}
	return nil
}

// ModuleNames returns the consulted modules sorted by descending consult
// count (ties by name), the order reports list them in.
func (m *Metrics) ModuleNames() []string {
	names := make([]string, 0, len(m.PerModule))
	for n := range m.PerModule {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		a, b := m.PerModule[names[i]], m.PerModule[names[j]]
		if a.Consults != b.Consults {
			return a.Consults > b.Consults
		}
		return names[i] < names[j]
	})
	return names
}

// Format renders a human-readable metrics table.
func (m *Metrics) Format() string {
	s := fmt.Sprintf("queries: %d top, %d premise (max depth %d); %d consults; "+
		"%d cache + %d shared hits; %d cycle breaks, %d depth limits, %d timeouts\n",
		m.TopQueries, m.PremiseQueries, m.MaxDepth, m.Consults,
		m.CacheHits, m.SharedHits, m.CycleBreaks, m.DepthLimits, m.Timeouts)
	for _, n := range m.ModuleNames() {
		mm := m.PerModule[n]
		s += fmt.Sprintf("  %-24s %6d consults  %10s  %d premises asked\n",
			n, mm.Consults, mm.Dur.Round(time.Microsecond), mm.PremisesAsked)
	}
	return s
}
