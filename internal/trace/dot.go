package trace

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Consult is one module evaluation attached to a resolution node.
type Consult struct {
	Module string
	Result string
	Cost   float64
	Dur    time.Duration
}

// Node is one resolution frame in a top-level query's premise tree.
type Node struct {
	// Prop describes the proposition ("" when the frame was served from a
	// cache, which skips the describing start event's fields).
	Prop string
	// Alias distinguishes alias from mod-ref propositions.
	Alias bool
	// Depth is the premise nesting depth (0 for the root).
	Depth int
	// From names the module that asked ("" for the client).
	From string
	// Result is the frame's joined answer.
	Result string
	// Consults lists the module evaluations of this frame, in order.
	Consults []Consult
	// Children are the premise resolutions opened by this frame's consults.
	Children []*Node
	// CacheHit/SharedHit mark frames answered from a memo table (leaf).
	CacheHit, SharedHit bool
	// CycleBreaks counts premises of this frame that re-asked an in-flight
	// proposition; DepthLimits counts premises rejected at MaxDepth.
	// Both are degradations local to this frame.
	CycleBreaks, DepthLimits int
}

// Tree is one top-level query's resolution tree.
type Tree struct {
	// Query is the top-level query ordinal within the trace.
	Query int64
	Root  *Node
	// Dur is the query's wall-clock time; TimedOut and Contribs mirror the
	// top_end event.
	Dur      time.Duration
	TimedOut bool
	Contribs []string
}

// BuildTrees reconstructs per-query resolution trees from an event stream.
// Events that belong to a query whose top_start is missing (a truncated
// trace) are dropped.
func BuildTrees(events []Event) []*Tree {
	var trees []*Tree
	var cur *Tree
	var stack []*Node
	top := func() *Node {
		if len(stack) == 0 {
			return nil
		}
		return stack[len(stack)-1]
	}
	for _, e := range events {
		switch e.Kind {
		case "top_start":
			cur = &Tree{Query: e.Query, Root: &Node{Prop: e.Prop, Alias: e.Alias}}
			stack = stack[:0]
			stack = append(stack, cur.Root)
		case "top_end":
			if cur == nil {
				continue
			}
			cur.Root.Result = e.Result
			cur.Dur = time.Duration(e.DurNS)
			cur.TimedOut = e.TimedOut
			cur.Contribs = e.Contribs
			trees = append(trees, cur)
			cur, stack = nil, stack[:0]
		case "premise_start":
			parent := top()
			if parent == nil {
				continue
			}
			n := &Node{Prop: e.Prop, Alias: e.Alias, Depth: e.Depth, From: e.From}
			parent.Children = append(parent.Children, n)
			stack = append(stack, n)
		case "premise_end":
			if n := top(); n != nil && len(stack) > 1 {
				n.Result = e.Result
				stack = stack[:len(stack)-1]
			}
		case "consult":
			if n := top(); n != nil {
				n.Consults = append(n.Consults, Consult{
					Module: e.Module, Result: e.Result, Cost: e.Cost,
					Dur: time.Duration(e.DurNS),
				})
			}
		case "cache_hit":
			// The hit replaces the frame that a premise_start just opened
			// (or answers the root directly at depth 0).
			if n := top(); n != nil {
				n.CacheHit = true
			}
		case "shared_hit":
			if n := top(); n != nil {
				n.SharedHit = true
			}
		case "cycle_break":
			if n := top(); n != nil {
				n.CycleBreaks++
			}
		case "depth_limit":
			// Depth-limited premises are rejected before a frame opens, so
			// the event lands on the asking frame.
			if n := top(); n != nil {
				n.DepthLimits++
			}
		}
	}
	return trees
}

// WriteDOT renders trees as one Graphviz digraph, one cluster per query.
// Resolution frames are ellipses, module consults are boxes; solid edges
// are premise questions (labeled with the asking module), dotted edges
// attach consults.
func WriteDOT(w io.Writer, trees []*Tree) error {
	var b strings.Builder
	b.WriteString("digraph scaf_trace {\n  rankdir=TB;\n  node [fontsize=10];\n")
	id := 0
	for _, t := range trees {
		fmt.Fprintf(&b, "  subgraph cluster_q%d {\n", t.Query)
		label := fmt.Sprintf("query %d — %s (%s)", t.Query, t.Root.Result, t.Dur.Round(time.Microsecond))
		if t.TimedOut {
			label += " TIMED OUT"
		}
		fmt.Fprintf(&b, "    label=%s;\n", dotQuote(label))
		writeDOTNode(&b, t.Root, &id)
		b.WriteString("  }\n")
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func writeDOTNode(b *strings.Builder, n *Node, id *int) int {
	me := *id
	*id++
	label := n.Prop
	if label == "" {
		label = "(frame)"
	}
	if n.Result != "" {
		label += "\\n= " + n.Result
	}
	var marks []string
	if n.CacheHit {
		marks = append(marks, "cache hit")
	}
	if n.SharedHit {
		marks = append(marks, "shared hit")
	}
	if n.CycleBreaks > 0 {
		marks = append(marks, fmt.Sprintf("%d cycle break(s)", n.CycleBreaks))
	}
	if n.DepthLimits > 0 {
		marks = append(marks, fmt.Sprintf("%d depth limit(s)", n.DepthLimits))
	}
	if len(marks) > 0 {
		label += "\\n[" + strings.Join(marks, ", ") + "]"
	}
	shape := "ellipse"
	if n.CacheHit || n.SharedHit {
		shape = "diamond"
	}
	fmt.Fprintf(b, "    n%d [label=%s shape=%s];\n", me, dotQuote(label), shape)
	for _, c := range n.Consults {
		cid := *id
		*id++
		fmt.Fprintf(b, "    n%d [label=%s shape=box style=filled fillcolor=lightgrey];\n",
			cid, dotQuote(fmt.Sprintf("%s\\n%s (%s)", c.Module, c.Result, c.Dur.Round(time.Microsecond))))
		fmt.Fprintf(b, "    n%d -> n%d [style=dotted arrowhead=none];\n", me, cid)
	}
	for _, child := range n.Children {
		cid := writeDOTNode(b, child, id)
		elabel := child.From
		if elabel != "" {
			elabel = "asked by " + elabel
		}
		fmt.Fprintf(b, "    n%d -> n%d [label=%s];\n", me, cid, dotQuote(elabel))
	}
	return me
}

// dotQuote wraps s in DOT double quotes, escaping embedded quotes but
// leaving \n sequences (Graphviz line breaks) intact.
func dotQuote(s string) string {
	return `"` + strings.ReplaceAll(s, `"`, `\"`) + `"`
}
