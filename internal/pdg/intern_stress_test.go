// Stress suite for the session-scoped assertion interner: 16 workers
// hammer one SharedCache (and therefore one intern table) while resolving
// assertion-heavy loops, under the race detector via `make race`. The
// answers must stay bit-identical to the serial baseline, and the table
// must converge — once a round adds no new assertion identities, later
// rounds must not either.
package pdg_test

import (
	"fmt"
	"testing"

	"scaf"
	"scaf/internal/bench"
	"scaf/internal/core"
	"scaf/internal/pdg"
)

const internStressWorkers = 16

func TestInternTableParallelStress(t *testing.T) {
	// 181.mcf's hot loops lean on speculation (ctrl/value/points-to
	// assertions), so the intern table sees real traffic, not just the
	// assertion-free fast path.
	b, err := bench.Load("181.mcf")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	serialRes, _ := analyzeSerial(b, nil)

	shared := core.NewSharedCache()
	pc := b.Sys.ParallelClient(internStressWorkers, scaf.SchemeSCAF,
		scaf.WithSharedCache(shared))
	var sizes []int
	for round := 0; round < 4; round++ {
		res, _ := pc.AnalyzeLoops(b.Hot)
		requireEqualResults(t, fmt.Sprintf("round %d", round), serialRes, res)
		sizes = append(sizes, shared.Interner().Len())
	}
	if sizes[0] == 0 {
		t.Fatal("no assertion was ever interned — fixture exercises nothing")
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] != sizes[0] {
			t.Fatalf("intern table kept growing across identical rounds: %v", sizes)
		}
	}

	// The serial run resolves the same loops through the system interner;
	// both vocabularies cover the same assertions, so every assertion in
	// the parallel results must render to a wire key the serial results
	// also contain (interning must not invent or lose identities).
	serialKeys := assertWireKeys(serialRes)
	parRes, _ := pc.AnalyzeLoops(b.Hot)
	for k := range assertWireKeys(parRes) {
		if !serialKeys[k] {
			t.Errorf("parallel-only assertion identity %q", k)
		}
	}
}

func assertWireKeys(rs []*pdg.LoopResult) map[string]bool {
	out := map[string]bool{}
	for _, r := range rs {
		for _, q := range r.Queries {
			for _, o := range q.Resp.Options {
				for _, a := range o.Asserts {
					out[a.String()] = true
				}
			}
		}
	}
	return out
}
