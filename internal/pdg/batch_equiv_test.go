// Batch-resolution equivalence: ResolveLoop must be answer-identical to
// the unbatched AnalyzeLoop reference on every scheme — the batch only
// removes re-derivation, never changes answers — and must actually remove
// some (module evals strictly below the unbatched run's, memo hits > 0).
package pdg_test

import (
	"testing"

	"scaf"
	"scaf/internal/bench"
	"scaf/internal/pdg"
)

func TestResolveLoopMatchesAnalyzeLoop(t *testing.T) {
	for _, name := range []string{"181.mcf", "183.equake"} {
		b, err := bench.Load(name)
		if err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
		client := b.Sys.Client()
		for _, scheme := range []scaf.Scheme{scaf.SchemeCAF, scaf.SchemeConfluence, scaf.SchemeSCAF} {
			oU := b.Sys.Orchestrator(scheme)
			oB := b.Sys.Orchestrator(scheme)
			var unbatched, batched []*pdg.LoopResult
			for _, l := range b.Hot {
				unbatched = append(unbatched, client.AnalyzeLoop(oU, l))
				batched = append(batched, client.ResolveLoop(oB, l))
			}
			label := name + "/" + scheme.String()
			requireEqualResults(t, label, unbatched, batched)
			u, bt := oU.Stats(), oB.Stats()
			if bt.CacheHits == 0 {
				t.Errorf("%s: batch resolution never hit its memo", label)
			}
			if bt.ModuleEvals >= u.ModuleEvals {
				t.Errorf("%s: batched evals %d not below unbatched %d",
					label, bt.ModuleEvals, u.ModuleEvals)
			}
		}
	}
}
