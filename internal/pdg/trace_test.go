// Tracing through the parallel client: per-worker collectors must merge
// into a stream that reconciles exactly with the merged stats, and a
// traced run must produce bit-identical PDG results to an untraced one.
package pdg_test

import (
	"reflect"
	"testing"

	"scaf"
	"scaf/internal/bench"
	"scaf/internal/core"
	"scaf/internal/pdg"
	"scaf/internal/trace"
)

// tracedRun analyzes b's hot loops with workers and per-worker collectors,
// returning results, merged stats, and the worker-order merged stream.
func tracedRun(b *bench.Benchmark, workers int) ([]*pdg.LoopResult, *core.Stats, []trace.Event) {
	var collectors []*trace.Collector
	pc := pdg.NewParallelClient(b.Sys.Client(), workers, b.Sys.OrchestratorFactory(scaf.SchemeSCAF))
	pc.NewTracer = func(w int) core.Tracer {
		c := trace.NewCollector()
		collectors = append(collectors, c)
		return c
	}
	results, stats := pc.AnalyzeLoops(b.Hot)
	return results, stats, trace.Merge(collectors...)
}

func TestParallelTraceReconciles(t *testing.T) {
	for _, b := range loadEquivalenceSuite(t) {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			results, stats, events := tracedRun(b, equivalenceWorkers)
			m := trace.Aggregate(events)
			if err := m.Reconcile(stats); err != nil {
				t.Fatalf("parallel trace does not reconcile: %v", err)
			}
			if stats.TopQueries > 0 && len(events) == 0 {
				t.Fatal("queries ran but no events were recorded")
			}
			// Traced results are bit-identical to untraced serial results.
			pcSerial := pdg.NewParallelClient(b.Sys.Client(), 1,
				b.Sys.OrchestratorFactory(scaf.SchemeSCAF))
			serial, serialStats := pcSerial.AnalyzeLoops(b.Hot)
			if !reflect.DeepEqual(results, serial) {
				t.Error("traced parallel results differ from untraced serial results")
			}
			// Counter totals agree too: tracing observes, never perturbs.
			// The comparison runs at workers=1 on both sides because effort
			// counters (ModuleEvals, PremiseQueries) are NOT partition-
			// invariant: modules carry lazily built caches of their own
			// (e.g. global-malloc's per-global classification), so which
			// worker's module instance analyzes which loop changes how much
			// work repeats — results stay identical, effort does not.
			// Comparing an 8-worker run against a serial one here would be
			// flaky by construction.
			_, tracedSerialStats, _ := tracedRun(b, 1)
			if !reflect.DeepEqual(statsNoLat(tracedSerialStats), statsNoLat(serialStats)) {
				t.Errorf("traced stats %+v != untraced %+v", tracedSerialStats, serialStats)
			}
		})
	}
}

func statsNoLat(s *core.Stats) core.Stats {
	c := *s
	c.Latencies = nil
	c.WorkSamples = nil
	return c
}

// TestParallelTraceTreesParse sanity-checks that the merged stream still
// builds well-formed trees: one per top-level query, each carrying the
// consults the stats counted.
func TestParallelTraceTreesParse(t *testing.T) {
	b := loadEquivalenceSuite(t)[0]
	_, stats, events := tracedRun(b, equivalenceWorkers)
	trees := trace.BuildTrees(events)
	if int64(len(trees)) != stats.TopQueries {
		t.Fatalf("trees = %d, top queries = %d", len(trees), stats.TopQueries)
	}
	var consults int64
	var walk func(n *trace.Node)
	walk = func(n *trace.Node) {
		consults += int64(len(n.Consults))
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	for _, tr := range trees {
		walk(tr.Root)
	}
	if consults != stats.ModuleEvals {
		t.Errorf("tree consults = %d, module evals = %d", consults, stats.ModuleEvals)
	}
}
