package pdg

import (
	"strings"
	"testing"

	"scaf/internal/analysis"
	"scaf/internal/cfg"
	"scaf/internal/core"
	"scaf/internal/ir"
	"scaf/internal/lower"
)

func build(t *testing.T, src string) (*cfg.Program, *core.Orchestrator) {
	t.Helper()
	mod, err := lower.Compile("test", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	prog := cfg.NewProgram(mod)
	mods := analysis.DefaultModules(prog)
	o := core.NewOrchestrator(core.Config{Modules: mods, Groups: analysis.Groups(mods)})
	return prog, o
}

func TestNoDepInterpretation(t *testing.T) {
	mod := ir.NewModule("t")
	f := mod.NewFunc("f", ir.Void)
	b := f.NewBlock("entry")
	g := mod.NewGlobal("g", ir.Int)
	st := b.Store(ir.CI(1), g)
	ld := b.Load(g)
	b.Ret()

	cases := []struct {
		res  core.ModRefResult
		i2   *ir.Instr
		want bool
	}{
		{core.NoModRef, ld, true},
		{core.NoModRef, st, true},
		{core.Ref, ld, true},  // both only read: no dep
		{core.Ref, st, false}, // anti dep possible
		{core.Mod, ld, false}, // flow dep possible
		{core.Mod, st, false}, // output dep possible
		{core.ModRef, ld, false},
	}
	for i, c := range cases {
		got := noDep(core.ModRefResponse{Result: c.res}, c.i2)
		if got != c.want {
			t.Errorf("case %d: noDep(%s, %s) = %v, want %v", i, c.res, c.i2.Op, got, c.want)
		}
	}
}

func TestAnalyzeLoopQuerySet(t *testing.T) {
	prog, o := build(t, `
int a;
int b;
void main() {
    for (int i = 0; i < 100; i++) {
        a = a + i;    // load a, store a
        b = b + 2;    // load b, store b
    }
    print(a);
}`)
	main := prog.Mod.FuncNamed("main")
	loop := prog.Forests[main].All[0]
	c := NewClient(prog)
	res := c.AnalyzeLoop(o, loop)

	// 4 mem ops (2 loads, 2 stores). Pairs with at least one write, with
	// Same (i1 != i2) and Before (including self): load-load pairs drop.
	// Same: all ordered pairs minus same-instr minus load-load = 12-2=10.
	// Before: 16-4(load-load incl self)=12... enumerate: pairs where
	// either writes: total ordered pairs 16, load-load pairs 4 -> 12; Same
	// excludes i1==i2 (4 pairs, of which 2 store-store self already
	// counted in the 12): Same = 12 - 2 (self store pairs) = 10.
	wantQueries := 22
	if len(res.Queries) != wantQueries {
		t.Errorf("queries = %d, want %d", len(res.Queries), wantQueries)
	}

	// a's accesses never depend on b's: those pairs must all be NoDep.
	ga := prog.Mod.GlobalNamed("a")
	gb := prog.Mod.GlobalNamed("b")
	baseOf := func(in *ir.Instr) ir.Value {
		p, _, _ := in.PointerOperand()
		return core.Decompose(p).Base
	}
	for _, q := range res.Queries {
		b1, b2 := baseOf(q.I1), baseOf(q.I2)
		if (b1 == ir.Value(ga) && b2 == ir.Value(gb)) || (b1 == ir.Value(gb) && b2 == ir.Value(ga)) {
			if !q.NoDep {
				t.Errorf("a/b pair should be independent: %s vs %s (%s)", q.I1, q.I2, q.Rel)
			}
		}
		// The recurrences a += i / b += 2 carry real deps: store->load
		// cross-iteration... unless killed by the same store. The
		// intra-iteration flow load->store (anti) remains.
		if b1 == b2 && q.I1.Op == ir.OpLoad && q.I2.Op == ir.OpStore && q.Rel == core.Same {
			if q.NoDep {
				t.Errorf("anti dep %s -> %s must remain", q.I1, q.I2)
			}
		}
	}
	if res.NoDepPct() <= 0 || res.NoDepPct() >= 100 {
		t.Errorf("NoDepPct = %f, expected a mix", res.NoDepPct())
	}
}

func TestUnaffordableOptionsAreConservative(t *testing.T) {
	// A fake orchestrator-like response with only prohibitive options
	// must not count as NoDep; exercised through AnalyzeLoop with a
	// module that returns prohibitively-priced NoModRef.
	prog, _ := build(t, `
int a;
void main() {
    for (int i = 0; i < 60; i++) { a = a + i; }
    print(a);
}`)
	expensive := &expensiveModule{}
	o := core.NewOrchestrator(core.Config{Modules: []core.Module{expensive}})
	main := prog.Mod.FuncNamed("main")
	loop := prog.Forests[main].All[0]
	res := NewClient(prog).AnalyzeLoop(o, loop)
	for _, q := range res.Queries {
		if q.NoDep {
			t.Errorf("prohibitive-only options must not clear %s -> %s", q.I1, q.I2)
		}
	}
}

type expensiveModule struct{ core.BaseModule }

func (m *expensiveModule) Name() string          { return "expensive" }
func (m *expensiveModule) Kind() core.ModuleKind { return core.Speculation }
func (m *expensiveModule) ModRef(q *core.ModRefQuery, h core.Handle) core.ModRefResponse {
	return core.ModRefSpec(core.NoModRef, m.Name(),
		core.Assertion{Module: m.Name(), Kind: "impossible", Cost: core.Prohibitive})
}

func TestWeightedNoDep(t *testing.T) {
	mkLoop := func() *cfg.Loop { return &cfg.Loop{} }
	l1, l2 := mkLoop(), mkLoop()
	r1 := &LoopResult{Loop: l1, Queries: []Query{{NoDep: true}, {NoDep: true}}}  // 100%
	r2 := &LoopResult{Loop: l2, Queries: []Query{{NoDep: true}, {NoDep: false}}} // 50%
	w := map[*cfg.Loop]float64{l1: 3, l2: 1}
	got := WeightedNoDep([]*LoopResult{r1, r2}, func(l *cfg.Loop) float64 { return w[l] })
	if got < 87.4 || got > 87.6 {
		t.Errorf("weighted = %f, want 87.5", got)
	}
	// Empty loop counts as fully resolved.
	r3 := &LoopResult{Loop: mkLoop()}
	if r3.NoDepPct() != 100 {
		t.Errorf("empty loop NoDepPct = %f", r3.NoDepPct())
	}
}

func TestByKey(t *testing.T) {
	prog, o := build(t, `
int a;
void main() {
    for (int i = 0; i < 60; i++) { a = a + i; }
    print(a);
}`)
	main := prog.Mod.FuncNamed("main")
	loop := prog.Forests[main].All[0]
	res := NewClient(prog).AnalyzeLoop(o, loop)
	byKey := res.ByKey()
	if len(byKey) != len(res.Queries) {
		t.Errorf("ByKey lost entries: %d vs %d", len(byKey), len(res.Queries))
	}
	for i := range res.Queries {
		q := &res.Queries[i]
		if byKey[Key{q.I1, q.I2, q.Rel}] != q {
			t.Errorf("ByKey mismatch for %v", q)
		}
	}
}

func TestToDOT(t *testing.T) {
	prog, o := build(t, `
int a;
int b;
void main() {
    for (int i = 0; i < 100; i++) {
        a = a + i;
        b = b + a;
    }
    print(b);
}`)
	main := prog.Mod.FuncNamed("main")
	loop := prog.Forests[main].All[0]
	res := NewClient(prog).AnalyzeLoop(o, loop)
	dot := res.ToDOT()
	for _, want := range []string{"digraph", "->", "color=red", "store"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Disproven pairs leave no edge: a's ops vs b's store-load pairs that
	// analysis separates must be absent... count edges < total queries.
	if strings.Count(dot, "->") >= len(res.Queries) {
		t.Error("expected some disproven dependences to be omitted")
	}
}
