package pdg

import (
	"testing"

	"scaf/internal/core"
	"scaf/internal/ir"
)

func mkAssertion(mod, kind string, cost float64, conflict *ir.Global) core.Assertion {
	a := core.Assertion{Module: mod, Kind: kind, Cost: cost}
	if conflict != nil {
		a.Conflicts = []core.Point{{G: conflict}}
	}
	return a
}

func specQuery(opts ...core.Option) Query {
	return Query{
		NoDep: true,
		Cost:  core.MinCost(opts),
		Resp:  core.ModRefResponse{Result: core.NoModRef, Options: opts},
	}
}

func TestBuildPlanSharesAssertions(t *testing.T) {
	shared := mkAssertion("ctrl", "edges", 5, nil)
	exp := mkAssertion("residue", "mask", 100, nil)

	// Three queries all resolvable by the same shared assertion; the
	// second also has a locally-cheaper-looking exclusive alternative...
	qs := []Query{
		specQuery(core.Option{Asserts: []core.Assertion{shared}}),
		specQuery(
			core.Option{Asserts: []core.Assertion{exp}},
			core.Option{Asserts: []core.Assertion{shared}},
		),
		specQuery(core.Option{Asserts: []core.Assertion{shared}}),
	}
	p := BuildPlan(qs)
	if p.Covered != 3 || p.Dropped != 0 {
		t.Fatalf("covered=%d dropped=%d", p.Covered, p.Dropped)
	}
	// The global optimum pays for `shared` once (cost 5), never for exp.
	if p.TotalCost != 5 {
		t.Errorf("total cost = %g, want 5 (shared assertion paid once)", p.TotalCost)
	}
	if len(p.Assertions) != 1 {
		t.Errorf("assertions = %v", p.Assertions)
	}
}

func TestBuildPlanHandlesConflicts(t *testing.T) {
	site := &ir.Global{GName: "site", Elem: ir.Int}
	ro := mkAssertion("read-only", "ro-heap", 3, site)
	sl := mkAssertion("short-lived", "sl-heap", 3, site)

	qs := []Query{
		specQuery(core.Option{Asserts: []core.Assertion{ro}}),
		// Only resolvable via the conflicting short-lived separation.
		specQuery(core.Option{Asserts: []core.Assertion{sl}}),
	}
	p := BuildPlan(qs)
	if p.Covered != 1 || p.Dropped != 1 {
		t.Fatalf("covered=%d dropped=%d, want 1/1", p.Covered, p.Dropped)
	}
	if len(p.Assertions) != 1 {
		t.Errorf("plan must keep exactly one of the conflicting heaps: %v", p.Assertions)
	}
}

func TestBuildPlanCounts(t *testing.T) {
	free := Query{NoDep: true, Resp: core.ModRefResponse{
		Result: core.NoModRef, Options: core.Unconditional()}}
	unresolved := Query{NoDep: false, Resp: core.ModRefConservative()}
	prohibitive := Query{NoDep: true, Resp: core.ModRefResponse{
		Result:  core.NoModRef,
		Options: []core.Option{{Asserts: []core.Assertion{mkAssertion("pts", "obj", core.Prohibitive, nil)}}},
	}}
	// NoDep with only prohibitive options never happens from the client
	// (AnalyzeLoop downgrades it), but the planner must not crash on it.
	p := BuildPlan([]Query{free, unresolved, prohibitive})
	if p.Free != 1 || p.Unresolved != 1 {
		t.Errorf("free=%d unresolved=%d", p.Free, p.Unresolved)
	}
	if p.Covered != 0 || p.Dropped != 1 {
		t.Errorf("covered=%d dropped=%d", p.Covered, p.Dropped)
	}
	if p.TotalCost != 0 {
		t.Errorf("cost = %g", p.TotalCost)
	}
}

func TestBuildPlanEndToEnd(t *testing.T) {
	prog, _ := build(t, `
int cfg;
int out;
void main() {
    cfg = 7;
    for (int i = 0; i < 120; i++) {
        out = out + cfg;    // predictable load resolves speculatively
        cfg = 7;
    }
    print(out);
}`)
	_ = prog
}
