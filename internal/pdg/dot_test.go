package pdg

import (
	"testing"

	"scaf/internal/cfg"
	"scaf/internal/core"
	"scaf/internal/ir"
)

// TestToDOTGolden pins the exact DOT rendering of a hand-built loop
// result: a remaining intra-iteration dependence (solid, labelled), a
// speculatively removed one (dashed, with cost), a loop-carried remaining
// dependence (red), and a disproven pair (no edge at all).
func TestToDOTGolden(t *testing.T) {
	mod := ir.NewModule("t")
	f := mod.NewFunc("f", ir.Void)
	b := f.NewBlock("entry")
	g := mod.NewGlobal("g", ir.Int)
	st := b.Store(ir.CI(1), g)
	ld := b.Load(g)
	b.Ret()
	loop := &cfg.Loop{Fn: f, Header: b}

	res := &LoopResult{Loop: loop, Queries: []Query{
		{I1: st, I2: ld, Rel: core.Same, Resp: core.ModRefResponse{Result: core.ModRef}},
		{I1: ld, I2: st, Rel: core.Same, NoDep: true, Cost: 2},
		{I1: st, I2: st, Rel: core.Before, Resp: core.ModRefResponse{Result: core.Mod}},
		{I1: ld, I2: ld, Rel: core.Before, NoDep: true},
	}}

	got := res.ToDOT()
	want := `digraph "f/entry.0" {
  rankdir=TB;
  node [shape=box, fontname="monospace", fontsize=10];
  n0 [label="store 1, @g"];
  n1 [label="%v1 = load int, @g"];
  n0 -> n1 [label="ModRef"];
  n1 -> n0 [style=dashed, label="speculated (cost 2)"];
  n0 -> n0 [color=red, xlabel="loop-carried", label="Mod"];
}
`
	if got != want {
		t.Errorf("DOT output diverged from golden.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
