package pdg

import (
	"reflect"

	"scaf/internal/cfg"
	"scaf/internal/core"
)

// Profile-guided module ordering with verified adoption. core.OrderProfile
// proposes a consult order that minimizes expected module evaluations
// under BailDefiniteAffordable, but consult order is visible in answers —
// a different module may settle a query first, changing which contributors
// and option sets a response carries, and in the worst case the lattice
// point itself. A candidate is therefore adopted only after a full re-run
// of the training universe proves it *answer-identical* to the fixed
// schedule (per query: same lattice result, same no-dependence verdict,
// same validation cost) AND strictly cheaper. Anything less and the fixed
// schedule stands. Attribution — Contribs naming the settling module, the
// exact composition of equally-cheap option sets — is allowed to shift:
// it records who answered, not what the answer was.

// LearnOrder profiles the fixed schedule over loops, proposes a candidate
// consult order, and verifies it. mint must return a fresh, independent
// orchestrator (fresh module instances included, exactly as a
// ParallelClient factory would) configured with the given module order
// (nil = the fixed schedule) and tracer (may be nil).
//
// The learned order is returned only when all three gates pass:
//
//  1. the candidate differs from the fixed schedule;
//  2. re-running every loop under the candidate is answer-identical to
//     the fixed schedule's run (EqualAnswers);
//  3. the candidate run's ModuleEvals are strictly lower.
//
// Otherwise LearnOrder returns (nil, false) and callers keep the fixed
// schedule. The two training passes cost two serial analyses of loops;
// sessions amortize that over every orchestrator minted afterwards.
func LearnOrder(c *Client, loops []*cfg.Loop, mint func(order []string, tr core.Tracer) *core.Orchestrator) ([]string, bool) {
	prof := core.NewOrderProfile()
	po := mint(nil, prof)
	base := runUniverse(c, po, loops)
	fixed := core.ModuleNames(po.Modules())
	candidate := prof.Candidate(po.Modules())
	if reflect.DeepEqual(candidate, fixed) {
		return nil, false
	}
	co := mint(candidate, nil)
	cand := runUniverse(c, co, loops)
	if cand.evals >= base.evals || !EqualAnswers(base.results, cand.results) {
		return nil, false
	}
	return candidate, true
}

// universeRun is one pass over a query universe.
type universeRun struct {
	results []*LoopResult
	evals   int64
}

func runUniverse(c *Client, o *core.Orchestrator, loops []*cfg.Loop) universeRun {
	results := make([]*LoopResult, len(loops))
	for i, l := range loops {
		results[i] = c.ResolveLoop(o, l)
	}
	return universeRun{results: results, evals: o.Stats().ModuleEvals}
}

// EqualAnswers reports whether two universe runs agree on every answer a
// client acts on: the same loops in the same order, the same query list
// per loop, and per query the same lattice result, no-dependence verdict,
// and validation cost. Attribution fields (Resp.Contribs, the exact option
// sets behind an equal Cost) are deliberately not compared.
func EqualAnswers(a, b []*LoopResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Loop != b[i].Loop || len(a[i].Queries) != len(b[i].Queries) {
			return false
		}
		for j := range a[i].Queries {
			qa, qb := &a[i].Queries[j], &b[i].Queries[j]
			if qa.I1 != qb.I1 || qa.I2 != qb.I2 || qa.Rel != qb.Rel ||
				qa.Resp.Result != qb.Resp.Result ||
				qa.NoDep != qb.NoDep || qa.Cost != qb.Cost {
				return false
			}
		}
	}
	return true
}
