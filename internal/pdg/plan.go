package pdg

import (
	"sort"

	"scaf/internal/core"
)

// Plan is a validation plan: one set of speculative assertions whose
// validation makes every covered query's NoDep answer sound. Building it
// is the "global reasoning" the paper motivates in §3.4 — one cheap
// assertion (say, a read-only heap separation) often discharges many
// dependences at once, so the planner optimizes the assertion UNION, not
// each query locally.
type Plan struct {
	// Assertions is the deduplicated, mutually conflict-free set to
	// validate.
	Assertions []core.Assertion
	// TotalCost is the union's validation cost (not the per-query sum).
	TotalCost float64
	// Free counts queries resolved without any validation.
	Free int
	// Covered counts queries resolved by assertions in the plan.
	Covered int
	// Dropped counts speculatively-resolvable queries abandoned because
	// every option conflicted with the plan built so far.
	Dropped int
	// Unresolved counts queries no scheme could remove.
	Unresolved int
}

// BuildPlan greedily selects one affordable option per resolvable query,
// minimizing the marginal cost added to the plan. Queries are processed
// cheapest-first so widely-shared cheap assertions enter the plan early
// and subsequent queries ride along for free. Run the PDG under
// core.JoinAll + core.BailExhaustive to give the planner real
// alternatives per query.
func BuildPlan(queries []Query) *Plan {
	p := &Plan{}
	merged := core.Option{} // running union as one big option
	chosen := map[string]bool{}

	type cand struct {
		q    *Query
		opts []core.Option
		min  float64
	}
	var cands []cand
	for i := range queries {
		q := &queries[i]
		if !q.NoDep {
			p.Unresolved++
			continue
		}
		opts := core.AffordableOptions(q.Resp.Options)
		if core.HasFree(opts) {
			p.Free++
			continue
		}
		cands = append(cands, cand{q: q, opts: opts, min: core.MinCost(opts)})
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].min < cands[j].min })

	marginal := func(o core.Option) (float64, core.Option, bool) {
		m, ok := core.TryMerge(merged, o)
		if !ok {
			return 0, core.Option{}, false
		}
		var added float64
		for _, a := range o.Asserts {
			if !chosen[a.String()] {
				added += a.Cost
			}
		}
		return added, m, true
	}

	for _, c := range cands {
		bestCost := -1.0
		var bestMerged core.Option
		var bestOpt core.Option
		for _, o := range c.opts {
			add, m, ok := marginal(o)
			if !ok {
				continue
			}
			if bestCost < 0 || add < bestCost {
				bestCost, bestMerged, bestOpt = add, m, o
			}
		}
		if bestCost < 0 {
			p.Dropped++
			continue
		}
		merged = bestMerged
		for _, a := range bestOpt.Asserts {
			chosen[a.String()] = true
		}
		p.Covered++
	}

	p.Assertions = merged.Asserts
	for _, a := range p.Assertions {
		p.TotalCost += a.Cost
	}
	return p
}

// assertSet returns the plan's assertion identities.
func (p *Plan) assertSet() map[string]bool {
	in := make(map[string]bool, len(p.Assertions))
	for _, a := range p.Assertions {
		in[a.String()] = true
	}
	return in
}

// Covers reports whether the plan discharges q: the query is NoDep and
// either some affordable option needs no validation or some affordable
// option's assertions are all in the plan. A speculative runtime may only
// act on a NoDep answer the plan covers — anything else was dropped or
// never resolved.
func (p *Plan) Covers(q *Query) bool {
	if !q.NoDep {
		return false
	}
	opts := core.AffordableOptions(q.Resp.Options)
	if core.HasFree(opts) {
		return true
	}
	in := p.assertSet()
	for _, o := range opts {
		if len(o.Asserts) == 0 {
			continue
		}
		all := true
		for _, a := range o.Asserts {
			if !in[a.String()] {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// Attribution returns the planned assertions q's NoDep answer rode on:
// the union of assertions from q's affordable options fully contained in
// the plan. When a runtime observes a dependence the plan denied, these
// are the assertions to quarantine.
func (p *Plan) Attribution(q *Query) []core.Assertion {
	in := p.assertSet()
	seen := map[string]bool{}
	var out []core.Assertion
	for _, o := range core.AffordableOptions(q.Resp.Options) {
		if len(o.Asserts) == 0 {
			continue
		}
		all := true
		for _, a := range o.Asserts {
			if !in[a.String()] {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		for _, a := range o.Asserts {
			if k := a.String(); !seen[k] {
				seen[k] = true
				out = append(out, a)
			}
		}
	}
	return out
}
