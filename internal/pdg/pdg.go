// Package pdg implements the evaluation client of the paper (§5): a
// Program Dependence Graph builder that, for each hot loop, issues an
// intra-iteration and a cross-iteration mod-ref query for every pair of
// memory operations, and scores analysis precision with the %NoDep metric.
package pdg

import (
	"scaf/internal/cfg"
	"scaf/internal/core"
	"scaf/internal/ir"
)

// Query is one dependence query the client issued, with its outcome.
type Query struct {
	I1, I2 *ir.Instr
	Rel    core.TemporalRelation
	Resp   core.ModRefResponse
	// NoDep is true when the response rules out any flow/anti/output
	// dependence I1→I2 at an affordable validation cost.
	NoDep bool
	// Cost is the cheapest affordable option's validation cost when NoDep
	// (0 for validation-free results).
	Cost float64
}

// Key identifies a query independent of which scheme answered it.
type Key struct {
	I1, I2 *ir.Instr
	Rel    core.TemporalRelation
}

// LoopResult is the PDG of one loop.
type LoopResult struct {
	Loop    *cfg.Loop
	Queries []Query
}

// NoDepPct returns the fraction (0..100) of queries with no dependence.
func (r *LoopResult) NoDepPct() float64 {
	if len(r.Queries) == 0 {
		return 100
	}
	n := 0
	for _, q := range r.Queries {
		if q.NoDep {
			n++
		}
	}
	return 100 * float64(n) / float64(len(r.Queries))
}

// ByKey indexes the queries.
func (r *LoopResult) ByKey() map[Key]*Query {
	out := make(map[Key]*Query, len(r.Queries))
	for i := range r.Queries {
		q := &r.Queries[i]
		out[Key{q.I1, q.I2, q.Rel}] = q
	}
	return out
}

// Client drives dependence queries against an Orchestrator.
type Client struct {
	Prog *cfg.Program
}

// NewClient creates a PDG client for prog.
func NewClient(prog *cfg.Program) *Client { return &Client{Prog: prog} }

// depPossible reports whether a pair can carry any dependence at all
// (at least one endpoint must be able to write).
func depPossible(i1, i2 *ir.Instr) bool {
	return i1.Writes() || i2.Writes()
}

// noDep interprets a mod-ref response as the absence of any dependence
// I1→I2: results are upper bounds on I1's access to I2's footprint, so
//
//	flow:   I1 mods ∧ I2 reads
//	anti:   I1 refs ∧ I2 writes
//	output: I1 mods ∧ I2 writes
//
// are all ruled out exactly when the surviving access bits cannot pair
// with I2's capabilities.
func noDep(resp core.ModRefResponse, i2 *ir.Instr) bool {
	mayMod := resp.Result == core.Mod || resp.Result == core.ModRef
	mayRef := resp.Result == core.Ref || resp.Result == core.ModRef
	if mayMod && (i2.Reads() || i2.Writes()) {
		return false
	}
	if mayRef && i2.Writes() {
		return false
	}
	return true
}

// MaterializeQuery applies the client's affordability rule to one mod-ref
// response, producing the Query record AnalyzeLoop records: responses
// whose every option is prohibitively expensive are treated as unresolved
// (the client cannot afford them), mirroring the paper's discarding of
// points-to-predicated answers.
func MaterializeQuery(i1, i2 *ir.Instr, rel core.TemporalRelation, resp core.ModRefResponse) Query {
	q := Query{I1: i1, I2: i2, Rel: rel, Resp: resp}
	afford := core.AffordableOptions(resp.Options)
	if len(afford) == 0 {
		// Unaffordable: fall back to the conservative result.
		q.NoDep = false
		return q
	}
	q.NoDep = noDep(resp, i2)
	if q.NoDep {
		q.Cost = core.MinCost(afford)
	}
	return q
}

// AnalyzeLoop builds the dependence query set of loop l and resolves it
// through o, one query at a time with no cross-query reuse. Most callers
// want ResolveLoop instead; this unbatched form exists as the reference
// the batch path is proven identical against (TestResolveLoopMatchesAnalyzeLoop).
func (c *Client) AnalyzeLoop(o *core.Orchestrator, l *cfg.Loop) *LoopResult {
	return c.AnalyzeLoopHook(o, l, nil)
}

// ResolveLoop resolves loop l's dependence query set as one batch: the
// loop's pairs share premise work (the dominator trees and op list are
// computed once per loop, and premise resolutions memoize across pairs in
// pooled batch-scoped tables — see core.Orchestrator.BeginBatch). Results
// are bit-identical to AnalyzeLoop's; the batch only removes re-derivation.
func (c *Client) ResolveLoop(o *core.Orchestrator, l *cfg.Loop) *LoopResult {
	return c.ResolveLoopHook(o, l, nil)
}

// ResolveLoopHook is ResolveLoop with AnalyzeLoopHook's pre-query hook.
func (c *Client) ResolveLoopHook(o *core.Orchestrator, l *cfg.Loop, before func()) *LoopResult {
	o.BeginBatch()
	defer o.EndBatch()
	return c.AnalyzeLoopHook(o, l, before)
}

// AnalyzeLoopHook is AnalyzeLoop with a hook invoked immediately before
// each dependence query is issued (nil: no hook, identical to
// AnalyzeLoop). The serving layer uses the hook to re-arm the
// orchestrator's per-query time budget against a request deadline; the
// hook cannot change the query set or its order.
func (c *Client) AnalyzeLoopHook(o *core.Orchestrator, l *cfg.Loop, before func()) *LoopResult {
	dt := c.Prog.Dom[l.Fn]
	pdt := c.Prog.PostDom[l.Fn]
	ops := l.MemOps()
	res := &LoopResult{Loop: l}
	for _, i1 := range ops {
		for _, i2 := range ops {
			for _, rel := range []core.TemporalRelation{core.Same, core.Before} {
				if rel == core.Same && i1 == i2 {
					continue
				}
				if !depPossible(i1, i2) {
					continue
				}
				if before != nil {
					before()
				}
				resp := o.ModRef(&core.ModRefQuery{
					I1: i1, I2: i2, Rel: rel, Loop: l, DT: dt, PDT: pdt,
				})
				res.Queries = append(res.Queries, MaterializeQuery(i1, i2, rel, resp))
			}
		}
	}
	return res
}

// WeightedNoDep aggregates per-loop %NoDep values weighted by loop
// execution weight (the paper's benchmark-level metric).
func WeightedNoDep(results []*LoopResult, weight func(*cfg.Loop) float64) float64 {
	var wsum, acc float64
	for _, r := range results {
		w := weight(r.Loop)
		if w <= 0 {
			w = 1e-9
		}
		wsum += w
		acc += w * r.NoDepPct()
	}
	if wsum == 0 {
		return 0
	}
	return acc / wsum
}
