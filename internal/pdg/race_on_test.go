//go:build race

package pdg_test

// raceEnabled trims the equivalence suite's benchmark set under the race
// detector, whose ~10× slowdown would otherwise dominate CI.
const raceEnabled = true
