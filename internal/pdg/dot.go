package pdg

import (
	"fmt"
	"sort"
	"strings"

	"scaf/internal/core"
	"scaf/internal/ir"
)

// ToDOT renders a loop's dependence graph in Graphviz format: one node
// per memory operation, solid edges for remaining dependences, dashed
// edges for dependences removed speculatively (labelled with the
// validation cost), and no edge where analysis disproved the dependence
// outright. Cross-iteration dependences are drawn in red.
func (r *LoopResult) ToDOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", r.Loop.Name())
	b.WriteString("  rankdir=TB;\n  node [shape=box, fontname=\"monospace\", fontsize=10];\n")

	nodes := map[*ir.Instr]bool{}
	for _, q := range r.Queries {
		nodes[q.I1] = true
		nodes[q.I2] = true
	}
	var order []*ir.Instr
	for n := range nodes {
		order = append(order, n)
	}
	sort.Slice(order, func(i, j int) bool { return order[i].ID < order[j].ID })
	for _, n := range order {
		fmt.Fprintf(&b, "  n%d [label=%q];\n", n.ID, ir.FormatInstr(n))
	}

	for _, q := range r.Queries {
		attrs := []string{}
		if q.Rel == core.Before {
			attrs = append(attrs, "color=red", `xlabel="loop-carried"`)
		}
		switch {
		case q.NoDep && q.Cost > 0:
			attrs = append(attrs, "style=dashed",
				fmt.Sprintf(`label="speculated (cost %.0f)"`, q.Cost))
		case q.NoDep:
			continue // disproven: no edge at all
		default:
			attrs = append(attrs, fmt.Sprintf("label=%q", q.Resp.Result.String()))
		}
		fmt.Fprintf(&b, "  n%d -> n%d [%s];\n", q.I1.ID, q.I2.ID, strings.Join(attrs, ", "))
	}
	b.WriteString("}\n")
	return b.String()
}
