//go:build !race

package pdg_test

const raceEnabled = false
