// Parallel PDG construction: the per-loop query sets of §5 are mutually
// independent, so loops fan out across a worker pool. Orchestrators are
// not safe for concurrent use, so each worker mints its own from a factory
// and the per-worker stats are merged afterwards. Loops resolve as batches
// (ResolveLoop) whose memo tables are cleared between loops, so with
// lifetime caching disabled (or routed through a core.SharedCache, whose
// publication rule only admits canonical entries) every loop's result is a
// pure function of the loop and the configuration, and the parallel client
// is bit-identical to the serial one; TestParallelMatchesSerial asserts
// exactly that.
package pdg

import (
	"runtime"
	"sync"
	"sync/atomic"

	"scaf/internal/cfg"
	"scaf/internal/core"
)

// ParallelClient resolves the dependence queries of many loops
// concurrently.
type ParallelClient struct {
	Client *Client
	// Workers is the pool size; values < 1 mean GOMAXPROCS. The pool never
	// exceeds the number of loops analyzed.
	Workers int
	// NewOrchestrator mints one Orchestrator per worker. It must return a
	// fresh, independent instance on every call — fresh module instances
	// included, since modules carry lazily built caches of their own. For
	// cross-worker memoization attach one core.SharedCache to every minted
	// config. Per-orchestrator EnableCache, in contrast, makes results
	// depend on which worker analyzed which loop first; leave it off when
	// equivalence with a serial run matters.
	NewOrchestrator func() *core.Orchestrator
	// NewTracer, when non-nil, mints one core.Tracer per worker (worker
	// indices are 0-based and dense) and attaches it to that worker's
	// orchestrator. Tracers are confined to their worker; combine them
	// afterwards in worker-index order (e.g. trace.Merge) for a
	// deterministic stream, mirroring how stats are merged. A nil return
	// leaves that worker untraced. Which loops land in which worker's trace
	// varies run to run — the per-event record does not, per loop.
	NewTracer func(worker int) core.Tracer
}

// NewParallelClient builds a parallel client over c with the given pool
// size and orchestrator factory.
func NewParallelClient(c *Client, workers int, factory func() *core.Orchestrator) *ParallelClient {
	return &ParallelClient{Client: c, Workers: workers, NewOrchestrator: factory}
}

// AnalyzeLoops builds the PDG of every loop, returning results in input
// order plus the workers' orchestration stats merged in worker-index
// order. Loops are handed out dynamically, so wall-clock time tracks the
// largest loop rather than the unluckiest static partition.
func (pc *ParallelClient) AnalyzeLoops(loops []*cfg.Loop) ([]*LoopResult, *core.Stats) {
	results := make([]*LoopResult, len(loops))
	merged := &core.Stats{}
	if len(loops) == 0 {
		return results, merged
	}
	workers := pc.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(loops) {
		workers = len(loops)
	}
	if workers == 1 {
		o := pc.NewOrchestrator()
		if pc.NewTracer != nil {
			o.SetTracer(pc.NewTracer(0))
		}
		for i, l := range loops {
			results[i] = pc.Client.ResolveLoop(o, l)
		}
		merged.Merge(o.Stats())
		return results, merged
	}

	stats := make([]*core.Stats, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		// Tracers are minted here, not in the goroutine, so NewTracer is
		// called serially and in worker order.
		var tr core.Tracer
		if pc.NewTracer != nil {
			tr = pc.NewTracer(w)
		}
		wg.Add(1)
		go func(w int, tr core.Tracer) {
			defer wg.Done()
			o := pc.NewOrchestrator()
			o.SetTracer(tr)
			stats[w] = o.Stats()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(loops) {
					return
				}
				results[i] = pc.Client.ResolveLoop(o, loops[i])
			}
		}(w, tr)
	}
	wg.Wait()
	for _, st := range stats {
		merged.Merge(st)
	}
	return results, merged
}
