// Equivalence suite for parallel PDG construction: for every benchmark
// program and every join/bailout/routing configuration, the parallel
// client must produce bit-identical per-query results and consistent
// merged stats compared to the serial client. The package is pdg_test (not
// pdg) so it can drive the real benchmark programs from internal/bench,
// which itself imports pdg.
package pdg_test

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"scaf"
	"scaf/internal/bench"
	"scaf/internal/cfg"
	"scaf/internal/core"
	"scaf/internal/pdg"
	"scaf/internal/profile"
)

// equivalenceWorkers is the pool size the suite exercises; the acceptance
// bar is ≥ 4.
const equivalenceWorkers = 8

var (
	suiteOnce  sync.Once
	suiteBench []*bench.Benchmark
	suiteErr   error
)

// loadEquivalenceSuite loads the benchmark set once per test binary: the
// full 16-program suite normally, a representative subset under the race
// detector or -short (profiling runs dominate otherwise).
func loadEquivalenceSuite(t *testing.T) []*bench.Benchmark {
	t.Helper()
	suiteOnce.Do(func() {
		names := bench.Names()
		if raceEnabled {
			names = []string{"129.compress", "181.mcf", "183.equake", "525.x264"}
		}
		if testing.Short() {
			names = []string{"129.compress", "181.mcf"}
		}
		for _, n := range names {
			b, err := bench.Load(n)
			if err != nil {
				suiteErr = err
				return
			}
			suiteBench = append(suiteBench, b)
		}
	})
	if suiteErr != nil {
		t.Fatalf("load suite: %v", suiteErr)
	}
	return suiteBench
}

// orchConfig is one point of the JoinPolicy × BailoutPolicy × Routing grid.
type orchConfig struct {
	name    string
	join    core.JoinPolicy
	bailout core.BailoutPolicy
	routing core.Routing
}

func allConfigs() []orchConfig {
	joins := []struct {
		n string
		j core.JoinPolicy
	}{{"cheapest", core.JoinCheapest}, {"all", core.JoinAll}}
	bails := []struct {
		n string
		b core.BailoutPolicy
	}{
		{"affordable", core.BailDefiniteAffordable},
		{"free", core.BailDefiniteFree},
		{"exhaustive", core.BailExhaustive},
	}
	routes := []struct {
		n string
		r core.Routing
	}{{"collab", core.RouteCollaborative}, {"isolated", core.RouteIsolated}}
	var out []orchConfig
	for _, j := range joins {
		for _, b := range bails {
			for _, r := range routes {
				out = append(out, orchConfig{
					name:    fmt.Sprintf("join=%s/bail=%s/route=%s", j.n, b.n, r.n),
					join:    j.j,
					bailout: b.b,
					routing: r.r,
				})
			}
		}
	}
	return out
}

func (c orchConfig) opts(extra ...scaf.OrchOption) []scaf.OrchOption {
	return append([]scaf.OrchOption{
		scaf.WithJoin(c.join),
		scaf.WithBailout(c.bailout),
		scaf.WithRouting(c.routing),
	}, extra...)
}

// analyzeSerial resolves every hot loop through one orchestrator, exactly
// as internal/bench does, returning per-loop results and the stats.
func analyzeSerial(b *bench.Benchmark, opts []scaf.OrchOption) ([]*pdg.LoopResult, *core.Stats) {
	client := b.Sys.Client()
	o := b.Sys.Orchestrator(scaf.SchemeSCAF, opts...)
	var out []*pdg.LoopResult
	for _, l := range b.Hot {
		out = append(out, client.ResolveLoop(o, l))
	}
	return out, o.Stats()
}

// analyzeCold resolves every hot loop on its own fresh orchestrator — the
// maximally cold configuration, and the upper bound on work any parallel
// partition can do.
func analyzeCold(b *bench.Benchmark, opts []scaf.OrchOption) ([]*pdg.LoopResult, *core.Stats) {
	client := b.Sys.Client()
	merged := &core.Stats{}
	var out []*pdg.LoopResult
	for _, l := range b.Hot {
		o := b.Sys.Orchestrator(scaf.SchemeSCAF, opts...)
		out = append(out, client.ResolveLoop(o, l))
		merged.Merge(o.Stats())
	}
	return out, merged
}

// requireEqualResults asserts two result sets are identical, comparing the
// ByKey maps field-by-field so a divergence names the offending query.
func requireEqualResults(t *testing.T, label string, serial, parallel []*pdg.LoopResult) {
	t.Helper()
	if len(serial) != len(parallel) {
		t.Fatalf("%s: %d serial results vs %d parallel", label, len(serial), len(parallel))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Loop != p.Loop {
			t.Fatalf("%s: loop %d reordered: %s vs %s", label, i, s.Loop.Name(), p.Loop.Name())
		}
		sk, pk := s.ByKey(), p.ByKey()
		if len(sk) != len(pk) {
			t.Fatalf("%s %s: %d serial queries vs %d parallel", label, s.Loop.Name(), len(sk), len(pk))
		}
		for k, sq := range sk {
			pq, ok := pk[k]
			if !ok {
				t.Fatalf("%s %s: parallel run missing query %s -> %s (%s)",
					label, s.Loop.Name(), k.I1, k.I2, k.Rel)
			}
			if sq.NoDep != pq.NoDep {
				t.Errorf("%s %s: NoDep diverges for %s -> %s (%s): serial=%v parallel=%v",
					label, s.Loop.Name(), k.I1, k.I2, k.Rel, sq.NoDep, pq.NoDep)
			}
			if sq.Cost != pq.Cost {
				t.Errorf("%s %s: Cost diverges for %s -> %s (%s): serial=%v parallel=%v",
					label, s.Loop.Name(), k.I1, k.I2, k.Rel, sq.Cost, pq.Cost)
			}
			if sq.Resp.Result != pq.Resp.Result {
				t.Errorf("%s %s: Result diverges for %s -> %s (%s): serial=%s parallel=%s",
					label, s.Loop.Name(), k.I1, k.I2, k.Rel, sq.Resp.Result, pq.Resp.Result)
			}
		}
		// Belt and braces: the full structures (options, assertions,
		// contributors, query order) must match too.
		if !reflect.DeepEqual(s, p) {
			t.Errorf("%s %s: deep result mismatch beyond per-key fields", label, s.Loop.Name())
		}
	}
}

// TestParallelMatchesSerial is the headline equivalence theorem: over
// every benchmark program and every JoinPolicy × BailoutPolicy × Routing
// configuration, an 8-worker parallel run is bit-identical to the serial
// client, and the merged worker stats agree with the serial counters.
func TestParallelMatchesSerial(t *testing.T) {
	bs := loadEquivalenceSuite(t)
	for _, cfgc := range allConfigs() {
		cfgc := cfgc
		t.Run(cfgc.name, func(t *testing.T) {
			for _, b := range bs {
				serialRes, serialStats := analyzeSerial(b, cfgc.opts())
				coldRes, coldStats := analyzeCold(b, cfgc.opts())
				pc := b.Sys.ParallelClient(equivalenceWorkers, scaf.SchemeSCAF, cfgc.opts()...)
				parRes, parStats := pc.AnalyzeLoops(b.Hot)

				requireEqualResults(t, b.Name+" (parallel)", serialRes, parRes)
				requireEqualResults(t, b.Name+" (cold)", serialRes, coldRes)

				// TopQueries is driven by the client and exact. The
				// premise/eval/conflict counters depend on module-internal
				// warmth (one serial orchestrator shares modules' lazy
				// state across all loops; each worker only across its
				// share), so the merged parallel counters must land
				// between the warm serial run and the maximally cold
				// one-orchestrator-per-loop run.
				if parStats.TopQueries != serialStats.TopQueries {
					t.Errorf("%s: top queries %d, serial %d", b.Name, parStats.TopQueries, serialStats.TopQueries)
				}
				sandwich := func(what string, lo, got, hi int64) {
					if got < lo || got > hi {
						t.Errorf("%s: %s = %d outside [serial %d, cold %d]", b.Name, what, got, lo, hi)
					}
				}
				sandwich("premise queries", serialStats.PremiseQueries, parStats.PremiseQueries, coldStats.PremiseQueries)
				sandwich("module evals", serialStats.ModuleEvals, parStats.ModuleEvals, coldStats.ModuleEvals)
				sandwich("conflicts", min64(serialStats.Conflicts, coldStats.Conflicts),
					parStats.Conflicts, max64(serialStats.Conflicts, coldStats.Conflicts))
				// CacheHits counts batch-scoped memo hits inside each
				// ResolveLoop and is expected; cross-loop (shared) hits or
				// timeouts would mean the config isn't what it claims.
				for _, st := range []*core.Stats{serialStats, parStats, coldStats} {
					if st.SharedHits != 0 || st.Timeouts != 0 {
						t.Errorf("%s: unexpected shared-cache/timeout activity: %+v", b.Name, st)
					}
				}
			}
		})
	}
}

// TestParallelSharedCacheMatchesSerial: attaching a SharedCache to the
// workers must not change any result — the publication rule only admits
// canonical entries — while actually getting hits (the cache is not dead
// weight). Stats like ModuleEvals legitimately drop on hits, so only
// results and TopQueries are compared.
func TestParallelSharedCacheMatchesSerial(t *testing.T) {
	bs := loadEquivalenceSuite(t)
	for _, cfgc := range []orchConfig{
		{name: "default", join: core.JoinCheapest, bailout: core.BailDefiniteAffordable, routing: core.RouteCollaborative},
		{name: "isolated", join: core.JoinCheapest, bailout: core.BailDefiniteAffordable, routing: core.RouteIsolated},
	} {
		cfgc := cfgc
		t.Run(cfgc.name, func(t *testing.T) {
			var hits int64
			for _, b := range bs {
				serialRes, serialStats := analyzeSerial(b, cfgc.opts())
				shared := core.NewSharedCache()
				pc := b.Sys.ParallelClient(equivalenceWorkers, scaf.SchemeSCAF,
					cfgc.opts(scaf.WithSharedCache(shared))...)
				// Two passes over the same loops: the second is guaranteed
				// to be served from the cache.
				pc.AnalyzeLoops(b.Hot)
				parRes, parStats := pc.AnalyzeLoops(b.Hot)
				requireEqualResults(t, b.Name, serialRes, parRes)
				if parStats.TopQueries != serialStats.TopQueries {
					t.Errorf("%s: top queries %d vs serial %d", b.Name, parStats.TopQueries, serialStats.TopQueries)
				}
				hits += parStats.SharedHits
			}
			if hits == 0 {
				t.Error("shared cache never hit across the whole suite")
			}
		})
	}
}

// stressSource has several independent small loops so a high worker count
// genuinely interleaves, with cross-loop repetition of the same global
// accesses to give a shared cache something to race on.
const stressSource = `
int a[32];
int b[32];
int acc;
void main() {
    for (int i0 = 0; i0 < 40; i0++) { a[i0 % 32] = a[i0 % 32] + 1; }
    for (int i1 = 0; i1 < 40; i1++) { b[i1 % 32] = b[i1 % 32] + 2; }
    for (int i2 = 0; i2 < 40; i2++) { acc = acc + a[i2 % 32]; }
    for (int i3 = 0; i3 < 40; i3++) { acc = acc + b[i3 % 32]; }
    for (int i4 = 0; i4 < 40; i4++) { a[i4 % 32] = b[i4 % 32]; }
    for (int i5 = 0; i5 < 40; i5++) { b[i5 % 32] = a[i5 % 32] + acc; }
    for (int i6 = 0; i6 < 40; i6++) { acc = acc + a[i6 % 32] + b[i6 % 32]; }
    for (int i7 = 0; i7 < 40; i7++) { a[i7 % 32] = a[i7 % 32] + b[i7 % 32]; }
    print(acc);
}`

// TestParallelStressDeterminism floods a 16-worker pool with many small
// loops, repeatedly, with the shared cache both off and on, and fails
// loudly on any divergence from the serial baseline — under -race this
// doubles as the data-race net for the whole parallel path.
func TestParallelStressDeterminism(t *testing.T) {
	sys, err := scaf.Load("stress", stressSource, scaf.Options{
		HotLoops: &profile.HotLoopParams{MinWeightFrac: 0.001, MinAvgIters: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	loops := sys.HotLoops()
	if len(loops) < 8 {
		t.Fatalf("stress program has %d hot loops, want ≥ 8", len(loops))
	}
	client := sys.Client()
	o := sys.Orchestrator(scaf.SchemeSCAF)
	var baseline []*pdg.LoopResult
	for _, l := range loops {
		baseline = append(baseline, client.AnalyzeLoop(o, l))
	}

	const workers, rounds = 16, 4
	for _, sharedOn := range []bool{false, true} {
		name := "cache=off"
		var opts []scaf.OrchOption
		if sharedOn {
			name = "cache=on"
			opts = append(opts, scaf.WithSharedCache(core.NewSharedCache()))
		}
		t.Run(name, func(t *testing.T) {
			pc := sys.ParallelClient(workers, scaf.SchemeSCAF, opts...)
			for round := 0; round < rounds; round++ {
				res, stats := pc.AnalyzeLoops(loops)
				requireEqualResults(t, fmt.Sprintf("round %d", round), baseline, res)
				if want := int64(len(allQueries(baseline))); stats.TopQueries != want {
					t.Errorf("round %d: top queries %d, want %d", round, stats.TopQueries, want)
				}
			}
		})
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func allQueries(rs []*pdg.LoopResult) []pdg.Query {
	var out []pdg.Query
	for _, r := range rs {
		out = append(out, r.Queries...)
	}
	return out
}

// TestParallelClientEdgeCases covers the degenerate pool shapes: zero
// loops, one worker, and more workers than loops.
func TestParallelClientEdgeCases(t *testing.T) {
	sys, err := scaf.Load("edge", `
int a;
void main() {
    for (int i = 0; i < 60; i++) { a = a + i; }
    print(a);
}`, scaf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	loops := sys.HotLoops()
	if len(loops) != 1 {
		t.Fatalf("hot loops = %d", len(loops))
	}
	serial, serialStats := analyzeSerialSys(sys, loops)

	for _, workers := range []int{0, 1, 4, 64} {
		pc := sys.ParallelClient(workers, scaf.SchemeSCAF)
		res, stats := pc.AnalyzeLoops(loops)
		requireEqualResults(t, fmt.Sprintf("workers=%d", workers), serial, res)
		if stats.TopQueries != serialStats.TopQueries {
			t.Errorf("workers=%d: top queries %d vs %d", workers, stats.TopQueries, serialStats.TopQueries)
		}
	}

	pc := sys.ParallelClient(4, scaf.SchemeSCAF)
	res, stats := pc.AnalyzeLoops(nil)
	if len(res) != 0 || stats.TopQueries != 0 {
		t.Errorf("empty loop set: res=%d topqueries=%d", len(res), stats.TopQueries)
	}
}

func analyzeSerialSys(sys *scaf.System, loops []*cfg.Loop) ([]*pdg.LoopResult, *core.Stats) {
	client := sys.Client()
	o := sys.Orchestrator(scaf.SchemeSCAF)
	var out []*pdg.LoopResult
	for _, l := range loops {
		out = append(out, client.AnalyzeLoop(o, l))
	}
	return out, o.Stats()
}
