package pdg_test

import (
	"reflect"
	"testing"

	"scaf"
	"scaf/internal/bench"
	"scaf/internal/cfg"
	"scaf/internal/core"
	"scaf/internal/pdg"
)

// orderModule is a minimal core.Module whose mod-ref behavior is scripted
// per query; it issues no premises and answers alias queries
// conservatively.
type orderModule struct {
	name   string
	modref func(q *core.ModRefQuery) core.ModRefResponse
}

func (m *orderModule) Name() string          { return m.name }
func (m *orderModule) Kind() core.ModuleKind { return core.MemoryAnalysis }
func (m *orderModule) Alias(q *core.AliasQuery, h core.Handle) core.AliasResponse {
	return core.MayAliasResponse()
}
func (m *orderModule) ModRef(q *core.ModRefQuery, h core.Handle) core.ModRefResponse {
	return m.modref(q)
}

// orderFixture loads a benchmark with at least two hot loops and returns
// it plus the loop the scripted modules key their competence on — the one
// with the fewest queries, so a module competent only there is the
// minority answerer and demoting it is the profitable move.
func orderFixture(t *testing.T) (*bench.Benchmark, *cfg.Loop) {
	t.Helper()
	b, err := bench.Load("181.mcf")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(b.Hot) < 2 {
		t.Fatalf("need ≥2 hot loops, got %d", len(b.Hot))
	}
	// The query set per loop is fixed by the PDG builder, independent of
	// what the modules answer; one conservative pass counts it.
	client := b.Sys.Client()
	o := core.NewOrchestrator(core.Config{Modules: []core.Module{
		&orderModule{name: "probe", modref: func(q *core.ModRefQuery) core.ModRefResponse {
			return core.ModRefConservative()
		}},
	}})
	var target *cfg.Loop
	targetN, total := 0, 0
	for _, l := range b.Hot {
		n := len(client.ResolveLoop(o, l).Queries)
		total += n
		if n > 0 && (target == nil || n < targetN) {
			target, targetN = l, n
		}
	}
	restN := total - targetN
	if target == nil || restN <= targetN {
		t.Fatalf("fixture defect: target loop has %d queries vs %d elsewhere", targetN, restN)
	}
	return b, target
}

// mintFakes returns a LearnOrder mint function over fresh instances of the
// two scripted modules (fresh per mint, as the contract requires).
func mintFakes(build func() []core.Module) func(order []string, tr core.Tracer) *core.Orchestrator {
	return func(order []string, tr core.Tracer) *core.Orchestrator {
		return core.NewOrchestrator(core.Config{
			Modules:     build(),
			Join:        core.JoinCheapest,
			Bailout:     core.BailDefiniteAffordable,
			ModuleOrder: order,
			Tracer:      tr,
		})
	}
}

// TestLearnOrderAdoptsCheaperEquivalentOrder: "narrow" settles only the
// first hot loop's queries, "broad" settles every other loop's — disjoint
// competence, so answers are order-independent, but consulting broad first
// saves one eval on the (more numerous) queries narrow cannot answer.
func TestLearnOrderAdoptsCheaperEquivalentOrder(t *testing.T) {
	b, target := orderFixture(t)
	client := b.Sys.Client()
	build := func() []core.Module {
		narrow := &orderModule{name: "narrow", modref: func(q *core.ModRefQuery) core.ModRefResponse {
			if q.Loop == target {
				return core.ModRefFact(core.NoModRef, "narrow")
			}
			return core.ModRefConservative()
		}}
		broad := &orderModule{name: "broad", modref: func(q *core.ModRefQuery) core.ModRefResponse {
			if q.Loop != target {
				return core.ModRefFact(core.NoModRef, "broad")
			}
			return core.ModRefConservative()
		}}
		return []core.Module{narrow, broad}
	}
	order, ok := pdg.LearnOrder(client, b.Hot, mintFakes(build))
	if !ok {
		t.Fatal("LearnOrder rejected an answer-identical, strictly cheaper order")
	}
	if want := []string{"broad", "narrow"}; !reflect.DeepEqual(order, want) {
		t.Fatalf("learned order = %v, want %v", order, want)
	}
}

// TestLearnOrderRejectsAnswerChangingOrder: "costly" settles everything
// with a cost-5 assertion, "free" settles everything for free. Under the
// fixed schedule costly answers first, so every query carries cost 5;
// consulting free first would change those costs — the learner must notice
// the drift during verification and keep the fixed schedule, however many
// evaluations the swap would save.
func TestLearnOrderRejectsAnswerChangingOrder(t *testing.T) {
	b, target := orderFixture(t)
	client := b.Sys.Client()
	build := func() []core.Module {
		costly := &orderModule{name: "costly", modref: func(q *core.ModRefQuery) core.ModRefResponse {
			if q.Loop == target {
				return core.ModRefSpec(core.NoModRef, "costly",
					core.Assertion{Module: "costly", Kind: "check", Cost: 5})
			}
			return core.ModRefConservative()
		}}
		free := &orderModule{name: "free", modref: func(q *core.ModRefQuery) core.ModRefResponse {
			return core.ModRefFact(core.NoModRef, "free")
		}}
		return []core.Module{costly, free}
	}
	// Sanity: the candidate really does differ (free settles every consult,
	// costly only the target loop's), so the rejection below exercises the
	// verification gate, not the candidate==fixed fast path.
	prof := core.NewOrderProfile()
	po := mintFakes(build)(nil, prof)
	for _, l := range b.Hot {
		client.ResolveLoop(po, l)
	}
	if cand := prof.Candidate(po.Modules()); reflect.DeepEqual(cand, core.ModuleNames(po.Modules())) {
		t.Fatalf("fixture defect: candidate %v equals the fixed schedule", cand)
	}
	if order, ok := pdg.LearnOrder(client, b.Hot, mintFakes(build)); ok {
		t.Fatalf("LearnOrder adopted %v, which changes per-query validation costs", order)
	}
}

// TestLearnOrderKeepsFixedScheduleWhenAlreadyOptimal: one module settles
// everything, the other nothing — the profile's candidate is the fixed
// schedule itself and learning must decline without a verification pass.
func TestLearnOrderKeepsFixedScheduleWhenAlreadyOptimal(t *testing.T) {
	b, _ := orderFixture(t)
	client := b.Sys.Client()
	build := func() []core.Module {
		all := &orderModule{name: "all", modref: func(q *core.ModRefQuery) core.ModRefResponse {
			return core.ModRefFact(core.NoModRef, "all")
		}}
		none := &orderModule{name: "none", modref: func(q *core.ModRefQuery) core.ModRefResponse {
			return core.ModRefConservative()
		}}
		return []core.Module{all, none}
	}
	if order, ok := pdg.LearnOrder(client, b.Hot, mintFakes(build)); ok {
		t.Fatalf("LearnOrder adopted %v with nothing to improve", order)
	}
}

// TestLearnModuleOrderEndToEnd exercises the scaf-level wrapper on the
// real ensemble: when an order is adopted, re-analyzing under it must be
// answer-identical with strictly fewer module evaluations.
func TestLearnModuleOrderEndToEnd(t *testing.T) {
	b, _ := orderFixture(t)
	client := b.Sys.Client()
	for _, scheme := range []scaf.Scheme{scaf.SchemeCAF, scaf.SchemeSCAF} {
		order, ok := b.Sys.LearnModuleOrder(scheme)
		if !ok {
			// Adoption is not guaranteed in general — but on this fixture the
			// learned order is known to win; regressing to non-adoption means
			// the learner or verifier broke.
			t.Errorf("%s: no order adopted on 181.mcf", scheme)
			continue
		}
		of := b.Sys.Orchestrator(scheme)
		ol := b.Sys.Orchestrator(scheme, scaf.WithModuleOrder(order))
		var fixedRes, learnedRes []*pdg.LoopResult
		for _, l := range b.Hot {
			fixedRes = append(fixedRes, client.ResolveLoop(of, l))
			learnedRes = append(learnedRes, client.ResolveLoop(ol, l))
		}
		if !pdg.EqualAnswers(fixedRes, learnedRes) {
			t.Errorf("%s: adopted order changes answers", scheme)
		}
		if lf, le := of.Stats().ModuleEvals, ol.Stats().ModuleEvals; le >= lf {
			t.Errorf("%s: learned order evals %d not below fixed %d", scheme, le, lf)
		}
	}
}
