package lang

import (
	"fmt"

	"scaf/internal/ir"
)

// Checker performs semantic analysis: it resolves types and symbols,
// enforces MC's typing rules, inserts implicit numeric casts, and
// annotates the AST for lowering.
type Checker struct {
	file    *File
	structs map[string]*ir.StructType
	filled  map[string]bool
	globals map[string]*Symbol
	funcs   map[string]*FuncDecl
	scopes  []map[string]*Symbol
	curFn   *FuncDecl
	loops   int
}

// Check runs semantic analysis over the file.
func Check(f *File) error {
	c := &Checker{
		file:    f,
		structs: map[string]*ir.StructType{},
		filled:  map[string]bool{},
		globals: map[string]*Symbol{},
		funcs:   map[string]*FuncDecl{},
	}
	return c.run()
}

func errAt(line int, format string, args ...interface{}) error {
	return fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...))
}

func (c *Checker) run() error {
	// Pass 1: struct shells.
	for _, sd := range c.file.Structs {
		if c.structs[sd.Name] != nil {
			return errAt(sd.Line, "duplicate struct %s", sd.Name)
		}
		sd.Ty = &ir.StructType{TypeName: sd.Name}
		c.structs[sd.Name] = sd.Ty
	}
	// Pass 2: fill fields in declaration order.
	for _, sd := range c.file.Structs {
		off := int64(0)
		for _, fd := range sd.Fields {
			ft, err := c.resolveType(fd.TE, false)
			if err != nil {
				return err
			}
			if st, ok := ft.(*ir.StructType); ok && !c.filled[st.TypeName] {
				return errAt(fd.Line, "struct %s embeds struct %s before its definition (use a pointer for recursive types)", sd.Name, st.TypeName)
			}
			fd.Ty = ft
			sd.Ty.Fields = append(sd.Ty.Fields, ir.Field{Name: fd.Name, Ty: ft, Offset: off})
			sz := ft.Size()
			if sz == 0 {
				sz = 8
			}
			off += (sz + 7) &^ 7
		}
		c.filled[sd.Name] = true
	}
	// Pass 3: globals.
	for _, g := range c.file.Globals {
		t, err := c.resolveType(g.TE, false)
		if err != nil {
			return err
		}
		if c.globals[g.Name] != nil {
			return errAt(g.Line, "duplicate global %s", g.Name)
		}
		g.Ty = t
		g.Sym = &Symbol{Name: g.Name, Kind: SymGlobal, Ty: t}
		c.globals[g.Name] = g.Sym
	}
	// Pass 4: function signatures.
	for _, fd := range c.file.Funcs {
		if c.funcs[fd.Name] != nil {
			return errAt(fd.Line, "duplicate function %s", fd.Name)
		}
		if isBuiltinName(fd.Name) {
			return errAt(fd.Line, "function name %s shadows a builtin", fd.Name)
		}
		rt, err := c.resolveType(fd.Ret, true)
		if err != nil {
			return err
		}
		fd.RetTy = rt
		for _, p := range fd.Params {
			pt, err := c.resolveType(p.TE, false)
			if err != nil {
				return err
			}
			if len(p.TE.ArrayLens) > 0 {
				return errAt(p.Line, "array parameters are not supported; pass a pointer")
			}
			if _, ok := pt.(*ir.StructType); ok {
				return errAt(p.Line, "struct parameters must be pointers")
			}
			p.Ty = pt
		}
		fd.Sym = &Symbol{Name: fd.Name, Kind: SymFunc, Fn: fd}
		c.funcs[fd.Name] = fd
	}
	// Pass 5: bodies.
	for _, fd := range c.file.Funcs {
		if err := c.checkFunc(fd); err != nil {
			return err
		}
	}
	return nil
}

func isBuiltinName(n string) bool {
	switch n {
	case "malloc", "free", "print", "sqrt", "fabs":
		return true
	}
	return false
}

func (c *Checker) resolveType(te *TypeExpr, allowVoid bool) (ir.Type, error) {
	var t ir.Type
	switch te.Base {
	case KWInt:
		t = ir.Int
	case KWFloat:
		t = ir.Float
	case KWVoid:
		t = ir.Void
	case KWStruct:
		st := c.structs[te.StructName]
		if st == nil {
			return nil, errAt(te.Line, "unknown struct %s", te.StructName)
		}
		t = st
	default:
		return nil, errAt(te.Line, "bad type")
	}
	for i := 0; i < te.Stars; i++ {
		t = ir.PointerTo(t)
	}
	if ir.Equal(t, ir.Void) && (!allowVoid || len(te.ArrayLens) > 0) {
		return nil, errAt(te.Line, "void is only valid as a return type")
	}
	for i := len(te.ArrayLens) - 1; i >= 0; i-- {
		if te.ArrayLens[i] <= 0 {
			return nil, errAt(te.Line, "array length must be positive")
		}
		t = ir.ArrayOf(t, te.ArrayLens[i])
	}
	return t, nil
}

func (c *Checker) pushScope() { c.scopes = append(c.scopes, map[string]*Symbol{}) }
func (c *Checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *Checker) declare(line int, sym *Symbol) error {
	top := c.scopes[len(c.scopes)-1]
	if top[sym.Name] != nil {
		return errAt(line, "duplicate declaration of %s", sym.Name)
	}
	top[sym.Name] = sym
	return nil
}

func (c *Checker) lookup(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s := c.scopes[i][name]; s != nil {
			return s
		}
	}
	if s := c.globals[name]; s != nil {
		return s
	}
	if fd := c.funcs[name]; fd != nil {
		return fd.Sym
	}
	return nil
}

func (c *Checker) checkFunc(fd *FuncDecl) error {
	c.curFn = fd
	c.pushScope()
	defer c.popScope()
	for _, p := range fd.Params {
		p.Sym = &Symbol{Name: p.Name, Kind: SymParam, Ty: p.Ty}
		if err := c.declare(p.Line, p.Sym); err != nil {
			return err
		}
	}
	return c.checkBlock(fd.Body)
}

func (c *Checker) checkBlock(b *BlockStmt) error {
	c.pushScope()
	defer c.popScope()
	for _, s := range b.Stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *Checker) checkStmt(s Stmt) error {
	switch st := s.(type) {
	case *BlockStmt:
		return c.checkBlock(st)
	case *DeclStmt:
		return c.checkDecl(st.Decl)
	case *ExprStmt:
		_, err := c.checkExpr(st.X)
		return err
	case *IfStmt:
		if err := c.checkCond(st.Cond); err != nil {
			return err
		}
		if err := c.checkStmt(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			return c.checkStmt(st.Else)
		}
		return nil
	case *WhileStmt:
		if err := c.checkCond(st.Cond); err != nil {
			return err
		}
		c.loops++
		defer func() { c.loops-- }()
		return c.checkStmt(st.Body)
	case *ForStmt:
		c.pushScope()
		defer c.popScope()
		if st.Init != nil {
			if err := c.checkStmt(st.Init); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			if err := c.checkCond(st.Cond); err != nil {
				return err
			}
		}
		if st.Post != nil {
			if _, err := c.checkExpr(st.Post); err != nil {
				return err
			}
		}
		c.loops++
		defer func() { c.loops-- }()
		return c.checkStmt(st.Body)
	case *ReturnStmt:
		if st.X == nil {
			if !ir.Equal(c.curFn.RetTy, ir.Void) {
				return errAt(st.Line, "missing return value in %s", c.curFn.Name)
			}
			return nil
		}
		if ir.Equal(c.curFn.RetTy, ir.Void) {
			return errAt(st.Line, "void function %s returns a value", c.curFn.Name)
		}
		t, err := c.checkExpr(st.X)
		if err != nil {
			return err
		}
		conv, err := c.convert(st.X, t, c.curFn.RetTy)
		if err != nil {
			return errAt(st.Line, "cannot return %s from %s returning %s", t, c.curFn.Name, c.curFn.RetTy)
		}
		st.X = conv
		return nil
	case *BreakStmt:
		if c.loops == 0 {
			return errAt(st.Line, "break outside loop")
		}
		return nil
	case *ContinueStmt:
		if c.loops == 0 {
			return errAt(st.Line, "continue outside loop")
		}
		return nil
	}
	return fmt.Errorf("unknown statement %T", s)
}

func (c *Checker) checkDecl(d *VarDecl) error {
	t, err := c.resolveType(d.TE, false)
	if err != nil {
		return err
	}
	d.Ty = t
	d.Sym = &Symbol{Name: d.Name, Kind: SymLocal, Ty: t}
	if d.Init != nil {
		it, err := c.checkExpr(d.Init)
		if err != nil {
			return err
		}
		conv, err := c.convert(d.Init, it, t)
		if err != nil {
			return errAt(d.Line, "cannot initialize %s %s with %s", t, d.Name, it)
		}
		d.Init = conv
	}
	return c.declare(d.Line, d.Sym)
}

// checkCond verifies a branch condition: int, or a pointer (tested against
// null by lowering).
func (c *Checker) checkCond(e Expr) error {
	t, err := c.checkExpr(e)
	if err != nil {
		return err
	}
	if ir.Equal(t, ir.Int) || ir.IsPointer(t) {
		return nil
	}
	return errAt(e.Pos(), "condition must be int or pointer, got %s", t)
}

// convert returns e adapted to type want, inserting an implicit numeric
// cast if needed, or an error when the types are incompatible.
func (c *Checker) convert(e Expr, have, want ir.Type) (Expr, error) {
	if ir.Equal(have, want) {
		return e, nil
	}
	if ir.Equal(have, ir.Int) && ir.Equal(want, ir.Float) {
		return &CastExpr{exprBase: exprBase{Line: e.Pos(), Ty: ir.Float}, To: KWFloat, X: e}, nil
	}
	if ir.Equal(have, ir.Float) && ir.Equal(want, ir.Int) {
		return &CastExpr{exprBase: exprBase{Line: e.Pos(), Ty: ir.Int}, To: KWInt, X: e}, nil
	}
	// Literal 0 converts to any pointer type (null).
	if lit, ok := e.(*IntLit); ok && lit.V == 0 && ir.IsPointer(want) {
		lit.Ty = want
		return lit, nil
	}
	return nil, fmt.Errorf("type mismatch %s vs %s", have, want)
}

func isLvalue(e Expr) bool {
	switch x := e.(type) {
	case *Ident:
		return x.Sym != nil && x.Sym.Kind != SymFunc && !x.Decayed
	case *Index:
		return !x.Decayed
	case *Member:
		return !x.Decayed
	case *Unary:
		return x.Op == STAR
	}
	return false
}

// decay rewrites array-typed results to pointers to their first element.
func decay(t ir.Type, setFlag func()) ir.Type {
	if at, ok := t.(*ir.ArrayType); ok {
		setFlag()
		return ir.PointerTo(at.Elem)
	}
	return t
}

func (c *Checker) checkExpr(e Expr) (ir.Type, error) {
	switch x := e.(type) {
	case *IntLit:
		x.Ty = ir.Int
		return x.Ty, nil
	case *FloatLit:
		x.Ty = ir.Float
		return x.Ty, nil
	case *Ident:
		sym := c.lookup(x.Name)
		if sym == nil {
			return nil, errAt(x.Line, "undefined: %s", x.Name)
		}
		if sym.Kind == SymFunc {
			return nil, errAt(x.Line, "function %s used as value", x.Name)
		}
		x.Sym = sym
		x.Ty = decay(sym.Ty, func() { x.Decayed = true })
		return x.Ty, nil
	case *Unary:
		return c.checkUnary(x)
	case *Binary:
		return c.checkBinary(x)
	case *Assign:
		return c.checkAssign(x)
	case *CastExpr:
		t, err := c.checkExpr(x.X)
		if err != nil {
			return nil, err
		}
		if !ir.Equal(t, ir.Int) && !ir.Equal(t, ir.Float) {
			return nil, errAt(x.Line, "cannot cast %s", t)
		}
		if x.To == KWInt {
			x.Ty = ir.Int
		} else {
			x.Ty = ir.Float
		}
		return x.Ty, nil
	case *Call:
		return c.checkCall(x)
	case *Index:
		bt, err := c.checkExpr(x.X)
		if err != nil {
			return nil, err
		}
		pt, ok := bt.(*ir.PtrType)
		if !ok {
			return nil, errAt(x.Line, "indexing non-pointer %s", bt)
		}
		it, err := c.checkExpr(x.Idx)
		if err != nil {
			return nil, err
		}
		if !ir.Equal(it, ir.Int) {
			return nil, errAt(x.Line, "index must be int, got %s", it)
		}
		x.Ty = decay(pt.Elem, func() { x.Decayed = true })
		return x.Ty, nil
	case *Member:
		return c.checkMember(x)
	}
	return nil, fmt.Errorf("unknown expression %T", e)
}

func (c *Checker) checkUnary(x *Unary) (ir.Type, error) {
	if x.Op == AMP {
		// Address-of: operand must be an lvalue; mark symbols address-taken.
		t, err := c.checkExpr(x.X)
		if err != nil {
			return nil, err
		}
		if !isLvalue(x.X) {
			return nil, errAt(x.Line, "cannot take address of non-lvalue")
		}
		if id, ok := x.X.(*Ident); ok {
			id.Sym.AddrTaken = true
		}
		x.Ty = ir.PointerTo(t)
		return x.Ty, nil
	}
	t, err := c.checkExpr(x.X)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case MINUS:
		if !ir.Equal(t, ir.Int) && !ir.Equal(t, ir.Float) {
			return nil, errAt(x.Line, "unary - on %s", t)
		}
		x.Ty = t
	case NOT:
		if !ir.Equal(t, ir.Int) && !ir.IsPointer(t) {
			return nil, errAt(x.Line, "! on %s", t)
		}
		x.Ty = ir.Int
	case STAR:
		pt, ok := t.(*ir.PtrType)
		if !ok {
			return nil, errAt(x.Line, "dereference of non-pointer %s", t)
		}
		x.Ty = decay(pt.Elem, func() {})
		if _, isArr := pt.Elem.(*ir.ArrayType); isArr {
			// *p where p points to an array: yields the decayed pointer.
			x.Ty = ir.PointerTo(pt.Elem.(*ir.ArrayType).Elem)
		}
	default:
		return nil, errAt(x.Line, "bad unary operator")
	}
	return x.Ty, nil
}

func (c *Checker) checkBinary(x *Binary) (ir.Type, error) {
	xt, err := c.checkExpr(x.X)
	if err != nil {
		return nil, err
	}
	yt, err := c.checkExpr(x.Y)
	if err != nil {
		return nil, err
	}
	isNum := func(t ir.Type) bool { return ir.Equal(t, ir.Int) || ir.Equal(t, ir.Float) }

	switch x.Op {
	case ANDAND, OROR:
		for _, t := range []ir.Type{xt, yt} {
			if !ir.Equal(t, ir.Int) && !ir.IsPointer(t) {
				return nil, errAt(x.Line, "%s on %s", x.Op, t)
			}
		}
		x.Ty = ir.Int
		return x.Ty, nil
	case PERCENT, AMP, PIPE, CARET, SHL, SHR:
		if !ir.Equal(xt, ir.Int) || !ir.Equal(yt, ir.Int) {
			return nil, errAt(x.Line, "%s requires ints, got %s and %s", x.Op, xt, yt)
		}
		x.Ty = ir.Int
		return x.Ty, nil
	case PLUS, MINUS:
		// Pointer arithmetic.
		if ir.IsPointer(xt) && ir.Equal(yt, ir.Int) {
			x.Ty = xt
			return x.Ty, nil
		}
		if x.Op == PLUS && ir.Equal(xt, ir.Int) && ir.IsPointer(yt) {
			x.Ty = yt
			return x.Ty, nil
		}
		fallthrough
	case STAR, SLASH:
		if !isNum(xt) || !isNum(yt) {
			return nil, errAt(x.Line, "%s on %s and %s", x.Op, xt, yt)
		}
		if ir.Equal(xt, ir.Float) || ir.Equal(yt, ir.Float) {
			x.X, _ = c.convert(x.X, xt, ir.Float)
			x.Y, _ = c.convert(x.Y, yt, ir.Float)
			x.Ty = ir.Float
		} else {
			x.Ty = ir.Int
		}
		return x.Ty, nil
	case EQ, NE, LT, LE, GT, GE:
		if ir.IsPointer(xt) || ir.IsPointer(yt) {
			// Pointer comparisons: same pointer type, or against literal 0.
			if ir.IsPointer(xt) && ir.IsPointer(yt) && ir.Equal(xt, yt) {
				x.Ty = ir.Int
				return x.Ty, nil
			}
			if ir.IsPointer(xt) {
				if conv, err := c.convert(x.Y, yt, xt); err == nil {
					x.Y = conv
					x.Ty = ir.Int
					return x.Ty, nil
				}
			}
			if ir.IsPointer(yt) {
				if conv, err := c.convert(x.X, xt, yt); err == nil {
					x.X = conv
					x.Ty = ir.Int
					return x.Ty, nil
				}
			}
			return nil, errAt(x.Line, "invalid pointer comparison %s vs %s", xt, yt)
		}
		if !isNum(xt) || !isNum(yt) {
			return nil, errAt(x.Line, "comparison of %s and %s", xt, yt)
		}
		if ir.Equal(xt, ir.Float) || ir.Equal(yt, ir.Float) {
			x.X, _ = c.convert(x.X, xt, ir.Float)
			x.Y, _ = c.convert(x.Y, yt, ir.Float)
		}
		x.Ty = ir.Int
		return x.Ty, nil
	}
	return nil, errAt(x.Line, "bad binary operator")
}

func (c *Checker) checkAssign(x *Assign) (ir.Type, error) {
	lt, err := c.checkExpr(x.LHS)
	if err != nil {
		return nil, err
	}
	if !isLvalue(x.LHS) {
		return nil, errAt(x.Line, "assignment to non-lvalue")
	}
	if _, isStruct := lt.(*ir.StructType); isStruct {
		return nil, errAt(x.Line, "struct assignment is not supported; copy fields")
	}
	rt, err := c.checkExpr(x.RHS)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case ASSIGN:
		conv, err := c.convert(x.RHS, rt, lt)
		if err != nil {
			return nil, errAt(x.Line, "cannot assign %s to %s", rt, lt)
		}
		x.RHS = conv
	case PLUSEQ, MINUSEQ:
		if ir.IsPointer(lt) {
			if !ir.Equal(rt, ir.Int) {
				return nil, errAt(x.Line, "pointer %s needs int offset", x.Op)
			}
			break
		}
		fallthrough
	case STAREQ, SLASHEQ:
		if !ir.Equal(lt, ir.Int) && !ir.Equal(lt, ir.Float) {
			return nil, errAt(x.Line, "%s on %s", x.Op, lt)
		}
		conv, err := c.convert(x.RHS, rt, lt)
		if err != nil {
			return nil, errAt(x.Line, "cannot combine %s with %s", rt, lt)
		}
		x.RHS = conv
	}
	x.Ty = lt
	return x.Ty, nil
}

func (c *Checker) checkCall(x *Call) (ir.Type, error) {
	switch x.Name {
	case "malloc":
		t, err := c.resolveType(x.TypeArg, false)
		if err != nil {
			return nil, err
		}
		nt, err := c.checkExpr(x.Args[0])
		if err != nil {
			return nil, err
		}
		if !ir.Equal(nt, ir.Int) {
			return nil, errAt(x.Line, "malloc count must be int")
		}
		x.Builtin = BuiltinMalloc
		x.Ty = ir.PointerTo(t)
		return x.Ty, nil
	case "free":
		if len(x.Args) != 1 {
			return nil, errAt(x.Line, "free takes one argument")
		}
		t, err := c.checkExpr(x.Args[0])
		if err != nil {
			return nil, err
		}
		if !ir.IsPointer(t) {
			return nil, errAt(x.Line, "free of non-pointer %s", t)
		}
		x.Builtin = BuiltinFree
		x.Ty = ir.Void
		return x.Ty, nil
	case "print":
		if len(x.Args) != 1 {
			return nil, errAt(x.Line, "print takes one argument")
		}
		t, err := c.checkExpr(x.Args[0])
		if err != nil {
			return nil, err
		}
		if !ir.Equal(t, ir.Int) && !ir.Equal(t, ir.Float) {
			return nil, errAt(x.Line, "print of %s", t)
		}
		x.Builtin = BuiltinPrint
		x.Ty = ir.Void
		return x.Ty, nil
	case "sqrt", "fabs":
		if len(x.Args) != 1 {
			return nil, errAt(x.Line, "%s takes one argument", x.Name)
		}
		t, err := c.checkExpr(x.Args[0])
		if err != nil {
			return nil, err
		}
		conv, err := c.convert(x.Args[0], t, ir.Float)
		if err != nil {
			return nil, errAt(x.Line, "%s of %s", x.Name, t)
		}
		x.Args[0] = conv
		if x.Name == "sqrt" {
			x.Builtin = BuiltinSqrt
		} else {
			x.Builtin = BuiltinFabs
		}
		x.Ty = ir.Float
		return x.Ty, nil
	}
	fd := c.funcs[x.Name]
	if fd == nil {
		return nil, errAt(x.Line, "undefined function %s", x.Name)
	}
	if len(x.Args) != len(fd.Params) {
		return nil, errAt(x.Line, "%s takes %d arguments, got %d", x.Name, len(fd.Params), len(x.Args))
	}
	for i, a := range x.Args {
		at, err := c.checkExpr(a)
		if err != nil {
			return nil, err
		}
		conv, err := c.convert(a, at, fd.Params[i].Ty)
		if err != nil {
			return nil, errAt(x.Line, "argument %d of %s: cannot use %s as %s", i+1, x.Name, at, fd.Params[i].Ty)
		}
		x.Args[i] = conv
	}
	x.Fn = fd
	x.Ty = fd.RetTy
	return x.Ty, nil
}

func (c *Checker) checkMember(x *Member) (ir.Type, error) {
	bt, err := c.checkExpr(x.X)
	if err != nil {
		return nil, err
	}
	var st *ir.StructType
	if x.Arrow {
		pt, ok := bt.(*ir.PtrType)
		if !ok {
			return nil, errAt(x.Line, "-> on non-pointer %s", bt)
		}
		st, ok = pt.Elem.(*ir.StructType)
		if !ok {
			return nil, errAt(x.Line, "-> on pointer to non-struct %s", pt.Elem)
		}
	} else {
		var ok bool
		st, ok = bt.(*ir.StructType)
		if !ok {
			return nil, errAt(x.Line, ". on non-struct %s (did you mean ->?)", bt)
		}
		if !isLvalue(x.X) {
			return nil, errAt(x.Line, ". requires an addressable struct")
		}
	}
	idx := st.FieldIndex(x.Name)
	if idx < 0 {
		return nil, errAt(x.Line, "struct %s has no field %s", st.TypeName, x.Name)
	}
	x.StructTy = st
	x.FieldIdx = idx
	x.Ty = decay(st.Fields[idx].Ty, func() { x.Decayed = true })
	return x.Ty, nil
}
