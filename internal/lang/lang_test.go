package lang

import (
	"strings"
	"testing"
	"testing/quick"

	"scaf/internal/ir"
)

func TestLexerTokens(t *testing.T) {
	toks, err := Lex(`int x = 42; float f = 3.5e2; // comment
/* block
comment */ x += f->g[1] && !y || z != 0 << 2 >> 1;`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []Kind
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
	}
	want := []Kind{
		KWInt, IDENT, ASSIGN, INTLIT, SEMI,
		KWFloat, IDENT, ASSIGN, FLOATLIT, SEMI,
		IDENT, PLUSEQ, IDENT, ARROW, IDENT, LBRACK, INTLIT, RBRACK,
		ANDAND, NOT, IDENT, OROR, IDENT, NE, INTLIT, SHL, INTLIT, SHR, INTLIT, SEMI,
		EOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(kinds), len(want), toks)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d = %s, want %s", i, kinds[i], want[i])
		}
	}
}

func TestLexerLiterals(t *testing.T) {
	toks, err := Lex("123 4.5 1e3 2.5e-2 7e+1")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != INTLIT || toks[0].Int != 123 {
		t.Errorf("int literal: %v", toks[0])
	}
	if toks[1].Kind != FLOATLIT || toks[1].Float != 4.5 {
		t.Errorf("float literal: %v", toks[1])
	}
	if toks[2].Kind != FLOATLIT || toks[2].Float != 1000 {
		t.Errorf("exponent literal: %v", toks[2])
	}
	if toks[3].Kind != FLOATLIT || toks[3].Float != 0.025 {
		t.Errorf("negative exponent: %v", toks[3])
	}
	if toks[4].Kind != FLOATLIT || toks[4].Float != 70 {
		t.Errorf("positive exponent: %v", toks[4])
	}
}

func TestLexerLineNumbers(t *testing.T) {
	toks, err := Lex("a\nb\n\nc")
	if err != nil {
		t.Fatal(err)
	}
	wantLines := []int{1, 2, 4}
	for i, w := range wantLines {
		if toks[i].Line != w {
			t.Errorf("token %d line = %d, want %d", i, toks[i].Line, w)
		}
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := Lex("a $ b"); err == nil || !strings.Contains(err.Error(), "unexpected") {
		t.Errorf("bad char: %v", err)
	}
	if _, err := Lex("/* unterminated"); err == nil || !strings.Contains(err.Error(), "unterminated") {
		t.Errorf("unterminated comment: %v", err)
	}
}

func TestLexerNeverPanics(t *testing.T) {
	f := func(s string) bool {
		_, _ = Lex(s)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func parseOK(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse("test", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

func TestParsePrecedence(t *testing.T) {
	f := parseOK(t, `void main() { int x = 1 + 2 * 3; }`)
	decl := f.Funcs[0].Body.Stmts[0].(*DeclStmt).Decl
	add, ok := decl.Init.(*Binary)
	if !ok || add.Op != PLUS {
		t.Fatalf("top is %T, want + binary", decl.Init)
	}
	mul, ok := add.Y.(*Binary)
	if !ok || mul.Op != STAR {
		t.Fatalf("rhs is %T, want * binary", add.Y)
	}
}

func TestParseAssocAndUnary(t *testing.T) {
	f := parseOK(t, `void main() { int x = 10 - 3 - 2; int y = -x; }`)
	d := f.Funcs[0].Body.Stmts[0].(*DeclStmt).Decl
	sub := d.Init.(*Binary)
	// Left associative: (10-3)-2.
	if _, ok := sub.X.(*Binary); !ok {
		t.Error("subtraction must associate left")
	}
	u := f.Funcs[0].Body.Stmts[1].(*DeclStmt).Decl.Init.(*Unary)
	if u.Op != MINUS {
		t.Error("unary minus")
	}
}

func TestParsePostfixChain(t *testing.T) {
	f := parseOK(t, `
struct s { int v; };
void main(struct s* p) { int x = p->v; }`)
	_ = f
	// Arrow chains and index chains.
	f = parseOK(t, `void main(int** m) { int x = m[1][2]; m[0][0] = 3; }`)
	st := f.Funcs[0].Body.Stmts[0].(*DeclStmt).Decl
	idx := st.Init.(*Index)
	if _, ok := idx.X.(*Index); !ok {
		t.Error("nested index")
	}
}

func TestParseIncrementDesugar(t *testing.T) {
	f := parseOK(t, `void main() { int i = 0; i++; i--; }`)
	inc := f.Funcs[0].Body.Stmts[1].(*ExprStmt).X.(*Assign)
	if inc.Op != PLUSEQ {
		t.Errorf("i++ desugars to +=, got %s", inc.Op)
	}
	dec := f.Funcs[0].Body.Stmts[2].(*ExprStmt).X.(*Assign)
	if dec.Op != MINUSEQ {
		t.Errorf("i-- desugars to -=, got %s", dec.Op)
	}
}

func TestParseMallocTypeArg(t *testing.T) {
	f := parseOK(t, `
struct node { int v; };
void main() {
    struct node* p = malloc(struct node, 4);
    int* q = malloc(int, 8);
    float** r = malloc(float*, 2);
    free(p); free(q); free(r);
}`)
	d := f.Funcs[0].Body.Stmts[0].(*DeclStmt).Decl
	call := d.Init.(*Call)
	if call.TypeArg == nil || call.TypeArg.StructName != "node" {
		t.Errorf("malloc type arg: %+v", call.TypeArg)
	}
	r := f.Funcs[0].Body.Stmts[2].(*DeclStmt).Decl.Init.(*Call)
	if r.TypeArg.Stars != 1 || r.TypeArg.Base != KWFloat {
		t.Errorf("malloc pointer type arg: %+v", r.TypeArg)
	}
}

func TestParseDanglingElse(t *testing.T) {
	f := parseOK(t, `void main() { if (1) if (2) print(1); else print(2); }`)
	outer := f.Funcs[0].Body.Stmts[0].(*IfStmt)
	if outer.Else != nil {
		t.Error("else must bind to the inner if")
	}
	inner := outer.Then.(*IfStmt)
	if inner.Else == nil {
		t.Error("inner if lost its else")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`void main() { int x = ; }`,
		`void main() { if 1 {} }`,
		`void main() { for (;;) }`,
		`void main( { }`,
		`int;`,
		`void main() { x[; }`,
		`void main() { return 1 }`,
		`struct s { int a }`,
	}
	for _, src := range bad {
		if _, err := Parse("bad", src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func checkOK(t *testing.T, src string) *File {
	t.Helper()
	f := parseOK(t, src)
	if err := Check(f); err != nil {
		t.Fatalf("check: %v", err)
	}
	return f
}

func TestSemaTypes(t *testing.T) {
	f := checkOK(t, `
struct vec { float x; float y; };
struct vec vs[10];
void main() {
    vs[2].x = 1.5;
    float m = vs[2].x * 2.0;
    int i = (int)m;
    float g = (float)i + 1;
    print(g);
}`)
	sd := f.Structs[0]
	if sd.Ty.Size() != 16 {
		t.Errorf("vec size = %d", sd.Ty.Size())
	}
	g := f.Globals[0]
	if !ir.Equal(g.Ty, ir.ArrayOf(sd.Ty, 10)) {
		t.Errorf("vs type = %s", g.Ty)
	}
}

func TestSemaImplicitConversions(t *testing.T) {
	// int literal in float context, float to int on assignment, int->float
	// promotion in mixed arithmetic.
	checkOK(t, `
void main() {
    float f = 3;
    int i = f;
    float g = i / 2 + 0.5;
    print(g);
}`)
}

func TestSemaRecursiveStructNeedsPointer(t *testing.T) {
	if err := Check(parseOK(t, `
struct bad { int v; struct bad inner; };
void main() {}`)); err == nil {
		t.Error("direct self-embedding must fail")
	}
	checkOK(t, `
struct ok { int v; struct ok* next; };
void main() { struct ok* p = 0; if (p != 0) { print(p->v); } }`)
}

func TestSemaAddrTaken(t *testing.T) {
	f := checkOK(t, `
void main() {
    int x = 1;
    int y = 2;
    int* p = &x;
    *p = 3;
    print(y);
}`)
	body := f.Funcs[0].Body
	xd := body.Stmts[0].(*DeclStmt).Decl
	yd := body.Stmts[1].(*DeclStmt).Decl
	if !xd.Sym.AddrTaken {
		t.Error("x is address-taken")
	}
	if yd.Sym.AddrTaken {
		t.Error("y is not address-taken")
	}
}

func TestSemaScoping(t *testing.T) {
	checkOK(t, `
void main() {
    int x = 1;
    { int x = 2; print(x); }
    for (int x = 0; x < 3; x++) { print(x); }
    print(x);
}`)
	if err := Check(parseOK(t, `void main() { int x = 1; int x = 2; }`)); err == nil {
		t.Error("redeclaration in one scope must fail")
	}
	if err := Check(parseOK(t, `void main() { { int y = 1; } print(y); }`)); err == nil {
		t.Error("use after scope exit must fail")
	}
}

func TestSemaErrors(t *testing.T) {
	bad := []struct{ src, want string }{
		{`void main() { print(main); }`, "used as value"},
		{`void main() { int x = 1 + 2.0 * 0; int* p = x; }`, "cannot initialize"},
		{`void main() { 3 = 4; }`, "non-lvalue"},
		{`void main() { int x; x(); }`, "undefined function"},
		{`int f(int a) { return a; } void main() { print(f(1, 2)); }`, "takes 1 arguments"},
		{`void main() { int* p = 0; int x = p + p; }`, "+"},
		{`struct s { int a; }; void main() { struct s v; v = v; }`, "struct assignment"},
		{`void main() { float f = 1.0 % 2.0; }`, "requires ints"},
		{`void main() { int a[3]; a = 0; }`, ""},
		{`void main() { continue; }`, "continue outside"},
		{`struct s { int a; }; void main() { struct s v; print(v.b); }`, "no field"},
		{`struct s { int a; }; void main() { struct s* p = 0; print(p.a); }`, "did you mean"},
		{`void print() {} void main() {}`, "builtin"},
	}
	for _, c := range bad {
		f, err := Parse("bad", c.src)
		if err != nil {
			continue // parse-level rejection also fine for some cases
		}
		err = Check(f)
		if err == nil {
			t.Errorf("expected sema error for %q", c.src)
			continue
		}
		if c.want != "" && !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error %q missing %q", c.src, err, c.want)
		}
	}
}

func TestSemaPointerComparisons(t *testing.T) {
	checkOK(t, `
void main() {
    int* p = malloc(int, 2);
    int* q = p;
    if (p == q) { print(1); }
    if (p != 0) { print(2); }
    if (0 == q) { print(3); }
    free(p);
}`)
	if err := Check(parseOK(t, `
void main() {
    int* p = 0;
    float* q = 0;
    if (p == q) {}
}`)); err == nil {
		t.Error("mixed pointer comparison must fail")
	}
}

func TestSemaCondTypes(t *testing.T) {
	checkOK(t, `void main() { int* p = 0; while (p) { break; } }`)
	if err := Check(parseOK(t, `void main() { float f = 0.0; if (f) {} }`)); err == nil {
		t.Error("float condition must fail")
	}
}
