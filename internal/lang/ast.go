package lang

import "scaf/internal/ir"

// File is a parsed MC translation unit.
type File struct {
	Name    string
	Structs []*StructDecl
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// TypeExpr is an unresolved type reference: a base type with pointer stars
// and optional array dimensions (outermost first).
type TypeExpr struct {
	Line       int
	Base       Kind // KWInt, KWFloat, KWVoid, or KWStruct
	StructName string
	Stars      int
	ArrayLens  []int64
}

// StructDecl declares an aggregate type.
type StructDecl struct {
	Line   int
	Name   string
	Fields []*VarDecl
	// Resolved by sema.
	Ty *ir.StructType
}

// SymKind classifies symbols.
type SymKind int

const (
	SymLocal SymKind = iota
	SymParam
	SymGlobal
	SymFunc
)

// Symbol is a named entity resolved by sema. Lowering keys its value map
// on *Symbol.
type Symbol struct {
	Name      string
	Kind      SymKind
	Ty        ir.Type
	AddrTaken bool
	Fn        *FuncDecl // for SymFunc
}

// VarDecl declares a variable (global, local, parameter, or struct field).
type VarDecl struct {
	Line int
	Name string
	TE   *TypeExpr
	Init Expr
	// Resolved by sema.
	Ty  ir.Type
	Sym *Symbol
}

// FuncDecl declares a function.
type FuncDecl struct {
	Line   int
	Name   string
	Ret    *TypeExpr
	Params []*VarDecl
	Body   *BlockStmt
	// Resolved by sema.
	RetTy ir.Type
	Sym   *Symbol
}

// Stmt is the interface of all statements.
type Stmt interface{ stmt() }

// BlockStmt is a brace-delimited statement list.
type BlockStmt struct {
	Line  int
	Stmts []Stmt
}

// DeclStmt is a local variable declaration.
type DeclStmt struct{ Decl *VarDecl }

// ExprStmt evaluates an expression for its effects.
type ExprStmt struct{ X Expr }

// IfStmt is a conditional.
type IfStmt struct {
	Line int
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// WhileStmt is a pre-tested loop.
type WhileStmt struct {
	Line int
	Cond Expr
	Body Stmt
}

// ForStmt is a C-style for loop. Init may be a DeclStmt or ExprStmt or nil.
type ForStmt struct {
	Line int
	Init Stmt
	Cond Expr // may be nil (infinite)
	Post Expr // may be nil
	Body Stmt
}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	Line int
	X    Expr // may be nil
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Line int }

// ContinueStmt jumps to the innermost loop's next iteration.
type ContinueStmt struct{ Line int }

func (*BlockStmt) stmt()    {}
func (*DeclStmt) stmt()     {}
func (*ExprStmt) stmt()     {}
func (*IfStmt) stmt()       {}
func (*WhileStmt) stmt()    {}
func (*ForStmt) stmt()      {}
func (*ReturnStmt) stmt()   {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}

// Expr is the interface of all expressions; Type is valid after sema.
type Expr interface {
	Type() ir.Type
	Pos() int
}

type exprBase struct {
	Line int
	Ty   ir.Type
}

func (e *exprBase) Type() ir.Type { return e.Ty }
func (e *exprBase) Pos() int      { return e.Line }

// Ident references a variable or function by name.
type Ident struct {
	exprBase
	Name string
	Sym  *Symbol
	// Decayed is set when an array-typed variable is used as a value and
	// decays to a pointer to its first element.
	Decayed bool
}

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	V int64
}

// FloatLit is a float literal.
type FloatLit struct {
	exprBase
	V float64
}

// Unary is -x, !x, *p, &lv.
type Unary struct {
	exprBase
	Op Kind
	X  Expr
}

// Binary is x op y, including && and || (short-circuit).
type Binary struct {
	exprBase
	Op   Kind
	X, Y Expr
}

// Assign is lv = rhs and compound forms (+=, -=, *=, /=).
type Assign struct {
	exprBase
	Op       Kind
	LHS, RHS Expr
}

// CastExpr converts between int and float: (int)x, (float)x. Sema inserts
// implicit casts as needed.
type CastExpr struct {
	exprBase
	To Kind // KWInt or KWFloat
	X  Expr
}

// Builtin identifies intrinsic callees.
type Builtin int

const (
	NotBuiltin Builtin = iota
	BuiltinMalloc
	BuiltinFree
	BuiltinPrint
	BuiltinSqrt
	BuiltinFabs
)

// Call invokes a function or builtin. For malloc, TypeArg carries the
// element type: malloc(T, n) allocates n elements of T and yields T*.
type Call struct {
	exprBase
	Name    string
	TypeArg *TypeExpr
	Args    []Expr
	// Resolved by sema.
	Builtin Builtin
	Fn      *FuncDecl
}

// Index is x[i]; x is a pointer or array.
type Index struct {
	exprBase
	X   Expr
	Idx Expr
	// Decayed is set when the element itself is an array used as a value.
	Decayed bool
}

// Member is s.f or p->f.
type Member struct {
	exprBase
	X     Expr
	Name  string
	Arrow bool
	// Resolved by sema.
	StructTy *ir.StructType
	FieldIdx int
	Decayed  bool
}
