package lang

import (
	"fmt"
	"strconv"
)

// Lexer turns MC source text into tokens.
type Lexer struct {
	src  string
	pos  int
	line int
}

// NewLexer creates a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src, line: 1} }

// Lex tokenizes the whole input, ending with an EOF token.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var out []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == EOF {
			return out, nil
		}
	}
}

func (lx *Lexer) peek() byte {
	if lx.pos < len(lx.src) {
		return lx.src[lx.pos]
	}
	return 0
}

func (lx *Lexer) peek2() byte {
	if lx.pos+1 < len(lx.src) {
		return lx.src[lx.pos+1]
	}
	return 0
}

func (lx *Lexer) skipSpace() error {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '/' && lx.peek2() == '/':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		case c == '/' && lx.peek2() == '*':
			start := lx.line
			lx.pos += 2
			for {
				if lx.pos+1 >= len(lx.src) {
					return fmt.Errorf("line %d: unterminated block comment", start)
				}
				if lx.src[lx.pos] == '\n' {
					lx.line++
				}
				if lx.src[lx.pos] == '*' && lx.src[lx.pos+1] == '/' {
					lx.pos += 2
					break
				}
				lx.pos++
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpace(); err != nil {
		return Token{}, err
	}
	if lx.pos >= len(lx.src) {
		return Token{Kind: EOF, Line: lx.line}, nil
	}
	line := lx.line
	c := lx.src[lx.pos]

	if isIdentStart(c) {
		start := lx.pos
		for lx.pos < len(lx.src) && (isIdentStart(lx.src[lx.pos]) || isDigit(lx.src[lx.pos])) {
			lx.pos++
		}
		text := lx.src[start:lx.pos]
		if k, ok := keywords[text]; ok {
			return Token{Kind: k, Text: text, Line: line}, nil
		}
		return Token{Kind: IDENT, Text: text, Line: line}, nil
	}

	if isDigit(c) {
		start := lx.pos
		isFloat := false
		for lx.pos < len(lx.src) && isDigit(lx.src[lx.pos]) {
			lx.pos++
		}
		if lx.peek() == '.' && isDigit(lx.peek2()) {
			isFloat = true
			lx.pos++
			for lx.pos < len(lx.src) && isDigit(lx.src[lx.pos]) {
				lx.pos++
			}
		}
		if lx.peek() == 'e' || lx.peek() == 'E' {
			save := lx.pos
			lx.pos++
			if lx.peek() == '+' || lx.peek() == '-' {
				lx.pos++
			}
			if isDigit(lx.peek()) {
				isFloat = true
				for lx.pos < len(lx.src) && isDigit(lx.src[lx.pos]) {
					lx.pos++
				}
			} else {
				lx.pos = save
			}
		}
		text := lx.src[start:lx.pos]
		if isFloat {
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return Token{}, fmt.Errorf("line %d: bad float literal %q", line, text)
			}
			return Token{Kind: FLOATLIT, Float: f, Text: text, Line: line}, nil
		}
		v, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return Token{}, fmt.Errorf("line %d: bad int literal %q", line, text)
		}
		return Token{Kind: INTLIT, Int: v, Text: text, Line: line}, nil
	}

	two := func(k Kind) (Token, error) {
		lx.pos += 2
		return Token{Kind: k, Line: line}, nil
	}
	one := func(k Kind) (Token, error) {
		lx.pos++
		return Token{Kind: k, Line: line}, nil
	}

	switch c {
	case '(':
		return one(LPAREN)
	case ')':
		return one(RPAREN)
	case '{':
		return one(LBRACE)
	case '}':
		return one(RBRACE)
	case '[':
		return one(LBRACK)
	case ']':
		return one(RBRACK)
	case ';':
		return one(SEMI)
	case ',':
		return one(COMMA)
	case '.':
		return one(DOT)
	case '+':
		if lx.peek2() == '=' {
			return two(PLUSEQ)
		}
		if lx.peek2() == '+' {
			return two(PLUSPLUS)
		}
		return one(PLUS)
	case '-':
		if lx.peek2() == '=' {
			return two(MINUSEQ)
		}
		if lx.peek2() == '>' {
			return two(ARROW)
		}
		if lx.peek2() == '-' {
			return two(MINUSMINUS)
		}
		return one(MINUS)
	case '*':
		if lx.peek2() == '=' {
			return two(STAREQ)
		}
		return one(STAR)
	case '/':
		if lx.peek2() == '=' {
			return two(SLASHEQ)
		}
		return one(SLASH)
	case '%':
		return one(PERCENT)
	case '&':
		if lx.peek2() == '&' {
			return two(ANDAND)
		}
		return one(AMP)
	case '|':
		if lx.peek2() == '|' {
			return two(OROR)
		}
		return one(PIPE)
	case '^':
		return one(CARET)
	case '<':
		if lx.peek2() == '<' {
			return two(SHL)
		}
		if lx.peek2() == '=' {
			return two(LE)
		}
		return one(LT)
	case '>':
		if lx.peek2() == '>' {
			return two(SHR)
		}
		if lx.peek2() == '=' {
			return two(GE)
		}
		return one(GT)
	case '=':
		if lx.peek2() == '=' {
			return two(EQ)
		}
		return one(ASSIGN)
	case '!':
		if lx.peek2() == '=' {
			return two(NE)
		}
		return one(NOT)
	}
	return Token{}, fmt.Errorf("line %d: unexpected character %q", line, string(c))
}
