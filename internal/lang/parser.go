package lang

import "fmt"

// Parser is a recursive-descent parser for MC.
type Parser struct {
	toks []Token
	pos  int
}

// Parse lexes and parses an MC source file.
func Parse(name, src string) (*File, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	p := &Parser{toks: toks}
	f, err := p.file(name)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return f, nil
}

func (p *Parser) cur() Token { return p.toks[p.pos] }
func (p *Parser) la(n int) Token {
	if p.pos+n < len(p.toks) {
		return p.toks[p.pos+n]
	}
	return p.toks[len(p.toks)-1]
}

func (p *Parser) advance() Token {
	t := p.toks[p.pos]
	if t.Kind != EOF {
		p.pos++
	}
	return t
}

func (p *Parser) accept(k Kind) bool {
	if p.cur().Kind == k {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) expect(k Kind) (Token, error) {
	if p.cur().Kind == k {
		return p.advance(), nil
	}
	return Token{}, fmt.Errorf("line %d: expected %s, found %s", p.cur().Line, k, p.cur())
}

func (p *Parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("line %d: %s", p.cur().Line, fmt.Sprintf(format, args...))
}

// isTypeStart reports whether the current token begins a type.
func (p *Parser) isTypeStart() bool {
	switch p.cur().Kind {
	case KWInt, KWFloat, KWVoid:
		return true
	case KWStruct:
		// "struct name" followed by anything other than "{" is a type use.
		return p.la(1).Kind == IDENT && p.la(2).Kind != LBRACE
	}
	return false
}

// typeExpr parses a base type with trailing stars: int**, struct node*, ...
func (p *Parser) typeExpr() (*TypeExpr, error) {
	te := &TypeExpr{Line: p.cur().Line}
	switch p.cur().Kind {
	case KWInt, KWFloat, KWVoid:
		te.Base = p.advance().Kind
	case KWStruct:
		p.advance()
		id, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		te.Base = KWStruct
		te.StructName = id.Text
	default:
		return nil, p.errf("expected type, found %s", p.cur())
	}
	for p.accept(STAR) {
		te.Stars++
	}
	return te, nil
}

// arraySuffix parses zero or more [N] dimensions into te.
func (p *Parser) arraySuffix(te *TypeExpr) error {
	for p.cur().Kind == LBRACK {
		p.advance()
		n, err := p.expect(INTLIT)
		if err != nil {
			return err
		}
		if _, err := p.expect(RBRACK); err != nil {
			return err
		}
		te.ArrayLens = append(te.ArrayLens, n.Int)
	}
	return nil
}

func (p *Parser) file(name string) (*File, error) {
	f := &File{Name: name}
	for p.cur().Kind != EOF {
		if p.cur().Kind == KWStruct && p.la(1).Kind == IDENT && p.la(2).Kind == LBRACE {
			sd, err := p.structDecl()
			if err != nil {
				return nil, err
			}
			f.Structs = append(f.Structs, sd)
			continue
		}
		te, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		id, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if p.cur().Kind == LPAREN {
			fd, err := p.funcDecl(te, id)
			if err != nil {
				return nil, err
			}
			f.Funcs = append(f.Funcs, fd)
		} else {
			g := &VarDecl{Line: id.Line, Name: id.Text, TE: te}
			if err := p.arraySuffix(te); err != nil {
				return nil, err
			}
			if _, err := p.expect(SEMI); err != nil {
				return nil, err
			}
			f.Globals = append(f.Globals, g)
		}
	}
	return f, nil
}

func (p *Parser) structDecl() (*StructDecl, error) {
	start := p.advance() // struct
	id, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LBRACE); err != nil {
		return nil, err
	}
	sd := &StructDecl{Line: start.Line, Name: id.Text}
	for p.cur().Kind != RBRACE {
		te, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		fid, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if err := p.arraySuffix(te); err != nil {
			return nil, err
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		sd.Fields = append(sd.Fields, &VarDecl{Line: fid.Line, Name: fid.Text, TE: te})
	}
	p.advance() // }
	p.accept(SEMI)
	return sd, nil
}

func (p *Parser) funcDecl(ret *TypeExpr, id Token) (*FuncDecl, error) {
	fd := &FuncDecl{Line: id.Line, Name: id.Text, Ret: ret}
	p.advance() // (
	if p.cur().Kind != RPAREN {
		for {
			te, err := p.typeExpr()
			if err != nil {
				return nil, err
			}
			pid, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			fd.Params = append(fd.Params, &VarDecl{Line: pid.Line, Name: pid.Text, TE: te})
			if !p.accept(COMMA) {
				break
			}
		}
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fd.Body = body
	return fd, nil
}

func (p *Parser) block() (*BlockStmt, error) {
	lb, err := p.expect(LBRACE)
	if err != nil {
		return nil, err
	}
	b := &BlockStmt{Line: lb.Line}
	for p.cur().Kind != RBRACE {
		if p.cur().Kind == EOF {
			return nil, p.errf("unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			b.Stmts = append(b.Stmts, s)
		}
	}
	p.advance() // }
	return b, nil
}

func (p *Parser) stmt() (Stmt, error) {
	switch p.cur().Kind {
	case LBRACE:
		return p.block()
	case SEMI:
		p.advance()
		return nil, nil
	case KWIf:
		return p.ifStmt()
	case KWWhile:
		return p.whileStmt()
	case KWFor:
		return p.forStmt()
	case KWReturn:
		t := p.advance()
		var x Expr
		if p.cur().Kind != SEMI {
			var err error
			x, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &ReturnStmt{Line: t.Line, X: x}, nil
	case KWBreak:
		t := p.advance()
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &BreakStmt{Line: t.Line}, nil
	case KWContinue:
		t := p.advance()
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &ContinueStmt{Line: t.Line}, nil
	}
	if p.isTypeStart() {
		d, err := p.varDecl()
		if err != nil {
			return nil, err
		}
		return &DeclStmt{Decl: d}, nil
	}
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return &ExprStmt{X: x}, nil
}

func (p *Parser) varDecl() (*VarDecl, error) {
	te, err := p.typeExpr()
	if err != nil {
		return nil, err
	}
	id, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	d := &VarDecl{Line: id.Line, Name: id.Text, TE: te}
	if err := p.arraySuffix(te); err != nil {
		return nil, err
	}
	if p.accept(ASSIGN) {
		d.Init, err = p.assignExpr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *Parser) ifStmt() (Stmt, error) {
	t := p.advance()
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	then, err := p.stmt()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Line: t.Line, Cond: cond, Then: then}
	if p.accept(KWElse) {
		s.Else, err = p.stmt()
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (p *Parser) whileStmt() (Stmt, error) {
	t := p.advance()
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	body, err := p.stmt()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Line: t.Line, Cond: cond, Body: body}, nil
}

func (p *Parser) forStmt() (Stmt, error) {
	t := p.advance()
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	s := &ForStmt{Line: t.Line}
	// Init clause.
	if p.cur().Kind == SEMI {
		p.advance()
	} else if p.isTypeStart() {
		d, err := p.varDecl()
		if err != nil {
			return nil, err
		}
		s.Init = &DeclStmt{Decl: d}
	} else {
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		s.Init = &ExprStmt{X: x}
	}
	// Condition.
	if p.cur().Kind != SEMI {
		var err error
		s.Cond, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	// Post.
	if p.cur().Kind != RPAREN {
		var err error
		s.Post, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	body, err := p.stmt()
	if err != nil {
		return nil, err
	}
	s.Body = body
	return s, nil
}

// Expression grammar, lowest to highest precedence.

func (p *Parser) expr() (Expr, error) { return p.assignExpr() }

func (p *Parser) assignExpr() (Expr, error) {
	lhs, err := p.orExpr()
	if err != nil {
		return nil, err
	}
	switch p.cur().Kind {
	case ASSIGN, PLUSEQ, MINUSEQ, STAREQ, SLASHEQ:
		op := p.advance()
		rhs, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		return &Assign{exprBase: exprBase{Line: op.Line}, Op: op.Kind, LHS: lhs, RHS: rhs}, nil
	}
	return lhs, nil
}

// binLevel builds a left-associative binary level.
func (p *Parser) binLevel(next func() (Expr, error), kinds ...Kind) (Expr, error) {
	x, err := next()
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, k := range kinds {
			if p.cur().Kind == k {
				op := p.advance()
				y, err := next()
				if err != nil {
					return nil, err
				}
				x = &Binary{exprBase: exprBase{Line: op.Line}, Op: k, X: x, Y: y}
				matched = true
				break
			}
		}
		if !matched {
			return x, nil
		}
	}
}

func (p *Parser) orExpr() (Expr, error)     { return p.binLevel(p.andExpr, OROR) }
func (p *Parser) andExpr() (Expr, error)    { return p.binLevel(p.bitorExpr, ANDAND) }
func (p *Parser) bitorExpr() (Expr, error)  { return p.binLevel(p.bitxorExpr, PIPE) }
func (p *Parser) bitxorExpr() (Expr, error) { return p.binLevel(p.bitandExpr, CARET) }
func (p *Parser) bitandExpr() (Expr, error) { return p.binLevel(p.eqExpr, AMP) }
func (p *Parser) eqExpr() (Expr, error)     { return p.binLevel(p.relExpr, EQ, NE) }
func (p *Parser) relExpr() (Expr, error)    { return p.binLevel(p.shiftExpr, LT, LE, GT, GE) }
func (p *Parser) shiftExpr() (Expr, error)  { return p.binLevel(p.addExpr, SHL, SHR) }
func (p *Parser) addExpr() (Expr, error)    { return p.binLevel(p.mulExpr, PLUS, MINUS) }
func (p *Parser) mulExpr() (Expr, error)    { return p.binLevel(p.unaryExpr, STAR, SLASH, PERCENT) }

func (p *Parser) unaryExpr() (Expr, error) {
	switch p.cur().Kind {
	case MINUS, NOT, STAR, AMP:
		op := p.advance()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{exprBase: exprBase{Line: op.Line}, Op: op.Kind, X: x}, nil
	case LPAREN:
		// Cast: (int)x or (float)x.
		if (p.la(1).Kind == KWInt || p.la(1).Kind == KWFloat) && p.la(2).Kind == RPAREN {
			p.advance()
			to := p.advance().Kind
			p.advance()
			x, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			return &CastExpr{exprBase: exprBase{Line: x.Pos()}, To: to, X: x}, nil
		}
	}
	return p.postfixExpr()
}

func (p *Parser) postfixExpr() (Expr, error) {
	x, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case LBRACK:
			t := p.advance()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBRACK); err != nil {
				return nil, err
			}
			x = &Index{exprBase: exprBase{Line: t.Line}, X: x, Idx: idx}
		case DOT, ARROW:
			t := p.advance()
			id, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			x = &Member{exprBase: exprBase{Line: t.Line}, X: x, Name: id.Text, Arrow: t.Kind == ARROW}
		case PLUSPLUS, MINUSMINUS:
			// Desugar x++ / x-- to x += 1 / x -= 1 (statement position only;
			// MC does not use the pre-increment value).
			t := p.advance()
			op := PLUSEQ
			if t.Kind == MINUSMINUS {
				op = MINUSEQ
			}
			one := &IntLit{exprBase: exprBase{Line: t.Line}, V: 1}
			x = &Assign{exprBase: exprBase{Line: t.Line}, Op: op, LHS: x, RHS: one}
		default:
			return x, nil
		}
	}
}

func (p *Parser) primaryExpr() (Expr, error) {
	switch p.cur().Kind {
	case INTLIT:
		t := p.advance()
		return &IntLit{exprBase: exprBase{Line: t.Line}, V: t.Int}, nil
	case FLOATLIT:
		t := p.advance()
		return &FloatLit{exprBase: exprBase{Line: t.Line}, V: t.Float}, nil
	case LPAREN:
		p.advance()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return x, nil
	case IDENT:
		t := p.advance()
		if p.cur().Kind != LPAREN {
			return &Ident{exprBase: exprBase{Line: t.Line}, Name: t.Text}, nil
		}
		p.advance() // (
		c := &Call{exprBase: exprBase{Line: t.Line}, Name: t.Text}
		if t.Text == "malloc" {
			te, err := p.typeExpr()
			if err != nil {
				return nil, err
			}
			c.TypeArg = te
			if _, err := p.expect(COMMA); err != nil {
				return nil, err
			}
			n, err := p.expr()
			if err != nil {
				return nil, err
			}
			c.Args = append(c.Args, n)
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
			return c, nil
		}
		if p.cur().Kind != RPAREN {
			for {
				a, err := p.assignExpr()
				if err != nil {
					return nil, err
				}
				c.Args = append(c.Args, a)
				if !p.accept(COMMA) {
					break
				}
			}
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return c, nil
	}
	return nil, p.errf("expected expression, found %s", p.cur())
}
