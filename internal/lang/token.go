// Package lang implements the front-end for MC, a miniature C dialect used
// to author the benchmark programs the framework is evaluated on. MC has
// ints, floats, pointers, fixed arrays, structs, globals, functions,
// short-circuit booleans, malloc/free, and nothing else — enough to express
// the memory idioms (biased error paths, read-only tables, per-iteration
// scratch buffers, pointer-chasing) that drive the paper's evaluation.
package lang

import "fmt"

// Kind classifies tokens.
type Kind int

const (
	EOF Kind = iota
	IDENT
	INTLIT
	FLOATLIT

	// Keywords.
	KWInt
	KWFloat
	KWVoid
	KWStruct
	KWIf
	KWElse
	KWWhile
	KWFor
	KWReturn
	KWBreak
	KWContinue

	// Punctuation and operators.
	LPAREN     // (
	RPAREN     // )
	LBRACE     // {
	RBRACE     // }
	LBRACK     // [
	RBRACK     // ]
	SEMI       // ;
	COMMA      // ,
	DOT        // .
	ARROW      // ->
	ASSIGN     // =
	PLUSEQ     // +=
	MINUSEQ    // -=
	STAREQ     // *=
	SLASHEQ    // /=
	PLUS       // +
	MINUS      // -
	STAR       // *
	SLASH      // /
	PERCENT    // %
	AMP        // &
	PIPE       // |
	CARET      // ^
	SHL        // <<
	SHR        // >>
	ANDAND     // &&
	OROR       // ||
	NOT        // !
	EQ         // ==
	NE         // !=
	LT         // <
	LE         // <=
	GT         // >
	GE         // >=
	PLUSPLUS   // ++
	MINUSMINUS // --
)

var kindNames = map[Kind]string{
	EOF: "EOF", IDENT: "identifier", INTLIT: "int literal", FLOATLIT: "float literal",
	KWInt: "int", KWFloat: "float", KWVoid: "void", KWStruct: "struct",
	KWIf: "if", KWElse: "else", KWWhile: "while", KWFor: "for",
	KWReturn: "return", KWBreak: "break", KWContinue: "continue",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}", LBRACK: "[", RBRACK: "]",
	SEMI: ";", COMMA: ",", DOT: ".", ARROW: "->",
	ASSIGN: "=", PLUSEQ: "+=", MINUSEQ: "-=", STAREQ: "*=", SLASHEQ: "/=",
	PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/", PERCENT: "%",
	AMP: "&", PIPE: "|", CARET: "^", SHL: "<<", SHR: ">>",
	ANDAND: "&&", OROR: "||", NOT: "!",
	EQ: "==", NE: "!=", LT: "<", LE: "<=", GT: ">", GE: ">=",
	PLUSPLUS: "++", MINUSMINUS: "--",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"int": KWInt, "float": KWFloat, "void": KWVoid, "struct": KWStruct,
	"if": KWIf, "else": KWElse, "while": KWWhile, "for": KWFor,
	"return": KWReturn, "break": KWBreak, "continue": KWContinue,
}

// Token is a lexical token with its source position.
type Token struct {
	Kind  Kind
	Text  string
	Int   int64
	Float float64
	Line  int
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT:
		return t.Text
	case INTLIT:
		return fmt.Sprintf("%d", t.Int)
	case FLOATLIT:
		return fmt.Sprintf("%g", t.Float)
	}
	return t.Kind.String()
}
