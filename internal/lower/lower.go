// Package lower translates checked MC ASTs into IR and then promotes
// scalar locals to SSA registers (mem2reg), mirroring the clang -O0 +
// mem2reg pipeline the paper's LLVM implementation analyzes.
package lower

import (
	"fmt"

	"scaf/internal/ir"
	"scaf/internal/lang"
)

// Compile parses, checks, lowers and SSA-converts an MC source file.
func Compile(name, src string) (*ir.Module, error) {
	file, err := lang.Parse(name, src)
	if err != nil {
		return nil, err
	}
	if err := lang.Check(file); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	m, err := Lower(file)
	if err != nil {
		return nil, err
	}
	PromoteToSSA(m)
	if err := ir.Verify(m); err != nil {
		return nil, fmt.Errorf("%s: post-SSA verify: %w", name, err)
	}
	return m, nil
}

// Lower translates a checked file into (pre-SSA) IR.
func Lower(file *lang.File) (*ir.Module, error) {
	lw := &lowerer{
		mod:   ir.NewModule(file.Name),
		vals:  map[*lang.Symbol]ir.Value{},
		funcs: map[*lang.FuncDecl]*ir.Func{},
	}
	for _, sd := range file.Structs {
		lw.mod.Structs = append(lw.mod.Structs, sd.Ty)
	}
	for _, g := range file.Globals {
		gv := lw.mod.NewGlobal(g.Name, g.Ty)
		lw.vals[g.Sym] = gv
	}
	for _, fd := range file.Funcs {
		params := make([]*ir.Param, len(fd.Params))
		for i, p := range fd.Params {
			params[i] = &ir.Param{PName: p.Name, Ty: p.Ty}
		}
		lw.funcs[fd] = lw.mod.NewFunc(fd.Name, fd.RetTy, params...)
	}
	for _, fd := range file.Funcs {
		if err := lw.lowerFunc(fd); err != nil {
			return nil, err
		}
	}
	if err := ir.Verify(lw.mod); err != nil {
		return nil, fmt.Errorf("%s: pre-SSA verify: %w", file.Name, err)
	}
	return lw.mod, nil
}

type loopCtx struct {
	continueTo *ir.Block
	breakTo    *ir.Block
}

type lowerer struct {
	mod   *ir.Module
	vals  map[*lang.Symbol]ir.Value
	funcs map[*lang.FuncDecl]*ir.Func

	fn    *ir.Func
	entry *ir.Block // receives allocas; branches to body at the end
	cur   *ir.Block // nil after a terminator
	loops []loopCtx
}

// block returns the current block, starting a fresh (unreachable) one if
// the previous statement terminated control flow.
func (lw *lowerer) block() *ir.Block {
	if lw.cur == nil {
		lw.cur = lw.fn.NewBlock("dead")
	}
	return lw.cur
}

func (lw *lowerer) lowerFunc(fd *lang.FuncDecl) error {
	lw.fn = lw.funcs[fd]
	lw.entry = lw.fn.NewBlock("entry")
	body := lw.fn.NewBlock("body")
	lw.cur = body

	// Spill parameters to stack slots; mem2reg promotes them back.
	for i, p := range fd.Params {
		a := lw.entry.Alloca(p.Ty, p.Name)
		a.Line = p.Line
		lw.entry.Store(lw.fn.Params[i], a)
		lw.vals[p.Sym] = a
	}
	if err := lw.stmt(fd.Body); err != nil {
		return err
	}
	// Implicit return.
	if lw.cur != nil {
		switch {
		case ir.Equal(fd.RetTy, ir.Void):
			lw.cur.Ret()
		case ir.Equal(fd.RetTy, ir.Float):
			lw.cur.Ret(ir.CF(0))
		case ir.IsPointer(fd.RetTy):
			lw.cur.Ret(ir.Null(fd.RetTy.(*ir.PtrType)))
		default:
			lw.cur.Ret(ir.CI(0))
		}
		lw.cur = nil
	}
	// Terminate any dangling dead blocks so the verifier is happy.
	for _, b := range lw.fn.Blocks {
		if b.Term() == nil && b != lw.entry {
			b.Ret(zeroOf(fd.RetTy)...)
		}
	}
	lw.entry.Br(body)
	return nil
}

func zeroOf(t ir.Type) []ir.Value {
	switch {
	case ir.Equal(t, ir.Void):
		return nil
	case ir.Equal(t, ir.Float):
		return []ir.Value{ir.CF(0)}
	case ir.IsPointer(t):
		return []ir.Value{ir.Null(t.(*ir.PtrType))}
	default:
		return []ir.Value{ir.CI(0)}
	}
}

func (lw *lowerer) stmt(s lang.Stmt) error {
	switch st := s.(type) {
	case *lang.BlockStmt:
		for _, sub := range st.Stmts {
			if err := lw.stmt(sub); err != nil {
				return err
			}
		}
		return nil
	case *lang.DeclStmt:
		return lw.decl(st.Decl)
	case *lang.ExprStmt:
		_, err := lw.rvalue(st.X)
		return err
	case *lang.IfStmt:
		return lw.ifStmt(st)
	case *lang.WhileStmt:
		return lw.whileStmt(st)
	case *lang.ForStmt:
		return lw.forStmt(st)
	case *lang.ReturnStmt:
		b := lw.block()
		if st.X == nil {
			b.Ret()
		} else {
			v, err := lw.rvalue(st.X)
			if err != nil {
				return err
			}
			lw.block().Ret(v)
		}
		lw.cur = nil
		return nil
	case *lang.BreakStmt:
		lw.block().Br(lw.loops[len(lw.loops)-1].breakTo)
		lw.cur = nil
		return nil
	case *lang.ContinueStmt:
		lw.block().Br(lw.loops[len(lw.loops)-1].continueTo)
		lw.cur = nil
		return nil
	}
	return fmt.Errorf("lower: unknown statement %T", s)
}

func (lw *lowerer) decl(d *lang.VarDecl) error {
	a := lw.entry.Alloca(d.Ty, d.Name)
	a.Line = d.Line
	lw.vals[d.Sym] = a
	if d.Init != nil {
		v, err := lw.rvalue(d.Init)
		if err != nil {
			return err
		}
		lw.block().Store(v, a)
	}
	return nil
}

// toBool converts a value to a branch condition (int 0/1).
func (lw *lowerer) toBool(v ir.Value) ir.Value {
	if ir.IsPointer(v.Type()) {
		return lw.block().CmpIns(ir.Ne, v, ir.Null(v.Type().(*ir.PtrType)))
	}
	if in, ok := v.(*ir.Instr); ok && in.Op == ir.OpCmp {
		return v
	}
	return lw.block().CmpIns(ir.Ne, v, ir.CI(0))
}

func (lw *lowerer) cond(e lang.Expr, t, f *ir.Block) error {
	v, err := lw.rvalue(e)
	if err != nil {
		return err
	}
	lw.block().CondBr(lw.toBool(v), t, f)
	lw.cur = nil
	return nil
}

func (lw *lowerer) ifStmt(st *lang.IfStmt) error {
	then := lw.fn.NewBlock("then")
	join := lw.fn.NewBlock("endif")
	els := join
	if st.Else != nil {
		els = lw.fn.NewBlock("else")
	}
	if err := lw.cond(st.Cond, then, els); err != nil {
		return err
	}
	lw.cur = then
	if err := lw.stmt(st.Then); err != nil {
		return err
	}
	if lw.cur != nil {
		lw.cur.Br(join)
	}
	if st.Else != nil {
		lw.cur = els
		if err := lw.stmt(st.Else); err != nil {
			return err
		}
		if lw.cur != nil {
			lw.cur.Br(join)
		}
	}
	lw.cur = join
	return nil
}

func (lw *lowerer) whileStmt(st *lang.WhileStmt) error {
	head := lw.fn.NewBlock("while_head")
	body := lw.fn.NewBlock("while_body")
	exit := lw.fn.NewBlock("while_exit")
	lw.block().Br(head)
	lw.cur = head
	if err := lw.cond(st.Cond, body, exit); err != nil {
		return err
	}
	lw.cur = body
	lw.loops = append(lw.loops, loopCtx{continueTo: head, breakTo: exit})
	if err := lw.stmt(st.Body); err != nil {
		return err
	}
	lw.loops = lw.loops[:len(lw.loops)-1]
	if lw.cur != nil {
		lw.cur.Br(head)
	}
	lw.cur = exit
	return nil
}

func (lw *lowerer) forStmt(st *lang.ForStmt) error {
	if st.Init != nil {
		if err := lw.stmt(st.Init); err != nil {
			return err
		}
	}
	head := lw.fn.NewBlock("for_head")
	body := lw.fn.NewBlock("for_body")
	post := lw.fn.NewBlock("for_post")
	exit := lw.fn.NewBlock("for_exit")
	lw.block().Br(head)
	lw.cur = head
	if st.Cond != nil {
		if err := lw.cond(st.Cond, body, exit); err != nil {
			return err
		}
	} else {
		head.Br(body)
		lw.cur = nil
	}
	lw.cur = body
	lw.loops = append(lw.loops, loopCtx{continueTo: post, breakTo: exit})
	if err := lw.stmt(st.Body); err != nil {
		return err
	}
	lw.loops = lw.loops[:len(lw.loops)-1]
	if lw.cur != nil {
		lw.cur.Br(post)
	}
	lw.cur = post
	if st.Post != nil {
		if _, err := lw.rvalue(st.Post); err != nil {
			return err
		}
	}
	lw.block().Br(head)
	lw.cur = exit
	return nil
}

// lvalue computes the address of an assignable expression.
func (lw *lowerer) lvalue(e lang.Expr) (ir.Value, error) {
	switch x := e.(type) {
	case *lang.Ident:
		v := lw.vals[x.Sym]
		if v == nil {
			return nil, fmt.Errorf("lower: line %d: no storage for %s", x.Line, x.Name)
		}
		return v, nil
	case *lang.Unary:
		if x.Op == lang.STAR {
			return lw.rvalue(x.X)
		}
	case *lang.Index:
		base, err := lw.rvalue(x.X)
		if err != nil {
			return nil, err
		}
		idx, err := lw.rvalue(x.Idx)
		if err != nil {
			return nil, err
		}
		in := lw.block().IndexPtr(base, idx)
		in.Line = x.Line
		return in, nil
	case *lang.Member:
		var base ir.Value
		var err error
		if x.Arrow {
			base, err = lw.rvalue(x.X)
		} else {
			base, err = lw.lvalue(x.X)
		}
		if err != nil {
			return nil, err
		}
		// The base may be typed as a pointer to the struct already; if it is
		// a pointer to an array of structs the checker rejected it earlier.
		if !ir.Equal(ir.Pointee(base.Type()), x.StructTy) {
			base = lw.block().CastIns(ir.Bitcast, ir.PointerTo(x.StructTy), base)
		}
		in := lw.block().FieldAddr(base, x.FieldIdx)
		in.Line = x.Line
		return in, nil
	}
	return nil, fmt.Errorf("lower: not an lvalue: %T", e)
}

// decayAddr converts the address of an array into a pointer to its first
// element.
func (lw *lowerer) decayAddr(addr ir.Value) ir.Value {
	at, ok := ir.Pointee(addr.Type()).(*ir.ArrayType)
	if !ok {
		return addr
	}
	return lw.block().CastIns(ir.Bitcast, ir.PointerTo(at.Elem), addr)
}

func (lw *lowerer) rvalue(e lang.Expr) (ir.Value, error) {
	switch x := e.(type) {
	case *lang.IntLit:
		if pt, ok := x.Type().(*ir.PtrType); ok {
			return ir.Null(pt), nil
		}
		return ir.CI(x.V), nil
	case *lang.FloatLit:
		return ir.CF(x.V), nil
	case *lang.Ident:
		addr, err := lw.lvalue(x)
		if err != nil {
			return nil, err
		}
		if x.Decayed {
			return lw.decayAddr(addr), nil
		}
		in := lw.block().Load(addr)
		in.Line = x.Line
		in.Hint = x.Name
		return in, nil
	case *lang.Index:
		addr, err := lw.lvalue(x)
		if err != nil {
			return nil, err
		}
		if x.Decayed {
			return lw.decayAddr(addr), nil
		}
		in := lw.block().Load(addr)
		in.Line = x.Line
		return in, nil
	case *lang.Member:
		addr, err := lw.lvalue(x)
		if err != nil {
			return nil, err
		}
		if x.Decayed {
			return lw.decayAddr(addr), nil
		}
		in := lw.block().Load(addr)
		in.Line = x.Line
		return in, nil
	case *lang.Unary:
		return lw.unary(x)
	case *lang.Binary:
		return lw.binary(x)
	case *lang.Assign:
		return lw.assign(x)
	case *lang.CastExpr:
		v, err := lw.rvalue(x.X)
		if err != nil {
			return nil, err
		}
		if ir.Equal(v.Type(), x.Type()) {
			return v, nil
		}
		kind := ir.IntToFloat
		if x.To == lang.KWInt {
			kind = ir.FloatToInt
		}
		return lw.block().CastIns(kind, x.Type(), v), nil
	case *lang.Call:
		return lw.call(x)
	}
	return nil, fmt.Errorf("lower: unknown expression %T", e)
}

func (lw *lowerer) unary(x *lang.Unary) (ir.Value, error) {
	switch x.Op {
	case lang.AMP:
		return lw.lvalue(x.X)
	case lang.STAR:
		p, err := lw.rvalue(x.X)
		if err != nil {
			return nil, err
		}
		if _, isArr := ir.Pointee(p.Type()).(*ir.ArrayType); isArr {
			return lw.decayAddr(p), nil
		}
		in := lw.block().Load(p)
		in.Line = x.Line
		return in, nil
	case lang.MINUS:
		v, err := lw.rvalue(x.X)
		if err != nil {
			return nil, err
		}
		zero := ir.Value(ir.CI(0))
		if ir.Equal(v.Type(), ir.Float) {
			zero = ir.CF(0)
		}
		return lw.block().BinIns(ir.Sub, zero, v), nil
	case lang.NOT:
		v, err := lw.rvalue(x.X)
		if err != nil {
			return nil, err
		}
		if ir.IsPointer(v.Type()) {
			return lw.block().CmpIns(ir.Eq, v, ir.Null(v.Type().(*ir.PtrType))), nil
		}
		return lw.block().CmpIns(ir.Eq, v, ir.CI(0)), nil
	}
	return nil, fmt.Errorf("lower: bad unary %s", x.Op)
}

var binOps = map[lang.Kind]ir.BinOp{
	lang.PLUS: ir.Add, lang.MINUS: ir.Sub, lang.STAR: ir.Mul,
	lang.SLASH: ir.Div, lang.PERCENT: ir.Rem, lang.AMP: ir.And,
	lang.PIPE: ir.Or, lang.CARET: ir.Xor, lang.SHL: ir.Shl, lang.SHR: ir.Shr,
}

var cmpOps = map[lang.Kind]ir.CmpOp{
	lang.EQ: ir.Eq, lang.NE: ir.Ne, lang.LT: ir.Lt,
	lang.LE: ir.Le, lang.GT: ir.Gt, lang.GE: ir.Ge,
}

func (lw *lowerer) binary(x *lang.Binary) (ir.Value, error) {
	switch x.Op {
	case lang.ANDAND, lang.OROR:
		return lw.shortCircuit(x)
	}
	xv, err := lw.rvalue(x.X)
	if err != nil {
		return nil, err
	}
	yv, err := lw.rvalue(x.Y)
	if err != nil {
		return nil, err
	}
	if op, ok := cmpOps[x.Op]; ok {
		in := lw.block().CmpIns(op, xv, yv)
		in.Line = x.Line
		return in, nil
	}
	// Pointer arithmetic becomes explicit indexing.
	if ir.IsPointer(x.Type()) {
		switch {
		case ir.IsPointer(xv.Type()) && x.Op == lang.PLUS:
			return lw.block().IndexPtr(xv, yv), nil
		case ir.IsPointer(yv.Type()) && x.Op == lang.PLUS:
			return lw.block().IndexPtr(yv, xv), nil
		case ir.IsPointer(xv.Type()) && x.Op == lang.MINUS:
			neg := lw.block().BinIns(ir.Sub, ir.CI(0), yv)
			return lw.block().IndexPtr(xv, neg), nil
		}
	}
	op, ok := binOps[x.Op]
	if !ok {
		return nil, fmt.Errorf("lower: bad binary %s", x.Op)
	}
	in := lw.block().BinIns(op, xv, yv)
	in.Line = x.Line
	return in, nil
}

// shortCircuit lowers && and || through a stack temporary that mem2reg
// later promotes to a phi.
func (lw *lowerer) shortCircuit(x *lang.Binary) (ir.Value, error) {
	res := lw.entry.Alloca(ir.Int, "sc")
	xv, err := lw.rvalue(x.X)
	if err != nil {
		return nil, err
	}
	xb := lw.toBool(xv)
	lw.block().Store(xb, res)
	rhs := lw.fn.NewBlock("sc_rhs")
	end := lw.fn.NewBlock("sc_end")
	if x.Op == lang.ANDAND {
		lw.block().CondBr(xb, rhs, end)
	} else {
		lw.block().CondBr(xb, end, rhs)
	}
	lw.cur = rhs
	yv, err := lw.rvalue(x.Y)
	if err != nil {
		return nil, err
	}
	yb := lw.toBool(yv)
	lw.block().Store(yb, res)
	lw.block().Br(end)
	lw.cur = end
	return end.Load(res), nil
}

func (lw *lowerer) assign(x *lang.Assign) (ir.Value, error) {
	addr, err := lw.lvalue(x.LHS)
	if err != nil {
		return nil, err
	}
	rv, err := lw.rvalue(x.RHS)
	if err != nil {
		return nil, err
	}
	var val ir.Value
	if x.Op == lang.ASSIGN {
		val = rv
	} else {
		old := lw.block().Load(addr)
		old.Line = x.Line
		if ir.IsPointer(old.Type()) {
			off := rv
			if x.Op == lang.MINUSEQ {
				off = lw.block().BinIns(ir.Sub, ir.CI(0), rv)
			}
			val = lw.block().IndexPtr(old, off)
		} else {
			var op ir.BinOp
			switch x.Op {
			case lang.PLUSEQ:
				op = ir.Add
			case lang.MINUSEQ:
				op = ir.Sub
			case lang.STAREQ:
				op = ir.Mul
			case lang.SLASHEQ:
				op = ir.Div
			}
			val = lw.block().BinIns(op, old, rv)
		}
	}
	st := lw.block().Store(val, addr)
	st.Line = x.Line
	return val, nil
}

func (lw *lowerer) call(x *lang.Call) (ir.Value, error) {
	args := make([]ir.Value, len(x.Args))
	for i, a := range x.Args {
		v, err := lw.rvalue(a)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	b := lw.block()
	switch x.Builtin {
	case lang.BuiltinMalloc:
		elem := ir.Pointee(x.Type())
		size := b.BinIns(ir.Mul, args[0], ir.CI(elem.Size()))
		in := b.Malloc(elem, size, "")
		in.Line = x.Line
		return in, nil
	case lang.BuiltinFree:
		in := b.Free(args[0])
		in.Line = x.Line
		return in, nil
	case lang.BuiltinPrint:
		name := "print_int"
		if ir.Equal(args[0].Type(), ir.Float) {
			name = "print_float"
		}
		return b.CallIntrinsic(name, ir.Void, args[0]), nil
	case lang.BuiltinSqrt:
		return b.CallIntrinsic("sqrt", ir.Float, args[0]), nil
	case lang.BuiltinFabs:
		return b.CallIntrinsic("fabs", ir.Float, args[0]), nil
	}
	callee := lw.funcs[x.Fn]
	if callee == nil {
		return nil, fmt.Errorf("lower: line %d: unresolved callee %s", x.Line, x.Name)
	}
	in := b.Call(callee, args...)
	in.Line = x.Line
	return in, nil
}
