package lower

import (
	"strings"
	"testing"

	"scaf/internal/ir"
)

const sumProg = `
int sum(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        s += i;
    }
    return s;
}

void main() {
    print(sum(10));
}
`

func TestCompileSum(t *testing.T) {
	m, err := Compile("sum", sumProg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	f := m.FuncNamed("sum")
	if f == nil {
		t.Fatal("missing func sum")
	}
	// After mem2reg there must be no loads/stores left in sum (pure scalar
	// code) and at least one phi.
	phis, mems := 0, 0
	f.Instrs(func(in *ir.Instr) {
		switch in.Op {
		case ir.OpPhi:
			phis++
		case ir.OpLoad, ir.OpStore, ir.OpAlloca:
			mems++
		}
	})
	if mems != 0 {
		t.Errorf("sum still has %d memory ops after mem2reg:\n%s", mems, ir.FormatFunc(f))
	}
	if phis == 0 {
		t.Errorf("sum has no phis:\n%s", ir.FormatFunc(f))
	}
}

const arrayProg = `
int a[100];

void fill(int n) {
    for (int i = 0; i < n; i++) {
        a[i] = i * 2;
    }
}

int get(int i) {
    return a[i];
}

void main() {
    fill(100);
    print(get(5));
}
`

func TestCompileGlobalArray(t *testing.T) {
	m, err := Compile("arr", arrayProg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	fill := m.FuncNamed("fill")
	stores := 0
	fill.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpStore {
			stores++
		}
	})
	if stores != 1 {
		t.Errorf("fill should keep exactly the array store, got %d:\n%s", stores, ir.FormatFunc(fill))
	}
	if m.GlobalNamed("a") == nil {
		t.Error("global a missing")
	}
}

const structProg = `
struct node {
    int val;
    struct node* next;
};

struct node* push(struct node* head, int v) {
    struct node* n = malloc(struct node, 1);
    n->val = v;
    n->next = head;
    return n;
}

int total(struct node* head) {
    int s = 0;
    while (head != 0) {
        s += head->val;
        head = head->next;
    }
    return s;
}

void main() {
    struct node* l = 0;
    for (int i = 1; i <= 4; i++) {
        l = push(l, i);
    }
    print(total(l));
}
`

func TestCompileLinkedList(t *testing.T) {
	m, err := Compile("list", structProg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	push := m.FuncNamed("push")
	var mallocs, fields int
	push.Instrs(func(in *ir.Instr) {
		switch in.Op {
		case ir.OpMalloc:
			mallocs++
		case ir.OpField:
			fields++
		}
	})
	if mallocs != 1 {
		t.Errorf("push should have 1 malloc, got %d", mallocs)
	}
	if fields != 2 {
		t.Errorf("push should have 2 field addresses, got %d", fields)
	}
	st := m.StructNamed("node")
	if st == nil || len(st.Fields) != 2 {
		t.Fatalf("struct node wrong: %v", st)
	}
	if st.Fields[1].Offset != 8 {
		t.Errorf("next offset = %d, want 8", st.Fields[1].Offset)
	}
}

const shortCircuitProg = `
int f(int a, int b) {
    if (a > 0 && b > 0) {
        return 1;
    }
    if (a < 0 || b < 0) {
        return 2;
    }
    return 3;
}
void main() { print(f(1, 1)); }
`

func TestCompileShortCircuit(t *testing.T) {
	m, err := Compile("sc", shortCircuitProg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	// The temporaries must have been promoted.
	f := m.FuncNamed("f")
	f.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpAlloca || in.Op == ir.OpLoad || in.Op == ir.OpStore {
			t.Errorf("short-circuit left memory op: %s", ir.FormatInstr(in))
		}
	})
}

const addrTakenProg = `
void bump(int* p) { *p = *p + 1; }
int g;
void main() {
    int x = 5;
    bump(&x);
    g = x;
    print(g);
}
`

func TestAddrTakenNotPromoted(t *testing.T) {
	m, err := Compile("at", addrTakenProg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	mainFn := m.FuncNamed("main")
	allocas := 0
	mainFn.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpAlloca {
			allocas++
		}
	})
	if allocas != 1 {
		t.Errorf("main should keep the address-taken alloca, got %d:\n%s", allocas, ir.FormatFunc(mainFn))
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []struct {
		name, src, want string
	}{
		{"undefined", `void main() { x = 1; }`, "undefined"},
		{"typemix", `void main() { int* p; p = 3; }`, "cannot assign"},
		{"breakout", `void main() { break; }`, "break outside"},
		{"dupfunc", `void f() {} void f() {} void main() {}`, "duplicate function"},
		{"badfield", `struct s { int a; }; void main() { struct s* p = malloc(struct s, 1); p->b = 1; }`, "no field"},
		{"voidvar", `void main() { void x; }`, "void"},
		{"retmiss", `int f() { return; } void main() {}`, "missing return value"},
		{"arrparam", `void f(int a[3]) {} void main() {}`, ""},
		{"structparam", `struct s { int a; }; void f(struct s x) {} void main() {}`, "pointer"},
		{"parse", `void main() { int; }`, ""},
		{"lex", "void main() { int x = 1 $ 2; }", "unexpected character"},
	}
	for _, c := range bad {
		_, err := Compile(c.name, c.src)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if c.want != "" && !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.want)
		}
	}
}

const nested2D = `
float grid[8][16];
void main() {
    for (int i = 0; i < 8; i++) {
        for (int j = 0; j < 16; j++) {
            grid[i][j] = (float)(i + j);
        }
    }
    print(grid[3][4]);
}
`

func TestCompile2DArray(t *testing.T) {
	m, err := Compile("grid", nested2D)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	g := m.GlobalNamed("grid")
	if g == nil {
		t.Fatal("missing grid")
	}
	if g.Elem.Size() != 8*16*8 {
		t.Errorf("grid size = %d", g.Elem.Size())
	}
}

func TestVerifyAfterSSA(t *testing.T) {
	for _, src := range []string{sumProg, arrayProg, structProg, shortCircuitProg, addrTakenProg, nested2D} {
		m, err := Compile("p", src)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		if err := ir.Verify(m); err != nil {
			t.Errorf("verify: %v", err)
		}
	}
}
