package lower

import (
	"reflect"
	"testing"

	"scaf/internal/cfg"
	"scaf/internal/interp"
	"scaf/internal/ir"
	"scaf/internal/lang"
)

// ssaTestPrograms exercises varied control flow: loops, breaks, nested
// conditionals, short-circuiting, recursion, and address-taken locals.
var ssaTestPrograms = []string{
	`
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
void main() { print(fib(15)); }`,
	`
int seed;
int rnd() { seed = seed * 1103515245 + 12345; return (seed >> 16) & 32767; }
int hist[16];
void main() {
    seed = 9;
    for (int i = 0; i < 500; i++) {
        int v = rnd() % 16;
        if (v % 3 == 0) { continue; }
        if (v == 13) { break; }
        hist[v] = hist[v] + 1;
    }
    int s = 0;
    for (int i = 0; i < 16; i++) { s = s + hist[i] * i; }
    print(s);
}`,
	`
void main() {
    int x = 0;
    int limit = 37;
    while (x * x < limit) {
        x++;
    }
    int y = 0;
    for (;;) {
        y = y + x;
        if (y > 40 && x > 2 || y == 41) { break; }
    }
    print(x);
    print(y);
}`,
	`
struct node { int v; struct node* next; };
void main() {
    struct node* head = 0;
    for (int i = 0; i < 20; i++) {
        struct node* n = malloc(struct node, 1);
        n->v = i * i;
        n->next = head;
        head = n;
    }
    int s = 0;
    struct node* p = head;
    while (p != 0) {
        s = s + p->v;
        struct node* d = p;
        p = p->next;
        free(d);
    }
    print(s);
}`,
	`
void swap(int* a, int* b) { int t = *a; *a = *b; *b = t; }
void main() {
    int arr[8];
    for (int i = 0; i < 8; i++) { arr[i] = 7 - i; }
    for (int i = 0; i < 8; i++) {
        for (int j = 0; j < 7; j++) {
            if (arr[j] > arr[j + 1]) { swap(&arr[j], &arr[j + 1]); }
        }
    }
    for (int i = 0; i < 8; i++) { print(arr[i]); }
}`,
	`
float poly(float x) {
    float acc = 0.0;
    for (int k = 0; k < 5; k++) {
        acc = acc * x + (float)(k + 1);
    }
    return acc;
}
void main() {
    print(poly(1.5));
    print(sqrt(poly(2.0)));
}`,
}

// TestMem2RegPreservesSemantics compiles each program twice — once in
// alloca form, once SSA-promoted — runs both, and demands identical
// observable behaviour. This is the strongest correctness statement about
// the mem2reg pass.
func TestMem2RegPreservesSemantics(t *testing.T) {
	for i, src := range ssaTestPrograms {
		file, err := lang.Parse("p", src)
		if err != nil {
			t.Fatalf("program %d: parse: %v", i, err)
		}
		if err := lang.Check(file); err != nil {
			t.Fatalf("program %d: check: %v", i, err)
		}
		pre, err := Lower(file)
		if err != nil {
			t.Fatalf("program %d: lower: %v", i, err)
		}
		preRes, err := interp.Run(pre, interp.Options{})
		if err != nil {
			t.Fatalf("program %d: pre-SSA run: %v", i, err)
		}

		// Recompile (Lower mutates in place) and promote.
		file2, _ := lang.Parse("p", src)
		if err := lang.Check(file2); err != nil {
			t.Fatal(err)
		}
		post, err := Lower(file2)
		if err != nil {
			t.Fatal(err)
		}
		PromoteToSSA(post)
		if err := ir.Verify(post); err != nil {
			t.Fatalf("program %d: post-SSA verify: %v", i, err)
		}
		postRes, err := interp.Run(post, interp.Options{})
		if err != nil {
			t.Fatalf("program %d: post-SSA run: %v", i, err)
		}
		if !reflect.DeepEqual(preRes.Output, postRes.Output) {
			t.Errorf("program %d: outputs differ:\n pre: %v\npost: %v", i, preRes.Output, postRes.Output)
		}
		if postRes.Steps > preRes.Steps {
			t.Errorf("program %d: SSA form executes more instructions (%d > %d)",
				i, postRes.Steps, preRes.Steps)
		}
	}
}

// TestSSADominance verifies the def-dominates-use property on every
// promoted program (including the benchmark-style ones above).
func TestSSADominance(t *testing.T) {
	for i, src := range ssaTestPrograms {
		mod, err := Compile("p", src)
		if err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
		for _, f := range mod.Funcs {
			dt := cfg.Dominators(f, nil)
			err := ir.VerifySSA(f,
				dt.DominatesInstr,
				func(def *ir.Instr, pred *ir.Block) bool {
					// def dominates the edge if it dominates pred's end.
					if def.Blk == pred {
						return true
					}
					return dt.Dominates(def.Blk, pred)
				},
				dt.Reachable,
			)
			if err != nil {
				t.Errorf("program %d, func %s: %v\n%s", i, f.Name, err, ir.FormatFunc(f))
			}
		}
	}
}

// TestSSADominanceCatchesViolations builds a broken function by hand.
func TestSSADominanceCatchesViolations(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.Void, &ir.Param{PName: "c", Ty: ir.Int})
	entry := f.NewBlock("entry")
	then := f.NewBlock("then")
	join := f.NewBlock("join")
	entry.CondBr(f.Params[0], then, join)
	bad := then.BinIns(ir.Add, ir.CI(1), ir.CI(2)) // defined only on one path
	then.Br(join)
	use := join.BinIns(ir.Add, bad, ir.CI(3)) // uses it unconditionally
	_ = use
	join.Ret()

	dt := cfg.Dominators(f, nil)
	err := ir.VerifySSA(f, dt.DominatesInstr,
		func(def *ir.Instr, pred *ir.Block) bool {
			return def.Blk == pred || dt.Dominates(def.Blk, pred)
		}, dt.Reachable)
	if err == nil {
		t.Fatal("expected an SSA dominance violation")
	}
}
