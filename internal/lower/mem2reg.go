package lower

import (
	"scaf/internal/cfg"
	"scaf/internal/ir"
)

// PromoteToSSA rewrites promotable stack slots (scalar allocas whose
// address never escapes) into SSA values with phi nodes placed at iterated
// dominance frontiers — the classic mem2reg pass. Without it, every scalar
// variable would appear to the dependence analyses as memory traffic and
// drown out the interesting loads and stores.
func PromoteToSSA(m *ir.Module) {
	for _, f := range m.Funcs {
		promoteFunc(f)
	}
}

func isScalar(t ir.Type) bool {
	switch t.(type) {
	case *ir.IntType, *ir.FloatType, *ir.PtrType:
		return true
	}
	return false
}

// promotable reports whether alloca a is only ever used as the direct
// address of loads and stores (and never stored *as a value*).
func promotable(f *ir.Func, a *ir.Instr) bool {
	if !isScalar(a.ElemTy) {
		return false
	}
	ok := true
	f.Instrs(func(in *ir.Instr) {
		for i, arg := range in.Args {
			if arg != ir.Value(a) {
				continue
			}
			switch {
			case in.Op == ir.OpLoad && i == 0:
			case in.Op == ir.OpStore && i == 1:
			default:
				ok = false
			}
		}
	})
	return ok
}

func zeroValue(t ir.Type) ir.Value {
	switch tt := t.(type) {
	case *ir.FloatType:
		return ir.CF(0)
	case *ir.PtrType:
		return ir.Null(tt)
	default:
		return ir.CI(0)
	}
}

func promoteFunc(f *ir.Func) {
	dt := cfg.Dominators(f, nil)
	df := cfg.Frontiers(dt)

	// Collect promotable allocas and their defining blocks.
	var allocas []*ir.Instr
	slot := map[*ir.Instr]int{}
	f.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpAlloca && promotable(f, in) {
			slot[in] = len(allocas)
			allocas = append(allocas, in)
		}
	})
	if len(allocas) == 0 {
		return
	}

	defBlocks := make([][]*ir.Block, len(allocas))
	f.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpStore {
			if a, ok := in.Args[1].(*ir.Instr); ok {
				if s, isSlot := slot[a]; isSlot {
					defBlocks[s] = append(defBlocks[s], in.Blk)
				}
			}
		}
	})

	// Phi placement at iterated dominance frontiers.
	phiFor := map[*ir.Instr]int{} // phi instruction -> slot
	phiAt := make([]map[*ir.Block]*ir.Instr, len(allocas))
	for s, a := range allocas {
		phiAt[s] = map[*ir.Block]*ir.Instr{}
		work := append([]*ir.Block(nil), defBlocks[s]...)
		onWork := map[*ir.Block]bool{}
		for _, b := range work {
			onWork[b] = true
		}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, fb := range df[b] {
				if phiAt[s][fb] != nil {
					continue
				}
				phi := &ir.Instr{
					Op: ir.OpPhi, Ty: a.ElemTy, Blk: fb,
					Args: make([]ir.Value, len(fb.Preds)),
					Hint: a.Hint,
				}
				// Assign a fresh ID by reusing the builder counter: append
				// then move to front.
				tmp := fb.Phi(a.ElemTy, a.Hint)
				fb.Instrs = fb.Instrs[:len(fb.Instrs)-1]
				phi.ID = tmp.ID
				for i := range phi.Args {
					phi.Args[i] = zeroValue(a.ElemTy)
				}
				fb.Instrs = append([]*ir.Instr{phi}, fb.Instrs...)
				phiAt[s][fb] = phi
				phiFor[phi] = s
				if !onWork[fb] {
					onWork[fb] = true
					work = append(work, fb)
				}
			}
		}
	}

	// Rename along the dominator tree.
	repl := map[*ir.Instr]ir.Value{} // dead load -> replacement
	dead := map[*ir.Instr]bool{}
	resolve := func(v ir.Value) ir.Value {
		for {
			in, ok := v.(*ir.Instr)
			if !ok {
				return v
			}
			r, ok := repl[in]
			if !ok {
				return v
			}
			v = r
		}
	}

	cur := make([]ir.Value, len(allocas))
	for s, a := range allocas {
		cur[s] = zeroValue(a.ElemTy)
	}

	var rename func(b *ir.Block)
	rename = func(b *ir.Block) {
		saved := append([]ir.Value(nil), cur...)
		defer func() { copy(cur, saved) }()

		for _, in := range b.Instrs {
			if s, isPhi := phiFor[in]; isPhi {
				cur[s] = in
				continue
			}
			for i, arg := range in.Args {
				in.Args[i] = resolve(arg)
			}
			switch in.Op {
			case ir.OpLoad:
				if a, ok := in.Args[0].(*ir.Instr); ok {
					if s, isSlot := slot[a]; isSlot {
						repl[in] = cur[s]
						dead[in] = true
					}
				}
			case ir.OpStore:
				if a, ok := in.Args[1].(*ir.Instr); ok {
					if s, isSlot := slot[a]; isSlot {
						cur[s] = in.Args[0]
						dead[in] = true
					}
				}
			case ir.OpAlloca:
				if _, isSlot := slot[in]; isSlot {
					dead[in] = true
				}
			}
		}
		for _, succ := range b.Succs {
			pi := predIndex(succ, b)
			for _, in := range succ.Instrs {
				if in.Op != ir.OpPhi {
					break
				}
				if s, isPhi := phiFor[in]; isPhi && pi >= 0 {
					in.Args[pi] = cur[s]
				}
			}
		}
		for _, child := range dt.Children(b) {
			rename(child)
		}
	}
	for _, root := range dt.Roots() {
		rename(root)
	}

	// Phi operands may still reference replaced loads (when the phi's
	// predecessor was renamed before the load's replacement settled —
	// resolve everything once more).
	f.Instrs(func(in *ir.Instr) {
		for i, arg := range in.Args {
			in.Args[i] = resolve(arg)
		}
	})

	// Remove dead instructions (also blocks unreachable phis keep their
	// zero placeholder operands, which is fine: they are never executed).
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			if !dead[in] {
				kept = append(kept, in)
			}
		}
		b.Instrs = kept
	}

	simplifyTrivialPhis(f)
}

func predIndex(b, p *ir.Block) int {
	for i, q := range b.Preds {
		if q == p {
			return i
		}
	}
	return -1
}

// simplifyTrivialPhis removes phis whose incoming values are all the same
// value (or the phi itself), iterating to a fixed point.
func simplifyTrivialPhis(f *ir.Func) {
	for {
		repl := map[*ir.Instr]ir.Value{}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpPhi {
					continue
				}
				var uniq ir.Value
				trivial := true
				for _, a := range in.Args {
					if a == ir.Value(in) {
						continue
					}
					if uniq == nil {
						uniq = a
					} else if uniq != a {
						trivial = false
						break
					}
				}
				if trivial && uniq != nil {
					repl[in] = uniq
				}
			}
		}
		if len(repl) == 0 {
			return
		}
		resolve := func(v ir.Value) ir.Value {
			for {
				in, ok := v.(*ir.Instr)
				if !ok {
					return v
				}
				r, ok := repl[in]
				if !ok {
					return v
				}
				v = r
			}
		}
		for _, b := range f.Blocks {
			kept := b.Instrs[:0]
			for _, in := range b.Instrs {
				if _, isDead := repl[in]; isDead {
					continue
				}
				for i, a := range in.Args {
					in.Args[i] = resolve(a)
				}
				kept = append(kept, in)
			}
			b.Instrs = kept
		}
	}
}
