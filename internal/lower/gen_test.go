package lower

import (
	"reflect"
	"testing"

	"scaf/internal/interp"
	"scaf/internal/lang"
	"scaf/internal/mcgen"
)

// TestRandomProgramsSSAEquivalence: for hundreds of random programs, the
// alloca-form and SSA-form executions must observably agree, and the SSA
// form must never execute more instructions.
func TestRandomProgramsSSAEquivalence(t *testing.T) {
	trials := 300
	if testing.Short() {
		trials = 40
	}
	for seed := int64(0); seed < int64(trials); seed++ {
		src := mcgen.New(seed).Program()
		file, err := lang.Parse("gen", src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", seed, err, src)
		}
		if err := lang.Check(file); err != nil {
			t.Fatalf("seed %d: check: %v\n%s", seed, err, src)
		}
		pre, err := Lower(file)
		if err != nil {
			t.Fatalf("seed %d: lower: %v\n%s", seed, err, src)
		}
		preRes, err := interp.Run(pre, interp.Options{MaxSteps: 5_000_000})
		if err != nil {
			t.Fatalf("seed %d: pre-SSA run: %v\n%s", seed, err, src)
		}

		post, err := Compile("gen", src)
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		postRes, err := interp.Run(post, interp.Options{MaxSteps: 5_000_000})
		if err != nil {
			t.Fatalf("seed %d: post-SSA run: %v\n%s", seed, err, src)
		}
		if !reflect.DeepEqual(preRes.Output, postRes.Output) {
			t.Fatalf("seed %d: outputs differ\n pre: %v\npost: %v\n%s",
				seed, preRes.Output, postRes.Output, src)
		}
		if postRes.Steps > preRes.Steps {
			t.Errorf("seed %d: SSA form slower (%d > %d)", seed, postRes.Steps, preRes.Steps)
		}
	}
}

// TestRandomProgramsDeterministic: running the same program twice yields
// identical observable results and step counts (the profiling substrate
// must be deterministic for the whole evaluation to be).
func TestRandomProgramsDeterministic(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 10
	}
	for seed := int64(1000); seed < int64(1000+trials); seed++ {
		src := mcgen.New(seed).Program()
		mod1, err := Compile("gen", src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		r1, err := interp.Run(mod1, interp.Options{MaxSteps: 5_000_000})
		if err != nil {
			t.Fatalf("seed %d: run1: %v", seed, err)
		}
		mod2, err := Compile("gen", src)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := interp.Run(mod2, interp.Options{MaxSteps: 5_000_000})
		if err != nil {
			t.Fatalf("seed %d: run2: %v", seed, err)
		}
		if !reflect.DeepEqual(r1.Output, r2.Output) || r1.Steps != r2.Steps {
			t.Fatalf("seed %d: nondeterministic execution", seed)
		}
	}
}
