package profile

import (
	"scaf/internal/interp"
	"scaf/internal/ir"
)

// ValueProfile detects predictable loads: loads that returned the same
// value on every dynamic execution during profiling (paper §4.2.2, the
// value-prediction profiler of Gabbay & Mendelson).
type ValueProfile struct {
	interp.BaseObserver
	stats map[*ir.Instr]*valueStat
}

type valueStat struct {
	count     int64
	value     uint64
	invariant bool
}

// NewValueProfile creates an empty value profiler.
func NewValueProfile() *ValueProfile {
	return &ValueProfile{stats: map[*ir.Instr]*valueStat{}}
}

func (p *ValueProfile) Load(in *ir.Instr, addr uint64, size int64, val uint64, o *interp.Object) {
	s := p.stats[in]
	if s == nil {
		p.stats[in] = &valueStat{count: 1, value: val, invariant: true}
		return
	}
	s.count++
	if s.value != val {
		s.invariant = false
	}
}

// Predictable reports whether load in returned one single value during
// profiling, and that value. Loads never executed are not predictable.
func (p *ValueProfile) Predictable(in *ir.Instr) (uint64, bool) {
	s := p.stats[in]
	if s == nil || !s.invariant {
		return 0, false
	}
	return s.value, true
}

// ExecCount returns how many times load in executed during profiling.
func (p *ValueProfile) ExecCount(in *ir.Instr) int64 {
	if s := p.stats[in]; s != nil {
		return s.count
	}
	return 0
}
