// Package profile implements the offline profilers that feed SCAF's
// speculation modules (paper §4.2.2): an edge profiler, a value-prediction
// profiler, a points-to profiler, an object-lifetime profiler, a
// pointer-residue profiler, and the loop-aware memory-dependence profiler
// used by the memory-speculation baseline. All of them observe executions
// of the interpreter.
package profile

import (
	"scaf/internal/cfg"
	"scaf/internal/interp"
	"scaf/internal/ir"
)

// LoopEntry is one activation of a loop on the tracker's stack.
type LoopEntry struct {
	Loop *cfg.Loop
	// Act is a globally unique activation (invocation) id.
	Act uint64
	// Iter counts iterations within this activation, starting at 0.
	Iter int64
	// liveObjs is used by the lifetime profiler: objects allocated in the
	// current iteration that have not been freed yet.
	liveObjs map[*interp.Object]bool
}

// Frame mirrors one interpreter call frame.
type Frame struct {
	Fn *ir.Func
	// CallSite is the call instruction in THIS frame currently executing a
	// callee (set just before the Call event pushes the next frame).
	CallSite *ir.Instr
	loops    []*LoopEntry
}

// IterListener is notified at loop-iteration boundaries.
type IterListener interface {
	// IterEnd fires when an iteration of e completes (including the last
	// one, just before the loop exits or its frame unwinds).
	IterEnd(e *LoopEntry)
	// LoopExit fires when the activation e ends.
	LoopExit(e *LoopEntry)
}

// Tracker maintains the dynamic loop-nest/call-stack state all the
// loop-sensitive profilers share. It must be registered BEFORE any
// profiler that reads it, so its state is current when they observe the
// same event.
type Tracker struct {
	interp.BaseObserver
	prog    *cfg.Program
	frames  []*Frame
	nextAct uint64
	iterLis []IterListener
}

// NewTracker creates a tracker over prog. Run registers the initial main
// frame via Begin.
func NewTracker(prog *cfg.Program) *Tracker { return &Tracker{prog: prog} }

// AddIterListener subscribes l to iteration boundaries.
func (t *Tracker) AddIterListener(l IterListener) { t.iterLis = append(t.iterLis, l) }

// Begin resets the tracker to a single main frame.
func (t *Tracker) Begin(main *ir.Func) {
	t.frames = []*Frame{{Fn: main}}
}

// Frames exposes the current frame stack (bottom first).
func (t *Tracker) Frames() []*Frame { return t.frames }

// Loops exposes the frame's active loop entries, outermost first.
func (f *Frame) Loops() []*LoopEntry { return f.loops }

// Top returns the current frame.
func (t *Tracker) Top() *Frame {
	if len(t.frames) == 0 {
		return nil
	}
	return t.frames[len(t.frames)-1]
}

// CallChain returns the call sites leading to the current frame, outermost
// first (empty in main).
func (t *Tracker) CallChain() []*ir.Instr {
	var out []*ir.Instr
	for _, fr := range t.frames[:max(len(t.frames)-1, 0)] {
		if fr.CallSite != nil {
			out = append(out, fr.CallSite)
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ActiveLoops invokes fn for every active loop entry, innermost frame
// last; rep is the instruction representing the current activity for that
// entry's loop: the current instruction for the top frame, or the
// call site through which control left the entry's frame.
func (t *Tracker) ActiveLoops(cur *ir.Instr, fn func(e *LoopEntry, rep *ir.Instr)) {
	for fi, fr := range t.frames {
		var rep *ir.Instr
		if fi == len(t.frames)-1 {
			rep = cur
		} else {
			rep = fr.CallSite
		}
		for _, e := range fr.loops {
			fn(e, rep)
		}
	}
}

func (t *Tracker) Call(site *ir.Instr, callee *ir.Func) {
	if top := t.Top(); top != nil {
		top.CallSite = site
	}
	t.frames = append(t.frames, &Frame{Fn: callee})
}

func (t *Tracker) Return(callee *ir.Func) {
	if top := t.Top(); top != nil {
		// Defensively close any loop activations that survived to return.
		for i := len(top.loops) - 1; i >= 0; i-- {
			t.endIter(top.loops[i])
			t.exitLoop(top.loops[i])
		}
	}
	if len(t.frames) > 0 {
		t.frames = t.frames[:len(t.frames)-1]
	}
	if top := t.Top(); top != nil {
		top.CallSite = nil
	}
}

func (t *Tracker) endIter(e *LoopEntry) {
	for _, l := range t.iterLis {
		l.IterEnd(e)
	}
}

func (t *Tracker) exitLoop(e *LoopEntry) {
	for _, l := range t.iterLis {
		l.LoopExit(e)
	}
}

func (t *Tracker) Edge(fn *ir.Func, from, to *ir.Block) {
	top := t.Top()
	if top == nil || top.Fn != fn {
		return
	}
	// Pop loops the edge leaves.
	for len(top.loops) > 0 {
		e := top.loops[len(top.loops)-1]
		if e.Loop.Contains(to) {
			break
		}
		t.endIter(e)
		t.exitLoop(e)
		top.loops = top.loops[:len(top.loops)-1]
	}
	// Header entry: back edge advances the iteration, outside entry starts
	// a new activation.
	forest := t.prog.Forests[fn]
	if l := forest.ByHeader[to]; l != nil {
		if len(top.loops) > 0 && top.loops[len(top.loops)-1].Loop == l {
			e := top.loops[len(top.loops)-1]
			t.endIter(e)
			e.Iter++
			if e.liveObjs != nil && len(e.liveObjs) > 0 {
				e.liveObjs = map[*interp.Object]bool{}
			}
		} else {
			t.nextAct++
			top.loops = append(top.loops, &LoopEntry{Loop: l, Act: t.nextAct})
		}
	}
}
