package profile

import (
	"scaf/internal/cfg"
	"scaf/internal/interp"
	"scaf/internal/ir"
)

// EdgeKey identifies a CFG edge.
type EdgeKey struct{ From, To *ir.Block }

// EdgeProfile counts block executions and edge traversals — the profile
// control speculation consumes (paper: never-executed blocks are the
// speculatively dead ones).
type EdgeProfile struct {
	interp.BaseObserver
	BlockCount map[*ir.Block]int64
	EdgeCount  map[EdgeKey]int64
	mod        *ir.Module
}

// NewEdgeProfile creates an empty edge profiler for module m.
func NewEdgeProfile(m *ir.Module) *EdgeProfile {
	return &EdgeProfile{
		BlockCount: map[*ir.Block]int64{},
		EdgeCount:  map[EdgeKey]int64{},
		mod:        m,
	}
}

func (p *EdgeProfile) Edge(fn *ir.Func, from, to *ir.Block) {
	p.BlockCount[to]++
	p.EdgeCount[EdgeKey{from, to}]++
}

func (p *EdgeProfile) Call(site *ir.Instr, callee *ir.Func) {
	p.BlockCount[callee.Entry()]++
}

// Finish accounts for main's entry block, which no edge or call reaches.
func (p *EdgeProfile) Finish() {
	if main := p.mod.FuncNamed("main"); main != nil {
		p.BlockCount[main.Entry()]++
	}
}

// Executed reports whether block b ran at least once during profiling.
func (p *EdgeProfile) Executed(b *ir.Block) bool { return p.BlockCount[b] > 0 }

// EdgeTaken reports whether the edge from→to was ever traversed.
func (p *EdgeProfile) EdgeTaken(from, to *ir.Block) bool {
	return p.EdgeCount[EdgeKey{from, to}] > 0
}

// SpecDead reports whether b is speculatively dead: never executed during
// profiling although its function ran. Functions that never ran at all
// provide no evidence, so their blocks are not considered spec-dead.
func (p *EdgeProfile) SpecDead(b *ir.Block) bool {
	return p.BlockCount[b] == 0 && p.BlockCount[b.Fn.Entry()] > 0
}

// BiasedEdges returns, for function fn, the set of CFG edges that were
// never traversed although their source block executed. These are the
// edges control speculation removes; the guarding branch is the source's
// terminator.
func (p *EdgeProfile) BiasedEdges(fn *ir.Func) []EdgeKey {
	var out []EdgeKey
	for _, b := range fn.Blocks {
		if p.BlockCount[b] == 0 || len(b.Succs) < 2 {
			continue
		}
		for _, s := range b.Succs {
			if !p.EdgeTaken(b, s) {
				out = append(out, EdgeKey{b, s})
			}
		}
	}
	return out
}

// LoopStat summarizes one loop's dynamic behaviour.
type LoopStat struct {
	Loop        *cfg.Loop
	Invocations int64
	HeaderExecs int64
	// Weight is the dynamic instruction count attributed to the loop's own
	// blocks (nested loops included, callees excluded).
	Weight int64
}

// AvgIters returns the average iteration count per invocation.
func (s *LoopStat) AvgIters() float64 {
	if s.Invocations == 0 {
		return 0
	}
	// The header executes once per iteration plus once for the final exit
	// test on each invocation.
	v := float64(s.HeaderExecs)/float64(s.Invocations) - 1
	if v < 0 {
		return 0
	}
	return v
}

// LoopStats derives per-loop statistics from the counts.
func (p *EdgeProfile) LoopStats(prog *cfg.Program) map[*cfg.Loop]*LoopStat {
	out := map[*cfg.Loop]*LoopStat{}
	for _, l := range prog.AllLoops() {
		st := &LoopStat{Loop: l, HeaderExecs: p.BlockCount[l.Header]}
		for _, pred := range l.Header.Preds {
			if !l.Contains(pred) {
				st.Invocations += p.EdgeCount[EdgeKey{pred, l.Header}]
			}
		}
		for b := range l.Blocks {
			st.Weight += p.BlockCount[b] * int64(len(b.Instrs))
		}
		out[l] = st
	}
	return out
}
