package profile

import (
	"fmt"
	"hash/fnv"

	"scaf/internal/interp"
	"scaf/internal/ir"
)

// maxCtxSuffix bounds context depth: accesses are attributed to every
// call-site-chain suffix up to this length, so queries can supply partial
// contexts (paper §3.2.2's calling-context parameter).
const maxCtxSuffix = 3

// CtxSuffixHash hashes a call-site chain suffix (innermost last).
func CtxSuffixHash(sites []*ir.Instr) uint64 {
	h := fnv.New64a()
	for _, s := range sites {
		var buf [8]byte
		id := uint64(s.ID)
		for i := 0; i < 8; i++ {
			buf[i] = byte(id >> (8 * uint(i)))
		}
		h.Write(buf[:])
		h.Write([]byte(s.Blk.Fn.Name))
	}
	return h.Sum64()
}

// Site identifies an allocation site: a Malloc/Alloca instruction or a
// global variable. Exactly one field is non-nil.
type Site struct {
	In *ir.Instr
	G  *ir.Global
}

// SiteOf returns the allocation site of an interpreter object.
func SiteOf(o *interp.Object) Site {
	if o.G != nil {
		return Site{G: o.G}
	}
	return Site{In: o.Site}
}

func (s Site) String() string {
	if s.G != nil {
		return "@" + s.G.GName
	}
	if s.In != nil {
		return fmt.Sprintf("%s:%s", s.In.Blk.Fn.Name, s.In)
	}
	return "?"
}

// Size returns the static size of objects allocated at the site, or -1
// when the size is dynamic (malloc with a non-constant byte count).
func (s Site) Size() int64 {
	if s.G != nil {
		return s.G.Elem.Size()
	}
	if s.In != nil {
		switch s.In.Op {
		case ir.OpAlloca:
			return s.In.ElemTy.Size()
		case ir.OpMalloc:
			if n, ok := ir.ConstIntValue(s.In.Args[0]); ok {
				return n
			}
		}
	}
	return -1
}

// PointsToProfile maps pointer SSA values to the allocation sites of the
// objects they were observed addressing (paper §4.2.2, the pointer-to-
// object profiler of speculative separation).
type PointsToProfile struct {
	interp.BaseObserver
	sets   map[ir.Value]map[Site]bool
	counts map[ir.Value]int64
	// ctxSets refines sets per call-site-chain suffix, enabling the
	// calling-context query parameter; tracker supplies the chain.
	ctxSets map[ctxKey]map[Site]bool
	tracker *Tracker
}

type ctxKey struct {
	v   ir.Value
	ctx uint64
}

// NewPointsToProfile creates an empty points-to profiler. A nil tracker
// disables context sensitivity.
func NewPointsToProfile(tracker *Tracker) *PointsToProfile {
	return &PointsToProfile{
		sets:    map[ir.Value]map[Site]bool{},
		counts:  map[ir.Value]int64{},
		ctxSets: map[ctxKey]map[Site]bool{},
		tracker: tracker,
	}
}

func (p *PointsToProfile) record(in *ir.Instr, o *interp.Object) {
	ptr, _, ok := in.PointerOperand()
	if !ok {
		return
	}
	site := SiteOf(o)
	set := p.sets[ptr]
	if set == nil {
		set = map[Site]bool{}
		p.sets[ptr] = set
	}
	set[site] = true
	p.counts[ptr]++
	if p.tracker != nil {
		chain := p.tracker.CallChain()
		for k := 1; k <= maxCtxSuffix && k <= len(chain); k++ {
			key := ctxKey{v: ptr, ctx: CtxSuffixHash(chain[len(chain)-k:])}
			cs := p.ctxSets[key]
			if cs == nil {
				cs = map[Site]bool{}
				p.ctxSets[key] = cs
			}
			cs[site] = true
		}
	}
}

// SitesOfCtx returns the points-to set of v observed under the given
// call-site-chain suffix (innermost last), or nil if never observed there.
func (p *PointsToProfile) SitesOfCtx(v ir.Value, sites []*ir.Instr) map[Site]bool {
	if len(sites) == 0 {
		return p.sets[v]
	}
	if len(sites) > maxCtxSuffix {
		sites = sites[len(sites)-maxCtxSuffix:]
	}
	return p.ctxSets[ctxKey{v: v, ctx: CtxSuffixHash(sites)}]
}

func (p *PointsToProfile) Load(in *ir.Instr, addr uint64, size int64, val uint64, o *interp.Object) {
	p.record(in, o)
}

func (p *PointsToProfile) Store(in *ir.Instr, addr uint64, size int64, val uint64, o *interp.Object) {
	p.record(in, o)
}

// SitesOf returns the observed points-to set of pointer value v, or nil
// if v was never observed addressing memory.
func (p *PointsToProfile) SitesOf(v ir.Value) map[Site]bool { return p.sets[v] }

// Observed reports whether pointer v was exercised during profiling.
func (p *PointsToProfile) Observed(v ir.Value) bool { return len(p.sets[v]) > 0 }

// ExecCount returns how many accesses were observed through v.
func (p *PointsToProfile) ExecCount(v ir.Value) int64 { return p.counts[v] }

// Disjoint reports whether the observed points-to sets of two pointers
// share no allocation site. Both pointers must have been observed.
func (p *PointsToProfile) Disjoint(a, b ir.Value) bool {
	sa, sb := p.sets[a], p.sets[b]
	if len(sa) == 0 || len(sb) == 0 {
		return false
	}
	for s := range sa {
		if sb[s] {
			return false
		}
	}
	return true
}

// OnlySite reports the single allocation site v points to, if exactly one
// was observed.
func (p *PointsToProfile) OnlySite(v ir.Value) (Site, bool) {
	set := p.sets[v]
	if len(set) != 1 {
		return Site{}, false
	}
	for s := range set {
		return s, true
	}
	return Site{}, false
}

// PointsOnlyInto reports whether every observed target of v belongs to the
// given site set.
func (p *PointsToProfile) PointsOnlyInto(v ir.Value, sites map[Site]bool) bool {
	set := p.sets[v]
	if len(set) == 0 {
		return false
	}
	for s := range set {
		if !sites[s] {
			return false
		}
	}
	return true
}
