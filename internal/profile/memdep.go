package profile

import (
	"scaf/internal/cfg"
	"scaf/internal/interp"
	"scaf/internal/ir"
)

// DepKind classifies memory dependences.
type DepKind int

const (
	Flow   DepKind = iota // store → load (true dependence)
	Anti                  // load → store
	Output                // store → store
)

func (k DepKind) String() string {
	switch k {
	case Flow:
		return "flow"
	case Anti:
		return "anti"
	}
	return "output"
}

// DepKey identifies one loop-relative observed dependence. Src and Dst are
// the instructions *as seen from the loop's own function*: an access in a
// callee is represented by the call site through which the loop reached it.
type DepKey struct {
	Loop  *cfg.Loop
	Src   *ir.Instr
	Dst   *ir.Instr
	Kind  DepKind
	Cross bool // cross-iteration (Src in a strictly earlier iteration)
}

type loopTag struct {
	act  uint64
	iter int64
	loop *cfg.Loop
	rep  *ir.Instr
}

type accessRec struct {
	tags []loopTag
}

// maxReadRecs bounds the per-word reader list; anti dependences beyond the
// cap within one write-free window are dropped (documented approximation).
const maxReadRecs = 16

// MemDepProfile is the loop-aware memory-dependence profiler (paper
// §4.2.2, after Chen et al.): it records which loop-relative dependences
// actually manifest, at 8-byte word granularity. It powers the
// memory-speculation baseline and the "observed deps" series of Fig. 8.
type MemDepProfile struct {
	interp.BaseObserver
	tracker   *Tracker
	lastWrite map[uint64]*accessRec
	reads     map[uint64][]*accessRec
	deps      map[DepKey]int64
}

// NewMemDepProfile creates a memory-dependence profiler reading loop state
// from tracker.
func NewMemDepProfile(tracker *Tracker) *MemDepProfile {
	return &MemDepProfile{
		tracker:   tracker,
		lastWrite: map[uint64]*accessRec{},
		reads:     map[uint64][]*accessRec{},
		deps:      map[DepKey]int64{},
	}
}

func (p *MemDepProfile) snap(cur *ir.Instr) *accessRec {
	rec := &accessRec{}
	p.tracker.ActiveLoops(cur, func(e *LoopEntry, rep *ir.Instr) {
		if rep == nil {
			return
		}
		rec.tags = append(rec.tags, loopTag{act: e.Act, iter: e.Iter, loop: e.Loop, rep: rep})
	})
	return rec
}

func (p *MemDepProfile) emit(from, to *accessRec, kind DepKind) {
	for _, tf := range from.tags {
		for _, tt := range to.tags {
			if tt.act != tf.act {
				continue
			}
			p.deps[DepKey{
				Loop:  tf.loop,
				Src:   tf.rep,
				Dst:   tt.rep,
				Kind:  kind,
				Cross: tt.iter > tf.iter,
			}]++
		}
	}
}

func sameRec(a, b *accessRec) bool {
	if len(a.tags) != len(b.tags) {
		return false
	}
	for i := range a.tags {
		if a.tags[i] != b.tags[i] {
			return false
		}
	}
	return true
}

func (p *MemDepProfile) Load(in *ir.Instr, addr uint64, size int64, val uint64, o *interp.Object) {
	rec := p.snap(in)
	if len(rec.tags) == 0 {
		return // outside any loop: no loop-relative dependence to record
	}
	if w := p.lastWrite[addr]; w != nil {
		p.emit(w, rec, Flow)
	}
	rs := p.reads[addr]
	if n := len(rs); n > 0 && sameRec(rs[n-1], rec) {
		return
	}
	if len(rs) < maxReadRecs {
		p.reads[addr] = append(rs, rec)
	}
}

func (p *MemDepProfile) Store(in *ir.Instr, addr uint64, size int64, val uint64, o *interp.Object) {
	rec := p.snap(in)
	for _, r := range p.reads[addr] {
		p.emit(r, rec, Anti)
	}
	if w := p.lastWrite[addr]; w != nil {
		p.emit(w, rec, Output)
	}
	if len(rec.tags) == 0 {
		// A write outside all loops still kills earlier records.
		delete(p.lastWrite, addr)
		delete(p.reads, addr)
		return
	}
	p.lastWrite[addr] = rec
	delete(p.reads, addr)
}

// Observed reports whether any dependence src→dst (of any kind) with the
// given iteration relation manifested within loop during profiling.
func (p *MemDepProfile) Observed(loop *cfg.Loop, src, dst *ir.Instr, cross bool) bool {
	for _, k := range []DepKind{Flow, Anti, Output} {
		if p.deps[DepKey{loop, src, dst, k, cross}] > 0 {
			return true
		}
	}
	return false
}

// Count returns the number of times the exact dependence manifested.
func (p *MemDepProfile) Count(k DepKey) int64 { return p.deps[k] }

// Deps exposes the raw dependence table.
func (p *MemDepProfile) Deps() map[DepKey]int64 { return p.deps }
