package profile

import (
	"scaf/internal/cfg"
	"scaf/internal/interp"
	"scaf/internal/ir"
)

// LoopSite pairs a loop with an allocation site.
type LoopSite struct {
	Loop *cfg.Loop
	Site Site
}

// LifetimeProfile implements the object-lifetime profiler (paper §4.2.2):
// per target loop it discovers
//
//   - read-only sites: allocation sites whose objects are accessed but
//     never written while the loop is active (including in callees), and
//   - short-lived sites: sites whose every object is allocated and freed
//     within a single iteration of the loop.
type LifetimeProfile struct {
	interp.BaseObserver
	tracker *Tracker

	roAccessed map[LoopSite]bool
	roWritten  map[LoopSite]bool

	slAllocated map[LoopSite]bool
	slViolated  map[LoopSite]bool
	objEntries  map[*interp.Object][]*LoopEntry
}

// NewLifetimeProfile creates a lifetime profiler reading loop state from
// tracker. It registers itself for iteration boundaries.
func NewLifetimeProfile(tracker *Tracker) *LifetimeProfile {
	p := &LifetimeProfile{
		tracker:     tracker,
		roAccessed:  map[LoopSite]bool{},
		roWritten:   map[LoopSite]bool{},
		slAllocated: map[LoopSite]bool{},
		slViolated:  map[LoopSite]bool{},
		objEntries:  map[*interp.Object][]*LoopEntry{},
	}
	tracker.AddIterListener(p)
	return p
}

func (p *LifetimeProfile) Load(in *ir.Instr, addr uint64, size int64, val uint64, o *interp.Object) {
	site := SiteOf(o)
	p.tracker.ActiveLoops(in, func(e *LoopEntry, rep *ir.Instr) {
		p.roAccessed[LoopSite{e.Loop, site}] = true
	})
}

func (p *LifetimeProfile) Store(in *ir.Instr, addr uint64, size int64, val uint64, o *interp.Object) {
	site := SiteOf(o)
	p.tracker.ActiveLoops(in, func(e *LoopEntry, rep *ir.Instr) {
		k := LoopSite{e.Loop, site}
		p.roAccessed[k] = true
		p.roWritten[k] = true
	})
}

func (p *LifetimeProfile) Alloc(o *interp.Object) {
	site := SiteOf(o)
	p.tracker.ActiveLoops(nil, func(e *LoopEntry, rep *ir.Instr) {
		p.slAllocated[LoopSite{e.Loop, site}] = true
		if e.liveObjs == nil {
			e.liveObjs = map[*interp.Object]bool{}
		}
		e.liveObjs[o] = true
		p.objEntries[o] = append(p.objEntries[o], e)
	})
}

func (p *LifetimeProfile) Free(in *ir.Instr, o *interp.Object) {
	for _, e := range p.objEntries[o] {
		if e.liveObjs != nil {
			delete(e.liveObjs, o)
		}
	}
	delete(p.objEntries, o)
}

// IterEnd marks every object that survived the ending iteration as a
// short-lived violation for its site.
func (p *LifetimeProfile) IterEnd(e *LoopEntry) {
	for o := range e.liveObjs {
		p.slViolated[LoopSite{e.Loop, SiteOf(o)}] = true
	}
}

// LoopExit is part of IterListener; iteration cleanup already happened.
func (p *LifetimeProfile) LoopExit(e *LoopEntry) {}

// ReadOnly reports whether objects of site were accessed but never written
// while loop was active.
func (p *LifetimeProfile) ReadOnly(loop *cfg.Loop, site Site) bool {
	k := LoopSite{loop, site}
	return p.roAccessed[k] && !p.roWritten[k]
}

// ReadOnlySites lists the read-only sites of a loop.
func (p *LifetimeProfile) ReadOnlySites(loop *cfg.Loop) []Site {
	var out []Site
	for k := range p.roAccessed {
		if k.Loop == loop && !p.roWritten[k] {
			out = append(out, k.Site)
		}
	}
	return out
}

// ShortLived reports whether every object of site observed under loop was
// allocated and freed within one iteration.
func (p *LifetimeProfile) ShortLived(loop *cfg.Loop, site Site) bool {
	k := LoopSite{loop, site}
	return p.slAllocated[k] && !p.slViolated[k]
}

// ShortLivedSites lists the short-lived sites of a loop.
func (p *LifetimeProfile) ShortLivedSites(loop *cfg.Loop) []Site {
	var out []Site
	for k := range p.slAllocated {
		if k.Loop == loop && !p.slViolated[k] {
			out = append(out, k.Site)
		}
	}
	return out
}
