package profile

import (
	"sort"

	"scaf/internal/cfg"
	"scaf/internal/interp"
)

// Data bundles every profile one training run produces. It is the input
// the speculation modules consume.
type Data struct {
	Prog      *cfg.Program
	Edge      *EdgeProfile
	Value     *ValueProfile
	PointsTo  *PointsToProfile
	Residue   *ResidueProfile
	Lifetime  *LifetimeProfile
	MemDep    *MemDepProfile
	Steps     int64
	Output    []string
	LoopStats map[*cfg.Loop]*LoopStat
}

// Collect runs the program once under all profilers ("the train input
// run") and returns the gathered profiles.
func Collect(prog *cfg.Program, opts interp.Options) (*Data, error) {
	tracker := NewTracker(prog)
	d := &Data{
		Prog:  prog,
		Edge:  NewEdgeProfile(prog.Mod),
		Value: NewValueProfile(),

		Residue: NewResidueProfile(),
	}
	d.PointsTo = NewPointsToProfile(tracker)
	d.Lifetime = NewLifetimeProfile(tracker)
	d.MemDep = NewMemDepProfile(tracker)

	main := prog.Mod.FuncNamed("main")
	if main != nil {
		tracker.Begin(main)
	}
	// The tracker MUST observe first so loop state is current when the
	// loop-sensitive profilers see the same event.
	opts.Observers = append([]interp.Observer{
		tracker, d.Edge, d.Value, d.PointsTo, d.Residue, d.Lifetime, d.MemDep,
	}, opts.Observers...)

	res, err := interp.Run(prog.Mod, opts)
	if err != nil {
		return nil, err
	}
	d.Edge.Finish()
	d.Steps = res.Steps
	d.Output = res.Output
	d.LoopStats = d.Edge.LoopStats(prog)
	return d, nil
}

// HotLoopParams mirrors the paper's hot-loop selection (§5): loops that
// account for at least MinWeightFrac of the dynamic instruction count and
// iterate at least MinAvgIters times per invocation on average.
type HotLoopParams struct {
	MinWeightFrac float64 // default 0.10
	MinAvgIters   float64 // default 50
}

// DefaultHotLoopParams returns the paper's thresholds.
func DefaultHotLoopParams() HotLoopParams {
	return HotLoopParams{MinWeightFrac: 0.10, MinAvgIters: 50}
}

// HotLoops selects hot loops, heaviest first.
func (d *Data) HotLoops(p HotLoopParams) []*cfg.Loop {
	var out []*cfg.Loop
	for l, st := range d.LoopStats {
		if d.Steps == 0 {
			continue
		}
		frac := float64(st.Weight) / float64(d.Steps)
		if frac >= p.MinWeightFrac && st.AvgIters() >= p.MinAvgIters {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		wi, wj := d.LoopStats[out[i]].Weight, d.LoopStats[out[j]].Weight
		if wi != wj {
			return wi > wj
		}
		return out[i].Name() < out[j].Name()
	})
	return out
}

// LoopWeightFrac returns the fraction of dynamic instructions spent in l.
func (d *Data) LoopWeightFrac(l *cfg.Loop) float64 {
	if d.Steps == 0 {
		return 0
	}
	return float64(d.LoopStats[l].Weight) / float64(d.Steps)
}
