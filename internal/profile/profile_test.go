package profile

import (
	"testing"

	"scaf/internal/cfg"
	"scaf/internal/interp"
	"scaf/internal/ir"
	"scaf/internal/lower"
)

func collect(t *testing.T, src string) *Data {
	t.Helper()
	m, err := lower.Compile("test", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	prog := cfg.NewProgram(m)
	d, err := Collect(prog, interp.Options{})
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	return d
}

// findLoop returns the single loop of the named function whose header
// name contains hdr, or the function's only loop when hdr is "".
func findLoop(t *testing.T, d *Data, fn string, hdr string) *cfg.Loop {
	t.Helper()
	f := d.Prog.Mod.FuncNamed(fn)
	if f == nil {
		t.Fatalf("no function %s", fn)
	}
	forest := d.Prog.Forests[f]
	if hdr == "" {
		if len(forest.All) != 1 {
			t.Fatalf("%s has %d loops, want 1", fn, len(forest.All))
		}
		return forest.All[0]
	}
	for _, l := range forest.All {
		if l.Header.Name == hdr {
			return l
		}
	}
	t.Fatalf("no loop with header %s in %s", hdr, fn)
	return nil
}

const biasedProg = `
int data[64];
int errors;

void main() {
    for (int i = 0; i < 1000; i++) {
        int v = i % 64;
        if (v > 9999) {        // never taken during profiling
            errors = errors + 1;
        } else {
            data[v] = v;
        }
    }
    print(errors);
}
`

func TestEdgeProfileBias(t *testing.T) {
	d := collect(t, biasedProg)
	main := d.Prog.Mod.FuncNamed("main")
	biased := d.Edge.BiasedEdges(main)
	if len(biased) != 1 {
		t.Fatalf("biased edges = %d, want 1", len(biased))
	}
	// The rare block (storing to errors) must be spec-dead.
	rare := biased[0].To
	if !d.Edge.SpecDead(rare) {
		t.Errorf("rare block %s not spec-dead", rare)
	}
	if d.Edge.SpecDead(main.Entry()) {
		t.Error("entry must not be spec-dead")
	}
	// Loop stats: one loop, 1000 iterations, 1 invocation.
	l := findLoop(t, d, "main", "")
	st := d.LoopStats[l]
	if st.Invocations != 1 {
		t.Errorf("invocations = %d", st.Invocations)
	}
	if got := st.AvgIters(); got < 999 || got > 1001 {
		t.Errorf("avg iters = %f", got)
	}
	if len(d.HotLoops(DefaultHotLoopParams())) != 1 {
		t.Errorf("hot loops = %d, want 1", len(d.HotLoops(DefaultHotLoopParams())))
	}
}

const valueProg = `
int config;
int sink;

void main() {
    config = 42;
    int s = 0;
    for (int i = 0; i < 200; i++) {
        s += config;      // invariant load -> predictable
        sink = i;         // varying store
        s += sink;        // varying load -> not predictable
    }
    print(s);
}
`

func TestValueProfile(t *testing.T) {
	d := collect(t, valueProg)
	main := d.Prog.Mod.FuncNamed("main")
	cfgG := d.Prog.Mod.GlobalNamed("config")
	sinkG := d.Prog.Mod.GlobalNamed("sink")
	var cfgLoad, sinkLoad *ir.Instr
	main.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpLoad {
			if in.Args[0] == ir.Value(cfgG) {
				cfgLoad = in
			}
			if in.Args[0] == ir.Value(sinkG) {
				sinkLoad = in
			}
		}
	})
	if cfgLoad == nil || sinkLoad == nil {
		t.Fatalf("loads not found:\n%s", ir.FormatFunc(main))
	}
	if v, ok := d.Value.Predictable(cfgLoad); !ok || v != 42 {
		t.Errorf("config load: predictable=%v v=%d, want 42", ok, v)
	}
	if _, ok := d.Value.Predictable(sinkLoad); ok {
		t.Error("sink load should not be predictable")
	}
	if d.Value.ExecCount(cfgLoad) != 200 {
		t.Errorf("config load count = %d", d.Value.ExecCount(cfgLoad))
	}
}

const heapProg = `
struct item { int weight; int id; };
int table[32];
int out;

void work(int n) {
    for (int i = 0; i < n; i++) {
        struct item* it = malloc(struct item, 1);   // short-lived
        it->weight = table[i % 32];                 // table read-only here
        it->id = i;
        out = out + it->weight + it->id;
        free(it);
    }
}

void main() {
    for (int i = 0; i < 32; i++) { table[i] = i * 3; }
    work(500);
    print(out);
}
`

func TestPointsToAndLifetime(t *testing.T) {
	d := collect(t, heapProg)
	work := d.Prog.Mod.FuncNamed("work")
	l := findLoop(t, d, "work", "")

	// Find the malloc site and the table global site.
	var mallocSite Site
	work.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpMalloc {
			mallocSite = Site{In: in}
		}
	})
	tableSite := Site{G: d.Prog.Mod.GlobalNamed("table")}
	outSite := Site{G: d.Prog.Mod.GlobalNamed("out")}

	if !d.Lifetime.ShortLived(l, mallocSite) {
		t.Error("malloc site should be short-lived for the work loop")
	}
	if !d.Lifetime.ReadOnly(l, tableSite) {
		t.Error("table should be read-only in the work loop")
	}
	if d.Lifetime.ReadOnly(l, outSite) {
		t.Error("out is written in the loop; not read-only")
	}
	if d.Lifetime.ShortLived(l, tableSite) {
		t.Error("table is not allocated under the loop; not short-lived")
	}

	// Points-to: the field store pointers must point only into the malloc
	// site.
	work.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpStore {
			ptr := in.Args[1]
			if fi, ok := ptr.(*ir.Instr); ok && fi.Op == ir.OpField {
				if s, ok := d.PointsTo.OnlySite(ptr); !ok || s != mallocSite {
					t.Errorf("field store pointer should point only to malloc site, got %v ok=%v", s, ok)
				}
			}
		}
	})
}

const survivorProg = `
struct n { int v; struct n* next; };
struct n* keep;
void main() {
    keep = 0;
    for (int i = 0; i < 100; i++) {
        struct n* x = malloc(struct n, 1);  // survives the iteration
        x->v = i;
        x->next = keep;
        keep = x;
    }
    print(keep->v);
}
`

func TestShortLivedViolation(t *testing.T) {
	d := collect(t, survivorProg)
	l := findLoop(t, d, "main", "")
	var site Site
	d.Prog.Mod.FuncNamed("main").Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpMalloc {
			site = Site{In: in}
		}
	})
	if d.Lifetime.ShortLived(l, site) {
		t.Error("surviving allocations must not be short-lived")
	}
}

const depProg = `
int buf[128];
int acc;

void main() {
    for (int i = 0; i < 300; i++) {
        buf[i % 128] = i;        // store
        acc = acc + buf[i % 128]; // load of same slot, same iteration
    }
    print(acc);
}
`

func TestMemDepProfile(t *testing.T) {
	d := collect(t, depProg)
	l := findLoop(t, d, "main", "")
	main := d.Prog.Mod.FuncNamed("main")
	bufG := d.Prog.Mod.GlobalNamed("buf")

	var bufStore, bufLoad *ir.Instr
	main.Instrs(func(in *ir.Instr) {
		ptr, _, ok := in.PointerOperand()
		if !ok {
			return
		}
		idx, isIdx := ptr.(*ir.Instr)
		if !isIdx || idx.Op != ir.OpIndex {
			return
		}
		base, isCast := idx.Args[0].(*ir.Instr)
		if !isCast || base.Args[0] != ir.Value(bufG) {
			return
		}
		if in.Op == ir.OpStore {
			bufStore = in
		} else if in.Op == ir.OpLoad {
			bufLoad = in
		}
	})
	if bufStore == nil || bufLoad == nil {
		t.Fatalf("buf accesses not found:\n%s", ir.FormatFunc(main))
	}
	// Intra-iteration flow dep store->load must be observed.
	if !d.MemDep.Observed(l, bufStore, bufLoad, false) {
		t.Error("intra-iteration flow dep not observed")
	}
	// Cross-iteration output dep store->store (same slot 128 iterations
	// later) must be observed.
	if !d.MemDep.Observed(l, bufStore, bufStore, true) {
		t.Error("cross-iteration output dep not observed")
	}
	// Cross-iteration anti dep load->store.
	if !d.MemDep.Observed(l, bufLoad, bufStore, true) {
		t.Error("cross-iteration anti dep not observed")
	}
	// No intra-iteration dep load->store on the same slot (load happens
	// after the store within an iteration... anti load->store intra would
	// require a second store after the load).
	if d.MemDep.Observed(l, bufLoad, bufStore, false) {
		t.Error("unexpected intra-iteration anti dep")
	}
}

const calleeDepProg = `
int state;

void bump() { state = state + 1; }

void main() {
    for (int i = 0; i < 200; i++) {
        bump();
    }
    print(state);
}
`

func TestCalleeDepsAttributedToCallSite(t *testing.T) {
	d := collect(t, calleeDepProg)
	l := findLoop(t, d, "main", "")
	main := d.Prog.Mod.FuncNamed("main")
	var call *ir.Instr
	main.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpCall && in.Callee != nil {
			call = in
		}
	})
	if call == nil {
		t.Fatal("call not found")
	}
	// The cross-iteration dependence through `state` must surface as
	// call->call at the loop level.
	if !d.MemDep.Observed(l, call, call, true) {
		t.Error("cross-iteration dep between call sites not observed")
	}
}

func TestResidueProfileFields(t *testing.T) {
	d := collect(t, `
struct pair { int a; int b; };
int outA;
int outB;
void main() {
    struct pair* p = malloc(struct pair, 64);
    for (int i = 0; i < 64; i++) {
        p[i].a = i;
        p[i].b = i * 2;
    }
    print(p[3].a + p[5].b);
}`)
	main := d.Prog.Mod.FuncNamed("main")
	var storeA, storeB *ir.Instr
	main.Instrs(func(in *ir.Instr) {
		if in.Op != ir.OpStore {
			return
		}
		if f, ok := in.Args[1].(*ir.Instr); ok && f.Op == ir.OpField {
			if f.FieldIdx == 0 {
				storeA = in
			} else {
				storeB = in
			}
		}
	})
	if storeA == nil || storeB == nil {
		t.Fatalf("field stores not found:\n%s", ir.FormatFunc(main))
	}
	pa, _, _ := storeA.PointerOperand()
	pb, _, _ := storeB.PointerOperand()
	ma, oka := d.Residue.Mask(pa)
	mb, okb := d.Residue.Mask(pb)
	if !oka || !okb {
		t.Fatal("residues not observed")
	}
	// struct pair is 16 bytes and allocations are 16-aligned: field a is
	// always at residue 0, field b at residue 8.
	if ma != 1<<0 {
		t.Errorf("mask(a) = %#x, want 0x1", ma)
	}
	if mb != 1<<8 {
		t.Errorf("mask(b) = %#x, want 0x100", mb)
	}
	if !d.Residue.DisjointAccesses(pa, 8, pb, 8) {
		t.Error("field accesses should be residue-disjoint")
	}
	if d.Residue.DisjointAccesses(pa, 16, pb, 8) {
		t.Error("16-byte access overlaps everything")
	}
}

func TestNestedLoopTracking(t *testing.T) {
	d := collect(t, `
int grid[16][16];
int total;
void main() {
    for (int i = 0; i < 100; i++) {
        for (int j = 0; j < 16; j++) {
            grid[i % 16][j] = i + j;
        }
        total = total + grid[i % 16][0];
    }
    print(total);
}`)
	outer := findLoop(t, d, "main", "for_head")
	if outer.Depth != 1 {
		// header naming depends on block creation order; find by depth.
		for _, l := range d.Prog.Forests[d.Prog.Mod.FuncNamed("main")].All {
			if l.Depth == 1 {
				outer = l
			}
		}
	}
	st := d.LoopStats[outer]
	if st.Invocations != 1 {
		t.Errorf("outer invocations = %d", st.Invocations)
	}
	var inner *cfg.Loop
	for _, l := range d.Prog.Forests[d.Prog.Mod.FuncNamed("main")].All {
		if l.Depth == 2 {
			inner = l
		}
	}
	if inner == nil {
		t.Fatal("no inner loop")
	}
	ist := d.LoopStats[inner]
	if ist.Invocations != 100 {
		t.Errorf("inner invocations = %d, want 100", ist.Invocations)
	}
	if got := ist.AvgIters(); got < 15.5 || got > 16.5 {
		t.Errorf("inner avg iters = %f, want ~16", got)
	}
}

func TestCallChainAndContextSensitivity(t *testing.T) {
	d := collect(t, `
int* bufA;
int* bufB;
int out;
void touch(int* p) {
    for (int i = 0; i < 60; i++) { p[i % 8] = i; }
}
void main() {
    bufA = malloc(int, 8);
    bufB = malloc(int, 8);
    touch(bufA);
    touch(bufB);
    int* a = bufA;
    out = a[0];
    print(out);
}`)
	// Locate the store pointer inside touch and the two call sites.
	var ptr ir.Value
	d.Prog.Mod.FuncNamed("touch").Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpStore {
			ptr, _, _ = in.PointerOperand()
		}
	})
	var calls []*ir.Instr
	var sites []Site
	d.Prog.Mod.FuncNamed("main").Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpCall && in.Callee != nil {
			calls = append(calls, in)
		}
		if in.Op == ir.OpMalloc {
			sites = append(sites, Site{In: in})
		}
	})
	if ptr == nil || len(calls) != 2 || len(sites) != 2 {
		t.Fatalf("setup failed: ptr=%v calls=%d sites=%d", ptr, len(calls), len(sites))
	}
	// Context-insensitive: both sites.
	all := d.PointsTo.SitesOf(ptr)
	if len(all) != 2 {
		t.Fatalf("insensitive sites = %v", all)
	}
	// Per-call-site: exactly one each, and the right one.
	s1 := d.PointsTo.SitesOfCtx(ptr, []*ir.Instr{calls[0]})
	s2 := d.PointsTo.SitesOfCtx(ptr, []*ir.Instr{calls[1]})
	if len(s1) != 1 || !s1[sites[0]] {
		t.Errorf("ctx call1 sites = %v, want {%v}", s1, sites[0])
	}
	if len(s2) != 1 || !s2[sites[1]] {
		t.Errorf("ctx call2 sites = %v, want {%v}", s2, sites[1])
	}
	// Empty context falls back to the insensitive set.
	if got := d.PointsTo.SitesOfCtx(ptr, nil); len(got) != 2 {
		t.Errorf("nil ctx = %v", got)
	}
}

func TestCtxSuffixHashProperties(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.Void)
	callee := m.NewFunc("g", ir.Void)
	ce := callee.NewBlock("entry")
	ce.Ret()
	b := f.NewBlock("entry")
	c1 := b.Call(callee)
	c2 := b.Call(callee)
	b.Ret()

	h1 := CtxSuffixHash([]*ir.Instr{c1})
	h2 := CtxSuffixHash([]*ir.Instr{c2})
	if h1 == h2 {
		t.Error("different call sites must hash differently")
	}
	if CtxSuffixHash([]*ir.Instr{c1}) != h1 {
		t.Error("hash must be deterministic")
	}
	if CtxSuffixHash([]*ir.Instr{c1, c2}) == CtxSuffixHash([]*ir.Instr{c2, c1}) {
		t.Error("hash must be order-sensitive")
	}
}
