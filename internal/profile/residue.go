package profile

import (
	"scaf/internal/interp"
	"scaf/internal/ir"
)

// ResidueProfile records, for every pointer SSA value, the set of values
// its four least-significant bits took during profiling (paper §4.2.3,
// pointer-residue speculation after Johnson).
type ResidueProfile struct {
	interp.BaseObserver
	masks  map[ir.Value]uint16
	counts map[ir.Value]int64
}

// NewResidueProfile creates an empty residue profiler.
func NewResidueProfile() *ResidueProfile {
	return &ResidueProfile{masks: map[ir.Value]uint16{}, counts: map[ir.Value]int64{}}
}

func (p *ResidueProfile) record(in *ir.Instr, addr uint64) {
	ptr, _, ok := in.PointerOperand()
	if !ok {
		return
	}
	p.masks[ptr] |= 1 << (addr & 15)
	p.counts[ptr]++
}

func (p *ResidueProfile) Load(in *ir.Instr, addr uint64, size int64, val uint64, o *interp.Object) {
	p.record(in, addr)
}

func (p *ResidueProfile) Store(in *ir.Instr, addr uint64, size int64, val uint64, o *interp.Object) {
	p.record(in, addr)
}

// Mask returns the residue bitmask of pointer v (bit i set iff residue i
// was observed) and whether v was observed at all.
func (p *ResidueProfile) Mask(v ir.Value) (uint16, bool) {
	m, ok := p.masks[v]
	return m, ok
}

// ExecCount returns how many accesses were observed through v.
func (p *ResidueProfile) ExecCount(v ir.Value) int64 { return p.counts[v] }

// expand widens a residue mask by an access of size bytes: an access at
// residue r touches residues r..r+size-1 (mod 16).
func expand(mask uint16, size int64) uint16 {
	if size >= 16 {
		return 0xffff
	}
	var out uint16
	for r := 0; r < 16; r++ {
		if mask&(1<<r) == 0 {
			continue
		}
		for i := int64(0); i < size; i++ {
			out |= 1 << ((r + int(i)) & 15)
		}
	}
	return out
}

// DisjointAccesses reports whether accesses of the given sizes through the
// two pointers can never overlap according to their observed residues.
func (p *ResidueProfile) DisjointAccesses(a ir.Value, sizeA int64, b ir.Value, sizeB int64) bool {
	ma, oka := p.Mask(a)
	mb, okb := p.Mask(b)
	if !oka || !okb {
		return false
	}
	return expand(ma, sizeA)&expand(mb, sizeB) == 0
}
