package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// DefaultWorkTolerance is the fractional p50-work regression the gate
// allows before failing (20%, per the CI policy).
const DefaultWorkTolerance = 0.20

// CompareReports checks a fresh report against a committed baseline and
// returns one message per violation (empty: the gate passes). Two
// classes of violation exist, mirroring what the gate protects:
//
//   - answer drift: any change to the answer distribution — %NoDep per
//     scheme, query counts, hot-loop counts, top-level query volume, or
//     a benchmark appearing/disappearing. Answers are exact; there is no
//     tolerance.
//   - work regression: the p50 per-query module-evals cost growing more
//     than tol (fractional). Module evals are deterministic and
//     machine-independent, unlike wall clock, so the committed baseline
//     stays valid on any CI host. Wall-clock fields are never compared.
//
// Getting FASTER is never a violation; refresh the baseline to bank it.
func CompareReports(base, fresh *Report, tol float64) []string {
	var fails []string
	baseBy := reportByName(base)
	freshBy := reportByName(fresh)

	names := make([]string, 0, len(baseBy))
	for name := range baseBy {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fb, ok := freshBy[name]
		if !ok {
			fails = append(fails, fmt.Sprintf("%s: present in baseline, missing from fresh report", name))
			continue
		}
		fails = append(fails, compareBench(baseBy[name], fb, tol)...)
	}
	freshNames := make([]string, 0, len(freshBy))
	for name := range freshBy {
		if _, ok := baseBy[name]; !ok {
			freshNames = append(freshNames, name)
		}
	}
	sort.Strings(freshNames)
	for _, name := range freshNames {
		fails = append(fails, fmt.Sprintf("%s: present in fresh report, missing from baseline", name))
	}
	return fails
}

func reportByName(r *Report) map[string]*ReportBench {
	out := map[string]*ReportBench{}
	for i := range r.Benchmarks {
		out[r.Benchmarks[i].Name] = &r.Benchmarks[i]
	}
	return out
}

func compareBench(base, fresh *ReportBench, tol float64) []string {
	var fails []string
	drift := func(format string, args ...any) {
		fails = append(fails, fmt.Sprintf("%s: answer drift: %s", base.Name, fmt.Sprintf(format, args...)))
	}
	if base.HotLoops != fresh.HotLoops {
		drift("hot loops %d -> %d", base.HotLoops, fresh.HotLoops)
	}
	if base.Queries != fresh.Queries {
		drift("dependence queries %d -> %d", base.Queries, fresh.Queries)
	}

	schemes := make([]string, 0, len(base.NoDepPct))
	for scheme := range base.NoDepPct {
		schemes = append(schemes, scheme)
	}
	sort.Strings(schemes)
	for _, scheme := range schemes {
		bv := base.NoDepPct[scheme]
		fv, ok := fresh.NoDepPct[scheme]
		if !ok {
			drift("scheme %s missing from fresh report", scheme)
			continue
		}
		// Exact up to float formatting noise: %NoDep is a ratio of integer
		// query counts, so any real change moves it far beyond 1e-9.
		if math.Abs(bv-fv) > 1e-9 {
			drift("%s %%NoDep %.6f -> %.6f", scheme, bv, fv)
		}
		if bc, fc := base.Counters[scheme], fresh.Counters[scheme]; bc.TopQueries != fc.TopQueries {
			drift("%s top-level queries %d -> %d", scheme, bc.TopQueries, fc.TopQueries)
		}

		bl, haveBase := base.Latency[scheme]
		fl, haveFresh := fresh.Latency[scheme]
		switch {
		case !haveBase:
			fails = append(fails, fmt.Sprintf(
				"%s: baseline has no %s latency summary — regenerate it with latency recording on",
				base.Name, scheme))
		case !haveFresh:
			fails = append(fails, fmt.Sprintf(
				"%s: fresh report has no %s latency summary — run the gate with latency recording on",
				base.Name, scheme))
		case float64(fl.P50WorkEvals) > float64(bl.P50WorkEvals)*(1+tol):
			fails = append(fails, fmt.Sprintf(
				"%s: %s p50 query work regressed %d -> %d module evals (>%d%% over baseline)",
				base.Name, scheme, bl.P50WorkEvals, fl.P50WorkEvals, int(tol*100)))
		}
	}
	for scheme := range fresh.NoDepPct {
		if _, ok := base.NoDepPct[scheme]; !ok {
			drift("scheme %s missing from baseline", scheme)
		}
	}

	// Speculative-execution counters: compared exactly when both reports
	// carry them (they are deterministic; see ReportExec), skipped when
	// the baseline predates -execute so older baselines stay valid. A
	// baseline WITH exec counters does require them fresh — dropping the
	// pass would silently un-gate the runtime.
	switch {
	case base.Exec == nil:
	case fresh.Exec == nil:
		fails = append(fails, fmt.Sprintf(
			"%s: baseline has exec counters but fresh report does not — run the gate with -execute",
			base.Name))
	default:
		if be, fe := base.Exec.stripWall(), fresh.Exec.stripWall(); be != fe {
			drift("exec counters diverged:\n  baseline: %+v\n  fresh:    %+v", be, fe)
		}
	}
	return fails
}

// ReadReport parses a report written by WriteReport.
func ReadReport(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("bench: decoding report: %w", err)
	}
	return &rep, nil
}
