package bench

import (
	"fmt"
	"sort"

	"scaf"
	"scaf/internal/cfg"
	"scaf/internal/pdg"
)

// Benchmark is one loaded, profiled benchmark program.
type Benchmark struct {
	Name string
	Sys  *scaf.System
	Hot  []*cfg.Loop
}

// Suite is the loaded benchmark collection.
type Suite struct {
	Benchmarks []*Benchmark
}

// Load compiles and profiles one benchmark by name.
func Load(name string) (*Benchmark, error) {
	src, ok := Sources[name]
	if !ok {
		return nil, fmt.Errorf("bench: unknown benchmark %q", name)
	}
	sys, err := scaf.Load(name, src, scaf.Options{})
	if err != nil {
		return nil, fmt.Errorf("bench: %s: %w", name, err)
	}
	return &Benchmark{Name: name, Sys: sys, Hot: sys.HotLoops()}, nil
}

// LoadSuite loads the given benchmarks (all 16 when names is empty).
func LoadSuite(names ...string) (*Suite, error) {
	if len(names) == 0 {
		names = Names()
	}
	s := &Suite{}
	for _, n := range names {
		b, err := Load(n)
		if err != nil {
			return nil, err
		}
		s.Benchmarks = append(s.Benchmarks, b)
	}
	return s, nil
}

// Analysis holds one benchmark's PDG results under every scheme.
type Analysis struct {
	B    *Benchmark
	CAF  map[*cfg.Loop]*pdg.LoopResult
	Conf map[*cfg.Loop]*pdg.LoopResult
	SCAF map[*cfg.Loop]*pdg.LoopResult
}

// Analyze runs the PDG client over the benchmark's hot loops under CAF,
// confluence, and SCAF.
func Analyze(b *Benchmark) *Analysis {
	a := &Analysis{
		B:    b,
		CAF:  map[*cfg.Loop]*pdg.LoopResult{},
		Conf: map[*cfg.Loop]*pdg.LoopResult{},
		SCAF: map[*cfg.Loop]*pdg.LoopResult{},
	}
	client := b.Sys.Client()
	for _, scheme := range []scaf.Scheme{scaf.SchemeCAF, scaf.SchemeConfluence, scaf.SchemeSCAF} {
		o := b.Sys.Orchestrator(scheme)
		for _, l := range b.Hot {
			res := client.AnalyzeLoop(o, l)
			switch scheme {
			case scaf.SchemeCAF:
				a.CAF[l] = res
			case scaf.SchemeConfluence:
				a.Conf[l] = res
			default:
				a.SCAF[l] = res
			}
		}
	}
	return a
}

// AnalyzeSuite analyzes every benchmark.
func AnalyzeSuite(s *Suite) []*Analysis {
	out := make([]*Analysis, len(s.Benchmarks))
	for i, b := range s.Benchmarks {
		out[i] = Analyze(b)
	}
	return out
}

// QueryClass buckets one dependence query for the Fig. 8 stack. The
// buckets are mutually exclusive and ordered bottom-up as in the figure.
type QueryClass int

const (
	// ClassCAF: disproven by memory analysis alone.
	ClassCAF QueryClass = iota
	// ClassConfluence: additionally removed by isolated cheap speculation.
	ClassConfluence
	// ClassSCAF: additionally removed only via collaboration.
	ClassSCAF
	// ClassMemSpec: not removed by cheap speculation but never observed —
	// memory speculation's residual territory.
	ClassMemSpec
	// ClassObserved: manifested during profiling and not removed.
	ClassObserved
)

// classify buckets every query of one loop.
func classify(b *Benchmark, a *Analysis, l *cfg.Loop) map[QueryClass]int {
	out := map[QueryClass]int{}
	caf := a.CAF[l].ByKey()
	conf := a.Conf[l].ByKey()
	ms := b.Sys.MemSpec()
	for _, q := range a.SCAF[l].Queries {
		k := pdg.Key{I1: q.I1, I2: q.I2, Rel: q.Rel}
		switch {
		case caf[k] != nil && caf[k].NoDep:
			out[ClassCAF]++
		case conf[k] != nil && conf[k].NoDep:
			out[ClassConfluence]++
		case q.NoDep:
			out[ClassSCAF]++
		case ms.NoDep(l, q.I1, q.I2, q.Rel):
			out[ClassMemSpec]++
		default:
			out[ClassObserved]++
		}
	}
	return out
}

// LoopWeights returns normalized execution-time weights over hot loops.
func (b *Benchmark) LoopWeights() map[*cfg.Loop]float64 {
	out := map[*cfg.Loop]float64{}
	var sum float64
	for _, l := range b.Hot {
		w := b.Sys.Profiles.LoopWeightFrac(l)
		out[l] = w
		sum += w
	}
	if sum > 0 {
		for l := range out {
			out[l] /= sum
		}
	}
	return out
}

// sortedLoops returns hot loops in a stable order.
func (b *Benchmark) sortedLoops() []*cfg.Loop {
	loops := append([]*cfg.Loop(nil), b.Hot...)
	sort.Slice(loops, func(i, j int) bool { return loops[i].Name() < loops[j].Name() })
	return loops
}
