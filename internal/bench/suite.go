package bench

import (
	"fmt"
	"sort"

	"scaf"
	"scaf/internal/cfg"
	"scaf/internal/core"
	"scaf/internal/pdg"
)

// Benchmark is one loaded, profiled benchmark program.
type Benchmark struct {
	Name string
	Sys  *scaf.System
	Hot  []*cfg.Loop
}

// Suite is the loaded benchmark collection.
type Suite struct {
	Benchmarks []*Benchmark
	// Parallelism is the worker count AnalyzeSuite (and the Fig. 10
	// warm-up pass) uses for each benchmark's PDG construction: loops fan
	// out over a pdg.ParallelClient pool of this size. Values < 2 analyze
	// serially. Results are identical either way; see
	// pdg.TestParallelMatchesSerial.
	Parallelism int
	// Latency records per-query latency samples (wall clock plus the
	// deterministic module-evals work measure) during AnalyzeSuite, feeding
	// the report's latency summaries.
	Latency bool
	// LearnOrder turns on profile-guided module ordering: before the
	// measured run of each (benchmark, scheme), the hot loops are analyzed
	// twice more to learn and verify a cheaper consult order
	// (scaf.System.LearnModuleOrder), which is adopted only when it
	// reproduces the fixed schedule's answers exactly. Results are
	// therefore identical either way; only the work counters drop.
	LearnOrder bool
}

// Load compiles and profiles one benchmark by name.
func Load(name string) (*Benchmark, error) {
	src, ok := Sources[name]
	if !ok {
		return nil, fmt.Errorf("bench: unknown benchmark %q", name)
	}
	sys, err := scaf.Load(name, src, scaf.Options{})
	if err != nil {
		return nil, fmt.Errorf("bench: %s: %w", name, err)
	}
	return &Benchmark{Name: name, Sys: sys, Hot: sys.HotLoops()}, nil
}

// LoadSuite loads the given benchmarks (all 16 when names is empty).
func LoadSuite(names ...string) (*Suite, error) {
	if len(names) == 0 {
		names = Names()
	}
	s := &Suite{}
	for _, n := range names {
		b, err := Load(n)
		if err != nil {
			return nil, err
		}
		s.Benchmarks = append(s.Benchmarks, b)
	}
	return s, nil
}

// Analysis holds one benchmark's PDG results under every scheme.
type Analysis struct {
	B    *Benchmark
	CAF  map[*cfg.Loop]*pdg.LoopResult
	Conf map[*cfg.Loop]*pdg.LoopResult
	SCAF map[*cfg.Loop]*pdg.LoopResult
	// Stats holds the merged orchestration counters per scheme (keyed by
	// scaf.Scheme.String()), feeding the -json report.
	Stats map[string]*core.Stats
}

// AnalyzeOptions tunes how a benchmark's hot loops are analyzed.
type AnalyzeOptions struct {
	// Parallelism is the pdg.ParallelClient pool size; < 2 runs serially.
	Parallelism int
	// SharedCache, when true and Parallelism ≥ 2, attaches one
	// core.SharedCache per scheme so workers reuse each other's top-level
	// resolutions.
	SharedCache bool
	// Latency records per-query latency samples. The wall-clock half is
	// machine-dependent; the module-evals half is deterministic for a
	// given scheme (absent a SharedCache), which is what the regression
	// gate compares across commits.
	Latency bool
	// LearnOrder learns and verifies a per-scheme module order before the
	// measured run (see Suite.LearnOrder).
	LearnOrder bool
}

// Analyze runs the PDG client serially over the benchmark's hot loops
// under CAF, confluence, and SCAF.
func Analyze(b *Benchmark) *Analysis { return AnalyzeWith(b, AnalyzeOptions{}) }

// AnalyzeWith runs the PDG client over the benchmark's hot loops under
// CAF, confluence, and SCAF, fanning loops out across a worker pool when
// opts.Parallelism ≥ 2.
func AnalyzeWith(b *Benchmark, opts AnalyzeOptions) *Analysis {
	a := &Analysis{
		B:     b,
		CAF:   map[*cfg.Loop]*pdg.LoopResult{},
		Conf:  map[*cfg.Loop]*pdg.LoopResult{},
		SCAF:  map[*cfg.Loop]*pdg.LoopResult{},
		Stats: map[string]*core.Stats{},
	}
	client := b.Sys.Client()
	for _, scheme := range []scaf.Scheme{scaf.SchemeCAF, scaf.SchemeConfluence, scaf.SchemeSCAF} {
		var results []*pdg.LoopResult
		stats := &core.Stats{}
		var orchOpts []scaf.OrchOption
		if opts.Latency {
			orchOpts = append(orchOpts, scaf.WithLatency())
		}
		if opts.LearnOrder {
			// Learn against the exact configuration the measured run uses
			// (shared caches excepted — learning runs serially). Adoption is
			// verified, so the measured answers cannot drift.
			if order, ok := b.Sys.LearnModuleOrder(scheme, orchOpts...); ok {
				orchOpts = append(orchOpts, scaf.WithModuleOrder(order))
			}
		}
		if opts.Parallelism >= 2 {
			if opts.SharedCache {
				// One cache per (benchmark, scheme): caches must never
				// span configurations.
				orchOpts = append(orchOpts, scaf.WithSharedCache(core.NewSharedCache()))
			}
			pc := pdg.NewParallelClient(client, opts.Parallelism,
				b.Sys.OrchestratorFactory(scheme, orchOpts...))
			results, stats = pc.AnalyzeLoops(b.Hot)
		} else {
			o := b.Sys.Orchestrator(scheme, orchOpts...)
			for _, l := range b.Hot {
				results = append(results, client.ResolveLoop(o, l))
			}
			stats.Merge(o.Stats())
		}
		a.Stats[scheme.String()] = stats
		for i, l := range b.Hot {
			switch scheme {
			case scaf.SchemeCAF:
				a.CAF[l] = results[i]
			case scaf.SchemeConfluence:
				a.Conf[l] = results[i]
			default:
				a.SCAF[l] = results[i]
			}
		}
	}
	return a
}

// AnalyzeSuite analyzes every benchmark, honoring s.Parallelism.
func AnalyzeSuite(s *Suite) []*Analysis {
	out := make([]*Analysis, len(s.Benchmarks))
	for i, b := range s.Benchmarks {
		out[i] = AnalyzeWith(b, AnalyzeOptions{
			Parallelism: s.Parallelism,
			Latency:     s.Latency,
			LearnOrder:  s.LearnOrder,
		})
	}
	return out
}

// QueryClass buckets one dependence query for the Fig. 8 stack. The
// buckets are mutually exclusive and ordered bottom-up as in the figure.
type QueryClass int

const (
	// ClassCAF: disproven by memory analysis alone.
	ClassCAF QueryClass = iota
	// ClassConfluence: additionally removed by isolated cheap speculation.
	ClassConfluence
	// ClassSCAF: additionally removed only via collaboration.
	ClassSCAF
	// ClassMemSpec: not removed by cheap speculation but never observed —
	// memory speculation's residual territory.
	ClassMemSpec
	// ClassObserved: manifested during profiling and not removed.
	ClassObserved
)

// classify buckets every query of one loop.
func classify(b *Benchmark, a *Analysis, l *cfg.Loop) map[QueryClass]int {
	out := map[QueryClass]int{}
	caf := a.CAF[l].ByKey()
	conf := a.Conf[l].ByKey()
	ms := b.Sys.MemSpec()
	for _, q := range a.SCAF[l].Queries {
		k := pdg.Key{I1: q.I1, I2: q.I2, Rel: q.Rel}
		switch {
		case caf[k] != nil && caf[k].NoDep:
			out[ClassCAF]++
		case conf[k] != nil && conf[k].NoDep:
			out[ClassConfluence]++
		case q.NoDep:
			out[ClassSCAF]++
		case ms.NoDep(l, q.I1, q.I2, q.Rel):
			out[ClassMemSpec]++
		default:
			out[ClassObserved]++
		}
	}
	return out
}

// LoopWeights returns normalized execution-time weights over hot loops.
func (b *Benchmark) LoopWeights() map[*cfg.Loop]float64 {
	out := map[*cfg.Loop]float64{}
	var sum float64
	for _, l := range b.Hot {
		w := b.Sys.Profiles.LoopWeightFrac(l)
		out[l] = w
		sum += w
	}
	if sum > 0 {
		for l := range out {
			out[l] /= sum
		}
	}
	return out
}

// sortedLoops returns hot loops in a stable order.
func (b *Benchmark) sortedLoops() []*cfg.Loop {
	loops := append([]*cfg.Loop(nil), b.Hot...)
	sort.Slice(loops, func(i, j int) bool { return loops[i].Name() < loops[j].Name() })
	return loops
}
