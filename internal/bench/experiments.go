package bench

import (
	"math"
	"sort"
	"time"

	"scaf"
	"scaf/internal/analysis"
	"scaf/internal/core"
	"scaf/internal/pdg"
	"scaf/internal/spec"
)

// ---------------------------------------------------------------------
// Figure 8: dependence coverage per benchmark.
// ---------------------------------------------------------------------

// Fig8Row is one benchmark's stacked coverage (percent of PDG queries,
// loop-weighted as in the paper).
type Fig8Row struct {
	Bench    string
	HotLoops int
	Queries  int
	// Stack segments, summing to ~100.
	CAF, ConfExtra, SCAFExtra, MemSpec, Observed float64
}

// ConfluenceTotal is CAF + the confluence increment.
func (r Fig8Row) ConfluenceTotal() float64 { return r.CAF + r.ConfExtra }

// SCAFTotal is the full cheap-speculation coverage under collaboration.
func (r Fig8Row) SCAFTotal() float64 { return r.CAF + r.ConfExtra + r.SCAFExtra }

// MemSpecAfterConf is the residual memory-speculation need without
// collaboration (the quantity SCAF "dramatically reduces").
func (r Fig8Row) MemSpecAfterConf() float64 { return r.SCAFExtra + r.MemSpec }

// Fig8 computes the coverage rows for every analyzed benchmark.
func Fig8(as []*Analysis) []Fig8Row {
	var rows []Fig8Row
	for _, a := range as {
		weights := a.B.LoopWeights()
		row := Fig8Row{Bench: a.B.Name, HotLoops: len(a.B.Hot)}
		for _, l := range a.B.sortedLoops() {
			counts := classify(a.B, a, l)
			total := 0
			for _, n := range counts {
				total += n
			}
			row.Queries += total
			w := weights[l]
			if total == 0 {
				// No pair can carry a dependence: the loop is fully
				// resolved by analysis trivially.
				row.CAF += w * 100
				continue
			}
			row.CAF += w * 100 * float64(counts[ClassCAF]) / float64(total)
			row.ConfExtra += w * 100 * float64(counts[ClassConfluence]) / float64(total)
			row.SCAFExtra += w * 100 * float64(counts[ClassSCAF]) / float64(total)
			row.MemSpec += w * 100 * float64(counts[ClassMemSpec]) / float64(total)
			row.Observed += w * 100 * float64(counts[ClassObserved]) / float64(total)
		}
		rows = append(rows, row)
	}
	return rows
}

// Fig8Summary aggregates the headline numbers the paper reports.
type Fig8Summary struct {
	// Coverage-increase of SCAF over confluence (percentage points).
	MeanIncrease, GeomeanIncrease float64
	// Relative reduction of the memory-speculation residual.
	MemSpecReductionGeomean float64
}

// SummarizeFig8 computes the paper's aggregate claims from the rows.
func SummarizeFig8(rows []Fig8Row) Fig8Summary {
	var s Fig8Summary
	var incLog, redLog float64
	n := 0
	for _, r := range rows {
		inc := r.SCAFTotal() - r.ConfluenceTotal()
		s.MeanIncrease += inc
		incLog += math.Log(math.Max(inc, 1e-3) + 1)
		after := math.Max(r.MemSpec, 1e-3)
		before := math.Max(r.MemSpecAfterConf(), 1e-3)
		redLog += math.Log(after / before)
		n++
	}
	if n > 0 {
		s.MeanIncrease /= float64(n)
		s.GeomeanIncrease = math.Exp(incLog/float64(n)) - 1
		s.MemSpecReductionGeomean = 1 - math.Exp(redLog/float64(n))
	}
	return s
}

// ---------------------------------------------------------------------
// Figure 9: per-hot-loop scatter, SCAF vs confluence.
// ---------------------------------------------------------------------

// Fig9Point is one hot loop's (%NoDep confluence, %NoDep SCAF) pair.
type Fig9Point struct {
	Bench string
	Loop  string
	Conf  float64
	SCAF  float64
}

// Fig9 computes the scatter points.
func Fig9(as []*Analysis) []Fig9Point {
	var pts []Fig9Point
	for _, a := range as {
		for _, l := range a.B.sortedLoops() {
			pts = append(pts, Fig9Point{
				Bench: a.B.Name,
				Loop:  l.Name(),
				Conf:  a.Conf[l].NoDepPct(),
				SCAF:  a.SCAF[l].NoDepPct(),
			})
		}
	}
	return pts
}

// ---------------------------------------------------------------------
// Table 2: collaboration coverage of modules.
// ---------------------------------------------------------------------

// Table2Row is the coverage of one module (or module class) at the three
// population levels of the paper's Table 2.
type Table2Row struct {
	Name                              string
	BenchLevel, LoopLevel, QueryLevel float64
}

// Table2Result is the full table plus the populations it is over.
type Table2Result struct {
	Rows          []Table2Row
	Benchmarks    int
	Loops         int
	ImprovedQuery int
	TotalQueries  int
}

// Table2 computes module collaboration coverage over the improved
// queries: queries SCAF resolves that confluence does not.
func Table2(as []*Analysis) Table2Result {
	cafNames := map[string]bool{}
	for _, m := range analysis.DefaultModules(as[0].B.Sys.Prog) {
		cafNames[m.Name()] = true
	}
	type pred func(contribs []string) bool
	hasCAF := func(cs []string) bool {
		for _, c := range cs {
			if cafNames[c] {
				return true
			}
		}
		return false
	}
	hasMod := func(name string) pred {
		return func(cs []string) bool {
			for _, c := range cs {
				if c == name {
					return true
				}
			}
			return false
		}
	}
	specCount := func(cs []string) int {
		n := 0
		for _, c := range cs {
			if !cafNames[c] {
				n++
			}
		}
		return n
	}
	preds := []struct {
		name string
		p    pred
	}{
		{"Memory Analysis (CAF)", hasCAF},
		{"Read-only", hasMod(spec.NameReadOnly)},
		{"Value Prediction", hasMod(spec.NameValuePred)},
		{"Pointer-Residue", hasMod(spec.NameResidue)},
		{"Control Speculation", hasMod(spec.NameControlSpec)},
		{"Points-to", hasMod(spec.NamePointsTo)},
		{"Short-lived", hasMod(spec.NameShortLived)},
		{"Among Speculation Modules", func(cs []string) bool { return specCount(cs) >= 2 }},
		{"Between CAF and Speculation", func(cs []string) bool { return hasCAF(cs) && specCount(cs) >= 1 }},
		{"All", func(cs []string) bool { return true }},
	}

	res := Table2Result{Benchmarks: len(as)}
	benchHit := make([]int, len(preds))
	loopHit := make([]int, len(preds))
	queryHit := make([]int, len(preds))

	for _, a := range as {
		benchSeen := make([]bool, len(preds))
		for _, l := range a.B.sortedLoops() {
			res.Loops++
			conf := a.Conf[l].ByKey()
			loopSeen := make([]bool, len(preds))
			for _, q := range a.SCAF[l].Queries {
				res.TotalQueries++
				k := pdg.Key{I1: q.I1, I2: q.I2, Rel: q.Rel}
				improved := q.NoDep && (conf[k] == nil || !conf[k].NoDep)
				if !improved {
					continue
				}
				res.ImprovedQuery++
				for i, p := range preds {
					if p.p(q.Resp.Contribs) {
						queryHit[i]++
						if !loopSeen[i] {
							loopSeen[i] = true
							loopHit[i]++
						}
						if !benchSeen[i] {
							benchSeen[i] = true
							benchHit[i]++
						}
					}
				}
			}
		}
	}
	for i, p := range preds {
		row := Table2Row{Name: p.name}
		if res.Benchmarks > 0 {
			row.BenchLevel = 100 * float64(benchHit[i]) / float64(res.Benchmarks)
		}
		if res.Loops > 0 {
			row.LoopLevel = 100 * float64(loopHit[i]) / float64(res.Loops)
		}
		if res.ImprovedQuery > 0 {
			row.QueryLevel = 100 * float64(queryHit[i]) / float64(res.ImprovedQuery)
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// ---------------------------------------------------------------------
// Figure 10: query-latency CDF.
// ---------------------------------------------------------------------

// Fig10Series is the latency distribution of one configuration.
type Fig10Series struct {
	Name          string
	Count         int
	Geomean       time.Duration
	P50, P95, P99 time.Duration
	// EvalsPerQuery is the mean number of module consultations per
	// top-level query — the deterministic work measure the desired-result
	// parameter reduces (wall-clock on microsecond-cheap modules is
	// noise-bound; see EXPERIMENTS.md).
	EvalsPerQuery float64
	// CDF sample points: fraction of queries ≤ the matching Latency.
	Latencies []time.Duration
	Fractions []float64
}

// Fig10 measures per-query wall-clock latency for CAF, SCAF without the
// desired-result parameter, and full SCAF, over every hot loop of the
// suite.
func Fig10(s *Suite) []Fig10Series {
	configs := []struct {
		name   string
		scheme scaf.Scheme
		opts   []scaf.OrchOption
	}{
		{"CAF", scaf.SchemeCAF, nil},
		{"SCAF w/o Desired Result", scaf.SchemeSCAF, []scaf.OrchOption{scaf.WithoutDesiredResult()}},
		{"SCAF", scaf.SchemeSCAF, nil},
	}
	var out []Fig10Series
	for _, cfg := range configs {
		var lats []time.Duration
		var evals, queries int64
		for _, b := range s.Benchmarks {
			client := b.Sys.Client()
			// Warm-up pass: populate lazy per-orchestrator state (escape
			// analyses, speculative trees, allocator warmth) outside the
			// measurement. The warm-up honors s.Parallelism; the measured
			// pass below stays serial so per-query latencies are free of
			// scheduler and memory-bandwidth contention.
			if s.Parallelism >= 2 {
				pc := pdg.NewParallelClient(client, s.Parallelism,
					b.Sys.OrchestratorFactory(cfg.scheme, cfg.opts...))
				pc.AnalyzeLoops(b.Hot)
			} else {
				warm := b.Sys.Orchestrator(cfg.scheme, cfg.opts...)
				for _, l := range b.Hot {
					client.AnalyzeLoop(warm, l)
				}
			}
			// The measured pass resolves each query unbatched: Fig. 10 is a
			// single-query ablation of the desired-result parameter, and
			// batch memoization would confound it (stripping the parameter
			// widens cross-query memo sharing, masking the per-query effect
			// the figure isolates).
			o := b.Sys.Orchestrator(cfg.scheme, append(cfg.opts, scaf.WithLatency())...)
			for _, l := range b.Hot {
				client.AnalyzeLoop(o, l)
			}
			lats = append(lats, o.Stats().Latencies...)
			evals += o.Stats().ModuleEvals
			queries += o.Stats().TopQueries
		}
		series := summarizeLatencies(cfg.name, lats)
		if queries > 0 {
			series.EvalsPerQuery = float64(evals) / float64(queries)
		}
		out = append(out, series)
	}
	return out
}

func summarizeLatencies(name string, lats []time.Duration) Fig10Series {
	s := Fig10Series{Name: name, Count: len(lats)}
	if len(lats) == 0 {
		return s
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var logSum float64
	for _, d := range lats {
		v := float64(d)
		if v < 1 {
			v = 1
		}
		logSum += math.Log(v)
	}
	s.Geomean = time.Duration(math.Exp(logSum / float64(len(lats))))
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	s.P50, s.P95, s.P99 = pct(0.50), pct(0.95), pct(0.99)
	// CDF at decade-ish sample points.
	for _, f := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0} {
		s.Fractions = append(s.Fractions, f)
		s.Latencies = append(s.Latencies, pct(f))
	}
	return s
}

// ---------------------------------------------------------------------
// Figure 7: validation-cost asymmetry.
// ---------------------------------------------------------------------

// Fig7Row compares the per-check cost model constants (the shape of
// Fig. 7: SCAF's checks are a few ALU ops, memory speculation is
// shadow-memory traffic).
type Fig7Row struct {
	Scheme   string
	PerCheck float64
}

// Fig7 returns the modeled per-check costs.
func Fig7() []Fig7Row {
	return []Fig7Row{
		{"control speculation (never-taken edge)", core.CostCtrlCheck},
		{"value prediction (compare)", core.CostValueCheck},
		{"pointer residue (mask+compare)", core.CostResidueCheck},
		{"points-to heap check (mask+compare)", core.CostHeapCheck},
		{"short-lived iteration counter", core.CostIterCheck},
		{"memory speculation (shadow memory)", core.CostMemSpecCheck},
	}
}
