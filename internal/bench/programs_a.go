// Package bench embeds the 16 benchmark programs the evaluation runs on —
// one per SPEC benchmark named in the paper's Fig. 8 — plus the experiment
// harness that regenerates every table and figure. Each program is written
// in MC to exercise the memory/control idioms of its SPEC counterpart
// (see DESIGN.md for the substitution rationale).
package bench

// Sources maps benchmark name → MC source.
var Sources = map[string]string{
	"052.alvinn":     srcAlvinn,
	"056.ear":        srcEar,
	"129.compress":   srcCompress,
	"164.gzip":       srcGzip,
	"175.vpr":        srcVpr,
	"179.art":        srcArt,
	"181.mcf":        srcMcf181,
	"183.equake":     srcEquake,
	"429.mcf":        srcMcf429,
	"456.hmmer":      srcHmmer,
	"462.libquantum": srcLibquantum,
	"470.lbm":        srcLbm470,
	"482.sphinx3":    srcSphinx3,
	"519.lbm":        srcLbm519,
	"525.x264":       srcX264,
	"544.nab":        srcNab,
}

// Names returns the benchmarks in the paper's Fig. 8 order.
func Names() []string {
	return []string{
		"052.alvinn", "056.ear", "129.compress", "164.gzip",
		"175.vpr", "179.art", "181.mcf", "183.equake",
		"429.mcf", "456.hmmer", "462.libquantum", "470.lbm",
		"482.sphinx3", "519.lbm", "525.x264", "544.nab",
	}
}

// 052.alvinn — neural-net road follower: epoch training over read-only
// input patterns, dense weight updates. Idioms: read-only speculation on
// the pattern store, affine strided float arrays, biased NaN guard.
const srcAlvinn = `
int seed;
int rnd() { seed = seed * 1103515245 + 12345; return (seed >> 16) & 32767; }

float patterns[64][64];
float weights[64];
float delta[64];
int bad;

void init() {
    for (int p = 0; p < 64; p++) {
        for (int i = 0; i < 64; i++) {
            patterns[p][i] = (float)(rnd() % 100) / 50.0 - 1.0;
        }
    }
    for (int i = 0; i < 64; i++) { weights[i] = 0.01; }
}

// The kernel sees only pointers: without restrict, static analysis cannot
// separate the pattern row from the weight and delta vectors.
float train_pattern(float* row, float* w, float* d, float want) {
    float acc = 0.0;
    for (int i = 0; i < 64; i++) {
        acc += row[i] * w[i];
    }
    float err = want - acc;
    if (err > 1000000.0) {          // never taken: diverged net
        bad = bad + 1;
    } else {
        for (int i = 0; i < 64; i++) {
            d[i] = err * row[i] * 0.003;
        }
        for (int i = 0; i < 64; i++) {
            w[i] = w[i] + d[i];
        }
    }
    return err;
}

void main() {
    seed = 7;
    init();
    float last_err = 0.0;
    for (int epoch = 0; epoch < 25; epoch++) {
        for (int p = 0; p < 64; p++) {
            last_err = train_pattern(patterns[p], weights, delta, patterns[p][0]);
        }
    }
    float s = 0.0;
    for (int i = 0; i < 64; i++) { s += weights[i]; }
    print(s);
    print(last_err);
    print(bad);
}
`

// 056.ear — human ear model: cochlear filterbank cascade over a signal.
// Idioms: read-only filter coefficients, predictable configuration loads,
// strided state arrays.
const srcEar = `
int seed;
int rnd() { seed = seed * 1103515245 + 12345; return (seed >> 16) & 32767; }

float coeff_a[128];
float coeff_b[128];
float state[128];
float energy[128];
float level;
int rate;
int clipped;

void init() {
    for (int i = 0; i < 128; i++) {
        coeff_a[i] = 0.5 + (float)(i % 7) / 20.0;
        coeff_b[i] = 0.3 + (float)(i % 11) / 40.0;
        state[i] = 0.0;
        energy[i] = 0.0;
    }
    rate = 16000;
}

// The filterbank kernel sees only pointers: the read-only coefficient
// tables and the mutable state vectors are statically indistinguishable.
void filter_sample(float* ca, float* cb, float* st, float* en, float x) {
    for (int i = 0; i < 128; i++) {
        float gain = (float)rate / 20000.0;     // rate is invariant: predictable
        float y = ca[i] * x + cb[i] * st[i];
        if (y > 100000.0) {                     // never taken: clipping
            clipped = clipped + 1;
            y = 100000.0;
        } else {
            level = y;                          // common path refreshes level
        }
        st[i] = y * gain;
        en[i] = en[i] + level * level;          // read at the join
    }
}

void main() {
    seed = 3;
    init();
    for (int t = 0; t < 900; t++) {
        float x = (float)(rnd() % 200) / 100.0 - 1.0;
        filter_sample(coeff_a, coeff_b, state, energy, x);
    }
    float total = 0.0;
    for (int i = 0; i < 128; i++) { total += energy[i]; }
    print(total);
    print(clipped);
}
`

// 129.compress — LZW compressor core: hash-table probing with a rarely
// triggered table reset. Idioms: biased branch enabling kill-flow across
// iterations, global int arrays, cross-iteration hash-chain dependences.
const srcCompress = `
int seed;
int rnd() { seed = seed * 1103515245 + 12345; return (seed >> 16) & 32767; }

int htab[512];
int codetab[512];
int free_ent;
int out_count;
int resets;

void reset_table() {
    for (int i = 0; i < 512; i++) { htab[i] = 0 - 1; }
    free_ent = 257;
    resets = resets + 1;
}

void main() {
    seed = 11;
    reset_table();
    out_count = 0;
    int ent = rnd() % 256;
    for (int n = 0; n < 6000; n++) {
        int c = rnd() % 256;
        int h = (c * 37 + ent) % 512;
        if (free_ent > 100000) {          // never taken: table exhausted
            reset_table();
        } else {
            free_ent = free_ent + 1;
        }
        int probe = htab[h];
        if (probe == ent) {
            ent = codetab[h];
        } else {
            htab[h] = ent;
            codetab[h] = free_ent % 512;
            out_count = out_count + 1;
            ent = c;
        }
    }
    print(out_count);
    print(resets);
}
`

// 164.gzip — deflate longest-match over a sliding window with a rare
// window flush. Idioms: biased flush branch, window/head global arrays,
// strided window fills, call-summarized helper.
const srcGzip = `
int seed;
int rnd() { seed = seed * 1103515245 + 12345; return (seed >> 16) & 32767; }

int window[1024];
int head[256];
int flushed;
int total_len;
int scratch;
int mixed;

void flush_window() {
    for (int i = 0; i < 1024; i++) { window[i] = 0; }
    flushed = flushed + 1;
}

int longest_match(int pos, int hash) {
    int best = 0;
    int cand = head[hash];
    for (int k = 0; k < 64; k++) {
        int len = 0;
        while (len < 16) {
            int a = window[(pos + len) % 1024];
            int b = window[(cand + len) % 1024];
            if (a != b) { break; }
            len = len + 1;
        }
        if (len > best) { best = len; }
        cand = (cand + 31) % 1024;
    }
    return best;
}

int freq[64];

void main() {
    seed = 5;
    flushed = 0;
    for (int pos = 0; pos < 1200; pos++) {
        int c = rnd() % 16;
        window[pos % 1024] = c;
        int hash = (c * 53 + pos) % 256;
        if (total_len < 0) {              // never taken: overflow flush
            flush_window();
        } else {
            scratch = hash;               // common path refreshes scratch
        }
        mixed = mixed + scratch;          // join read
        scratch = scratch + c;            // trailing cross-iter store
        int m = longest_match(pos % 1024, hash);
        total_len = total_len + m;
        head[hash] = pos % 1024;
        freq[m % 64] = freq[m % 64] + 1;
        int acc = 0;
        for (int b = 0; b < 64; b++) {    // inline stats sweep keeps the
            acc = acc + freq[b];          // outer loop itself hot
        }
        if (acc < 0) { flush_window(); }  // never taken
    }
    print(total_len);
    print(mixed % 1000);
    print(flushed);
}
`

// 175.vpr — FPGA placement annealing: array-of-struct cells, random swap
// proposals with a biased bounds-violation branch, read-only net table.
// Idioms: struct-field residues, array-of-structs disambiguation,
// read-only speculation, control speculation.
const srcVpr = `
int seed;
int rnd() { seed = seed * 1103515245 + 12345; return (seed >> 16) & 32767; }

struct cell {
    int x;
    int y;
    int cost;
};

struct cell cells[128];
int net_weight[128];
int violations;
int accepted;
int last_cost;
int checksum;

void init() {
    for (int i = 0; i < 128; i++) {
        cells[i].x = rnd() % 64;
        cells[i].y = rnd() % 64;
        cells[i].cost = 0;
        net_weight[i] = 1 + rnd() % 9;       // read-only afterwards
    }
}

int wire_cost(int i) {
    int j = (i + 1) % 128;
    int dx = cells[i].x - cells[j].x;
    int dy = cells[i].y - cells[j].y;
    if (dx < 0) { dx = 0 - dx; }
    if (dy < 0) { dy = 0 - dy; }
    return (dx + dy) * net_weight[i];
}

void main() {
    seed = 23;
    init();
    for (int step = 0; step < 2500; step++) {
        int i = rnd() % 128;
        int nx = rnd() % 64;
        int ny = rnd() % 64;
        if (nx > 1000000) {                   // never taken: bad proposal
            violations = violations + 1;       // rare path skips last_cost
        } else {
            int old = wire_cost(i);
            last_cost = old;                   // kills the flow from the tail
            int ox = cells[i].x;
            int oy = cells[i].y;
            cells[i].x = nx;
            cells[i].y = ny;
            int new_c = wire_cost(i);
            if (new_c > old) {
                cells[i].x = ox;
                cells[i].y = oy;
            } else {
                cells[i].cost = new_c;
                accepted = accepted + 1;
            }
        }
        checksum = checksum + last_cost;       // join read
        last_cost = last_cost + 1;             // trailing cross-iter store
    }
    print(accepted);
    print(checksum % 1000);
}
`

// 179.art — adaptive resonance image recognition: winner-take-all over
// float neuron arrays with read-only input patterns. Idioms: read-only
// speculation (inputs), strided float arrays, per-neuron updates guarded
// by a winner index.
const srcArt = `
int seed;
int rnd() { seed = seed * 1103515245 + 12345; return (seed >> 16) & 32767; }

float input[64][64];
float bu[8][64];
float td[8][64];
int wins[8];
int mismatches;
int last_win;
int hist;

void init() {
    for (int p = 0; p < 64; p++) {
        for (int i = 0; i < 64; i++) {
            input[p][i] = (float)(rnd() % 100) / 100.0;
        }
    }
    for (int j = 0; j < 8; j++) {
        for (int i = 0; i < 64; i++) {
            bu[j][i] = 0.5;
            td[j][i] = 1.0;
        }
    }
}

int winner(int p) {
    int best = 0;
    float best_act = 0.0 - 1.0;
    for (int j = 0; j < 8; j++) {
        float act = 0.0;
        for (int i = 0; i < 64; i++) {
            act += bu[j][i] * input[p][i];
        }
        if (act > best_act) { best_act = act; best = j; }
    }
    return best;
}

void main() {
    seed = 31;
    init();
    for (int pass = 0; pass < 10; pass++) {
        for (int p = 0; p < 64; p++) {
            int j = winner(p);
            if (j < 0) {                        // never taken: no resonance
                mismatches = mismatches + 1;
            } else {
                last_win = j;                   // common path refreshes
                for (int i = 0; i < 64; i++) {
                    td[j][i] = td[j][i] * 0.9 + input[p][i] * 0.1;
                    bu[j][i] = td[j][i] / (0.5 + (float)i);
                }
                wins[j] = wins[j] + 1;
            }
            hist = hist + last_win;             // join read
            last_win = last_win + 1;            // trailing cross-iter store
        }
    }
    int total = 0;
    for (int j = 0; j < 8; j++) { total = total + wins[j]; }
    print(total);
    print(hist % 1000);
    print(mismatches);
}
`

// 181.mcf — minimum-cost flow: malloc-built arc/node graph walked by
// pointer chasing. Idioms: global-malloc reachability (node pool stored in
// a pointer global), control speculation on a rare negative-cycle branch,
// kill-flow over per-iteration potentials.
const srcMcf181 = `
int seed;
int rnd() { seed = seed * 1103515245 + 12345; return (seed >> 16) & 32767; }

struct node {
    int potential;
    int depth;
    struct node* next;
};

struct node* pool;
int cycles;
int relabels;

void build(int n) {
    pool = 0;
    for (int i = 0; i < n; i++) {
        struct node* nd = malloc(struct node, 1);
        nd->potential = rnd() % 1000;
        nd->depth = i;
        nd->next = pool;
        pool = nd;
    }
}

void main() {
    seed = 17;
    build(96);
    for (int iter = 0; iter < 700; iter++) {
        struct node* p = pool;
        int min_pot = 1000000;
        while (p != 0) {
            if (p->potential < min_pot) { min_pot = p->potential; }
            p = p->next;
        }
        if (min_pot < 0 - 1000000) {          // never taken: negative cycle
            cycles = cycles + 1;
        } else {
            p = pool;
            while (p != 0) {
                p->potential = p->potential - min_pot + (p->depth % 3);
                relabels = relabels + 1;
                p = p->next;
            }
        }
    }
    print(relabels);
    print(cycles);
}
`

// 183.equake — earthquake simulation: sparse matrix-vector products with
// a read-only matrix and short-lived per-step scratch vectors. Idioms:
// read-only speculation (matrix), short-lived speculation (scratch),
// affine strided vectors.
const srcEquake = `
int seed;
int rnd() { seed = seed * 1103515245 + 12345; return (seed >> 16) & 32767; }

float mat_val[600];
int mat_col[600];
int row_start[101];
float disp[100];
float vel[100];
float* fbuf;
float accum;
float trace;
int unstable;

void init() {
    int nz = 0;
    for (int r = 0; r < 100; r++) {
        row_start[r] = nz;
        for (int k = 0; k < 6; k++) {
            mat_val[nz] = (float)(rnd() % 100) / 100.0 + 0.01;
            mat_col[nz] = (r + k * 17) % 100;
            nz = nz + 1;
        }
        disp[r] = (float)(rnd() % 10) / 10.0;
        vel[r] = 0.0;
    }
    row_start[100] = nz;
}

// Sparse matrix-vector product through raw pointers: the classic kernel
// static analysis cannot disambiguate without restrict.
void smvp(float* v, int* cols, int* starts, float* x, float* y) {
    for (int r = 0; r < 100; r++) {
        float acc = 0.0;
        for (int k = starts[r]; k < starts[r + 1]; k++) {
            acc += v[k] * x[cols[k]];
        }
        y[r] = acc;
    }
}

void main() {
    seed = 29;
    init();
    for (int step = 0; step < 220; step++) {
        if (unstable > 1000000) {               // never taken
            trace = trace - 1.0;                // rare path skips the reset
        } else {
            accum = 0.0;                        // kills accum's recurrence
        }
        trace = trace + accum;                  // join read
        accum = accum + disp[step % 100];       // trailing cross-iter store
        fbuf = malloc(float, 100);              // short-lived scratch
        smvp(mat_val, mat_col, row_start, disp, fbuf);
        for (int r = 0; r < 100; r++) {
            vel[r] = vel[r] * 0.98 + fbuf[r] * 0.01;
            disp[r] = disp[r] + vel[r] * 0.01;
            if (disp[r] > 1000000.0) {          // never taken
                unstable = unstable + 1;
            }
        }
        free(fbuf);
    }
    float s = 0.0;
    for (int r = 0; r < 100; r++) { s += disp[r]; }
    print(s);
    print(trace);
    print(unstable);
}
`
