package bench

import (
	"strings"
	"testing"
)

// TestExecuteSuiteDeterministic pins the gate's premise: two speculative
// executions of the same benchmarks produce identical counters once the
// wall-clock fields are stripped, so CompareReports may diff them
// exactly.
func TestExecuteSuiteDeterministic(t *testing.T) {
	run := func() []ExecRow {
		s, err := LoadSuite("129.compress", "462.libquantum")
		if err != nil {
			t.Fatalf("LoadSuite: %v", err)
		}
		rows, err := ExecuteSuite(s, 4)
		if err != nil {
			t.Fatalf("ExecuteSuite: %v", err)
		}
		return rows
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatalf("row %d: name %q vs %q", i, a[i].Name, b[i].Name)
		}
		if ea, eb := a[i].Exec.stripWall(), b[i].Exec.stripWall(); ea != eb {
			t.Errorf("%s: exec counters differ across runs:\n  %+v\n  %+v", a[i].Name, ea, eb)
		}
	}
}

// TestCompareExecCounters pins the gate rules for the exec section:
// identical counters pass, any deterministic-counter drift fails, a
// baseline without exec counters skips the comparison, and a baseline
// WITH exec counters refuses a fresh report that dropped them.
func TestCompareExecCounters(t *testing.T) {
	mk := func(exec *ReportExec) *Report {
		return &Report{Benchmarks: []ReportBench{{
			Name:     "b",
			NoDepPct: map[string]float64{},
			Counters: map[string]ReportCounters{},
			Exec:     exec,
		}}}
	}
	e := ReportExec{Workers: 4, DoallLoops: 2, SpecIters: 100, SerialIters: 10,
		AbortedChunks: 1, Misspecs: 1, MemDigest: 0xabc, AbortCostPct: 100 * 10.0 / 110}

	if fails := CompareReports(mk(&e), mk(&e), DefaultWorkTolerance); len(fails) != 0 {
		t.Fatalf("identical exec counters failed the gate: %v", fails)
	}
	// Wall-clock drift alone must not fail.
	fresh := e
	fresh.SerialNS, fresh.ExecNS, fresh.SpeedupX = 999, 1, 999
	if fails := CompareReports(mk(&e), mk(&fresh), DefaultWorkTolerance); len(fails) != 0 {
		t.Fatalf("wall-clock drift failed the gate: %v", fails)
	}
	// A deterministic counter drifting must fail.
	fresh = e
	fresh.CommittedChunks++
	fails := CompareReports(mk(&e), mk(&fresh), DefaultWorkTolerance)
	if len(fails) != 1 || !strings.Contains(fails[0], "exec counters diverged") {
		t.Fatalf("committed-chunk drift not caught: %v", fails)
	}
	// Baseline without exec counters: comparison is skipped.
	if fails := CompareReports(mk(nil), mk(&e), DefaultWorkTolerance); len(fails) != 0 {
		t.Fatalf("old baseline without exec section failed the gate: %v", fails)
	}
	// Baseline with exec counters, fresh without: the gate has teeth.
	fails = CompareReports(mk(&e), mk(nil), DefaultWorkTolerance)
	if len(fails) != 1 || !strings.Contains(fails[0], "run the gate with -execute") {
		t.Fatalf("dropped exec section not caught: %v", fails)
	}
}
