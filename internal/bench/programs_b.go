package bench

// 429.mcf — the CPU2006 mcf: network simplex pricing sweep over a
// malloc-built arc list with an invariant pricing parameter. Idioms:
// value prediction (invariant alpha load), global-malloc, pointer
// chasing, biased rebuild branch.
const srcMcf429 = `
int seed;
int rnd() { seed = seed * 1103515245 + 12345; return (seed >> 16) & 32767; }

struct arc {
    int cost;
    int flow;
    struct arc* link;
};

struct arc* arcs;
int base_rate;
int alpha;
int guard;
int rebuilds;
int pushes;

void build(int n) {
    arcs = 0;
    for (int i = 0; i < n; i++) {
        struct arc* a = malloc(struct arc, 1);
        a->cost = rnd() % 500;
        a->flow = 0;
        a->link = arcs;
        arcs = a;
    }
}

int price_sweep(int round) {
    struct arc* a = arcs;
    int pushed = 0;
    while (a != 0) {
        int reduced = a->cost - alpha;           // reads alpha inside callee
        if (reduced < 0 - 100000) {              // never taken: infeasible
            rebuilds = rebuilds + 1;
        } else if (reduced % 7 == round % 7) {
            a->flow = a->flow + 1;
            pushed = pushed + 1;
        }
        a = a->link;
    }
    return pushed;
}

void main() {
    seed = 41;
    base_rate = 6;                               // invariant input
    build(80);
    for (int iter = 0; iter < 800; iter++) {
        alpha = base_rate * 2;                   // same value every iteration
        int check = alpha;                       // predictable load: the VP
        guard = guard + check;                   // kill for alpha's flows
        pushes = pushes + price_sweep(iter);
    }
    print(pushes);
    print(guard % 1000);
    print(rebuilds);
}
`

// 456.hmmer — profile HMM search: Viterbi dynamic programming with
// read-only transition scores and a short-lived per-sequence row buffer.
// Idioms: read-only + short-lived speculation, affine DP rows.
const srcHmmer = `
int seed;
int rnd() { seed = seed * 1103515245 + 12345; return (seed >> 16) & 32767; }

int* tmm;
int* tmi;
int* emit;
int* row_prev;
int* row_cur;
int best_score;
int overflows;

void init() {
    tmm = malloc(int, 64);
    tmi = malloc(int, 64);
    emit = malloc(int, 256);
    row_prev = malloc(int, 64);
    row_cur = malloc(int, 64);
    for (int k = 0; k < 64; k++) {
        tmm[k] = rnd() % 20;
        tmi[k] = rnd() % 20;
        for (int c = 0; c < 4; c++) { emit[k * 4 + c] = rnd() % 30; }
    }
}

// One Viterbi column through raw pointers: rows and read-only model
// tables are statically indistinguishable.
void column(int* prev, int* cur, int* m_sc, int* i_sc, int* e_sc, int c) {
    for (int k = 1; k < 64; k++) {
        int m = prev[k - 1] + m_sc[k] + e_sc[k * 4 + c];
        int i = prev[k] + i_sc[k];
        if (i > m) { m = i; }
        cur[k] = m;
    }
    cur[0] = 0;
}

void main() {
    seed = 43;
    init();
    for (int s = 0; s < 64; s++) {
        for (int k = 0; k < 64; k++) { row_prev[k] = 0; }
        for (int pos = 0; pos < 10; pos++) {
            int c = rnd() % 4;
            column(row_prev, row_cur, tmm, tmi, emit, c);
            for (int k = 0; k < 64; k++) { row_prev[k] = row_cur[k]; }
        }
        int best = 0;
        for (int k = 0; k < 64; k++) {
            if (row_prev[k] > best) { best = row_prev[k]; }
        }
        if (best > 100000000) {                  // never taken
            overflows = overflows + 1;
        } else if (best > best_score) {
            best_score = best;
        }
    }
    print(best_score);
    print(overflows);
}
`

// 462.libquantum — quantum register simulation: gates sweep an
// array-of-structs register, touching disjoint fields. Idioms:
// pointer-residue + array-of-structs field disambiguation, biased
// decoherence branch, predictable register width.
const srcLibquantum = `
int seed;
int rnd() { seed = seed * 1103515245 + 12345; return (seed >> 16) & 32767; }

struct amp {
    int state;
    float re;
    float im;
};

struct amp reg[256];
int width;
int decohered;
int last_state;
int parity;

void init() {
    for (int i = 0; i < 256; i++) {
        reg[i].state = i;
        reg[i].re = 1.0;
        reg[i].im = 0.0;
    }
    width = 8;
}

void toffoli(int c1, int c2, int t) {
    for (int i = 0; i < 256; i++) {
        int s = reg[i].state;
        if (s < 0) {                             // never taken: corrupt state
            decohered = decohered + 1;
        } else {
            last_state = s;                      // common path refreshes
        }
        parity = parity ^ last_state;            // join read
        last_state = last_state + 1;             // trailing cross-iter store
        int b1 = (s >> c1) & 1;
        int b2 = (s >> c2) & 1;
        if (b1 == 1 && b2 == 1) {
            reg[i].state = s ^ (1 << t);
        }
    }
}

void phase(int t) {
    for (int i = 0; i < 256; i++) {
        int s = reg[i].state;
        if (((s >> t) & 1) == 1) {
            float re = reg[i].re;
            reg[i].re = 0.0 - reg[i].im;
            reg[i].im = re;
        }
    }
}

void main() {
    seed = 47;
    init();
    for (int g = 0; g < 350; g++) {
        int w = width;                           // invariant: predictable
        int c1 = rnd() % w;
        int c2 = rnd() % w;
        int t = rnd() % w;
        if (w > 64) {                            // never taken
            decohered = decohered + 1;
        } else if (g % 2 == 0) {
            toffoli(c1, c2, t);
        } else {
            phase(t);
        }
    }
    int chk = 0;
    for (int i = 0; i < 256; i++) { chk = chk + reg[i].state; }
    print(chk);
    print(parity % 100);
    print(decohered);
}
`

// 470.lbm — lattice Boltzmann on static global grids: stream/collide
// phases between two grids. Idioms: distinct-global disambiguation (CAF
// already strong), biased boundary clamp, affine strides.
const srcLbm470 = `
int seed;
float src_grid[64][64];
float dst_grid[64][64];
float last_v;
float smooth;
int clamped;

void init() {
    for (int y = 0; y < 64; y++) {
        for (int x = 0; x < 64; x++) {
            src_grid[y][x] = (float)((x * 7 + y * 13) % 50) / 50.0;
            dst_grid[y][x] = 0.0;
        }
    }
}

void step() {
    for (int y = 1; y < 63; y++) {
        for (int x = 1; x < 63; x++) {
            float v = src_grid[y][x] * 0.6
                + src_grid[y - 1][x] * 0.1
                + src_grid[y + 1][x] * 0.1
                + src_grid[y][x - 1] * 0.1
                + src_grid[y][x + 1] * 0.1;
            if (v > 1000000.0) {                 // never taken
                clamped = clamped + 1;
                v = 1000000.0;
            } else {
                last_v = v;                      // common path refreshes
            }
            smooth = smooth + last_v;            // join read
            last_v = last_v * 0.5;               // trailing cross-iter store
            dst_grid[y][x] = v;
        }
    }
    for (int y = 1; y < 63; y++) {
        for (int x = 1; x < 63; x++) {
            src_grid[y][x] = dst_grid[y][x];
        }
    }
}

void main() {
    init();
    for (int t = 0; t < 30; t++) { step(); }
    float s = 0.0;
    for (int y = 0; y < 64; y++) { s += src_grid[y][20]; }
    print(s);
    print(smooth);
    print(clamped);
}
`

// 482.sphinx3 — speech scoring: Gaussian mixture scoring against
// read-only acoustic-model tables with short-lived per-frame candidate
// lists and a predictable beam width. Idioms: read-only + short-lived +
// value prediction together.
const srcSphinx3 = `
int seed;
int rnd() { seed = seed * 1103515245 + 12345; return (seed >> 16) & 32767; }

float* means;
float* vars;
int* candbuf;
int beam;
int pruned;
int emitted;

void init() {
    means = malloc(float, 256);
    vars = malloc(float, 256);
    for (int m = 0; m < 64; m++) {
        for (int d = 0; d < 4; d++) {
            means[m * 4 + d] = (float)(rnd() % 100) / 25.0;
            vars[m * 4 + d] = 0.5 + (float)(rnd() % 10) / 10.0;
        }
    }
    beam = 900;
}

// Gaussian-mixture scoring through raw pointers: the read-only acoustic
// model (mu, va), the feature frame, and the output candidate list are
// statically indistinguishable.
int score_all(float* mu, float* va, float* f, int* out) {
    int ncand = 0;
    for (int m = 0; m < 64; m++) {
        float dist = 0.0;
        for (int d = 0; d < 4; d++) {
            float diff = f[d] - mu[m * 4 + d];
            dist += diff * diff / va[m * 4 + d];
        }
        int b = beam;                            // invariant: predictable
        if (dist < (float)b / 25.0) {
            out[ncand] = m;
            ncand = ncand + 1;
        } else {
            pruned = pruned + 1;
        }
    }
    return ncand;
}

void main() {
    seed = 53;
    init();
    for (int frame = 0; frame < 250; frame++) {
        float feat[4];
        for (int d = 0; d < 4; d++) {
            feat[d] = (float)(rnd() % 100) / 25.0;
        }
        candbuf = malloc(int, 64);               // short-lived per frame
        int ncand = score_all(means, vars, feat, candbuf);
        if (ncand > 10000) {                     // never taken
            emitted = emitted - 1;
        } else {
            for (int k = 0; k < 64; k++) {       // inline histogram sweep
                if (k < ncand) {
                    emitted = emitted + candbuf[k];
                }
            }
        }
        free(candbuf);
    }
    print(emitted);
    print(pruned);
}
`

// 519.lbm — CPU2017 lbm: grids live on the heap behind pointer globals.
// Idioms: global-malloc reasoning (grid pointers only ever hold their
// allocation), read-only obstacle map, biased boundary branch.
const srcLbm519 = `
int seed;
int rnd() { seed = seed * 1103515245 + 12345; return (seed >> 16) & 32767; }

float* src;
float* dst;
float* spare;
int* obstacle;
int blocked;

void init() {
    src = malloc(float, 1600);
    dst = malloc(float, 1600);
    obstacle = malloc(int, 1600);
    for (int i = 0; i < 1600; i++) {
        src[i] = (float)(i % 37) / 37.0;
        dst[i] = 0.0;
        obstacle[i] = 0;
        if (i % 41 == 0) { obstacle[i] = 1; }    // fixed: read-only afterwards
    }
}

void step() {
    for (int i = 40; i < 1560; i++) {
        if (obstacle[i] == 1) {
            blocked = blocked + 1;
            dst[i] = src[i];
        } else {
            float v = src[i] * 0.5 + src[i - 1] * 0.2 + src[i + 1] * 0.2
                + src[i - 40] * 0.05 + src[i + 40] * 0.05;
            if (v < 0.0 - 1000000.0) {           // never taken
                v = 0.0;
            }
            dst[i] = v;
        }
    }
    for (int i = 40; i < 1560; i++) {
        src[i] = dst[i];
    }
}

void main() {
    seed = 59;
    init();
    spare = malloc(float, 1600);
    for (int t = 0; t < 60; t++) {
        if (blocked < 0) {                       // never taken: the store of
            float* tmp = src;                    // a loaded pointer into the
            src = spare;                         // grid globals is spec-dead,
            spare = tmp;                         // resolvable only with help
        }
        step();
    }
    float s = 0.0;
    for (int i = 0; i < 1600; i++) { s += src[i]; }
    print(s);
    print(blocked);
}
`

// 525.x264 — video encoding: SAD motion search over read-only frames
// with a short-lived per-macroblock cost buffer. Idioms: read-only
// speculation on both frames, short-lived scratch, struct-field best
// tracking (residues), biased corruption check.
const srcX264 = `
int seed;
int rnd() { seed = seed * 1103515245 + 12345; return (seed >> 16) & 32767; }

int cur[64][64];
int ref[64][64];

struct mv {
    int dx;
    int dy;
    int cost;
};

struct mv best[64];
int* costbuf;
int corrupt;
int mb_bits;
int bits_total;

void init() {
    for (int y = 0; y < 64; y++) {
        for (int x = 0; x < 64; x++) {
            ref[y][x] = rnd() % 256;
            cur[y][x] = (ref[y][x] + rnd() % 8) % 256;
        }
    }
}

void main() {
    seed = 61;
    init();
    for (int mb = 0; mb < 64; mb++) {
        best[mb].cost = 1000000000;
    }
    for (int pass = 0; pass < 2; pass++) {
        for (int mb = 0; mb < 64; mb++) {       // hot: 64 macroblocks
            int by = mb / 8;
            int bx = mb % 8;
            if (corrupt > 1000000) {             // never taken
                bits_total = 0 - bits_total;     // rare path skips refresh
            } else {
                mb_bits = bx + by;               // kills mb_bits recurrence
            }
            bits_total = bits_total + mb_bits;   // join read
            mb_bits = mb_bits + 1;               // trailing store
            costbuf = malloc(int, 25);           // short-lived per block
            int n = 0;
            for (int dy = 0 - 2; dy <= 2; dy++) {
                for (int dx = 0 - 2; dx <= 2; dx++) {
                    int acc = 0;
                    for (int p = 0; p < 64; p++) {   // inline 8x8 SAD
                        int y = p / 8;
                        int x = p % 8;
                        int cy = by * 8 + y;
                        int cx = bx * 8 + x;
                        int ry = (cy + dy + 64) % 64;
                        int rx = (cx + dx + 64) % 64;
                        int d = cur[cy][cx] - ref[ry][rx];
                        if (d < 0) { d = 0 - d; }
                        acc = acc + d;
                    }
                    costbuf[n] = acc;
                    n = n + 1;
                }
            }
            for (int k = 0; k < 25; k++) {
                if (costbuf[k] < 0) {            // never taken: corrupt SAD
                    corrupt = corrupt + 1;
                } else if (costbuf[k] < best[mb].cost) {
                    best[mb].cost = costbuf[k];
                    best[mb].dy = k / 5 - 2;
                    best[mb].dx = k % 5 - 2;
                }
            }
            free(costbuf);
        }
    }
    int total = 0;
    for (int mb = 0; mb < 64; mb++) { total = total + best[mb].cost; }
    print(total);
    print(bits_total % 1000);
    print(corrupt);
}
`

// 544.nab — molecular dynamics: pairwise force accumulation reading
// coordinates that only an outer integration loop writes. Idioms:
// read-only speculation per inner loop, sqrt-heavy float math, biased
// overlap check, affine force arrays.
const srcNab = `
int seed;
int rnd() { seed = seed * 1103515245 + 12345; return (seed >> 16) & 32767; }

float pos_x[80];
float pos_y[80];
float force_x[80];
float force_y[80];
int overlaps;

void init() {
    for (int i = 0; i < 80; i++) {
        pos_x[i] = (float)(rnd() % 1000) / 10.0;
        pos_y[i] = (float)(rnd() % 1000) / 10.0;
    }
}

float row_peak;
float peak_sum;

// Pairwise forces through raw pointers: positions and forces are
// statically indistinguishable inside the kernel.
void forces(float* px, float* py, float* fx, float* fy) {
    for (int i = 0; i < 80; i++) {
        fx[i] = 0.0;
        fy[i] = 0.0;
    }
    for (int i = 0; i < 80; i++) {
        if (overlaps > 1000000) {                // never taken
            peak_sum = peak_sum - 1.0;           // rare path skips the reset
        } else {
            row_peak = 0.0;                      // kills the recurrence
        }
        peak_sum = peak_sum + row_peak;          // join read
        for (int j = 0; j < 80; j++) {
            if (i != j) {
                float dx = px[i] - px[j];
                float dy = py[i] - py[j];
                float r2 = dx * dx + dy * dy + 0.001;
                if (r2 < 0.0000001) {            // never taken: overlap
                    overlaps = overlaps + 1;
                } else {
                    float inv = 1.0 / (r2 * sqrt(r2));
                    fx[i] += dx * inv;
                    fy[i] += dy * inv;
                }
            }
        }
        row_peak = row_peak + fx[i];             // trailing cross-iter store
    }
}

void main() {
    seed = 67;
    init();
    for (int step = 0; step < 25; step++) {
        forces(pos_x, pos_y, force_x, force_y);
        for (int i = 0; i < 80; i++) {
            pos_x[i] = pos_x[i] + force_x[i] * 0.05;
            pos_y[i] = pos_y[i] + force_y[i] * 0.05;
        }
    }
    float s = 0.0;
    for (int i = 0; i < 80; i++) { s += pos_x[i]; }
    print(s);
    print(peak_sum);
    print(overlaps);
}
`
