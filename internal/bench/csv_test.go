package bench

import (
	"encoding/csv"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"
)

// TestWriteCSVsRoundTrip writes every experiment CSV into a temp dir,
// reads each back, and checks the parsed values reproduce the inputs to
// the 4-decimal precision the writer commits to.
func TestWriteCSVsRoundTrip(t *testing.T) {
	rows := []Fig8Row{
		{Bench: "181.mcf", HotLoops: 3, Queries: 120, CAF: 41.25, ConfExtra: 10.5,
			SCAFExtra: 20.125, MemSpec: 18.0625, Observed: 10.0625},
		{Bench: "129.compress", HotLoops: 1, Queries: 48, CAF: 100},
	}
	pts := []Fig9Point{
		{Bench: "181.mcf", Loop: "main/body.2", Conf: 55.5, SCAF: 81.25},
		{Bench: "181.mcf", Loop: "main/body.5", Conf: 100, SCAF: 100},
	}
	t2 := Table2Result{
		Rows: []Table2Row{
			{Name: "Memory Analysis (CAF)", BenchLevel: 100, LoopLevel: 87.5, QueryLevel: 63.0625},
			{Name: "Read-only", BenchLevel: 50, LoopLevel: 25, QueryLevel: 12.5},
		},
		Benchmarks: 2, Loops: 8, ImprovedQuery: 16, TotalQueries: 168,
	}
	f10 := []Fig10Series{{
		Name: "SCAF", Count: 2, Geomean: 1500 * time.Nanosecond,
		P50: time.Microsecond, P95: 2 * time.Microsecond, P99: 3 * time.Microsecond,
		EvalsPerQuery: 7.25,
		Latencies:     []time.Duration{time.Microsecond, 2 * time.Microsecond},
		Fractions:     []float64{0.5, 1.0},
	}}

	dir := filepath.Join(t.TempDir(), "nested", "out") // MkdirAll path
	if err := WriteCSVs(dir, rows, pts, t2, f10); err != nil {
		t.Fatalf("WriteCSVs: %v", err)
	}

	read := func(name string) [][]string {
		t.Helper()
		fh, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("open %s: %v", name, err)
		}
		defer fh.Close()
		recs, err := csv.NewReader(fh).ReadAll()
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		return recs
	}
	pf := func(s string) float64 {
		t.Helper()
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("parse float %q: %v", s, err)
		}
		return v
	}
	close4 := func(got float64, want float64, what string) {
		t.Helper()
		if math.Abs(got-want) > 5e-5 {
			t.Errorf("%s = %v, want %v", what, got, want)
		}
	}

	f8 := read("fig8.csv")
	if len(f8) != 1+len(rows) {
		t.Fatalf("fig8 rows = %d", len(f8))
	}
	wantHdr := []string{"benchmark", "caf", "confluence_extra", "scaf_extra",
		"memspec_residual", "observed", "hot_loops", "queries"}
	for i, h := range wantHdr {
		if f8[0][i] != h {
			t.Errorf("fig8 header[%d] = %q, want %q", i, f8[0][i], h)
		}
	}
	for i, r := range rows {
		rec := f8[i+1]
		if rec[0] != r.Bench {
			t.Errorf("fig8[%d] bench = %q", i, rec[0])
		}
		close4(pf(rec[1]), r.CAF, "caf")
		close4(pf(rec[2]), r.ConfExtra, "confluence_extra")
		close4(pf(rec[3]), r.SCAFExtra, "scaf_extra")
		close4(pf(rec[4]), r.MemSpec, "memspec_residual")
		close4(pf(rec[5]), r.Observed, "observed")
		if rec[6] != strconv.Itoa(r.HotLoops) || rec[7] != strconv.Itoa(r.Queries) {
			t.Errorf("fig8[%d] ints = %v/%v", i, rec[6], rec[7])
		}
	}

	f9 := read("fig9.csv")
	if len(f9) != 1+len(pts) {
		t.Fatalf("fig9 rows = %d", len(f9))
	}
	for i, p := range pts {
		rec := f9[i+1]
		if rec[0] != p.Bench || rec[1] != p.Loop {
			t.Errorf("fig9[%d] id = %v", i, rec[:2])
		}
		close4(pf(rec[2]), p.Conf, "confluence_nodep")
		close4(pf(rec[3]), p.SCAF, "scaf_nodep")
	}

	tb := read("table2.csv")
	// Header + rows + trailing populations line.
	if len(tb) != 1+len(t2.Rows)+1 {
		t.Fatalf("table2 rows = %d", len(tb))
	}
	for i, r := range t2.Rows {
		rec := tb[i+1]
		if rec[0] != r.Name {
			t.Errorf("table2[%d] name = %q", i, rec[0])
		}
		close4(pf(rec[1]), r.BenchLevel, "benchmark_pct")
		close4(pf(rec[2]), r.LoopLevel, "loop_pct")
		close4(pf(rec[3]), r.QueryLevel, "improved_query_pct")
	}

	ft := read("fig10.csv")
	if len(ft) != 1+len(f10[0].Fractions) {
		t.Fatalf("fig10 rows = %d", len(ft))
	}
	for i := range f10[0].Fractions {
		rec := ft[i+1]
		if rec[0] != "SCAF" {
			t.Errorf("fig10[%d] config = %q", i, rec[0])
		}
		close4(pf(rec[1]), f10[0].Fractions[i], "fraction")
		if rec[2] != strconv.FormatInt(int64(f10[0].Latencies[i]), 10) {
			t.Errorf("fig10[%d] latency = %q", i, rec[2])
		}
		if rec[3] != strconv.FormatInt(int64(f10[0].Geomean), 10) {
			t.Errorf("fig10[%d] geomean = %q", i, rec[3])
		}
		close4(pf(rec[4]), f10[0].EvalsPerQuery, "evals_per_query")
	}
}
