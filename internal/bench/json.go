package bench

import (
	"encoding/json"
	"io"
	"sort"

	"scaf/internal/cfg"
	"scaf/internal/core"
	"scaf/internal/pdg"
)

// ReportCounters is the JSON shape of one scheme's orchestration counters
// (core.Stats without the latency samples).
type ReportCounters struct {
	TopQueries     int64 `json:"top_queries"`
	PremiseQueries int64 `json:"premise_queries"`
	ModuleEvals    int64 `json:"module_evals"`
	Conflicts      int64 `json:"conflicts"`
	CacheHits      int64 `json:"cache_hits"`
	SharedHits     int64 `json:"shared_hits"`
	Timeouts       int64 `json:"timeouts"`
	CycleBreaks    int64 `json:"cycle_breaks"`
	DepthLimits    int64 `json:"depth_limits"`
}

func countersOf(st *core.Stats) ReportCounters {
	if st == nil {
		return ReportCounters{}
	}
	return ReportCounters{
		TopQueries:     st.TopQueries,
		PremiseQueries: st.PremiseQueries,
		ModuleEvals:    st.ModuleEvals,
		Conflicts:      st.Conflicts,
		CacheHits:      st.CacheHits,
		SharedHits:     st.SharedHits,
		Timeouts:       st.Timeouts,
		CycleBreaks:    st.CycleBreaks,
		DepthLimits:    st.DepthLimits,
	}
}

// ReportLatency summarizes one scheme's per-top-level-query cost. The
// *_work_evals fields count module evaluations — a deterministic,
// machine-independent work measure (identical across hosts and worker
// counts absent a shared cache), which is what the regression gate
// compares. The *_ns wall-clock fields are informational only.
type ReportLatency struct {
	Samples      int   `json:"samples"`
	P50WorkEvals int64 `json:"p50_work_evals"`
	P90WorkEvals int64 `json:"p90_work_evals"`
	MaxWorkEvals int64 `json:"max_work_evals"`
	P50NS        int64 `json:"p50_ns"`
	P90NS        int64 `json:"p90_ns"`
}

// latencyOf derives the latency summary from recorded samples. Samples
// are sorted first, so the summary is independent of the order parallel
// workers happened to finish in.
func latencyOf(st *core.Stats) (ReportLatency, bool) {
	if st == nil || len(st.WorkSamples) == 0 {
		return ReportLatency{}, false
	}
	work := append([]int64(nil), st.WorkSamples...)
	ns := make([]int64, len(st.Latencies))
	for i, d := range st.Latencies {
		ns[i] = int64(d)
	}
	sort.Slice(work, func(i, j int) bool { return work[i] < work[j] })
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	nearest := func(sorted []int64, p int) int64 {
		if len(sorted) == 0 {
			return 0
		}
		idx := (len(sorted)*p + 99) / 100
		if idx < 1 {
			idx = 1
		}
		if idx > len(sorted) {
			idx = len(sorted)
		}
		return sorted[idx-1]
	}
	return ReportLatency{
		Samples:      len(work),
		P50WorkEvals: nearest(work, 50),
		P90WorkEvals: nearest(work, 90),
		MaxWorkEvals: work[len(work)-1],
		P50NS:        nearest(ns, 50),
		P90NS:        nearest(ns, 90),
	}, true
}

// ReportBench is one benchmark's entry in the machine-readable report.
type ReportBench struct {
	Name     string `json:"name"`
	HotLoops int    `json:"hot_loops"`
	// Queries counts the dependence queries of the SCAF run.
	Queries int `json:"queries"`
	// NoDepPct maps scheme name → weighted %NoDep over hot loops.
	NoDepPct map[string]float64 `json:"nodep_pct"`
	// Counters maps scheme name → orchestration counters.
	Counters map[string]ReportCounters `json:"counters"`
	// Latency maps scheme name → per-query cost summary; present only
	// when the suite ran with latency recording on.
	Latency map[string]ReportLatency `json:"latency,omitempty"`
	// Exec is the speculative-execution summary; present only when the
	// report was built with -execute (see ExecuteSuite / AttachExec).
	Exec *ReportExec `json:"exec,omitempty"`
}

// Report is the -json output of scaf-bench: per-benchmark dependence
// coverage and orchestration accounting, stable enough to diff across
// commits in CI.
type Report struct {
	Parallelism int           `json:"parallelism"`
	Benchmarks  []ReportBench `json:"benchmarks"`
}

// BuildReport derives the machine-readable report from analyzed suites.
func BuildReport(s *Suite, as []*Analysis) *Report {
	r := &Report{Parallelism: s.Parallelism}
	for _, a := range as {
		b := a.B
		weights := b.LoopWeights()
		weight := func(l *cfg.Loop) float64 { return weights[l] }
		rb := ReportBench{
			Name:     b.Name,
			HotLoops: len(b.Hot),
			NoDepPct: map[string]float64{},
			Counters: map[string]ReportCounters{},
		}
		for scheme, byLoop := range map[string]map[*cfg.Loop]*pdg.LoopResult{
			"CAF": a.CAF, "Confluence": a.Conf, "SCAF": a.SCAF,
		} {
			results := make([]*pdg.LoopResult, 0, len(b.Hot))
			for _, l := range b.Hot {
				if lr := byLoop[l]; lr != nil {
					results = append(results, lr)
				}
			}
			rb.NoDepPct[scheme] = pdg.WeightedNoDep(results, weight)
			rb.Counters[scheme] = countersOf(a.Stats[scheme])
			if lat, ok := latencyOf(a.Stats[scheme]); ok {
				if rb.Latency == nil {
					rb.Latency = map[string]ReportLatency{}
				}
				rb.Latency[scheme] = lat
			}
		}
		for _, l := range b.Hot {
			if lr := a.SCAF[l]; lr != nil {
				rb.Queries += len(lr.Queries)
			}
		}
		r.Benchmarks = append(r.Benchmarks, rb)
	}
	return r
}

// WriteReport writes the report as indented JSON.
func WriteReport(w io.Writer, r *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
