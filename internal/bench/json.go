package bench

import (
	"encoding/json"
	"io"

	"scaf/internal/cfg"
	"scaf/internal/core"
	"scaf/internal/pdg"
)

// ReportCounters is the JSON shape of one scheme's orchestration counters
// (core.Stats without the latency samples).
type ReportCounters struct {
	TopQueries     int64 `json:"top_queries"`
	PremiseQueries int64 `json:"premise_queries"`
	ModuleEvals    int64 `json:"module_evals"`
	Conflicts      int64 `json:"conflicts"`
	CacheHits      int64 `json:"cache_hits"`
	SharedHits     int64 `json:"shared_hits"`
	Timeouts       int64 `json:"timeouts"`
	CycleBreaks    int64 `json:"cycle_breaks"`
	DepthLimits    int64 `json:"depth_limits"`
}

func countersOf(st *core.Stats) ReportCounters {
	if st == nil {
		return ReportCounters{}
	}
	return ReportCounters{
		TopQueries:     st.TopQueries,
		PremiseQueries: st.PremiseQueries,
		ModuleEvals:    st.ModuleEvals,
		Conflicts:      st.Conflicts,
		CacheHits:      st.CacheHits,
		SharedHits:     st.SharedHits,
		Timeouts:       st.Timeouts,
		CycleBreaks:    st.CycleBreaks,
		DepthLimits:    st.DepthLimits,
	}
}

// ReportBench is one benchmark's entry in the machine-readable report.
type ReportBench struct {
	Name     string `json:"name"`
	HotLoops int    `json:"hot_loops"`
	// Queries counts the dependence queries of the SCAF run.
	Queries int `json:"queries"`
	// NoDepPct maps scheme name → weighted %NoDep over hot loops.
	NoDepPct map[string]float64 `json:"nodep_pct"`
	// Counters maps scheme name → orchestration counters.
	Counters map[string]ReportCounters `json:"counters"`
}

// Report is the -json output of scaf-bench: per-benchmark dependence
// coverage and orchestration accounting, stable enough to diff across
// commits in CI.
type Report struct {
	Parallelism int           `json:"parallelism"`
	Benchmarks  []ReportBench `json:"benchmarks"`
}

// BuildReport derives the machine-readable report from analyzed suites.
func BuildReport(s *Suite, as []*Analysis) *Report {
	r := &Report{Parallelism: s.Parallelism}
	for _, a := range as {
		b := a.B
		weights := b.LoopWeights()
		weight := func(l *cfg.Loop) float64 { return weights[l] }
		rb := ReportBench{
			Name:     b.Name,
			HotLoops: len(b.Hot),
			NoDepPct: map[string]float64{},
			Counters: map[string]ReportCounters{},
		}
		for scheme, byLoop := range map[string]map[*cfg.Loop]*pdg.LoopResult{
			"CAF": a.CAF, "Confluence": a.Conf, "SCAF": a.SCAF,
		} {
			results := make([]*pdg.LoopResult, 0, len(b.Hot))
			for _, l := range b.Hot {
				if lr := byLoop[l]; lr != nil {
					results = append(results, lr)
				}
			}
			rb.NoDepPct[scheme] = pdg.WeightedNoDep(results, weight)
			rb.Counters[scheme] = countersOf(a.Stats[scheme])
		}
		for _, l := range b.Hot {
			if lr := a.SCAF[l]; lr != nil {
				rb.Queries += len(lr.Queries)
			}
		}
		r.Benchmarks = append(r.Benchmarks, rb)
	}
	return r
}

// WriteReport writes the report as indented JSON.
func WriteReport(w io.Writer, r *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
