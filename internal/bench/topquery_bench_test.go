package bench_test

import (
	"testing"

	"scaf"
	"scaf/internal/bench"
	"scaf/internal/core"
)

// topQueryFixture loads one benchmark and precomputes the dependence-query
// set of its heaviest hot loop, so the benchmarks below time nothing but
// top-level query resolution.
type topQueryFixture struct {
	b       *bench.Benchmark
	queries []core.ModRefQuery
}

func loadTopQueryFixture(tb testing.TB) *topQueryFixture {
	tb.Helper()
	b, err := bench.Load("181.mcf")
	if err != nil {
		tb.Fatalf("loading benchmark: %v", err)
	}
	if len(b.Hot) == 0 {
		tb.Fatal("181.mcf has no hot loops")
	}
	l := b.Hot[0]
	dt := b.Sys.Prog.Dom[l.Fn]
	pdt := b.Sys.Prog.PostDom[l.Fn]
	fx := &topQueryFixture{b: b}
	ops := l.MemOps()
	for _, i1 := range ops {
		for _, i2 := range ops {
			for _, rel := range []core.TemporalRelation{core.Same, core.Before} {
				if rel == core.Same && i1 == i2 {
					continue
				}
				if !i1.Writes() && !i2.Writes() {
					continue
				}
				fx.queries = append(fx.queries, core.ModRefQuery{
					I1: i1, I2: i2, Rel: rel, Loop: l, DT: dt, PDT: pdt,
				})
			}
		}
	}
	if len(fx.queries) == 0 {
		tb.Fatal("hot loop produced no dependence queries")
	}
	return fx
}

// BenchmarkTopQuery measures the cost of a single top-level mod-ref query
// on a fresh-per-iteration-set orchestrator — the unit the serving layer
// issues millions of times. Run with -benchmem; the bench-mem CI gate pins
// allocs/op (see Makefile bench-mem).
func BenchmarkTopQuery(b *testing.B) {
	fx := loadTopQueryFixture(b)
	o := fx.b.Sys.Orchestrator(scaf.SchemeSCAF)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := fx.queries[i%len(fx.queries)]
		o.ModRef(&q)
	}
}

// BenchmarkTopQueryLoop measures whole-loop resolution through the batch
// path (pdg.Client.ResolveLoop), amortizing per-loop premise work across
// the loop's query set.
func BenchmarkTopQueryLoop(b *testing.B) {
	fx := loadTopQueryFixture(b)
	client := fx.b.Sys.Client()
	l := fx.b.Hot[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := fx.b.Sys.Orchestrator(scaf.SchemeSCAF)
		client.ResolveLoop(o, l)
	}
}
