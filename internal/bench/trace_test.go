package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"scaf"
	"scaf/internal/trace"
)

// TestTracedAnalysisReconciles runs a real benchmark's SCAF analysis with
// tracing on and checks the acceptance invariant: the JSONL stream's
// per-module consult totals reconcile exactly with the orchestration
// counters, through a disk round trip.
func TestTracedAnalysisReconciles(t *testing.T) {
	b, err := Load("129.compress")
	if err != nil {
		t.Fatal(err)
	}
	events, results, stats := TracedAnalysis(b, scaf.SchemeSCAF, 4)
	if len(results) != len(b.Hot) {
		t.Fatalf("results = %d, hot loops = %d", len(results), len(b.Hot))
	}
	if stats.TopQueries == 0 {
		t.Fatal("no queries ran")
	}
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	rt, err := trace.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m := trace.Aggregate(rt)
	if err := m.Reconcile(stats); err != nil {
		t.Fatalf("round-tripped trace does not reconcile: %v", err)
	}
	// The rendered metrics carry the reconciliation verdict for operators.
	out := RenderTraceMetrics(b.Name, rt, stats)
	if !strings.Contains(out, "reconciles") {
		t.Errorf("metrics rendering lost the verdict:\n%s", out)
	}
	// Per-module consult totals sum to the module-eval counter.
	var sum int64
	for _, mm := range m.PerModule {
		sum += mm.Consults
	}
	if sum != stats.ModuleEvals {
		t.Errorf("per-module consults sum %d != ModuleEvals %d", sum, stats.ModuleEvals)
	}
}

// TestBuildReport checks the -json report derivation: per-scheme coverage
// and counters for every analyzed benchmark, serializable as JSON.
func TestBuildReport(t *testing.T) {
	s, err := LoadSuite("129.compress")
	if err != nil {
		t.Fatal(err)
	}
	s.Parallelism = 2
	as := AnalyzeSuite(s)
	r := BuildReport(s, as)
	if len(r.Benchmarks) != 1 || r.Parallelism != 2 {
		t.Fatalf("report shape wrong: %+v", r)
	}
	rb := r.Benchmarks[0]
	if rb.Name != "129.compress" || rb.HotLoops == 0 || rb.Queries == 0 {
		t.Fatalf("benchmark entry wrong: %+v", rb)
	}
	for _, scheme := range []string{"CAF", "Confluence", "SCAF"} {
		if _, ok := rb.NoDepPct[scheme]; !ok {
			t.Errorf("missing coverage for %s", scheme)
		}
		if rb.Counters[scheme].TopQueries == 0 {
			t.Errorf("missing counters for %s", scheme)
		}
	}
	// SCAF coverage dominates CAF (speculation only removes dependences).
	if rb.NoDepPct["SCAF"] < rb.NoDepPct["CAF"] {
		t.Errorf("SCAF %%NoDep %.1f < CAF %.1f", rb.NoDepPct["SCAF"], rb.NoDepPct["CAF"])
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, r); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if back.Benchmarks[0].Queries != rb.Queries {
		t.Error("report did not round-trip")
	}
}
