package bench

import (
	"testing"

	"scaf"
	"scaf/internal/mcgen"
	"scaf/internal/pdg"
	"scaf/internal/profile"
)

// soundnessTrial generates the random program of one seed and
// cross-checks every dependence any scheme disproves against the ground
// truth recorded by the memory-dependence profiler during the very
// execution the speculation was trained on. A manifested dependence
// disproved by anything but value prediction is a soundness bug.
//
// Loop thresholds are lowered so the small random loops all get analyzed.
// Shared by the deterministic sweep below and FuzzMCGenSoundness.
func soundnessTrial(t testing.TB, seed int64) (loops, queries int) {
	hot := profile.HotLoopParams{MinWeightFrac: 0.001, MinAvgIters: 1.5}
	src := mcgen.New(seed).Program()
	sys, err := scaf.Load("fuzz", src, scaf.Options{HotLoops: &hot})
	if err != nil {
		t.Fatalf("seed %d: %v\n%s", seed, err, src)
	}
	client := sys.Client()
	ms := sys.MemSpec()
	loops = len(sys.HotLoops())
	for _, schemeName := range []scaf.Scheme{scaf.SchemeCAF, scaf.SchemeConfluence, scaf.SchemeSCAF} {
		o := sys.Orchestrator(schemeName)
		for _, l := range sys.HotLoops() {
			res := client.AnalyzeLoop(o, l)
			queries += len(res.Queries)
			for _, q := range res.Queries {
				if !q.NoDep {
					continue
				}
				if ms.NoDep(l, q.I1, q.I2, q.Rel) {
					continue // never manifested: consistent
				}
				if schemeName != scaf.SchemeCAF && usesValuePred(q.Resp) {
					continue // value prediction may remove real deps
				}
				t.Fatalf("seed %d (%v): UNSOUND: disproved manifested dep %s -> %s (%s) in %s via %v\n%s",
					seed, schemeName, q.I1, q.I2, q.Rel, l.Name(), q.Resp.Contribs, src)
			}
		}
	}
	return loops, queries
}

// TestFuzzAnalysisSoundness is the strongest correctness statement in the
// repository: soundnessTrial over hundreds of fixed seeds.
func TestFuzzAnalysisSoundness(t *testing.T) {
	trials := 150
	if testing.Short() {
		trials = 20
	}
	totalLoops, totalQueries := 0, 0
	for seed := int64(5000); seed < int64(5000+trials); seed++ {
		loops, queries := soundnessTrial(t, seed)
		totalLoops += loops
		totalQueries += queries
	}
	if totalLoops == 0 || totalQueries == 0 {
		t.Fatalf("fuzz exercised nothing: loops=%d queries=%d", totalLoops, totalQueries)
	}
	t.Logf("fuzzed %d loops, %d queries", totalLoops, totalQueries)
}

// FuzzMCGenSoundness is the native-fuzzing face of soundnessTrial: the
// engine mutates the generator seed, exploring program shapes the fixed
// sweep never visits. Run with
//
//	go test ./internal/bench/ -run '^$' -fuzz FuzzMCGenSoundness -fuzztime 30s
//
// A crashing input is a random program where some scheme disproved a
// dependence that manifested during its own training run; the corpus
// file the engine writes pins the seed for regression.
func FuzzMCGenSoundness(f *testing.F) {
	// Seed the corpus with the start of the deterministic sweep plus a few
	// spread-out probes so coverage starts from varied program shapes.
	for _, seed := range []int64{0, 1, 42, 5000, 5001, 5002, 9000, 1 << 32, -7} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		soundnessTrial(t, seed)
	})
}

// TestFuzzSchemeMonotonicity: on random programs, per-query resolutions
// are monotone across CAF ⊆ confluence ⊆ SCAF.
func TestFuzzSchemeMonotonicity(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 10
	}
	hot := profile.HotLoopParams{MinWeightFrac: 0.001, MinAvgIters: 1.5}
	for seed := int64(9000); seed < int64(9000+trials); seed++ {
		src := mcgen.New(seed).Program()
		sys, err := scaf.Load("fuzz", src, scaf.Options{HotLoops: &hot})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		client := sys.Client()
		caf := sys.Orchestrator(scaf.SchemeCAF)
		conf := sys.Orchestrator(scaf.SchemeConfluence)
		col := sys.Orchestrator(scaf.SchemeSCAF)
		for _, l := range sys.HotLoops() {
			rCAF := client.AnalyzeLoop(caf, l).ByKey()
			rConf := client.AnalyzeLoop(conf, l).ByKey()
			for _, q := range client.AnalyzeLoop(col, l).Queries {
				k := pdg.Key{I1: q.I1, I2: q.I2, Rel: q.Rel}
				if rCAF[k] != nil && rCAF[k].NoDep && !(rConf[k] != nil && rConf[k].NoDep) {
					t.Fatalf("seed %d: confluence lost a CAF resolution in %s\n%s", seed, l.Name(), src)
				}
				if rConf[k] != nil && rConf[k].NoDep && !q.NoDep {
					t.Fatalf("seed %d: SCAF lost a confluence resolution in %s\n%s", seed, l.Name(), src)
				}
			}
		}
	}
}
