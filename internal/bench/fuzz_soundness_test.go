// Soundness fuzzing, delegated to internal/oracle.
//
// This file lives in the external test package: internal/oracle depends on
// internal/bench (through internal/server), so an in-package test importing
// the oracle would be an import cycle.
package bench_test

import (
	"testing"

	"scaf/internal/oracle"
)

// soundnessTrial runs the soundness + monotonicity oracle over the random
// program of one seed: every dependence any scheme disproves is
// cross-checked against the ground truth recorded by the memory-dependence
// profiler during the very execution the speculation was trained on. A
// manifested dependence disproved by anything but value prediction is a
// soundness bug.
//
// Shared by the deterministic sweep below and FuzzMCGenSoundness. The
// heavier differential checks (parallel/shared-cache/server drift,
// metamorphic transforms) run in the oracle package's own sweep and in the
// scaf-oracle CLI.
func soundnessTrial(t testing.TB, seed int64) (loops, queries int) {
	rep, err := oracle.CheckSeed(oracle.FastConfig(), seed)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if rep.Failed() {
		t.Fatalf("seed %d: %s\n%s", seed, rep.Summary(), rep.Source)
	}
	return rep.HotLoops, rep.Queries
}

// TestFuzzAnalysisSoundness is the strongest correctness statement in the
// repository: soundnessTrial over hundreds of fixed seeds.
func TestFuzzAnalysisSoundness(t *testing.T) {
	trials := 150
	if testing.Short() {
		trials = 20
	}
	totalLoops, totalQueries := 0, 0
	for seed := int64(5000); seed < int64(5000+trials); seed++ {
		loops, queries := soundnessTrial(t, seed)
		totalLoops += loops
		totalQueries += queries
	}
	if totalLoops == 0 || totalQueries == 0 {
		t.Fatalf("fuzz exercised nothing: loops=%d queries=%d", totalLoops, totalQueries)
	}
	t.Logf("fuzzed %d loops, %d queries", totalLoops, totalQueries)
}

// FuzzMCGenSoundness is the native-fuzzing face of soundnessTrial: the
// engine mutates the generator seed, exploring program shapes the fixed
// sweep never visits. Run with
//
//	go test ./internal/bench/ -run '^$' -fuzz FuzzMCGenSoundness -fuzztime 30s
//
// A crashing input is a random program where some scheme disproved a
// dependence that manifested during its own training run; the corpus
// file the engine writes pins the seed for regression. To shrink a crash
// into a committed reproducer, feed the seed to
//
//	go run ./cmd/scaf-oracle -start <seed> -seeds 1 -shrink
func FuzzMCGenSoundness(f *testing.F) {
	// Seed the corpus with the start of the deterministic sweep plus a few
	// spread-out probes so coverage starts from varied program shapes.
	for _, seed := range []int64{0, 1, 42, 5000, 5001, 5002, 9000, 1 << 32, -7} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		soundnessTrial(t, seed)
	})
}

// TestFuzzSchemeMonotonicity: on random programs, per-query resolutions
// are monotone across CAF ⊆ confluence ⊆ SCAF. FastConfig includes the
// monotonicity check, so this is the same trial over a disjoint seed
// range; kept separate to preserve the historical seed coverage.
func TestFuzzSchemeMonotonicity(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 10
	}
	for seed := int64(9000); seed < int64(9000+trials); seed++ {
		soundnessTrial(t, seed)
	}
}
