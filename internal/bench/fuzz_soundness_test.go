package bench

import (
	"testing"

	"scaf"
	"scaf/internal/mcgen"
	"scaf/internal/pdg"
	"scaf/internal/profile"
)

// TestFuzzAnalysisSoundness is the strongest correctness statement in the
// repository: for hundreds of random programs, every dependence any
// scheme disproves is cross-checked against the ground truth recorded by
// the memory-dependence profiler during the very execution the
// speculation was trained on. A manifested dependence disproved by
// anything but value prediction is a soundness bug.
//
// Loop thresholds are lowered so the small random loops all get analyzed.
func TestFuzzAnalysisSoundness(t *testing.T) {
	trials := 150
	if testing.Short() {
		trials = 20
	}
	hot := profile.HotLoopParams{MinWeightFrac: 0.001, MinAvgIters: 1.5}
	totalLoops, totalQueries := 0, 0
	for seed := int64(5000); seed < int64(5000+trials); seed++ {
		src := mcgen.New(seed).Program()
		sys, err := scaf.Load("fuzz", src, scaf.Options{HotLoops: &hot})
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		client := sys.Client()
		ms := sys.MemSpec()
		totalLoops += len(sys.HotLoops())
		for _, schemeName := range []scaf.Scheme{scaf.SchemeCAF, scaf.SchemeConfluence, scaf.SchemeSCAF} {
			o := sys.Orchestrator(schemeName)
			for _, l := range sys.HotLoops() {
				res := client.AnalyzeLoop(o, l)
				totalQueries += len(res.Queries)
				for _, q := range res.Queries {
					if !q.NoDep {
						continue
					}
					if ms.NoDep(l, q.I1, q.I2, q.Rel) {
						continue // never manifested: consistent
					}
					if schemeName != scaf.SchemeCAF && usesValuePred(q.Resp) {
						continue // value prediction may remove real deps
					}
					t.Fatalf("seed %d (%v): UNSOUND: disproved manifested dep %s -> %s (%s) in %s via %v\n%s",
						seed, schemeName, q.I1, q.I2, q.Rel, l.Name(), q.Resp.Contribs, src)
				}
			}
		}
	}
	if totalLoops == 0 || totalQueries == 0 {
		t.Fatalf("fuzz exercised nothing: loops=%d queries=%d", totalLoops, totalQueries)
	}
	t.Logf("fuzzed %d loops, %d queries", totalLoops, totalQueries)
}

// TestFuzzSchemeMonotonicity: on random programs, per-query resolutions
// are monotone across CAF ⊆ confluence ⊆ SCAF.
func TestFuzzSchemeMonotonicity(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 10
	}
	hot := profile.HotLoopParams{MinWeightFrac: 0.001, MinAvgIters: 1.5}
	for seed := int64(9000); seed < int64(9000+trials); seed++ {
		src := mcgen.New(seed).Program()
		sys, err := scaf.Load("fuzz", src, scaf.Options{HotLoops: &hot})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		client := sys.Client()
		caf := sys.Orchestrator(scaf.SchemeCAF)
		conf := sys.Orchestrator(scaf.SchemeConfluence)
		col := sys.Orchestrator(scaf.SchemeSCAF)
		for _, l := range sys.HotLoops() {
			rCAF := client.AnalyzeLoop(caf, l).ByKey()
			rConf := client.AnalyzeLoop(conf, l).ByKey()
			for _, q := range client.AnalyzeLoop(col, l).Queries {
				k := pdg.Key{I1: q.I1, I2: q.I2, Rel: q.Rel}
				if rCAF[k] != nil && rCAF[k].NoDep && !(rConf[k] != nil && rConf[k].NoDep) {
					t.Fatalf("seed %d: confluence lost a CAF resolution in %s\n%s", seed, l.Name(), src)
				}
				if rConf[k] != nil && rConf[k].NoDep && !q.NoDep {
					t.Fatalf("seed %d: SCAF lost a confluence resolution in %s\n%s", seed, l.Name(), src)
				}
			}
		}
	}
}
