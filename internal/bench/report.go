package bench

import (
	"fmt"
	"strings"
)

// RenderFig8 renders the dependence-coverage table (the paper's Fig. 8 as
// rows: one stacked bar per benchmark).
func RenderFig8(rows []Fig8Row) string {
	var b strings.Builder
	b.WriteString("Figure 8 — dependence coverage by scheme (% of PDG queries, loop-weighted)\n")
	fmt.Fprintf(&b, "%-15s %6s %6s %6s | %8s %8s | %5s %7s\n",
		"benchmark", "CAF", "Confl", "SCAF", "MemSpec+", "Observed", "loops", "queries")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-15s %6.1f %6.1f %6.1f | %8.1f %8.1f | %5d %7d\n",
			r.Bench, r.CAF, r.ConfluenceTotal(), r.SCAFTotal(), r.MemSpec, r.Observed,
			r.HotLoops, r.Queries)
	}
	var avg Fig8Row
	for _, r := range rows {
		avg.CAF += r.CAF
		avg.ConfExtra += r.ConfExtra
		avg.SCAFExtra += r.SCAFExtra
		avg.MemSpec += r.MemSpec
		avg.Observed += r.Observed
	}
	n := float64(len(rows))
	if n > 0 {
		fmt.Fprintf(&b, "%-15s %6.1f %6.1f %6.1f | %8.1f %8.1f\n",
			"Average", avg.CAF/n, (avg.CAF+avg.ConfExtra)/n,
			(avg.CAF+avg.ConfExtra+avg.SCAFExtra)/n, avg.MemSpec/n, avg.Observed/n)
	}
	s := SummarizeFig8(rows)
	fmt.Fprintf(&b, "\nSCAF over confluence: +%.2f points of coverage on average\n", s.MeanIncrease)
	fmt.Fprintf(&b, "Residual memory-speculation need reduced by %.1f%% (geomean)\n",
		100*s.MemSpecReductionGeomean)
	return b.String()
}

// RenderFig9 renders the per-hot-loop scatter as a table plus an ASCII
// plot of SCAF (y) vs confluence (x) %NoDep.
func RenderFig9(pts []Fig9Point) string {
	var b strings.Builder
	b.WriteString("Figure 9 — %NoDep per hot loop: composition by collaboration (SCAF) vs confluence\n\n")
	above, equal := 0, 0
	for _, p := range pts {
		switch {
		case p.SCAF > p.Conf+1e-9:
			above++
		case p.SCAF >= p.Conf-1e-9:
			equal++
		}
	}
	fmt.Fprintf(&b, "%d hot loops: SCAF better on %d, equal on %d, worse on %d\n\n",
		len(pts), above, equal, len(pts)-above-equal)

	// ASCII scatter, 33x33 grid.
	const n = 33
	grid := make([][]byte, n)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", n))
	}
	for i := 0; i < n; i++ {
		grid[n-1-i][i] = '.' // diagonal
	}
	for _, p := range pts {
		x := int(p.Conf / 100 * float64(n-1))
		y := int(p.SCAF / 100 * float64(n-1))
		grid[n-1-y][x] = 'o'
	}
	b.WriteString("SCAF%\n")
	for i, row := range grid {
		label := "     "
		switch i {
		case 0:
			label = "100 |"
		case n / 2:
			label = " 50 |"
		case n - 1:
			label = "  0 |"
		default:
			label = "    |"
		}
		b.WriteString(label + string(row) + "\n")
	}
	b.WriteString("     " + strings.Repeat("-", n) + "\n")
	b.WriteString("     0               50              100  Confluence%\n\n")
	fmt.Fprintf(&b, "%-15s %-28s %8s %8s\n", "benchmark", "loop", "Confl", "SCAF")
	for _, p := range pts {
		marker := ""
		if p.SCAF > p.Conf+1e-9 {
			marker = "  *"
		}
		fmt.Fprintf(&b, "%-15s %-28s %8.1f %8.1f%s\n", p.Bench, p.Loop, p.Conf, p.SCAF, marker)
	}
	return b.String()
}

// RenderTable2 renders the collaboration-coverage table.
func RenderTable2(t Table2Result) string {
	var b strings.Builder
	b.WriteString("Table 2 — collaboration coverage of modules in SCAF\n")
	fmt.Fprintf(&b, "(over %d benchmarks, %d hot loops, %d improved queries of %d total)\n\n",
		t.Benchmarks, t.Loops, t.ImprovedQuery, t.TotalQueries)
	fmt.Fprintf(&b, "%-30s %10s %10s %10s\n", "analysis modules", "benchmark", "loop", "improved-q")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-30s %9.2f%% %9.2f%% %9.2f%%\n", r.Name, r.BenchLevel, r.LoopLevel, r.QueryLevel)
	}
	return b.String()
}

// RenderFig10 renders the latency-distribution comparison.
func RenderFig10(series []Fig10Series) string {
	var b strings.Builder
	b.WriteString("Figure 10 — query latency distribution\n\n")
	fmt.Fprintf(&b, "%-26s %9s %10s %10s %10s %10s %12s\n",
		"configuration", "queries", "geomean", "p50", "p95", "p99", "evals/query")
	for _, s := range series {
		fmt.Fprintf(&b, "%-26s %9d %10s %10s %10s %10s %12.1f\n",
			s.Name, s.Count, s.Geomean, s.P50, s.P95, s.P99, s.EvalsPerQuery)
	}
	b.WriteString("\nCDF sample points:\n")
	for _, s := range series {
		fmt.Fprintf(&b, "%-26s", s.Name)
		for i, f := range s.Fractions {
			fmt.Fprintf(&b, "  %.0f%%≤%s", f*100, s.Latencies[i])
		}
		b.WriteString("\n")
	}
	if len(series) == 3 {
		g0 := float64(series[0].Geomean) // CAF
		g1 := float64(series[1].Geomean) // SCAF w/o desired result
		g2 := float64(series[2].Geomean) // SCAF
		if g1 > 0 && g0 > 0 {
			fmt.Fprintf(&b, "\nDesired-result parameter: %+.1f%% wall-clock (geomean), %.1f%% module evaluations\n",
				100*(g2/g1-1), 100*(1-series[2].EvalsPerQuery/series[1].EvalsPerQuery))
			fmt.Fprintf(&b, "SCAF vs CAF geomean latency: %+.1f%%\n", 100*(g2/g0-1))
		}
	}
	return b.String()
}

// RenderFig7 renders the validation-cost comparison.
func RenderFig7() string {
	var b strings.Builder
	b.WriteString("Figure 7 — modeled per-check validation cost (abstract cycles)\n\n")
	for _, r := range Fig7() {
		bar := strings.Repeat("#", int(r.PerCheck))
		fmt.Fprintf(&b, "%-45s %6.1f %s\n", r.Scheme, r.PerCheck, bar)
	}
	b.WriteString("\nSCAF only ever emits the cheap checks; memory speculation pays the\n")
	b.WriteString("shadow-memory check on every guarded access (paper Fig. 7a vs 7b).\n")
	return b.String()
}

// RenderTable1 renders the paper's qualitative comparison of integration
// approaches (Table 1), annotated with where each design lives in this
// repository.
func RenderTable1() string {
	var b strings.Builder
	b.WriteString("Table 1 — proposals for integrating speculation into analysis\n\n")
	fmt.Fprintf(&b, "%-36s %-10s %-12s %-12s %s\n",
		"approach", "decoupled", "spec↔spec", "analysis↔spec", "here")
	rows := [][]string{
		{"Monolithic integration", "no", "yes", "no",
			"(not built: the design SCAF argues against)"},
		{"Composition by confluence", "no", "no", "yes",
			"SchemeConfluence (isolated premise routing)"},
		{"Composition by collaboration (SCAF)", "yes", "yes", "yes",
			"SchemeSCAF (collaborative premise routing)"},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-36s %-10s %-12s %-12s %s\n", r[0], r[1], r[2], r[3], r[4])
	}
	b.WriteString("\ncolumns: memory analysis decoupled from speculation /\n")
	b.WriteString("collaboration among speculative techniques / collaboration\n")
	b.WriteString("between memory analysis and speculative techniques\n")
	return b.String()
}
