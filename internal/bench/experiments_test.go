package bench

import (
	"strings"
	"testing"

	"scaf"
	"scaf/internal/spec"
)

// fig10Suite keeps the latency experiment fast: three representative
// benchmarks still produce thousands of queries.
func fig10Suite(t *testing.T) *Suite {
	t.Helper()
	s, err := LoadSuite("129.compress", "183.equake", "456.hmmer")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestFig10Shape verifies the latency experiment's paper-shape: all three
// configurations answer the same number of queries, and the
// desired-result parameter makes SCAF cheaper than SCAF-without-it.
func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("latency run in -short mode")
	}
	s := fig10Suite(t)
	series := Fig10(s)
	if len(series) != 3 {
		t.Fatalf("series = %d", len(series))
	}
	caf, noDesired, full := series[0], series[1], series[2]
	if caf.Count == 0 || caf.Count != noDesired.Count || caf.Count != full.Count {
		t.Fatalf("query counts diverge: %d %d %d", caf.Count, noDesired.Count, full.Count)
	}
	// The desired-result parameter gates expensive module slow paths and
	// must never cost module evaluations (early termination is fully
	// preserved); the wall-clock saving is asserted with slack since the
	// absolute latencies are microseconds.
	if full.EvalsPerQuery > noDesired.EvalsPerQuery*1.02 {
		t.Errorf("desired-result parameter must not add module evaluations: %.1f vs %.1f",
			full.EvalsPerQuery, noDesired.EvalsPerQuery)
	}
	// Wall-clock is logged but not asserted: per-query latencies are a few
	// microseconds and scheduler noise on shared machines exceeds the
	// effect size (see EXPERIMENTS.md for a controlled measurement).
	if caf.EvalsPerQuery >= full.EvalsPerQuery {
		t.Errorf("SCAF consults more modules than CAF: %.1f vs %.1f",
			full.EvalsPerQuery, caf.EvalsPerQuery)
	}
	if caf.Geomean <= 0 || full.Geomean <= 0 {
		t.Error("degenerate latencies")
	}
	t.Logf("CAF=%v/%.1f  SCAF-noDesired=%v/%.1f  SCAF=%v/%.1f (geomean latency / module evals per query)",
		caf.Geomean, caf.EvalsPerQuery, noDesired.Geomean, noDesired.EvalsPerQuery,
		full.Geomean, full.EvalsPerQuery)
	out := RenderFig10(series)
	for _, want := range []string{"geomean", "CDF", "Desired-result"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered Fig10 missing %q", want)
		}
	}
}

// TestAblationBundledConfluence checks the routing ablation: re-bundling
// the separation-speculation trio yields a baseline at least as strong as
// the paper's fully-isolated confluence, but still no stronger than SCAF.
func TestAblationBundledConfluence(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in -short mode")
	}
	s, err := LoadSuite("183.equake", "456.hmmer", "482.sphinx3")
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range s.Benchmarks {
		client := b.Sys.Client()
		iso := b.Sys.Orchestrator(scaf.SchemeConfluence)
		bun := b.Sys.Orchestrator(scaf.SchemeConfluence,
			scaf.WithGroupOverrides(spec.BundledGroups()))
		col := b.Sys.Orchestrator(scaf.SchemeSCAF)
		for _, l := range b.Hot {
			pIso := client.AnalyzeLoop(iso, l).NoDepPct()
			pBun := client.AnalyzeLoop(bun, l).NoDepPct()
			pCol := client.AnalyzeLoop(col, l).NoDepPct()
			if pBun < pIso-1e-9 {
				t.Errorf("%s %s: bundled (%.1f) below isolated (%.1f)", b.Name, l.Name(), pBun, pIso)
			}
			if pCol < pBun-1e-9 {
				t.Errorf("%s %s: SCAF (%.1f) below bundled (%.1f)", b.Name, l.Name(), pCol, pBun)
			}
		}
	}
}

// TestTable2Shape checks the structural properties the paper reports.
func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("table 2 in -short mode")
	}
	s, err := LoadSuite()
	if err != nil {
		t.Fatal(err)
	}
	as := AnalyzeSuite(s)
	res := Table2(as)
	if res.ImprovedQuery == 0 {
		t.Fatal("no improved queries at all")
	}
	byName := map[string]Table2Row{}
	for _, r := range res.Rows {
		byName[r.Name] = r
	}
	if all := byName["All"]; all.QueryLevel != 100 {
		t.Errorf("All row must cover 100%% of improved queries, got %.2f", all.QueryLevel)
	}
	if caf := byName["Memory Analysis (CAF)"]; caf.BenchLevel < 50 {
		t.Errorf("CAF should collaborate on most benchmarks, got %.2f%%", caf.BenchLevel)
	}
	if cs := byName["Control Speculation"]; cs.QueryLevel == 0 {
		t.Error("control speculation must participate")
	}
	if ro := byName["Read-only"]; ro.QueryLevel == 0 {
		t.Error("read-only must participate")
	}
	if vp := byName["Value Prediction"]; vp.BenchLevel == 0 {
		t.Error("value prediction must participate on at least one benchmark")
	}
	// More than two contributors per query on average: module percentages
	// sum past 200% (paper §5.2).
	var sum float64
	for _, name := range []string{
		"Memory Analysis (CAF)", "Read-only", "Value Prediction",
		"Pointer-Residue", "Control Speculation", "Points-to", "Short-lived",
	} {
		sum += byName[name].QueryLevel
	}
	if sum <= 200 {
		t.Errorf("module query-level coverages sum to %.1f%%, want > 200%%", sum)
	}
	out := RenderTable2(res)
	if !strings.Contains(out, "improved queries") {
		t.Error("rendered table missing header")
	}
}

// TestRenderFig8AndFig9 exercises the report rendering paths.
func TestRenderFig8AndFig9(t *testing.T) {
	if testing.Short() {
		t.Skip("rendering in -short mode")
	}
	s, err := LoadSuite("181.mcf", "429.mcf")
	if err != nil {
		t.Fatal(err)
	}
	as := AnalyzeSuite(s)
	f8 := RenderFig8(Fig8(as))
	for _, want := range []string{"181.mcf", "429.mcf", "Average", "SCAF over confluence"} {
		if !strings.Contains(f8, want) {
			t.Errorf("Fig8 render missing %q:\n%s", want, f8)
		}
	}
	f9 := RenderFig9(Fig9(as))
	for _, want := range []string{"hot loops", "SCAF%", "Confluence%"} {
		if !strings.Contains(f9, want) {
			t.Errorf("Fig9 render missing %q", want)
		}
	}
	f7 := RenderFig7()
	if !strings.Contains(f7, "shadow-memory") || !strings.Contains(f7, "control speculation") {
		t.Error("Fig7 render incomplete")
	}
}
