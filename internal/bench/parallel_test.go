package bench

import (
	"runtime"
	"testing"

	"scaf/internal/cfg"
	"scaf/internal/pdg"
)

// TestAnalyzeWithParallelMatchesSerial checks the suite-level wiring: the
// Parallelism knob (with and without the shared cache) must reproduce the
// serial Analysis verdict-for-verdict under all three schemes.
func TestAnalyzeWithParallelMatchesSerial(t *testing.T) {
	names := []string{"129.compress", "181.mcf"}
	if testing.Short() {
		names = names[:1]
	}
	for _, name := range names {
		b, err := Load(name)
		if err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
		serial := Analyze(b)
		for _, opts := range []AnalyzeOptions{
			{Parallelism: 4},
			{Parallelism: 4, SharedCache: true},
		} {
			par := AnalyzeWith(b, opts)
			compareScheme(t, b, "CAF", serial.CAF, par.CAF)
			compareScheme(t, b, "Confluence", serial.Conf, par.Conf)
			compareScheme(t, b, "SCAF", serial.SCAF, par.SCAF)
		}
	}
}

func compareScheme(t *testing.T, b *Benchmark, scheme string, serial, par map[*cfg.Loop]*pdg.LoopResult) {
	t.Helper()
	if len(serial) != len(par) {
		t.Fatalf("%s/%s: loop count %d vs %d", b.Name, scheme, len(serial), len(par))
	}
	for l, sr := range serial {
		pr := par[l]
		if pr == nil {
			t.Fatalf("%s/%s: loop %s missing from parallel analysis", b.Name, scheme, l.Name())
		}
		sk, pk := sr.ByKey(), pr.ByKey()
		if len(sk) != len(pk) {
			t.Fatalf("%s/%s %s: query count %d vs %d", b.Name, scheme, l.Name(), len(sk), len(pk))
		}
		for k, sq := range sk {
			pq := pk[k]
			if pq == nil {
				t.Fatalf("%s/%s %s: missing query %s -> %s (%s)", b.Name, scheme, l.Name(), k.I1, k.I2, k.Rel)
			}
			if sq.NoDep != pq.NoDep || sq.Cost != pq.Cost || sq.Resp.Result != pq.Resp.Result {
				t.Errorf("%s/%s %s: %s -> %s (%s): serial (%v, %v, %s) vs parallel (%v, %v, %s)",
					b.Name, scheme, l.Name(), k.I1, k.I2, k.Rel,
					sq.NoDep, sq.Cost, sq.Resp.Result, pq.NoDep, pq.Cost, pq.Resp.Result)
			}
		}
	}
}

// benchmarkSuite measures AnalyzeSuite over the full 16-program suite at a
// given pool size. Loading/profiling happens once, outside the timer.
func benchmarkSuite(b *testing.B, parallelism int) {
	s, err := LoadSuite()
	if err != nil {
		b.Fatal(err)
	}
	s.Parallelism = parallelism
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AnalyzeSuite(s)
	}
}

// BenchmarkSuiteSerial is the baseline: every loop of every benchmark
// analyzed on one core.
func BenchmarkSuiteSerial(b *testing.B) { benchmarkSuite(b, 1) }

// BenchmarkSuiteParallel fans each benchmark's hot loops out over
// GOMAXPROCS workers; compare against BenchmarkSuiteSerial for the
// wall-clock speedup.
func BenchmarkSuiteParallel(b *testing.B) { benchmarkSuite(b, runtime.GOMAXPROCS(0)) }

// BenchmarkSuiteParallelShared additionally shares a memo cache among the
// workers of each (benchmark, scheme) analysis.
func BenchmarkSuiteParallelShared(b *testing.B) {
	s, err := LoadSuite()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, bm := range s.Benchmarks {
			AnalyzeWith(bm, AnalyzeOptions{Parallelism: runtime.GOMAXPROCS(0), SharedCache: true})
		}
	}
}
