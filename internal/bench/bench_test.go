package bench

import (
	"testing"

	"scaf"
	"scaf/internal/core"
	"scaf/internal/pdg"
	"scaf/internal/spec"
)

// TestAllBenchmarksLoadAndHaveHotLoops compiles, profiles, and validates
// every benchmark program.
func TestAllBenchmarksLoadAndHaveHotLoops(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			b, err := Load(name)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			if len(b.Hot) == 0 {
				stats := ""
				for l, st := range b.Sys.Profiles.LoopStats {
					stats += "\n  " + l.Name() + ": weight=" +
						itoa(int(100*b.Sys.Profiles.LoopWeightFrac(l))) + "% iters=" +
						itoa(int(st.AvgIters()))
				}
				t.Fatalf("no hot loops; steps=%d%s", b.Sys.Profiles.Steps, stats)
			}
			if len(b.Sys.Profiles.Output) == 0 {
				t.Error("benchmark produced no output")
			}
			t.Logf("steps=%d hot=%d output=%v", b.Sys.Profiles.Steps, len(b.Hot), b.Sys.Profiles.Output)
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [24]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// TestSchemeOrderingAndSoundness verifies on a representative subset:
//   - per-query monotonicity: CAF ⊆ confluence ⊆ SCAF resolutions,
//   - static soundness: CAF never disproves a dependence that manifested,
//   - speculative soundness: SCAF only disproves a manifested dependence
//     through value prediction (which legitimately removes real deps).
func TestSchemeOrderingAndSoundness(t *testing.T) {
	if testing.Short() {
		t.Skip("suite analysis in -short mode")
	}
	names := []string{"129.compress", "181.mcf", "183.equake", "525.x264"}
	s, err := LoadSuite(names...)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range s.Benchmarks {
		a := Analyze(b)
		ms := b.Sys.MemSpec()
		for _, l := range b.Hot {
			caf := a.CAF[l].ByKey()
			conf := a.Conf[l].ByKey()
			for _, q := range a.SCAF[l].Queries {
				k := pdg.Key{I1: q.I1, I2: q.I2, Rel: q.Rel}
				cafND := caf[k] != nil && caf[k].NoDep
				confND := conf[k] != nil && conf[k].NoDep
				if cafND && !confND {
					t.Errorf("%s %s: CAF resolved but confluence did not: %v", b.Name, l.Name(), k)
				}
				if confND && !q.NoDep {
					t.Errorf("%s %s: confluence resolved but SCAF did not: %v", b.Name, l.Name(), k)
				}
				observed := !ms.NoDep(l, q.I1, q.I2, q.Rel)
				if cafND && observed {
					t.Errorf("%s %s: STATIC UNSOUNDNESS: CAF disproved a manifested dep %s -> %s (%s)",
						b.Name, l.Name(), q.I1, q.I2, q.Rel)
				}
				if q.NoDep && observed && !usesValuePred(q.Resp) {
					t.Errorf("%s %s: SPECULATIVE UNSOUNDNESS: disproved manifested dep %s -> %s (%s) via %v",
						b.Name, l.Name(), q.I1, q.I2, q.Rel, q.Resp.Contribs)
				}
			}
		}
	}
}

func usesValuePred(r core.ModRefResponse) bool {
	for _, o := range r.Options {
		for _, a := range o.Asserts {
			if a.Module == spec.NameValuePred {
				return true
			}
		}
	}
	return false
}

// TestFig8Shape checks the paper's headline shape on the full suite:
// SCAF ≥ confluence ≥ CAF everywhere, SCAF strictly better on a majority
// of benchmarks, and the memory-speculation residual shrinking.
func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	s, err := LoadSuite()
	if err != nil {
		t.Fatal(err)
	}
	as := AnalyzeSuite(s)
	rows := Fig8(as)
	if len(rows) != 16 {
		t.Fatalf("rows = %d", len(rows))
	}
	improved := 0
	for _, r := range rows {
		if r.ConfluenceTotal() < r.CAF-1e-9 {
			t.Errorf("%s: confluence %.2f below CAF %.2f", r.Bench, r.ConfluenceTotal(), r.CAF)
		}
		if r.SCAFTotal() < r.ConfluenceTotal()-1e-9 {
			t.Errorf("%s: SCAF %.2f below confluence %.2f", r.Bench, r.SCAFTotal(), r.ConfluenceTotal())
		}
		if r.SCAFTotal() > r.ConfluenceTotal()+1e-9 {
			improved++
		}
		sum := r.CAF + r.ConfExtra + r.SCAFExtra + r.MemSpec + r.Observed
		if sum < 99.0 || sum > 101.0 {
			t.Errorf("%s: stack sums to %.2f", r.Bench, sum)
		}
		t.Logf("%-15s caf=%5.1f conf=%5.1f scaf=%5.1f memspec=%5.1f obs=%5.1f (loops=%d queries=%d)",
			r.Bench, r.CAF, r.ConfluenceTotal(), r.SCAFTotal(), r.MemSpec, r.Observed, r.HotLoops, r.Queries)
	}
	if improved < 9 {
		t.Errorf("SCAF strictly improves only %d/16 benchmarks; want a majority", improved)
	}
	sum := SummarizeFig8(rows)
	t.Logf("summary: mean increase %.2fpp, memspec residual reduction %.1f%%",
		sum.MeanIncrease, 100*sum.MemSpecReductionGeomean)
	if sum.MeanIncrease <= 0 {
		t.Error("mean SCAF-over-confluence increase should be positive")
	}
}

// TestExampleSchemesAgree is a fast smoke test over a tiny program.
func TestExampleSchemesAgree(t *testing.T) {
	src := `
int a[64];
void main() {
    for (int i = 0; i < 200; i++) {
        a[i % 64] = i;
    }
    print(a[5]);
}`
	sys, err := scaf.Load("tiny", src, scaf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hot := sys.HotLoops()
	if len(hot) != 1 {
		t.Fatalf("hot = %d", len(hot))
	}
	client := sys.Client()
	for _, scheme := range []scaf.Scheme{scaf.SchemeCAF, scaf.SchemeConfluence, scaf.SchemeSCAF} {
		res := client.AnalyzeLoop(sys.Orchestrator(scheme), hot[0])
		if len(res.Queries) == 0 {
			t.Errorf("%v: no queries", scheme)
		}
	}
}
