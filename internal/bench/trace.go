package bench

import (
	"fmt"

	"scaf"
	"scaf/internal/core"
	"scaf/internal/pdg"
	"scaf/internal/trace"
)

// TracedAnalysis analyzes one benchmark's hot loops under a scheme with a
// trace collector attached to every worker, returning the combined event
// stream (worker-index merge order, mirroring how stats merge), the PDG
// results in loop order, and the merged orchestration stats. The stats and
// the stream reconcile exactly: trace.Aggregate(events).Reconcile(stats)
// is nil by the Tracer contract.
func TracedAnalysis(b *Benchmark, scheme scaf.Scheme, workers int) ([]trace.Event, []*pdg.LoopResult, *core.Stats) {
	if workers < 1 {
		workers = 1
	}
	collectors := make([]*trace.Collector, 0, workers)
	pc := pdg.NewParallelClient(b.Sys.Client(), workers, b.Sys.OrchestratorFactory(scheme))
	pc.NewTracer = func(w int) core.Tracer {
		c := trace.NewCollector()
		collectors = append(collectors, c)
		return c
	}
	results, stats := pc.AnalyzeLoops(b.Hot)
	return trace.Merge(collectors...), results, stats
}

// RenderTraceMetrics formats the trace-derived metrics of one benchmark's
// event stream, with the reconciliation verdict against the orchestration
// counters.
func RenderTraceMetrics(name string, events []trace.Event, st *core.Stats) string {
	m := trace.Aggregate(events)
	s := fmt.Sprintf("== trace: %s ==\n%s", name, m.Format())
	if err := m.Reconcile(st); err != nil {
		s += fmt.Sprintf("RECONCILE FAILED: %v\n", err)
	} else {
		s += "trace reconciles with orchestration counters\n"
	}
	return s
}
