package bench

import (
	"fmt"
	"strings"
	"time"

	"scaf"
	"scaf/internal/interp"
	specrt "scaf/internal/runtime"
)

// ReportExec is one benchmark's speculative-execution summary in the
// -json report. Every field except the wall-clock trio (serial_ns,
// exec_ns, speedup_x) depends only on the program, the SCAF plans, and
// the worker count — never on goroutine timing — so the regression gate
// compares them exactly (see CompareReports).
type ReportExec struct {
	Workers         int    `json:"workers"`
	DoallLoops      int    `json:"doall_loops"`
	RefusedLoops    int    `json:"refused_loops"`
	SpecInvocations int64  `json:"spec_invocations"`
	Chunks          int64  `json:"chunks"`
	CommittedChunks int64  `json:"committed_chunks"`
	AbortedChunks   int64  `json:"aborted_chunks"`
	SpecIters       int64  `json:"spec_iters"`
	SerialIters     int64  `json:"serial_iters"`
	Misspecs        int64  `json:"misspecs"`
	ReplanRounds    int64  `json:"replan_rounds"`
	MemDigest       uint64 `json:"mem_digest"`
	// AbortCostPct is the share of speculated-loop iterations that had
	// to be re-executed serially after an abort:
	// 100·serial_iters/(spec_iters+serial_iters). A ratio of the
	// deterministic counters, so itself deterministic and gate-compared.
	AbortCostPct float64 `json:"abort_cost_pct"`
	// Wall-clock measurements — informational only, never compared:
	// SerialNS times a plain interpretation of the whole program, ExecNS
	// is the speculative run's wall time, SpeedupX their ratio.
	SerialNS int64   `json:"serial_ns"`
	ExecNS   int64   `json:"exec_ns"`
	SpeedupX float64 `json:"speedup_x"`
}

// stripWall returns the copy CompareReports actually diffs: the
// deterministic counters with the wall-clock fields zeroed.
func (e ReportExec) stripWall() ReportExec {
	e.SerialNS, e.ExecNS, e.SpeedupX = 0, 0, 0
	return e
}

// ExecRow pairs a benchmark name with its execution summary.
type ExecRow struct {
	Name string
	Exec *ReportExec
}

// ExecuteSuite runs every benchmark once serially (plain interpretation)
// and once under the speculative-parallel runtime with its SCAF plans,
// verifies the two runs are byte-equal (output and final memory), and
// returns the per-benchmark summaries. A divergence is an error, not a
// report entry: the bench gate must refuse to bank an unsound run.
func ExecuteSuite(s *Suite, workers int) ([]ExecRow, error) {
	rows := make([]ExecRow, 0, len(s.Benchmarks))
	for _, b := range s.Benchmarks {
		e, err := executeBench(b, workers)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ExecRow{Name: b.Name, Exec: e})
	}
	return rows, nil
}

func executeBench(b *Benchmark, workers int) (*ReportExec, error) {
	t0 := time.Now()
	serial, err := interp.Run(b.Sys.Mod, interp.Options{})
	serialNS := time.Since(t0).Nanoseconds()
	if err != nil {
		return nil, fmt.Errorf("%s: serial run: %w", b.Name, err)
	}
	rep, err := b.Sys.ExecutePlan(scaf.SchemeSCAF, specrt.Config{Workers: workers})
	if err != nil {
		return nil, fmt.Errorf("%s: speculative run: %w", b.Name, err)
	}
	if strings.Join(rep.Output, "\n") != strings.Join(serial.Output, "\n") {
		return nil, fmt.Errorf("%s: speculative output diverged from serial interpretation", b.Name)
	}
	if dig := serial.Mem.Digest(); rep.MemDigest != dig {
		return nil, fmt.Errorf("%s: speculative final memory %#x diverged from serial %#x", b.Name, rep.MemDigest, dig)
	}
	e := &ReportExec{
		Workers:         workers,
		DoallLoops:      rep.DoallLoops,
		RefusedLoops:    rep.RefusedLoops,
		SpecInvocations: rep.SpecInvocations,
		Chunks:          rep.Chunks,
		CommittedChunks: rep.CommittedChunks,
		AbortedChunks:   rep.AbortedChunks,
		SpecIters:       rep.SpecIters,
		SerialIters:     rep.SerialIters,
		Misspecs:        rep.Misspecs,
		ReplanRounds:    rep.ReplanRounds,
		MemDigest:       rep.MemDigest,
		SerialNS:        serialNS,
		ExecNS:          rep.WallNanos,
	}
	if total := e.SpecIters + e.SerialIters; total > 0 {
		e.AbortCostPct = 100 * float64(e.SerialIters) / float64(total)
	}
	if e.ExecNS > 0 {
		e.SpeedupX = float64(e.SerialNS) / float64(e.ExecNS)
	}
	return e, nil
}

// AttachExec merges execution rows into an existing report by benchmark
// name; rows with no matching report entry are ignored.
func AttachExec(r *Report, rows []ExecRow) {
	byName := map[string]*ReportExec{}
	for _, row := range rows {
		byName[row.Name] = row.Exec
	}
	for i := range r.Benchmarks {
		if e, ok := byName[r.Benchmarks[i].Name]; ok {
			r.Benchmarks[i].Exec = e
		}
	}
}

// RenderExec renders the speculative-execution table: realized
// iterations/sec speedup of the whole program plus the abort cost as the
// serially re-executed iteration share. Iterations/sec uses the
// speculated-loop iteration total over each run's wall time (both runs
// execute the same iterations, since their results are byte-equal).
func RenderExec(rows []ExecRow) string {
	var sb strings.Builder
	sb.WriteString("Speculative execution (SCAF plans)\n")
	sb.WriteString(fmt.Sprintf("%-16s %5s %7s %10s %10s %7s %12s %12s %8s %10s\n",
		"benchmark", "doall", "refused", "spec-iters", "ser-iters", "aborts",
		"serial-it/s", "spec-it/s", "speedup", "abort-cost"))
	itersPerSec := func(iters, ns int64) string {
		if iters == 0 || ns == 0 {
			return "-"
		}
		return fmt.Sprintf("%.0f", float64(iters)/(float64(ns)/1e9))
	}
	for _, row := range rows {
		e := row.Exec
		total := e.SpecIters + e.SerialIters
		sb.WriteString(fmt.Sprintf("%-16s %5d %7d %10d %10d %7d %12s %12s %7.2fx %9.1f%%\n",
			row.Name, e.DoallLoops, e.RefusedLoops, e.SpecIters, e.SerialIters,
			e.AbortedChunks, itersPerSec(total, e.SerialNS), itersPerSec(total, e.ExecNS),
			e.SpeedupX, e.AbortCostPct))
	}
	return sb.String()
}
