package bench

import (
	"testing"

	"scaf"
	"scaf/internal/core"
	"scaf/internal/pdg"
)

// TestBenchmarkPlansValidate closes the speculation loop end to end for
// every benchmark: build the SCAF PDG with all options exposed, select a
// global validation plan per hot loop, then re-run the program with the
// plan's checks enforced (never-taken edges watched, predicted values
// compared, read-only/short-lived heaps protected, residues masked). On
// the training input every assertion is high-confidence, so a single
// violation anywhere is a framework bug.
func TestBenchmarkPlansValidate(t *testing.T) {
	if testing.Short() {
		t.Skip("plan validation in -short mode")
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			b, err := Load(name)
			if err != nil {
				t.Fatal(err)
			}
			client := b.Sys.Client()
			o := b.Sys.Orchestrator(scaf.SchemeSCAF,
				scaf.WithJoin(core.JoinAll), scaf.WithBailout(core.BailExhaustive))

			var asserts []core.Assertion
			seen := map[string]bool{}
			covered, dropped := 0, 0
			for _, l := range b.Hot {
				res := client.AnalyzeLoop(o, l)
				plan := pdg.BuildPlan(res.Queries)
				covered += plan.Covered
				dropped += plan.Dropped
				for _, a := range plan.Assertions {
					if !seen[a.String()] {
						seen[a.String()] = true
						asserts = append(asserts, a)
					}
				}
			}
			if len(asserts) == 0 {
				t.Logf("no speculative assertions needed (%d covered free)", covered)
				return
			}
			rep, err := b.Sys.Validate(asserts)
			if err != nil {
				t.Fatalf("validate: %v", err)
			}
			if rep.Failed() {
				for _, v := range rep.Violations[:min(3, len(rep.Violations))] {
					t.Errorf("MISSPECULATION: %s: %s", v.Assertion, v.Detail)
				}
				t.Fatalf("%d violations over %d checks", len(rep.Violations), rep.Checks)
			}
			t.Logf("%d assertions, %d runtime checks, %d deps covered, %d dropped — clean",
				len(asserts), rep.Checks, covered, dropped)
		})
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
