package bench

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

const baselinePath = "../../results/bench-baseline.json"

func loadBaseline(t *testing.T) *Report {
	t.Helper()
	f, err := os.Open(baselinePath)
	if err != nil {
		t.Fatalf("the committed bench baseline is missing (regenerate with `make bench-baseline`): %v", err)
	}
	defer f.Close()
	r, err := ReadReport(f)
	if err != nil {
		t.Fatalf("parsing committed baseline: %v", err)
	}
	return r
}

// clone round-trips a report through JSON so perturbations cannot alias
// the original's maps.
func clone(t *testing.T, r *Report) *Report {
	t.Helper()
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var out Report
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	return &out
}

func TestBaselineShape(t *testing.T) {
	base := loadBaseline(t)
	if len(base.Benchmarks) == 0 {
		t.Fatal("baseline has no benchmarks")
	}
	for _, b := range base.Benchmarks {
		for _, scheme := range []string{"CAF", "Confluence", "SCAF"} {
			if _, ok := b.NoDepPct[scheme]; !ok {
				t.Errorf("%s: no %%NoDep for %s", b.Name, scheme)
			}
			lat, ok := b.Latency[scheme]
			if !ok {
				t.Fatalf("%s: baseline lacks the %s latency summary the gate compares", b.Name, scheme)
			}
			if lat.Samples == 0 || lat.P50WorkEvals <= 0 {
				t.Errorf("%s/%s: degenerate latency summary %+v", b.Name, scheme, lat)
			}
			if lat.P90WorkEvals < lat.P50WorkEvals || lat.MaxWorkEvals < lat.P90WorkEvals {
				t.Errorf("%s/%s: unordered percentiles %+v", b.Name, scheme, lat)
			}
		}
	}
}

func TestCompareReportsSelfIsClean(t *testing.T) {
	base := loadBaseline(t)
	if fails := CompareReports(base, clone(t, base), DefaultWorkTolerance); len(fails) != 0 {
		t.Fatalf("self-comparison failed: %v", fails)
	}
}

// TestCompareReportsCatchesPerturbations is the gate's own gate: a
// deliberately perturbed report MUST fail the comparison, for every
// class of perturbation bench-check exists to catch.
func TestCompareReportsCatchesPerturbations(t *testing.T) {
	base := loadBaseline(t)
	cases := []struct {
		name    string
		perturb func(fresh *Report)
		want    string // substring of some failure message
	}{
		{
			"p50 work regression beyond tolerance",
			func(fresh *Report) {
				b := &fresh.Benchmarks[0]
				lat := b.Latency["SCAF"]
				lat.P50WorkEvals = lat.P50WorkEvals*13/10 + 1 // +30%
				b.Latency["SCAF"] = lat
			},
			"p50 query work regressed",
		},
		{
			"nodep drift",
			func(fresh *Report) {
				fresh.Benchmarks[0].NoDepPct["SCAF"] += 0.5
			},
			"answer drift",
		},
		{
			"query-count drift",
			func(fresh *Report) { fresh.Benchmarks[0].Queries++ },
			"dependence queries",
		},
		{
			"hot-loop drift",
			func(fresh *Report) { fresh.Benchmarks[0].HotLoops++ },
			"hot loops",
		},
		{
			"top-level query volume drift",
			func(fresh *Report) {
				c := fresh.Benchmarks[0].Counters["SCAF"]
				c.TopQueries++
				fresh.Benchmarks[0].Counters["SCAF"] = c
			},
			"top-level queries",
		},
		{
			"benchmark vanished",
			func(fresh *Report) { fresh.Benchmarks = fresh.Benchmarks[1:] },
			"missing from fresh report",
		},
		{
			"benchmark appeared",
			func(fresh *Report) {
				fresh.Benchmarks = append(fresh.Benchmarks, ReportBench{Name: "999.surprise"})
			},
			"missing from baseline",
		},
		{
			"latency summary dropped",
			func(fresh *Report) { fresh.Benchmarks[0].Latency = nil },
			"no SCAF latency summary",
		},
	}
	for _, tc := range cases {
		fresh := clone(t, base)
		tc.perturb(fresh)
		fails := CompareReports(base, fresh, DefaultWorkTolerance)
		if len(fails) == 0 {
			t.Errorf("%s: perturbed report passed the gate", tc.name)
			continue
		}
		found := false
		for _, f := range fails {
			if strings.Contains(f, tc.want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: no failure mentioning %q in %v", tc.name, tc.want, fails)
		}
	}
}

// TestCompareReportsToleratesHeadroom: getting faster, or slower within
// tolerance, must pass — the gate only rejects regressions beyond tol.
func TestCompareReportsToleratesHeadroom(t *testing.T) {
	base := loadBaseline(t)

	faster := clone(t, base)
	for i := range faster.Benchmarks {
		for scheme, lat := range faster.Benchmarks[i].Latency {
			lat.P50WorkEvals /= 2
			faster.Benchmarks[i].Latency[scheme] = lat
		}
	}
	if fails := CompareReports(base, faster, DefaultWorkTolerance); len(fails) != 0 {
		t.Fatalf("an improvement failed the gate: %v", fails)
	}

	slightlySlower := clone(t, base)
	b := &slightlySlower.Benchmarks[0]
	lat := b.Latency["SCAF"]
	lat.P50WorkEvals = lat.P50WorkEvals * 11 / 10 // +10%, inside 20% tolerance
	b.Latency["SCAF"] = lat
	if fails := CompareReports(base, slightlySlower, DefaultWorkTolerance); len(fails) != 0 {
		t.Fatalf("a within-tolerance slowdown failed the gate: %v", fails)
	}
}
