package bench

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"
)

// WriteCSVs dumps every experiment's data into dir as machine-readable
// CSV files (fig8.csv, fig9.csv, table2.csv, fig10.csv), for plotting
// outside this repository.
func WriteCSVs(dir string, rows []Fig8Row, pts []Fig9Point, t2 Table2Result, f10 []Fig10Series) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := writeCSV(dir, "fig8.csv", fig8CSV(rows)); err != nil {
		return err
	}
	if err := writeCSV(dir, "fig9.csv", fig9CSV(pts)); err != nil {
		return err
	}
	if err := writeCSV(dir, "table2.csv", table2CSV(t2)); err != nil {
		return err
	}
	return writeCSV(dir, "fig10.csv", fig10CSV(f10))
}

func writeCSV(dir, name string, records [][]string) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.WriteAll(records); err != nil {
		f.Close()
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func f(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

func fig8CSV(rows []Fig8Row) [][]string {
	out := [][]string{{
		"benchmark", "caf", "confluence_extra", "scaf_extra",
		"memspec_residual", "observed", "hot_loops", "queries",
	}}
	for _, r := range rows {
		out = append(out, []string{
			r.Bench, f(r.CAF), f(r.ConfExtra), f(r.SCAFExtra),
			f(r.MemSpec), f(r.Observed),
			strconv.Itoa(r.HotLoops), strconv.Itoa(r.Queries),
		})
	}
	return out
}

func fig9CSV(pts []Fig9Point) [][]string {
	out := [][]string{{"benchmark", "loop", "confluence_nodep", "scaf_nodep"}}
	for _, p := range pts {
		out = append(out, []string{p.Bench, p.Loop, f(p.Conf), f(p.SCAF)})
	}
	return out
}

func table2CSV(t Table2Result) [][]string {
	out := [][]string{{"module", "benchmark_pct", "loop_pct", "improved_query_pct"}}
	for _, r := range t.Rows {
		out = append(out, []string{r.Name, f(r.BenchLevel), f(r.LoopLevel), f(r.QueryLevel)})
	}
	out = append(out, []string{
		fmt.Sprintf("_populations: %d benchmarks, %d loops, %d improved of %d queries",
			t.Benchmarks, t.Loops, t.ImprovedQuery, t.TotalQueries), "", "", "",
	})
	return out
}

func fig10CSV(series []Fig10Series) [][]string {
	out := [][]string{{"configuration", "fraction", "latency_ns", "geomean_ns", "evals_per_query"}}
	for _, s := range series {
		for i := range s.Fractions {
			out = append(out, []string{
				s.Name,
				f(s.Fractions[i]),
				strconv.FormatInt(int64(s.Latencies[i]/time.Nanosecond), 10),
				strconv.FormatInt(int64(s.Geomean/time.Nanosecond), 10),
				f(s.EvalsPerQuery),
			})
		}
	}
	return out
}
