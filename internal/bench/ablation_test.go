package bench

import (
	"testing"

	"scaf"
	"scaf/internal/core"
)

// TestAblationTreeSubstitution shows where the motivating example's power
// comes from: with control speculation's speculative-tree premise queries
// disabled, the rule-1 (spec-dead endpoints) coverage remains but the
// kill-flow collaborations disappear, strictly lowering coverage on
// benchmarks built around the rare-path-skips-the-kill idiom.
func TestAblationTreeSubstitution(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in -short mode")
	}
	s, err := LoadSuite("129.compress", "183.equake", "544.nab")
	if err != nil {
		t.Fatal(err)
	}
	improvedSomewhere := false
	for _, b := range s.Benchmarks {
		client := b.Sys.Client()
		full := b.Sys.Orchestrator(scaf.SchemeSCAF)
		noTrees := b.Sys.Orchestrator(scaf.SchemeSCAF, scaf.WithoutTreeSubstitution())
		for _, l := range b.Hot {
			pFull := client.AnalyzeLoop(full, l).NoDepPct()
			pNoTrees := client.AnalyzeLoop(noTrees, l).NoDepPct()
			if pNoTrees > pFull+1e-9 {
				t.Errorf("%s %s: disabling tree substitution must not help (%.1f > %.1f)",
					b.Name, l.Name(), pNoTrees, pFull)
			}
			if pFull > pNoTrees+1e-9 {
				improvedSomewhere = true
			}
		}
	}
	if !improvedSomewhere {
		t.Error("tree substitution should matter on at least one hot loop")
	}
}

// TestCachingPreservesResultsAndCutsWork re-runs a benchmark's PDG with a
// memoizing orchestrator: identical per-query outcomes, far fewer module
// evaluations on the second pass.
func TestCachingPreservesResultsAndCutsWork(t *testing.T) {
	if testing.Short() {
		t.Skip("caching test in -short mode")
	}
	b, err := Load("183.equake")
	if err != nil {
		t.Fatal(err)
	}
	client := b.Sys.Client()
	plain := b.Sys.Orchestrator(scaf.SchemeSCAF)
	cached := b.Sys.Orchestrator(scaf.SchemeSCAF, scaf.WithCache())

	for _, l := range b.Hot {
		want := client.AnalyzeLoop(plain, l)
		got := client.AnalyzeLoop(cached, l)
		if len(want.Queries) != len(got.Queries) {
			t.Fatalf("query counts differ")
		}
		for i := range want.Queries {
			w, g := want.Queries[i], got.Queries[i]
			if w.NoDep != g.NoDep || w.Resp.Result != g.Resp.Result {
				t.Errorf("%s: cached result differs for %s->%s (%s): %v/%s vs %v/%s",
					l.Name(), w.I1, w.I2, w.Rel, w.NoDep, w.Resp.Result, g.NoDep, g.Resp.Result)
			}
		}
	}

	// Second pass over the same loops: the memo table should absorb nearly
	// everything.
	before := cached.Stats().ModuleEvals
	for _, l := range b.Hot {
		client.AnalyzeLoop(cached, l)
	}
	secondPass := cached.Stats().ModuleEvals - before
	if secondPass != 0 {
		t.Errorf("second pass consulted modules %d times; memoization should cover it", secondPass)
	}
	if cached.Stats().CacheHits == 0 {
		t.Error("no cache hits recorded")
	}
}

// TestJoinAllExposesAlternatives: under the ALL join policy the client can
// see multiple ways to resolve one query (paper §3.3's global reasoning).
func TestJoinAllExposesAlternatives(t *testing.T) {
	if testing.Short() {
		t.Skip("join-all test in -short mode")
	}
	b, err := Load("519.lbm")
	if err != nil {
		t.Fatal(err)
	}
	client := b.Sys.Client()
	o := b.Sys.Orchestrator(scaf.SchemeSCAF,
		scaf.WithJoin(core.JoinAll), scaf.WithBailout(core.BailExhaustive))
	multi := 0
	for _, l := range b.Hot {
		res := client.AnalyzeLoop(o, l)
		for _, q := range res.Queries {
			if q.NoDep && len(core.AffordableOptions(q.Resp.Options)) > 1 {
				multi++
			}
		}
	}
	if multi == 0 {
		t.Error("JoinAll + exhaustive search should expose multiple options for some queries")
	}
}
