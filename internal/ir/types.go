// Package ir defines the typed mid-level intermediate representation that
// every other subsystem (front-end, interpreter, profilers, analysis
// framework) operates on. The IR is deliberately LLVM-flavoured: functions
// of basic blocks in SSA form, explicit memory operations (Alloca, Malloc,
// Load, Store), and explicit pointer arithmetic (Index, Field), because the
// paper's dependence queries are phrased over exactly these constructs.
package ir

import (
	"fmt"
	"strings"
)

// Type is the interface implemented by all IR types. Sizes are in bytes.
// All scalars are 8 bytes wide, which keeps the interpreter's memory model
// simple while preserving everything dependence analysis cares about
// (footprint extents, field offsets, strides, pointer residues).
type Type interface {
	Size() int64
	String() string
}

// IntType is the 64-bit signed integer type.
type IntType struct{}

// FloatType is the 64-bit floating point type.
type FloatType struct{}

// VoidType is the type of functions that return nothing. It has no size.
type VoidType struct{}

// PtrType is a pointer to Elem.
type PtrType struct{ Elem Type }

// ArrayType is a fixed-length array of Elem.
type ArrayType struct {
	Elem Type
	Len  int64
}

// Field is a named member of a StructType at a fixed byte offset.
type Field struct {
	Name   string
	Ty     Type
	Offset int64
}

// StructType is a named aggregate with fields at fixed offsets.
type StructType struct {
	TypeName string
	Fields   []Field
}

// Singleton scalar types. Types are compared with Equal, never with ==,
// except for these singletons which are safe either way.
var (
	Int   = &IntType{}
	Float = &FloatType{}
	Void  = &VoidType{}
)

func (*IntType) Size() int64   { return 8 }
func (*FloatType) Size() int64 { return 8 }
func (*VoidType) Size() int64  { return 0 }
func (*PtrType) Size() int64   { return 8 }

func (t *ArrayType) Size() int64 { return t.Elem.Size() * t.Len }

func (t *StructType) Size() int64 {
	if len(t.Fields) == 0 {
		return 0
	}
	last := t.Fields[len(t.Fields)-1]
	return last.Offset + last.Ty.Size()
}

func (*IntType) String() string   { return "int" }
func (*FloatType) String() string { return "float" }
func (*VoidType) String() string  { return "void" }

func (t *PtrType) String() string { return t.Elem.String() + "*" }

func (t *ArrayType) String() string { return fmt.Sprintf("%s[%d]", t.Elem, t.Len) }

func (t *StructType) String() string { return "struct " + t.TypeName }

// Describe renders a struct type with its full field layout, for dumps.
func (t *StructType) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "struct %s {", t.TypeName)
	for i, f := range t.Fields {
		if i > 0 {
			b.WriteString("; ")
		} else {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s %s @%d", f.Ty, f.Name, f.Offset)
	}
	b.WriteString(" }")
	return b.String()
}

// PointerTo returns the pointer type to t.
func PointerTo(t Type) *PtrType { return &PtrType{Elem: t} }

// ArrayOf returns the array type of n elements of t.
func ArrayOf(t Type, n int64) *ArrayType { return &ArrayType{Elem: t, Len: n} }

// NewStruct builds a struct type, assigning natural (8-byte) aligned
// offsets cumulatively. Aggregate fields occupy their full size.
func NewStruct(name string, fields ...Field) *StructType {
	off := int64(0)
	out := make([]Field, len(fields))
	for i, f := range fields {
		f.Offset = off
		out[i] = f
		sz := f.Ty.Size()
		if sz == 0 {
			sz = 8
		}
		off += align8(sz)
	}
	return &StructType{TypeName: name, Fields: out}
}

func align8(n int64) int64 { return (n + 7) &^ 7 }

// FieldIndex returns the index of the field with the given name, or -1.
func (t *StructType) FieldIndex(name string) int {
	for i, f := range t.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Equal reports structural type equality. Struct types are nominal: two
// struct types are equal iff they have the same name.
func Equal(a, b Type) bool {
	switch x := a.(type) {
	case *IntType:
		_, ok := b.(*IntType)
		return ok
	case *FloatType:
		_, ok := b.(*FloatType)
		return ok
	case *VoidType:
		_, ok := b.(*VoidType)
		return ok
	case *PtrType:
		y, ok := b.(*PtrType)
		return ok && Equal(x.Elem, y.Elem)
	case *ArrayType:
		y, ok := b.(*ArrayType)
		return ok && x.Len == y.Len && Equal(x.Elem, y.Elem)
	case *StructType:
		y, ok := b.(*StructType)
		return ok && x.TypeName == y.TypeName
	}
	return false
}

// IsPointer reports whether t is a pointer type.
func IsPointer(t Type) bool {
	_, ok := t.(*PtrType)
	return ok
}

// Pointee returns the element type of a pointer type, or nil.
func Pointee(t Type) Type {
	if p, ok := t.(*PtrType); ok {
		return p.Elem
	}
	return nil
}
