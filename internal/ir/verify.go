package ir

import "fmt"

// Verify checks the module's structural invariants: every block ends in
// exactly one terminator, edge lists are consistent, phi arity matches
// predecessor counts, operand types are coherent, and instruction IDs are
// unique per function. It returns the first violation found.
func Verify(m *Module) error {
	for _, f := range m.Funcs {
		if err := verifyFunc(f); err != nil {
			return fmt.Errorf("ir: %s: %w", f.Name, err)
		}
	}
	return nil
}

func verifyFunc(f *Func) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("no blocks")
	}
	seen := map[int]bool{}
	for _, b := range f.Blocks {
		if b.Fn != f {
			return fmt.Errorf("block %s has wrong parent", b)
		}
		term := b.Term()
		if term == nil {
			return fmt.Errorf("block %s lacks a terminator", b)
		}
		for i, in := range b.Instrs {
			if seen[in.ID] {
				return fmt.Errorf("duplicate instruction id %d in %s", in.ID, b)
			}
			seen[in.ID] = true
			if in.Blk != b {
				return fmt.Errorf("instr %s not parented to %s", FormatInstr(in), b)
			}
			if in.IsTerminator() && i != len(b.Instrs)-1 {
				return fmt.Errorf("terminator %s mid-block in %s", FormatInstr(in), b)
			}
			if err := verifyInstr(in); err != nil {
				return fmt.Errorf("in %s: %s: %w", b, FormatInstr(in), err)
			}
		}
		switch term.Op {
		case OpBr:
			if len(b.Succs) != 1 {
				return fmt.Errorf("br block %s has %d successors", b, len(b.Succs))
			}
		case OpCondBr:
			if len(b.Succs) != 2 {
				return fmt.Errorf("condbr block %s has %d successors", b, len(b.Succs))
			}
		case OpRet:
			if len(b.Succs) != 0 {
				return fmt.Errorf("ret block %s has successors", b)
			}
		}
		for _, s := range b.Succs {
			if s.predIndex(b) < 0 {
				return fmt.Errorf("edge %s->%s missing from pred list", b, s)
			}
		}
		for _, p := range b.Preds {
			found := false
			for _, s := range p.Succs {
				if s == b {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("edge %s->%s missing from succ list", p, b)
			}
		}
	}
	return nil
}

func verifyInstr(in *Instr) error {
	for i, a := range in.Args {
		if a == nil {
			return fmt.Errorf("nil operand %d", i)
		}
	}
	switch in.Op {
	case OpLoad:
		if !IsPointer(in.Args[0].Type()) {
			return fmt.Errorf("load from non-pointer")
		}
		if !Equal(Pointee(in.Args[0].Type()), in.Ty) {
			return fmt.Errorf("load type %s mismatches pointee %s", in.Ty, Pointee(in.Args[0].Type()))
		}
	case OpStore:
		if !IsPointer(in.Args[1].Type()) {
			return fmt.Errorf("store to non-pointer")
		}
		if !Equal(Pointee(in.Args[1].Type()), in.Args[0].Type()) {
			return fmt.Errorf("store of %s into %s*", in.Args[0].Type(), Pointee(in.Args[1].Type()))
		}
	case OpIndex:
		if !IsPointer(in.Args[0].Type()) {
			return fmt.Errorf("index of non-pointer")
		}
		if !Equal(in.Args[1].Type(), Int) {
			return fmt.Errorf("index with non-int")
		}
	case OpField:
		st, ok := Pointee(in.Args[0].Type()).(*StructType)
		if !ok {
			return fmt.Errorf("field of non-struct pointer")
		}
		if in.FieldIdx < 0 || in.FieldIdx >= len(st.Fields) {
			return fmt.Errorf("field index %d out of range for %s", in.FieldIdx, st)
		}
	case OpPhi:
		if len(in.Args) != len(in.Blk.Preds) {
			return fmt.Errorf("phi arity %d != %d preds", len(in.Args), len(in.Blk.Preds))
		}
		for _, a := range in.Args {
			if !Equal(a.Type(), in.Ty) {
				return fmt.Errorf("phi incoming type %s != %s", a.Type(), in.Ty)
			}
		}
	case OpCondBr:
		if !Equal(in.Args[0].Type(), Int) {
			return fmt.Errorf("condbr on non-int")
		}
	case OpCall:
		if in.Callee != nil {
			if len(in.Args) != len(in.Callee.Params) {
				return fmt.Errorf("call arity %d != %d params of %s", len(in.Args), len(in.Callee.Params), in.Callee.Name)
			}
			for i, a := range in.Args {
				if !Equal(a.Type(), in.Callee.Params[i].Ty) {
					return fmt.Errorf("call arg %d type %s != param %s", i, a.Type(), in.Callee.Params[i].Ty)
				}
			}
		}
	}
	return nil
}
