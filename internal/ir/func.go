package ir

import "fmt"

// Func is a function: an ordered list of basic blocks, Blocks[0] being the
// entry. Instruction IDs are unique within the function.
type Func struct {
	Name   string
	Params []*Param
	RetTy  Type
	Blocks []*Block
	Mod    *Module

	nextInstrID int
	nextBlockID int
}

func (f *Func) String() string { return "@" + f.Name }

// NewBlock appends a fresh, empty block named name to the function.
func (f *Func) NewBlock(name string) *Block {
	b := &Block{Name: name, Index: f.nextBlockID, Fn: f}
	f.nextBlockID++
	f.Blocks = append(f.Blocks, b)
	return b
}

// Entry returns the function's entry block.
func (f *Func) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// Instrs calls fn for every instruction in the function.
func (f *Func) Instrs(fn func(*Instr)) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			fn(in)
		}
	}
}

// NumIDs returns an exclusive upper bound on instruction IDs in the
// function, usable to size dense per-instruction arrays.
func (f *Func) NumIDs() int { return f.nextInstrID }

// NumInstrs returns the total instruction count.
func (f *Func) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// newInstr allocates an instruction with a fresh ID, appended to block b.
func (f *Func) newInstr(b *Block, op Op, ty Type, args ...Value) *Instr {
	in := &Instr{ID: f.nextInstrID, Op: op, Ty: ty, Args: args, Blk: b}
	f.nextInstrID++
	b.Instrs = append(b.Instrs, in)
	return in
}

// Connect adds a CFG edge from to b, maintaining both edge lists.
func Connect(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// Builder methods. Each appends an instruction to the block and returns it.

func (b *Block) Alloca(elem Type, hint string) *Instr {
	in := b.Fn.newInstr(b, OpAlloca, PointerTo(elem))
	in.ElemTy = elem
	in.Hint = hint
	return in
}

func (b *Block) Malloc(elem Type, size Value, hint string) *Instr {
	in := b.Fn.newInstr(b, OpMalloc, PointerTo(elem), size)
	in.ElemTy = elem
	in.Hint = hint
	return in
}

func (b *Block) Free(ptr Value) *Instr {
	return b.Fn.newInstr(b, OpFree, Void, ptr)
}

func (b *Block) Load(ptr Value) *Instr {
	elem := Pointee(ptr.Type())
	if elem == nil {
		panic(fmt.Sprintf("ir: load of non-pointer %s: %s", ptr, ptr.Type()))
	}
	return b.Fn.newInstr(b, OpLoad, elem, ptr)
}

func (b *Block) Store(val, ptr Value) *Instr {
	return b.Fn.newInstr(b, OpStore, Void, val, ptr)
}

func (b *Block) IndexPtr(base, idx Value) *Instr {
	if !IsPointer(base.Type()) {
		panic(fmt.Sprintf("ir: index of non-pointer %s: %s", base, base.Type()))
	}
	return b.Fn.newInstr(b, OpIndex, base.Type(), base, idx)
}

func (b *Block) FieldAddr(base Value, idx int) *Instr {
	st, ok := Pointee(base.Type()).(*StructType)
	if !ok {
		panic(fmt.Sprintf("ir: field of non-struct-pointer %s: %s", base, base.Type()))
	}
	in := b.Fn.newInstr(b, OpField, PointerTo(st.Fields[idx].Ty), base)
	in.FieldIdx = idx
	return in
}

func (b *Block) BinIns(op BinOp, x, y Value) *Instr {
	in := b.Fn.newInstr(b, OpBin, x.Type(), x, y)
	in.Bin = op
	return in
}

func (b *Block) CmpIns(op CmpOp, x, y Value) *Instr {
	in := b.Fn.newInstr(b, OpCmp, Int, x, y)
	in.Cmp = op
	return in
}

func (b *Block) CastIns(kind CastKind, ty Type, x Value) *Instr {
	in := b.Fn.newInstr(b, OpCast, ty, x)
	in.Cast = kind
	return in
}

func (b *Block) Phi(ty Type, hint string) *Instr {
	in := b.Fn.newInstr(b, OpPhi, ty)
	in.Hint = hint
	return in
}

func (b *Block) Call(callee *Func, args ...Value) *Instr {
	in := b.Fn.newInstr(b, OpCall, callee.RetTy, args...)
	in.Callee = callee
	return in
}

func (b *Block) CallIntrinsic(name string, ty Type, args ...Value) *Instr {
	in := b.Fn.newInstr(b, OpCall, ty, args...)
	in.Intrinsic = name
	return in
}

func (b *Block) Br(to *Block) *Instr {
	in := b.Fn.newInstr(b, OpBr, Void)
	Connect(b, to)
	return in
}

func (b *Block) CondBr(cond Value, t, f *Block) *Instr {
	in := b.Fn.newInstr(b, OpCondBr, Void, cond)
	Connect(b, t)
	Connect(b, f)
	return in
}

func (b *Block) Ret(vals ...Value) *Instr {
	return b.Fn.newInstr(b, OpRet, Void, vals...)
}

// Module is a translation unit: globals, struct types, and functions.
type Module struct {
	Name    string
	Globals []*Global
	Structs []*StructType
	Funcs   []*Func

	funcByName   map[string]*Func
	globalByName map[string]*Global
}

// NewModule creates an empty module.
func NewModule(name string) *Module {
	return &Module{
		Name:         name,
		funcByName:   map[string]*Func{},
		globalByName: map[string]*Global{},
	}
}

// NewFunc creates a function and registers it in the module.
func (m *Module) NewFunc(name string, ret Type, params ...*Param) *Func {
	f := &Func{Name: name, RetTy: ret, Params: params, Mod: m}
	for i, p := range params {
		p.Idx = i
		p.Fn = f
	}
	m.Funcs = append(m.Funcs, f)
	m.funcByName[name] = f
	return f
}

// NewGlobal creates a global variable and registers it in the module.
func (m *Module) NewGlobal(name string, elem Type) *Global {
	g := &Global{GName: name, Elem: elem}
	m.Globals = append(m.Globals, g)
	m.globalByName[name] = g
	return g
}

// FuncNamed returns the function with the given name, or nil.
func (m *Module) FuncNamed(name string) *Func { return m.funcByName[name] }

// GlobalNamed returns the global with the given name, or nil.
func (m *Module) GlobalNamed(name string) *Global { return m.globalByName[name] }

// StructNamed returns the registered struct type with the given name, or nil.
func (m *Module) StructNamed(name string) *StructType {
	for _, s := range m.Structs {
		if s.TypeName == name {
			return s
		}
	}
	return nil
}
