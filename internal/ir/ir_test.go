package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTypeSizes(t *testing.T) {
	cases := []struct {
		ty   Type
		want int64
	}{
		{Int, 8},
		{Float, 8},
		{Void, 0},
		{PointerTo(Int), 8},
		{ArrayOf(Int, 10), 80},
		{ArrayOf(ArrayOf(Float, 4), 3), 96},
		{NewStruct("pair", Field{Name: "a", Ty: Int}, Field{Name: "b", Ty: Float}), 16},
		{NewStruct("node", Field{Name: "v", Ty: Int}, Field{Name: "arr", Ty: ArrayOf(Int, 4)}, Field{Name: "next", Ty: PointerTo(Int)}), 48},
	}
	for _, c := range cases {
		if got := c.ty.Size(); got != c.want {
			t.Errorf("size(%s) = %d, want %d", c.ty, got, c.want)
		}
	}
}

func TestStructOffsets(t *testing.T) {
	st := NewStruct("n", Field{Name: "a", Ty: Int}, Field{Name: "mid", Ty: ArrayOf(Int, 3)}, Field{Name: "z", Ty: Float})
	wantOffsets := []int64{0, 8, 32}
	for i, f := range st.Fields {
		if f.Offset != wantOffsets[i] {
			t.Errorf("field %s offset = %d, want %d", f.Name, f.Offset, wantOffsets[i])
		}
	}
	if st.FieldIndex("mid") != 1 {
		t.Errorf("FieldIndex(mid) = %d", st.FieldIndex("mid"))
	}
	if st.FieldIndex("nope") != -1 {
		t.Errorf("FieldIndex(nope) should be -1")
	}
}

func TestTypeEqual(t *testing.T) {
	s1 := NewStruct("s", Field{Name: "x", Ty: Int})
	s2 := NewStruct("s", Field{Name: "x", Ty: Int}, Field{Name: "y", Ty: Int})
	if !Equal(s1, s2) {
		t.Error("struct equality should be nominal")
	}
	if Equal(PointerTo(Int), PointerTo(Float)) {
		t.Error("int* != float*")
	}
	if !Equal(PointerTo(ArrayOf(Int, 3)), PointerTo(ArrayOf(Int, 3))) {
		t.Error("structural pointer equality failed")
	}
	if Equal(Int, Float) {
		t.Error("int != float")
	}
}

func TestAlign8Property(t *testing.T) {
	f := func(n uint16) bool {
		a := align8(int64(n))
		return a >= int64(n) && a%8 == 0 && a-int64(n) < 8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// buildCounterFunc constructs:
//
//	func @count(n) int { s=0; for i=0..n: s+=i; return s }
func buildCounterFunc(m *Module) *Func {
	n := &Param{PName: "n", Ty: Int}
	f := m.NewFunc("count", Int, n)
	entry := f.NewBlock("entry")
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")

	entry.Br(head)
	i := head.Phi(Int, "i")
	s := head.Phi(Int, "s")
	c := head.CmpIns(Lt, i, n)
	head.CondBr(c, body, exit)
	i2 := body.BinIns(Add, i, CI(1))
	s2 := body.BinIns(Add, s, i)
	body.Br(head)
	exit.Ret(s)

	i.Args = []Value{CI(0), i2}
	s.Args = []Value{CI(0), s2}
	return f
}

func TestVerifyOK(t *testing.T) {
	m := NewModule("t")
	buildCounterFunc(m)
	if err := Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestVerifyCatchesMissingTerminator(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunc("f", Void)
	f.NewBlock("entry") // no terminator
	if err := Verify(m); err == nil {
		t.Fatal("expected error for missing terminator")
	}
}

func TestVerifyCatchesPhiArity(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunc("f", Void)
	entry := f.NewBlock("entry")
	next := f.NewBlock("next")
	entry.Br(next)
	p := next.Phi(Int, "x")
	p.Args = []Value{CI(1), CI(2)} // 2 args, 1 pred
	next.Ret()
	if err := Verify(m); err == nil {
		t.Fatal("expected phi arity error")
	}
}

func TestVerifyCatchesStoreTypeMismatch(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunc("f", Void)
	entry := f.NewBlock("entry")
	a := entry.Alloca(Int, "a")
	entry.Store(CF(1.5), a) // float into int*
	entry.Ret()
	if err := Verify(m); err == nil {
		t.Fatal("expected store type error")
	}
}

func TestPointerOperand(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunc("f", Void)
	entry := f.NewBlock("entry")
	a := entry.Alloca(ArrayOf(Int, 4), "a")
	base := entry.CastIns(Bitcast, PointerTo(Int), a)
	el := entry.IndexPtr(base, CI(2))
	st := entry.Store(CI(7), el)
	ld := entry.Load(el)
	entry.Ret()

	if p, sz, ok := st.PointerOperand(); !ok || p != Value(el) || sz != 8 {
		t.Errorf("store pointer operand: %v %d %v", p, sz, ok)
	}
	if p, sz, ok := ld.PointerOperand(); !ok || p != Value(el) || sz != 8 {
		t.Errorf("load pointer operand: %v %d %v", p, sz, ok)
	}
	if !st.Writes() || st.Reads() {
		t.Error("store should write, not read")
	}
	if !ld.Reads() || ld.Writes() {
		t.Error("load should read, not write")
	}
}

func TestFormatRoundtrip(t *testing.T) {
	m := NewModule("t")
	buildCounterFunc(m)
	txt := FormatModule(m)
	for _, want := range []string{"func @count", "phi", "cmp.lt", "condbr", "ret"} {
		if !strings.Contains(txt, want) {
			t.Errorf("formatted module missing %q:\n%s", want, txt)
		}
	}
}

func TestPhiIncoming(t *testing.T) {
	m := NewModule("t")
	f := buildCounterFunc(m)
	head := f.Blocks[1]
	body := f.Blocks[2]
	entry := f.Blocks[0]
	i := head.Instrs[0]
	if v := PhiIncoming(i, entry); v == nil || v.String() != "0" {
		t.Errorf("phi incoming from entry = %v", v)
	}
	if v := PhiIncoming(i, body); v == nil {
		t.Error("phi incoming from body is nil")
	}
}

func TestCallVerify(t *testing.T) {
	m := NewModule("t")
	callee := m.NewFunc("g", Int, &Param{PName: "x", Ty: Int})
	ce := callee.NewBlock("entry")
	ce.Ret(CI(0))
	f := m.NewFunc("f", Void)
	entry := f.NewBlock("entry")
	entry.Call(callee, CF(1.0)) // wrong arg type
	entry.Ret()
	if err := Verify(m); err == nil {
		t.Fatal("expected call arg type error")
	}
}

func TestModuleLookups(t *testing.T) {
	m := NewModule("t")
	g := m.NewGlobal("counter", Int)
	f := buildCounterFunc(m)
	st := NewStruct("node", Field{Name: "v", Ty: Int})
	m.Structs = append(m.Structs, st)
	if m.FuncNamed("count") != f {
		t.Error("FuncNamed failed")
	}
	if m.GlobalNamed("counter") != g {
		t.Error("GlobalNamed failed")
	}
	if m.StructNamed("node") != st {
		t.Error("StructNamed failed")
	}
	if m.FuncNamed("absent") != nil || m.GlobalNamed("absent") != nil || m.StructNamed("absent") != nil {
		t.Error("lookups of absent names should be nil")
	}
	if !IsPointer(g.Type()) || !Equal(Pointee(g.Type()), Int) {
		t.Error("global value type should be int*")
	}
}

func TestConstHelpers(t *testing.T) {
	if v, ok := ConstIntValue(CI(42)); !ok || v != 42 {
		t.Error("ConstIntValue(CI(42))")
	}
	if _, ok := ConstIntValue(CF(1)); ok {
		t.Error("ConstIntValue of float should fail")
	}
	if !IsConst(Null(PointerTo(Int))) {
		t.Error("null is const")
	}
	np := Null(PointerTo(Int))
	if np.String() != "null" || !IsPointer(np.Type()) {
		t.Error("null formatting/type")
	}
}

func TestFormatInstrAllOpcodes(t *testing.T) {
	m := NewModule("t")
	st := NewStruct("s", Field{Name: "f", Ty: Int})
	m.Structs = append(m.Structs, st)
	g := m.NewGlobal("g", Int)
	callee := m.NewFunc("callee", Int, &Param{PName: "x", Ty: Int})
	cb := callee.NewBlock("entry")
	cb.Ret(CI(1))

	f := m.NewFunc("f", Void, &Param{PName: "c", Ty: Int})
	b := f.NewBlock("entry")
	next := f.NewBlock("next")
	done := f.NewBlock("done")

	al := b.Alloca(Int, "slot")
	ml := b.Malloc(st, CI(16), "obj")
	fld := b.FieldAddr(ml, 0)
	b.Store(CI(3), fld)
	ld := b.Load(g)
	idx := b.IndexPtr(al, CI(0))
	bin := b.BinIns(Add, ld, CI(1))
	cmp := b.CmpIns(Le, bin, CI(10))
	cast := b.CastIns(IntToFloat, Float, bin)
	call := b.Call(callee, bin)
	intr := b.CallIntrinsic("print_float", Void, cast)
	fr := b.Free(ml)
	b.CondBr(cmp, next, done)
	next.Br(done)
	phi := done.Phi(Int, "m")
	phi.Args = []Value{CI(0), call}
	done.Ret()

	checks := map[*Instr]string{
		al: "alloca", ml: "malloc", fld: ".f", ld: "load", idx: "index",
		bin: "add", cmp: "cmp.le", cast: "itof", call: "call @callee",
		intr: "call @print_float", fr: "free", phi: "phi",
	}
	for in, want := range checks {
		if got := FormatInstr(in); !strings.Contains(got, want) {
			t.Errorf("FormatInstr(%s) = %q, missing %q", in.Op, got, want)
		}
	}
	if got := FormatInstr(b.Term()); !strings.Contains(got, "condbr") {
		t.Errorf("condbr format: %q", got)
	}
	if got := FormatInstr(next.Term()); !strings.Contains(got, "br ") {
		t.Errorf("br format: %q", got)
	}
	if err := Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
}
