package ir

import "fmt"

// Op enumerates instruction opcodes.
type Op int

const (
	OpInvalid Op = iota
	OpAlloca     // stack allocation of ElemTy; result *ElemTy
	OpMalloc     // heap allocation; Args[0] = size in bytes; result *ElemTy
	OpFree       // heap free; Args[0] = pointer
	OpLoad       // Args[0] = pointer; result Pointee(Args[0])
	OpStore      // Args[0] = value, Args[1] = pointer; no result
	OpIndex      // Args[0] = base *T, Args[1] = index; result *T (base + idx*sizeof T)
	OpField      // Args[0] = *struct; FieldIdx; result *fieldtype
	OpBin        // Bin; Args[0], Args[1]
	OpCmp        // Cmp; Args[0], Args[1]; result int (0/1)
	OpCast       // Cast; Args[0]
	OpPhi        // Args parallel to Blk.Preds
	OpCall       // Callee or Intrinsic; Args = actuals
	OpBr         // terminator; Blk.Succs[0]
	OpCondBr     // terminator; Args[0] = cond; Succs[0]=true, Succs[1]=false
	OpRet        // terminator; Args optional result
)

var opNames = [...]string{
	OpInvalid: "invalid", OpAlloca: "alloca", OpMalloc: "malloc",
	OpFree: "free", OpLoad: "load", OpStore: "store", OpIndex: "index",
	OpField: "field", OpBin: "bin", OpCmp: "cmp", OpCast: "cast",
	OpPhi: "phi", OpCall: "call", OpBr: "br", OpCondBr: "condbr", OpRet: "ret",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// BinOp enumerates binary arithmetic/logical operators.
type BinOp int

const (
	Add BinOp = iota
	Sub
	Mul
	Div
	Rem
	And
	Or
	Xor
	Shl
	Shr
)

var binNames = [...]string{"add", "sub", "mul", "div", "rem", "and", "or", "xor", "shl", "shr"}

func (b BinOp) String() string { return binNames[b] }

// CmpOp enumerates comparison operators.
type CmpOp int

const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

var cmpNames = [...]string{"eq", "ne", "lt", "le", "gt", "ge"}

func (c CmpOp) String() string { return cmpNames[c] }

// CastKind enumerates conversions.
type CastKind int

const (
	IntToFloat CastKind = iota
	FloatToInt
	Bitcast // pointer-to-pointer reinterpretation
)

var castNames = [...]string{"itof", "ftoi", "bitcast"}

func (c CastKind) String() string { return castNames[c] }

// Instr is a single IR instruction. One concrete struct (rather than a
// type per opcode) keeps the interpreter's dispatch and the analyses'
// pattern matching compact; opcode-specific payload lives in the tail
// fields and is nil/zero when unused.
type Instr struct {
	ID   int // unique within the enclosing function; stable across passes
	Op   Op
	Ty   Type // result type; Void for non-value instructions
	Args []Value
	Blk  *Block

	// Opcode-specific payload.
	ElemTy    Type  // Alloca/Malloc: allocated element type
	FieldIdx  int   // Field: index into the struct type
	Bin       BinOp // Bin
	Cmp       CmpOp // Cmp
	Cast      CastKind
	Callee    *Func  // Call: statically resolved callee (nil for intrinsics)
	Intrinsic string // Call: intrinsic name when Callee is nil
	Hint      string // optional source-level name for diagnostics
	Line      int    // source line, 0 when unknown
}

func (in *Instr) Type() Type { return in.Ty }

func (in *Instr) String() string {
	if in.Ty == nil || in.Ty == Type(Void) {
		return fmt.Sprintf("i%d", in.ID)
	}
	if in.Hint != "" {
		return fmt.Sprintf("%%%s.%d", in.Hint, in.ID)
	}
	return fmt.Sprintf("%%v%d", in.ID)
}

// IsTerminator reports whether the instruction ends a basic block.
func (in *Instr) IsTerminator() bool {
	return in.Op == OpBr || in.Op == OpCondBr || in.Op == OpRet
}

// AccessesMemory reports whether the instruction reads or writes memory
// directly (loads, stores) or may do so indirectly (calls to defined
// functions; intrinsics are memory-silent except their visible effects).
func (in *Instr) AccessesMemory() bool {
	switch in.Op {
	case OpLoad, OpStore:
		return true
	case OpCall:
		return in.Callee != nil
	}
	return false
}

// Reads reports whether the instruction may read memory.
func (in *Instr) Reads() bool {
	switch in.Op {
	case OpLoad:
		return true
	case OpCall:
		return in.Callee != nil
	}
	return false
}

// Writes reports whether the instruction may write memory.
func (in *Instr) Writes() bool {
	switch in.Op {
	case OpStore:
		return true
	case OpCall:
		return in.Callee != nil
	}
	return false
}

// PointerOperand returns the address operand of a load or store, and the
// byte size of the access. ok is false for other opcodes.
func (in *Instr) PointerOperand() (ptr Value, size int64, ok bool) {
	switch in.Op {
	case OpLoad:
		return in.Args[0], in.Ty.Size(), true
	case OpStore:
		return in.Args[1], in.Args[0].Type().Size(), true
	}
	return nil, 0, false
}

// IsAllocation reports whether the instruction creates a memory object
// (Alloca or Malloc), i.e. is an allocation site.
func (in *Instr) IsAllocation() bool { return in.Op == OpAlloca || in.Op == OpMalloc }

// Block is a basic block: a straight-line instruction sequence ending in a
// terminator, with explicit predecessor/successor edges.
type Block struct {
	Name   string
	Index  int // position in Func.Blocks
	Fn     *Func
	Instrs []*Instr
	Preds  []*Block
	Succs  []*Block
}

func (b *Block) String() string { return fmt.Sprintf("%s.%d", b.Name, b.Index) }

// Term returns the block's terminator, or nil if the block is unfinished.
func (b *Block) Term() *Instr {
	if n := len(b.Instrs); n > 0 && b.Instrs[n-1].IsTerminator() {
		return b.Instrs[n-1]
	}
	return nil
}

// predIndex returns the position of p in b.Preds, or -1.
func (b *Block) predIndex(p *Block) int {
	for i, q := range b.Preds {
		if q == p {
			return i
		}
	}
	return -1
}

// PhiIncoming returns the value the phi instruction takes when control
// enters via predecessor pred.
func PhiIncoming(phi *Instr, pred *Block) Value {
	i := phi.Blk.predIndex(pred)
	if i < 0 || i >= len(phi.Args) {
		return nil
	}
	return phi.Args[i]
}
