package ir

import (
	"fmt"
	"strings"
)

// FormatInstr renders a single instruction in the textual IR syntax.
func FormatInstr(in *Instr) string {
	var b strings.Builder
	if in.Ty != nil && in.Ty != Type(Void) {
		fmt.Fprintf(&b, "%s = ", in.String())
	}
	switch in.Op {
	case OpAlloca:
		fmt.Fprintf(&b, "alloca %s", in.ElemTy)
	case OpMalloc:
		fmt.Fprintf(&b, "malloc %s, size=%s", in.ElemTy, in.Args[0])
	case OpFree:
		fmt.Fprintf(&b, "free %s", in.Args[0])
	case OpLoad:
		fmt.Fprintf(&b, "load %s, %s", in.Ty, in.Args[0])
	case OpStore:
		fmt.Fprintf(&b, "store %s, %s", in.Args[0], in.Args[1])
	case OpIndex:
		fmt.Fprintf(&b, "index %s, %s", in.Args[0], in.Args[1])
	case OpField:
		st := Pointee(in.Args[0].Type()).(*StructType)
		fmt.Fprintf(&b, "field %s, .%s", in.Args[0], st.Fields[in.FieldIdx].Name)
	case OpBin:
		fmt.Fprintf(&b, "%s %s, %s", in.Bin, in.Args[0], in.Args[1])
	case OpCmp:
		fmt.Fprintf(&b, "cmp.%s %s, %s", in.Cmp, in.Args[0], in.Args[1])
	case OpCast:
		fmt.Fprintf(&b, "%s %s to %s", in.Cast, in.Args[0], in.Ty)
	case OpPhi:
		b.WriteString("phi ")
		for i, v := range in.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			pred := "?"
			if i < len(in.Blk.Preds) {
				pred = in.Blk.Preds[i].String()
			}
			fmt.Fprintf(&b, "[%s, %s]", v, pred)
		}
	case OpCall:
		name := in.Intrinsic
		if in.Callee != nil {
			name = in.Callee.Name
		}
		fmt.Fprintf(&b, "call @%s(", name)
		for i, a := range in.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.String())
		}
		b.WriteString(")")
	case OpBr:
		fmt.Fprintf(&b, "br %s", in.Blk.Succs[0])
	case OpCondBr:
		fmt.Fprintf(&b, "condbr %s, %s, %s", in.Args[0], in.Blk.Succs[0], in.Blk.Succs[1])
	case OpRet:
		b.WriteString("ret")
		for _, a := range in.Args {
			fmt.Fprintf(&b, " %s", a)
		}
	default:
		fmt.Fprintf(&b, "%s ...", in.Op)
	}
	return b.String()
}

// FormatFunc renders a whole function.
func FormatFunc(f *Func) string {
	var b strings.Builder
	fmt.Fprintf(&b, "func @%s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", p.Ty, p)
	}
	fmt.Fprintf(&b, ") %s {\n", f.RetTy)
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "%s:", blk)
		if len(blk.Preds) > 0 {
			b.WriteString("  ; preds:")
			for _, p := range blk.Preds {
				fmt.Fprintf(&b, " %s", p)
			}
		}
		b.WriteString("\n")
		for _, in := range blk.Instrs {
			fmt.Fprintf(&b, "  %s\n", FormatInstr(in))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// FormatModule renders a whole module.
func FormatModule(m *Module) string {
	var b strings.Builder
	fmt.Fprintf(&b, "module %s\n", m.Name)
	for _, s := range m.Structs {
		fmt.Fprintf(&b, "%s\n", s.Describe())
	}
	for _, g := range m.Globals {
		fmt.Fprintf(&b, "global @%s %s\n", g.GName, g.Elem)
	}
	for _, f := range m.Funcs {
		b.WriteString("\n")
		b.WriteString(FormatFunc(f))
	}
	return b.String()
}
