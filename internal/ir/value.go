package ir

import "fmt"

// Value is anything an instruction can use as an operand: constants,
// globals (whose value is their address), function parameters, and the
// results of other instructions.
type Value interface {
	Type() Type
	String() string
}

// ConstInt is an integer literal.
type ConstInt struct{ V int64 }

// ConstFloat is a floating-point literal.
type ConstFloat struct{ V float64 }

// ConstNull is the null pointer of a given pointer type.
type ConstNull struct{ Ty *PtrType }

func (c *ConstInt) Type() Type   { return Int }
func (c *ConstFloat) Type() Type { return Float }
func (c *ConstNull) Type() Type  { return c.Ty }

func (c *ConstInt) String() string   { return fmt.Sprintf("%d", c.V) }
func (c *ConstFloat) String() string { return fmt.Sprintf("%g", c.V) }
func (c *ConstNull) String() string  { return "null" }

// CI returns an integer constant.
func CI(v int64) *ConstInt { return &ConstInt{V: v} }

// CF returns a float constant.
func CF(v float64) *ConstFloat { return &ConstFloat{V: v} }

// Null returns the null pointer of type t (which must be a pointer type).
func Null(t *PtrType) *ConstNull { return &ConstNull{Ty: t} }

// Global is a module-level variable. Its Value is the address of the
// storage, so its type is a pointer to Elem. Globals are allocation sites
// for the purposes of points-to reasoning.
type Global struct {
	GName string
	Elem  Type
	// InitInt optionally seeds the first words of the global's storage.
	InitInt []int64
	// Internal is true when the global's address is never taken except by
	// direct loads/stores in this module (set by the front-end; the
	// no-capture-global analysis verifies it independently).
	Internal bool
}

func (g *Global) Type() Type     { return PointerTo(g.Elem) }
func (g *Global) String() string { return "@" + g.GName }

// Param is a formal parameter of a function.
type Param struct {
	PName string
	Ty    Type
	Idx   int
	Fn    *Func
}

func (p *Param) Type() Type     { return p.Ty }
func (p *Param) String() string { return "%" + p.PName }

// IsConst reports whether v is a compile-time constant.
func IsConst(v Value) bool {
	switch v.(type) {
	case *ConstInt, *ConstFloat, *ConstNull:
		return true
	}
	return false
}

// ConstIntValue returns the value of v if it is a ConstInt.
func ConstIntValue(v Value) (int64, bool) {
	if c, ok := v.(*ConstInt); ok {
		return c.V, true
	}
	return 0, false
}
