package ir

import "fmt"

// VerifySSA checks the SSA dominance property on top of Verify's
// structural checks: every use of an instruction's value must be
// dominated by its definition — for phi operands, the incoming value must
// dominate the matching predecessor's terminator. The dominance relation
// is supplied by the caller (computed in package cfg) to keep this
// package dependency-free.
//
//	domInstr(def, use) — does def dominate use?
//	domEdge(def, pred) — does def dominate the end of block pred?
func VerifySSA(
	f *Func,
	domInstr func(def, use *Instr) bool,
	domEdge func(def *Instr, pred *Block) bool,
	reachable func(*Block) bool,
) error {
	for _, b := range f.Blocks {
		if !reachable(b) {
			continue // unreachable code is exempt (its phis keep placeholders)
		}
		for _, in := range b.Instrs {
			for i, arg := range in.Args {
				def, ok := arg.(*Instr)
				if !ok {
					continue
				}
				if in.Op == OpPhi {
					if i >= len(b.Preds) {
						return fmt.Errorf("ssa: %s: phi %s operand %d has no predecessor", f.Name, in, i)
					}
					pred := b.Preds[i]
					if !reachable(pred) {
						continue
					}
					if !domEdge(def, pred) {
						return fmt.Errorf("ssa: %s: phi %s operand %d (%s) does not dominate edge %s->%s",
							f.Name, in, i, def, pred, b)
					}
					continue
				}
				if !domInstr(def, in) {
					return fmt.Errorf("ssa: %s: def %s does not dominate use %s in %s",
						f.Name, def, FormatInstr(in), b)
				}
			}
		}
	}
	return nil
}
