package mcgen

import (
	"regexp"
	"strings"
	"testing"

	"scaf/internal/interp"
	"scaf/internal/lower"
)

// TestDeterminism: the generator is a pure function of its seed — the same
// seed yields byte-identical source. Everything downstream (fuzz corpus
// seeds, oracle reproducer headers, CI reruns) relies on this.
func TestDeterminism(t *testing.T) {
	for seed := int64(0); seed <= 20; seed++ {
		a := New(seed).Program()
		b := New(seed).Program()
		if a != b {
			t.Fatalf("seed %d not deterministic:\n--- first\n%s\n--- second\n%s", seed, a, b)
		}
	}
	if New(3).Program() == New(4).Program() {
		t.Fatal("distinct seeds produced identical programs")
	}
}

// TestProgramsCompileAndTerminate: every generated program is valid MC and
// halts under the interpreter's default budget.
func TestProgramsCompileAndTerminate(t *testing.T) {
	seeds := int64(80)
	if testing.Short() {
		seeds = 15
	}
	for seed := int64(0); seed < seeds; seed++ {
		src := New(seed).Program()
		mod, err := lower.Compile("gen", src)
		if err != nil {
			t.Fatalf("seed %d does not compile: %v\n%s", seed, err, src)
		}
		if _, err := interp.Run(mod, interp.Options{}); err != nil {
			t.Fatalf("seed %d does not run: %v\n%s", seed, err, src)
		}
	}
}

// TestAliasingPatternsEmitted: the pointer-aliasing constructs exist in the
// output distribution — two-pointer helpers whose parameters may alias, and
// pointer-to-element locals that are written through. These are the shapes
// that stress may-alias reasoning; if a generator refactor silently drops
// them, the fuzz sweeps quietly lose their hardest cases.
func TestAliasingPatternsEmitted(t *testing.T) {
	twoPtrSig := regexp.MustCompile(`\(int\* p, int\* q, int x\)`)
	twoPtrCall := regexp.MustCompile(`ha\d+\(g\d+, g\d+,`)
	elemPtr := regexp.MustCompile(`int\* p\d+ = \(?&g\d+\[`)
	storeThrough := regexp.MustCompile(`\(?\*p\d+\)? =`)

	var sawHelper, sawCall, sawElemPtr, sawStore bool
	for seed := int64(0); seed < 300; seed++ {
		src := New(seed).Program()
		sawHelper = sawHelper || twoPtrSig.MatchString(src)
		sawCall = sawCall || twoPtrCall.MatchString(src)
		sawElemPtr = sawElemPtr || elemPtr.MatchString(src)
		sawStore = sawStore || storeThrough.MatchString(src)
		if sawHelper && sawCall && sawElemPtr && sawStore {
			return
		}
	}
	t.Fatalf("aliasing patterns missing over 300 seeds: twoPtrHelper=%v call=%v elemPtr=%v storeThrough=%v",
		sawHelper, sawCall, sawElemPtr, sawStore)
}

// TestRuntimePatternsEmitted: every program carries at least two
// speculation-relevant loops, and across a modest seed range all three
// shapes appear — truly DOALL (runtime commit path), almost-DOALL
// (abort path under an optimistic plan), and reduction (shape-refusal
// path). The execution oracle's coverage of commit/abort/refuse rests on
// this distribution; a generator refactor that drops a shape must fail
// here, not silently weaken the oracle.
func TestRuntimePatternsEmitted(t *testing.T) {
	var total PatternCounts
	for seed := int64(0); seed < 100; seed++ {
		g := New(seed)
		g.Program()
		n := g.Patterns.Doall + g.Patterns.AlmostDoall + g.Patterns.Reduction
		if n < 2 {
			t.Fatalf("seed %d: only %d runtime patterns emitted, want >= 2", seed, n)
		}
		total.Doall += g.Patterns.Doall
		total.AlmostDoall += g.Patterns.AlmostDoall
		total.Reduction += g.Patterns.Reduction
	}
	if total.Doall == 0 || total.AlmostDoall == 0 || total.Reduction == 0 {
		t.Fatalf("pattern shape missing over 100 seeds: %+v", total)
	}
}

// TestPatternCountsDeterministic: the emitted-pattern counters are part of
// the seed's contract — reproducer headers and oracle triage read them.
func TestPatternCountsDeterministic(t *testing.T) {
	for seed := int64(0); seed <= 20; seed++ {
		a, b := New(seed), New(seed)
		a.Program()
		b.Program()
		if a.Patterns != b.Patterns {
			t.Fatalf("seed %d: pattern counts diverged: %+v vs %+v", seed, a.Patterns, b.Patterns)
		}
	}
}

// TestLoopBoundsLiteral: generated loops keep the literal-bound shape the
// loop-peeling transform and hot-loop profiling rely on.
func TestLoopBoundsLiteral(t *testing.T) {
	canonical := regexp.MustCompile(`^for \(int (\w+) = 0; \w+ < \d+; \w+\+\+\)`)
	for seed := int64(0); seed < 40; seed++ {
		for _, line := range strings.Split(New(seed).Program(), "\n") {
			trimmed := strings.TrimSpace(line)
			if !strings.HasPrefix(trimmed, "for (") {
				continue
			}
			if !canonical.MatchString(trimmed) {
				t.Fatalf("seed %d: non-canonical loop header %q", seed, trimmed)
			}
		}
	}
}
