// Package mcgen generates random, UB-free, always-terminating MC
// programs for differential and soundness fuzzing: loops have fixed small
// bounds, array indices are masked into range, divisions and remainders
// use non-zero constant divisors, loop counters are never reassigned, and
// every variable is initialized at declaration.
package mcgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Gen generates random, UB-free, always-terminating MC programs:
// loops have fixed small bounds, array indices are masked into range,
// divisions and remainders use non-zero constant divisors, and every
// variable is initialized at declaration.
type Gen struct {
	rng      *rand.Rand
	b        strings.Builder
	ints     []string // in-scope int variables (readable)
	mut      []string // subset of ints that may be assigned (loop counters excluded)
	arrays   []arr    // global int arrays (power-of-two sizes)
	helpers  []string // generated helper functions (int*, int) -> int
	helpers2 []string // two-pointer helper functions (int*, int*, int) -> int
	depth    int
	nextID   int

	// Patterns counts the runtime-relevant loop shapes emitted by the
	// last Program call. It is a pure function of the seed.
	Patterns PatternCounts
}

// PatternCounts records how many loops of each speculation-relevant shape
// a generated program contains. The execution-equivalence oracle relies on
// the corpus containing all three so every run exercises the commit path
// (Doall), the abort path under an optimistic plan (AlmostDoall), and the
// structural refusal path (Reduction).
type PatternCounts struct {
	Doall       int // iteration i touches only element i: speculates and commits
	AlmostDoall int // one iteration writes another's element: aborts if speculated
	Reduction   int // loop-carried scalar (second header phi): shape-refused
}

type arr struct {
	name string
	size int
}

func New(seed int64) *Gen {
	g := &Gen{rng: rand.New(rand.NewSource(seed))}
	return g
}

func (g *Gen) fresh(prefix string) string {
	g.nextID++
	return fmt.Sprintf("%s%d", prefix, g.nextID)
}

func (g *Gen) intExpr(depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		switch {
		case len(g.ints) > 0 && g.rng.Intn(2) == 0:
			return g.ints[g.rng.Intn(len(g.ints))]
		default:
			return fmt.Sprintf("%d", g.rng.Intn(200)-100)
		}
	}
	x := g.intExpr(depth - 1)
	y := g.intExpr(depth - 1)
	switch g.rng.Intn(8) {
	case 0:
		return fmt.Sprintf("(%s + %s)", x, y)
	case 1:
		return fmt.Sprintf("(%s - %s)", x, y)
	case 2:
		return fmt.Sprintf("(%s * %s)", x, y)
	case 3:
		return fmt.Sprintf("(%s / %d)", x, 1+g.rng.Intn(9))
	case 4:
		return fmt.Sprintf("(%s %% %d)", x, 1+g.rng.Intn(9))
	case 5:
		return fmt.Sprintf("(%s & %s)", x, y)
	case 6:
		return fmt.Sprintf("(%s ^ %s)", x, y)
	default:
		return fmt.Sprintf("(%s >> %d)", x, g.rng.Intn(5))
	}
}

func (g *Gen) load(a arr) string {
	return fmt.Sprintf("%s[(%s) & %d]", a.name, g.intExpr(1), a.size-1)
}

func (g *Gen) cond() string {
	ops := []string{"<", "<=", ">", ">=", "==", "!="}
	return fmt.Sprintf("%s %s %s",
		g.intExpr(1), ops[g.rng.Intn(len(ops))], g.intExpr(1))
}

func (g *Gen) indent() string { return strings.Repeat("    ", g.depth+1) }

func (g *Gen) stmt() {
	switch g.rng.Intn(10) {
	case 0: // declaration
		v := g.fresh("v")
		fmt.Fprintf(&g.b, "%sint %s = %s;\n", g.indent(), v, g.intExpr(2))
		g.ints = append(g.ints, v)
		g.mut = append(g.mut, v)
	case 1: // assignment (never to a loop counter: termination!)
		if len(g.mut) == 0 {
			g.stmt()
			return
		}
		v := g.mut[g.rng.Intn(len(g.mut))]
		ops := []string{"=", "+=", "-=", "*="}
		fmt.Fprintf(&g.b, "%s%s %s %s;\n", g.indent(), v, ops[g.rng.Intn(len(ops))], g.intExpr(2))
	case 2: // array store
		a := g.arrays[g.rng.Intn(len(g.arrays))]
		fmt.Fprintf(&g.b, "%s%s[(%s) & %d] = %s;\n",
			g.indent(), a.name, g.intExpr(1), a.size-1, g.intExpr(2))
	case 3: // array load into existing var
		if len(g.mut) == 0 {
			g.stmt()
			return
		}
		v := g.mut[g.rng.Intn(len(g.mut))]
		a := g.arrays[g.rng.Intn(len(g.arrays))]
		fmt.Fprintf(&g.b, "%s%s = %s + %s;\n", g.indent(), v, v, g.load(a))
	case 4: // if / if-else
		fmt.Fprintf(&g.b, "%sif (%s) {\n", g.indent(), g.cond())
		g.block(1 + g.rng.Intn(2))
		if g.rng.Intn(2) == 0 {
			fmt.Fprintf(&g.b, "%s} else {\n", g.indent())
			g.block(1 + g.rng.Intn(2))
		}
		fmt.Fprintf(&g.b, "%s}\n", g.indent())
	case 5: // bounded for loop
		if g.depth >= 2 {
			g.stmt()
			return
		}
		i := g.fresh("i")
		n := 2 + g.rng.Intn(7)
		fmt.Fprintf(&g.b, "%sfor (int %s = 0; %s < %d; %s++) {\n", g.indent(), i, i, n, i)
		saved := len(g.ints)
		g.ints = append(g.ints, i) // readable, not assignable
		g.block(1 + g.rng.Intn(3))
		g.ints = g.ints[:saved]
		fmt.Fprintf(&g.b, "%s}\n", g.indent())
	case 6: // helper call
		if len(g.helpers) == 0 || len(g.mut) == 0 {
			fmt.Fprintf(&g.b, "%sprint(%s);\n", g.indent(), g.intExpr(2))
			return
		}
		h := g.helpers[g.rng.Intn(len(g.helpers))]
		a := g.arrays[g.rng.Intn(len(g.arrays))]
		v := g.mut[g.rng.Intn(len(g.mut))]
		fmt.Fprintf(&g.b, "%s%s = %s + %s(%s, %s);\n",
			g.indent(), v, v, h, a.name, g.intExpr(1))
	case 7: // two-pointer helper call: the array arguments may coincide
		if len(g.helpers2) == 0 || len(g.mut) == 0 {
			fmt.Fprintf(&g.b, "%sprint(%s);\n", g.indent(), g.intExpr(2))
			return
		}
		h := g.helpers2[g.rng.Intn(len(g.helpers2))]
		a1 := g.arrays[g.rng.Intn(len(g.arrays))]
		a2 := g.arrays[g.rng.Intn(len(g.arrays))]
		v := g.mut[g.rng.Intn(len(g.mut))]
		fmt.Fprintf(&g.b, "%s%s = %s + %s(%s, %s, %s);\n",
			g.indent(), v, v, h, a1.name, a2.name, g.intExpr(1))
	case 8: // pointer to a masked array element, then a store (and
		// sometimes a load) through it — a may-alias challenge no masked
		// direct index poses.
		a := g.arrays[g.rng.Intn(len(g.arrays))]
		p := g.fresh("p")
		fmt.Fprintf(&g.b, "%sint* %s = &%s[(%s) & %d];\n",
			g.indent(), p, a.name, g.intExpr(1), a.size-1)
		fmt.Fprintf(&g.b, "%s*%s = %s;\n", g.indent(), p, g.intExpr(2))
		if len(g.mut) > 0 && g.rng.Intn(2) == 0 {
			v := g.mut[g.rng.Intn(len(g.mut))]
			fmt.Fprintf(&g.b, "%s%s = %s + *%s;\n", g.indent(), v, v, p)
		}
	default: // print
		fmt.Fprintf(&g.b, "%sprint(%s);\n", g.indent(), g.intExpr(2))
	}
}

// block emits n statements one level deeper.
func (g *Gen) block(n int) {
	g.depth++
	saved := len(g.ints)
	savedMut := len(g.mut)
	for i := 0; i < n; i++ {
		g.stmt()
	}
	g.ints = g.ints[:saved]
	g.mut = g.mut[:savedMut]
	g.depth--
}

// helper emits a function with one pointer parameter and bounded masked
// accesses, exercising interprocedural reasoning (callee summaries, param
// aliasing, calling contexts) in fuzzed analyses.
func (g *Gen) helper(name string, size int) {
	fmt.Fprintf(&g.b, "int %s(int* p, int x) {\n", name)
	fmt.Fprintf(&g.b, "    int acc = x;\n")
	n := 1 + g.rng.Intn(3)
	for i := 0; i < n; i++ {
		idx := fmt.Sprintf("(x + %d) & %d", g.rng.Intn(16), size-1)
		if g.rng.Intn(2) == 0 {
			fmt.Fprintf(&g.b, "    acc = acc + p[%s];\n", idx)
		} else {
			fmt.Fprintf(&g.b, "    p[%s] = acc * %d;\n", idx, 1+g.rng.Intn(7))
		}
	}
	fmt.Fprintf(&g.b, "    return acc;\n}\n")
}

// helper2 emits a function with two pointer parameters that callers may
// pass the same array for, exercising parameter may-aliasing: a store
// through p can reach a later load through q exactly when the call site
// aliases them, which no context-insensitive summary can rule out.
func (g *Gen) helper2(name string, size int) {
	fmt.Fprintf(&g.b, "int %s(int* p, int* q, int x) {\n", name)
	fmt.Fprintf(&g.b, "    int acc = x;\n")
	n := 2 + g.rng.Intn(3)
	for i := 0; i < n; i++ {
		idx := fmt.Sprintf("(x + %d) & %d", g.rng.Intn(16), size-1)
		switch g.rng.Intn(4) {
		case 0:
			fmt.Fprintf(&g.b, "    acc = acc + p[%s];\n", idx)
		case 1:
			fmt.Fprintf(&g.b, "    acc = acc + q[%s];\n", idx)
		case 2:
			fmt.Fprintf(&g.b, "    p[%s] = acc * %d;\n", idx, 1+g.rng.Intn(7))
		default:
			fmt.Fprintf(&g.b, "    q[%s] = acc - %d;\n", idx, g.rng.Intn(50))
		}
	}
	fmt.Fprintf(&g.b, "    return acc;\n}\n")
}

// runtimePattern emits one full-array loop with a shape the speculative
// runtime cares about. Trip counts equal the array size (8–32), so the
// loops clear the runtime's minimum-iteration gate and the speculation
// decision rests on the dependence plan, not on triviality.
func (g *Gen) runtimePattern() {
	a := g.arrays[g.rng.Intn(len(g.arrays))]
	i := g.fresh("i")
	switch g.rng.Intn(3) {
	case 0: // truly DOALL: iteration i reads and writes only element i
		g.Patterns.Doall++
		fmt.Fprintf(&g.b, "%sfor (int %s = 0; %s < %d; %s++) {\n", g.indent(), i, i, a.size, i)
		fmt.Fprintf(&g.b, "%s    %s[%s] = %s[%s] * %d + %s + %d;\n",
			g.indent(), a.name, i, a.name, i, 2+g.rng.Intn(5), i, g.rng.Intn(50))
		fmt.Fprintf(&g.b, "%s}\n", g.indent())
	case 1: // almost DOALL: exactly one iteration writes another's element
		g.Patterns.AlmostDoall++
		k := g.rng.Intn(a.size)
		j := (k + 1 + g.rng.Intn(a.size-1)) % a.size
		fmt.Fprintf(&g.b, "%sfor (int %s = 0; %s < %d; %s++) {\n", g.indent(), i, i, a.size, i)
		fmt.Fprintf(&g.b, "%s    %s[%s] = %s[%s] + %s;\n", g.indent(), a.name, i, a.name, i, i)
		fmt.Fprintf(&g.b, "%s    if (%s == %d) { %s[%d] = %s - %d; }\n",
			g.indent(), i, k, a.name, j, i, g.rng.Intn(20))
		fmt.Fprintf(&g.b, "%s}\n", g.indent())
	default: // reduction: the accumulator becomes a second header phi
		g.Patterns.Reduction++
		s := g.fresh("r")
		fmt.Fprintf(&g.b, "%sint %s = %d;\n", g.indent(), s, g.rng.Intn(10))
		fmt.Fprintf(&g.b, "%sfor (int %s = 0; %s < %d; %s++) {\n", g.indent(), i, i, a.size, i)
		fmt.Fprintf(&g.b, "%s    %s = %s * 3 + %s[%s];\n", g.indent(), s, s, a.name, i)
		fmt.Fprintf(&g.b, "%s}\n", g.indent())
		fmt.Fprintf(&g.b, "%sprint(%s);\n", g.indent(), s)
		g.ints = append(g.ints, s)
		g.mut = append(g.mut, s)
	}
}

// Program generates a complete MC source.
func (g *Gen) Program() string {
	for i := 0; i < 2+g.rng.Intn(2); i++ {
		size := 1 << (3 + g.rng.Intn(3)) // 8, 16, 32
		a := arr{name: g.fresh("g"), size: size}
		g.arrays = append(g.arrays, a)
		fmt.Fprintf(&g.b, "int %s[%d];\n", a.name, a.size)
	}
	// Helpers take pointers into the smallest array's index space so any
	// array argument is safe (sizes are powers of two ≥ 8; mask with the
	// smallest size used at generation).
	minSize := g.arrays[0].size
	for _, a := range g.arrays {
		if a.size < minSize {
			minSize = a.size
		}
	}
	nHelpers := g.rng.Intn(3)
	for i := 0; i < nHelpers; i++ {
		g.helpers = append(g.helpers, g.fresh("h"))
		g.helper(g.helpers[i], minSize)
	}
	nHelpers2 := g.rng.Intn(3)
	for i := 0; i < nHelpers2; i++ {
		g.helpers2 = append(g.helpers2, g.fresh("ha"))
		g.helper2(g.helpers2[i], minSize)
	}
	g.b.WriteString("void main() {\n")
	g.Patterns = PatternCounts{}
	for i := 0; i < 2+g.rng.Intn(2); i++ {
		g.runtimePattern()
	}
	for i := 0; i < 6+g.rng.Intn(8); i++ {
		g.stmt()
	}
	// Observable summary of array contents.
	for _, a := range g.arrays {
		acc := g.fresh("acc")
		fmt.Fprintf(&g.b, "    int %s = 0;\n", acc)
		fmt.Fprintf(&g.b, "    for (int k = 0; k < %d; k++) { %s = %s * 31 + %s[k]; }\n",
			a.size, acc, acc, a.name)
		fmt.Fprintf(&g.b, "    print(%s);\n", acc)
	}
	g.b.WriteString("}\n")
	return g.b.String()
}
