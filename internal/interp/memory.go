// Package interp executes IR modules under a deterministic, object-granular
// memory model. It is the substrate the profilers observe: offline "train
// runs" of the benchmark programs happen here, standing in for the paper's
// native profiling runs on SPEC.
package interp

import (
	"fmt"
	"hash/fnv"
	"sort"

	"scaf/internal/ir"
)

// Object is one allocated memory region. Every allocation — global, stack
// (alloca), or heap (malloc) — produces a fresh Object with a unique,
// never-reused address range, so profilers can attribute every access to
// an allocation site and dynamic instance unambiguously.
type Object struct {
	ID    int
	Base  uint64
	Size  int64
	Data  []byte
	Site  *ir.Instr  // allocation site; nil for globals
	G     *ir.Global // non-nil for globals
	Freed bool
	// Ctx is a small hash of the call-site stack at allocation time, used
	// by the points-to profiler to separate dynamic instances created by
	// the same static site in different calling contexts.
	Ctx uint64
}

// SiteName names the allocation site for diagnostics.
func (o *Object) SiteName() string {
	if o.G != nil {
		return "@" + o.G.GName
	}
	if o.Site != nil {
		return fmt.Sprintf("%s:%s", o.Site.Blk.Fn.Name, o.Site)
	}
	return "?"
}

// Memory is a bump-allocated address space. Addresses start high and are
// 16-byte aligned so that pointer residues behave like a real allocator's.
type Memory struct {
	objects []*Object // sorted by Base; addresses never reused
	next    uint64
	nextID  int
}

// NewMemory creates an empty address space.
func NewMemory() *Memory { return &Memory{next: 0x10000} }

// Allocate creates a new object of size bytes (zero-filled).
func (m *Memory) Allocate(size int64, site *ir.Instr, g *ir.Global, ctx uint64) *Object {
	if size < 0 {
		size = 0
	}
	o := &Object{
		ID:   m.nextID,
		Base: m.next,
		Size: size,
		Data: make([]byte, size),
		Site: site,
		G:    g,
		Ctx:  ctx,
	}
	m.nextID++
	m.next += (uint64(size) + 15) &^ 15
	if size == 0 {
		m.next += 16
	}
	m.objects = append(m.objects, o)
	return o
}

// Free marks the object containing addr freed and reclaims its storage.
func (m *Memory) Free(addr uint64) (*Object, error) {
	o := m.FindObject(addr)
	if o == nil {
		return nil, fmt.Errorf("free of unmapped address %#x", addr)
	}
	if o.Freed {
		return nil, fmt.Errorf("double free of object %d (%s)", o.ID, o.SiteName())
	}
	if addr != o.Base {
		return nil, fmt.Errorf("free of interior pointer %#x into object %d", addr, o.ID)
	}
	o.Freed = true
	o.Data = nil
	return o, nil
}

// FindObject locates the object whose range contains addr (freed or live),
// or nil.
func (m *Memory) FindObject(addr uint64) *Object {
	i := sort.Search(len(m.objects), func(i int) bool {
		return m.objects[i].Base > addr
	})
	if i == 0 {
		return nil
	}
	o := m.objects[i-1]
	if addr >= o.Base && addr < o.Base+uint64(max64(o.Size, 1)) {
		return o
	}
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Load reads size bytes at addr as a little-endian word.
func (m *Memory) Load(addr uint64, size int64) (uint64, *Object, error) {
	o, off, err := m.locate(addr, size, "load")
	if err != nil {
		return 0, nil, err
	}
	var v uint64
	for i := int64(0); i < size; i++ {
		v |= uint64(o.Data[off+i]) << (8 * uint(i))
	}
	return v, o, nil
}

// Store writes size bytes at addr as a little-endian word.
func (m *Memory) Store(addr uint64, size int64, val uint64) (*Object, error) {
	o, off, err := m.locate(addr, size, "store")
	if err != nil {
		return nil, err
	}
	for i := int64(0); i < size; i++ {
		o.Data[off+i] = byte(val >> (8 * uint(i)))
	}
	return o, nil
}

func (m *Memory) locate(addr uint64, size int64, what string) (*Object, int64, error) {
	if addr == 0 {
		return nil, 0, fmt.Errorf("%s through null pointer", what)
	}
	o := m.FindObject(addr)
	if o == nil {
		return nil, 0, fmt.Errorf("%s at unmapped address %#x", what, addr)
	}
	if o.Freed {
		return nil, 0, fmt.Errorf("%s of freed object %d (%s)", what, o.ID, o.SiteName())
	}
	off := int64(addr - o.Base)
	if off+size > o.Size {
		return nil, 0, fmt.Errorf("%s of %d bytes at offset %d overruns object %d (%s, %d bytes)",
			what, size, off, o.ID, o.SiteName(), o.Size)
	}
	return o, off, nil
}

// Objects returns all objects ever allocated (including freed ones).
func (m *Memory) Objects() []*Object { return m.objects }

// Digest summarizes the full memory image — object identities, sizes,
// liveness, and live bytes — so two runs can be compared for byte
// equality without materializing a copy.
func (m *Memory) Digest() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	word := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * uint(i)))
		}
		h.Write(buf[:])
	}
	for _, o := range m.objects {
		word(uint64(o.ID))
		word(o.Base)
		word(uint64(o.Size))
		if o.Freed {
			word(1)
		} else {
			word(0)
			h.Write(o.Data)
		}
	}
	return h.Sum64()
}
