package interp

import (
	"strings"
	"testing"

	"scaf/internal/ir"
)

// bogusValue is an operand kind the evaluator has never heard of —
// the stand-in for malformed IR produced by a buggy frontend.
type bogusValue struct{}

func (bogusValue) Type() ir.Type  { return ir.Int }
func (bogusValue) String() string { return "bogus" }

// TestMalformedOperandReturnsError is the regression test for the eval
// panic: a module carrying an unknown operand kind must surface as an
// error from Run, not crash the process.
func TestMalformedOperandReturnsError(t *testing.T) {
	m := ir.NewModule("bad")
	f := m.NewFunc("main", ir.Int)
	b := f.NewBlock("entry")
	b.Ret(bogusValue{})

	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Run panicked on malformed IR: %v", r)
		}
	}()
	_, err := Run(m, Options{})
	if err == nil {
		t.Fatal("Run accepted a module with an unknown operand kind")
	}
	if !strings.Contains(err.Error(), "unknown value") {
		t.Errorf("error %q does not identify the unknown operand", err)
	}
	if !strings.Contains(err.Error(), "main") {
		t.Errorf("error %q does not name the offending function", err)
	}
}

// TestMalformedOperandInArithmetic covers the non-terminator path: the
// bogus operand feeds a binop, so the error threads through the register
// evaluation loop rather than the return site.
func TestMalformedOperandInArithmetic(t *testing.T) {
	m := ir.NewModule("bad2")
	f := m.NewFunc("main", ir.Int)
	b := f.NewBlock("entry")
	sum := b.BinIns(ir.Add, ir.CI(1), bogusValue{})
	b.Ret(sum)

	if _, err := Run(m, Options{}); err == nil || !strings.Contains(err.Error(), "unknown value") {
		t.Fatalf("err = %v, want unknown-value error", err)
	}
}

// TestParamIndexOutOfRange: a Param operand whose index exceeds the
// supplied arguments is malformed in the same family — error, not panic.
func TestParamIndexOutOfRange(t *testing.T) {
	m := ir.NewModule("bad3")
	callee := m.NewFunc("f", ir.Int, &ir.Param{PName: "x", Ty: ir.Int, Idx: 0})
	cb := callee.NewBlock("entry")
	cb.Ret(&ir.Param{PName: "ghost", Ty: ir.Int, Idx: 3}) // only 1 arg supplied

	f := m.NewFunc("main", ir.Int)
	b := f.NewBlock("entry")
	call := b.Call(callee, ir.CI(7))
	b.Ret(call)

	if _, err := Run(m, Options{}); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("err = %v, want out-of-range error", err)
	}
}
