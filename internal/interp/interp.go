package interp

import (
	"fmt"
	"hash/fnv"
	"math"

	"scaf/internal/ir"
)

// Observer receives execution events. Profilers implement this interface.
// The zero-cost way to observe a subset of events is to embed BaseObserver.
type Observer interface {
	// Edge fires on every control transfer between blocks of one function.
	Edge(fn *ir.Func, from, to *ir.Block)
	// Load fires after a successful load. val holds the raw 8-byte word.
	Load(in *ir.Instr, addr uint64, size int64, val uint64, obj *Object)
	// Store fires after a successful store.
	Store(in *ir.Instr, addr uint64, size int64, val uint64, obj *Object)
	// Alloc fires when an object is created (globals, allocas, mallocs).
	Alloc(obj *Object)
	// Free fires when an object dies; in is nil for stack deallocation at
	// function return.
	Free(in *ir.Instr, obj *Object)
	// Call fires before entering a defined callee.
	Call(site *ir.Instr, callee *ir.Func)
	// Return fires when a defined callee returns.
	Return(callee *ir.Func)
}

// BaseObserver is a no-op Observer for embedding.
type BaseObserver struct{}

func (BaseObserver) Edge(*ir.Func, *ir.Block, *ir.Block)             {}
func (BaseObserver) Load(*ir.Instr, uint64, int64, uint64, *Object)  {}
func (BaseObserver) Store(*ir.Instr, uint64, int64, uint64, *Object) {}
func (BaseObserver) Alloc(*Object)                                   {}
func (BaseObserver) Free(*ir.Instr, *Object)                         {}
func (BaseObserver) Call(*ir.Instr, *ir.Func)                        {}
func (BaseObserver) Return(*ir.Func)                                 {}

// Options configures a run.
type Options struct {
	MaxSteps  int64 // dynamic instruction budget; 0 means 200M
	MaxDepth  int   // call-stack depth limit; 0 means 10000
	Observers []Observer
	// Hook, when set, observes every top-level control transfer and may
	// take over execution of a region (see Hook). Speculative runtimes
	// use it to intercept loop entries.
	Hook Hook
}

// Result summarizes a completed run.
type Result struct {
	Output []string
	Steps  int64
	Mem    *Memory
}

// Run executes module m starting at main().
func Run(m *ir.Module, opts Options) (*Result, error) {
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 200_000_000
	}
	if opts.MaxDepth == 0 {
		opts.MaxDepth = 10000
	}
	main := m.FuncNamed("main")
	if main == nil {
		return nil, fmt.Errorf("interp: module %s has no main", m.Name)
	}
	if len(main.Params) != 0 {
		return nil, fmt.Errorf("interp: main must take no parameters")
	}
	mem := NewMemory()
	it := &Interp{
		mod:     m,
		mem:     mem,
		heap:    mem,
		opts:    opts,
		obs:     opts.Observers,
		hook:    opts.Hook,
		globals: map[*ir.Global]uint64{},
	}
	for _, g := range m.Globals {
		o := it.heap.Allocate(g.Elem.Size(), nil, g, 0)
		for i, v := range g.InitInt {
			if int64(i*8+8) <= o.Size {
				if _, err := it.heap.Store(o.Base+uint64(i*8), 8, uint64(v)); err != nil {
					return nil, err
				}
			}
		}
		it.globals[g] = o.Base
		it.alloc(o)
	}
	if _, err := it.call(main, nil, 0, 0); err != nil {
		return nil, fmt.Errorf("interp: %w", err)
	}
	return &Result{Output: it.output, Steps: it.steps, Mem: it.heap}, nil
}

// Interp is the execution engine. mem is the load/store target (a View in
// forks); heap is the concrete memory allocation goes to (nil in forks,
// where allocation is refused).
type Interp struct {
	mod     *ir.Module
	mem     MemOps
	heap    *Memory
	memIA   instrAware
	opts    Options
	obs     []Observer
	hook    Hook
	globals map[*ir.Global]uint64
	steps   int64
	output  []string
}

func (it *Interp) alloc(o *Object) {
	for _, ob := range it.obs {
		ob.Alloc(o)
	}
}

// Raw value conversions: every value is a raw 8-byte word.
func b2f(v uint64) float64 { return math.Float64frombits(v) }
func f2b(v float64) uint64 { return math.Float64bits(v) }
func b2i(v uint64) int64   { return int64(v) }
func i2b(v int64) uint64   { return uint64(v) }

func ctxHash(parent uint64, fn *ir.Func, site *ir.Instr) uint64 {
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(parent >> (8 * uint(i)))
	}
	id := uint64(site.ID)
	for i := 0; i < 8; i++ {
		buf[8+i] = byte(id >> (8 * uint(i)))
	}
	h.Write(buf[:])
	h.Write([]byte(fn.Name))
	return h.Sum64()
}

// eval resolves an operand to its raw 8-byte word. Malformed IR — an
// operand kind the evaluator does not know, or a parameter index outside
// the caller-supplied arguments — is reported as an error rather than a
// panic, so profilers and validators running over untrusted modules degrade
// gracefully (the error surfaces through Run).
func (it *Interp) eval(v ir.Value, regs []uint64, args []uint64) (uint64, error) {
	switch x := v.(type) {
	case *ir.ConstInt:
		return i2b(x.V), nil
	case *ir.ConstFloat:
		return f2b(x.V), nil
	case *ir.ConstNull:
		return 0, nil
	case *ir.Global:
		return it.globals[x], nil
	case *ir.Param:
		if x.Idx < 0 || x.Idx >= len(args) {
			return 0, fmt.Errorf("parameter index %d out of range (%d args)", x.Idx, len(args))
		}
		return args[x.Idx], nil
	case *ir.Instr:
		if x.ID < 0 || x.ID >= len(regs) {
			return 0, fmt.Errorf("instruction id %d out of range (%d registers)", x.ID, len(regs))
		}
		return regs[x.ID], nil
	}
	return 0, fmt.Errorf("unknown value %T (%v)", v, v)
}

// call runs one function activation.
func (it *Interp) call(f *ir.Func, args []uint64, depth int, ctx uint64) (uint64, error) {
	if depth > it.opts.MaxDepth {
		return 0, fmt.Errorf("call depth limit exceeded in %s", f.Name)
	}
	fr := &Frame{It: it, Fn: f, Regs: make([]uint64, f.NumIDs()), Args: args, Depth: depth, Ctx: ctx}
	var stackObjs []*Object
	defer func() {
		for _, o := range stackObjs {
			if !o.Freed {
				o.Freed = true
				o.Data = nil
				for _, ob := range it.obs {
					ob.Free(nil, o)
				}
			}
		}
	}()
	return it.exec(fr, f.Entry(), nil, &stackObjs, nil, true)
}

// exec is the block-dispatch engine shared by whole-function calls and
// bounded region execution. With region != nil, every control transfer is
// offered to region.stop before being taken; a satisfied stop records the
// transfer in region and returns without evaluating the destination's
// phis. With hookable set (top-level execution only), it.hook is
// consulted before each block's phis and may redirect control.
func (it *Interp) exec(fr *Frame, block, prev *ir.Block, stackObjs *[]*Object, region *RegionEnd, hookable bool) (uint64, error) {
	f, regs, args, depth, ctx := fr.Fn, fr.Regs, fr.Args, fr.Depth, fr.Ctx
	for {
		if hookable && it.hook != nil {
			nb, np, err := it.hook(fr, block, prev)
			if err != nil {
				return 0, err
			}
			if nb != nil {
				prev, block = np, nb
				continue
			}
		}
		// Phis first, evaluated as a parallel copy from the incoming edge.
		nphi := 0
		for _, in := range block.Instrs {
			if in.Op != ir.OpPhi {
				break
			}
			nphi++
		}
		if nphi > 0 {
			vals := make([]uint64, nphi)
			for i := 0; i < nphi; i++ {
				inc := ir.PhiIncoming(block.Instrs[i], prev)
				if inc == nil {
					return 0, fmt.Errorf("%s: phi with no incoming value from %v", f.Name, prev)
				}
				v, err := it.eval(inc, regs, args)
				if err != nil {
					return 0, fmt.Errorf("%s: %s: %w", f.Name, ir.FormatInstr(block.Instrs[i]), err)
				}
				vals[i] = v
			}
			for i := 0; i < nphi; i++ {
				regs[block.Instrs[i].ID] = vals[i]
			}
			it.steps += int64(nphi)
		}

		for _, in := range block.Instrs[nphi:] {
			it.steps++
			if it.steps > it.opts.MaxSteps {
				return 0, fmt.Errorf("instruction budget exceeded (%d)", it.opts.MaxSteps)
			}
			switch in.Op {
			case ir.OpAlloca:
				if it.heap == nil {
					return 0, fmt.Errorf("%s: %s: allocation inside a speculative region", f.Name, ir.FormatInstr(in))
				}
				o := it.heap.Allocate(in.ElemTy.Size(), in, nil, ctx)
				*stackObjs = append(*stackObjs, o)
				regs[in.ID] = o.Base
				it.alloc(o)
			case ir.OpMalloc:
				raw, err := it.eval(in.Args[0], regs, args)
				if err != nil {
					return 0, fmt.Errorf("%s: %s: %w", f.Name, ir.FormatInstr(in), err)
				}
				if it.heap == nil {
					return 0, fmt.Errorf("%s: %s: allocation inside a speculative region", f.Name, ir.FormatInstr(in))
				}
				size := b2i(raw)
				o := it.heap.Allocate(size, in, nil, ctx)
				regs[in.ID] = o.Base
				it.alloc(o)
			case ir.OpFree:
				addr, err := it.eval(in.Args[0], regs, args)
				if err != nil {
					return 0, fmt.Errorf("%s: %s: %w", f.Name, ir.FormatInstr(in), err)
				}
				if addr == 0 {
					break // free(NULL) is a no-op
				}
				if it.heap == nil {
					return 0, fmt.Errorf("%s: %s: free inside a speculative region", f.Name, ir.FormatInstr(in))
				}
				o, err := it.heap.Free(addr)
				if err != nil {
					return 0, fmt.Errorf("%s: %s: %w", f.Name, ir.FormatInstr(in), err)
				}
				for _, ob := range it.obs {
					ob.Free(in, o)
				}
			case ir.OpLoad:
				addr, err := it.eval(in.Args[0], regs, args)
				if err != nil {
					return 0, fmt.Errorf("%s: %s: %w", f.Name, ir.FormatInstr(in), err)
				}
				size := in.Ty.Size()
				if it.memIA != nil {
					it.memIA.SetInstr(in)
				}
				v, o, err := it.mem.Load(addr, size)
				if err != nil {
					return 0, fmt.Errorf("%s: %s: %w", f.Name, ir.FormatInstr(in), err)
				}
				regs[in.ID] = v
				for _, ob := range it.obs {
					ob.Load(in, addr, size, v, o)
				}
			case ir.OpStore:
				val, err := it.eval(in.Args[0], regs, args)
				if err != nil {
					return 0, fmt.Errorf("%s: %s: %w", f.Name, ir.FormatInstr(in), err)
				}
				addr, err := it.eval(in.Args[1], regs, args)
				if err != nil {
					return 0, fmt.Errorf("%s: %s: %w", f.Name, ir.FormatInstr(in), err)
				}
				size := in.Args[0].Type().Size()
				if it.memIA != nil {
					it.memIA.SetInstr(in)
				}
				o, err := it.mem.Store(addr, size, val)
				if err != nil {
					return 0, fmt.Errorf("%s: %s: %w", f.Name, ir.FormatInstr(in), err)
				}
				for _, ob := range it.obs {
					ob.Store(in, addr, size, val, o)
				}
			case ir.OpIndex:
				base, err := it.eval(in.Args[0], regs, args)
				if err != nil {
					return 0, fmt.Errorf("%s: %s: %w", f.Name, ir.FormatInstr(in), err)
				}
				rawIdx, err := it.eval(in.Args[1], regs, args)
				if err != nil {
					return 0, fmt.Errorf("%s: %s: %w", f.Name, ir.FormatInstr(in), err)
				}
				idx := b2i(rawIdx)
				elem := ir.Pointee(in.Ty)
				regs[in.ID] = base + uint64(idx*elem.Size())
			case ir.OpField:
				base, err := it.eval(in.Args[0], regs, args)
				if err != nil {
					return 0, fmt.Errorf("%s: %s: %w", f.Name, ir.FormatInstr(in), err)
				}
				st := ir.Pointee(in.Args[0].Type()).(*ir.StructType)
				regs[in.ID] = base + uint64(st.Fields[in.FieldIdx].Offset)
			case ir.OpBin:
				x, err := it.eval(in.Args[0], regs, args)
				if err != nil {
					return 0, fmt.Errorf("%s: %s: %w", f.Name, ir.FormatInstr(in), err)
				}
				y, err := it.eval(in.Args[1], regs, args)
				if err != nil {
					return 0, fmt.Errorf("%s: %s: %w", f.Name, ir.FormatInstr(in), err)
				}
				v, err := evalBin(in, x, y)
				if err != nil {
					return 0, fmt.Errorf("%s: %s: %w", f.Name, ir.FormatInstr(in), err)
				}
				regs[in.ID] = v
			case ir.OpCmp:
				x, err := it.eval(in.Args[0], regs, args)
				if err != nil {
					return 0, fmt.Errorf("%s: %s: %w", f.Name, ir.FormatInstr(in), err)
				}
				y, err := it.eval(in.Args[1], regs, args)
				if err != nil {
					return 0, fmt.Errorf("%s: %s: %w", f.Name, ir.FormatInstr(in), err)
				}
				regs[in.ID] = evalCmp(in, x, y)
			case ir.OpCast:
				x, err := it.eval(in.Args[0], regs, args)
				if err != nil {
					return 0, fmt.Errorf("%s: %s: %w", f.Name, ir.FormatInstr(in), err)
				}
				switch in.Cast {
				case ir.IntToFloat:
					regs[in.ID] = f2b(float64(b2i(x)))
				case ir.FloatToInt:
					regs[in.ID] = i2b(int64(b2f(x)))
				case ir.Bitcast:
					regs[in.ID] = x
				}
			case ir.OpCall:
				vals := make([]uint64, len(in.Args))
				for i, a := range in.Args {
					v, err := it.eval(a, regs, args)
					if err != nil {
						return 0, fmt.Errorf("%s: %s: %w", f.Name, ir.FormatInstr(in), err)
					}
					vals[i] = v
				}
				if in.Callee == nil {
					v, err := it.intrinsic(in, vals)
					if err != nil {
						return 0, fmt.Errorf("%s: %s: %w", f.Name, ir.FormatInstr(in), err)
					}
					regs[in.ID] = v
					break
				}
				for _, ob := range it.obs {
					ob.Call(in, in.Callee)
				}
				v, err := it.call(in.Callee, vals, depth+1, ctxHash(ctx, f, in))
				if err != nil {
					return 0, err
				}
				for _, ob := range it.obs {
					ob.Return(in.Callee)
				}
				regs[in.ID] = v
			case ir.OpBr:
				next := block.Succs[0]
				if region != nil && region.stop(block, next) {
					region.From, region.To = block, next
					return 0, nil
				}
				for _, ob := range it.obs {
					ob.Edge(f, block, next)
				}
				prev, block = block, next
				goto nextBlock
			case ir.OpCondBr:
				c, err := it.eval(in.Args[0], regs, args)
				if err != nil {
					return 0, fmt.Errorf("%s: %s: %w", f.Name, ir.FormatInstr(in), err)
				}
				next := block.Succs[0]
				if c == 0 {
					next = block.Succs[1]
				}
				if region != nil && region.stop(block, next) {
					region.From, region.To = block, next
					return 0, nil
				}
				for _, ob := range it.obs {
					ob.Edge(f, block, next)
				}
				prev, block = block, next
				goto nextBlock
			case ir.OpRet:
				if len(in.Args) > 0 {
					v, err := it.eval(in.Args[0], regs, args)
					if err != nil {
						return 0, fmt.Errorf("%s: %s: %w", f.Name, ir.FormatInstr(in), err)
					}
					if region != nil {
						region.Returned, region.RetVal = true, v
					}
					return v, nil
				}
				if region != nil {
					region.Returned = true
				}
				return 0, nil
			case ir.OpPhi:
				return 0, fmt.Errorf("%s: phi after non-phi in %s", f.Name, block)
			default:
				return 0, fmt.Errorf("%s: cannot execute %s", f.Name, ir.FormatInstr(in))
			}
		}
		return 0, fmt.Errorf("%s: block %s fell through without terminator", f.Name, block)
	nextBlock:
	}
}

func evalBin(in *ir.Instr, x, y uint64) (uint64, error) {
	if ir.Equal(in.Ty, ir.Float) {
		a, b := b2f(x), b2f(y)
		switch in.Bin {
		case ir.Add:
			return f2b(a + b), nil
		case ir.Sub:
			return f2b(a - b), nil
		case ir.Mul:
			return f2b(a * b), nil
		case ir.Div:
			return f2b(a / b), nil // IEEE semantics: inf/nan allowed
		}
		return 0, fmt.Errorf("float %s unsupported", in.Bin)
	}
	a, b := b2i(x), b2i(y)
	switch in.Bin {
	case ir.Add:
		return i2b(a + b), nil
	case ir.Sub:
		return i2b(a - b), nil
	case ir.Mul:
		return i2b(a * b), nil
	case ir.Div:
		if b == 0 {
			return 0, fmt.Errorf("integer division by zero")
		}
		return i2b(a / b), nil
	case ir.Rem:
		if b == 0 {
			return 0, fmt.Errorf("integer remainder by zero")
		}
		return i2b(a % b), nil
	case ir.And:
		return i2b(a & b), nil
	case ir.Or:
		return i2b(a | b), nil
	case ir.Xor:
		return i2b(a ^ b), nil
	case ir.Shl:
		return i2b(a << uint(b&63)), nil
	case ir.Shr:
		return i2b(a >> uint(b&63)), nil
	}
	return 0, fmt.Errorf("unknown binop")
}

func evalCmp(in *ir.Instr, x, y uint64) uint64 {
	var r bool
	if ir.Equal(in.Args[0].Type(), ir.Float) {
		a, b := b2f(x), b2f(y)
		switch in.Cmp {
		case ir.Eq:
			r = a == b
		case ir.Ne:
			r = a != b
		case ir.Lt:
			r = a < b
		case ir.Le:
			r = a <= b
		case ir.Gt:
			r = a > b
		case ir.Ge:
			r = a >= b
		}
	} else {
		a, b := b2i(x), b2i(y)
		switch in.Cmp {
		case ir.Eq:
			r = a == b
		case ir.Ne:
			r = a != b
		case ir.Lt:
			r = a < b
		case ir.Le:
			r = a <= b
		case ir.Gt:
			r = a > b
		case ir.Ge:
			r = a >= b
		}
	}
	if r {
		return 1
	}
	return 0
}

func (it *Interp) intrinsic(in *ir.Instr, vals []uint64) (uint64, error) {
	switch in.Intrinsic {
	case "print_int":
		it.output = append(it.output, fmt.Sprintf("%d", b2i(vals[0])))
		return 0, nil
	case "print_float":
		it.output = append(it.output, fmt.Sprintf("%g", b2f(vals[0])))
		return 0, nil
	case "sqrt":
		return f2b(math.Sqrt(b2f(vals[0]))), nil
	case "fabs":
		return f2b(math.Abs(b2f(vals[0]))), nil
	}
	return 0, fmt.Errorf("unknown intrinsic %s", in.Intrinsic)
}
