package interp

import (
	"sort"

	"scaf/internal/ir"
)

// MemOps is the memory interface the execution engine routes every load
// and store through. *Memory implements it directly; View overlays a
// write journal on a shared base image so speculative execution never
// mutates the parent's memory until commit. Allocation stays on the
// concrete *Memory (Interp.heap) and is refused inside forks.
type MemOps interface {
	Load(addr uint64, size int64) (uint64, *Object, error)
	Store(addr uint64, size int64, val uint64) (*Object, error)
}

// instrAware is implemented by MemOps backends that attribute accesses to
// the instruction performing them (View's conflict journal). The engine
// announces the current memory instruction just before each Load/Store.
type instrAware interface{ SetInstr(*ir.Instr) }

// Frame exposes one function activation to hooks and region execution:
// the live register file, the activation's arguments, and its position in
// the call stack. Regs aliases the activation's register slice, so writes
// through a Frame are visible to the continuing execution.
type Frame struct {
	It    *Interp
	Fn    *ir.Func
	Regs  []uint64
	Args  []uint64
	Depth int
	Ctx   uint64
}

// Hook observes every control transfer of top-level (non-region)
// execution just before the destination block's phis evaluate. Returning
// a non-nil next block takes over: execution resumes there, with nextPrev
// as the phi predecessor. Returning (nil, nil, nil) declines. Hooks never
// fire inside RunRegion or forked interpreters, so a hook that executes a
// loop region itself cannot re-trigger on its own fallback execution.
type Hook func(fr *Frame, block, prev *ir.Block) (next, nextPrev *ir.Block, err error)

// RegionEnd reports where a bounded execution stopped: either the
// function returned (Returned, RetVal) or a control transfer From→To
// satisfied the stop predicate before being taken (phis of To have NOT
// been evaluated).
type RegionEnd struct {
	Returned bool
	RetVal   uint64
	From, To *ir.Block

	stop func(from, to *ir.Block) bool
}

// RunRegion executes fr's function from block start (with phi predecessor
// prev) until a control transfer satisfies stop or the function returns.
// The stop predicate is consulted exactly once per transfer, so stateful
// predicates (iteration counters) are safe. Hooks do not fire. Stack
// allocations performed inside the region stay live when the region ends;
// callers speculating over loops must refuse allocating regions.
func (it *Interp) RunRegion(fr *Frame, start, prev *ir.Block, stop func(from, to *ir.Block) bool) (*RegionEnd, error) {
	end := &RegionEnd{stop: stop}
	var stackObjs []*Object
	_, err := it.exec(fr, start, prev, &stackObjs, end, false)
	return end, err
}

// Fork clones the interpreter for speculative execution against mem:
// observers and hooks are stripped, output and step counts start empty,
// and heap operations (alloca/malloc/free) are refused — a region that
// allocates aborts with an error instead of perturbing the parent's
// address space. The globals map is shared read-only.
func (it *Interp) Fork(mem MemOps) *Interp {
	f := &Interp{mod: it.mod, mem: mem, opts: it.opts, globals: it.globals}
	f.opts.Observers = nil
	f.opts.Hook = nil
	f.memIA, _ = mem.(instrAware)
	return f
}

// Eval resolves operand v against a frame's registers and arguments.
func (it *Interp) Eval(v ir.Value, fr *Frame) (uint64, error) {
	return it.eval(v, fr.Regs, fr.Args)
}

// Heap returns the concrete memory backing allocation, or nil in a fork.
func (it *Interp) Heap() *Memory { return it.heap }

// Output returns the lines printed so far.
func (it *Interp) Output() []string { return it.output }

// AppendOutput splices lines (a committed fork's output) into the stream.
func (it *Interp) AppendOutput(lines []string) { it.output = append(it.output, lines...) }

// Steps returns the dynamic instruction count so far.
func (it *Interp) Steps() int64 { return it.steps }

// AddSteps charges a committed fork's work to this interpreter.
func (it *Interp) AddSteps(n int64) { it.steps += n }

// View is a journaled fork of a Memory. Loads read through to the base
// image except where the view itself has written; every store lands in a
// byte-granular journal with the writing instruction recorded, and every
// read of a byte the view has not yet written (an "exposed" read — the
// value came from the pre-region snapshot) records the first reading
// instruction. Those two journals are exactly what commit-time validation
// needs: a later chunk's exposed read or write overlapping an earlier
// chunk's write is a cross-iteration dependence the speculation denied.
type View struct {
	base   *Memory
	cur    *ir.Instr
	writes map[uint64]byte
	writer map[uint64]*ir.Instr
	reads  map[uint64]*ir.Instr
}

// NewView creates an empty journal over base. The base must stay
// quiescent while views over it execute; it is only mutated again at
// commit time, after every view has stopped.
func NewView(base *Memory) *View {
	return &View{
		base:   base,
		writes: map[uint64]byte{},
		writer: map[uint64]*ir.Instr{},
		reads:  map[uint64]*ir.Instr{},
	}
}

// SetInstr implements instrAware.
func (v *View) SetInstr(in *ir.Instr) { v.cur = in }

// Load implements MemOps, reading journal bytes where present and the
// base image elsewhere, recording exposed reads.
func (v *View) Load(addr uint64, size int64) (uint64, *Object, error) {
	o, off, err := v.base.locate(addr, size, "load")
	if err != nil {
		return 0, nil, err
	}
	var val uint64
	for i := int64(0); i < size; i++ {
		a := addr + uint64(i)
		b, written := v.writes[a]
		if !written {
			b = o.Data[off+i]
			if _, seen := v.reads[a]; !seen {
				v.reads[a] = v.cur
			}
		}
		val |= uint64(b) << (8 * uint(i))
	}
	return val, o, nil
}

// Store implements MemOps, journaling the bytes without touching base.
func (v *View) Store(addr uint64, size int64, val uint64) (*Object, error) {
	o, _, err := v.base.locate(addr, size, "store")
	if err != nil {
		return nil, err
	}
	for i := int64(0); i < size; i++ {
		a := addr + uint64(i)
		v.writes[a] = byte(val >> (8 * uint(i)))
		v.writer[a] = v.cur
	}
	return o, nil
}

// Writes exposes the write journal (addr → writing instruction).
func (v *View) Writes() map[uint64]*ir.Instr { return v.writer }

// ExposedReads exposes the journal of reads served by the base image
// (addr → first reading instruction).
func (v *View) ExposedReads() map[uint64]*ir.Instr { return v.reads }

// CommitTo applies the journal to m in ascending address order. It must
// only be called after validation: once applied the writes are published.
func (v *View) CommitTo(m *Memory) error {
	addrs := make([]uint64, 0, len(v.writes))
	for a := range v.writes {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		if _, err := m.Store(a, 1, uint64(v.writes[a])); err != nil {
			return err
		}
	}
	return nil
}
