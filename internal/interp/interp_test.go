package interp

import (
	"strings"
	"testing"

	"scaf/internal/ir"
	"scaf/internal/lower"
)

func run(t *testing.T, src string, opts Options) *Result {
	t.Helper()
	m, err := lower.Compile("test", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := Run(m, opts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func wantOutput(t *testing.T, res *Result, want ...string) {
	t.Helper()
	if len(res.Output) != len(want) {
		t.Fatalf("output = %v, want %v", res.Output, want)
	}
	for i := range want {
		if res.Output[i] != want[i] {
			t.Errorf("output[%d] = %q, want %q", i, res.Output[i], want[i])
		}
	}
}

func TestArithmetic(t *testing.T) {
	res := run(t, `
void main() {
    int a = 7;
    int b = 3;
    print(a + b);
    print(a - b);
    print(a * b);
    print(a / b);
    print(a % b);
    print(a & b);
    print(a | b);
    print(a ^ b);
    print(a << b);
    print(a >> 1);
    print(-a);
    print(!0);
    print(!5);
}`, Options{})
	wantOutput(t, res, "10", "4", "21", "2", "1", "3", "7", "4", "56", "3", "-7", "1", "0")
}

func TestFloatMath(t *testing.T) {
	res := run(t, `
void main() {
    float x = 2.0;
    float y = 0.5;
    print(x + y);
    print(x * y);
    print(x / y);
    print(sqrt(16.0));
    print(fabs(0.0 - 3.5));
    print((int)(x * 3.0));
    print((float)7);
}`, Options{})
	wantOutput(t, res, "2.5", "1", "4", "4", "3.5", "6", "7")
}

func TestLoopsAndComparisons(t *testing.T) {
	res := run(t, `
void main() {
    int s = 0;
    for (int i = 0; i < 10; i++) { s += i; }
    print(s);
    int j = 0;
    while (j < 5) { j++; }
    print(j);
    int k = 0;
    for (;;) {
        k++;
        if (k >= 3) { break; }
    }
    print(k);
    int c = 0;
    for (int i = 0; i < 10; i++) {
        if (i % 2 == 0) { continue; }
        c++;
    }
    print(c);
}`, Options{})
	wantOutput(t, res, "45", "5", "3", "5")
}

func TestShortCircuitEvaluation(t *testing.T) {
	res := run(t, `
int g;
int bump() { g++; return 1; }
void main() {
    g = 0;
    if (0 && bump()) {}
    print(g);
    if (1 || bump()) {}
    print(g);
    if (1 && bump()) {}
    print(g);
}`, Options{})
	wantOutput(t, res, "0", "0", "1")
}

func TestGlobalsAndArrays(t *testing.T) {
	res := run(t, `
int a[10];
float m[3][3];
void main() {
    for (int i = 0; i < 10; i++) { a[i] = i * i; }
    print(a[7]);
    m[1][2] = 6.5;
    print(m[1][2]);
    print(m[0][0]);
}`, Options{})
	wantOutput(t, res, "49", "6.5", "0")
}

func TestStructsAndHeap(t *testing.T) {
	res := run(t, `
struct node { int val; struct node* next; };
void main() {
    struct node* head = 0;
    for (int i = 1; i <= 4; i++) {
        struct node* n = malloc(struct node, 1);
        n->val = i * 10;
        n->next = head;
        head = n;
    }
    int s = 0;
    while (head != 0) {
        s += head->val;
        struct node* dead = head;
        head = head->next;
        free(dead);
    }
    print(s);
}`, Options{})
	wantOutput(t, res, "100")
}

func TestPointersAndAddressOf(t *testing.T) {
	res := run(t, `
void set(int* p, int v) { *p = v; }
void main() {
    int x = 1;
    set(&x, 42);
    print(x);
    int arr[5];
    int* p = arr;
    p[2] = 9;
    print(arr[2]);
    *(p + 3) = 11;
    print(arr[3]);
}`, Options{})
	wantOutput(t, res, "42", "9", "11")
}

func TestRecursion(t *testing.T) {
	res := run(t, `
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
void main() { print(fib(12)); }`, Options{})
	wantOutput(t, res, "144")
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"nullderef", `void main() { int* p = 0; print(*p); }`, "null"},
		{"oob", `void main() { int* p = malloc(int, 2); p[5] = 1; }`, "unmapped"},
		{"useafterfree", `void main() { int* p = malloc(int, 1); free(p); print(*p); }`, "freed"},
		{"doublefree", `void main() { int* p = malloc(int, 1); free(p); free(p); }`, "double free"},
		{"divzero", `void main() { int z = 0; print(3 / z); }`, "division by zero"},
		{"remzero", `void main() { int z = 0; print(3 % z); }`, "remainder by zero"},
		{"interior", `void main() { int* p = malloc(int, 4); free(p + 1); }`, "interior"},
		{"depth", `int f(int n) { return f(n + 1); } void main() { print(f(0)); }`, "depth"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m, err := lower.Compile(c.name, c.src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			_, err = Run(m, Options{})
			if err == nil {
				t.Fatal("expected runtime error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestStepBudget(t *testing.T) {
	m, err := lower.Compile("b", `void main() { for (;;) {} }`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	_, err = Run(m, Options{MaxSteps: 1000})
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("expected budget error, got %v", err)
	}
}

func TestFreeNullIsNoop(t *testing.T) {
	res := run(t, `void main() { int* p = 0; free(p); print(1); }`, Options{})
	wantOutput(t, res, "1")
}

// countingObserver checks that observer callbacks fire.
type countingObserver struct {
	BaseObserver
	loads, stores, allocs, frees, edges, calls, rets int
	lastLoadVal                                      uint64
}

func (c *countingObserver) Edge(fn *ir.Func, from, to *ir.Block) { c.edges++ }
func (c *countingObserver) Load(in *ir.Instr, addr uint64, size int64, val uint64, o *Object) {
	c.loads++
	c.lastLoadVal = val
}
func (c *countingObserver) Store(in *ir.Instr, addr uint64, size int64, val uint64, o *Object) {
	c.stores++
}
func (c *countingObserver) Alloc(o *Object)               { c.allocs++ }
func (c *countingObserver) Free(in *ir.Instr, o *Object)  { c.frees++ }
func (c *countingObserver) Call(in *ir.Instr, f *ir.Func) { c.calls++ }
func (c *countingObserver) Return(f *ir.Func)             { c.rets++ }

func TestObserverEvents(t *testing.T) {
	obs := &countingObserver{}
	res := run(t, `
int g;
int get() { return g; }
void main() {
    g = 77;
    print(get());
}`, Options{Observers: []Observer{obs}})
	wantOutput(t, res, "77")
	if obs.stores != 1 || obs.loads != 1 {
		t.Errorf("loads=%d stores=%d, want 1/1", obs.loads, obs.stores)
	}
	if obs.lastLoadVal != 77 {
		t.Errorf("last load val = %d", obs.lastLoadVal)
	}
	if obs.allocs == 0 {
		t.Error("no alloc events (global should allocate)")
	}
	if obs.calls != 1 || obs.rets != 1 {
		t.Errorf("calls=%d rets=%d", obs.calls, obs.rets)
	}
	if obs.edges == 0 {
		t.Error("no edge events")
	}
}

func TestObjectIdentity(t *testing.T) {
	obs := &allocRecorder{}
	run(t, `
void main() {
    for (int i = 0; i < 3; i++) {
        int* p = malloc(int, 1);
        *p = i;
        free(p);
    }
}`, Options{Observers: []Observer{obs}})
	// 3 distinct heap objects from the same site.
	if len(obs.heap) != 3 {
		t.Fatalf("heap objects = %d, want 3", len(obs.heap))
	}
	site := obs.heap[0].Site
	for _, o := range obs.heap {
		if o.Site != site {
			t.Error("all objects should share the allocation site")
		}
	}
	if obs.heap[0].Base == obs.heap[1].Base {
		t.Error("addresses must not be reused")
	}
}

type allocRecorder struct {
	BaseObserver
	heap []*Object
}

func (a *allocRecorder) Alloc(o *Object) {
	if o.Site != nil && o.Site.Op == ir.OpMalloc {
		a.heap = append(a.heap, o)
	}
}

func TestResidueAlignment(t *testing.T) {
	obs := &allocRecorder{}
	run(t, `
struct pt { int x; int y; };
void main() {
    struct pt* p = malloc(struct pt, 4);
    p[1].y = 5;
    print(p[1].y);
}`, Options{Observers: []Observer{obs}})
	if len(obs.heap) != 1 {
		t.Fatalf("heap objects = %d", len(obs.heap))
	}
	if obs.heap[0].Base%16 != 0 {
		t.Errorf("allocation not 16-byte aligned: %#x", obs.heap[0].Base)
	}
}

func TestPhiParallelCopySwap(t *testing.T) {
	// The classic swap-through-phis pattern: both phis must read their
	// incoming values before either is written.
	m := ir.NewModule("t")
	f := m.NewFunc("main", ir.Void)
	entry := f.NewBlock("entry")
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")

	entry.Br(head)
	a := head.Phi(ir.Int, "a")
	b := head.Phi(ir.Int, "b")
	n := head.Phi(ir.Int, "n")
	cond := head.CmpIns(ir.Lt, n, ir.CI(3))
	head.CondBr(cond, body, exit)
	n2 := body.BinIns(ir.Add, n, ir.CI(1))
	body.Br(head)
	// Incoming: a <- b, b <- a (swap every iteration).
	a.Args = []ir.Value{ir.CI(1), b}
	b.Args = []ir.Value{ir.CI(2), a}
	n.Args = []ir.Value{ir.CI(0), n2}
	exit.CallIntrinsic("print_int", ir.Void, a)
	exit.CallIntrinsic("print_int", ir.Void, b)
	exit.Ret()
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	res, err := Run(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 3 swaps: (1,2) -> (2,1) -> (1,2) -> (2,1).
	wantOutput(t, res, "2", "1")
}

func TestStackObjectsFreedAtReturn(t *testing.T) {
	obs := &countingObserver{}
	run(t, `
void touch() {
    int buf[4];
    buf[0] = 1;
    print(buf[0]);
}
void main() {
    touch();
    touch();
}`, Options{Observers: []Observer{obs}})
	// Two activations: two alloca objects created and auto-freed.
	if obs.frees < 2 {
		t.Errorf("stack frees = %d, want >= 2", obs.frees)
	}
}

func TestAllocationContextsDiffer(t *testing.T) {
	rec := &allocRecorder{}
	run(t, `
int* mk() { return malloc(int, 1); }
void use(int* p) { *p = 1; free(p); }
void main() {
    use(mk());
    use(mk());
}`, Options{Observers: []Observer{rec}})
	if len(rec.heap) != 2 {
		t.Fatalf("heap objects = %d", len(rec.heap))
	}
	// Same site, same calling-context hash (both calls go main->mk with
	// different call sites, so contexts differ).
	if rec.heap[0].Ctx == rec.heap[1].Ctx {
		t.Error("objects from different call sites should carry different contexts")
	}
}
