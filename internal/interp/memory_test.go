package interp

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestMemoryRoundtrip(t *testing.T) {
	m := NewMemory()
	o := m.Allocate(64, nil, nil, 0)
	f := func(off uint8, val uint64) bool {
		offset := uint64(off % 56)
		if _, err := m.Store(o.Base+offset, 8, val); err != nil {
			return false
		}
		got, _, err := m.Load(o.Base+offset, 8)
		return err == nil && got == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemoryPartialOverrun(t *testing.T) {
	m := NewMemory()
	o := m.Allocate(12, nil, nil, 0) // deliberately not 8-aligned size
	if _, err := m.Store(o.Base+8, 8, 1); err == nil || !strings.Contains(err.Error(), "overruns") {
		t.Errorf("expected overrun error, got %v", err)
	}
	if _, _, err := m.Load(o.Base+8, 8); err == nil || !strings.Contains(err.Error(), "overruns") {
		t.Errorf("expected overrun error, got %v", err)
	}
	if _, err := m.Store(o.Base+4, 8, 1); err != nil {
		t.Errorf("in-bounds store failed: %v", err)
	}
}

func TestMemoryFindObject(t *testing.T) {
	m := NewMemory()
	var objs []*Object
	for i := 0; i < 10; i++ {
		objs = append(objs, m.Allocate(int64(8+i*8), nil, nil, 0))
	}
	for _, o := range objs {
		if m.FindObject(o.Base) != o {
			t.Errorf("FindObject(base) failed for %d", o.ID)
		}
		if m.FindObject(o.Base+uint64(o.Size)-1) != o {
			t.Errorf("FindObject(last byte) failed for %d", o.ID)
		}
	}
	if m.FindObject(0x100) != nil {
		t.Error("FindObject below heap should be nil")
	}
	if m.FindObject(m.next+1024) != nil {
		t.Error("FindObject above heap should be nil")
	}
}

func TestMemoryLittleEndian(t *testing.T) {
	m := NewMemory()
	o := m.Allocate(8, nil, nil, 0)
	if _, err := m.Store(o.Base, 8, 0x0102030405060708); err != nil {
		t.Fatal(err)
	}
	if o.Data[0] != 0x08 || o.Data[7] != 0x01 {
		t.Errorf("not little-endian: % x", o.Data)
	}
}

func TestZeroSizeAllocationsDistinct(t *testing.T) {
	m := NewMemory()
	a := m.Allocate(0, nil, nil, 0)
	b := m.Allocate(0, nil, nil, 0)
	if a.Base == b.Base {
		t.Error("zero-size objects must have distinct addresses")
	}
}

func TestFreedObjectLookup(t *testing.T) {
	m := NewMemory()
	o := m.Allocate(16, nil, nil, 0)
	if _, err := m.Free(o.Base); err != nil {
		t.Fatal(err)
	}
	// Still findable (for diagnostics) but unusable.
	if m.FindObject(o.Base) != o {
		t.Error("freed object should still be locatable")
	}
	if _, _, err := m.Load(o.Base, 8); err == nil {
		t.Error("load of freed object should fail")
	}
	if _, err := m.Free(o.Base + 32); err == nil {
		t.Error("free of unmapped address should fail")
	}
}
