package validate

import (
	"strings"
	"testing"

	"scaf/internal/cfg"
	"scaf/internal/core"
	"scaf/internal/interp"
	"scaf/internal/ir"
	"scaf/internal/lower"
	"scaf/internal/profile"
	"scaf/internal/spec"
)

func load(t *testing.T, src string) (*cfg.Program, *profile.Data) {
	t.Helper()
	mod, err := lower.Compile("test", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	prog := cfg.NewProgram(mod)
	data, err := profile.Collect(prog, interp.Options{})
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	return prog, data
}

const ctrlProg = `
int x;
int out;
int mode;
void main() {
    for (int i = 0; i < 300; i++) {
        if (i > mode) {
            out = out + 1;
        } else {
            x = i;
        }
        out = out + x;
        x = i * 2;
    }
    print(out);
}
`

// ctrlAssertion builds the control assertion for main's never-taken edges
// as the control-speculation module would.
func ctrlAssertion(t *testing.T, prog *cfg.Program, data *profile.Data) core.Assertion {
	t.Helper()
	main := prog.Mod.FuncNamed("main")
	a := core.Assertion{Module: spec.NameControlSpec, Kind: "never-taken-edges"}
	for _, e := range data.Edge.BiasedEdges(main) {
		a.Points = append(a.Points, core.Point{Block: e.From, EdgeTo: e.To})
	}
	if len(a.Points) == 0 {
		t.Fatal("no biased edges")
	}
	return a
}

func TestControlAssertionValidatesOnTrainingInput(t *testing.T) {
	// mode defaults to 0... the branch i > mode is taken for i >= 1:
	// initialize mode high so the branch is never taken during profiling.
	src := strings.Replace(ctrlProg, "int mode;", "int mode;\nvoid init() { mode = 1000000; }", 1)
	src = strings.Replace(src, "void main() {", "void main() {\n    init();", 1)
	prog, data := load(t, src)
	a := ctrlAssertion(t, prog, data)
	rep, err := Check(prog, data, []core.Assertion{a}, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("violations on the training input: %v", rep.Violations)
	}
}

func TestControlAssertionCatchesMisspeculation(t *testing.T) {
	// Profile with the branch never taken, then "change the input" by
	// rebuilding the program with a mode that takes it — the dead-edge
	// check must fire.
	srcTrain := strings.Replace(ctrlProg, "int mode;", "int mode;\nvoid init() { mode = 1000000; }", 1)
	srcTrain = strings.Replace(srcTrain, "void main() {", "void main() {\n    init();", 1)
	prog, data := load(t, srcTrain)
	a := ctrlAssertion(t, prog, data)

	// Simulate a different production input by mutating the init value in
	// the IR: find the store of the constant and lower the threshold.
	init := prog.Mod.FuncNamed("init")
	patched := false
	init.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpStore {
			in.Args[0] = ir.CI(150) // branch taken for i > 150
			patched = true
		}
	})
	if !patched {
		t.Fatal("init store not found")
	}
	rep, err := Check(prog, data, []core.Assertion{a}, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatal("expected misspeculation on the changed input")
	}
	if !strings.Contains(rep.Violations[0].Detail, "dead edge") {
		t.Errorf("detail: %s", rep.Violations[0].Detail)
	}
}

func TestValueCheckViolation(t *testing.T) {
	prog, data := load(t, `
int cfg;
int out;
void main() {
    cfg = 5;
    for (int i = 0; i < 100; i++) {
        out = out + cfg;     // predictable during profiling
    }
    print(out);
}`)
	var cfgLoad *ir.Instr
	prog.Mod.FuncNamed("main").Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpLoad && in.Args[0] == ir.Value(prog.Mod.GlobalNamed("cfg")) {
			cfgLoad = in
		}
	})
	a := core.Assertion{
		Module: spec.NameValuePred, Kind: "value-check",
		Points: []core.Point{{Instr: cfgLoad}},
	}
	// Clean on the training input.
	rep, err := Check(prog, data, []core.Assertion{a}, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() || rep.Checks != 100 {
		t.Fatalf("train run: failed=%v checks=%d", rep.Failed(), rep.Checks)
	}
	// Change the initial store: every check now fails.
	prog.Mod.FuncNamed("main").Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpStore && in.Args[1] == ir.Value(prog.Mod.GlobalNamed("cfg")) {
			in.Args[0] = ir.CI(6)
		}
	})
	rep, err = Check(prog, data, []core.Assertion{a}, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatal("expected value misspeculation")
	}
}

func TestReadOnlyHeapViolation(t *testing.T) {
	prog, data := load(t, `
int* table;
int gate;
int out;
void fill() {
    int* t = table;
    for (int k = 0; k < 16; k++) { t[k] = k; }
}
void main() {
    table = malloc(int, 16);
    gate = 1000000;
    fill();
    for (int i = 0; i < 200; i++) {
        int* t = table;
        out = out + t[i % 16];
        if (i > gate) {
            t[0] = 0 - 1;        // never during profiling
        }
    }
    print(out);
}`)
	main := prog.Mod.FuncNamed("main")
	var site profile.Site
	main.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpMalloc {
			site = profile.Site{In: in}
		}
	})
	var header *ir.Block
	for _, l := range prog.Forests[main].All {
		if data.Lifetime.ReadOnly(l, site) {
			header = l.Header
		}
	}
	if header == nil {
		t.Fatal("table not read-only in any loop")
	}
	a := core.Assertion{
		Module: spec.NameReadOnly, Kind: "ro-heap",
		Points:    []core.Point{{Instr: site.In}, {Block: header}},
		Conflicts: []core.Point{{Instr: site.In}},
	}
	rep, err := Check(prog, data, []core.Assertion{a}, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("train run violations: %v", rep.Violations)
	}
	// Lower the gate: the loop now writes the protected object.
	main.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpStore && in.Args[1] == ir.Value(prog.Mod.GlobalNamed("gate")) {
			in.Args[0] = ir.CI(100)
		}
	})
	rep, err = Check(prog, data, []core.Assertion{a}, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatal("expected read-only heap misspeculation")
	}
}

func TestShortLivedViolationDetected(t *testing.T) {
	prog, data := load(t, `
int* scratch;
int* leak;
int gate;
int out;
void main() {
    gate = 1000000;
    leak = 0;
    for (int i = 0; i < 150; i++) {
        scratch = malloc(int, 4);
        int* s = scratch;
        s[0] = i;
        out = out + s[0];
        if (i > gate) {
            leak = s;            // never during profiling: object escapes
        } else {
            free(scratch);
        }
    }
    print(out);
}`)
	main := prog.Mod.FuncNamed("main")
	var site profile.Site
	main.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpMalloc {
			site = profile.Site{In: in}
		}
	})
	loop := prog.Forests[main].All[0]
	if !data.Lifetime.ShortLived(loop, site) {
		t.Fatal("site should profile as short-lived")
	}
	a := core.Assertion{
		Module: spec.NameShortLived, Kind: "sl-heap",
		Points:    []core.Point{{Instr: site.In}, {Block: loop.Header}},
		Conflicts: []core.Point{{Instr: site.In}},
	}
	rep, err := Check(prog, data, []core.Assertion{a}, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("train run violations: %v", rep.Violations)
	}
	// Change the input: some objects now survive their iteration.
	main.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpStore && in.Args[1] == ir.Value(prog.Mod.GlobalNamed("gate")) {
			in.Args[0] = ir.CI(100)
		}
	})
	rep, err = Check(prog, data, []core.Assertion{a}, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatal("expected short-lived misspeculation")
	}
	if !strings.Contains(rep.Violations[0].Detail, "survived iteration") {
		t.Errorf("detail: %s", rep.Violations[0].Detail)
	}
}

func TestRejectsUnvalidatableAssertions(t *testing.T) {
	prog, data := load(t, `void main() { print(1); }`)
	_, err := Check(prog, data, []core.Assertion{{Module: spec.NamePointsTo}}, interp.Options{})
	if err == nil {
		t.Error("raw points-to assertions must be rejected")
	}
	_, err = Check(prog, data, []core.Assertion{{Module: "mystery"}}, interp.Options{})
	if err == nil {
		t.Error("unknown modules must be rejected")
	}
}
