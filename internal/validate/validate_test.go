package validate

import (
	"strings"
	"testing"

	"scaf/internal/cfg"
	"scaf/internal/core"
	"scaf/internal/interp"
	"scaf/internal/ir"
	"scaf/internal/lower"
	"scaf/internal/profile"
	"scaf/internal/spec"
)

func load(t *testing.T, src string) (*cfg.Program, *profile.Data) {
	t.Helper()
	mod, err := lower.Compile("test", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	prog := cfg.NewProgram(mod)
	data, err := profile.Collect(prog, interp.Options{})
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	return prog, data
}

const ctrlProg = `
int x;
int out;
int mode;
void main() {
    for (int i = 0; i < 300; i++) {
        if (i > mode) {
            out = out + 1;
        } else {
            x = i;
        }
        out = out + x;
        x = i * 2;
    }
    print(out);
}
`

// ctrlAssertion builds the control assertion for main's never-taken edges
// as the control-speculation module would.
func ctrlAssertion(t *testing.T, prog *cfg.Program, data *profile.Data) core.Assertion {
	t.Helper()
	main := prog.Mod.FuncNamed("main")
	a := core.Assertion{Module: spec.NameControlSpec, Kind: "never-taken-edges"}
	for _, e := range data.Edge.BiasedEdges(main) {
		a.Points = append(a.Points, core.Point{Block: e.From, EdgeTo: e.To})
	}
	if len(a.Points) == 0 {
		t.Fatal("no biased edges")
	}
	return a
}

func TestControlAssertionValidatesOnTrainingInput(t *testing.T) {
	// mode defaults to 0... the branch i > mode is taken for i >= 1:
	// initialize mode high so the branch is never taken during profiling.
	src := strings.Replace(ctrlProg, "int mode;", "int mode;\nvoid init() { mode = 1000000; }", 1)
	src = strings.Replace(src, "void main() {", "void main() {\n    init();", 1)
	prog, data := load(t, src)
	a := ctrlAssertion(t, prog, data)
	rep, err := Check(prog, data, []core.Assertion{a}, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("violations on the training input: %v", rep.Violations)
	}
}

func TestControlAssertionCatchesMisspeculation(t *testing.T) {
	// Profile with the branch never taken, then "change the input" by
	// rebuilding the program with a mode that takes it — the dead-edge
	// check must fire.
	srcTrain := strings.Replace(ctrlProg, "int mode;", "int mode;\nvoid init() { mode = 1000000; }", 1)
	srcTrain = strings.Replace(srcTrain, "void main() {", "void main() {\n    init();", 1)
	prog, data := load(t, srcTrain)
	a := ctrlAssertion(t, prog, data)

	// Simulate a different production input by mutating the init value in
	// the IR: find the store of the constant and lower the threshold.
	init := prog.Mod.FuncNamed("init")
	patched := false
	init.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpStore {
			in.Args[0] = ir.CI(150) // branch taken for i > 150
			patched = true
		}
	})
	if !patched {
		t.Fatal("init store not found")
	}
	rep, err := Check(prog, data, []core.Assertion{a}, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatal("expected misspeculation on the changed input")
	}
	if !strings.Contains(rep.Violations[0].Detail, "dead edge") {
		t.Errorf("detail: %s", rep.Violations[0].Detail)
	}
}

func TestValueCheckViolation(t *testing.T) {
	prog, data := load(t, `
int cfg;
int out;
void main() {
    cfg = 5;
    for (int i = 0; i < 100; i++) {
        out = out + cfg;     // predictable during profiling
    }
    print(out);
}`)
	var cfgLoad *ir.Instr
	prog.Mod.FuncNamed("main").Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpLoad && in.Args[0] == ir.Value(prog.Mod.GlobalNamed("cfg")) {
			cfgLoad = in
		}
	})
	a := core.Assertion{
		Module: spec.NameValuePred, Kind: "value-check",
		Points: []core.Point{{Instr: cfgLoad}},
	}
	// Clean on the training input.
	rep, err := Check(prog, data, []core.Assertion{a}, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() || rep.Checks != 100 {
		t.Fatalf("train run: failed=%v checks=%d", rep.Failed(), rep.Checks)
	}
	// Change the initial store: every check now fails.
	prog.Mod.FuncNamed("main").Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpStore && in.Args[1] == ir.Value(prog.Mod.GlobalNamed("cfg")) {
			in.Args[0] = ir.CI(6)
		}
	})
	rep, err = Check(prog, data, []core.Assertion{a}, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatal("expected value misspeculation")
	}
}

func TestReadOnlyHeapViolation(t *testing.T) {
	prog, data := load(t, `
int* table;
int gate;
int out;
void fill() {
    int* t = table;
    for (int k = 0; k < 16; k++) { t[k] = k; }
}
void main() {
    table = malloc(int, 16);
    gate = 1000000;
    fill();
    for (int i = 0; i < 200; i++) {
        int* t = table;
        out = out + t[i % 16];
        if (i > gate) {
            t[0] = 0 - 1;        // never during profiling
        }
    }
    print(out);
}`)
	main := prog.Mod.FuncNamed("main")
	var site profile.Site
	main.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpMalloc {
			site = profile.Site{In: in}
		}
	})
	var header *ir.Block
	for _, l := range prog.Forests[main].All {
		if data.Lifetime.ReadOnly(l, site) {
			header = l.Header
		}
	}
	if header == nil {
		t.Fatal("table not read-only in any loop")
	}
	a := core.Assertion{
		Module: spec.NameReadOnly, Kind: "ro-heap",
		Points:    []core.Point{{Instr: site.In}, {Block: header}},
		Conflicts: []core.Point{{Instr: site.In}},
	}
	rep, err := Check(prog, data, []core.Assertion{a}, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("train run violations: %v", rep.Violations)
	}
	// Lower the gate: the loop now writes the protected object.
	main.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpStore && in.Args[1] == ir.Value(prog.Mod.GlobalNamed("gate")) {
			in.Args[0] = ir.CI(100)
		}
	})
	rep, err = Check(prog, data, []core.Assertion{a}, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatal("expected read-only heap misspeculation")
	}
}

func TestShortLivedViolationDetected(t *testing.T) {
	prog, data := load(t, `
int* scratch;
int* leak;
int gate;
int out;
void main() {
    gate = 1000000;
    leak = 0;
    for (int i = 0; i < 150; i++) {
        scratch = malloc(int, 4);
        int* s = scratch;
        s[0] = i;
        out = out + s[0];
        if (i > gate) {
            leak = s;            // never during profiling: object escapes
        } else {
            free(scratch);
        }
    }
    print(out);
}`)
	main := prog.Mod.FuncNamed("main")
	var site profile.Site
	main.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpMalloc {
			site = profile.Site{In: in}
		}
	})
	loop := prog.Forests[main].All[0]
	if !data.Lifetime.ShortLived(loop, site) {
		t.Fatal("site should profile as short-lived")
	}
	a := core.Assertion{
		Module: spec.NameShortLived, Kind: "sl-heap",
		Points:    []core.Point{{Instr: site.In}, {Block: loop.Header}},
		Conflicts: []core.Point{{Instr: site.In}},
	}
	rep, err := Check(prog, data, []core.Assertion{a}, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("train run violations: %v", rep.Violations)
	}
	// Change the input: some objects now survive their iteration.
	main.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpStore && in.Args[1] == ir.Value(prog.Mod.GlobalNamed("gate")) {
			in.Args[0] = ir.CI(100)
		}
	})
	rep, err = Check(prog, data, []core.Assertion{a}, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatal("expected short-lived misspeculation")
	}
	if !strings.Contains(rep.Violations[0].Detail, "survived iteration") {
		t.Errorf("detail: %s", rep.Violations[0].Detail)
	}
}

func TestRejectsUnvalidatableAssertions(t *testing.T) {
	prog, data := load(t, `void main() { print(1); }`)
	_, err := Check(prog, data, []core.Assertion{{Module: spec.NamePointsTo}}, interp.Options{})
	if err == nil {
		t.Error("raw points-to assertions must be rejected")
	}
	_, err = Check(prog, data, []core.Assertion{{Module: "mystery"}}, interp.Options{})
	if err == nil {
		t.Error("unknown modules must be rejected")
	}
}

func TestResidueViolation(t *testing.T) {
	// Even indices only during profiling: with 8-byte ints, g[even] lands
	// 16-byte-aligned offsets from g, so the element pointer sees a single
	// residue class. Odd indices shift by 8 — outside the profiled mask.
	prog, data := load(t, `
int g[16];
int gate;
int out;
void main() {
    gate = 1000000;
    for (int i = 0; i < 200; i++) {
        int k = (i & 7) * 2;
        if (i > gate) {
            k = k + 1;           // never during profiling
        }
        int* p = &g[k];
        out = out + (*p);
        (*p) = i;
    }
    print(out);
}`)
	main := prog.Mod.FuncNamed("main")
	var elemPtr *ir.Instr
	main.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpIndex {
			elemPtr = in
		}
	})
	if elemPtr == nil {
		t.Fatal("element-pointer instruction not found")
	}
	if mask, ok := data.Residue.Mask(elemPtr); !ok || mask == 0xffff {
		t.Fatalf("residue profile unusable: mask=%#x ok=%v", mask, ok)
	}
	a := core.Assertion{
		Module: spec.NameResidue, Kind: "residue-mask",
		Points: []core.Point{{Instr: elemPtr}},
	}
	rep, err := Check(prog, data, []core.Assertion{a}, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("train run violations: %v", rep.Violations)
	}
	if rep.Checks == 0 {
		t.Fatal("residue check never executed")
	}
	// Lower the gate: odd residues appear.
	main.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpStore && in.Args[1] == ir.Value(prog.Mod.GlobalNamed("gate")) {
			in.Args[0] = ir.CI(100)
		}
	})
	rep, err = Check(prog, data, []core.Assertion{a}, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatal("expected residue misspeculation")
	}
	if !strings.Contains(rep.Violations[0].Detail, "outside profiled mask") {
		t.Errorf("detail: %s", rep.Violations[0].Detail)
	}
}

// TestInstallErrors: every malformed or unvalidatable assertion is an
// install-time error — validation never starts with a half-wired monitor.
func TestInstallErrors(t *testing.T) {
	prog, data := load(t, `
int g[8];
int out;
void main() {
    for (int i = 0; i < 40; i++) {
        g[i & 7] = i;
        out = out + g[(i + 1) & 7];
    }
    print(out);
}`)
	main := prog.Mod.FuncNamed("main")
	var varyingLoad, someStore, someCmp *ir.Instr
	main.Instrs(func(in *ir.Instr) {
		switch in.Op {
		case ir.OpLoad:
			if _, ok := data.Value.Predictable(in); !ok {
				varyingLoad = in
			}
		case ir.OpStore:
			someStore = in
		case ir.OpCmp:
			someCmp = in
		}
	})
	if varyingLoad == nil || someStore == nil || someCmp == nil {
		t.Fatalf("fixture instructions missing: load=%v store=%v cmp=%v",
			varyingLoad, someStore, someCmp)
	}
	header := main.Blocks[0]

	cases := []struct {
		name    string
		assert  core.Assertion
		wantErr string
	}{
		{"control point without edge",
			core.Assertion{Module: spec.NameControlSpec,
				Points: []core.Point{{Block: header}}},
			"malformed control point"},
		{"value check on a store",
			core.Assertion{Module: spec.NameValuePred,
				Points: []core.Point{{Instr: someStore}}},
			"needs a load point"},
		{"value check without prediction",
			core.Assertion{Module: spec.NameValuePred,
				Points: []core.Point{{Instr: varyingLoad}}},
			"no prediction"},
		{"read-only without loop",
			core.Assertion{Module: spec.NameReadOnly,
				Points: []core.Point{{G: prog.Mod.GlobalNamed("g")}}},
			"needs site and loop points"},
		{"short-lived without site",
			core.Assertion{Module: spec.NameShortLived,
				Points: []core.Point{{Block: header}}},
			"needs site and loop points"},
		{"residue without profile",
			core.Assertion{Module: spec.NameResidue,
				Points: []core.Point{{Instr: someCmp}}},
			"no residue profile"},
		{"raw points-to",
			core.Assertion{Module: spec.NamePointsTo},
			"prohibitive"},
		{"unknown module",
			core.Assertion{Module: "mystery"},
			"unknown assertion module"},
	}
	for _, tc := range cases {
		_, err := Check(prog, data, []core.Assertion{tc.assert}, interp.Options{})
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestViolationOrderingAndCap: violations are reported in execution order
// — the order recovery code would observe them — and the report caps at
// 100 so a hot misspeculating loop cannot flood it.
func TestViolationOrderingAndCap(t *testing.T) {
	prog, data := load(t, `
int cfg1;
int cfg2;
int out;
void main() {
    cfg1 = 5;
    cfg2 = 7;
    for (int i = 0; i < 120; i++) {
        out = out + cfg1;
        out = out + cfg2;
    }
    print(out);
}`)
	main := prog.Mod.FuncNamed("main")
	loadOf := func(name string) *ir.Instr {
		var found *ir.Instr
		main.Instrs(func(in *ir.Instr) {
			if in.Op == ir.OpLoad && in.Args[0] == ir.Value(prog.Mod.GlobalNamed(name)) {
				found = in
			}
		})
		if found == nil {
			t.Fatalf("no load of %s", name)
		}
		return found
	}
	asserts := []core.Assertion{
		{Module: spec.NameValuePred, Kind: "v1", Points: []core.Point{{Instr: loadOf("cfg1")}}},
		{Module: spec.NameValuePred, Kind: "v2", Points: []core.Point{{Instr: loadOf("cfg2")}}},
	}
	// Break both predictions.
	for _, name := range []string{"cfg1", "cfg2"} {
		g := prog.Mod.GlobalNamed(name)
		main.Instrs(func(in *ir.Instr) {
			if in.Op == ir.OpStore && in.Args[1] == ir.Value(g) {
				in.Args[0] = ir.CI(1000)
			}
		})
	}
	rep, err := Check(prog, data, asserts, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 120 iterations x 2 failing checks = 240 misspeculations, capped.
	if len(rep.Violations) != 100 {
		t.Fatalf("got %d violations, want the cap of 100", len(rep.Violations))
	}
	// Execution order: cfg1's load precedes cfg2's in every iteration.
	for i, v := range rep.Violations {
		want := "v1"
		if i%2 == 1 {
			want = "v2"
		}
		if v.Assertion.Kind != want {
			t.Fatalf("violation %d is %q, want %q (ordering broken)", i, v.Assertion.Kind, want)
		}
	}
	if !strings.Contains(rep.Violations[0].Detail, "returned 1000, predicted 5") {
		t.Errorf("detail: %s", rep.Violations[0].Detail)
	}
}

// TestPartialReportOnInterpreterFailure: a mid-run interpreter failure
// (here: instruction-budget exhaustion) must not erase what the monitors
// already saw. Check returns the partial report alongside the error, so
// recovery consumers can quarantine the violations observed before the
// run died.
func TestPartialReportOnInterpreterFailure(t *testing.T) {
	prog, data := load(t, `
int cfg;
int out;
void main() {
    cfg = 5;
    for (int i = 0; i < 100; i++) {
        out = out + cfg;
    }
    print(out);
}`)
	var cfgLoad *ir.Instr
	prog.Mod.FuncNamed("main").Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpLoad && in.Args[0] == ir.Value(prog.Mod.GlobalNamed("cfg")) {
			cfgLoad = in
		}
	})
	a := core.Assertion{
		Module: spec.NameValuePred, Kind: "value-check",
		Points: []core.Point{{Instr: cfgLoad}},
	}
	// Break the prediction, then rerun under a budget that traps mid-loop:
	// the violations seen before the trap must survive.
	prog.Mod.FuncNamed("main").Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpStore && in.Args[1] == ir.Value(prog.Mod.GlobalNamed("cfg")) {
			in.Args[0] = ir.CI(6)
		}
	})
	rep, err := Check(prog, data, []core.Assertion{a}, interp.Options{MaxSteps: 400})
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("want an instruction-budget error, got %v", err)
	}
	if rep == nil {
		t.Fatal("partial report discarded on interpreter failure")
	}
	if rep.Checks == 0 || !rep.Failed() {
		t.Fatalf("partial report lost the pre-failure observations: checks=%d violations=%d",
			rep.Checks, len(rep.Violations))
	}
	if !strings.Contains(rep.Violations[0].Detail, "returned 6, predicted 5") {
		t.Errorf("detail: %s", rep.Violations[0].Detail)
	}
}
