// Package validate enforces speculative assertions at runtime — the
// validation half of the paper's speculative-transformation decomposition
// (§4.2.1). Where a real compiler would emit the checks of Fig. 7 into
// generated code, this reproduction installs equivalent checks as
// interpreter observers and re-runs the program, reporting every
// misspeculation a client's recovery code would have had to handle.
//
// On the training input every assertion SCAF emits is high-confidence
// (it held throughout profiling), so a validation run over the same input
// must report zero violations — a property the test suite enforces for
// whole benchmark plans.
package validate

import (
	"fmt"

	"scaf/internal/cfg"
	"scaf/internal/core"
	"scaf/internal/interp"
	"scaf/internal/ir"
	"scaf/internal/profile"
	"scaf/internal/spec"
)

// Violation is one detected misspeculation.
type Violation struct {
	Assertion core.Assertion
	Detail    string
}

// Report summarizes a validation run.
type Report struct {
	// Checks counts individual runtime checks executed.
	Checks int64
	// Violations lists every misspeculation (capped at 100 per run).
	Violations []Violation
}

// Failed reports whether any assertion was violated.
func (r *Report) Failed() bool { return len(r.Violations) > 0 }

const maxViolations = 100

// Check re-runs the program with monitors enforcing the given assertions.
// The profile data supplies the predicted values and residue masks the
// checks compare against (exactly what a compiler would bake into the
// validation code).
func Check(prog *cfg.Program, data *profile.Data, asserts []core.Assertion, opts interp.Options) (*Report, error) {
	rep := &Report{}
	tracker := profile.NewTracker(prog)
	mon := &monitor{prog: prog, data: data, rep: rep, tracker: tracker}
	if err := mon.install(asserts); err != nil {
		return nil, err
	}
	tracker.AddIterListener(mon)
	if main := prog.Mod.FuncNamed("main"); main != nil {
		tracker.Begin(main)
	}
	opts.Observers = append([]interp.Observer{tracker, mon}, opts.Observers...)
	if _, err := interp.Run(prog.Mod, opts); err != nil {
		// A mid-run interpreter failure (trap, budget exhaustion) does not
		// erase what the monitors saw up to that point: return the partial
		// report alongside the error so recovery consumers can quarantine
		// the violations already observed.
		return rep, err
	}
	// Close out any still-active short-lived windows at program end.
	return rep, nil
}

// monitor implements every assertion kind's runtime check.
type monitor struct {
	interp.BaseObserver
	prog    *cfg.Program
	data    *profile.Data
	tracker *profile.Tracker
	rep     *Report

	// never-taken edges → their assertion.
	deadEdges map[profile.EdgeKey]*core.Assertion
	// predictable loads → (expected value, assertion).
	valueChecks map[*ir.Instr]valueCheck
	// read-only sites per loop header block.
	roSites map[siteLoopKey]*core.Assertion
	// short-lived sites per loop header block, plus live-object tracking.
	slSites map[siteLoopKey]*core.Assertion
	slLive  map[*interp.Object]slWindow
	// residue masks per pointer-defining instruction.
	residues map[ir.Value]residueCheck
}

type valueCheck struct {
	expect uint64
	a      *core.Assertion
}

type residueCheck struct {
	mask uint16
	a    *core.Assertion
}

type siteLoopKey struct {
	site   profile.Site
	header *ir.Block
}

type slWindow struct {
	a      *core.Assertion
	header *ir.Block
	act    uint64
	iter   int64
}

func (m *monitor) violate(a core.Assertion, format string, args ...interface{}) {
	if len(m.rep.Violations) >= maxViolations {
		return
	}
	m.rep.Violations = append(m.rep.Violations, Violation{
		Assertion: a,
		Detail:    fmt.Sprintf(format, args...),
	})
}

func pointSite(p core.Point) (profile.Site, bool) {
	switch {
	case p.G != nil:
		return profile.Site{G: p.G}, true
	case p.Instr != nil && p.Instr.IsAllocation():
		return profile.Site{In: p.Instr}, true
	}
	return profile.Site{}, false
}

// install registers checks for each assertion, deduplicating by content.
func (m *monitor) install(asserts []core.Assertion) error {
	m.deadEdges = map[profile.EdgeKey]*core.Assertion{}
	m.valueChecks = map[*ir.Instr]valueCheck{}
	m.roSites = map[siteLoopKey]*core.Assertion{}
	m.slSites = map[siteLoopKey]*core.Assertion{}
	m.slLive = map[*interp.Object]slWindow{}
	m.residues = map[ir.Value]residueCheck{}

	for i := range asserts {
		a := &asserts[i]
		switch a.Module {
		case spec.NameControlSpec:
			for _, p := range a.Points {
				if p.Block == nil || p.EdgeTo == nil {
					return fmt.Errorf("validate: malformed control point %s", p)
				}
				m.deadEdges[profile.EdgeKey{From: p.Block, To: p.EdgeTo}] = a
			}
		case spec.NameValuePred:
			for _, p := range a.Points {
				if p.Instr == nil || p.Instr.Op != ir.OpLoad {
					return fmt.Errorf("validate: value check needs a load point, got %s", p)
				}
				v, ok := m.data.Value.Predictable(p.Instr)
				if !ok {
					return fmt.Errorf("validate: no prediction for %s", p)
				}
				m.valueChecks[p.Instr] = valueCheck{expect: v, a: a}
			}
		case spec.NameReadOnly, spec.NameShortLived:
			var site profile.Site
			var header *ir.Block
			okSite := false
			for _, p := range a.Points {
				if s, ok := pointSite(p); ok {
					site, okSite = s, true
				} else if p.Block != nil {
					header = p.Block
				}
			}
			if !okSite || header == nil {
				return fmt.Errorf("validate: %s assertion needs site and loop points", a.Module)
			}
			k := siteLoopKey{site: site, header: header}
			if a.Module == spec.NameReadOnly {
				m.roSites[k] = a
			} else {
				m.slSites[k] = a
			}
		case spec.NameResidue:
			for _, p := range a.Points {
				if p.Instr == nil {
					continue
				}
				mask, ok := m.data.Residue.Mask(p.Instr)
				if !ok {
					return fmt.Errorf("validate: no residue profile for %s", p)
				}
				m.residues[p.Instr] = residueCheck{mask: mask, a: a}
			}
		case spec.NamePointsTo:
			return fmt.Errorf("validate: raw points-to assertions are prohibitive; factored modules must replace them")
		default:
			return fmt.Errorf("validate: unknown assertion module %q", a.Module)
		}
	}
	return nil
}

// activeLoop reports whether a loop with the given header is active, and
// its current activation/iteration.
func (m *monitor) activeLoop(header *ir.Block) (act uint64, iter int64, ok bool) {
	for _, fr := range m.tracker.Frames() {
		for _, e := range fr.Loops() {
			if e.Loop.Header == header {
				return e.Act, e.Iter, true
			}
		}
	}
	return 0, 0, false
}

func (m *monitor) Edge(fn *ir.Func, from, to *ir.Block) {
	if a, dead := m.deadEdges[profile.EdgeKey{From: from, To: to}]; dead {
		m.rep.Checks++
		m.violate(*a, "speculatively dead edge %s->%s taken", from, to)
	}
}

func (m *monitor) checkAccess(in *ir.Instr, addr uint64, o *interp.Object, isStore bool) {
	// Residue checks fire on every access through a guarded pointer.
	if ptr, _, ok := in.PointerOperand(); ok {
		if rc, guarded := m.residues[ptr]; guarded {
			m.rep.Checks++
			if rc.mask&(1<<(addr&15)) == 0 {
				m.violate(*rc.a, "pointer %s observed residue %d outside profiled mask %#x",
					ptr, addr&15, rc.mask)
			}
		}
	}
	if isStore {
		// Read-only heap: while a protecting loop runs, EVERY write pays
		// the heap check (the paper's Fig. 7a mask-and-compare); a write
		// that actually lands in a protected object is a misspeculation.
		site := profile.SiteOf(o)
		for k, a := range m.roSites {
			_, _, active := m.activeLoop(k.header)
			if !active {
				continue
			}
			m.rep.Checks++
			if k.site == site {
				m.violate(*a, "write to read-only object of %s during protected loop", site)
			}
		}
	}
}

func (m *monitor) Load(in *ir.Instr, addr uint64, size int64, val uint64, o *interp.Object) {
	if vc, guarded := m.valueChecks[in]; guarded {
		m.rep.Checks++
		if val != vc.expect {
			m.violate(*vc.a, "load %s returned %d, predicted %d", in, int64(val), int64(vc.expect))
		}
	}
	m.checkAccess(in, addr, o, false)
}

func (m *monitor) Store(in *ir.Instr, addr uint64, size int64, val uint64, o *interp.Object) {
	m.checkAccess(in, addr, o, true)
}

func (m *monitor) Alloc(o *interp.Object) {
	site := profile.SiteOf(o)
	for k, a := range m.slSites {
		if k.site != site {
			continue
		}
		if act, iter, active := m.activeLoop(k.header); active {
			m.slLive[o] = slWindow{a: a, header: k.header, act: act, iter: iter}
		}
	}
}

func (m *monitor) Free(in *ir.Instr, o *interp.Object) {
	delete(m.slLive, o)
}

// IterEnd enforces the short-lived allocated==freed count: one counter
// check per guarded iteration, and any guarded object still live when its
// iteration ends is a misspeculation.
func (m *monitor) IterEnd(e *profile.LoopEntry) {
	for k := range m.slSites {
		if k.header == e.Loop.Header {
			m.rep.Checks++
		}
	}
	for o, w := range m.slLive {
		if w.header != e.Loop.Header || w.act != e.Act {
			continue
		}
		if w.iter <= e.Iter {
			m.violate(*w.a, "object of %s survived iteration %d of its loop",
				profile.SiteOf(o), w.iter)
			delete(m.slLive, o)
		}
	}
}

// LoopExit is part of profile.IterListener.
func (m *monitor) LoopExit(e *profile.LoopEntry) {}
