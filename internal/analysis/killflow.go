package analysis

import (
	"scaf/internal/cfg"
	"scaf/internal/core"
	"scaf/internal/ir"
)

// KillFlow disproves dependences by finding an intervening store that
// fully overwrites the queried footprint on every relevant path (the
// no-kill condition of §2.1). It is a factored module: the "does the
// killing store cover the footprint?" proposition becomes a premise alias
// query with a MustAlias desired result, answerable by any module in the
// ensemble — including speculation modules.
//
// All path feasibility is judged against the dominator tree carried by
// the query: when control speculation substitutes speculative trees,
// blocks that are speculatively dead simply disappear from the path
// searches, which is exactly how the paper's motivating example resolves
// (Fig. 5/6).
type KillFlow struct {
	core.BaseModule
	prog   *cfg.Program
	stores map[*cfg.Loop][]*ir.Instr
	// rs is the module's reusable path-search scratch. Modules are
	// per-orchestrator and evaluated on one goroutine; path searches never
	// nest (premise queries happen after a search concludes), so one
	// scratch per module is safe.
	rs reachScratch
}

// NewKillFlow constructs the module, indexing each loop's stores.
func NewKillFlow(prog *cfg.Program) *KillFlow {
	k := &KillFlow{prog: prog, stores: map[*cfg.Loop][]*ir.Instr{}}
	for _, l := range prog.AllLoops() {
		for _, in := range l.MemOps() {
			if in.Op == ir.OpStore {
				k.stores[l] = append(k.stores[l], in)
			}
		}
	}
	return k
}

func (m *KillFlow) Name() string          { return "kill-flow" }
func (m *KillFlow) Kind() core.ModuleKind { return core.MemoryAnalysis }

// live reports whether b is feasible under the query's control-flow view.
func live(dt *cfg.Tree, b *ir.Block) bool {
	return dt == nil || dt.Reachable(b)
}

// reachScratch holds the reusable state of the path searches below: the
// visited set, the worklist, and the start frontier. One search runs at a
// time per module (searches conclude before any premise query fires), so
// resetting at entry is enough.
type reachScratch struct {
	seen     map[*ir.Block]bool
	queue    []*ir.Block
	frontier []*ir.Block
}

// blockIn reports membership in a (tiny) block list.
func blockIn(bs []*ir.Block, b *ir.Block) bool {
	for _, x := range bs {
		if x == b {
			return true
		}
	}
	return false
}

// reaches performs a path search within loop l (inner-loop cycles allowed,
// re-entering l's header forbidden — that would start a new iteration),
// avoiding block `avoid`, over blocks live under dt. start is a frontier
// of blocks to begin from (already "entered"). The search hits when it
// lands on target (if non-nil) or on any of latches.
func (rs *reachScratch) reaches(l *cfg.Loop, dt *cfg.Tree, start []*ir.Block, avoid, target *ir.Block, latches []*ir.Block) bool {
	if rs.seen == nil {
		rs.seen = make(map[*ir.Block]bool, 32)
	} else {
		clear(rs.seen)
	}
	rs.queue = append(rs.queue[:0], start...)
	for _, b := range rs.queue {
		rs.seen[b] = true
	}
	for len(rs.queue) > 0 {
		b := rs.queue[len(rs.queue)-1]
		rs.queue = rs.queue[:len(rs.queue)-1]
		if b == avoid || !l.Contains(b) || !live(dt, b) {
			continue
		}
		if b == target || blockIn(latches, b) {
			return true
		}
		for _, s := range b.Succs {
			if s == l.Header || rs.seen[s] {
				continue
			}
			rs.seen[s] = true
			rs.queue = append(rs.queue, s)
		}
	}
	return false
}

// succFrontier fills the scratch frontier with i's block successors minus
// the loop header (entering the header would start a new iteration).
func (rs *reachScratch) succFrontier(l *cfg.Loop, i *ir.Instr) []*ir.Block {
	rs.frontier = rs.frontier[:0]
	for _, sc := range i.Blk.Succs {
		if sc != l.Header {
			rs.frontier = append(rs.frontier, sc)
		}
	}
	return rs.frontier
}

// killsDestSide reports whether store s overwrites the footprint read or
// written by i2 on every path from the iteration start (header) to i2.
func (rs *reachScratch) killsDestSide(l *cfg.Loop, dt *cfg.Tree, s, i2 *ir.Instr) bool {
	idxS := cfg.InstrIndex(s)
	if s.Blk == i2.Blk {
		return idxS < cfg.InstrIndex(i2)
	}
	if s.Blk == l.Header {
		// The header is the mandatory first block of every iteration and
		// executes s before control leaves it.
		return i2.Blk != l.Header
	}
	// Does any header→i2 path avoid s's block?
	rs.frontier = append(rs.frontier[:0], l.Header)
	return !rs.reaches(l, dt, rs.frontier, s.Blk, i2.Blk, nil)
}

// killsSourceSide reports whether store s overwrites i1's footprint on
// every intra-iteration path from i1 to the loop's back edges — or whether
// no such path exists at all (the loop cannot continue after i1).
func (rs *reachScratch) killsSourceSide(l *cfg.Loop, dt *cfg.Tree, s, i1 *ir.Instr) bool {
	if s.Blk == i1.Blk && cfg.InstrIndex(s) > cfg.InstrIndex(i1) {
		return true // straight-line rest of the block passes s
	}
	if blockIn(l.Latches, i1.Blk) {
		return false // i1's own block can take the back edge immediately
	}
	// A latch reached while avoiding s means the flow survives into the
	// next iteration. Starting frontier: successors of i1's block (the
	// tail of i1's own block contains no s here).
	return !rs.reaches(l, dt, rs.succFrontier(l, i1), s.Blk, nil, l.Latches)
}

// killsIntra reports whether s lies on every intra-iteration path from i1
// to i2.
func (rs *reachScratch) killsIntra(l *cfg.Loop, dt *cfg.Tree, s, i1, i2 *ir.Instr) bool {
	idxS, idx1, idx2 := cfg.InstrIndex(s), cfg.InstrIndex(i1), cfg.InstrIndex(i2)
	if i1.Blk == i2.Blk && idx1 < idx2 {
		// The straight-line path is always possible; s must sit between.
		return s.Blk == i1.Blk && idxS > idx1 && idxS < idx2
	}
	if s.Blk == i1.Blk && idxS > idx1 {
		return true
	}
	if s.Blk == i2.Blk && idxS < idx2 && i1.Blk != i2.Blk {
		return true
	}
	if s.Blk == i2.Blk && idxS > idx2 {
		// Any path entering i2's block reaches i2 before s: no kill, and
		// the block-avoiding search below must not pretend otherwise.
		return false
	}
	return !rs.reaches(l, dt, rs.succFrontier(l, i1), s.Blk, i2.Blk, nil)
}

// covers asks the ensemble whether store s's footprint fully covers loc
// (same iteration). The desired-result parameter lets base modules bail
// out unless they can produce MustAlias (§3.2.2).
func (m *KillFlow) covers(q *core.ModRefQuery, loc core.MemLoc, s *ir.Instr, h core.Handle) (core.ModRefResponse, bool) {
	sp, ssz, _ := s.PointerOperand()
	pr := h.PremiseAlias(&core.AliasQuery{
		L1: loc, L2: core.MemLoc{Ptr: sp, Size: ssz},
		Rel: core.Same, Loop: q.Loop, Ctx: q.Ctx,
		Desired: core.WantMustAlias,
		DT:      q.DT, PDT: q.PDT,
	})
	covered := false
	switch pr.Result {
	case core.MustAlias:
		covered = loc.Size != core.UnknownSize && loc.Size <= ssz
	case core.SubAlias:
		covered = true // loc fully contained in s's footprint
	}
	if !covered {
		return core.ModRefResponse{}, false
	}
	return core.ModRefResponse{
		Result:   core.NoModRef,
		Options:  pr.Options,
		Contribs: core.MergeContribs([]string{m.Name()}, pr.Contribs),
	}, true
}

func (m *KillFlow) ModRef(q *core.ModRefQuery, h core.Handle) core.ModRefResponse {
	if q.Loop == nil || q.I1 == nil {
		return core.ModRefConservative()
	}
	if !q.Loop.ContainsInstr(q.I1) || (q.I2 != nil && !q.Loop.ContainsInstr(q.I2)) {
		return core.ModRefConservative()
	}
	if q.Rel == core.After {
		// Dependences are queried source-first; After queries are rare and
		// symmetric, skip.
		return core.ModRefConservative()
	}

	fp2, have2 := q.TargetLoc()
	fp1 := core.MemLoc{Size: core.UnknownSize}
	have1 := false
	if p1, s1, ok := q.I1.PointerOperand(); ok {
		fp1 = core.MemLoc{Ptr: p1, Size: s1}
		have1 = true
	}

	for _, s := range m.stores[q.Loop] {
		if s == q.I2 || !live(q.DT, s.Blk) {
			continue
		}
		// Cheap position tests first; the premise query only fires for
		// geometrically plausible kills.
		if q.Rel == core.Before {
			// Note s == I1 is a valid destination-side killer: if the
			// store re-executes every iteration before I2, iteration j's
			// execution kills the value left by iteration i < j.
			if q.I2 != nil && have2 && m.rs.killsDestSide(q.Loop, q.DT, s, q.I2) {
				if r, ok := m.covers(q, fp2, s, h); ok {
					return r
				}
			}
			if s != q.I1 && have1 && m.rs.killsSourceSide(q.Loop, q.DT, s, q.I1) {
				if r, ok := m.covers(q, fp1, s, h); ok {
					return r
				}
			}
		} else if s != q.I1 { // Same
			if q.I2 != nil && have2 && m.rs.killsIntra(q.Loop, q.DT, s, q.I1, q.I2) {
				if r, ok := m.covers(q, fp2, s, h); ok {
					return r
				}
			}
		}
	}

	// No store needed: if no intra-iteration path from I1 ever reaches a
	// latch, I1 ends its activation and cross-iteration dependences out of
	// I1 are impossible.
	if q.Rel == core.Before && !blockIn(q.Loop.Latches, q.I1.Blk) {
		if !m.rs.reaches(q.Loop, q.DT, m.rs.succFrontier(q.Loop, q.I1), nil, nil, q.Loop.Latches) {
			return core.ModRefFact(core.NoModRef, m.Name())
		}
	}
	return core.ModRefConservative()
}
