package analysis

import (
	"sort"

	"scaf/internal/core"
	"scaf/internal/ir"
)

// rootKind classifies a callee's memory roots.
type rootKind int

const (
	rootGlobal rootKind = iota
	rootParam
)

// root is one memory region a function may touch: a global's object, or
// whatever object a parameter points into.
type root struct {
	kind rootKind
	g    *ir.Global
	pidx int
}

// summary is a function's memory effect: the roots it may read and write.
// wild means the effect is unbounded (escaped locals, loaded pointers,
// recursion).
type summary struct {
	reads, writes map[root]bool
	wildRead      bool
	wildWrite     bool
}

func newSummary() *summary {
	return &summary{reads: map[root]bool{}, writes: map[root]bool{}}
}

// CalleeSummary resolves mod-ref queries involving calls by summarizing
// callee effects bottom-up over the call graph and turning each summary
// root into a premise alias query in the caller's scope. Pure callees
// (empty write set) yield free Ref upper bounds — the pure-function
// reasoning of CAF.
type CalleeSummary struct {
	core.BaseModule
	mod       *ir.Module
	summaries map[*ir.Func]*summary
	escaped   map[*ir.Instr]bool
}

// NewCalleeSummary constructs the module and summarizes every function.
func NewCalleeSummary(mod *ir.Module) *CalleeSummary {
	m := &CalleeSummary{
		mod:       mod,
		summaries: map[*ir.Func]*summary{},
		escaped:   map[*ir.Instr]bool{},
	}
	for _, f := range mod.Funcs {
		f.Instrs(func(in *ir.Instr) {
			if in.IsAllocation() {
				m.escaped[in] = escapes(mod, in)
			}
		})
	}
	inProgress := map[*ir.Func]bool{}
	var summarize func(f *ir.Func) *summary
	summarize = func(f *ir.Func) *summary {
		if s, ok := m.summaries[f]; ok {
			return s
		}
		if inProgress[f] {
			s := newSummary()
			s.wildRead, s.wildWrite = true, true // recursion: give up
			return s
		}
		inProgress[f] = true
		defer delete(inProgress, f)
		s := newSummary()
		f.Instrs(func(in *ir.Instr) {
			switch in.Op {
			case ir.OpLoad:
				m.addAccess(s, in.Args[0], false)
			case ir.OpStore:
				m.addAccess(s, in.Args[1], true)
			case ir.OpFree:
				// free touches allocator metadata of its object
				m.addAccess(s, in.Args[0], true)
			case ir.OpCall:
				if in.Callee == nil {
					return // intrinsics are memory-silent
				}
				cs := summarize(in.Callee)
				m.inline(s, cs, in)
			}
		})
		m.summaries[f] = s
		return s
	}
	for _, f := range mod.Funcs {
		m.summaries[f] = summarize(f)
	}
	return m
}

// addAccess folds one direct access into the summary.
func (m *CalleeSummary) addAccess(s *summary, ptr ir.Value, write bool) {
	d := core.Decompose(ptr)
	var r root
	switch b := d.Base.(type) {
	case *ir.Global:
		r = root{kind: rootGlobal, g: b}
	case *ir.Param:
		r = root{kind: rootParam, pidx: b.Idx}
	case *ir.ConstNull:
		return
	case *ir.Instr:
		if b.IsAllocation() && !m.escaped[b] {
			return // non-escaping local object: invisible to callers
		}
		m.setWild(s, write)
		return
	default:
		m.setWild(s, write)
		return
	}
	if write {
		s.writes[r] = true
	} else {
		s.reads[r] = true
	}
}

func (m *CalleeSummary) setWild(s *summary, write bool) {
	if write {
		s.wildWrite = true
	} else {
		s.wildRead = true
	}
}

// inline substitutes a callee summary at a call site during
// summarization: global roots pass through; param roots map to the
// argument's own root.
func (m *CalleeSummary) inline(s, cs *summary, call *ir.Instr) {
	s.wildRead = s.wildRead || cs.wildRead
	s.wildWrite = s.wildWrite || cs.wildWrite
	sub := func(set map[root]bool, write bool) {
		for r := range set {
			if r.kind == rootGlobal {
				if write {
					s.writes[r] = true
				} else {
					s.reads[r] = true
				}
				continue
			}
			m.addAccess(s, call.Args[r.pidx], write)
		}
	}
	sub(cs.reads, false)
	sub(cs.writes, true)
}

func (m *CalleeSummary) Name() string          { return "callee-summary" }
func (m *CalleeSummary) Kind() core.ModuleKind { return core.MemoryAnalysis }

// rootLoc expresses a summary root as a memory location in the caller's
// scope at a given call site.
func rootLoc(r root, call *ir.Instr) core.MemLoc {
	if r.kind == rootGlobal {
		return core.MemLoc{Ptr: r.g, Size: r.g.Elem.Size()}
	}
	return core.MemLoc{Ptr: call.Args[r.pidx], Size: core.UnknownSize}
}

const maxRootPremises = 24

// extendCtx appends a call site to the query's calling context (§3.2.2):
// premises about a callee's roots are scoped to this call site, letting
// context-sensitive modules (the points-to speculation module) separate
// dynamic instances of the callee's static accesses.
func extendCtx(ctx *core.CallCtx, call *ir.Instr) *core.CallCtx {
	var sites []*ir.Instr
	if ctx != nil {
		sites = append(sites, ctx.Sites...)
	}
	return &core.CallCtx{Sites: append(sites, call)}
}

// sortedRoots orders a root set deterministically: globals by name first,
// then params by index. The premise budget makes evaluation order
// user-visible, so it must be stable.
func sortedRoots(set map[root]bool) []root {
	out := make([]root, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		if a.kind == rootGlobal {
			return a.g.GName < b.g.GName
		}
		return a.pidx < b.pidx
	})
	return out
}

// disjointFromRoots asks whether loc is disjoint from every root of set.
// It accumulates the premises' assertion options (all must hold).
func (m *CalleeSummary) disjointFromRoots(
	q *core.ModRefQuery, call *ir.Instr, set map[root]bool, loc core.MemLoc, h core.Handle,
	budget *int, opts *[]core.Option, contribs *[]string,
) bool {
	for _, r := range sortedRoots(set) {
		if *budget <= 0 {
			return false
		}
		*budget--
		pr := h.PremiseAlias(&core.AliasQuery{
			L1: rootLoc(r, call), L2: loc,
			Rel: q.Rel, Loop: q.Loop, Ctx: extendCtx(q.Ctx, call),
			Desired: core.WantNoAlias,
			DT:      q.DT, PDT: q.PDT,
		})
		if pr.Result != core.NoAlias {
			return false
		}
		aff := core.AffordableOptions(pr.Options)
		if len(aff) == 0 {
			return false
		}
		*opts = core.CrossOptions(*opts, aff)
		*contribs = core.MergeContribs(*contribs, pr.Contribs)
	}
	return true
}

func (m *CalleeSummary) ModRef(q *core.ModRefQuery, h core.Handle) core.ModRefResponse {
	call1 := q.I1 != nil && q.I1.Op == ir.OpCall && q.I1.Callee != nil
	call2 := q.I2 != nil && q.I2.Op == ir.OpCall && q.I2.Callee != nil
	if !call1 && !call2 {
		return core.ModRefConservative()
	}
	budget := maxRootPremises
	opts := core.Unconditional()
	var contribs []string

	// Case 1: I1 is a call — does the callee touch the target footprint?
	if call1 && !call2 {
		s := m.summaries[q.I1.Callee]
		loc, haveLoc := q.TargetLoc()
		mayRef, mayMod := true, true
		if !s.wildRead && (len(s.reads) == 0 || (haveLoc && m.disjointFromRoots(q, q.I1, s.reads, loc, h, &budget, &opts, &contribs))) {
			mayRef = false
		}
		if !s.wildWrite && (len(s.writes) == 0 || (haveLoc && m.disjointFromRoots(q, q.I1, s.writes, loc, h, &budget, &opts, &contribs))) {
			mayMod = false
		}
		return m.compose(mayMod, mayRef, opts, contribs)
	}

	// Case 2: I2 is a call — may I1 touch the callee's footprint? The
	// call's footprint is the union of its summary roots.
	if !call1 && call2 {
		s := m.summaries[q.I2.Callee]
		if s.wildRead || s.wildWrite {
			return core.ModRefConservative()
		}
		p1, s1, ok := q.I1.PointerOperand()
		if !ok {
			return core.ModRefConservative()
		}
		loc1 := core.MemLoc{Ptr: p1, Size: s1}
		all := map[root]bool{}
		for r := range s.reads {
			all[r] = true
		}
		for r := range s.writes {
			all[r] = true
		}
		if len(all) == 0 {
			return core.ModRefFact(core.NoModRef, m.Name())
		}
		if m.disjointFromRoots(q, q.I2, all, loc1, h, &budget, &opts, &contribs) {
			return core.ModRefResponse{Result: core.NoModRef, Options: opts,
				Contribs: core.MergeContribs([]string{m.Name()}, contribs)}
		}
		return core.ModRefConservative()
	}

	// Case 3: both calls — pairwise root disjointness.
	s1 := m.summaries[q.I1.Callee]
	s2 := m.summaries[q.I2.Callee]
	if s2.wildRead || s2.wildWrite {
		return core.ModRefConservative()
	}
	all2 := map[root]bool{}
	for r := range s2.reads {
		all2[r] = true
	}
	for r := range s2.writes {
		all2[r] = true
	}
	// Pairwise: every root of I1 vs every root of I2.
	pairDisjoint := func(set1 map[root]bool) bool {
		for _, r1 := range sortedRoots(set1) {
			for _, r2 := range sortedRoots(all2) {
				if budget <= 0 {
					return false
				}
				budget--
				pr := h.PremiseAlias(&core.AliasQuery{
					L1: rootLoc(r1, q.I1), L2: rootLoc(r2, q.I2),
					Rel: q.Rel, Loop: q.Loop, Ctx: q.Ctx,
					Desired: core.WantNoAlias,
					DT:      q.DT, PDT: q.PDT,
				})
				if pr.Result != core.NoAlias {
					return false
				}
				aff := core.AffordableOptions(pr.Options)
				if len(aff) == 0 {
					return false
				}
				opts = core.CrossOptions(opts, aff)
				contribs = core.MergeContribs(contribs, pr.Contribs)
			}
		}
		return true
	}
	mayRef := s1.wildRead || !pairDisjoint(s1.reads)
	mayMod := s1.wildWrite || !pairDisjoint(s1.writes)
	return m.compose(mayMod, mayRef, opts, contribs)
}

func (m *CalleeSummary) compose(mayMod, mayRef bool, opts []core.Option, contribs []string) core.ModRefResponse {
	var res core.ModRefResult
	switch {
	case !mayMod && !mayRef:
		res = core.NoModRef
	case !mayMod:
		res = core.Ref
	case !mayRef:
		res = core.Mod
	default:
		return core.ModRefConservative()
	}
	return core.ModRefResponse{
		Result:   res,
		Options:  opts,
		Contribs: core.MergeContribs([]string{m.Name()}, contribs),
	}
}

// ModRefBridge lifts alias answers to mod-ref answers for plain loads and
// stores: NoAlias footprints give NoModRef; otherwise a load is at most
// Ref and a store at most Mod (results are upper bounds, which is what
// lets the Orchestrator's Mod × Ref join fire).
type ModRefBridge struct{ core.BaseModule }

// NewModRefBridge constructs the module.
func NewModRefBridge() *ModRefBridge { return &ModRefBridge{} }

func (m *ModRefBridge) Name() string          { return "modref-bridge" }
func (m *ModRefBridge) Kind() core.ModuleKind { return core.MemoryAnalysis }

func (m *ModRefBridge) ModRef(q *core.ModRefQuery, h core.Handle) core.ModRefResponse {
	if q.I1 == nil {
		return core.ModRefConservative()
	}
	p1, s1, ok := q.I1.PointerOperand()
	if !ok {
		return core.ModRefConservative()
	}
	upper := core.Ref
	if q.I1.Op == ir.OpStore {
		upper = core.Mod
	}
	loc, haveLoc := q.TargetLoc()
	if !haveLoc {
		return core.ModRefFact(upper, m.Name())
	}
	pr := h.PremiseAlias(&core.AliasQuery{
		L1: core.MemLoc{Ptr: p1, Size: s1}, L2: loc,
		Rel: q.Rel, Loop: q.Loop, Ctx: q.Ctx,
		Desired: core.WantNoAlias,
		DT:      q.DT, PDT: q.PDT,
	})
	if pr.Result == core.NoAlias {
		return core.ModRefResponse{
			Result:   core.NoModRef,
			Options:  pr.Options,
			Contribs: core.MergeContribs([]string{m.Name()}, pr.Contribs),
		}
	}
	return core.ModRefFact(upper, m.Name())
}
