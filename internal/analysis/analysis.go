// Package analysis implements the CAF memory-analysis ensemble the paper
// builds on (§4.1): thirteen independent algorithms, each trying to
// disprove one of the four dependence conditions (alias, update,
// feasible-path, no-kill), collaborating through premise queries.
//
// Crucially, modules take control-flow facts (dominator/post-dominator
// trees) from the query, never from the IR directly, so they transparently
// benefit from speculative control flow without being speculation-aware.
package analysis

import (
	"scaf/internal/cfg"
	"scaf/internal/core"
	"scaf/internal/ir"
)

// DefaultModules returns the full CAF ensemble in recommended evaluation
// order (cheap local reasoning first, factored modules last).
func DefaultModules(prog *cfg.Program) []core.Module {
	return []core.Module{
		NewNullPtr(),
		NewBasicObjects(),
		NewOffsetRanges(),
		NewArrayOfStructs(),
		NewTBAA(),
		NewSCEV(prog),
		NewLoopFresh(),
		NewNoCaptureGlobal(prog.Mod),
		NewNoCaptureSource(prog.Mod),
		NewGlobalMalloc(prog.Mod),
		NewKillFlow(prog),
		NewCalleeSummary(prog.Mod),
		NewModRefBridge(),
	}
}

// GroupCAF is the technique-group name shared by all memory-analysis
// modules: under isolated (confluence) routing they still collaborate with
// each other, crediting CAF as prior work (paper §5, "we treat all the
// memory analysis modules as one component").
const GroupCAF = "caf"

// Groups returns the module→group map for the ensemble.
func Groups(mods []core.Module) map[string]string {
	g := map[string]string{}
	for _, m := range mods {
		if m.Kind() == core.MemoryAnalysis {
			g[m.Name()] = GroupCAF
		}
	}
	return g
}

// definedOutsideLoop reports whether value v names the same dynamic value
// in every iteration of loop l: constants, globals, params, and
// instructions defined outside l.
func definedOutsideLoop(v ir.Value, l *cfg.Loop) bool {
	in, ok := v.(*ir.Instr)
	if !ok {
		return true
	}
	return l == nil || !l.ContainsInstr(in)
}

// sameDynamicBase reports whether, for the query's temporal relation, the
// two occurrences of the SAME base SSA value denote the same dynamic
// pointer: always true intra-iteration; across iterations only when the
// value is loop-invariant (defined outside the loop).
func sameDynamicBase(base ir.Value, rel core.TemporalRelation, l *cfg.Loop) bool {
	if rel == core.Same {
		return true
	}
	return definedOutsideLoop(base, l)
}

// knownSizes reports whether both locations have static extents.
func knownSizes(q *core.AliasQuery) bool {
	return q.L1.Size != core.UnknownSize && q.L2.Size != core.UnknownSize
}

// rangesOverlap reports whether [o1, o1+s1) and [o2, o2+s2) intersect.
func rangesOverlap(o1, s1, o2, s2 int64) bool {
	return o1 < o2+s2 && o2 < o1+s1
}
