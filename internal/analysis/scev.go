package analysis

import (
	"scaf/internal/cfg"
	"scaf/internal/core"
	"scaf/internal/ir"
)

// SCEV performs scalar-evolution reasoning over pointers that are affine
// in a loop's canonical induction variable: addr = base + A·iv + C. It
// resolves both intra-iteration queries (same iv value ⇒ constant
// distance) and cross-iteration queries (distance shifts by the loop's
// address stride each iteration).
type SCEV struct {
	core.BaseModule
	prog *cfg.Program
	ivs  map[*cfg.Loop]map[*ir.Instr]int64 // loop → induction phi → step
}

// NewSCEV constructs the module, pre-computing induction variables.
func NewSCEV(prog *cfg.Program) *SCEV {
	s := &SCEV{prog: prog, ivs: map[*cfg.Loop]map[*ir.Instr]int64{}}
	for _, l := range prog.AllLoops() {
		s.ivs[l] = findIVs(l)
	}
	return s
}

func (m *SCEV) Name() string          { return "scev" }
func (m *SCEV) Kind() core.ModuleKind { return core.MemoryAnalysis }

// findIVs recognizes canonical induction phis in l's header: a phi whose
// in-loop incoming value is phi ± constant.
func findIVs(l *cfg.Loop) map[*ir.Instr]int64 {
	out := map[*ir.Instr]int64{}
	for _, in := range l.Header.Instrs {
		if in.Op != ir.OpPhi {
			break
		}
		if !ir.Equal(in.Ty, ir.Int) {
			continue
		}
		step, ok := int64(0), false
		for i, pred := range l.Header.Preds {
			if !l.Contains(pred) {
				continue // init edge
			}
			// Latch incoming: must be in ± const.
			inc, isInstr := in.Args[i].(*ir.Instr)
			if !isInstr || inc.Op != ir.OpBin {
				ok = false
				break
			}
			var s int64
			switch {
			case inc.Bin == ir.Add && inc.Args[0] == ir.Value(in):
				s, ok = constOf(inc.Args[1])
			case inc.Bin == ir.Add && inc.Args[1] == ir.Value(in):
				s, ok = constOf(inc.Args[0])
			case inc.Bin == ir.Sub && inc.Args[0] == ir.Value(in):
				s, ok = constOf(inc.Args[1])
				s = -s
			default:
				ok = false
			}
			if !ok {
				break
			}
			if step != 0 && s != step {
				ok = false
				break
			}
			step = s
		}
		if ok && step != 0 {
			out[in] = step
		}
	}
	return out
}

func constOf(v ir.Value) (int64, bool) { return ir.ConstIntValue(v) }

// affine is e = A·iv + C + Σ coeff·sym, where each sym is a loop-invariant
// SSA value (e.g. an outer loop's induction variable seen from an inner
// loop). Symbolic terms cancel when two addresses carry identical ones,
// which is what lets grid[y][x] and grid[y][x+1] resolve inside the x
// loop. iv == nil means no recurrence.
type affine struct {
	iv   *ir.Instr
	a, c int64
	syms map[ir.Value]int64
}

const maxSyms = 4

func (a affine) withSym(v ir.Value, coeff int64) (affine, bool) {
	out := a
	out.syms = map[ir.Value]int64{}
	for k, c := range a.syms {
		out.syms[k] = c
	}
	out.syms[v] += coeff
	if out.syms[v] == 0 {
		delete(out.syms, v)
	}
	if len(out.syms) > maxSyms {
		return affine{}, false
	}
	return out, true
}

func (a affine) scale(k int64) affine {
	out := affine{iv: a.iv, a: a.a * k, c: a.c * k}
	if len(a.syms) > 0 {
		out.syms = map[ir.Value]int64{}
		for s, c := range a.syms {
			out.syms[s] = c * k
		}
	}
	return out
}

func sameSyms(x, y map[ir.Value]int64) bool {
	if len(x) != len(y) {
		return false
	}
	for k, c := range x {
		if y[k] != c {
			return false
		}
	}
	return true
}

// affineOf recognizes affine integer expressions over the loop's IVs and
// loop-invariant symbols.
func (m *SCEV) affineOf(v ir.Value, l *cfg.Loop, depth int) (affine, bool) {
	if depth > 8 {
		return affine{}, false
	}
	if c, ok := constOf(v); ok {
		return affine{c: c}, true
	}
	in, isInstr := v.(*ir.Instr)
	if !isInstr {
		// Params and globals are loop-invariant symbols.
		if _, isNull := v.(*ir.ConstNull); isNull {
			return affine{}, false
		}
		return affine{syms: map[ir.Value]int64{v: 1}}, true
	}
	if in.Op == ir.OpPhi {
		if _, isIV := m.ivs[l][in]; isIV {
			return affine{iv: in, a: 1}, true
		}
	}
	if !l.ContainsInstr(in) {
		// Defined outside the query loop: one dynamic value per iteration
		// range of interest — a symbol.
		return affine{syms: map[ir.Value]int64{in: 1}}, true
	}
	if in.Op != ir.OpBin {
		return affine{}, false
	}
	x, okx := m.affineOf(in.Args[0], l, depth+1)
	y, oky := m.affineOf(in.Args[1], l, depth+1)
	if !okx || !oky {
		return affine{}, false
	}
	switch in.Bin {
	case ir.Add:
		return combine(x, y, 1)
	case ir.Sub:
		return combine(x, y, -1)
	case ir.Mul:
		if x.iv == nil && len(x.syms) == 0 {
			return y.scale(x.c), true
		}
		if y.iv == nil && len(y.syms) == 0 {
			return x.scale(y.c), true
		}
	case ir.Shl:
		if y.iv == nil && len(y.syms) == 0 && y.c >= 0 && y.c < 32 {
			return x.scale(1 << uint(y.c)), true
		}
	}
	return affine{}, false
}

func combine(x, y affine, sign int64) (affine, bool) {
	if x.iv != nil && y.iv != nil && x.iv != y.iv {
		return affine{}, false
	}
	out := affine{c: x.c + sign*y.c}
	out.iv = x.iv
	out.a = x.a
	if y.iv != nil {
		out.iv = y.iv
		out.a = x.a + sign*y.a
	}
	if len(x.syms) > 0 || len(y.syms) > 0 {
		out.syms = map[ir.Value]int64{}
		for k, c := range x.syms {
			out.syms[k] = c
		}
		for k, c := range y.syms {
			out.syms[k] += sign * c
			if out.syms[k] == 0 {
				delete(out.syms, k)
			}
		}
		if len(out.syms) > maxSyms {
			return affine{}, false
		}
	}
	return out, true
}

// addr is base + A·iv + C + Σ coeff·sym, in bytes.
type addr struct {
	base ir.Value
	iv   *ir.Instr
	a, c int64
	syms map[ir.Value]int64
}

// addrOf decomposes a pointer into an affine byte address.
func (m *SCEV) addrOf(p ir.Value, l *cfg.Loop) (addr, bool) {
	out := addr{}
	v := p
	for depth := 0; depth < 16; depth++ {
		in, ok := v.(*ir.Instr)
		if !ok {
			break
		}
		switch in.Op {
		case ir.OpField:
			st := ir.Pointee(in.Args[0].Type()).(*ir.StructType)
			out.c += st.Fields[in.FieldIdx].Offset
			v = in.Args[0]
			continue
		case ir.OpCast:
			if in.Cast != ir.Bitcast {
				break
			}
			v = in.Args[0]
			continue
		case ir.OpIndex:
			sz := ir.Pointee(in.Ty).Size()
			af, okA := m.affineOf(in.Args[1], l, 0)
			if !okA {
				return addr{}, false
			}
			af = af.scale(sz)
			out.c += af.c
			if af.iv != nil {
				if out.iv != nil && out.iv != af.iv {
					return addr{}, false
				}
				out.iv = af.iv
				out.a += af.a
			}
			if len(af.syms) > 0 {
				if out.syms == nil {
					out.syms = map[ir.Value]int64{}
				}
				for k, c := range af.syms {
					out.syms[k] += c
					if out.syms[k] == 0 {
						delete(out.syms, k)
					}
				}
				if len(out.syms) > maxSyms {
					return addr{}, false
				}
			}
			v = in.Args[0]
			continue
		}
		break
	}
	out.base = v
	return out, true
}

// crossDisjoint reports whether [c1 - D·k, +s1) and [c2, +s2) are disjoint
// for every iteration distance k ≥ 1.
func crossDisjoint(c1, s1, c2, s2, d int64) bool {
	if d == 0 {
		return !rangesOverlap(c1, s1, c2, s2)
	}
	k0 := (c1 - c2) / d
	for k := k0 - 4; k <= k0+4; k++ {
		if k >= 1 && rangesOverlap(c1-d*k, s1, c2, s2) {
			return false
		}
	}
	for k := int64(1); k <= 4; k++ {
		if rangesOverlap(c1-d*k, s1, c2, s2) {
			return false
		}
	}
	return true
}

func (m *SCEV) Alias(q *core.AliasQuery, h core.Handle) core.AliasResponse {
	if q.Loop == nil || !knownSizes(q) {
		return core.MayAliasResponse()
	}
	if q.Desired == core.WantMustAlias {
		// Desired-result bail-out (§3.2.2): MustAlias here requires a
		// shared base, checkable without the affine recurrence walk.
		if core.Decompose(q.L1.Ptr).Base != core.Decompose(q.L2.Ptr).Base {
			return core.MayAliasResponse()
		}
	}
	a1, ok1 := m.addrOf(q.L1.Ptr, q.Loop)
	a2, ok2 := m.addrOf(q.L2.Ptr, q.Loop)
	if !ok1 || !ok2 || a1.base != a2.base {
		return core.MayAliasResponse()
	}
	if !definedOutsideLoop(a1.base, q.Loop) && q.Rel != core.Same {
		return core.MayAliasResponse()
	}
	// Symbolic parts must be identical to cancel, and every symbol must
	// denote one dynamic value across the compared iterations.
	if !sameSyms(a1.syms, a2.syms) {
		return core.MayAliasResponse()
	}
	if q.Rel != core.Same {
		for sym := range a1.syms {
			if !definedOutsideLoop(sym, q.Loop) {
				return core.MayAliasResponse()
			}
		}
	}
	// Both addresses must evolve with the same IV (or be invariant).
	var iv *ir.Instr
	switch {
	case a1.iv == nil && a2.iv == nil:
		// Handled by offset-ranges; replicate for completeness.
		iv = nil
	case a1.iv != nil && a2.iv != nil && a1.iv == a2.iv:
		iv = a1.iv
	case a1.iv == nil || a2.iv == nil:
		// One strided, one fixed: only same-iteration constant-distance
		// reasoning is unsound (iv unknown); bail.
		return core.MayAliasResponse()
	default:
		return core.MayAliasResponse()
	}

	if q.Rel == core.Same {
		if a1.a != a2.a {
			return core.MayAliasResponse()
		}
		// Same iv value: distance is constant.
		delta := a1.c - a2.c
		switch {
		case !rangesOverlap(a1.c, q.L1.Size, a2.c, q.L2.Size):
			return core.AliasFact(core.NoAlias, m.Name())
		case delta == 0 && q.L1.Size == q.L2.Size:
			return core.AliasFact(core.MustAlias, m.Name())
		case a1.c >= a2.c && a1.c+q.L1.Size <= a2.c+q.L2.Size:
			return core.AliasFact(core.SubAlias, m.Name())
		default:
			return core.AliasFact(core.PartialAlias, m.Name())
		}
	}

	// Cross-iteration: need the iv step.
	if q.Desired == core.WantMustAlias {
		return core.MayAliasResponse()
	}
	if iv == nil {
		if !rangesOverlap(a1.c, q.L1.Size, a2.c, q.L2.Size) {
			return core.AliasFact(core.NoAlias, m.Name())
		}
		return core.MayAliasResponse()
	}
	if a1.a != a2.a {
		return core.MayAliasResponse()
	}
	step := m.ivs[q.Loop][iv]
	d := a1.a * step // address movement per iteration
	disjoint := false
	if q.Rel == core.Before {
		// L1's iteration is earlier: iv1 = iv2 - step·k, k ≥ 1, so L1's
		// address is c1 - d·k relative to L2's frame.
		disjoint = crossDisjoint(a1.c, q.L1.Size, a2.c, q.L2.Size, d)
	} else {
		disjoint = crossDisjoint(a2.c, q.L2.Size, a1.c, q.L1.Size, d)
	}
	if disjoint {
		return core.AliasFact(core.NoAlias, m.Name())
	}
	return core.MayAliasResponse()
}

// LoopFresh disproves cross-iteration aliasing for locations rooted at an
// allocation site that executes inside the query loop: each iteration's
// execution creates a fresh object, so footprints from different
// iterations land in different objects.
type LoopFresh struct{ core.BaseModule }

// NewLoopFresh constructs the module.
func NewLoopFresh() *LoopFresh { return &LoopFresh{} }

func (m *LoopFresh) Name() string          { return "loop-fresh" }
func (m *LoopFresh) Kind() core.ModuleKind { return core.MemoryAnalysis }

func (m *LoopFresh) Alias(q *core.AliasQuery, h core.Handle) core.AliasResponse {
	if q.Loop == nil || q.Rel == core.Same {
		return core.MayAliasResponse()
	}
	d1 := core.Decompose(q.L1.Ptr)
	d2 := core.Decompose(q.L2.Ptr)
	if d1.Base != d2.Base {
		return core.MayAliasResponse()
	}
	in, ok := d1.Base.(*ir.Instr)
	if !ok || !in.IsAllocation() || !q.Loop.ContainsInstr(in) {
		return core.MayAliasResponse()
	}
	// SSA dominance guarantees each iteration's uses see that iteration's
	// allocation; different iterations → different objects.
	return core.AliasFact(core.NoAlias, m.Name())
}
