package analysis

import (
	"testing"

	"scaf/internal/cfg"
	"scaf/internal/core"
	"scaf/internal/ir"
	"scaf/internal/lower"
)

// world compiles an MC program and bundles everything tests need.
type world struct {
	t    *testing.T
	mod  *ir.Module
	prog *cfg.Program
}

func compile(t *testing.T, src string) *world {
	t.Helper()
	mod, err := lower.Compile("test", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return &world{t: t, mod: mod, prog: cfg.NewProgram(mod)}
}

// loadOf returns the unique load whose pointer decomposes to base g.
func (w *world) loadOf(fn, global string) *ir.Instr {
	return w.memOp(fn, global, ir.OpLoad, 0)
}

// storeOf returns the n-th store whose pointer decomposes to global g.
func (w *world) storeOf(fn, global string, n int) *ir.Instr {
	return w.memOp(fn, global, ir.OpStore, n)
}

func (w *world) memOp(fn, global string, op ir.Op, n int) *ir.Instr {
	w.t.Helper()
	g := w.mod.GlobalNamed(global)
	var found *ir.Instr
	i := 0
	w.mod.FuncNamed(fn).Instrs(func(in *ir.Instr) {
		if in.Op != op {
			return
		}
		ptr, _, ok := in.PointerOperand()
		if !ok {
			return
		}
		if core.Decompose(ptr).Base == ir.Value(g) {
			if i == n {
				found = in
			}
			i++
		}
	})
	if found == nil {
		w.t.Fatalf("no %s #%d of @%s in %s:\n%s", op, n, global, fn, ir.FormatFunc(w.mod.FuncNamed(fn)))
	}
	return found
}

func (w *world) onlyLoop(fn string) *cfg.Loop {
	w.t.Helper()
	f := w.mod.FuncNamed(fn)
	all := w.prog.Forests[f].All
	if len(all) != 1 {
		w.t.Fatalf("%s has %d loops", fn, len(all))
	}
	return all[0]
}

func locOf(in *ir.Instr) core.MemLoc {
	p, s, _ := in.PointerOperand()
	return core.MemLoc{Ptr: p, Size: s}
}

func (w *world) aliasQ(i1, i2 *ir.Instr, rel core.TemporalRelation, l *cfg.Loop) *core.AliasQuery {
	q := &core.AliasQuery{L1: locOf(i1), L2: locOf(i2), Rel: rel, Loop: l}
	if l != nil {
		q.DT = w.prog.Dom[l.Fn]
		q.PDT = w.prog.PostDom[l.Fn]
	}
	return q
}

func wantAlias(t *testing.T, m core.Module, q *core.AliasQuery, want core.AliasResult) {
	t.Helper()
	got := m.Alias(q, core.NoHelp{})
	if got.Result != want {
		t.Errorf("%s: alias%v = %s, want %s", m.Name(), []core.MemLoc{q.L1, q.L2}, got.Result, want)
	}
}

func TestNullPtr(t *testing.T) {
	w := compile(t, `
int g;
void main() {
    int* p = 0;
    if (g > 0) { print(*p); }
    g = 1;
}`)
	ld := w.loadOf("main", "g") // the condition load
	m := NewNullPtr()
	// Find the null deref load.
	var nullLoad *ir.Instr
	w.mod.FuncNamed("main").Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpLoad && in != ld {
			nullLoad = in
		}
	})
	if nullLoad == nil {
		t.Fatal("null load not found")
	}
	q := w.aliasQ(nullLoad, w.storeOf("main", "g", 0), core.Same, nil)
	wantAlias(t, m, q, core.NoAlias)
	// The check is trivial, so it answers even under a MustAlias-seeking
	// premise: a cheap definite answer still settles the proposition.
	q.Desired = core.WantMustAlias
	wantAlias(t, m, q, core.NoAlias)
}

func TestBasicObjectsDistinctAllocations(t *testing.T) {
	w := compile(t, `
int ga;
int gb;
void main() {
    int* p = malloc(int, 4);
    int* q = malloc(int, 4);
    p[1] = 1;
    q[1] = 2;
    ga = p[1];
    gb = q[1];
    free(p);
    free(q);
}`)
	m := NewBasicObjects()
	sp := w.memOpByHeapIndex("main", ir.OpStore, 0)
	sq := w.memOpByHeapIndex("main", ir.OpStore, 1)
	wantAlias(t, m, &core.AliasQuery{L1: locOf(sp), L2: locOf(sq), Rel: core.Same}, core.NoAlias)
	// Distinct globals too.
	wantAlias(t, m, w.aliasQ(w.storeOf("main", "ga", 0), w.storeOf("main", "gb", 0), core.Same, nil), core.NoAlias)
	// Same allocation: not this module's business.
	wantAlias(t, m, &core.AliasQuery{L1: locOf(sp), L2: locOf(sp), Rel: core.Same}, core.MayAlias)
}

// memOpByHeapIndex finds the n-th op whose base is any malloc.
func (w *world) memOpByHeapIndex(fn string, op ir.Op, n int) *ir.Instr {
	w.t.Helper()
	var found *ir.Instr
	i := 0
	w.mod.FuncNamed(fn).Instrs(func(in *ir.Instr) {
		if in.Op != op {
			return
		}
		ptr, _, ok := in.PointerOperand()
		if !ok {
			return
		}
		b := core.Decompose(ptr).Base
		if bi, isIn := b.(*ir.Instr); isIn && bi.Op == ir.OpMalloc {
			if i == n {
				found = in
			}
			i++
		}
	})
	if found == nil {
		w.t.Fatalf("heap %s #%d not found in %s", op, n, fn)
	}
	return found
}

func TestOffsetRanges(t *testing.T) {
	w := compile(t, `
struct rec { int a; int b; int c; };
struct rec r;
void main() {
    r.a = 1;
    r.b = 2;
    int x = r.a;
    print(x);
}`)
	m := NewOffsetRanges()
	sa := w.storeOf("main", "r", 0)
	sb := w.storeOf("main", "r", 1)
	la := w.loadOf("main", "r")
	wantAlias(t, m, w.aliasQ(sa, sb, core.Same, nil), core.NoAlias)
	wantAlias(t, m, w.aliasQ(sa, la, core.Same, nil), core.MustAlias)
}

func TestOffsetRangesSubAndPartial(t *testing.T) {
	// Construct Sub/Partial directly in IR: MC has only 8-byte accesses.
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.Void)
	b := f.NewBlock("entry")
	base := b.Malloc(ir.Int, ir.CI(32), "p")
	b.Ret()
	mod := NewOffsetRanges()
	q := &core.AliasQuery{
		L1:  core.MemLoc{Ptr: base, Size: 8},
		L2:  core.MemLoc{Ptr: base, Size: 24},
		Rel: core.Same,
	}
	if r := mod.Alias(q, core.NoHelp{}); r.Result != core.SubAlias {
		t.Errorf("sub: got %s", r.Result)
	}
	idx := b.IndexPtr(base, ir.CI(1))
	q = &core.AliasQuery{
		L1:  core.MemLoc{Ptr: idx, Size: 16},
		L2:  core.MemLoc{Ptr: base, Size: 16},
		Rel: core.Same,
	}
	if r := mod.Alias(q, core.NoHelp{}); r.Result != core.PartialAlias {
		t.Errorf("partial: got %s", r.Result)
	}
}

func TestOffsetRangesCrossIterationInvariance(t *testing.T) {
	w := compile(t, `
struct rec { int a; int b; };
void main() {
    for (int i = 0; i < 100; i++) {
        struct rec* p = malloc(struct rec, 1);
        p->a = i;
        p->b = i;
        free(p);
    }
}`)
	m := NewOffsetRanges()
	l := w.onlyLoop("main")
	sa := w.memOpByHeapIndex("main", ir.OpStore, 0)
	sb := w.memOpByHeapIndex("main", ir.OpStore, 1)
	// Same iteration: same dynamic base, disjoint fields.
	wantAlias(t, m, w.aliasQ(sa, sb, core.Same, l), core.NoAlias)
	// Across iterations the base is re-defined: no conclusion here.
	wantAlias(t, m, w.aliasQ(sa, sb, core.Before, l), core.MayAlias)
}

func TestArrayOfStructs(t *testing.T) {
	w := compile(t, `
struct pt { int x; int y; };
struct pt pts[64];
int g;
void main() {
    for (int i = 0; i < 64; i++) {
        pts[i].x = i;
        pts[g].y = i;
    }
}`)
	m := NewArrayOfStructs()
	l := w.onlyLoop("main")
	sx := w.storeOf("main", "pts", 0)
	sy := w.storeOf("main", "pts", 1)
	// Different fields at unknown, different indices: never overlap.
	wantAlias(t, m, w.aliasQ(sx, sy, core.Same, l), core.NoAlias)
	wantAlias(t, m, w.aliasQ(sx, sy, core.Before, l), core.NoAlias)
	// Same field: may collide.
	wantAlias(t, m, w.aliasQ(sx, sx, core.Before, l), core.MayAlias)
}

func TestTBAA(t *testing.T) {
	w := compile(t, `
int gi;
float gf;
int* gp;
void main() {
    gi = 1;
    gf = 2.0;
    gp = 0;
}`)
	m := NewTBAA()
	si := w.storeOf("main", "gi", 0)
	sf := w.storeOf("main", "gf", 0)
	sp := w.storeOf("main", "gp", 0)
	wantAlias(t, m, w.aliasQ(si, sf, core.Same, nil), core.NoAlias)
	wantAlias(t, m, w.aliasQ(si, sp, core.Same, nil), core.NoAlias)
	// Two pointer-typed slots share one TBAA class (decay conservatism).
	w2 := compile(t, `
int* pa;
float* pb;
void main() { pa = 0; pb = 0; }`)
	wantAlias(t, m, w2.aliasQ(w2.storeOf("main", "pa", 0), w2.storeOf("main", "pb", 0), core.Same, nil), core.MayAlias)
}

func TestSCEV(t *testing.T) {
	w := compile(t, `
int a[128];
void main() {
    for (int i = 0; i < 100; i++) {
        a[i] = 1;          // s0
        a[i + 1] = 2;      // s1
        a[i * 2] = 3;      // s2
        int x = a[i];      // l0
        print(x);
    }
}`)
	l := w.onlyLoop("main")
	m := NewSCEV(w.prog)
	s0 := w.storeOf("main", "a", 0)
	s1 := w.storeOf("main", "a", 1)
	s2 := w.storeOf("main", "a", 2)
	l0 := w.loadOf("main", "a")

	// Same iteration: constant distance.
	wantAlias(t, m, w.aliasQ(s0, s1, core.Same, l), core.NoAlias)
	wantAlias(t, m, w.aliasQ(s0, l0, core.Same, l), core.MustAlias)
	// Cross-iteration, same subscript: the stride moves the window away.
	wantAlias(t, m, w.aliasQ(s0, s0, core.Before, l), core.NoAlias)
	// Cross-iteration a[i] (earlier) vs a[i+1] (later): earlier i smaller,
	// a[i_early] vs a[i_late + 1] never collide... distance grows; but
	// a[i+1] earlier vs a[i] later DO collide at distance 1.
	wantAlias(t, m, w.aliasQ(s1, s0, core.Before, l), core.MayAlias)
	// Different coefficients: no conclusion.
	wantAlias(t, m, w.aliasQ(s0, s2, core.Same, l), core.MayAlias)
}

func TestSCEVCrossDisjointMath(t *testing.T) {
	// crossDisjoint(c1,s1,c2,s2,d): windows [c1-d*k, s1) vs [c2, s2), k≥1.
	cases := []struct {
		c1, s1, c2, s2, d int64
		want              bool
	}{
		{0, 8, 0, 8, 8, true},    // k≥1 always lands a full stride away
		{0, 8, -8, 8, 8, false},  // k=1: [-8,0) vs [-8,0) overlap
		{0, 8, 0, 8, 16, true},   // k=1: [-16,-8) vs [0,8): disjoint for all k
		{8, 8, 0, 8, 8, false},   // k=1: [0,8) vs [0,8)
		{0, 8, 0, 8, 0, false},   // d=0: same window forever
		{0, 8, 8, 8, 0, true},    // d=0 but disjoint constants
		{0, 8, -80, 8, 8, false}, // collides at k=10
		{0, 8, -24, 8, 16, true}, // lands between slots forever
	}
	for i, c := range cases {
		if got := crossDisjoint(c.c1, c.s1, c.c2, c.s2, c.d); got != c.want {
			t.Errorf("case %d: crossDisjoint(%v) = %v, want %v", i, c, got, c.want)
		}
	}
}

func TestLoopFresh(t *testing.T) {
	w := compile(t, `
void main() {
    for (int i = 0; i < 100; i++) {
        int* p = malloc(int, 2);
        p[0] = i;
        int x = p[0];
        print(x);
        free(p);
    }
}`)
	l := w.onlyLoop("main")
	m := NewLoopFresh()
	st := w.memOpByHeapIndex("main", ir.OpStore, 0)
	ld := w.memOpByHeapIndex("main", ir.OpLoad, 0)
	wantAlias(t, m, w.aliasQ(st, ld, core.Before, l), core.NoAlias)
	wantAlias(t, m, w.aliasQ(st, ld, core.Same, l), core.MayAlias)
}

func TestNoCaptureGlobal(t *testing.T) {
	w := compile(t, `
int hidden;
int leaked;
int* sink;
void main() {
    sink = &leaked;
    int* p = sink;
    *p = 9;
    hidden = 1;
    leaked = 2;
    print(hidden);
}`)
	m := NewNoCaptureGlobal(w.mod)
	// The store through p cannot touch `hidden` (never captured) but may
	// touch `leaked` (its address escaped into sink).
	var indirect *ir.Instr
	w.mod.FuncNamed("main").Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpStore {
			if _, isG := in.Args[1].(*ir.Global); !isG {
				indirect = in
			}
		}
	})
	if indirect == nil {
		t.Fatal("indirect store not found")
	}
	sh := w.storeOf("main", "hidden", 0)
	sl := w.storeOf("main", "leaked", 0)
	wantAlias(t, m, &core.AliasQuery{L1: locOf(indirect), L2: locOf(sh), Rel: core.Same}, core.NoAlias)
	wantAlias(t, m, &core.AliasQuery{L1: locOf(indirect), L2: locOf(sl), Rel: core.Same}, core.MayAlias)
}

func TestNoCaptureSource(t *testing.T) {
	w := compile(t, `
int* keeper;
int out;
void main() {
    int* local = malloc(int, 2);    // never escapes
    int* shared = malloc(int, 2);   // stored into a global
    keeper = shared;
    local[0] = 1;
    int* p = keeper;
    p[0] = 5;
    out = local[0];
    free(local);
}`)
	m := NewNoCaptureSource(w.mod)
	var localStore, indirectStore *ir.Instr
	w.mod.FuncNamed("main").Instrs(func(in *ir.Instr) {
		if in.Op != ir.OpStore || !ir.Equal(in.Args[0].Type(), ir.Int) {
			return
		}
		base := core.Decompose(in.Args[1]).Base
		if bi, ok := base.(*ir.Instr); ok {
			if bi.Op == ir.OpMalloc {
				localStore = in
			} else if bi.Op == ir.OpLoad {
				indirectStore = in
			}
		}
	})
	if localStore == nil || indirectStore == nil {
		t.Fatalf("stores not found:\n%s", ir.FormatFunc(w.mod.FuncNamed("main")))
	}
	wantAlias(t, m, &core.AliasQuery{L1: locOf(localStore), L2: locOf(indirectStore), Rel: core.Same}, core.NoAlias)
}

func TestGlobalMalloc(t *testing.T) {
	w := compile(t, `
int* bufA;
int* bufB;
int direct[8];
void main() {
    bufA = malloc(int, 16);
    bufB = malloc(int, 16);
    int* pa = bufA;
    int* pb = bufB;
    pa[3] = 1;
    pb[3] = 2;
    direct[0] = 3;
}`)
	m := NewGlobalMalloc(w.mod)
	var sa, sb *ir.Instr
	w.mod.FuncNamed("main").Instrs(func(in *ir.Instr) {
		if in.Op != ir.OpStore || !ir.Equal(in.Args[0].Type(), ir.Int) {
			return
		}
		base := core.Decompose(in.Args[1]).Base
		ld, ok := base.(*ir.Instr)
		if !ok || ld.Op != ir.OpLoad {
			return
		}
		if ld.Args[0] == ir.Value(w.mod.GlobalNamed("bufA")) {
			sa = in
		}
		if ld.Args[0] == ir.Value(w.mod.GlobalNamed("bufB")) {
			sb = in
		}
	})
	if sa == nil || sb == nil {
		t.Fatal("indirect stores not found")
	}
	// Pointers loaded from different single-site globals are disjoint.
	r := m.Alias(&core.AliasQuery{L1: locOf(sa), L2: locOf(sb), Rel: core.Same}, core.NoHelp{})
	if r.Result != core.NoAlias {
		t.Errorf("bufA vs bufB: %s, want NoAlias", r.Result)
	}
	// And disjoint from a different allocation site (the global array).
	sd := w.storeOf("main", "direct", 0)
	r = m.Alias(&core.AliasQuery{L1: locOf(sa), L2: locOf(sd), Rel: core.Same}, core.NoHelp{})
	if r.Result != core.NoAlias {
		t.Errorf("bufA vs direct: %s, want NoAlias", r.Result)
	}
	// Containment against the site representative: SubAlias.
	var mallocA *ir.Instr
	w.mod.FuncNamed("main").Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpMalloc && mallocA == nil {
			mallocA = in
		}
	})
	r = m.Alias(&core.AliasQuery{
		L1:  locOf(sa),
		L2:  core.MemLoc{Ptr: mallocA, Size: core.UnknownSize},
		Rel: core.Same,
	}, core.NoHelp{})
	if r.Result != core.SubAlias {
		t.Errorf("containment: %s, want SubAlias", r.Result)
	}
}

func TestGlobalMallocBlockedByUnknownStore(t *testing.T) {
	w := compile(t, `
int* bufA;
int* bufB;
void main() {
    bufA = malloc(int, 16);
    bufB = bufA;          // stores a LOADED pointer: unknown provenance
    int* pa = bufA;
    int* pb = bufB;
    pa[0] = 1;
    pb[0] = 2;
}`)
	m := NewGlobalMalloc(w.mod)
	var sa, sb *ir.Instr
	w.mod.FuncNamed("main").Instrs(func(in *ir.Instr) {
		if in.Op != ir.OpStore || !ir.Equal(in.Args[0].Type(), ir.Int) {
			return
		}
		if sa == nil {
			sa = in
		} else {
			sb = in
		}
	})
	r := m.Alias(&core.AliasQuery{L1: locOf(sa), L2: locOf(sb), Rel: core.Same}, core.NoHelp{})
	if r.Result != core.MayAlias {
		t.Errorf("unknown store must block the property, got %s", r.Result)
	}
}

// miniOrch builds an orchestrator over the full CAF ensemble.
func (w *world) miniOrch() *core.Orchestrator {
	mods := DefaultModules(w.prog)
	return core.NewOrchestrator(core.Config{Modules: mods, Groups: Groups(mods)})
}

func TestKillFlowIntraIteration(t *testing.T) {
	w := compile(t, `
int buf;
int out;
void main() {
    for (int i = 0; i < 100; i++) {
        buf = i;          // i1: source
        buf = i + 1;      // S: kills on every path
        out = out + buf;  // i2: load
    }
    print(out);
}`)
	l := w.onlyLoop("main")
	o := w.miniOrch()
	i1 := w.storeOf("main", "buf", 0)
	i2 := w.loadOf("main", "buf")
	r := o.ModRef(&core.ModRefQuery{
		I1: i1, I2: i2, Rel: core.Same, Loop: l,
		DT: w.prog.Dom[l.Fn], PDT: w.prog.PostDom[l.Fn],
	})
	if r.Result != core.NoModRef {
		t.Errorf("intra-iteration kill failed: %s via %v", r.Result, r.Contribs)
	}
}

func TestKillFlowCrossIterationSelfKill(t *testing.T) {
	w := compile(t, `
int buf;
int out;
void main() {
    for (int i = 0; i < 100; i++) {
        buf = i;          // re-executes every iteration before the load
        out = out + buf;
    }
    print(out);
}`)
	l := w.onlyLoop("main")
	o := w.miniOrch()
	st := w.storeOf("main", "buf", 0)
	ld := w.loadOf("main", "buf")
	r := o.ModRef(&core.ModRefQuery{
		I1: st, I2: ld, Rel: core.Before, Loop: l,
		DT: w.prog.Dom[l.Fn], PDT: w.prog.PostDom[l.Fn],
	})
	if r.Result != core.NoModRef {
		t.Errorf("self-kill across iterations failed: %s", r.Result)
	}
}

func TestKillFlowRespectsBypass(t *testing.T) {
	w := compile(t, `
int buf;
int out;
int cond;
void main() {
    for (int i = 0; i < 100; i++) {
        if (cond > 0) {
            buf = i;      // conditional kill: a bypass path exists
        }
        out = out + buf;  // load
        buf = i * 3;      // trailing store: cross-iter source
    }
    print(out);
}`)
	l := w.onlyLoop("main")
	o := w.miniOrch()
	tail := w.storeOf("main", "buf", 1)
	ld := w.loadOf("main", "buf")
	r := o.ModRef(&core.ModRefQuery{
		I1: tail, I2: ld, Rel: core.Before, Loop: l,
		DT: w.prog.Dom[l.Fn], PDT: w.prog.PostDom[l.Fn],
	})
	if r.Result == core.NoModRef {
		t.Error("kill-flow must respect the static bypass path")
	}
}

func TestKillFlowSourceSideKill(t *testing.T) {
	w := compile(t, `
int buf;
int out;
void main() {
    for (int i = 0; i < 100; i++) {
        out = out + buf;  // i2: load at iteration start
        buf = i;          // i1: source...
        buf = i + 1;      // ...overwritten before the iteration ends
    }
    print(out);
}`)
	l := w.onlyLoop("main")
	o := w.miniOrch()
	i1 := w.storeOf("main", "buf", 0)
	ld := w.loadOf("main", "buf")
	r := o.ModRef(&core.ModRefQuery{
		I1: i1, I2: ld, Rel: core.Before, Loop: l,
		DT: w.prog.Dom[l.Fn], PDT: w.prog.PostDom[l.Fn],
	})
	if r.Result != core.NoModRef {
		t.Errorf("source-side kill failed: %s", r.Result)
	}
}

func TestCalleeSummaryPureAndEffects(t *testing.T) {
	w := compile(t, `
int acc;
int other;
int pure(int x) { return x * 2; }
void bump() { acc = acc + 1; }
void writeTo(int* p) { *p = 7; }
void main() {
    int v = pure(3);
    bump();
    int arr[4];
    writeTo(arr);
    other = v + arr[0];
}`)
	m := NewCalleeSummary(w.mod)
	var calls []*ir.Instr
	w.mod.FuncNamed("main").Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpCall && in.Callee != nil {
			calls = append(calls, in)
		}
	})
	if len(calls) != 3 {
		t.Fatalf("calls = %d", len(calls))
	}
	pureCall, bumpCall, writeCall := calls[0], calls[1], calls[2]
	so := w.storeOf("main", "other", 0)

	// A pure callee never touches memory.
	r := m.ModRef(&core.ModRefQuery{I1: pureCall, I2: so, Rel: core.Same}, core.NoHelp{})
	if r.Result != core.NoModRef {
		t.Errorf("pure call: %s", r.Result)
	}
	// bump writes only @acc: against @other's footprint it needs the
	// premise, which the full ensemble resolves (distinct globals).
	o := w.miniOrch()
	r = o.ModRef(&core.ModRefQuery{I1: bumpCall, I2: so, Rel: core.Same})
	if r.Result != core.NoModRef {
		t.Errorf("bump vs other: %s via %v", r.Result, r.Contribs)
	}
	// writeTo writes through its param (the local array): against @other
	// the ensemble separates the alloca from the global.
	r = o.ModRef(&core.ModRefQuery{I1: writeCall, I2: so, Rel: core.Same})
	if r.Result != core.NoModRef {
		t.Errorf("writeTo(arr) vs other: %s via %v", r.Result, r.Contribs)
	}
	// But against the array itself the write must remain visible.
	var arrLoad *ir.Instr
	w.mod.FuncNamed("main").Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpLoad {
			if b, ok := core.Decompose(in.Args[0]).Base.(*ir.Instr); ok && b.Op == ir.OpAlloca {
				arrLoad = in
			}
		}
	})
	r = o.ModRef(&core.ModRefQuery{I1: writeCall, I2: arrLoad, Rel: core.Same})
	if r.Result == core.NoModRef || r.Result == core.Ref {
		t.Errorf("writeTo(arr) vs arr load must keep Mod, got %s", r.Result)
	}
}

func TestCalleeSummaryRecursionConservative(t *testing.T) {
	w := compile(t, `
int g;
int f(int n) {
    if (n <= 0) { return 0; }
    g = g + n;
    return f(n - 1);
}
void main() { print(f(3)); }`)
	m := NewCalleeSummary(w.mod)
	s := m.summaries[w.mod.FuncNamed("f")]
	if !s.wildWrite || !s.wildRead {
		t.Error("recursive function must summarize as wild")
	}
}

func TestModRefBridge(t *testing.T) {
	w := compile(t, `
int a;
int b;
void main() {
    a = 1;
    b = a;
}`)
	o := w.miniOrch()
	sa := w.storeOf("main", "a", 0)
	sb := w.storeOf("main", "b", 0)
	la := w.loadOf("main", "a")

	// Disjoint globals: NoModRef end to end.
	r := o.ModRef(&core.ModRefQuery{I1: sa, I2: sb, Rel: core.Same})
	if r.Result != core.NoModRef {
		t.Errorf("store a vs store b: %s", r.Result)
	}
	// Same location, load vs store: the load is at most Ref.
	r = o.ModRef(&core.ModRefQuery{I1: la, I2: sa, Rel: core.Same})
	if r.Result != core.Ref {
		t.Errorf("load a vs store a: %s, want Ref", r.Result)
	}
	// Store into its own footprint: at most Mod.
	r = o.ModRef(&core.ModRefQuery{I1: sa, I2: la, Rel: core.Same})
	if r.Result != core.Mod {
		t.Errorf("store a vs load a: %s, want Mod", r.Result)
	}
}

func TestEscapeAnalysis(t *testing.T) {
	w := compile(t, `
int plain;
int addressed;
int* holder;
int passed;
int use(int* p) { return *p; }
void main() {
    holder = &addressed;
    print(use(&passed));
    plain = 1;
    print(plain);
}`)
	if escapes(w.mod, w.mod.GlobalNamed("plain")) {
		t.Error("plain must not escape")
	}
	if !escapes(w.mod, w.mod.GlobalNamed("addressed")) {
		t.Error("addressed escapes via holder")
	}
	if !escapes(w.mod, w.mod.GlobalNamed("passed")) {
		t.Error("passed escapes via the call")
	}
}

func TestSCEVSymbolicCancellation(t *testing.T) {
	w := compile(t, `
float grid[64][64];
void main() {
    for (int y = 1; y < 63; y++) {
        for (int x = 1; x < 63; x++) {
            grid[y][x] = grid[y][x - 1] + grid[y][x + 1];
        }
    }
}`)
	main := w.mod.FuncNamed("main")
	var inner *cfg.Loop
	for _, l := range w.prog.Forests[main].All {
		if l.Depth == 2 {
			inner = l
		}
	}
	if inner == nil {
		t.Fatal("no inner loop")
	}
	m := NewSCEV(w.prog)
	st := w.storeOf("main", "grid", 0)
	ldL := w.loadOf("main", "grid")              // grid[y][x-1]
	ldR := w.memOp("main", "grid", ir.OpLoad, 1) // grid[y][x+1]

	// Same iteration of the x loop: the y·512 term cancels, leaving ±8.
	wantAlias(t, m, w.aliasQ(st, ldL, core.Same, inner), core.NoAlias)
	wantAlias(t, m, w.aliasQ(st, ldR, core.Same, inner), core.NoAlias)
	// Cross-iteration: grid[y][x] (iter i) vs grid[y][x-1] (iter j>i)
	// collide at distance 1 — must stay MayAlias.
	wantAlias(t, m, w.aliasQ(st, ldL, core.Before, inner), core.MayAlias)
	// grid[y][x] earlier vs grid[y][x+1] later: the reader moves away
	// ahead of the writer; distance grows, never collides.
	wantAlias(t, m, w.aliasQ(st, ldR, core.Before, inner), core.NoAlias)
}

func TestSCEVSymbolicRequiresSameSymbols(t *testing.T) {
	w := compile(t, `
int a[256];
int p;
int q;
void main() {
    for (int i = 0; i < 50; i++) {
        a[p + i] = 1;    // symbol p
        a[q + i] = 2;    // symbol q: never comparable with p
    }
}`)
	l := w.onlyLoop("main")
	m := NewSCEV(w.prog)
	s1 := w.storeOf("main", "a", 0)
	s2 := w.storeOf("main", "a", 1)
	wantAlias(t, m, w.aliasQ(s1, s2, core.Same, l), core.MayAlias)
	// An identical SSA pointer is trivially MustAlias within an iteration;
	// that rule lives in offset-ranges (SCEV stays conservative because
	// the in-loop load of p is not provably invariant).
	wantAlias(t, m, w.aliasQ(s1, s1, core.Same, l), core.MayAlias)
	wantAlias(t, NewOffsetRanges(), w.aliasQ(s1, s1, core.Same, l), core.MustAlias)
}
