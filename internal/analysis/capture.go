package analysis

import (
	"scaf/internal/cfg"
	"scaf/internal/core"
	"scaf/internal/ir"
)

// escapes computes whether the address rooted at root (a global or an
// allocation instruction) is captured: stored as a value, passed to a
// call, or returned. Pointers derived by Index/Field/Bitcast/Phi are
// tracked; plain loads/stores through derived pointers do not capture.
func escapes(mod *ir.Module, root ir.Value) bool {
	derived := map[ir.Value]bool{root: true}
	captured := false
	for changed := true; changed && !captured; {
		changed = false
		for _, f := range mod.Funcs {
			f.Instrs(func(in *ir.Instr) {
				if captured {
					return
				}
				touches := false
				for _, a := range in.Args {
					if derived[a] {
						touches = true
						break
					}
				}
				if !touches {
					return
				}
				switch in.Op {
				case ir.OpIndex, ir.OpField, ir.OpCast, ir.OpPhi:
					if !derived[in] {
						derived[in] = true
						changed = true
					}
				case ir.OpLoad:
					// reading through the pointer: fine
				case ir.OpStore:
					if derived[in.Args[0]] {
						captured = true // address stored into memory
					}
				case ir.OpFree:
					// freeing does not publish the address
				case ir.OpCmp, ir.OpBin:
					// comparisons/arithmetic on addresses do not publish
					// them as access paths (no pointer is materialized:
					// MC cannot cast integers back to pointers)
				case ir.OpCall, ir.OpRet:
					captured = true
				default:
					captured = true
				}
			})
		}
	}
	return captured
}

// indirectBase reports whether a pointer base is of indirect provenance:
// loaded from memory, received as a parameter, or returned by a call.
// Such pointers can only hold captured addresses.
func indirectBase(v ir.Value) bool {
	switch x := v.(type) {
	case *ir.Param:
		return true
	case *ir.Instr:
		return x.Op == ir.OpLoad || (x.Op == ir.OpCall && x.Callee != nil)
	}
	return false
}

// NoCaptureGlobal disproves aliasing between a never-captured global and
// any pointer of indirect provenance: if the global's address is never
// stored, passed, or returned, no loaded/parameter/returned pointer can
// point into it (one of CAF's reachability algorithms, §4.2.4).
type NoCaptureGlobal struct {
	core.BaseModule
	nonCaptured map[*ir.Global]bool
}

// NewNoCaptureGlobal constructs the module, classifying every global.
func NewNoCaptureGlobal(mod *ir.Module) *NoCaptureGlobal {
	m := &NoCaptureGlobal{nonCaptured: map[*ir.Global]bool{}}
	for _, g := range mod.Globals {
		m.nonCaptured[g] = !escapes(mod, g)
	}
	return m
}

func (m *NoCaptureGlobal) Name() string          { return "no-capture-global" }
func (m *NoCaptureGlobal) Kind() core.ModuleKind { return core.MemoryAnalysis }

// disjointFromIndirect checks one direction: L1 rooted at a non-captured
// object, L2 of entirely indirect provenance.
func disjointFromIndirect(isProtected func(ir.Value) bool, p1, p2 ir.Value) bool {
	d1 := core.Decompose(p1)
	if !isProtected(d1.Base) {
		return false
	}
	bases, complete := core.UnderlyingBases(p2, phiWalkLimit)
	if !complete || len(bases) == 0 {
		return false
	}
	for _, b := range bases {
		if b == d1.Base {
			return false
		}
		// Indirect provenance or a *different* allocation object both
		// exclude pointing into the protected object.
		if !indirectBase(b) && !core.IsAllocationBase(b) {
			return false
		}
	}
	return true
}

func (m *NoCaptureGlobal) Alias(q *core.AliasQuery, h core.Handle) core.AliasResponse {
	prot := func(v ir.Value) bool {
		g, ok := v.(*ir.Global)
		return ok && m.nonCaptured[g]
	}
	if disjointFromIndirect(prot, q.L1.Ptr, q.L2.Ptr) ||
		disjointFromIndirect(prot, q.L2.Ptr, q.L1.Ptr) {
		return core.AliasFact(core.NoAlias, m.Name())
	}
	return core.MayAliasResponse()
}

// NoCaptureSource is the allocation-site analogue of NoCaptureGlobal: a
// malloc/alloca whose result never escapes cannot be the target of any
// indirect pointer.
type NoCaptureSource struct {
	core.BaseModule
	nonCaptured map[*ir.Instr]bool
}

// NewNoCaptureSource constructs the module, classifying every allocation
// site in the module.
func NewNoCaptureSource(mod *ir.Module) *NoCaptureSource {
	m := &NoCaptureSource{nonCaptured: map[*ir.Instr]bool{}}
	for _, f := range mod.Funcs {
		f.Instrs(func(in *ir.Instr) {
			if in.IsAllocation() {
				m.nonCaptured[in] = !escapes(mod, in)
			}
		})
	}
	return m
}

func (m *NoCaptureSource) Name() string          { return "no-capture-src" }
func (m *NoCaptureSource) Kind() core.ModuleKind { return core.MemoryAnalysis }

func (m *NoCaptureSource) Alias(q *core.AliasQuery, h core.Handle) core.AliasResponse {
	prot := func(v ir.Value) bool {
		in, ok := v.(*ir.Instr)
		return ok && m.nonCaptured[in]
	}
	if disjointFromIndirect(prot, q.L1.Ptr, q.L2.Ptr) ||
		disjointFromIndirect(prot, q.L2.Ptr, q.L1.Ptr) {
		return core.AliasFact(core.NoAlias, m.Name())
	}
	return core.MayAliasResponse()
}

// GlobalMalloc reasons about which object addresses a pointer-typed
// global can hold: when every store into a non-captured global deposits
// either null or a pointer from a known set of malloc sites, a pointer
// loaded from that global can only address objects of those sites.
//
// It is factored: stores of unknown values are not fatal — the module
// asks the ensemble (via a premise mod-ref query) whether the offending
// store can be discounted; control speculation answers for speculatively
// dead stores (paper §4.2.4).
type GlobalMalloc struct {
	core.BaseModule
	mod    *ir.Module
	stores map[*ir.Global][]*ir.Instr // direct stores into each global
	capt   map[*ir.Global]bool
	cache  map[globalMallocKey]*gmResult
}

type globalMallocKey struct {
	g  *ir.Global
	dt *cfg.Tree // identity of the control-flow view the answer assumed
}

func (m *GlobalMalloc) Name() string          { return "global-malloc" }
func (m *GlobalMalloc) Kind() core.ModuleKind { return core.MemoryAnalysis }

type gmResult struct {
	ok       bool
	sites    map[*ir.Instr]bool // malloc sites storable into g
	options  []core.Option
	contribs []string
}

// NewGlobalMalloc constructs the module, indexing stores into globals.
func NewGlobalMalloc(mod *ir.Module) *GlobalMalloc {
	m := &GlobalMalloc{
		mod:    mod,
		stores: map[*ir.Global][]*ir.Instr{},
		capt:   map[*ir.Global]bool{},
		cache:  map[globalMallocKey]*gmResult{},
	}
	for _, g := range mod.Globals {
		if !ir.IsPointer(g.Elem) {
			continue
		}
		m.capt[g] = escapes(mod, g)
	}
	for _, f := range mod.Funcs {
		f.Instrs(func(in *ir.Instr) {
			if in.Op != ir.OpStore {
				return
			}
			if g, ok := in.Args[1].(*ir.Global); ok && ir.IsPointer(g.Elem) {
				m.stores[g] = append(m.stores[g], in)
			}
		})
	}
	return m
}

// classify resolves the storable-site set of g under the query's
// control-flow view, consulting the ensemble for unknown stores.
func (m *GlobalMalloc) classify(g *ir.Global, q *core.AliasQuery, h core.Handle) *gmResult {
	key := globalMallocKey{g: g, dt: q.DT}
	if r, ok := m.cache[key]; ok {
		return r
	}
	res := &gmResult{sites: map[*ir.Instr]bool{}, options: core.Unconditional()}
	m.cache[key] = res
	if m.capt[g] {
		return res // stores through aliases possible: property unknowable
	}
	res.ok = true
	for _, st := range m.stores[g] {
		d := core.Decompose(st.Args[0])
		if _, isNull := d.Base.(*ir.ConstNull); isNull && d.Off == 0 {
			continue
		}
		if in, isIn := d.Base.(*ir.Instr); isIn && in.Op == ir.OpMalloc && d.Off == 0 && d.KnownOff {
			res.sites[in] = true
			continue
		}
		// Unknown value stored: ask the ensemble whether this store can be
		// discounted (e.g. it is speculatively dead).
		pr := h.PremiseModRef(&core.ModRefQuery{
			I1:  st,
			Loc: core.MemLoc{Ptr: g, Size: g.Elem.Size()},
			Rel: core.Same,
			DT:  q.DT, PDT: q.PDT,
		})
		if pr.Result == core.NoModRef && len(core.AffordableOptions(pr.Options)) > 0 {
			res.options = core.CrossOptions(res.options, core.AffordableOptions(pr.Options))
			res.contribs = core.MergeContribs(res.contribs, pr.Contribs)
			continue
		}
		res.ok = false
		return res
	}
	return res
}

// loadedFromGlobal matches pointers whose base is a direct load of g.
func loadedFromGlobal(p ir.Value) (*ir.Global, bool) {
	d := core.Decompose(p)
	ld, ok := d.Base.(*ir.Instr)
	if !ok || ld.Op != ir.OpLoad {
		return nil, false
	}
	g, ok := ld.Args[0].(*ir.Global)
	return g, ok
}

func (m *GlobalMalloc) Alias(q *core.AliasQuery, h core.Handle) core.AliasResponse {
	try := func(p1, p2 ir.Value) (core.AliasResponse, bool) {
		g, ok := loadedFromGlobal(p1)
		if !ok {
			return core.AliasResponse{}, false
		}
		cls := m.classify(g, q, h)
		if !cls.ok {
			return core.AliasResponse{}, false
		}
		// p1 points into one of cls.sites' objects (or is null). If p2 is
		// rooted at a different allocation, the footprints are disjoint.
		d2 := core.Decompose(p2)
		if !core.IsAllocationBase(d2.Base) {
			// Or rooted at a different global's disjoint site set.
			if g2, ok2 := loadedFromGlobal(p2); ok2 && g2 != g {
				cls2 := m.classify(g2, q, h)
				if cls2.ok && disjointSites(cls.sites, cls2.sites) {
					return core.AliasResponse{
						Result:   core.NoAlias,
						Options:  core.CrossOptions(cls.options, cls2.options),
						Contribs: core.MergeContribs([]string{m.Name()}, cls.contribs, cls2.contribs),
					}, true
				}
			}
			return core.AliasResponse{}, false
		}
		if in, isIn := d2.Base.(*ir.Instr); isIn && cls.sites[in] {
			// p2 is the allocation-site representative of (one of) the
			// site(s) storable into g. When it is the ONLY storable site
			// and p2 denotes the whole object, p1's footprint is contained
			// in it: the SubAlias answer factored modules feed on.
			if len(cls.sites) == 1 && d2.Off == 0 && d2.KnownOff {
				return core.AliasResponse{
					Result:   core.SubAlias,
					Options:  cls.options,
					Contribs: core.MergeContribs([]string{m.Name()}, cls.contribs),
				}, true
			}
			return core.AliasResponse{}, false // same site: may alias
		}
		return core.AliasResponse{
			Result:   core.NoAlias,
			Options:  cls.options,
			Contribs: core.MergeContribs([]string{m.Name()}, cls.contribs),
		}, true
	}
	if r, ok := try(q.L1.Ptr, q.L2.Ptr); ok {
		return r
	}
	if r, ok := try(q.L2.Ptr, q.L1.Ptr); ok {
		if r.Result == core.SubAlias {
			// Containment is directional (L1 ⊆ L2); the flipped finding
			// cannot be reported.
			return core.MayAliasResponse()
		}
		return r
	}
	return core.MayAliasResponse()
}

func disjointSites(a, b map[*ir.Instr]bool) bool {
	for s := range a {
		if b[s] {
			return false
		}
	}
	return true
}
