package analysis

import (
	"scaf/internal/core"
	"scaf/internal/ir"
)

// NullPtr disproves aliasing with null-based locations: dereferencing null
// is undefined, so a null-based footprint cannot participate in a
// dependence.
type NullPtr struct{ core.BaseModule }

// NewNullPtr constructs the module.
func NewNullPtr() *NullPtr { return &NullPtr{} }

func (m *NullPtr) Name() string          { return "null-ptr" }
func (m *NullPtr) Kind() core.ModuleKind { return core.MemoryAnalysis }

func (m *NullPtr) Alias(q *core.AliasQuery, h core.Handle) core.AliasResponse {
	for _, l := range []core.MemLoc{q.L1, q.L2} {
		d := core.Decompose(l.Ptr)
		if _, isNull := d.Base.(*ir.ConstNull); isNull {
			return core.AliasFact(core.NoAlias, m.Name())
		}
	}
	return core.MayAliasResponse()
}

// BasicObjects disproves aliasing between locations rooted at distinct
// allocation sites: two different allocas/mallocs/globals always denote
// disjoint objects (addresses are never reused while both are live, and
// post-free accesses are undefined). It looks through phi merges: if every
// possible base of L1 is an allocation distinct from every possible base
// of L2, the footprints are disjoint.
type BasicObjects struct{ core.BaseModule }

// NewBasicObjects constructs the module.
func NewBasicObjects() *BasicObjects { return &BasicObjects{} }

func (m *BasicObjects) Name() string          { return "basic-objects" }
func (m *BasicObjects) Kind() core.ModuleKind { return core.MemoryAnalysis }

const phiWalkLimit = 12

func (m *BasicObjects) Alias(q *core.AliasQuery, h core.Handle) core.AliasResponse {
	// Fast path: both chains bottom out in distinct allocations without
	// any phi merge. This runs regardless of the desired result — a cheap
	// definite answer settles the proposition and ends the search.
	d1 := core.Decompose(q.L1.Ptr)
	d2 := core.Decompose(q.L2.Ptr)
	if d1.Base != d2.Base && core.IsAllocationBase(d1.Base) && core.IsAllocationBase(d2.Base) {
		return core.AliasFact(core.NoAlias, m.Name())
	}
	if q.Desired == core.WantMustAlias {
		// Desired-result bail-out (§3.2.2): the transitive phi walk below
		// is this module's expensive path and can only yield NoAlias.
		return core.MayAliasResponse()
	}
	b1, c1 := core.UnderlyingBases(q.L1.Ptr, phiWalkLimit)
	b2, c2 := core.UnderlyingBases(q.L2.Ptr, phiWalkLimit)
	if !c1 || !c2 {
		return core.MayAliasResponse()
	}
	for _, x := range b1 {
		if !core.IsAllocationBase(x) {
			return core.MayAliasResponse()
		}
	}
	for _, y := range b2 {
		if !core.IsAllocationBase(y) {
			return core.MayAliasResponse()
		}
	}
	for _, x := range b1 {
		for _, y := range b2 {
			if x == y {
				// Same allocation site: cannot disprove here (LoopFresh
				// handles the cross-iteration in-loop case).
				return core.MayAliasResponse()
			}
		}
	}
	return core.AliasFact(core.NoAlias, m.Name())
}

// OffsetRanges resolves locations that share one dynamic base pointer by
// comparing constant byte offsets and extents: disjoint ranges are
// NoAlias; identical ranges MustAlias; nested ranges SubAlias; anything
// else PartialAlias.
type OffsetRanges struct{ core.BaseModule }

// NewOffsetRanges constructs the module.
func NewOffsetRanges() *OffsetRanges { return &OffsetRanges{} }

func (m *OffsetRanges) Name() string          { return "offset-ranges" }
func (m *OffsetRanges) Kind() core.ModuleKind { return core.MemoryAnalysis }

func (m *OffsetRanges) Alias(q *core.AliasQuery, h core.Handle) core.AliasResponse {
	// The same SSA pointer denotes one dynamic address per iteration:
	// trivially MustAlias intra-iteration regardless of how it was
	// computed.
	if q.Rel == core.Same && q.L1.Ptr == q.L2.Ptr && q.L1.Ptr != nil &&
		q.L1.Size == q.L2.Size && q.L1.Size != core.UnknownSize {
		return core.AliasFact(core.MustAlias, m.Name())
	}
	d1 := core.Decompose(q.L1.Ptr)
	d2 := core.Decompose(q.L2.Ptr)
	if d1.Base != d2.Base || !d1.KnownOff || !d2.KnownOff {
		return core.MayAliasResponse()
	}
	if !sameDynamicBase(d1.Base, q.Rel, q.Loop) {
		return core.MayAliasResponse()
	}
	if !knownSizes(q) {
		return core.MayAliasResponse()
	}
	o1, s1 := d1.Off, q.L1.Size
	o2, s2 := d2.Off, q.L2.Size
	switch {
	case !rangesOverlap(o1, s1, o2, s2):
		return core.AliasFact(core.NoAlias, m.Name())
	case o1 == o2 && s1 == s2:
		return core.AliasFact(core.MustAlias, m.Name())
	case o1 >= o2 && o1+s1 <= o2+s2:
		return core.AliasFact(core.SubAlias, m.Name())
	default:
		return core.AliasFact(core.PartialAlias, m.Name())
	}
}

// ArrayOfStructs disambiguates accesses to different fields of an array of
// structures: base + i*S + f1 and base + j*S + f2 can never collide when
// the field windows [f1, f1+s1) and [f2, f2+s2) are disjoint within the
// stride S, for any i and j — even unknown ones.
type ArrayOfStructs struct{ core.BaseModule }

// NewArrayOfStructs constructs the module.
func NewArrayOfStructs() *ArrayOfStructs { return &ArrayOfStructs{} }

func (m *ArrayOfStructs) Name() string          { return "array-of-structs" }
func (m *ArrayOfStructs) Kind() core.ModuleKind { return core.MemoryAnalysis }

// strideAndField matches p = Field(Index(base, i), f) patterns and returns
// the decomposed array root, element stride, and the field byte window
// (including any constant offset between the root and the indexed array —
// array decays introduce per-use bitcasts, so roots are compared after
// decomposition).
func strideAndField(p ir.Value) (base ir.Value, stride, fieldOff int64, ok bool) {
	fieldOff = 0
	v := p
	for {
		in, isIn := v.(*ir.Instr)
		if !isIn {
			return nil, 0, 0, false
		}
		switch in.Op {
		case ir.OpField:
			st := ir.Pointee(in.Args[0].Type()).(*ir.StructType)
			fieldOff += st.Fields[in.FieldIdx].Offset
			v = in.Args[0]
		case ir.OpCast:
			if in.Cast != ir.Bitcast {
				return nil, 0, 0, false
			}
			v = in.Args[0]
		case ir.OpIndex:
			elem := ir.Pointee(in.Ty)
			d := core.Decompose(in.Args[0])
			if !d.KnownOff {
				return nil, 0, 0, false
			}
			return d.Base, elem.Size(), fieldOff + d.Off, true
		default:
			return nil, 0, 0, false
		}
	}
}

func (m *ArrayOfStructs) Alias(q *core.AliasQuery, h core.Handle) core.AliasResponse {
	if !knownSizes(q) {
		return core.MayAliasResponse()
	}
	b1, s1, f1, ok1 := strideAndField(q.L1.Ptr)
	b2, s2, f2, ok2 := strideAndField(q.L2.Ptr)
	if !ok1 || !ok2 || b1 != b2 || s1 != s2 || s1 <= 0 {
		return core.MayAliasResponse()
	}
	if !sameDynamicBase(b1, q.Rel, q.Loop) && q.Rel != core.Same {
		// The base must denote the same array in both iterations.
		return core.MayAliasResponse()
	}
	// Field windows within one stride: since both addresses are congruent
	// to their field offsets modulo the stride, disjoint windows (that do
	// not wrap) can never overlap.
	w1, w2 := f1%s1, f2%s1
	if w1+q.L1.Size <= s1 && w2+q.L2.Size <= s1 && !rangesOverlap(w1, q.L1.Size, w2, q.L2.Size) {
		return core.AliasFact(core.NoAlias, m.Name())
	}
	return core.MayAliasResponse()
}

// TBAA is type-based disambiguation: MC has no unions or reinterpreting
// casts, so memory accessed as one scalar type is never legally accessed
// as another; footprints of different access types cannot alias.
type TBAA struct{ core.BaseModule }

// NewTBAA constructs the module.
func NewTBAA() *TBAA { return &TBAA{} }

func (m *TBAA) Name() string          { return "tbaa" }
func (m *TBAA) Kind() core.ModuleKind { return core.MemoryAnalysis }

// accessType returns the scalar type a location is accessed at.
func accessType(l core.MemLoc) ir.Type {
	if l.Ptr == nil {
		return nil
	}
	return ir.Pointee(l.Ptr.Type())
}

func tbaaDistinct(a, b ir.Type) bool {
	if a == nil || b == nil {
		return false
	}
	// Only scalar leaf types participate; aggregates contain anything.
	scalar := func(t ir.Type) bool {
		switch t.(type) {
		case *ir.IntType, *ir.FloatType, *ir.PtrType:
			return true
		}
		return false
	}
	if !scalar(a) || !scalar(b) {
		return false
	}
	// Pointer types are mutually convertible only through array decay,
	// which preserves the element type; distinct pointee shapes are still
	// distinct slots. Treat all pointer types as one TBAA class to stay
	// conservative about decay.
	isPtr := func(t ir.Type) bool { return ir.IsPointer(t) }
	if isPtr(a) && isPtr(b) {
		return false
	}
	return !ir.Equal(a, b)
}

func (m *TBAA) Alias(q *core.AliasQuery, h core.Handle) core.AliasResponse {
	if tbaaDistinct(accessType(q.L1), accessType(q.L2)) {
		return core.AliasFact(core.NoAlias, m.Name())
	}
	return core.MayAliasResponse()
}
