// Package memspec implements the memory-speculation baseline (paper §5):
// the most general but most expensive speculation technique. It asserts
// the absence of every dependence that did not manifest under the
// loop-sensitive memory-dependence profiler, validated by shadow-memory
// checks on every guarded access (Fig. 7b).
package memspec

import (
	"scaf/internal/cfg"
	"scaf/internal/core"
	"scaf/internal/ir"
	"scaf/internal/profile"
)

// Name is the module/assertion identifier.
const Name = "memory-spec"

// MemSpec answers mod-ref queries from the memory-dependence profile.
// It can be used directly (NoDep) or plugged into an Orchestrator as a
// module — the paper keeps it out of SCAF's ensemble because its
// validation cost defeats the purpose, and so do we by default.
type MemSpec struct {
	core.BaseModule
	data *profile.Data
}

// New creates the baseline from profiles.
func New(d *profile.Data) *MemSpec { return &MemSpec{data: d} }

func (m *MemSpec) Name() string          { return Name }
func (m *MemSpec) Kind() core.ModuleKind { return core.Speculation }

// NoDep reports whether no dependence i1→i2 with the given temporal
// relation manifested during profiling within loop l.
func (m *MemSpec) NoDep(l *cfg.Loop, i1, i2 *ir.Instr, rel core.TemporalRelation) bool {
	return !m.data.MemDep.Observed(l, i1, i2, rel == core.Before)
}

// execCount estimates how often instruction in accessed memory.
func (m *MemSpec) execCount(in *ir.Instr) int64 {
	if ptr, _, ok := in.PointerOperand(); ok {
		if c := m.data.PointsTo.ExecCount(ptr); c > 0 {
			return c
		}
	}
	// Calls and unprofiled ops: approximate with the block count.
	return m.data.Edge.BlockCount[in.Blk]
}

// Assertion prices the shadow-memory validation for a speculated pair.
func (m *MemSpec) Assertion(i1, i2 *ir.Instr) core.Assertion {
	return core.Assertion{
		Module: Name,
		Kind:   "shadow-memory",
		Points: []core.Point{{Instr: i1}, {Instr: i2}},
		Cost:   core.CostMemSpecCheck * float64(m.execCount(i1)+m.execCount(i2)),
	}
}

func (m *MemSpec) ModRef(q *core.ModRefQuery, h core.Handle) core.ModRefResponse {
	if q.Loop == nil || q.I1 == nil || q.I2 == nil {
		return core.ModRefConservative()
	}
	if m.NoDep(q.Loop, q.I1, q.I2, q.Rel) {
		return core.ModRefSpec(core.NoModRef, Name, m.Assertion(q.I1, q.I2))
	}
	return core.ModRefConservative()
}
