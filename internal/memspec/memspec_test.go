package memspec

import (
	"testing"

	"scaf/internal/cfg"
	"scaf/internal/core"
	"scaf/internal/interp"
	"scaf/internal/ir"
	"scaf/internal/lower"
	"scaf/internal/profile"
)

func load(t *testing.T, src string) (*profile.Data, *cfg.Program) {
	t.Helper()
	mod, err := lower.Compile("test", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	prog := cfg.NewProgram(mod)
	data, err := profile.Collect(prog, interp.Options{})
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	return data, prog
}

const src = `
int buf[64];
int acc;
void main() {
    for (int i = 0; i < 200; i++) {
        buf[i % 64] = i;            // store
        acc = acc + buf[i % 64];    // loads + store acc
    }
    print(acc);
}
`

func findOps(t *testing.T, prog *cfg.Program) (loop *cfg.Loop, bufStore, bufLoad, accStore *ir.Instr) {
	t.Helper()
	main := prog.Mod.FuncNamed("main")
	loop = prog.Forests[main].All[0]
	bufG := prog.Mod.GlobalNamed("buf")
	accG := prog.Mod.GlobalNamed("acc")
	main.Instrs(func(in *ir.Instr) {
		ptr, _, ok := in.PointerOperand()
		if !ok || !loop.ContainsInstr(in) {
			return
		}
		base := core.Decompose(ptr).Base
		switch {
		case base == ir.Value(bufG) && in.Op == ir.OpStore:
			bufStore = in
		case base == ir.Value(bufG) && in.Op == ir.OpLoad:
			bufLoad = in
		case base == ir.Value(accG) && in.Op == ir.OpStore:
			accStore = in
		}
	})
	if bufStore == nil || bufLoad == nil || accStore == nil {
		t.Fatal("ops not found")
	}
	return
}

func TestMemSpecObservedVsNot(t *testing.T) {
	data, prog := load(t, src)
	ms := New(data)
	loop, bufStore, bufLoad, accStore := findOps(t, prog)

	// Intra-iteration flow buf-store -> buf-load manifests.
	if ms.NoDep(loop, bufStore, bufLoad, core.Same) {
		t.Error("manifested intra dep must not be speculated")
	}
	// Cross-iteration buf-store -> buf-load of the same slot is killed by
	// the same-iteration store, so it never manifests: speculable.
	if !ms.NoDep(loop, bufStore, bufLoad, core.Before) {
		t.Error("non-observed cross dep must be speculable")
	}
	// buf accesses never touch acc.
	if ms.NoDep(loop, accStore, accStore, core.Before) {
		t.Error("the acc recurrence's output dep manifests across iterations")
	}
}

func TestMemSpecModuleInterface(t *testing.T) {
	data, prog := load(t, src)
	ms := New(data)
	loop, bufStore, bufLoad, _ := findOps(t, prog)

	if ms.Kind() != core.Speculation || ms.Name() != Name {
		t.Error("module identity wrong")
	}
	r := ms.ModRef(&core.ModRefQuery{I1: bufStore, I2: bufLoad, Rel: core.Before, Loop: loop}, core.NoHelp{})
	if r.Result != core.NoModRef {
		t.Fatalf("module should speculate the non-observed dep: %s", r.Result)
	}
	// Expensive: cost = per-check x (executions of both endpoints).
	want := core.CostMemSpecCheck * float64(200+200)
	if got := core.MinCost(r.Options); got != want {
		t.Errorf("cost = %g, want %g", got, want)
	}
	// Observed dep: conservative.
	r = ms.ModRef(&core.ModRefQuery{I1: bufStore, I2: bufLoad, Rel: core.Same, Loop: loop}, core.NoHelp{})
	if r.Result != core.ModRef {
		t.Errorf("observed dep must stay: %s", r.Result)
	}
	// No loop context: conservative.
	r = ms.ModRef(&core.ModRefQuery{I1: bufStore, I2: bufLoad, Rel: core.Same}, core.NoHelp{})
	if r.Result != core.ModRef {
		t.Errorf("loopless query must be conservative: %s", r.Result)
	}
}

func TestMemSpecCostDominatesCheapChecks(t *testing.T) {
	data, prog := load(t, src)
	ms := New(data)
	_, bufStore, bufLoad, _ := findOps(t, prog)
	a := ms.Assertion(bufStore, bufLoad)
	if a.Cost <= core.CostHeapCheck*400 {
		t.Errorf("memory speculation must cost more than heap checks: %g", a.Cost)
	}
	if len(a.Points) != 2 {
		t.Errorf("assertion points = %d", len(a.Points))
	}
}
