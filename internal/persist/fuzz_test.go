package persist

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"reflect"
	"testing"

	"scaf/internal/fleet"
)

// fuzzSnapshot is the fixed canonical snapshot every fuzz input is a
// mutation of. Deterministic so the oracle map can be rebuilt per run.
func fuzzSnapshot() (Snapshot, map[string]fleet.Entry) {
	var snap Snapshot
	byKey := make(map[string]fleet.Entry)
	for i := 0; i < 8; i++ {
		e := fleet.Entry{
			Key:     fmt.Sprintf("d%02x|scaf|fp%d|loop|L%d", i, i%2, i),
			Value:   []byte(fmt.Sprintf(`{"loop":"L%d","deps":[%d,%d]}`, i, i*3, i*3+1)),
			Asserts: []string{fmt.Sprintf("spec/aa/%d", i%4), "spec/mod/chaos"},
		}
		snap.Entries = append(snap.Entries, e)
		byKey[e.Key] = e
	}
	snap.Revoked = []string{"spec/aa/9"}
	return snap, byKey
}

func fuzzSeeds(valid []byte) [][]byte {
	seeds := [][]byte{
		valid,
		valid[:len(valid)/2],   // truncate mid-record
		valid[:headerSize],     // header only
		valid[:headerSize+3],   // torn frame
		{},                     // empty
		[]byte("SCAFSNAPxxxx"), // magic, garbage version
	}
	flip := bytes.Clone(valid)
	flip[len(flip)/3] ^= 0x40 // bit-flip inside a payload
	seeds = append(seeds, flip)
	hdr := bytes.Clone(valid)
	binary.LittleEndian.PutUint32(hdr[8:12], Version+7) // wrong version
	seeds = append(seeds, hdr)
	splice := append(bytes.Clone(valid[:64]), valid[20:]...) // splice
	seeds = append(seeds, splice)
	dup := append(bytes.Clone(valid), valid[headerSize:]...) // records repeated
	seeds = append(seeds, dup)
	// Reorder: re-encode with the entry order reversed — still valid,
	// exercises order independence — then truncate it mid-stream.
	snap, _ := fuzzSnapshot()
	rev := Snapshot{Revoked: snap.Revoked}
	for i := len(snap.Entries) - 1; i >= 0; i-- {
		rev.Entries = append(rev.Entries, snap.Entries[i])
	}
	reordered := Encode(rev)
	seeds = append(seeds, reordered, reordered[:2*len(reordered)/3])
	return seeds
}

// FuzzSnapshotCorruption feeds arbitrary mutations of a valid snapshot
// through the full load path and asserts the one invariant persistence
// must never lose: a corrupt snapshot degrades to misses. Concretely,
// whatever Decode salvages must be a subset of the canonical entries —
// byte-identical value and asserts on every surviving key, no
// fabricated keys — and restoring it through a shard must still block
// everything the surviving revoked set covers.
func FuzzSnapshotCorruption(f *testing.F) {
	snap, byKey := fuzzSnapshot()
	valid := Encode(snap)
	for _, s := range fuzzSeeds(valid) {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		got, st := Decode(data)
		for _, e := range got.Entries {
			want, ok := byKey[e.Key]
			if !ok {
				t.Fatalf("fabricated entry %q survived decode (stats %+v)", e.Key, st)
			}
			if !bytes.Equal(e.Value, want.Value) || !reflect.DeepEqual(e.Asserts, want.Asserts) {
				t.Fatalf("entry %q survived with mutated bytes (stats %+v)", e.Key, st)
			}
		}
		// Surviving revocations may be any subset or superset — extra
		// revocations only widen the guaranteed-miss set. What must hold
		// is that restore never serves an entry they cover.
		c := fleet.NewCache()
		c.Restore(got.Revoked, got.Entries)
		revoked := make(map[string]bool, len(got.Revoked))
		for _, k := range got.Revoked {
			revoked[k] = true
		}
		for _, e := range c.SnapshotEntries() {
			for _, a := range e.Asserts {
				if revoked[a] {
					t.Fatalf("restored entry %q predicated on surviving revocation %q", e.Key, a)
				}
			}
		}
	})
}
