package persist

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"

	"scaf/internal/fleet"
)

// testSnapshot builds a deterministic snapshot with fleet-shaped keys.
func testSnapshot(n int) Snapshot {
	var snap Snapshot
	for i := 0; i < n; i++ {
		snap.Entries = append(snap.Entries, fleet.Entry{
			Key:     fmt.Sprintf("d%04x|scaf|fp0|mr|k%d", i, i),
			Value:   []byte(fmt.Sprintf(`{"answer":%d}`, i*7)),
			Asserts: []string{fmt.Sprintf("assert/%d", i%3)},
		})
	}
	snap.Revoked = []string{"assert/revoked"}
	return snap
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	snap := testSnapshot(8)
	got, st := Decode(Encode(snap))
	if st.Truncated || st.Dropped != 0 {
		t.Fatalf("clean decode reported trouble: %+v", st)
	}
	if !reflect.DeepEqual(got.Revoked, snap.Revoked) {
		t.Fatalf("revoked round-trip: got %v want %v", got.Revoked, snap.Revoked)
	}
	if !reflect.DeepEqual(got.Entries, snap.Entries) {
		t.Fatalf("entries round-trip mismatch")
	}
}

func TestDecodeRejectsHeader(t *testing.T) {
	snap := testSnapshot(2)
	valid := Encode(snap)

	cases := map[string][]byte{
		"empty":        {},
		"short header": valid[:6],
		"bad magic":    append([]byte("NOTASNAP"), valid[8:]...),
	}
	wrongVer := bytes.Clone(valid)
	binary.LittleEndian.PutUint32(wrongVer[8:12], Version+1)
	cases["wrong version"] = wrongVer

	for name, data := range cases {
		got, st := Decode(data)
		if len(got.Entries) != 0 || len(got.Revoked) != 0 {
			t.Errorf("%s: decoded state from a rejected file: %+v", name, got)
		}
		if !st.Truncated {
			t.Errorf("%s: expected a truncation reason", name)
		}
	}
}

// TestDecodePrefixProperty corrupts a snapshot at every byte offset and
// asserts the result is always a subset of the original entries with
// byte-identical values — the corruption-degrades-to-miss invariant,
// exhaustively for single-byte flips.
func TestDecodePrefixProperty(t *testing.T) {
	snap := testSnapshot(6)
	want := make(map[string]fleet.Entry)
	for _, e := range snap.Entries {
		want[e.Key] = e
	}
	valid := Encode(snap)

	check := func(name string, data []byte) {
		t.Helper()
		got, _ := Decode(data)
		for _, e := range got.Entries {
			w, ok := want[e.Key]
			if !ok {
				t.Fatalf("%s: fabricated key %q survived decode", name, e.Key)
			}
			if !bytes.Equal(e.Value, w.Value) || !reflect.DeepEqual(e.Asserts, w.Asserts) {
				t.Fatalf("%s: entry %q mutated in flight", name, e.Key)
			}
		}
	}

	for off := 0; off < len(valid); off++ {
		mut := bytes.Clone(valid)
		mut[off] ^= 0x41
		check(fmt.Sprintf("flip@%d", off), mut)
	}
	for cut := 0; cut < len(valid); cut += 7 {
		check(fmt.Sprintf("trunc@%d", cut), valid[:cut])
	}
	// Splice: a chunk of the file repeated mid-stream.
	splice := append(bytes.Clone(valid[:40]), valid[12:]...)
	check("splice", splice)
	// Duplicate records appended — first-write-wins makes repeats no-ops.
	check("self-append", append(bytes.Clone(valid), valid[12:]...))
}

func TestDecodeDropsMalformedKeys(t *testing.T) {
	snap := testSnapshot(2)
	snap.Entries = append(snap.Entries, fleet.Entry{Key: "not-a-fleet-key", Value: []byte("x")})
	got, st := Decode(Encode(snap))
	if st.Dropped != 1 || len(got.Entries) != 2 {
		t.Fatalf("shape filter: dropped=%d entries=%d", st.Dropped, len(got.Entries))
	}
}

func TestRestoreBlocksRevokedEntries(t *testing.T) {
	snap := testSnapshot(6) // asserts cycle over assert/0..2
	snap.Revoked = append(snap.Revoked, "assert/1")
	got, _ := Decode(Encode(snap))
	c := fleet.NewCache()
	inserted, rejected := c.Restore(got.Revoked, got.Entries)
	if rejected == 0 {
		t.Fatal("no entry was blocked by the revoked set")
	}
	if inserted+rejected != len(got.Entries) {
		t.Fatalf("restore accounting: %d+%d != %d", inserted, rejected, len(got.Entries))
	}
	for _, e := range got.Entries {
		_, ok := c.Get(e.Key)
		predicated := false
		for _, a := range e.Asserts {
			if a == "assert/1" {
				predicated = true
			}
		}
		if predicated && ok {
			t.Fatalf("revoked-predicated entry %q resurrected", e.Key)
		}
		if !predicated && !ok {
			t.Fatalf("clean entry %q lost in restore", e.Key)
		}
	}
}

func TestStoreSaveLoadAndJournal(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	snap := testSnapshot(4)
	if err := st.Save(snap); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendRevoked([]string{"assert/0"}); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendRevoked([]string{"assert/journal-2"}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	loaded, ls := st2.Load()
	if ls.Truncated {
		t.Fatalf("clean load truncated: %s", ls.Reason)
	}
	wantRevoked := map[string]bool{"assert/revoked": true, "assert/0": true, "assert/journal-2": true}
	gotRevoked := map[string]bool{}
	for _, k := range loaded.Revoked {
		gotRevoked[k] = true
	}
	if !reflect.DeepEqual(gotRevoked, wantRevoked) {
		t.Fatalf("revoked merge: got %v want %v", gotRevoked, wantRevoked)
	}
	c := fleet.NewCache()
	inserted, rejected := c.Restore(loaded.Revoked, loaded.Entries)
	// assert/0 came in via the journal after the snapshot was taken, so
	// the two entries predicated on it must be blocked at restore.
	if rejected != 2 || inserted != 2 {
		t.Fatalf("journal-after-snapshot: inserted=%d rejected=%d", inserted, rejected)
	}
}

func TestStoreLoadMissingIsCold(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	snap, ls := st.Load()
	if len(snap.Entries) != 0 || len(snap.Revoked) != 0 || ls.Truncated {
		t.Fatalf("missing files should load cold: %+v %+v", snap, ls)
	}
}

func TestStoreCorruptJournalPrefix(t *testing.T) {
	dir := t.TempDir()
	st, _ := NewStore(dir)
	st.AppendRevoked([]string{"a/1"})
	st.AppendRevoked([]string{"a/2"})
	st.Close()

	// Tear the journal mid-record: the first append must survive.
	data, err := os.ReadFile(st.JournalPath())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(st.JournalPath(), data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	st2, _ := NewStore(dir)
	snap, ls := st2.Load()
	if !ls.Truncated {
		t.Fatal("torn journal not reported")
	}
	if len(snap.Revoked) != 1 || snap.Revoked[0] != "a/1" {
		t.Fatalf("journal prefix: got %v want [a/1]", snap.Revoked)
	}
}

// TestJournalTornTailRepairedOnAppend pins the crash-mid-append shape:
// a torn record at the journal's tail must be truncated away on the
// next open, so revocations journaled (and fsync-acked) after the
// crash land in a decodable file instead of being stranded behind
// garbage the decoder stops at.
func TestJournalTornTailRepairedOnAppend(t *testing.T) {
	dir := t.TempDir()
	st, _ := NewStore(dir)
	if err := st.AppendRevoked([]string{"a/1"}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Simulate a crash mid-append: a partial frame after the last
	// complete record.
	f, err := os.OpenFile(st.JournalPath(), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{KindRevoked, 0xff, 0xff}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, _ := NewStore(dir)
	defer st2.Close()
	if err := st2.AppendRevoked([]string{"a/2"}); err != nil {
		t.Fatal(err)
	}
	snap, ls := st2.Load()
	if ls.Truncated {
		t.Fatalf("repaired journal still reads torn: %s", ls.Reason)
	}
	if !reflect.DeepEqual(snap.Revoked, []string{"a/1", "a/2"}) {
		t.Fatalf("post-repair revocations: got %v want [a/1 a/2]", snap.Revoked)
	}
}

// TestJournalHeaderRepairedOnAppend pins the crash-between-create-and-
// header shape: an existing zero-length (or partial-header) journal
// must get a fresh header on the next open, not be appended to
// headerless — which would make every future record unreadable.
func TestJournalHeaderRepairedOnAppend(t *testing.T) {
	for name, stub := range map[string][]byte{
		"empty":          {},
		"partial header": []byte(magic[:5]),
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			st, _ := NewStore(dir)
			if err := os.WriteFile(st.JournalPath(), stub, 0o644); err != nil {
				t.Fatal(err)
			}
			if err := st.AppendRevoked([]string{"a/1"}); err != nil {
				t.Fatal(err)
			}
			st.Close()

			st2, _ := NewStore(dir)
			defer st2.Close()
			snap, ls := st2.Load()
			if ls.Truncated {
				t.Fatalf("journal unreadable after header repair: %s", ls.Reason)
			}
			if !reflect.DeepEqual(snap.Revoked, []string{"a/1"}) {
				t.Fatalf("revocations after header repair: got %v want [a/1]", snap.Revoked)
			}
		})
	}
}

// TestJournalForeignFileRotatedAside: a file with a valid length but
// wrong magic is not ours to truncate — it is moved to *.corrupt and
// the journal restarts fresh.
func TestJournalForeignFileRotatedAside(t *testing.T) {
	dir := t.TempDir()
	st, _ := NewStore(dir)
	foreign := []byte("NOTASNAPxxxxsome other file's bytes")
	if err := os.WriteFile(st.JournalPath(), foreign, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendRevoked([]string{"a/1"}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	moved, err := os.ReadFile(st.JournalPath() + ".corrupt")
	if err != nil || !bytes.Equal(moved, foreign) {
		t.Fatalf("foreign file not preserved aside: %v", err)
	}
	st2, _ := NewStore(dir)
	defer st2.Close()
	snap, ls := st2.Load()
	if ls.Truncated || !reflect.DeepEqual(snap.Revoked, []string{"a/1"}) {
		t.Fatalf("journal after rotate: revoked=%v truncated=%v (%s)", snap.Revoked, ls.Truncated, ls.Reason)
	}
}

// TestSnapshotDuringDrain snapshots a live shard while concurrent
// writers, readers, and revokers hammer it (run under -race in CI).
// Every file written must decode cleanly and contain only complete
// canonical entries — value and asserts exactly what the writer
// published — and no loaded entry may be predicated on a revocation
// the same load sees: the only-publish-complete rule extended to disk.
func TestSnapshotDuringDrain(t *testing.T) {
	c := fleet.NewCache()
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	// Journal every revocation as the server wiring does, so a snapshot
	// raced by a revocation is still blocked at load by the journal.
	c.SetRevokeHook(func(keys []string) { store.AppendRevoked(keys) })

	canonical := func(i int) fleet.Entry {
		return fleet.Entry{
			Key:     fmt.Sprintf("d%02x|scaf|fp|loop|L%d", i%16, i),
			Value:   []byte(fmt.Sprintf(`{"i":%d,"bytes":"canonical-%d"}`, i, i*31)),
			Asserts: []string{fmt.Sprintf("spec/%d", i%8)},
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := w
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Put(canonical(i))
				c.Get(canonical(i / 2).Key)
				if i%37 == 0 {
					c.InvalidateAsserts([]string{fmt.Sprintf("spec/%d", (i/37)%8)})
				}
				i += 4
			}
		}(w)
	}

	for iter := 0; iter < 25; iter++ {
		if err := store.Save(Snapshot{Revoked: c.RevokedKeys(), Entries: c.SnapshotEntries()}); err != nil {
			t.Fatal(err)
		}
		loaded, ls := store.Load()
		if ls.Truncated {
			t.Fatalf("iter %d: snapshot written under load failed validation: %s", iter, ls.Reason)
		}
		revoked := make(map[string]bool, len(loaded.Revoked))
		for _, k := range loaded.Revoked {
			revoked[k] = true
		}
		for _, e := range loaded.Entries {
			var i int
			if _, err := fmt.Sscanf(e.Key[strings.LastIndexByte(e.Key, 'L')+1:], "%d", &i); err != nil {
				t.Fatalf("iter %d: unparseable key %q", iter, e.Key)
			}
			want := canonical(i)
			if e.Key != want.Key || !bytes.Equal(e.Value, want.Value) || !reflect.DeepEqual(e.Asserts, want.Asserts) {
				t.Fatalf("iter %d: incomplete or mutated entry on disk: %+v", iter, e)
			}
		}
		// Restoring must block anything the merged revoked set covers.
		rc := fleet.NewCache()
		rc.Restore(loaded.Revoked, loaded.Entries)
		for _, e := range rc.SnapshotEntries() {
			for _, a := range e.Asserts {
				if revoked[a] {
					t.Fatalf("iter %d: entry %q predicated on revoked %q survived restore", iter, e.Key, a)
				}
			}
		}
	}
	close(stop)
	wg.Wait()
}
