package persist

import (
	"fmt"
	"testing"

	"scaf/internal/fleet"
)

// TestSegmentTransfer pins the segment-scoped transfer path the live
// cutover uses: Segment selects exactly the entries a target node owns
// under a given ring while carrying the full revoked set, the selection
// survives an Encode/Decode round trip byte-identically, and corruption
// of the transferred image degrades to the valid prefix — cold segments,
// never wrong ones.
func TestSegmentTransfer(t *testing.T) {
	ring := fleet.NewRing([]string{"b0", "b1", "j0"}, 0)
	var snap Snapshot
	snap.Revoked = []string{"mod/assert@1", "mod/assert@2"}
	perOwner := map[string]int{}
	for i := 0; i < 60; i++ {
		key := fmt.Sprintf("dig%d|scaf|fp|loop|l%d", i, i)
		snap.Entries = append(snap.Entries, fleet.Entry{
			Key:     key,
			Value:   []byte(fmt.Sprintf("value-%d", i)),
			Asserts: []string{"mod/assert@3"},
		})
		perOwner[ring.Owner(key)]++
	}
	if perOwner["j0"] == 0 || perOwner["b0"] == 0 {
		t.Fatalf("keys did not spread across the ring: %v", perOwner)
	}

	seg := Segment(snap, ring, "j0")
	if len(seg.Entries) != perOwner["j0"] {
		t.Fatalf("segment holds %d entries, ring places %d on j0", len(seg.Entries), perOwner["j0"])
	}
	for _, e := range seg.Entries {
		if ring.Owner(e.Key) != "j0" {
			t.Fatalf("segment leaked %q (owner %s)", e.Key, ring.Owner(e.Key))
		}
	}
	if len(seg.Revoked) != len(snap.Revoked) {
		t.Fatalf("segment carries %d revocations, want the full set (%d)", len(seg.Revoked), len(snap.Revoked))
	}

	// Round trip: the wire image restores exactly the segment.
	data := Encode(seg)
	got, ds := Decode(data)
	if ds.Truncated || ds.Dropped != 0 {
		t.Fatalf("clean image decoded dirty: %+v", ds)
	}
	if len(got.Entries) != len(seg.Entries) || len(got.Revoked) != len(seg.Revoked) {
		t.Fatalf("round trip lost records: %d/%d entries, %d/%d revoked",
			len(got.Entries), len(seg.Entries), len(got.Revoked), len(seg.Revoked))
	}
	for i, e := range got.Entries {
		w := seg.Entries[i]
		if e.Key != w.Key || string(e.Value) != string(w.Value) {
			t.Fatalf("entry %d mutated in transit: %q vs %q", i, e.Key, w.Key)
		}
	}

	// A bit flip mid-transfer stops the read at the valid prefix; the
	// receiver restores fewer entries, never different ones.
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)/2] ^= 0x40
	part, ds := Decode(corrupt)
	if !ds.Truncated {
		t.Fatal("corrupted image decoded as clean")
	}
	if len(part.Entries) >= len(seg.Entries) {
		t.Fatalf("corruption lost nothing (%d entries)", len(part.Entries))
	}
	for i, e := range part.Entries {
		if e.Key != seg.Entries[i].Key {
			t.Fatalf("corrupted image reordered entries at %d", i)
		}
	}

	// Restore on the receiver honors the carried revocations: entries
	// predicated on a revoked assertion are rejected, not installed.
	recv := fleet.NewCache()
	poisoned := Snapshot{
		Revoked: []string{"mod/assert@3"},
		Entries: seg.Entries,
	}
	inserted, rejected := recv.Restore(poisoned.Revoked, poisoned.Entries)
	if inserted != 0 || rejected != len(seg.Entries) {
		t.Fatalf("restore under revocation: inserted=%d rejected=%d, want 0/%d",
			inserted, rejected, len(seg.Entries))
	}
}
