package persist

import (
	"encoding/json"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"scaf/internal/fleet"
)

const (
	// SnapshotFile holds the last complete shard snapshot (atomically
	// replaced on every save). JournalFile is the append-only revoked-set
	// journal: revocations are durable the instant they happen, never
	// truncated, so even a crash between snapshots cannot lose one.
	SnapshotFile = "fleet.snap"
	JournalFile  = "revoked.journal"
)

// Snapshot is the persisted state of one shard: the monotone revoked
// set and the canonical entries. On restore the revocations are applied
// first, so an entry predicated on any of them can never come back.
type Snapshot struct {
	Revoked []string
	Entries []fleet.Entry
}

// DecodeStats reports what a decode accepted and dropped.
type DecodeStats struct {
	Entries   int    // entries accepted
	Revoked   int    // revoked keys accepted
	Dropped   int    // records skipped by semantic filters (key shape)
	Truncated bool   // the read stopped before the end of the file
	Reason    string // why, when Truncated
}

// entryRecord is the on-disk form of one cache entry. Sum is an inner
// CRC32 over key/value/asserts: together with the frame CRC a mutation
// must forge two independent checksums to alter an entry undetected.
type entryRecord struct {
	Key     string   `json:"key"`
	Value   []byte   `json:"value"`
	Asserts []string `json:"asserts,omitempty"`
	Sum     uint32   `json:"sum"`
}

// revokedRecord is one batch of revoked assertion keys.
type revokedRecord struct {
	Keys []string `json:"keys"`
}

func entrySum(e fleet.Entry) uint32 {
	h := crc32.NewIEEE()
	h.Write([]byte(e.Key))
	h.Write([]byte{0})
	h.Write(e.Value)
	h.Write([]byte{0})
	for _, a := range e.Asserts {
		h.Write([]byte(a))
		h.Write([]byte{0})
	}
	return h.Sum32()
}

// keyShapeOK is the fingerprint shape check: every fleet key is
// digest|scheme|fingerprint|query…, so a well-formed key has at least
// three separators and no empty digest/scheme/fingerprint segment. An
// entry failing it cannot have been published by this system.
func keyShapeOK(key string) bool {
	parts := strings.SplitN(key, "|", 4)
	if len(parts) < 4 {
		return false
	}
	return parts[0] != "" && parts[1] != "" && parts[2] != ""
}

// Encode renders snap as a complete snapshot file image: header, one
// revoked record (always present, even when empty — restores apply
// revocations before entries), then the entries in the order given.
func Encode(snap Snapshot) []byte {
	records := make([]Record, 0, 1+len(snap.Entries))
	rv, _ := json.Marshal(revokedRecord{Keys: snap.Revoked})
	records = append(records, Record{Kind: KindRevoked, Payload: rv})
	for _, e := range snap.Entries {
		er, _ := json.Marshal(entryRecord{Key: e.Key, Value: e.Value, Asserts: e.Asserts, Sum: entrySum(e)})
		records = append(records, Record{Kind: KindEntry, Payload: er})
	}
	return EncodeFile(records)
}

// Segment filters snap down to one node's slice of a ring: the entries
// whose owner under ring is owner, plus the FULL revoked set. The
// revoked set is deliberately not segmented — revocations are monotone,
// global, and cheap, and handing a transfer target every revocation is
// how a streamed segment inherits the guaranteed-miss rule (Restore
// applies revocations before entries, so nothing quarantined can ride
// a segment into a new home).
func Segment(snap Snapshot, ring *fleet.Ring, owner string) Snapshot {
	out := Snapshot{Revoked: snap.Revoked}
	for _, e := range snap.Entries {
		if ring.Owner(e.Key) == owner {
			out.Entries = append(out.Entries, e)
		}
	}
	return out
}

// Decode walks the validation ladder over data and returns whatever
// survives. The result is always safe to Restore: entries are a subset
// of what Encode wrote (byte-identical per surviving key), and extra or
// missing revocations only cause misses, never wrong answers.
func Decode(data []byte) (Snapshot, DecodeStats) {
	var snap Snapshot
	var st DecodeStats
	records, trunc := DecodeFile(data)
	st.Truncated = trunc != ""
	st.Reason = trunc
	for _, r := range records {
		switch r.Kind {
		case KindRevoked:
			var rv revokedRecord
			if err := json.Unmarshal(r.Payload, &rv); err != nil {
				// A payload that passes its CRC but is not our JSON is a
				// foreign or forged record; stop like any torn frame.
				st.Truncated, st.Reason = true, "malformed revoked record"
				return snap, st
			}
			snap.Revoked = append(snap.Revoked, rv.Keys...)
			st.Revoked += len(rv.Keys)
		case KindEntry:
			var er entryRecord
			if err := json.Unmarshal(r.Payload, &er); err != nil {
				st.Truncated, st.Reason = true, "malformed entry record"
				return snap, st
			}
			e := fleet.Entry{Key: er.Key, Value: er.Value, Asserts: er.Asserts}
			if entrySum(e) != er.Sum {
				st.Truncated, st.Reason = true, "entry checksum mismatch"
				return snap, st
			}
			if !keyShapeOK(e.Key) {
				st.Dropped++
				continue
			}
			snap.Entries = append(snap.Entries, e)
			st.Entries++
		default:
			st.Truncated, st.Reason = true, "unknown record kind"
			return snap, st
		}
	}
	return snap, st
}

// Stats counts what the store has loaded, rejected, and written.
// Rejected counts load-time drops of every flavor: truncation, semantic
// filters, and entries the shard refused because their predicates were
// already revoked.
type Stats struct {
	Loaded         int64 `json:"snapshot_loaded"`
	Rejected       int64 `json:"snapshot_rejected"`
	Entries        int64 `json:"snapshot_entries"`
	Saves          int64 `json:"snapshot_saves"`
	SaveErrors     int64 `json:"snapshot_save_errors"`
	JournalRecords int64 `json:"journal_records"`
	JournalErrors  int64 `json:"journal_errors"`
}

// Store manages one shard's persistence directory: the snapshot file
// and the append-only revoked-set journal.
type Store struct {
	dir string

	mu      sync.Mutex // serializes saves and journal appends
	journal *os.File

	loaded, rejected, entries    atomic.Int64
	saves, saveErrors, journaled atomic.Int64
	journalErrors                atomic.Int64
}

// NewStore opens (creating if needed) the persistence directory.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// SnapshotPath returns the snapshot file's path.
func (s *Store) SnapshotPath() string { return filepath.Join(s.dir, SnapshotFile) }

// JournalPath returns the revoked-set journal's path.
func (s *Store) JournalPath() string { return filepath.Join(s.dir, JournalFile) }

// Save atomically replaces the snapshot file with snap (temp file +
// rename, so a crash mid-save leaves the previous snapshot intact).
func (s *Store) Save(snap Snapshot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	data := Encode(snap)
	tmp, err := os.CreateTemp(s.dir, SnapshotFile+".tmp-")
	if err != nil {
		s.saveErrors.Add(1)
		return err
	}
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), s.SnapshotPath())
	}
	if werr != nil {
		os.Remove(tmp.Name())
		s.saveErrors.Add(1)
		return werr
	}
	s.saves.Add(1)
	s.entries.Store(int64(len(snap.Entries)))
	return nil
}

// Load reads the snapshot and merges the revoked-set journal on top.
// Missing files are an empty (cold) state, not an error; corruption
// anywhere degrades to the validated prefix. The returned snapshot is
// ready for Cache.Restore — revocations first, then entries.
func (s *Store) Load() (Snapshot, DecodeStats) {
	var snap Snapshot
	var st DecodeStats
	if data, err := os.ReadFile(s.SnapshotPath()); err == nil {
		snap, st = Decode(data)
	}
	// The journal holds only revoked records; an entry record there is
	// as foreign as a bad checksum and stops the read the same way.
	if data, err := os.ReadFile(s.JournalPath()); err == nil {
		jr, jst := DecodeJournal(data)
		snap.Revoked = append(snap.Revoked, jr...)
		st.Revoked += len(jr)
		if jst.Truncated && !st.Truncated {
			st.Truncated, st.Reason = true, "journal: "+jst.Reason
		}
		st.Dropped += jst.Dropped
	}
	return snap, st
}

// DecodeJournal decodes an append-only revoked-set journal image,
// returning the longest valid prefix of revoked keys.
func DecodeJournal(data []byte) ([]string, DecodeStats) {
	var keys []string
	var st DecodeStats
	records, trunc := DecodeFile(data)
	st.Truncated = trunc != ""
	st.Reason = trunc
	for _, r := range records {
		if r.Kind != KindRevoked {
			st.Truncated, st.Reason = true, "non-revoked record in journal"
			return keys, st
		}
		var rv revokedRecord
		if err := json.Unmarshal(r.Payload, &rv); err != nil {
			st.Truncated, st.Reason = true, "malformed revoked record"
			return keys, st
		}
		keys = append(keys, rv.Keys...)
		st.Revoked += len(rv.Keys)
	}
	return keys, st
}

// openJournal opens the revoked-set journal for appending, repairing
// the tail first. A crash mid-append can leave a torn record — or even
// a zero-length or partial-header file, if the crash hit between
// create and header write — and blindly appending after that garbage
// would strand every later (durably fsync-acked) record behind bytes
// DecodeJournal stops at. So the first open validates the existing
// bytes and truncates the file to its longest valid prefix; when even
// the header is unusable the file is rewritten from scratch (empty or
// partial header) or moved aside to *.corrupt (wrong magic/version: a
// foreign file is preserved, not destroyed). Called with s.mu held.
func (s *Store) openJournal() error {
	path := s.JournalPath()
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	valid := ValidPrefixLen(data)
	if valid < 0 && len(data) >= headerSize {
		if err := os.Rename(path, path+".corrupt"); err != nil {
			return err
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	repaired := false
	if valid < 0 {
		if err := f.Truncate(0); err == nil {
			_, err = f.Write(Header())
		} else {
			f.Close()
			return err
		}
		if err != nil {
			f.Close()
			return err
		}
		repaired = len(data) > 0
	} else {
		if valid < len(data) {
			if err := f.Truncate(int64(valid)); err != nil {
				f.Close()
				return err
			}
			repaired = true
		}
		if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
			f.Close()
			return err
		}
	}
	if repaired {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	s.journal = f
	return nil
}

// AppendRevoked durably appends keys to the revoked-set journal and
// syncs before returning — by the time a fleet broadcast's HTTP
// response goes out, the revocation has hit the disk too. The journal
// only ever shrinks to drop a torn tail (see openJournal): a snapshot
// may lag (it is retaken on drain), but a revocation, once journaled
// and acked, survives any crash. Every failure (open, write, fsync)
// is counted in Stats.JournalErrors so callers that cannot propagate
// the error still leave an operator-visible signal.
func (s *Store) AppendRevoked(keys []string) error {
	if len(keys) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		if err := s.openJournal(); err != nil {
			s.journalErrors.Add(1)
			return err
		}
	}
	payload, _ := json.Marshal(revokedRecord{Keys: keys})
	if _, err := s.journal.Write(AppendRecord(nil, Record{Kind: KindRevoked, Payload: payload})); err != nil {
		// A partial write leaves a torn tail; drop the handle so the
		// next append re-validates and truncates before writing.
		s.journal.Close()
		s.journal = nil
		s.journalErrors.Add(1)
		return err
	}
	if err := s.journal.Sync(); err != nil {
		s.journal.Close()
		s.journal = nil
		s.journalErrors.Add(1)
		return err
	}
	s.journaled.Add(int64(len(keys)))
	return nil
}

// NoteLoad records what a boot-time restore accepted and rejected so
// the numbers show up in /metrics.
func (s *Store) NoteLoad(inserted, rejected int) {
	s.loaded.Add(int64(inserted))
	s.rejected.Add(int64(rejected))
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Loaded:         s.loaded.Load(),
		Rejected:       s.rejected.Load(),
		Entries:        s.entries.Load(),
		Saves:          s.saves.Load(),
		SaveErrors:     s.saveErrors.Load(),
		JournalRecords: s.journaled.Load(),
		JournalErrors:  s.journalErrors.Load(),
	}
}

// Close releases the journal handle. Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return nil
	}
	err := s.journal.Close()
	s.journal = nil
	return err
}
