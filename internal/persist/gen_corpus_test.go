package persist

import (
	"fmt"
	"os"
	"strconv"
	"testing"
)

// TestGenFuzzCorpus regenerates the committed seed corpus for
// FuzzSnapshotCorruption under testdata/fuzz (the directory `go test
// -fuzz` merges with its own cache). Guarded: only runs when
// SCAF_GEN_CORPUS=1. Regenerate whenever the snapshot format changes.
func TestGenFuzzCorpus(t *testing.T) {
	if os.Getenv("SCAF_GEN_CORPUS") != "1" {
		t.Skip("set SCAF_GEN_CORPUS=1 to regenerate the corpus")
	}
	dir := "testdata/fuzz/FuzzSnapshotCorruption"
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	snap, _ := fuzzSnapshot()
	for i, seed := range fuzzSeeds(Encode(snap)) {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n"
		name := fmt.Sprintf("%s/seed-%02d", dir, i)
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
