// Package persist is the durable tier under the fleet cache: it
// snapshots a shard's canonical entries to disk on drain (and
// optionally on a timer) and loads them on boot, so a rolling restart
// starts warm instead of re-paying the full dependence-analysis cost.
//
// The design rides on the same property as the fleet tier itself: every
// persisted value is a canonical entry whose key embeds everything that
// could change the answer (digest|scheme|quarantine-fingerprint|query),
// so a stale record can only fail to match — a miss — never answer
// wrongly. What persistence must add is protection against the disk
// lying: a truncated, bit-flipped, spliced, or wrong-version file must
// also degrade to misses. Every load therefore re-validates end-to-end:
//
//  1. header magic + version — wrong file or format: reject everything;
//  2. per-record length framing with a hard size bound — a corrupt
//     length cannot force a huge allocation;
//  3. per-record CRC32 over the payload — framing-level corruption
//     stops the read at the longest valid prefix (append-only files
//     torn mid-record lose only the tail);
//  4. per-entry inner CRC32 over key/value/asserts, stored inside the
//     payload — a mutation would have to forge two independent
//     checksums to smuggle a changed entry through;
//  5. the key fingerprint shape check — an entry whose key does not
//     look like a fleet key is dropped (skip, not stop: shape is a
//     semantic filter, not evidence the file is torn).
//
// Structural violations (2–3) end the read; semantic filters (5) skip
// the record and continue. Either way the result is a subset of what
// was written, and Restore re-applies the revoked-set check on top, so
// the worst a corrupt snapshot can do is start cold.
package persist

import (
	"encoding/binary"
	"hash/crc32"
)

const (
	// magic identifies a persist file; version gates the format.
	magic   = "SCAFSNAP"
	Version = 1

	// headerSize is magic + uint32 version.
	headerSize = len(magic) + 4

	// frameSize is the per-record prefix: kind byte, payload length,
	// payload CRC32 (IEEE).
	frameSize = 1 + 4 + 4

	// MaxRecord bounds one record's payload so a corrupt length field
	// cannot force a huge allocation. Matches the fleet peer-body cap.
	MaxRecord = 32 << 20
)

// Record kinds. Unknown kinds stop a read (a torn or foreign file, not
// a future format — versions gate those).
const (
	KindEntry    byte = 'e' // one fleet cache entry
	KindRevoked  byte = 'r' // a batch of revoked assertion keys
	KindJournal  byte = 'j' // one router journal mutation
	KindSessions byte = 's' // router session→loops map record
	KindMembers  byte = 'm' // one router fleet-membership record (id=url)
)

// Record is one framed unit in a persist file.
type Record struct {
	Kind    byte
	Payload []byte
}

// Header returns the 12-byte file header.
func Header() []byte {
	h := make([]byte, headerSize)
	copy(h, magic)
	binary.LittleEndian.PutUint32(h[len(magic):], Version)
	return h
}

// AppendRecord appends r's framed bytes to dst and returns the result.
func AppendRecord(dst []byte, r Record) []byte {
	var frame [frameSize]byte
	frame[0] = r.Kind
	binary.LittleEndian.PutUint32(frame[1:5], uint32(len(r.Payload)))
	binary.LittleEndian.PutUint32(frame[5:9], crc32.ChecksumIEEE(r.Payload))
	dst = append(dst, frame[:]...)
	return append(dst, r.Payload...)
}

// EncodeFile frames records into a complete file image (header first).
func EncodeFile(records []Record) []byte {
	out := Header()
	for _, r := range records {
		out = AppendRecord(out, r)
	}
	return out
}

// ValidPrefixLen returns the byte length of the longest decodable
// prefix of data — the header plus every complete, checksum-valid
// frame — or -1 when the header itself is absent or invalid (short
// file, bad magic, unsupported version), meaning no prefix is
// salvageable. Append-only writers use it to repair a torn tail
// before appending: bytes past the valid prefix would otherwise
// strand every later record behind garbage DecodeFile stops at.
func ValidPrefixLen(data []byte) int {
	if len(data) < headerSize || string(data[:len(magic)]) != magic ||
		binary.LittleEndian.Uint32(data[len(magic):headerSize]) != Version {
		return -1
	}
	off := headerSize
	for len(data)-off >= frameSize {
		n := binary.LittleEndian.Uint32(data[off+1 : off+5])
		sum := binary.LittleEndian.Uint32(data[off+5 : off+9])
		body := off + frameSize
		if n > MaxRecord || uint32(len(data)-body) < n {
			break
		}
		if crc32.ChecksumIEEE(data[body:body+int(n)]) != sum {
			break
		}
		off = body + int(n)
	}
	return off
}

// DecodeFile returns the longest valid prefix of records in data and,
// when the read stopped early, a non-empty reason. A bad header rejects
// the whole file; a bad frame, oversized length, or CRC mismatch stops
// at that record — everything before it is intact by checksum.
func DecodeFile(data []byte) (records []Record, trunc string) {
	if len(data) < headerSize {
		return nil, "short header"
	}
	if string(data[:len(magic)]) != magic {
		return nil, "bad magic"
	}
	if v := binary.LittleEndian.Uint32(data[len(magic):headerSize]); v != Version {
		return nil, "unsupported version"
	}
	off := headerSize
	for off < len(data) {
		if len(data)-off < frameSize {
			return records, "torn frame"
		}
		kind := data[off]
		n := binary.LittleEndian.Uint32(data[off+1 : off+5])
		sum := binary.LittleEndian.Uint32(data[off+5 : off+9])
		off += frameSize
		if n > MaxRecord {
			return records, "oversized record"
		}
		if uint32(len(data)-off) < n {
			return records, "torn payload"
		}
		payload := data[off : off+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			return records, "record checksum mismatch"
		}
		records = append(records, Record{Kind: kind, Payload: payload})
		off += int(n)
	}
	return records, ""
}
