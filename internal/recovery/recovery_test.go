package recovery

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"scaf/internal/core"
	"scaf/internal/ir"
)

// fakeModule returns canned responses.
type fakeModule struct {
	core.BaseModule
	name    string
	kind    core.ModuleKind
	alias   func(q *core.AliasQuery, h core.Handle) core.AliasResponse
	queried int
}

func (f *fakeModule) Name() string          { return f.name }
func (f *fakeModule) Kind() core.ModuleKind { return f.kind }

func (f *fakeModule) Alias(q *core.AliasQuery, h core.Handle) core.AliasResponse {
	f.queried++
	if f.alias == nil {
		return core.MayAliasResponse()
	}
	return f.alias(q, h)
}

type capsModule struct {
	fakeModule
	core.NoAliasOnly
}

func aqN(i int64) *core.AliasQuery {
	return &core.AliasQuery{
		L1: core.MemLoc{Ptr: ir.CI(2*i + 1), Size: 8},
		L2: core.MemLoc{Ptr: ir.CI(2*i + 2), Size: 8},
	}
}

func TestQuarantineBasics(t *testing.T) {
	q := New()
	if !q.Empty() {
		t.Fatal("fresh quarantine not empty")
	}
	if !q.AddAssert("a1", "violated") {
		t.Error("first AddAssert should report newly added")
	}
	if q.AddAssert("a1", "violated again") {
		t.Error("repeat AddAssert should not report newly added")
	}
	q.AddModule("chaos", "panicked")
	if q.Empty() {
		t.Error("non-empty quarantine reports Empty")
	}
	if !q.RevokedAssert("a1") || q.RevokedAssert("a2") {
		t.Error("RevokedAssert wrong")
	}
	if !q.ModuleQuarantined("chaos") || q.ModuleQuarantined("other") {
		t.Error("ModuleQuarantined wrong")
	}
	s := q.Snapshot()
	if !reflect.DeepEqual(s.Asserts, []string{"a1"}) || !reflect.DeepEqual(s.Modules, []string{"chaos"}) {
		t.Errorf("snapshot = %+v", s)
	}
	if s.Repeats != 1 {
		t.Errorf("repeats = %d, want 1", s.Repeats)
	}
	if len(s.Events) != 2 || s.Events[0].Kind != "assert" || s.Events[1].Kind != "module" {
		t.Errorf("events = %+v", s.Events)
	}
	if got := q.AssertKeys(); !reflect.DeepEqual(got, []string{"a1"}) {
		t.Errorf("AssertKeys = %v", got)
	}
}

func TestQuarantineEventCap(t *testing.T) {
	q := New()
	for i := 0; i < MaxEvents+10; i++ {
		q.AddAssert(fmt.Sprintf("a%d", i), "")
	}
	s := q.Snapshot()
	if len(s.Events) != MaxEvents {
		t.Errorf("events = %d, want cap %d", len(s.Events), MaxEvents)
	}
	if s.EventsDropped != 10 {
		t.Errorf("dropped = %d, want 10", s.EventsDropped)
	}
}

// With an empty quarantine the filter must be a byte-exact pass-through —
// same response, same option slice — or wrapped sessions would drift from
// unwrapped ones.
func TestFilterEmptyQuarantinePassThrough(t *testing.T) {
	orig := core.AliasSpec(core.NoAlias, "spec", core.Assertion{Module: "spec", Kind: "k", Cost: 1})
	m := &fakeModule{name: "spec", kind: core.Speculation,
		alias: func(q *core.AliasQuery, h core.Handle) core.AliasResponse { return orig }}
	wrapped := Wrap([]core.Module{m}, New())[0]
	got := wrapped.Alias(aqN(1), core.NoHelp{})
	if !reflect.DeepEqual(got, orig) {
		t.Errorf("response changed: %+v", got)
	}
	if &got.Options[0] != &orig.Options[0] {
		t.Error("options slice reallocated on the empty-quarantine path")
	}
	if wrapped.Name() != "spec" || wrapped.Kind() != core.Speculation {
		t.Error("Name/Kind not forwarded")
	}
}

func TestFilterDropsQuarantinedOptions(t *testing.T) {
	aBad := core.Assertion{Module: "spec", Kind: "bad", Cost: 1}
	aOK := core.Assertion{Module: "spec", Kind: "ok", Cost: 2}
	m := &fakeModule{name: "spec", alias: func(q *core.AliasQuery, h core.Handle) core.AliasResponse {
		return core.AliasResponse{
			Result:   core.NoAlias,
			Options:  []core.Option{{Asserts: []core.Assertion{aBad}}, {Asserts: []core.Assertion{aOK}}},
			Contribs: []string{"spec"},
		}
	}}
	qr := New()
	qr.AddAssert(aBad.String(), "violated")
	wrapped := Wrap([]core.Module{m}, qr)[0]

	got := wrapped.Alias(aqN(1), core.NoHelp{})
	if got.Result != core.NoAlias || len(got.Options) != 1 {
		t.Fatalf("got %+v, want NoAlias with one surviving option", got)
	}
	if got.Options[0].Asserts[0].Kind != "ok" {
		t.Errorf("surviving option = %+v", got.Options[0])
	}

	// Quarantining the other assertion as well leaves nothing: the answer
	// degrades to the conservative one.
	qr.AddAssert(aOK.String(), "violated")
	got = wrapped.Alias(aqN(1), core.NoHelp{})
	if got.Result != core.MayAlias {
		t.Errorf("result = %s, want MayAlias once every option is quarantined", got.Result)
	}
	if qr.Snapshot().OptionsFiltered != 3 {
		t.Errorf("OptionsFiltered = %d, want 3", qr.Snapshot().OptionsFiltered)
	}
}

func TestFilterModuleQuarantineShortCircuits(t *testing.T) {
	m := &fakeModule{name: "spec", alias: func(q *core.AliasQuery, h core.Handle) core.AliasResponse {
		return core.AliasFact(core.NoAlias, "spec")
	}}
	qr := New()
	qr.AddModule("spec", "panicked")
	wrapped := Wrap([]core.Module{m}, qr)[0]
	got := wrapped.Alias(aqN(1), core.NoHelp{})
	if got.Result != core.MayAlias {
		t.Errorf("result = %s, want conservative", got.Result)
	}
	if m.queried != 0 {
		t.Error("quarantined module must never be re-entered")
	}
	if qr.Snapshot().ModuleSkips != 1 {
		t.Errorf("ModuleSkips = %d", qr.Snapshot().ModuleSkips)
	}
}

// Options from other modules that are predicated on a quarantined module's
// assertions are dropped too.
func TestFilterDropsQuarantinedModuleAsserts(t *testing.T) {
	a := core.Assertion{Module: "chaos", Kind: "lie", Cost: 1}
	relay := &fakeModule{name: "relay", alias: func(q *core.AliasQuery, h core.Handle) core.AliasResponse {
		return core.AliasSpec(core.NoAlias, "relay", a)
	}}
	qr := New()
	qr.AddModule("chaos", "panicked")
	wrapped := Wrap([]core.Module{relay}, qr)[0]
	if got := wrapped.Alias(aqN(1), core.NoHelp{}); got.Result != core.MayAlias {
		t.Errorf("result = %s, want MayAlias (option predicated on quarantined module)", got.Result)
	}
}

func TestFilterPreservesAliasCaps(t *testing.T) {
	withCaps := &capsModule{fakeModule: fakeModule{name: "caps"}}
	without := &fakeModule{name: "plain"}
	wrapped := Wrap([]core.Module{withCaps, without}, New())
	if c, ok := wrapped[0].(core.AliasCaps); !ok {
		t.Error("caps-declaring module lost AliasCaps")
	} else if c.CanAnswerAlias(core.WantMustAlias) {
		t.Error("caps not forwarded (NoAliasOnly must refuse WantMustAlias)")
	}
	if _, ok := wrapped[1].(core.AliasCaps); ok {
		t.Error("plain module gained AliasCaps")
	}
}

// Chaos decisions must be pure functions of (seed, query): two instances
// with the same seed agree on every query, a different seed disagrees
// somewhere, and repeated evaluation is stable.
func TestChaosDeterminism(t *testing.T) {
	mk := func(seed uint64) *Chaos { return &Chaos{Seed: seed, WrongEvery: 3} }
	c1, c2, c3 := mk(7), mk(7), mk(8)
	same, diff := true, false
	for i := int64(0); i < 200; i++ {
		q := aqN(i)
		r1 := c1.Alias(q, core.NoHelp{})
		r2 := c2.Alias(q, core.NoHelp{})
		if !reflect.DeepEqual(r1, r2) {
			same = false
		}
		if !reflect.DeepEqual(r1, c1.Alias(q, core.NoHelp{})) {
			t.Fatalf("query %d: unstable across repeated evaluation", i)
		}
		if !reflect.DeepEqual(r1, c3.Alias(q, core.NoHelp{})) {
			diff = true
		}
	}
	if !same {
		t.Error("same seed produced different answers")
	}
	if !diff {
		t.Error("different seeds never diverged (injection likely inert)")
	}
	if c1.Wrongs.Load() == 0 {
		t.Error("no wrong answers injected at WrongEvery=3")
	}
}

func TestChaosPanicsDeterministically(t *testing.T) {
	c := &Chaos{Seed: 1, PanicEvery: 2}
	panicked := map[int64]bool{}
	for i := int64(0); i < 50; i++ {
		func() {
			defer func() {
				if recover() != nil {
					panicked[i] = true
				}
			}()
			c.Alias(aqN(i), core.NoHelp{})
		}()
	}
	if len(panicked) == 0 || len(panicked) == 50 {
		t.Fatalf("panicked on %d/50 queries; want a deterministic subset", len(panicked))
	}
	c2 := &Chaos{Seed: 1, PanicEvery: 2}
	for i := int64(0); i < 50; i++ {
		got := func() (p bool) {
			defer func() { p = recover() != nil }()
			c2.Alias(aqN(i), core.NoHelp{})
			return
		}()
		if got != panicked[i] {
			t.Fatalf("query %d: panic decision not reproducible", i)
		}
	}
}

// End to end at the orchestrator level: quarantining a speculation
// module's assertion makes a wrapped run answer exactly like a run whose
// module never offered it.
func TestWrappedOrchestratorMatchesExclusion(t *testing.T) {
	q1 := aqN(1)
	a := core.Assertion{Module: "spec", Kind: "k", Cost: 5}
	mkSpec := func(offer bool) *fakeModule {
		return &fakeModule{name: "spec", alias: func(qq *core.AliasQuery, h core.Handle) core.AliasResponse {
			if offer {
				return core.AliasSpec(core.NoAlias, "spec", a)
			}
			return core.MayAliasResponse()
		}}
	}
	qr := New()
	qr.AddAssert(a.String(), "violated")
	degraded := core.NewOrchestrator(core.Config{
		Modules:     []core.Module{mkSpec(true)},
		WrapModules: Wrapper(qr),
	})
	reference := core.NewOrchestrator(core.Config{Modules: []core.Module{mkSpec(false)}})
	got, want := degraded.Alias(q1), reference.Alias(q1)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("degraded = %+v, reference = %+v", got, want)
	}
}

// Under -race: concurrent orchestrator traffic through wrapped modules
// while a goroutine quarantines. Invariant: an assertion quarantined
// before a query starts never appears in that query's answer.
func TestFilterQuarantineRace(t *testing.T) {
	const nAsserts = 32
	asserts := make([]core.Assertion, nAsserts)
	keys := make([]string, nAsserts)
	for i := range asserts {
		asserts[i] = core.Assertion{Module: "spec", Kind: fmt.Sprintf("r%d", i), Cost: 1}
		keys[i] = asserts[i].String()
	}
	qr := New()
	sc := core.NewSharedCache()
	sc.SetRevoker(qr)

	mint := func() *core.Orchestrator {
		m := &fakeModule{name: "spec", alias: func(qq *core.AliasQuery, h core.Handle) core.AliasResponse {
			i := qq.L1.Size % nAsserts // size encodes the assertion index
			return core.AliasSpec(core.NoAlias, "spec", asserts[i])
		}}
		return core.NewOrchestrator(core.Config{
			Modules:     []core.Module{m},
			Shared:      sc,
			WrapModules: Wrapper(qr),
		})
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			o := mint()
			for it := 0; ; it++ {
				select {
				case <-stop:
					return
				default:
				}
				i := (it*5 + w) % nAsserts
				revokedBefore := qr.RevokedAssert(keys[i])
				q := aqN(int64(i))
				q.L1.Size = int64(i)
				r := o.Alias(q)
				if !revokedBefore {
					continue
				}
				for _, opt := range r.Options {
					for _, got := range opt.Asserts {
						if got.String() == keys[i] {
							t.Errorf("answer predicated on assertion quarantined before the query started")
							return
						}
					}
				}
			}
		}(w)
	}
	for i := 0; i < nAsserts; i++ {
		qr.AddAssert(keys[i], "violated")
		sc.InvalidateAsserts([]string{keys[i]})
	}
	close(stop)
	wg.Wait()
}
