// Package recovery closes SCAF's misspeculation loop: when production
// execution disproves a speculative assertion (or a module misbehaves
// outright), the quarantine withdraws exactly the analysis answers that
// were predicated on it, and the module filter guarantees the withdrawn
// speculation is never offered again — so a recovered session is
// answer-identical to a cold analysis run with the quarantined assertions
// excluded from the plan.
package recovery

import (
	"sort"
	"sync"
	"sync/atomic"
)

// MaxEvents bounds the quarantine's event log; later events are counted in
// Snapshot.EventsDropped instead of retained.
const MaxEvents = 256

// Event records one quarantine action.
type Event struct {
	// Kind is "assert" or "module".
	Kind string `json:"kind"`
	// Key is the assertion's wire identity (Assertion.String()) or the
	// module name.
	Key string `json:"key"`
	// Detail is caller-provided context (e.g. the violation detail or the
	// recovered panic value).
	Detail string `json:"detail,omitempty"`
	// Seq orders events within one quarantine.
	Seq int64 `json:"seq"`
}

// Quarantine is a monotonic set of withdrawn assertions and modules. It
// implements core.Revoker: once quarantined, an assertion stays
// quarantined, so a revocation observed before a cache lookup is
// guaranteed to make that lookup miss (the property the -race stress tests
// pin down). All methods are safe for concurrent use.
type Quarantine struct {
	// size counts quarantined asserts+modules; the Empty fast path reads
	// it without taking mu, so filters on the query hot path pay one
	// atomic load while the quarantine is empty.
	size atomic.Int64
	// optionsFiltered counts speculative options dropped because they
	// mentioned a quarantined assertion; moduleSkips counts evaluations of
	// quarantined modules short-circuited to the conservative answer.
	optionsFiltered atomic.Int64
	moduleSkips     atomic.Int64

	mu      sync.RWMutex
	asserts map[string]bool
	modules map[string]bool
	repeats int64
	seq     int64
	events  []Event
	dropped int64
}

// New returns an empty quarantine.
func New() *Quarantine {
	return &Quarantine{asserts: map[string]bool{}, modules: map[string]bool{}}
}

// AddAssert quarantines one assertion by its wire identity
// (core.Assertion.String()). It reports whether the key was newly added;
// re-quarantining counts as a repeat (flaky assertions violate on every
// observation) without growing the set.
func (q *Quarantine) AddAssert(key, detail string) bool {
	if key == "" {
		return false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.asserts[key] {
		q.repeats++
		return false
	}
	q.asserts[key] = true
	q.logEvent("assert", key, detail)
	q.size.Add(1)
	return true
}

// AddModule quarantines a whole module (typically after it panicked): the
// filter answers conservatively in its place and drops every option
// mentioning its assertions.
func (q *Quarantine) AddModule(name, detail string) bool {
	if name == "" {
		return false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.modules[name] {
		q.repeats++
		return false
	}
	q.modules[name] = true
	q.logEvent("module", name, detail)
	q.size.Add(1)
	return true
}

// logEvent appends under mu.
func (q *Quarantine) logEvent(kind, key, detail string) {
	q.seq++
	if len(q.events) >= MaxEvents {
		q.dropped++
		return
	}
	q.events = append(q.events, Event{Kind: kind, Key: key, Detail: detail, Seq: q.seq})
}

// Empty reports whether nothing is quarantined — the filter's fast path.
func (q *Quarantine) Empty() bool { return q.size.Load() == 0 }

// RevokedAssert implements core.Revoker.
func (q *Quarantine) RevokedAssert(key string) bool {
	if q.Empty() {
		return false
	}
	q.mu.RLock()
	defer q.mu.RUnlock()
	return q.asserts[key]
}

// ModuleQuarantined reports whether a module has been withdrawn.
func (q *Quarantine) ModuleQuarantined(name string) bool {
	if q.Empty() {
		return false
	}
	q.mu.RLock()
	defer q.mu.RUnlock()
	return q.modules[name]
}

// AssertKeys returns the quarantined assertion keys, sorted.
func (q *Quarantine) AssertKeys() []string {
	q.mu.RLock()
	out := make([]string, 0, len(q.asserts))
	for k := range q.asserts {
		out = append(out, k)
	}
	q.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Snapshot is a point-in-time copy of the quarantine's state for
// observability (the server's /metrics and /observe responses).
type Snapshot struct {
	Asserts []string `json:"asserts,omitempty"`
	Modules []string `json:"modules,omitempty"`
	// Repeats counts re-quarantine attempts of already-quarantined keys —
	// the flakiness signal.
	Repeats int64 `json:"repeats"`
	// OptionsFiltered counts speculative options the filter dropped.
	OptionsFiltered int64 `json:"options_filtered"`
	// ModuleSkips counts quarantined-module evaluations short-circuited.
	ModuleSkips int64 `json:"module_skips"`
	// Events is the capped action log; EventsDropped counts overflow.
	Events        []Event `json:"events,omitempty"`
	EventsDropped int64   `json:"events_dropped"`
}

// Snapshot returns a copy of the current state. Sorted and deterministic
// given a quiescent quarantine.
func (q *Quarantine) Snapshot() Snapshot {
	q.mu.RLock()
	s := Snapshot{
		Asserts:       make([]string, 0, len(q.asserts)),
		Modules:       make([]string, 0, len(q.modules)),
		Repeats:       q.repeats,
		Events:        append([]Event(nil), q.events...),
		EventsDropped: q.dropped,
	}
	for k := range q.asserts {
		s.Asserts = append(s.Asserts, k)
	}
	for m := range q.modules {
		s.Modules = append(s.Modules, m)
	}
	q.mu.RUnlock()
	sort.Strings(s.Asserts)
	sort.Strings(s.Modules)
	s.OptionsFiltered = q.optionsFiltered.Load()
	s.ModuleSkips = q.moduleSkips.Load()
	return s
}
