package recovery

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// This file is the quarantine's fleet seam: a content fingerprint that
// names the recovery state an answer was produced under, and the
// fold-in operation a replicated recovery event applies. Together they
// give a fleet of instances the single-process guarantee — an assertion
// violated anywhere is revoked everywhere before the violating request
// is answered, and cache keys carrying the fingerprint can only match
// between instances in identical recovery states.

// Fingerprint returns a stable, order-independent content hash of the
// quarantined assertion and module sets. Two quarantines — in different
// processes, built in different event orders — fingerprint equal exactly
// when they have withdrawn the same sets. Event details, repeats, and
// counters do not contribute: they describe how the state was reached,
// not what it withdraws.
func (q *Quarantine) Fingerprint() string {
	q.mu.RLock()
	defer q.mu.RUnlock()
	var h uint64
	for k := range q.asserts {
		h ^= fnvSum("a|" + k)
	}
	for m := range q.modules {
		h ^= fnvSum("m|" + m)
	}
	return fmt.Sprintf("%016x", h)
}

func fnvSum(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// MergeSnapshots unions the withdrawn sets of several quarantine
// snapshots into one (sorted, deduplicated; counters and event logs do
// not merge — they describe each instance's history, not the state).
// The fleet router uses it when re-syncing a joining or rejoining
// backend: because quarantine is monotone, the union over every live
// peer is always a safe target state, and it protects the sync against
// one peer that missed a broadcast — the others supply what it lacks.
func MergeSnapshots(snaps ...*Snapshot) Snapshot {
	asserts := map[string]bool{}
	modules := map[string]bool{}
	for _, s := range snaps {
		if s == nil {
			continue
		}
		for _, k := range s.Asserts {
			asserts[k] = true
		}
		for _, m := range s.Modules {
			modules[m] = true
		}
	}
	out := Snapshot{
		Asserts: make([]string, 0, len(asserts)),
		Modules: make([]string, 0, len(modules)),
	}
	for k := range asserts {
		out.Asserts = append(out.Asserts, k)
	}
	for m := range modules {
		out.Modules = append(out.Modules, m)
	}
	sort.Strings(out.Asserts)
	sort.Strings(out.Modules)
	return out
}

// ApplyRemote folds one replicated recovery event — assertion keys and
// module names quarantined on another instance — into this quarantine,
// recording the origin in the event log. It returns how many of each were
// newly withdrawn here; zero/zero means this instance had already
// observed everything (replication is idempotent).
func (q *Quarantine) ApplyRemote(asserts, modules []string, origin string) (newAsserts, newModules int) {
	detail := "fleet: replicated from " + origin
	for _, k := range asserts {
		if q.AddAssert(k, detail) {
			newAsserts++
		}
	}
	for _, m := range modules {
		if q.AddModule(m, detail) {
			newModules++
		}
	}
	return newAsserts, newModules
}
