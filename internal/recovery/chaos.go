package recovery

import (
	"fmt"
	"sync/atomic"
	"time"

	"scaf/internal/core"
	"scaf/internal/ir"
)

// NameChaos is the fault-injection module's name.
const NameChaos = "chaos"

// Chaos is a fault-injection module for the misspeculation recovery
// harness: depending on a per-query hash it emits confidently wrong
// speculative answers (predicated on its own assertions, so a recovery
// pass can quarantine them), panics (exercising the orchestrator's
// IsolatePanics path), or stalls (exercising timeout and concurrency
// paths). Every decision is a pure function of (Seed, query), never of
// consult order or timing, so serial, parallel, shared-cache, and cold
// re-analysis runs all see the same faults — the property the recovery
// equivalence tests rely on.
//
// The zero value injects nothing; the atomic counters make it safe to
// share across the workers of a pdg.ParallelClient.
type Chaos struct {
	core.BaseModule
	// Seed perturbs every decision hash.
	Seed uint64
	// WrongEvery, when > 0, answers roughly one query in WrongEvery with a
	// wrong speculative NoAlias/NoModRef predicated on a chaos assertion.
	WrongEvery uint64
	// PanicEvery, when > 0, panics on roughly one query in PanicEvery.
	PanicEvery uint64
	// DelayEvery, when > 0, sleeps Delay on roughly one query in
	// DelayEvery before answering.
	DelayEvery uint64
	// Delay is the injected stall (default 100µs when DelayEvery is set).
	Delay time.Duration

	// Wrongs, Panics and Delays count injected faults.
	Wrongs, Panics, Delays atomic.Int64
}

func (c *Chaos) Name() string          { return NameChaos }
func (c *Chaos) Kind() core.ModuleKind { return core.Speculation }

func (c *Chaos) Alias(q *core.AliasQuery, h core.Handle) core.AliasResponse {
	key := fmt.Sprintf("a|%s|%s|%d", q.L1, q.L2, q.Rel)
	hash := c.hash(key)
	c.maybeStall(hash)
	if c.PanicEvery > 0 && (hash/7)%c.PanicEvery == 0 {
		c.Panics.Add(1)
		panic(fmt.Sprintf("chaos: injected panic on %s", key))
	}
	if c.WrongEvery > 0 && (hash/13)%c.WrongEvery == 0 {
		c.Wrongs.Add(1)
		return core.AliasSpec(core.NoAlias, NameChaos, c.assertion(hash))
	}
	return core.MayAliasResponse()
}

func (c *Chaos) ModRef(q *core.ModRefQuery, h core.Handle) core.ModRefResponse {
	key := fmt.Sprintf("m|%s|%s|%s|%d", fmtInstr(q.I1), fmtInstr(q.I2), q.Loc, q.Rel)
	hash := c.hash(key)
	c.maybeStall(hash)
	if c.PanicEvery > 0 && (hash/7)%c.PanicEvery == 0 {
		c.Panics.Add(1)
		panic(fmt.Sprintf("chaos: injected panic on %s", key))
	}
	if c.WrongEvery > 0 && (hash/13)%c.WrongEvery == 0 {
		c.Wrongs.Add(1)
		return core.ModRefSpec(core.NoModRef, NameChaos, c.assertion(hash))
	}
	return core.ModRefConservative()
}

// assertion builds the lie's predicate. The hash lands in Kind so distinct
// lies carry distinct wire identities: quarantining one observed
// misspeculation never silences an unrelated one.
func (c *Chaos) assertion(hash uint64) core.Assertion {
	return core.Assertion{
		Module: NameChaos,
		Kind:   fmt.Sprintf("lie-%03x", hash%4096),
		Cost:   0.5, // cheap, so CHEAPEST joins prefer the lie
	}
}

func (c *Chaos) maybeStall(hash uint64) {
	if c.DelayEvery == 0 || (hash/3)%c.DelayEvery != 0 {
		return
	}
	c.Delays.Add(1)
	d := c.Delay
	if d <= 0 {
		d = 100 * time.Microsecond
	}
	time.Sleep(d)
}

// hash is FNV-1a over the query key, mixed with the seed.
func (c *Chaos) hash(key string) uint64 {
	h := uint64(1469598103934665603) ^ (c.Seed * 1099511628211)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * 1099511628211
	}
	return h
}

func fmtInstr(in *ir.Instr) string {
	if in == nil {
		return "?"
	}
	return in.String()
}
