package recovery

import "scaf/internal/core"

// Wrap interposes the quarantine on every module: evaluations of a
// quarantined module short-circuit to the conservative answer, and every
// response has options mentioning a quarantined assertion dropped before
// the orchestrator joins it. Filtering at the module boundary — not on the
// final joined answer — is what makes recovery equivalent to exclusion:
// join decisions (cheapest-option selection, conflict arbitration,
// Mod × Ref crossing) see exactly the option sets a run without the
// quarantined speculation would have seen.
//
// With an empty quarantine the wrappers are byte-exact pass-throughs
// (original response, original slices), so wrapping is safe to apply
// unconditionally: un-degraded sessions stay bit-identical to unwrapped
// runs. Name, Kind, and (when the wrapped module declares it)
// core.AliasCaps are forwarded, preserving premise routing and
// desired-result bail-outs.
//
// Intended use is core.Config.WrapModules (scaf.WithModuleWrapper), which
// applies after all other options have shaped the module list.
func Wrap(mods []core.Module, q *Quarantine) []core.Module {
	out := make([]core.Module, len(mods))
	for i, m := range mods {
		fm := filtered{inner: m, q: q}
		if _, ok := m.(core.AliasCaps); ok {
			out[i] = filteredCaps{fm}
		} else {
			out[i] = fm
		}
	}
	return out
}

// Wrapper returns a core.Config.WrapModules hook bound to q.
func Wrapper(q *Quarantine) func([]core.Module) []core.Module {
	return func(mods []core.Module) []core.Module { return Wrap(mods, q) }
}

// filtered is the quarantine-aware module proxy.
type filtered struct {
	inner core.Module
	q     *Quarantine
}

func (f filtered) Name() string          { return f.inner.Name() }
func (f filtered) Kind() core.ModuleKind { return f.inner.Kind() }

func (f filtered) Alias(q *core.AliasQuery, h core.Handle) core.AliasResponse {
	if f.q.Empty() {
		return f.inner.Alias(q, h)
	}
	if f.q.ModuleQuarantined(f.inner.Name()) {
		f.q.moduleSkips.Add(1)
		return core.MayAliasResponse()
	}
	resp := f.inner.Alias(q, h)
	opts, changed := f.filterOptions(resp.Options)
	if !changed {
		return resp
	}
	if len(opts) == 0 {
		// Every way to make the result hold was quarantined: the module
		// has nothing left to offer for this query.
		return core.MayAliasResponse()
	}
	resp.Options = opts
	return resp
}

func (f filtered) ModRef(q *core.ModRefQuery, h core.Handle) core.ModRefResponse {
	if f.q.Empty() {
		return f.inner.ModRef(q, h)
	}
	if f.q.ModuleQuarantined(f.inner.Name()) {
		f.q.moduleSkips.Add(1)
		return core.ModRefConservative()
	}
	resp := f.inner.ModRef(q, h)
	opts, changed := f.filterOptions(resp.Options)
	if !changed {
		return resp
	}
	if len(opts) == 0 {
		return core.ModRefConservative()
	}
	resp.Options = opts
	return resp
}

// filterOptions drops every option predicated on a quarantined assertion.
// When nothing drops it returns (nil, false) and the caller keeps the
// original slice, so untouched responses stay byte-identical.
func (f filtered) filterOptions(opts []core.Option) ([]core.Option, bool) {
	drop := -1
	for i, o := range opts {
		if f.optionQuarantined(o) {
			drop = i
			break
		}
	}
	if drop < 0 {
		return nil, false
	}
	out := make([]core.Option, 0, len(opts)-1)
	out = append(out, opts[:drop]...)
	f.q.optionsFiltered.Add(1)
	for _, o := range opts[drop+1:] {
		if f.optionQuarantined(o) {
			f.q.optionsFiltered.Add(1)
			continue
		}
		out = append(out, o)
	}
	return out, true
}

func (f filtered) optionQuarantined(o core.Option) bool {
	for _, a := range o.Asserts {
		if f.q.RevokedAssert(a.String()) || f.q.ModuleQuarantined(a.Module) {
			return true
		}
	}
	return false
}

// filteredCaps adds AliasCaps forwarding for modules that declare it.
type filteredCaps struct{ filtered }

func (f filteredCaps) CanAnswerAlias(d core.DesiredAlias) bool {
	return f.inner.(core.AliasCaps).CanAnswerAlias(d)
}
