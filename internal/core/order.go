package core

import "sort"

// Profile-guided module ordering. Under BailDefiniteAffordable the cost of
// a resolution is dominated by how many modules are consulted before one
// settles it (a definite answer whose cheapest option is affordable), so
// the expected evaluation count is minimized by consulting high-settle-rate
// modules first. An OrderProfile observes a training run through the Tracer
// seam and proposes such an order; because consult order is visible in
// answers (Contribs name the first settler, options differ across modules),
// a proposed order is only a *candidate* — callers must verify it
// reproduces the fixed schedule's answers exactly before adopting it
// (pdg.LearnOrder does; unverified adoption is unsound).
//
// The candidate only permutes modules within their ModuleKind block:
// memory-analysis modules stay ahead of speculation modules, preserving the
// paper's preference for free answers over speculative ones and keeping the
// candidate close enough to the fixed schedule that verification usually
// succeeds.

// moduleTally accumulates one module's consult outcomes.
type moduleTally struct {
	consults int64
	settles  int64
}

// OrderProfile is a Tracer that tallies, per module, how often a consult
// produced a definite, affordable answer. Attach it to one orchestrator
// (tracers are single-orchestrator), run a representative query universe,
// then ask Candidate for the proposed schedule.
type OrderProfile struct {
	tally map[string]*moduleTally
}

// NewOrderProfile returns an empty profile.
func NewOrderProfile() *OrderProfile {
	return &OrderProfile{tally: map[string]*moduleTally{}}
}

// TraceEvent implements Tracer. Only TraceConsult events are tallied.
func (p *OrderProfile) TraceEvent(ev TraceEvent) {
	if ev.Kind != TraceConsult {
		return
	}
	t := p.tally[ev.Module]
	if t == nil {
		t = &moduleTally{}
		p.tally[ev.Module] = t
	}
	t.consults++
	// A consult settles its resolution when the module's own answer is
	// definite and affordably validatable — the BailDefiniteAffordable
	// condition. Alias and mod-ref conservative points stringify to
	// distinct names, so one predicate covers both proposition kinds.
	if ev.Cost < Prohibitive && ev.Result != MayAlias.String() && ev.Result != ModRef.String() {
		t.settles++
	}
}

// rate returns the module's observed settle rate (0 when never consulted).
func (p *OrderProfile) rate(name string) float64 {
	t := p.tally[name]
	if t == nil || t.consults == 0 {
		return 0
	}
	return float64(t.settles) / float64(t.consults)
}

// Candidate proposes a consult order over mods: within each ModuleKind
// block, modules are stably sorted by descending settle rate; the blocks
// themselves keep their original relative order. The returned slice names
// every module in mods exactly once.
func (p *OrderProfile) Candidate(mods []Module) []string {
	blocks := make(map[ModuleKind][]string)
	var kinds []ModuleKind
	for _, m := range mods {
		k := m.Kind()
		if _, seen := blocks[k]; !seen {
			kinds = append(kinds, k)
		}
		blocks[k] = append(blocks[k], m.Name())
	}
	out := make([]string, 0, len(mods))
	for _, k := range kinds {
		names := blocks[k]
		sort.SliceStable(names, func(i, j int) bool {
			return p.rate(names[i]) > p.rate(names[j])
		})
		out = append(out, names...)
	}
	return out
}

// ModuleNames returns the modules' names in slice order.
func ModuleNames(mods []Module) []string {
	out := make([]string, len(mods))
	for i, m := range mods {
		out[i] = m.Name()
	}
	return out
}

// ReorderModules returns mods rearranged to follow order: modules named in
// order come first, in order's sequence; modules order does not mention
// keep their relative position after them; names in order that match no
// module are ignored. The input slice is not modified.
func ReorderModules(mods []Module, order []string) []Module {
	if len(order) == 0 {
		return mods
	}
	byName := make(map[string]Module, len(mods))
	for _, m := range mods {
		byName[m.Name()] = m
	}
	out := make([]Module, 0, len(mods))
	taken := make(map[string]bool, len(order))
	for _, n := range order {
		if m, ok := byName[n]; ok && !taken[n] {
			out = append(out, m)
			taken[n] = true
		}
	}
	for _, m := range mods {
		if !taken[m.Name()] {
			out = append(out, m)
		}
	}
	return out
}
