//go:build race

package core

// raceEnabled reports that this test binary was built with -race.
// Allocation-count assertions are skipped under the race detector: its
// instrumentation changes what escapes and what inlines, so
// testing.AllocsPerRun measures the instrumentation, not the code.
const raceEnabled = true
