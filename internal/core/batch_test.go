package core

import "testing"

// TestBatchMemoizesWithinNotAcross pins the batch-memo lifetime: inside one
// batch a repeated proposition is a memo hit; across BeginBatch/EndBatch
// boundaries nothing carries over, so each batch is a pure function of its
// own query set.
func TestBatchMemoizesWithinNotAcross(t *testing.T) {
	calls := 0
	m := &fakeModule{name: "m", alias: func(q *AliasQuery, h Handle) AliasResponse {
		calls++
		return AliasFact(NoAlias, "m")
	}}
	o := NewOrchestrator(Config{Modules: []Module{m}})
	q := aq()

	o.BeginBatch()
	o.Alias(q)
	o.Alias(q)
	o.EndBatch()
	if calls != 1 {
		t.Errorf("in-batch repeat consulted module %d times, want 1", calls)
	}
	if o.Stats().CacheHits != 1 {
		t.Errorf("cache hits = %d, want 1", o.Stats().CacheHits)
	}

	// Outside any batch: no memoization at all.
	o.Alias(q)
	o.Alias(q)
	if calls != 3 {
		t.Errorf("unbatched queries consulted module %d times total, want 3", calls)
	}

	// A second batch starts cold.
	o.BeginBatch()
	o.Alias(q)
	o.EndBatch()
	if calls != 4 {
		t.Errorf("new batch should not see the previous batch's memo (calls=%d, want 4)", calls)
	}
}

// TestBatchTablesReset proves the pooled tables' cleared-on-return
// invariant: EndBatch clears the tables before handing them back, so no
// proposition resolved in one batch can surface anywhere else.
func TestBatchTablesReset(t *testing.T) {
	m := &fakeModule{name: "m", alias: func(q *AliasQuery, h Handle) AliasResponse {
		return AliasFact(NoAlias, "m")
	}}
	o := NewOrchestrator(Config{Modules: []Module{m}})
	o.BeginBatch()
	o.Alias(aq())
	tab := o.batch
	if tab == nil || len(tab.a) == 0 {
		t.Fatal("batch resolution did not memoize into the batch tables")
	}
	o.EndBatch()
	if len(tab.a) != 0 || len(tab.m) != 0 {
		t.Fatalf("EndBatch returned dirty tables to the pool: %d alias, %d modref entries",
			len(tab.a), len(tab.m))
	}
	if o.cacheA != nil || o.cacheM != nil || o.batch != nil {
		t.Fatal("orchestrator still armed after EndBatch")
	}
}

// TestBatchNesting: nested Begin/End pairs flatten — only the outermost
// pair arms and disarms, so ResolveLoop composes with an enclosing batch.
func TestBatchNesting(t *testing.T) {
	calls := 0
	m := &fakeModule{name: "m", alias: func(q *AliasQuery, h Handle) AliasResponse {
		calls++
		return AliasFact(NoAlias, "m")
	}}
	o := NewOrchestrator(Config{Modules: []Module{m}})
	q := aq()
	o.BeginBatch()
	o.BeginBatch()
	o.Alias(q)
	o.EndBatch() // inner: must NOT disarm
	o.Alias(q)
	if calls != 1 {
		t.Errorf("inner EndBatch disarmed the enclosing batch (calls=%d, want 1)", calls)
	}
	o.EndBatch()
	if o.batch != nil {
		t.Fatal("outer EndBatch left the batch armed")
	}
	// Stray EndBatch is a no-op.
	o.EndBatch()
}

// TestBatchNoopUnderLifetimeCache: with Config.EnableCache the lifetime
// memo subsumes batching — Begin/EndBatch must not clear or replace it.
func TestBatchNoopUnderLifetimeCache(t *testing.T) {
	calls := 0
	m := &fakeModule{name: "m", alias: func(q *AliasQuery, h Handle) AliasResponse {
		calls++
		return AliasFact(NoAlias, "m")
	}}
	o := NewOrchestrator(Config{Modules: []Module{m}, EnableCache: true})
	q := aq()
	o.BeginBatch()
	o.Alias(q)
	o.EndBatch()
	o.Alias(q) // must hit the lifetime cache, not a cleared table
	if calls != 1 {
		t.Errorf("EndBatch damaged the lifetime cache (calls=%d, want 1)", calls)
	}
}
