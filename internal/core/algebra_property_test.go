package core

import (
	"math/rand"
	"testing"

	"scaf/internal/ir"
)

// genOptions builds a random option set over a small assertion vocabulary,
// including conflicting pairs (shared conflict points).
func genOptions(rng *rand.Rand, points []Point) []Option {
	nOpts := 1 + rng.Intn(3)
	out := make([]Option, 0, nOpts)
	for i := 0; i < nOpts; i++ {
		var o Option
		for a := 0; a < rng.Intn(3); a++ {
			as := Assertion{
				Module: []string{"m1", "m2", "m3"}[rng.Intn(3)],
				Kind:   []string{"k1", "k2"}[rng.Intn(2)],
				Cost:   float64(rng.Intn(5)),
			}
			if rng.Intn(2) == 0 {
				as.Points = []Point{points[rng.Intn(len(points))]}
			}
			if rng.Intn(3) == 0 {
				as.Conflicts = []Point{points[rng.Intn(len(points))]}
			}
			o.Asserts = append(o.Asserts, as)
		}
		out = append(out, o)
	}
	return out
}

func optionSetKeys(s []Option) map[string]bool {
	out := map[string]bool{}
	for _, o := range s {
		out[o.String()] = true
	}
	return out
}

func sameOptionSet(a, b []Option) bool {
	ka, kb := optionSetKeys(a), optionSetKeys(b)
	if len(ka) != len(kb) {
		return false
	}
	for k := range ka {
		if !kb[k] {
			return false
		}
	}
	return true
}

func testPoints() []Point {
	g1 := &ir.Global{GName: "p1", Elem: ir.Int}
	g2 := &ir.Global{GName: "p2", Elem: ir.Int}
	g3 := &ir.Global{GName: "p3", Elem: ir.Int}
	return []Point{{G: g1}, {G: g2}, {G: g3}}
}

// TestUnionProperties: commutative, idempotent, preserves membership.
func TestUnionProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := testPoints()
	for trial := 0; trial < 200; trial++ {
		s1 := genOptions(rng, pts)
		s2 := genOptions(rng, pts)
		u12 := UnionOptions(s1, s2)
		u21 := UnionOptions(s2, s1)
		if !sameOptionSet(u12, u21) {
			t.Fatalf("union not commutative:\n%v\n%v", u12, u21)
		}
		if !sameOptionSet(UnionOptions(s1, s1), dedupeOptions(s1)) {
			t.Fatalf("union not idempotent")
		}
		keys := optionSetKeys(u12)
		for _, o := range append(append([]Option{}, s1...), s2...) {
			if !keys[o.String()] {
				t.Fatalf("union lost member %v", o)
			}
		}
	}
}

// TestCrossProperties: commutative up to option content; every surviving
// combination is conflict-free and its cost is at most the sum of parts
// (deduplication can only lower it).
func TestCrossProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := testPoints()
	for trial := 0; trial < 200; trial++ {
		s1 := genOptions(rng, pts)
		s2 := genOptions(rng, pts)
		c12 := CrossOptions(s1, s2)
		c21 := CrossOptions(s2, s1)
		if !sameOptionSet(c12, c21) {
			t.Fatalf("cross not commutative")
		}
		if OptionsConflict(s1, s2) != (len(c12) == 0) {
			t.Fatalf("OptionsConflict disagrees with empty cross")
		}
		// Cost bound and internal consistency of each combination.
		maxCost := 0.0
		for _, o1 := range s1 {
			for _, o2 := range s2 {
				if c := o1.Cost() + o2.Cost(); c > maxCost {
					maxCost = c
				}
			}
		}
		for _, o := range c12 {
			if o.Cost() > maxCost+1e-9 {
				t.Fatalf("cross option costs %g > max %g", o.Cost(), maxCost)
			}
			taken := map[Point]string{}
			for _, a := range o.Asserts {
				for _, cp := range a.Conflicts {
					if owner, clash := taken[cp]; clash && owner != a.key() {
						t.Fatalf("conflicting assertions survived the cross: %v", o)
					}
					taken[cp] = a.key()
				}
			}
		}
	}
}

// TestCheapestOf returns a member with minimal cost.
func TestCheapestOfProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := testPoints()
	for trial := 0; trial < 200; trial++ {
		s := genOptions(rng, pts)
		c := CheapestOf(s)
		if len(c) != 1 {
			t.Fatalf("CheapestOf size %d", len(c))
		}
		for _, o := range s {
			if c[0].Cost() > o.Cost()+1e-9 {
				t.Fatalf("not cheapest: %g > %g", c[0].Cost(), o.Cost())
			}
		}
	}
}

// randResp builds a random alias response.
func randResp(rng *rand.Rand, pts []Point) AliasResponse {
	results := []AliasResult{MayAlias, PartialAlias, SubAlias, MustAlias, NoAlias}
	r := AliasResponse{Result: results[rng.Intn(len(results))]}
	if rng.Intn(3) == 0 {
		r.Options = Unconditional()
	} else {
		r.Options = genOptions(rng, pts)
	}
	return r
}

// TestJoinMonotone: joining can never lose precision, and the result's
// precision equals the max of the operands'.
func TestJoinMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := testPoints()
	o := NewOrchestrator(Config{})
	for trial := 0; trial < 500; trial++ {
		r1 := randResp(rng, pts)
		r2 := randResp(rng, pts)
		j := o.joinAlias(r1, r2)
		maxPr := aliasPrecision(r1.Result)
		if p := aliasPrecision(r2.Result); p > maxPr {
			maxPr = p
		}
		if aliasPrecision(j.Result) != maxPr {
			t.Fatalf("join precision %d, want %d (%s + %s = %s)",
				aliasPrecision(j.Result), maxPr, r1.Result, r2.Result, j.Result)
		}
	}
}

// TestModRefJoinLattice: the Mod x Ref cross and the precision order.
func TestModRefJoinLattice(t *testing.T) {
	o := NewOrchestrator(Config{})
	mk := func(r ModRefResult) ModRefResponse {
		return ModRefResponse{Result: r, Options: Unconditional()}
	}
	cases := []struct {
		a, b, want ModRefResult
	}{
		{ModRef, ModRef, ModRef},
		{ModRef, Mod, Mod},
		{ModRef, Ref, Ref},
		{ModRef, NoModRef, NoModRef},
		{Mod, Ref, NoModRef}, // the special cross
		{Ref, Mod, NoModRef},
		{Mod, Mod, Mod},
		{Ref, Ref, Ref},
		{NoModRef, Mod, NoModRef},
	}
	for _, c := range cases {
		if got := o.joinModRef(mk(c.a), mk(c.b)); got.Result != c.want {
			t.Errorf("join(%s, %s) = %s, want %s", c.a, c.b, got.Result, c.want)
		}
	}
}

// TestMergeContribsProperties: dedupe + sorted.
func TestMergeContribsProperties(t *testing.T) {
	got := MergeContribs([]string{"b", "a"}, []string{"a", "c"}, nil, []string{"b"})
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
