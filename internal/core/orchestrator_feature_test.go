package core

import (
	"testing"
	"time"
)

func TestCacheHitsAndStability(t *testing.T) {
	calls := 0
	m := &fakeModule{name: "m", alias: func(q *AliasQuery, h Handle) AliasResponse {
		calls++
		return AliasFact(NoAlias, "m")
	}}
	o := NewOrchestrator(Config{Modules: []Module{m}, EnableCache: true})
	q := aq()
	r1 := o.Alias(q)
	r2 := o.Alias(q)
	if calls != 1 {
		t.Errorf("module consulted %d times, want 1", calls)
	}
	if o.Stats().CacheHits != 1 {
		t.Errorf("cache hits = %d", o.Stats().CacheHits)
	}
	if r1.Result != r2.Result || r1.Result != NoAlias {
		t.Errorf("cached result differs: %s vs %s", r1.Result, r2.Result)
	}
	// A different proposition misses.
	q2 := aq()
	q2.L1.Size = 16
	o.Alias(q2)
	if calls != 2 {
		t.Errorf("distinct query should miss the cache")
	}
	// Without the flag, no memoization.
	calls = 0
	o2 := NewOrchestrator(Config{Modules: []Module{m}})
	o2.Alias(q)
	o2.Alias(q)
	if calls != 2 {
		t.Errorf("uncached orchestrator consulted %d times, want 2", calls)
	}
}

func TestCacheDoesNotStoreCycleBreaks(t *testing.T) {
	// loopy asks its own query as a premise: the inner resolution is a
	// cycle break and must not poison the cache for a later standalone ask.
	hits := 0
	inner := &fakeModule{name: "inner", alias: func(q *AliasQuery, h Handle) AliasResponse {
		hits++
		return AliasFact(NoAlias, "inner")
	}}
	loopy := &fakeModule{name: "loopy"}
	loopy.alias = func(q *AliasQuery, h Handle) AliasResponse {
		if q.L1.Size == 99 {
			same := *q
			return h.PremiseAlias(&same) // self-cycle
		}
		return MayAliasResponse()
	}
	o := NewOrchestrator(Config{Modules: []Module{loopy, inner}, EnableCache: true})
	q := aq()
	q.L1.Size = 99
	r := o.Alias(q)
	// inner answers NoAlias on the outer evaluation.
	if r.Result != NoAlias {
		t.Fatalf("outer result %s", r.Result)
	}
	// Asking again uses the cached *complete* answer, not a cycle break.
	r2 := o.Alias(q)
	if r2.Result != NoAlias {
		t.Fatalf("cached result degraded to %s", r2.Result)
	}
}

func TestTimeoutPolicy(t *testing.T) {
	slow := &fakeModule{name: "slow", modref: func(q *ModRefQuery, h Handle) ModRefResponse {
		time.Sleep(3 * time.Millisecond)
		return ModRefConservative()
	}}
	definite := &fakeModule{name: "definite", modref: func(q *ModRefQuery, h Handle) ModRefResponse {
		return ModRefFact(NoModRef, "definite")
	}}
	// With a tiny timeout the second module is never reached.
	o := NewOrchestrator(Config{
		Modules: []Module{slow, definite},
		Timeout: time.Millisecond,
	})
	r := o.ModRef(&ModRefQuery{})
	if r.Result == NoModRef {
		t.Error("timeout should have stopped before the definite module")
	}
	if o.Stats().Timeouts == 0 {
		t.Error("timeout not counted")
	}
	// Without a timeout the definite answer arrives.
	o2 := NewOrchestrator(Config{Modules: []Module{slow, definite}})
	if r := o2.ModRef(&ModRefQuery{}); r.Result != NoModRef {
		t.Errorf("untimed result %s", r.Result)
	}
}

func TestTimeoutNeverCachesPartialResults(t *testing.T) {
	first := true
	slow := &fakeModule{name: "slow", modref: func(q *ModRefQuery, h Handle) ModRefResponse {
		if first {
			first = false
			time.Sleep(3 * time.Millisecond)
		}
		return ModRefConservative()
	}}
	definite := &fakeModule{name: "definite", modref: func(q *ModRefQuery, h Handle) ModRefResponse {
		return ModRefFact(NoModRef, "definite")
	}}
	o := NewOrchestrator(Config{
		Modules:     []Module{slow, definite},
		Timeout:     time.Millisecond,
		EnableCache: true,
	})
	q := &ModRefQuery{}
	if r := o.ModRef(q); r.Result == NoModRef {
		t.Fatal("first ask should time out")
	}
	// Second ask is fast and must reach the definite module (the timed-out
	// partial answer must not have been cached).
	if r := o.ModRef(q); r.Result != NoModRef {
		t.Errorf("partial result was cached: %s", r.Result)
	}
}
