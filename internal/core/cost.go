package core

// Validation-cost model (paper §4.2.1 and Fig. 7). Costs are abstract
// per-check latencies (in "cycle" units); a speculative assertion's total
// cost is the per-check latency multiplied by the profiled execution count
// of the guarded operation. The asymmetry below is the paper's central
// economic argument: everything SCAF emits is a few ALU ops, while memory
// speculation needs shadow-memory traffic on every guarded access.
const (
	// CostCtrlCheck is control speculation: the biased branch is computed
	// anyway, so validation is practically zero (§4.2.4).
	CostCtrlCheck = 0.0
	// CostValueCheck is value prediction: compare loaded value against the
	// predicted constant (§4.2.4).
	CostValueCheck = 1.0
	// CostResidueCheck is pointer-residue speculation: a mask-and-compare
	// on the computed pointer (§4.2.3, Fig. 7a).
	CostResidueCheck = 1.0
	// CostHeapCheck is the points-to *heap* check used by read-only and
	// short-lived validation: mask the pointer, compare against the heap
	// tag (§4.2.3, Fig. 7a).
	CostHeapCheck = 2.0
	// CostIterCheck is the short-lived module's per-iteration
	// allocated-equals-freed counter check (§4.2.4).
	CostIterCheck = 2.0
	// CostMemSpecCheck is full memory speculation: shadow-memory lookup,
	// metadata check and update per guarded access (Fig. 7b).
	CostMemSpecCheck = 20.0
	// Prohibitive is assigned to raw points-to object assertions, which
	// are too expensive to validate directly (§4.2.3); clients discard
	// options that include them, but factored modules may replace them
	// with their own cheap heap checks.
	Prohibitive = 1e18
)

// Affordable reports whether an option's cost is below the prohibitive
// threshold, i.e. a rational client could actually validate it.
func Affordable(o Option) bool { return o.Cost() < Prohibitive }

// AffordableOptions filters an option set to affordable options.
func AffordableOptions(s []Option) []Option {
	var out []Option
	for _, o := range s {
		if Affordable(o) {
			out = append(out, o)
		}
	}
	return out
}
