package core

import "sync"

// Batch-scoped memoization: a client analyzing one loop issues hundreds of
// closely related top-level queries whose premise trees overlap heavily
// (the same kill-store coverage propositions, the same underlying-object
// separations). BeginBatch arms the orchestrator's memo tables for the
// duration of the batch so that premise work resolved for one pair is
// reused by the rest, and EndBatch disarms and clears them, keeping every
// batch's results a pure function of (query set, configuration) — nothing
// learned in one batch can leak into the next, so work partitioning across
// workers cannot influence answers.
//
// Soundness is inherited from the lifetime memo (Config.EnableCache): the
// taint machinery never memoizes resolutions degraded by cycle breaks,
// depth limits, timeouts, or panics, so a memo hit is bit-identical to a
// fresh resolution. See the EnableCache doc and TestBatchMatchesUnbatched.
//
// The tables themselves are pooled process-wide: maps grown by one batch
// are cleared (not reallocated) and handed to the next batch anywhere in
// the process, so steady-state batch resolution allocates no tables at
// all. A table is owned by exactly one orchestrator between Get and Put,
// which keeps the pool race-clean; TestBatchTablesReset proves the
// cleared-on-return invariant.

// batchTab is one pooled pair of memo tables.
type batchTab struct {
	a map[aliasMemoKey]AliasResponse
	m map[modrefMemoKey]ModRefResponse
}

var batchTabs = sync.Pool{New: func() any {
	return &batchTab{
		a: map[aliasMemoKey]AliasResponse{},
		m: map[modrefMemoKey]ModRefResponse{},
	}
}}

// BeginBatch starts a batch: until the matching EndBatch, query results are
// memoized in pooled batch-scoped tables. Nested batches are flattened —
// only the outermost pair arms and disarms. When the orchestrator already
// memoizes for its lifetime (Config.EnableCache), batching is a no-op: the
// lifetime cache subsumes it.
func (o *Orchestrator) BeginBatch() {
	o.batchDepth++
	if o.batchDepth > 1 || o.cfg.EnableCache {
		return
	}
	t := batchTabs.Get().(*batchTab)
	o.batch = t
	o.cacheA, o.cacheM = t.a, t.m
}

// EndBatch ends the innermost batch; the outermost one returns the cleared
// tables to the pool. Calling it without a matching BeginBatch is a no-op.
func (o *Orchestrator) EndBatch() {
	if o.batchDepth == 0 {
		return
	}
	o.batchDepth--
	if o.batchDepth > 0 || o.batch == nil {
		return
	}
	clear(o.batch.a)
	clear(o.batch.m)
	o.cacheA, o.cacheM = nil, nil
	batchTabs.Put(o.batch)
	o.batch = nil
}
