package core

import (
	"fmt"
	"sort"
	"strings"

	"scaf/internal/ir"
)

// Point is a program point an assertion touches: an instruction, a block,
// a CFG edge (Block→EdgeTo), or a global. Points are comparable; conflict
// detection relies on that.
type Point struct {
	Instr  *ir.Instr
	Block  *ir.Block
	EdgeTo *ir.Block // with Block set: the edge Block→EdgeTo
	G      *ir.Global
}

func (p Point) String() string {
	switch {
	case p.Instr != nil:
		return fmt.Sprintf("%s:%s", p.Instr.Blk.Fn.Name, p.Instr)
	case p.Block != nil && p.EdgeTo != nil:
		return fmt.Sprintf("%s:%s->%s", p.Block.Fn.Name, p.Block, p.EdgeTo)
	case p.Block != nil:
		return fmt.Sprintf("%s:%s", p.Block.Fn.Name, p.Block)
	case p.G != nil:
		return "@" + p.G.GName
	}
	return "?"
}

// Assertion is one speculative assertion (paper §3.2.3/§4.2.1): a
// dynamically-enforced fact, produced by a speculation module, that the
// client must validate at runtime to use the predicated analysis result.
type Assertion struct {
	// Module identifies the speculation module (and thus the validation
	// transform the client must apply).
	Module string
	// Kind names the validation scheme within the module, e.g.
	// "never-taken-edge", "value-check", "ro-heap", "residue-mask".
	Kind string
	// Points are the transformation points where validation code goes.
	Points []Point
	// Conflicts are program points this assertion must modify exclusively
	// (e.g. an allocation site that is re-allocated into a special heap).
	Conflicts []Point
	// Cost is the estimated total validation cost: per-check latency ×
	// profiled execution count of the guarded operation (§4.2.1).
	Cost float64
}

// key canonically identifies an assertion for deduplication. It covers
// the full content (including cost and conflict points) so that merging
// is order-independent even for ill-behaved modules that emit same-named
// assertions with different payloads.
func (a Assertion) key() string {
	var b strings.Builder
	b.WriteString(a.Module)
	b.WriteByte('/')
	b.WriteString(a.Kind)
	for _, p := range a.Points {
		b.WriteByte('|')
		b.WriteString(p.String())
	}
	b.WriteByte('$')
	fmt.Fprintf(&b, "%g", a.Cost)
	for _, p := range a.Conflicts {
		b.WriteByte('^')
		b.WriteString(p.String())
	}
	return b.String()
}

func (a Assertion) String() string {
	pts := make([]string, len(a.Points))
	for i, p := range a.Points {
		pts[i] = p.String()
	}
	return fmt.Sprintf("%s/%s{%s cost=%g}", a.Module, a.Kind, strings.Join(pts, ","), a.Cost)
}

// Option is one way to make a query result hold: a conjunction of
// assertions that must all be validated (paper Fig. 3, "Assertion Option").
type Option struct {
	Asserts []Assertion
}

// Cost is the option's total validation cost.
func (o Option) Cost() float64 {
	var c float64
	for _, a := range o.Asserts {
		c += a.Cost
	}
	return c
}

// Free reports whether the option needs no validation at all.
func (o Option) Free() bool { return len(o.Asserts) == 0 }

func (o Option) String() string {
	if o.Free() {
		return "{}"
	}
	parts := make([]string, len(o.Asserts))
	for i, a := range o.Asserts {
		parts[i] = a.String()
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, " + ") + "}"
}

// mergeOptions conjoins two options (the paper's O1 + O2), deduplicating
// identical assertions. ok is false when the combination conflicts.
func mergeOptions(a, b Option) (Option, bool) {
	out := Option{Asserts: append([]Assertion(nil), a.Asserts...)}
	seen := map[string]bool{}
	taken := map[Point]string{}
	for _, as := range a.Asserts {
		k := as.key()
		for _, c := range as.Conflicts {
			if owner, clash := taken[c]; clash && owner != k {
				return Option{}, false // a is internally inconsistent
			}
			taken[c] = k
		}
		seen[k] = true
	}
	for _, as := range b.Asserts {
		k := as.key()
		if seen[k] {
			continue
		}
		for _, c := range as.Conflicts {
			if owner, clash := taken[c]; clash && owner != k {
				return Option{}, false
			}
		}
		for _, c := range as.Conflicts {
			taken[c] = k
		}
		seen[k] = true
		out.Asserts = append(out.Asserts, as)
	}
	return out, true
}

// TryMerge conjoins two options if their assertions do not conflict,
// deduplicating identical assertions — the building block clients use for
// global validation planning (§3.4).
func TryMerge(a, b Option) (Option, bool) { return mergeOptions(a, b) }

// OptionsConflict reports whether no pair of options from the two sets can
// be combined (the paper's conflict(S1, S2)).
func OptionsConflict(s1, s2 []Option) bool {
	for _, o1 := range s1 {
		for _, o2 := range s2 {
			if _, ok := mergeOptions(o1, o2); ok {
				return false
			}
		}
	}
	return true
}

// CrossOptions is the paper's S1 × S2: every non-conflicting pairwise
// conjunction. Returns nil when everything conflicts.
func CrossOptions(s1, s2 []Option) []Option {
	var out []Option
	for _, o1 := range s1 {
		for _, o2 := range s2 {
			if m, ok := mergeOptions(o1, o2); ok {
				out = append(out, m)
			}
		}
	}
	return dedupeOptions(out)
}

// UnionOptions is the paper's S1 + S2.
func UnionOptions(s1, s2 []Option) []Option {
	return dedupeOptions(append(append([]Option(nil), s1...), s2...))
}

// CheapestOf keeps only the cheapest option (the CHEAPEST join policy).
func CheapestOf(s []Option) []Option {
	if len(s) == 0 {
		return nil
	}
	best := s[0]
	for _, o := range s[1:] {
		if o.Cost() < best.Cost() {
			best = o
		}
	}
	return []Option{best}
}

// HasFree reports whether some option requires no validation.
func HasFree(s []Option) bool {
	for _, o := range s {
		if o.Free() {
			return true
		}
	}
	return false
}

// MinCost returns the cheapest option's cost (infinite for empty sets).
func MinCost(s []Option) float64 {
	best := Prohibitive * 16
	for _, o := range s {
		if c := o.Cost(); c < best {
			best = c
		}
	}
	return best
}

func dedupeOptions(s []Option) []Option {
	seen := map[string]bool{}
	var out []Option
	for _, o := range s {
		k := o.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, o)
		}
	}
	return out
}

// unconditionalShared backs Unconditional; callers never mutate option
// sets in place (they build new slices), so sharing is safe and saves an
// allocation on every conservative or fact response.
var unconditionalShared = []Option{{}}

// Unconditional is the option set of a result that holds with no
// speculation: one empty option.
func Unconditional() []Option { return unconditionalShared }
