package core

import (
	"fmt"
	"sort"
	"strings"

	"scaf/internal/ir"
)

// Point is a program point an assertion touches: an instruction, a block,
// a CFG edge (Block→EdgeTo), or a global. Points are comparable; conflict
// detection relies on that.
type Point struct {
	Instr  *ir.Instr
	Block  *ir.Block
	EdgeTo *ir.Block // with Block set: the edge Block→EdgeTo
	G      *ir.Global
}

func (p Point) String() string {
	switch {
	case p.Instr != nil:
		return fmt.Sprintf("%s:%s", p.Instr.Blk.Fn.Name, p.Instr)
	case p.Block != nil && p.EdgeTo != nil:
		return fmt.Sprintf("%s:%s->%s", p.Block.Fn.Name, p.Block, p.EdgeTo)
	case p.Block != nil:
		return fmt.Sprintf("%s:%s", p.Block.Fn.Name, p.Block)
	case p.G != nil:
		return "@" + p.G.GName
	}
	return "?"
}

// Assertion is one speculative assertion (paper §3.2.3/§4.2.1): a
// dynamically-enforced fact, produced by a speculation module, that the
// client must validate at runtime to use the predicated analysis result.
type Assertion struct {
	// Module identifies the speculation module (and thus the validation
	// transform the client must apply).
	Module string
	// Kind names the validation scheme within the module, e.g.
	// "never-taken-edge", "value-check", "ro-heap", "residue-mask".
	Kind string
	// Points are the transformation points where validation code goes.
	Points []Point
	// Conflicts are program points this assertion must modify exclusively
	// (e.g. an allocation site that is re-allocated into a special heap).
	Conflicts []Point
	// Cost is the estimated total validation cost: per-check latency ×
	// profiled execution count of the guarded operation (§4.2.1).
	Cost float64

	// intern, when non-nil, is the canonical handle carrying the
	// precomputed identity strings (see Interner). It is invisible on the
	// wire (unexported, so JSON marshalling skips it) and to reflection
	// equality across interners (DeepEqual compares the pointee strings).
	intern *internedAssert
}

// key canonically identifies an assertion for deduplication. It covers
// the full content (including cost and conflict points) so that merging
// is order-independent even for ill-behaved modules that emit same-named
// assertions with different payloads. Interned assertions answer from the
// handle without rebuilding the string.
func (a Assertion) key() string {
	if a.intern != nil {
		return a.intern.key
	}
	return a.computeKey()
}

func (a Assertion) computeKey() string {
	var b strings.Builder
	b.WriteString(a.Module)
	b.WriteByte('/')
	b.WriteString(a.Kind)
	for _, p := range a.Points {
		b.WriteByte('|')
		b.WriteString(p.String())
	}
	b.WriteByte('$')
	fmt.Fprintf(&b, "%g", a.Cost)
	for _, p := range a.Conflicts {
		b.WriteByte('^')
		b.WriteString(p.String())
	}
	return b.String()
}

// String is the assertion's wire identity — what clients, Revokers, and
// the /observe protocol key on. Interned assertions answer in O(1).
func (a Assertion) String() string {
	if a.intern != nil {
		return a.intern.str
	}
	return a.computeString()
}

func (a Assertion) computeString() string {
	pts := make([]string, len(a.Points))
	for i, p := range a.Points {
		pts[i] = p.String()
	}
	return fmt.Sprintf("%s/%s{%s cost=%g}", a.Module, a.Kind, strings.Join(pts, ","), a.Cost)
}

// Option is one way to make a query result hold: a conjunction of
// assertions that must all be validated (paper Fig. 3, "Assertion Option").
type Option struct {
	Asserts []Assertion
}

// Cost is the option's total validation cost.
func (o Option) Cost() float64 {
	var c float64
	for _, a := range o.Asserts {
		c += a.Cost
	}
	return c
}

// Free reports whether the option needs no validation at all.
func (o Option) Free() bool { return len(o.Asserts) == 0 }

func (o Option) String() string {
	if o.Free() {
		return "{}"
	}
	parts := make([]string, len(o.Asserts))
	for i, a := range o.Asserts {
		parts[i] = a.String()
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, " + ") + "}"
}

// conflictPointsClash reports whether two distinct assertions both claim
// some conflict point.
func conflictPointsClash(a, b []Point) bool {
	for _, p := range a {
		for _, q := range b {
			if p == q {
				return true
			}
		}
	}
	return false
}

// mergeOptions conjoins two options (the paper's O1 + O2), deduplicating
// identical assertions. ok is false when the combination conflicts.
// Assertion sets are tiny, so identity and conflict checks are linear
// scans over the merged set — interned assertions compare by handle, and
// no map or key set is materialized.
func mergeOptions(a, b Option) (Option, bool) {
	out := Option{Asserts: append([]Assertion(nil), a.Asserts...)}
	// a must be internally consistent: two different assertions claiming
	// the same conflict point cannot be validated together.
	for i := range out.Asserts {
		for j := i + 1; j < len(out.Asserts); j++ {
			if !assertEqual(&out.Asserts[i], &out.Asserts[j]) &&
				conflictPointsClash(out.Asserts[i].Conflicts, out.Asserts[j].Conflicts) {
				return Option{}, false
			}
		}
	}
bAsserts:
	for bi := range b.Asserts {
		bas := &b.Asserts[bi]
		for i := range out.Asserts {
			if assertEqual(&out.Asserts[i], bas) {
				continue bAsserts // already carried
			}
		}
		for i := range out.Asserts {
			if conflictPointsClash(out.Asserts[i].Conflicts, bas.Conflicts) {
				return Option{}, false
			}
		}
		out.Asserts = append(out.Asserts, *bas)
	}
	return out, true
}

// TryMerge conjoins two options if their assertions do not conflict,
// deduplicating identical assertions — the building block clients use for
// global validation planning (§3.4).
func TryMerge(a, b Option) (Option, bool) { return mergeOptions(a, b) }

// OptionsConflict reports whether no pair of options from the two sets can
// be combined (the paper's conflict(S1, S2)).
func OptionsConflict(s1, s2 []Option) bool {
	for _, o1 := range s1 {
		for _, o2 := range s2 {
			if _, ok := mergeOptions(o1, o2); ok {
				return false
			}
		}
	}
	return true
}

// CrossOptions is the paper's S1 × S2: every non-conflicting pairwise
// conjunction. Returns nil when everything conflicts.
func CrossOptions(s1, s2 []Option) []Option {
	var out []Option
	for _, o1 := range s1 {
		for _, o2 := range s2 {
			if m, ok := mergeOptions(o1, o2); ok {
				out = append(out, m)
			}
		}
	}
	return dedupeOptions(out)
}

// UnionOptions is the paper's S1 + S2. The overwhelmingly common join —
// two single free options, the shape of every pair of unconditional NoDep
// answers — returns the shared unconditional set without allocating.
func UnionOptions(s1, s2 []Option) []Option {
	if len(s1) == 1 && len(s2) == 1 && s1[0].Free() && s2[0].Free() {
		return unconditionalShared
	}
	if len(s1) == 0 {
		return dedupeOptions(s2)
	}
	if len(s2) == 0 {
		return dedupeOptions(s1)
	}
	return dedupeOptions(append(append([]Option(nil), s1...), s2...))
}

// CheapestOf keeps only the cheapest option (the CHEAPEST join policy).
// Singleton sets pass through unchanged; option sets are never mutated in
// place, so sharing the input slice is safe.
func CheapestOf(s []Option) []Option {
	if len(s) <= 1 {
		return s
	}
	best, bc := s[0], s[0].Cost()
	for _, o := range s[1:] {
		if c := o.Cost(); c < bc {
			best, bc = o, c
		}
	}
	return []Option{best}
}

// HasFree reports whether some option requires no validation.
func HasFree(s []Option) bool {
	for _, o := range s {
		if o.Free() {
			return true
		}
	}
	return false
}

// MinCost returns the cheapest option's cost (infinite for empty sets).
func MinCost(s []Option) float64 {
	best := Prohibitive * 16
	for _, o := range s {
		if c := o.Cost(); c < best {
			best = c
		}
	}
	return best
}

// sameOptionWire reports whether two options denote the same validation
// set on the wire: equal assertion multisets under String() identity —
// exactly the equivalence dedupeOptions used to get by comparing sorted
// Option.String() renderings, now decided without building either string.
// Interned assertions share backing strings, so the comparisons are
// pointer-fast.
func sameOptionWire(a, b Option) bool {
	n := len(a.Asserts)
	if n != len(b.Asserts) {
		return false
	}
	if n == 0 {
		return true
	}
	if n > 64 {
		return a.String() == b.String() // unreachable in practice
	}
	var used uint64
outer:
	for i := range a.Asserts {
		for j := range b.Asserts {
			if used&(1<<j) != 0 {
				continue
			}
			if a.Asserts[i].String() == b.Asserts[j].String() {
				used |= 1 << j
				continue outer
			}
		}
		return false
	}
	return true
}

// dedupeOptions keeps the first occurrence of each wire-distinct option.
// Singleton sets pass through unchanged (callers never mutate option sets
// in place); larger sets — always small — dedupe by pairwise scan.
func dedupeOptions(s []Option) []Option {
	if len(s) <= 1 {
		return s
	}
	var out []Option
	for _, o := range s {
		dup := false
		for i := range out {
			if sameOptionWire(out[i], o) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, o)
		}
	}
	return out
}

// unconditionalShared backs Unconditional; callers never mutate option
// sets in place (they build new slices), so sharing is safe and saves an
// allocation on every conservative or fact response.
var unconditionalShared = []Option{{}}

// Unconditional is the option set of a result that holds with no
// speculation: one empty option.
func Unconditional() []Option { return unconditionalShared }
