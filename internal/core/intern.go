package core

import "sync"

// internedAssert is the canonical handle for one assertion identity. Both
// identity strings are computed once, when the assertion is first seen, and
// every later String()/key() call on an interned assertion is a pointer
// load. Two assertions interned by the same Interner are content-equal
// (full key, including cost and conflict points) exactly when they carry
// the same handle — the property assertEqual exploits and
// TestInternHandleEqualsStringEqual pins.
type internedAssert struct {
	key string // full-content identity (Assertion.key)
	str string // wire identity (Assertion.String) — what /observe and Revokers see
}

// Interner deduplicates assertion identities for one analysis session. It
// is safe for concurrent use: a SharedCache owns one and every orchestrator
// attached to the cache interns through it, so handle equality spans worker
// goroutines. Orchestrators without a shared cache get a private interner —
// same speedup, orchestrator-local handle space.
//
// Interning never mutates its input: modules may return shared option
// slices, so Interner returns fresh copies with handles attached (or the
// input itself when everything already carries handles — the steady state
// once the session's assertion vocabulary has been seen once).
type Interner struct {
	mu sync.Mutex
	m  map[string]*internedAssert
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{m: map[string]*internedAssert{}}
}

// Len reports the number of distinct assertion identities interned so far.
func (it *Interner) Len() int {
	it.mu.Lock()
	defer it.mu.Unlock()
	return len(it.m)
}

// assert returns a copy of a carrying its canonical handle. Already-interned
// assertions pass through untouched.
func (it *Interner) assert(a Assertion) Assertion {
	if a.intern != nil {
		return a
	}
	k := a.computeKey()
	it.mu.Lock()
	h, ok := it.m[k]
	if !ok {
		h = &internedAssert{key: k, str: a.computeString()}
		it.m[k] = h
	}
	it.mu.Unlock()
	a.intern = h
	return a
}

// options returns opts with every assertion carrying a handle. The
// assertion-free and fully-interned cases — every cache hit and every
// NoDep answer — return the input slice unchanged without allocating.
func (it *Interner) options(opts []Option) []Option {
	dirty := false
scan:
	for _, o := range opts {
		for i := range o.Asserts {
			if o.Asserts[i].intern == nil {
				dirty = true
				break scan
			}
		}
	}
	if !dirty {
		return opts
	}
	out := make([]Option, len(opts))
	for i, o := range opts {
		if len(o.Asserts) == 0 {
			out[i] = o
			continue
		}
		as := make([]Assertion, len(o.Asserts))
		for j := range o.Asserts {
			as[j] = it.assert(o.Asserts[j])
		}
		out[i] = Option{Asserts: as}
	}
	return out
}

// InternOptions exposes options for clients (benchmark suites, tests) that
// pre-intern option sets they hold on to.
func (it *Interner) InternOptions(opts []Option) []Option { return it.options(opts) }

// assertEqual reports full-content identity. Matching handles decide
// immediately; otherwise (un-interned, or interned by different interners)
// it falls back to the key strings, which are O(1) for interned assertions.
func assertEqual(a, b *Assertion) bool {
	if a.intern != nil && a.intern == b.intern {
		return true
	}
	return a.key() == b.key()
}
