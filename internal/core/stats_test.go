package core

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"scaf/internal/ir"
)

func TestStatsMergeCounters(t *testing.T) {
	a := &Stats{TopQueries: 3, PremiseQueries: 5, Conflicts: 1, ModuleEvals: 10,
		CacheHits: 2, SharedHits: 4, Timeouts: 1, CycleBreaks: 2, DepthLimits: 1,
		LatencyDropped: 7,
		Latencies:      []time.Duration{time.Millisecond}}
	b := &Stats{TopQueries: 4, PremiseQueries: 1, Conflicts: 2, ModuleEvals: 20,
		CacheHits: 3, SharedHits: 1, Timeouts: 2, CycleBreaks: 3, DepthLimits: 4,
		LatencyDropped: 1,
		Latencies:      []time.Duration{2 * time.Millisecond, 3 * time.Millisecond}}
	m := &Stats{}
	m.Merge(a)
	m.Merge(b)
	m.Merge(nil) // must be a no-op

	if m.TopQueries != 7 || m.PremiseQueries != 6 || m.Conflicts != 3 ||
		m.ModuleEvals != 30 || m.CacheHits != 5 || m.SharedHits != 5 ||
		m.Timeouts != 3 || m.CycleBreaks != 5 || m.DepthLimits != 5 ||
		m.LatencyDropped != 8 {
		t.Errorf("merged counters wrong: %+v", m)
	}
	if len(m.Latencies) != 3 {
		t.Errorf("latencies = %d, want 3", len(m.Latencies))
	}
	// Merge must not mutate its argument.
	if len(a.Latencies) != 1 || len(b.Latencies) != 2 {
		t.Error("Merge mutated its source stats")
	}
}

func TestStatsMergeIsOrderIndependentForCounters(t *testing.T) {
	parts := []*Stats{
		{TopQueries: 1, ModuleEvals: 5},
		{TopQueries: 2, ModuleEvals: 7, Conflicts: 1},
		{TopQueries: 4, PremiseQueries: 9},
	}
	fwd, rev := &Stats{}, &Stats{}
	for _, p := range parts {
		fwd.Merge(p)
	}
	for i := len(parts) - 1; i >= 0; i-- {
		rev.Merge(parts[i])
	}
	if !reflect.DeepEqual(copyNoLat(fwd), copyNoLat(rev)) {
		t.Errorf("counter aggregation depends on merge order: %+v vs %+v", fwd, rev)
	}
}

func copyNoLat(s *Stats) *Stats {
	c := *s
	c.Latencies = nil
	return &c
}

func TestRecordLatencyCap(t *testing.T) {
	s := &Stats{}
	for i := 0; i < MaxLatencySamples+10; i++ {
		s.recordLatency(time.Duration(i), int64(i))
	}
	if len(s.Latencies) != MaxLatencySamples {
		t.Errorf("latencies = %d, want cap %d", len(s.Latencies), MaxLatencySamples)
	}
	if s.LatencyDropped != 10 {
		t.Errorf("dropped = %d, want 10", s.LatencyDropped)
	}
	// Merging an over-full source respects the cap and counts the overflow.
	m := &Stats{Latencies: make([]time.Duration, MaxLatencySamples-5)}
	m.Merge(s)
	if len(m.Latencies) != MaxLatencySamples {
		t.Errorf("merged latencies = %d, want cap", len(m.Latencies))
	}
	wantDropped := int64(10 + (MaxLatencySamples - 5))
	if m.LatencyDropped != wantDropped {
		t.Errorf("merged dropped = %d, want %d", m.LatencyDropped, wantDropped)
	}
}

// TestRecordLatencyWithTimeout exercises RecordLatency and Timeout on the
// same orchestrator: timed-out searches must still record their latency,
// count a timeout, and never publish to caches.
func TestRecordLatencyWithTimeout(t *testing.T) {
	slow := &fakeModule{name: "slow", modref: func(q *ModRefQuery, h Handle) ModRefResponse {
		time.Sleep(2 * time.Millisecond)
		return ModRefConservative()
	}}
	never := &fakeModule{name: "never"}
	sc := NewSharedCache()
	o := NewOrchestrator(Config{
		Modules:       []Module{slow, never},
		Timeout:       time.Microsecond,
		RecordLatency: true,
		EnableCache:   true,
		Shared:        sc,
	})
	const n = 3
	for i := 0; i < n; i++ {
		o.ModRef(&ModRefQuery{})
	}
	st := o.Stats()
	if st.TopQueries != n {
		t.Errorf("top queries = %d", st.TopQueries)
	}
	if len(st.Latencies) != n {
		t.Errorf("latencies = %d, want %d (timeouts must still be recorded)", len(st.Latencies), n)
	}
	if st.Timeouts == 0 {
		t.Error("timeout policy never fired")
	}
	// The first module runs before the deadline check, the second never
	// does: every repeat re-evaluates because incomplete searches must not
	// be cached, locally or shared.
	if st.CacheHits != 0 || st.SharedHits != 0 {
		t.Errorf("timed-out search was served from a cache: %+v", st)
	}
	if a, m := sc.Len(); a != 0 || m != 0 {
		t.Errorf("timed-out search was published to the shared cache: %d/%d", a, m)
	}
	if never.queried != 0 {
		t.Errorf("second module consulted %d times despite timeout", never.queried)
	}
}

func TestSharedCacheServesTopLevelQueries(t *testing.T) {
	calls := 0
	m := &fakeModule{name: "m", modref: func(q *ModRefQuery, h Handle) ModRefResponse {
		calls++
		return ModRefFact(NoModRef, "m")
	}}
	sc := NewSharedCache()
	mk := func() *Orchestrator {
		return NewOrchestrator(Config{Modules: []Module{m}, Shared: sc})
	}
	o1, o2 := mk(), mk()
	q := &ModRefQuery{Rel: Before}
	r1 := o1.ModRef(q)
	r2 := o2.ModRef(q) // distinct orchestrator, same cache
	if calls != 1 {
		t.Errorf("module consulted %d times, want 1", calls)
	}
	if r1.Result != r2.Result || r2.Result != NoModRef {
		t.Errorf("results differ: %s vs %s", r1.Result, r2.Result)
	}
	if o2.Stats().SharedHits != 1 {
		t.Errorf("shared hits = %d", o2.Stats().SharedHits)
	}
	if _, mr := sc.Len(); mr != 1 {
		t.Errorf("published entries = %d", mr)
	}
}

// TestSharedCacheAliasDesiredGuard: only the canonical AnyAlias form of an
// alias proposition participates in the shared cache, so a desired-result
// query can never be served an answer computed under a different module
// audience.
func TestSharedCacheAliasDesiredGuard(t *testing.T) {
	calls := 0
	m := &fakeModule{name: "m", alias: func(q *AliasQuery, h Handle) AliasResponse {
		calls++
		return AliasFact(NoAlias, "m")
	}}
	sc := NewSharedCache()
	// One fixed proposition: aliasKey compares pointer operands by
	// identity, so the test must reuse the same ir values.
	p1, p2 := ir.CI(1), ir.CI(2)
	mkq := func(d DesiredAlias) *AliasQuery {
		return &AliasQuery{L1: MemLoc{Ptr: p1, Size: 8}, L2: MemLoc{Ptr: p2, Size: 8}, Desired: d}
	}
	o := NewOrchestrator(Config{Modules: []Module{m}, Shared: sc})
	o.Alias(mkq(WantNoAlias))
	if a, _ := sc.Len(); a != 0 {
		t.Errorf("desired-result query was published: %d entries", a)
	}
	o.Alias(mkq(AnyAlias)) // canonical form: published
	if a, _ := sc.Len(); a != 1 {
		t.Errorf("canonical query not published: %d entries", a)
	}
	o2 := NewOrchestrator(Config{Modules: []Module{m}, Shared: sc})
	o2.Alias(mkq(AnyAlias))
	if o2.Stats().SharedHits != 1 {
		t.Errorf("canonical re-ask missed the shared cache")
	}
	o2.Alias(mkq(WantMustAlias))
	if o2.Stats().SharedHits != 1 {
		t.Errorf("desired-result re-ask must bypass the shared cache")
	}
	// StripDesired normalizes before the cache check, so under the ablation
	// the desired form becomes canonical again.
	o3 := NewOrchestrator(Config{Modules: []Module{m}, Shared: sc, StripDesired: true})
	o3.Alias(mkq(WantNoAlias))
	if o3.Stats().SharedHits != 1 {
		t.Errorf("stripped query should hit the canonical entry")
	}
}

// TestSharedCachePremiseGuard: premise (depth > 0) resolutions are never
// published — they may embed conservative cycle-breaks that depend on the
// enclosing in-flight propositions.
func TestSharedCachePremiseGuard(t *testing.T) {
	inner := &fakeModule{name: "inner", alias: func(q *AliasQuery, h Handle) AliasResponse {
		return AliasFact(NoAlias, "inner")
	}}
	outer := &fakeModule{name: "outer"}
	outer.modref = func(q *ModRefQuery, h Handle) ModRefResponse {
		h.PremiseAlias(aq())
		return ModRefConservative()
	}
	sc := NewSharedCache()
	o := NewOrchestrator(Config{Modules: []Module{outer, inner}, Shared: sc})
	o.ModRef(&ModRefQuery{})
	if a, _ := sc.Len(); a != 0 {
		t.Errorf("premise resolution was published: %d alias entries", a)
	}
	if _, m := sc.Len(); m != 1 {
		t.Error("top-level mod-ref resolution was not published")
	}
}

// TestSharedCacheConcurrent hammers one cache from many goroutines under
// the race detector: same proposition set, concurrent publish and lookup.
func TestSharedCacheConcurrent(t *testing.T) {
	sc := NewSharedCache()
	prog := []*ModRefQuery{}
	for i := 0; i < 32; i++ {
		prog = append(prog, &ModRefQuery{Rel: TemporalRelation(i % 2), Loc: MemLoc{Ptr: ir.CI(int64(i / 2)), Size: 8}})
	}
	var wg sync.WaitGroup
	results := make([][]ModRefResult, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := &fakeModule{name: "m", modref: func(q *ModRefQuery, h Handle) ModRefResponse {
				if q.Rel == Before {
					return ModRefFact(NoModRef, "m")
				}
				return ModRefFact(Ref, "m")
			}}
			o := NewOrchestrator(Config{Modules: []Module{m}, Shared: sc})
			for _, q := range prog {
				results[w] = append(results[w], o.ModRef(q).Result)
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < 8; w++ {
		for i := range prog {
			if results[w][i] != results[0][i] {
				t.Fatalf("worker %d query %d: %s != %s", w, i, results[w][i], results[0][i])
			}
		}
	}
	if _, m := sc.Len(); m != len(prog) {
		t.Errorf("published = %d, want %d", m, len(prog))
	}
}
