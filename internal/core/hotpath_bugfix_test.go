package core

import (
	"testing"

	"scaf/internal/cfg"
	"scaf/internal/ir"
	"scaf/internal/lower"
	"scaf/internal/mcgen"
)

// TestOptionAssertKeysZeroAssertFastPath pins the publication fast path:
// collecting the supporting-assertion keys of an assertion-free option set
// (the common NoDep case) must allocate nothing at all — no seen map, no
// slice — and return nil.
func TestOptionAssertKeysZeroAssertFastPath(t *testing.T) {
	opts := []Option{{}, {}, {}}
	if got := optionAssertKeys(opts); got != nil {
		t.Fatalf("assertion-free options produced keys %v, want nil", got)
	}
	if raceEnabled {
		t.Skip("alloc counts are unreliable under the race detector")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if optionAssertKeys(opts) != nil {
			t.Fatal("non-nil keys")
		}
	})
	if allocs != 0 {
		t.Fatalf("optionAssertKeys allocated %.1f objects per assertion-free call, want 0", allocs)
	}
}

// TestOptionAssertKeysAllocBound pins the assert-carrying path to "the
// unavoidable String() materializations plus one preallocated key slice".
// The old implementation paid a seen-map plus append-regrowth on top of
// that; this bound fails if either comes back.
func TestOptionAssertKeysAllocBound(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are unreliable under the race detector")
	}
	a1 := Assertion{Module: "m", Kind: "beta", Cost: 1}
	a2 := Assertion{Module: "m", Kind: "alpha", Cost: 2}
	a3 := Assertion{Module: "m", Kind: "gamma", Cost: 3}
	opts := []Option{
		{Asserts: []Assertion{a1}},
		{Asserts: []Assertion{a2, a1, a3}}, // a1 repeats
	}
	// Calibrate: optionAssertKeys must render every assert occurrence once.
	base := testing.AllocsPerRun(100, func() {
		for _, o := range opts {
			for i := range o.Asserts {
				_ = o.Asserts[i].String()
			}
		}
	})
	got := testing.AllocsPerRun(100, func() { optionAssertKeys(opts) })
	if got > base+1 {
		t.Fatalf("optionAssertKeys allocates %.1f/call over %.1f for the String() calls alone; want at most +1 (the key slice)", got, base)
	}
}

// TestOptionAssertKeysStillCollects guards the slow path the fast path
// sits in front of: assertions across options are collected, deduplicated,
// and sorted by their wire identity.
func TestOptionAssertKeysStillCollects(t *testing.T) {
	a1 := Assertion{Module: "m", Kind: "beta", Cost: 1}
	a2 := Assertion{Module: "m", Kind: "alpha", Cost: 2}
	keys := optionAssertKeys([]Option{
		{Asserts: []Assertion{a1}},
		{Asserts: []Assertion{a2, a1}}, // a1 repeats across options
		{},
	})
	if len(keys) != 2 || keys[0] != a2.String() || keys[1] != a1.String() {
		t.Fatalf("keys = %v, want sorted [%s %s]", keys, a2.String(), a1.String())
	}
}

// unknownValue stands in for a future ir.Value kind valueID's switch does
// not know about.
type unknownValue struct{ name string }

func (u unknownValue) Type() ir.Type  { return ir.Int }
func (u unknownValue) String() string { return u.name }

// TestValueIDUnknownKindsSpread pins the per-type-discriminant rule:
// distinct values of an unenumerated ir.Value kind must not collapse onto
// one constant (which would serialize a whole cache shard), and the
// discriminant must differ from the enumerated kinds' buckets.
func TestValueIDUnknownKindsSpread(t *testing.T) {
	shards := map[uint64]bool{}
	for _, name := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		shards[valueID(unknownValue{name: name})%sharedShards] = true
	}
	if len(shards) < 4 {
		t.Fatalf("8 distinct unknown values landed in %d shards, want >= 4 (constant-funnel regression)", len(shards))
	}
	// The previously-unhandled const kinds get value-dependent IDs too.
	if valueID(ir.CF(1.5)) == valueID(ir.CF(2.5)) {
		t.Error("distinct ConstFloats share a valueID")
	}
	if valueID(ir.CF(1.5)) == valueID(ir.CI(1)) {
		t.Error("ConstFloat collides with ConstInt on the type discriminant")
	}
	if valueID(ir.Null(ir.PointerTo(ir.Int))) == valueID(nil) {
		t.Error("ConstNull collides with nil")
	}
}

// TestValueIDShardDistribution drives valueID over every operand value of
// a batch of mcgen-generated programs and checks the shard distribution:
// no single shard may absorb the bulk of the values. This is the test that
// catches a future IR value kind quietly hashing to a constant.
func TestValueIDShardDistribution(t *testing.T) {
	counts := map[uint64]int{}
	total := 0
	for seed := int64(1); seed <= 6; seed++ {
		mod, err := lower.Compile("gen", mcgen.New(seed).Program())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		prog := cfg.NewProgram(mod)
		for _, g := range mod.Globals {
			counts[valueID(g)%sharedShards]++
			total++
		}
		for _, fn := range prog.Mod.Funcs {
			for _, p := range fn.Params {
				counts[valueID(p)%sharedShards]++
				total++
			}
			fn.Instrs(func(in *ir.Instr) {
				counts[valueID(in)%sharedShards]++
				total++
				for _, arg := range in.Args {
					counts[valueID(arg)%sharedShards]++
					total++
				}
			})
		}
	}
	if total < 200 {
		t.Fatalf("fixture too small: %d values", total)
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if len(counts) < sharedShards/4 {
		t.Fatalf("%d values hit only %d/%d shards", total, len(counts), sharedShards)
	}
	if frac := float64(max) / float64(total); frac > 0.25 {
		t.Fatalf("hottest shard absorbs %.0f%% of %d values (want <= 25%%): a value kind is funneling", 100*frac, total)
	}
}
