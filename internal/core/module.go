package core

import (
	"sort"
	"sync"
)

// AliasResponse is a module's (or the framework's) answer to an alias
// query: a result, the ways to make it hold (Options — any one suffices),
// and the set of modules that contributed to it.
type AliasResponse struct {
	Result   AliasResult
	Options  []Option
	Contribs []string
}

// ModRefResponse is the mod-ref counterpart.
type ModRefResponse struct {
	Result   ModRefResult
	Options  []Option
	Contribs []string
}

// MayAliasResponse is the conservative alias answer.
func MayAliasResponse() AliasResponse {
	return AliasResponse{Result: MayAlias, Options: Unconditional()}
}

// ModRefConservative is the conservative mod-ref answer.
func ModRefConservative() ModRefResponse {
	return ModRefResponse{Result: ModRef, Options: Unconditional()}
}

// contribCache interns the single-name contributor slices the Fact/Spec
// constructors hand out. Contributor lists are immutable by convention
// (MergeContribs and the joins always build fresh slices), so every
// answer from one module can share one backing array. The set of module
// names is tiny and fixed per process, so the cache never grows past it.
var contribCache sync.Map // module name -> []string{name}

func contribsOf(mod string) []string {
	if v, ok := contribCache.Load(mod); ok {
		return v.([]string)
	}
	v, _ := contribCache.LoadOrStore(mod, []string{mod})
	return v.([]string)
}

// AliasFact is an unconditional (validation-free) alias answer from
// module mod.
func AliasFact(r AliasResult, mod string) AliasResponse {
	return AliasResponse{Result: r, Options: Unconditional(), Contribs: contribsOf(mod)}
}

// ModRefFact is an unconditional mod-ref answer from module mod.
func ModRefFact(r ModRefResult, mod string) ModRefResponse {
	return ModRefResponse{Result: r, Options: Unconditional(), Contribs: contribsOf(mod)}
}

// AliasSpec is a speculative alias answer predicated on the assertions.
func AliasSpec(r AliasResult, mod string, asserts ...Assertion) AliasResponse {
	return AliasResponse{Result: r, Options: []Option{{Asserts: asserts}}, Contribs: contribsOf(mod)}
}

// ModRefSpec is a speculative mod-ref answer predicated on the assertions.
func ModRefSpec(r ModRefResult, mod string, asserts ...Assertion) ModRefResponse {
	return ModRefResponse{Result: r, Options: []Option{{Asserts: asserts}}, Contribs: contribsOf(mod)}
}

// MergeContribs unions contributor lists, sorted and deduplicated. A
// single already-canonical input (the overwhelmingly common join shape:
// one side contributed, the other is the neutral response) passes through
// without allocating — contributor lists are never mutated in place.
func MergeContribs(lists ...[]string) []string {
	var first []string
	multi := false
	for _, l := range lists {
		if len(l) == 0 {
			continue
		}
		if first == nil {
			first = l
		} else {
			multi = true
			break
		}
	}
	if !multi {
		if first == nil {
			return nil
		}
		if sortedUnique(first) {
			return first
		}
	}
	seen := map[string]bool{}
	var out []string
	for _, l := range lists {
		for _, s := range l {
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
	}
	sort.Strings(out)
	return out
}

func sortedUnique(l []string) bool {
	for i := 1; i < len(l); i++ {
		if l[i-1] >= l[i] {
			return false
		}
	}
	return true
}

// IsDefinite reports whether the alias result is maximally precise.
func (r AliasResponse) IsDefinite() bool { return r.Result == NoAlias || r.Result == MustAlias }

// IsDefinite reports whether the mod-ref result is maximally precise.
func (r ModRefResponse) IsDefinite() bool { return r.Result == NoModRef }

// ModuleKind distinguishes memory-analysis from speculation modules.
type ModuleKind int

const (
	MemoryAnalysis ModuleKind = iota
	Speculation
)

func (k ModuleKind) String() string {
	if k == Speculation {
		return "speculation"
	}
	return "memory-analysis"
}

// Handle is the channel through which a module submits premise queries
// back to the Orchestrator (paper §3.1). Factored modules formulate
// premise queries from incoming queries to resolve propositions about
// which they cannot reason; the Orchestrator routes them to the other
// modules without the requester knowing who answers.
type Handle interface {
	// PremiseAlias resolves an alias premise query.
	PremiseAlias(q *AliasQuery) AliasResponse
	// PremiseModRef resolves a mod-ref premise query.
	PremiseModRef(q *ModRefQuery) ModRefResponse
}

// Module is an analysis module: a memory-analysis algorithm or the
// analysis part of a decomposed speculative technique (paper §4.2.1).
// Modules answer what they can and return the conservative response
// otherwise; they must never block on h being unable to help.
type Module interface {
	Name() string
	Kind() ModuleKind
	Alias(q *AliasQuery, h Handle) AliasResponse
	ModRef(q *ModRefQuery, h Handle) ModRefResponse
}

// AliasCaps is an optional Module interface declaring which alias results
// a module can ever produce. The Orchestrator uses it to implement the
// desired-result parameter (§3.2.2): when a premise query only benefits
// from one specific answer, modules that cannot produce it (or a stronger
// containment) are skipped entirely, cutting query latency without
// changing what the requester can use.
type AliasCaps interface {
	// CanAnswerAlias reports whether the module might produce a result
	// useful to a requester with the given desired result.
	CanAnswerAlias(d DesiredAlias) bool
}

// NoAliasOnly is an embeddable AliasCaps for modules whose only
// non-conservative alias answer is NoAlias.
type NoAliasOnly struct{}

// CanAnswerAlias reports false exactly for MustAlias-seeking premises.
func (NoAliasOnly) CanAnswerAlias(d DesiredAlias) bool { return d != WantMustAlias }

// NoHelp is a Handle for isolated evaluation: every premise query gets
// the conservative answer. It models self-contained prior-work techniques
// (composition by confluence).
type NoHelp struct{}

func (NoHelp) PremiseAlias(q *AliasQuery) AliasResponse    { return MayAliasResponse() }
func (NoHelp) PremiseModRef(q *ModRefQuery) ModRefResponse { return ModRefConservative() }

// BaseModule provides default conservative answers for modules that only
// implement one of the two query types.
type BaseModule struct{}

func (BaseModule) Alias(q *AliasQuery, h Handle) AliasResponse {
	return MayAliasResponse()
}

func (BaseModule) ModRef(q *ModRefQuery, h Handle) ModRefResponse {
	return ModRefConservative()
}
