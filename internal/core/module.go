package core

import "sort"

// AliasResponse is a module's (or the framework's) answer to an alias
// query: a result, the ways to make it hold (Options — any one suffices),
// and the set of modules that contributed to it.
type AliasResponse struct {
	Result   AliasResult
	Options  []Option
	Contribs []string
}

// ModRefResponse is the mod-ref counterpart.
type ModRefResponse struct {
	Result   ModRefResult
	Options  []Option
	Contribs []string
}

// MayAliasResponse is the conservative alias answer.
func MayAliasResponse() AliasResponse {
	return AliasResponse{Result: MayAlias, Options: Unconditional()}
}

// ModRefConservative is the conservative mod-ref answer.
func ModRefConservative() ModRefResponse {
	return ModRefResponse{Result: ModRef, Options: Unconditional()}
}

// AliasFact is an unconditional (validation-free) alias answer from
// module mod.
func AliasFact(r AliasResult, mod string) AliasResponse {
	return AliasResponse{Result: r, Options: Unconditional(), Contribs: []string{mod}}
}

// ModRefFact is an unconditional mod-ref answer from module mod.
func ModRefFact(r ModRefResult, mod string) ModRefResponse {
	return ModRefResponse{Result: r, Options: Unconditional(), Contribs: []string{mod}}
}

// AliasSpec is a speculative alias answer predicated on the assertions.
func AliasSpec(r AliasResult, mod string, asserts ...Assertion) AliasResponse {
	return AliasResponse{Result: r, Options: []Option{{Asserts: asserts}}, Contribs: []string{mod}}
}

// ModRefSpec is a speculative mod-ref answer predicated on the assertions.
func ModRefSpec(r ModRefResult, mod string, asserts ...Assertion) ModRefResponse {
	return ModRefResponse{Result: r, Options: []Option{{Asserts: asserts}}, Contribs: []string{mod}}
}

// MergeContribs unions contributor lists, sorted and deduplicated.
func MergeContribs(lists ...[]string) []string {
	seen := map[string]bool{}
	var out []string
	for _, l := range lists {
		for _, s := range l {
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
	}
	sort.Strings(out)
	return out
}

// IsDefinite reports whether the alias result is maximally precise.
func (r AliasResponse) IsDefinite() bool { return r.Result == NoAlias || r.Result == MustAlias }

// IsDefinite reports whether the mod-ref result is maximally precise.
func (r ModRefResponse) IsDefinite() bool { return r.Result == NoModRef }

// ModuleKind distinguishes memory-analysis from speculation modules.
type ModuleKind int

const (
	MemoryAnalysis ModuleKind = iota
	Speculation
)

func (k ModuleKind) String() string {
	if k == Speculation {
		return "speculation"
	}
	return "memory-analysis"
}

// Handle is the channel through which a module submits premise queries
// back to the Orchestrator (paper §3.1). Factored modules formulate
// premise queries from incoming queries to resolve propositions about
// which they cannot reason; the Orchestrator routes them to the other
// modules without the requester knowing who answers.
type Handle interface {
	// PremiseAlias resolves an alias premise query.
	PremiseAlias(q *AliasQuery) AliasResponse
	// PremiseModRef resolves a mod-ref premise query.
	PremiseModRef(q *ModRefQuery) ModRefResponse
}

// Module is an analysis module: a memory-analysis algorithm or the
// analysis part of a decomposed speculative technique (paper §4.2.1).
// Modules answer what they can and return the conservative response
// otherwise; they must never block on h being unable to help.
type Module interface {
	Name() string
	Kind() ModuleKind
	Alias(q *AliasQuery, h Handle) AliasResponse
	ModRef(q *ModRefQuery, h Handle) ModRefResponse
}

// AliasCaps is an optional Module interface declaring which alias results
// a module can ever produce. The Orchestrator uses it to implement the
// desired-result parameter (§3.2.2): when a premise query only benefits
// from one specific answer, modules that cannot produce it (or a stronger
// containment) are skipped entirely, cutting query latency without
// changing what the requester can use.
type AliasCaps interface {
	// CanAnswerAlias reports whether the module might produce a result
	// useful to a requester with the given desired result.
	CanAnswerAlias(d DesiredAlias) bool
}

// NoAliasOnly is an embeddable AliasCaps for modules whose only
// non-conservative alias answer is NoAlias.
type NoAliasOnly struct{}

// CanAnswerAlias reports false exactly for MustAlias-seeking premises.
func (NoAliasOnly) CanAnswerAlias(d DesiredAlias) bool { return d != WantMustAlias }

// NoHelp is a Handle for isolated evaluation: every premise query gets
// the conservative answer. It models self-contained prior-work techniques
// (composition by confluence).
type NoHelp struct{}

func (NoHelp) PremiseAlias(q *AliasQuery) AliasResponse    { return MayAliasResponse() }
func (NoHelp) PremiseModRef(q *ModRefQuery) ModRefResponse { return ModRefConservative() }

// BaseModule provides default conservative answers for modules that only
// implement one of the two query types.
type BaseModule struct{}

func (BaseModule) Alias(q *AliasQuery, h Handle) AliasResponse {
	return MayAliasResponse()
}

func (BaseModule) ModRef(q *ModRefQuery, h Handle) ModRefResponse {
	return ModRefConservative()
}
