// Package core implements the paper's primary contribution: SCAF's
// dependence-analysis query language (§3.2), speculative assertions and
// their option algebra (§3.2.3), and the Orchestrator that coordinates
// memory-analysis and speculation modules (§3.3).
package core

import (
	"fmt"

	"scaf/internal/cfg"
	"scaf/internal/ir"
)

// TemporalRelation scopes a query to iterations of the query's loop
// (paper Fig. 3): Before/After denote strictly earlier/later iterations of
// the first operand relative to the second; Same denotes one iteration.
type TemporalRelation int

const (
	Same TemporalRelation = iota
	Before
	After
)

func (t TemporalRelation) String() string {
	switch t {
	case Before:
		return "Before"
	case After:
		return "After"
	}
	return "Same"
}

// MemLoc is a memory location: a pointer SSA value plus an access size in
// bytes (UnknownSize when not statically known).
type MemLoc struct {
	Ptr  ir.Value
	Size int64
}

// UnknownSize marks a location of statically unknown extent.
const UnknownSize int64 = -1

func (l MemLoc) String() string {
	if l.Size == UnknownSize {
		return fmt.Sprintf("(%s, ?)", l.Ptr)
	}
	return fmt.Sprintf("(%s, %d)", l.Ptr, l.Size)
}

// DesiredAlias is the desired-result query parameter introduced by the
// paper (§3.2.2): a factored module that only benefits from one specific
// alias answer says so, letting base modules bail out early.
type DesiredAlias int

const (
	AnyAlias DesiredAlias = iota
	WantNoAlias
	WantMustAlias
)

func (d DesiredAlias) String() string {
	switch d {
	case WantNoAlias:
		return "NoAlias"
	case WantMustAlias:
		return "MustAlias"
	}
	return "Any"
}

// CallCtx is the optional calling-context parameter (§3.2.2): the chain of
// call sites that disambiguates dynamic instances of one static
// instruction. nil means "any context".
type CallCtx struct {
	Sites []*ir.Instr
}

// AliasQuery asks how two memory locations may overlap.
type AliasQuery struct {
	L1, L2  MemLoc
	Rel     TemporalRelation
	Loop    *cfg.Loop
	Ctx     *CallCtx
	Desired DesiredAlias
	// DT and PDT carry control-flow information. They may be speculative:
	// modules must treat them as ground truth (paper §3.2.2 — "modules are
	// agnostic to whether the control flow information contained in the
	// received query is speculative or not").
	DT, PDT *cfg.Tree
}

// ModRefQuery asks whether instruction I1 may read or write the footprint
// of instruction I2 (or an explicit location, when I2 is nil), under the
// given temporal relation within Loop.
type ModRefQuery struct {
	I1      *ir.Instr
	I2      *ir.Instr
	Loc     MemLoc // used when I2 == nil
	Rel     TemporalRelation
	Loop    *cfg.Loop
	Ctx     *CallCtx
	DT, PDT *cfg.Tree
}

// TargetLoc returns the queried footprint: I2's when present, else Loc.
// ok is false when the footprint is statically unknown (e.g. a call).
func (q *ModRefQuery) TargetLoc() (MemLoc, bool) {
	if q.I2 == nil {
		return q.Loc, q.Loc.Ptr != nil
	}
	if ptr, size, ok := q.I2.PointerOperand(); ok {
		return MemLoc{Ptr: ptr, Size: size}, true
	}
	return MemLoc{}, false
}

// Flip returns the query with operands swapped and the temporal relation
// mirrored (Before ↔ After), preserving meaning.
func (q *AliasQuery) Flip() *AliasQuery {
	out := *q
	out.L1, out.L2 = q.L2, q.L1
	switch q.Rel {
	case Before:
		out.Rel = After
	case After:
		out.Rel = Before
	}
	return &out
}

// AliasResult is the alias lattice (paper Fig. 3/4). SubAlias, introduced
// by SCAF, means L1 is fully contained within L2.
type AliasResult int

const (
	MayAlias AliasResult = iota
	PartialAlias
	SubAlias
	MustAlias
	NoAlias
)

func (r AliasResult) String() string {
	switch r {
	case NoAlias:
		return "NoAlias"
	case MustAlias:
		return "MustAlias"
	case SubAlias:
		return "SubAlias"
	case PartialAlias:
		return "PartialAlias"
	}
	return "MayAlias"
}

// aliasPrecision implements the paper's order: NoAlias == MustAlias >
// SubAlias > PartialAlias > MayAlias.
func aliasPrecision(r AliasResult) int {
	switch r {
	case NoAlias, MustAlias:
		return 3
	case SubAlias:
		return 2
	case PartialAlias:
		return 1
	}
	return 0
}

// ModRefResult is the mod-ref lattice. Results are upper bounds: Mod
// means "may write but provably never reads".
type ModRefResult int

const (
	NoModRef ModRefResult = 0
	Ref      ModRefResult = 1
	Mod      ModRefResult = 2
	ModRef   ModRefResult = 3
)

func (r ModRefResult) String() string {
	switch r {
	case NoModRef:
		return "NoModRef"
	case Ref:
		return "Ref"
	case Mod:
		return "Mod"
	}
	return "ModRef"
}

// modrefPrecision: NoModRef > Mod == Ref > ModRef.
func modrefPrecision(r ModRefResult) int {
	switch r {
	case NoModRef:
		return 2
	case Mod, Ref:
		return 1
	}
	return 0
}
