package core

import (
	"testing"

	"scaf/internal/ir"
)

// The memo tables key on the full resolution context (proposition + call
// context + desired result + premise audience), not the proposition alone.
// These tests pin the two leaks the bare proposition key allowed: a
// resolution confined to one technique group (RouteIsolated) serving a
// full-ensemble query, and a resolution degraded by a desired-result skip
// serving a desired-free query. Both fail on the pre-fix key.

// memoKeyQueries returns a trigger query and the proposition P asked both
// as a premise and as a top-level query. Both asks of P must share the
// same ir.Value pointers — proposition keys compare values by identity.
func memoKeyQueries() (trigger func() *AliasQuery, propP func() *AliasQuery) {
	t1, t2 := ir.CI(1), ir.CI(2)
	p1, p2 := ir.CI(3), ir.CI(4)
	trigger = func() *AliasQuery {
		return &AliasQuery{L1: MemLoc{Ptr: t1, Size: 8}, L2: MemLoc{Ptr: t2, Size: 8}}
	}
	propP = func() *AliasQuery {
		return &AliasQuery{L1: MemLoc{Ptr: p1, Size: 99}, L2: MemLoc{Ptr: p2, Size: 8}}
	}
	return trigger, propP
}

func TestCacheKeyIncludesAudience(t *testing.T) {
	// asker (group g1) resolves premise P against its own group only —
	// nobody there can answer, so the premise resolves MayAlias. The
	// full-ensemble top-level ask of the same proposition P must still
	// reach answerer (group g2) and get NoAlias, memo or no memo.
	trigger, propP := memoKeyQueries()
	asker := &fakeModule{name: "asker"}
	asker.alias = func(q *AliasQuery, h Handle) AliasResponse {
		if q.L1.Size != 99 {
			h.PremiseAlias(propP())
		}
		return MayAliasResponse()
	}
	answerer := &fakeModule{name: "answerer", alias: func(q *AliasQuery, h Handle) AliasResponse {
		if q.L1.Size == 99 {
			return AliasFact(NoAlias, "answerer")
		}
		return MayAliasResponse()
	}}
	o := NewOrchestrator(Config{
		Modules:     []Module{asker, answerer},
		Groups:      map[string]string{"asker": "g1", "answerer": "g2"},
		Routing:     RouteIsolated,
		EnableCache: true,
	})
	o.Alias(trigger()) // memoizes P under asker's group audience
	if r := o.Alias(propP()); r.Result != NoAlias {
		t.Fatalf("top-level P = %s, want NoAlias: the group-confined premise resolution leaked into the full-ensemble ask", r.Result)
	}
}

// cappedModule answers NoAlias but declares (via AliasCaps) that it cannot
// serve MustAlias-seeking premises, so those skip it entirely.
type cappedModule struct {
	fakeModule
	NoAliasOnly
}

func TestCacheKeyIncludesDesired(t *testing.T) {
	trigger, propP := memoKeyQueries()
	capped := &cappedModule{}
	capped.name = "capped"
	capped.alias = func(q *AliasQuery, h Handle) AliasResponse {
		if q.L1.Size == 99 {
			return AliasFact(NoAlias, "capped")
		}
		return MayAliasResponse()
	}
	asker := &fakeModule{name: "asker"}
	asker.alias = func(q *AliasQuery, h Handle) AliasResponse {
		if q.L1.Size != 99 {
			p := propP()
			p.Desired = WantMustAlias // capped is skipped; premise degrades
			h.PremiseAlias(p)
		}
		return MayAliasResponse()
	}
	o := NewOrchestrator(Config{
		Modules:     []Module{asker, capped},
		EnableCache: true,
	})
	o.Alias(trigger()) // memoizes P under Desired == WantMustAlias
	if r := o.Alias(propP()); r.Result != NoAlias {
		t.Fatalf("top-level P = %s, want NoAlias: the desired-result-degraded premise resolution leaked into the desired-free ask", r.Result)
	}
}
