package core

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"scaf/internal/ir"
)

// Revoker reports assertions that have been withdrawn — violated at run
// time and quarantined (see internal/recovery). Keys are the wire identity
// Assertion.String(). Implementations must be safe for concurrent use and
// monotonic: once a key is revoked it stays revoked, so a revocation
// observed before a cache lookup is guaranteed to make that lookup miss.
type Revoker interface {
	RevokedAssert(key string) bool
}

// CachePeer is a second-level lookaside tier behind a SharedCache — the
// seam the fleet layer plugs a *remote* cache into. On a local top-level
// miss the cache consults the peer; on a local canonical publication it
// notifies the peer. Because the cache only ever publishes canonical
// entries (complete, top-level, untainted — see the publication rule
// below), everything a peer can return is a pure function of the
// proposition and the configuration, so a remote hit is byte-identical to
// a fresh local resolution by the same argument that makes local shared
// hits safe.
//
// Implementations decide their own key space and serialization (the fleet
// tier keys on process-independent wire refs and round-trips responses
// through a codec); a peer that cannot represent a query exactly must
// report a miss on Get and ignore the Put — partial coverage degrades hit
// rate, never answers. Implementations must be safe for concurrent use.
type CachePeer interface {
	GetAlias(q *AliasQuery) (AliasResponse, bool)
	PutAlias(q *AliasQuery, asserts []string, r AliasResponse)
	GetModRef(q *ModRefQuery) (ModRefResponse, bool)
	PutModRef(q *ModRefQuery, asserts []string, r ModRefResponse)
}

// SharedCache is a concurrency-safe memo table for query results, shared
// by several orchestrators (typically one per worker goroutine) analyzing
// the same program under the same configuration. Cached propositions embed
// module answers, so a cache must never be shared across orchestrators
// with different module sets, policies, or routing — build one cache per
// (program, configuration) pair.
//
// Publication rule: the orchestrator publishes only canonical entries —
// complete (not cut short by the timeout policy), top-level (depth 0, so
// no enclosing in-flight proposition could have degraded a nested premise
// into a conservative cycle-break), untainted (no module panic), and for
// alias queries only the Desired == AnyAlias form (the desired-result
// parameter changes which modules answer, not the proposition, so other
// forms are not canonical). Lookups are restricted to the same top-level
// queries. Because a canonical resolution is a pure function of the
// proposition and the configuration, a hit is bit-identical to a fresh
// resolution, and parallel runs sharing a cache stay equivalent to serial
// runs no matter how workers interleave.
//
// Recovery support: each entry records the String() keys of every
// assertion its options are predicated on, and an inverted index maps
// assertion key → dependent entries. A violated assertion therefore
// invalidates exactly the answers predicated on it (InvalidateAsserts),
// and an attached Revoker (SetRevoker) is consulted on every lookup so a
// revocation is effective the instant it happens — even before the
// invalidation sweep runs.
type SharedCache struct {
	alias  [sharedShards]aliasShard
	modref [sharedShards]modrefShard

	// revMu guards revoker; reads are per-lookup, writes are rare.
	revMu   sync.RWMutex
	revoker Revoker

	// peerMu guards peer — the optional remote lookaside tier.
	peerMu sync.RWMutex
	peer   CachePeer

	// idxMu guards index: assertion key → entries predicated on it.
	// Refs are append-only and may go stale once an entry is deleted or
	// replaced; stale refs are harmless (invalidation deletes by key and
	// reports only entries actually removed).
	idxMu sync.Mutex
	index map[string][]entryRef

	// intern is the session's assertion-identity table: every orchestrator
	// attached to this cache interns through it, so handle equality spans
	// worker goroutines and published entries always carry handles.
	intern *Interner
}

const sharedShards = 64

type aliasShard struct {
	mu sync.RWMutex
	m  map[aliasKey]aliasEntry
}

type modrefShard struct {
	mu sync.RWMutex
	m  map[modrefKey]modrefEntry
}

// aliasEntry pairs a published response with the deduplicated, sorted
// String() keys of every assertion appearing in any of its options — nil
// for assertion-free answers, which therefore cost nothing extra and can
// never be invalidated.
type aliasEntry struct {
	resp    AliasResponse
	asserts []string
}

type modrefEntry struct {
	resp    ModRefResponse
	asserts []string
}

// entryRef names one cache entry in the inverted index.
type entryRef struct {
	alias bool
	a     aliasKey
	m     modrefKey
}

// NewSharedCache returns an empty cache ready for concurrent use.
func NewSharedCache() *SharedCache {
	c := &SharedCache{index: map[string][]entryRef{}, intern: NewInterner()}
	for i := range c.alias {
		c.alias[i].m = map[aliasKey]aliasEntry{}
	}
	for i := range c.modref {
		c.modref[i].m = map[modrefKey]modrefEntry{}
	}
	return c
}

// Interner returns the cache's session-scoped assertion-identity table.
func (c *SharedCache) Interner() *Interner { return c.intern }

// SetPeer attaches (or, with nil, detaches) the remote lookaside tier.
// Safe to call concurrently with queries; typically set once at session
// construction.
func (c *SharedCache) SetPeer(p CachePeer) {
	c.peerMu.Lock()
	c.peer = p
	c.peerMu.Unlock()
}

func (c *SharedCache) currentPeer() CachePeer {
	c.peerMu.RLock()
	p := c.peer
	c.peerMu.RUnlock()
	return p
}

// SetRevoker attaches (or, with nil, detaches) the revocation source
// consulted on every lookup and publication. Safe to call concurrently
// with queries; typically set once at session construction.
func (c *SharedCache) SetRevoker(r Revoker) {
	c.revMu.Lock()
	c.revoker = r
	c.revMu.Unlock()
}

func (c *SharedCache) currentRevoker() Revoker {
	c.revMu.RLock()
	r := c.revoker
	c.revMu.RUnlock()
	return r
}

// revoked reports whether any of the entry's supporting assertions has
// been withdrawn by the attached Revoker.
func (c *SharedCache) revoked(asserts []string) bool {
	if len(asserts) == 0 {
		return false
	}
	r := c.currentRevoker()
	if r == nil {
		return false
	}
	for _, k := range asserts {
		if r.RevokedAssert(k) {
			return true
		}
	}
	return false
}

// Len reports the number of published alias and mod-ref entries.
func (c *SharedCache) Len() (alias, modref int) {
	for i := range c.alias {
		c.alias[i].mu.RLock()
		alias += len(c.alias[i].m)
		c.alias[i].mu.RUnlock()
	}
	for i := range c.modref {
		c.modref[i].mu.RLock()
		modref += len(c.modref[i].m)
		c.modref[i].mu.RUnlock()
	}
	return alias, modref
}

// IndexedAsserts reports how many distinct assertion keys the inverted
// index currently tracks (stale keys included until invalidated).
func (c *SharedCache) IndexedAsserts() int {
	c.idxMu.Lock()
	n := len(c.index)
	c.idxMu.Unlock()
	return n
}

// getAlias answers a top-level lookup: the local table first, then — when
// the caller permits (usePeer) — the attached remote peer. A peer hit is
// interned through the session's interner, installed locally (without
// echoing back to the peer) and reported with remote=true so the
// orchestrator can account for it.
func (c *SharedCache) getAlias(k aliasKey, q *AliasQuery, usePeer bool) (resp AliasResponse, ok, remote bool) {
	s := &c.alias[k.shard()%sharedShards]
	s.mu.RLock()
	e, found := s.m[k]
	s.mu.RUnlock()
	if found && !c.revoked(e.asserts) {
		return e.resp, true, false
	}
	if !usePeer {
		return AliasResponse{}, false, false
	}
	p := c.currentPeer()
	if p == nil {
		return AliasResponse{}, false, false
	}
	r, hit := p.GetAlias(q)
	if !hit {
		return AliasResponse{}, false, false
	}
	r.Options = c.intern.options(r.Options)
	// The peer's entry may predicate on an assertion this process has
	// already revoked (recovery broadcasts race); the Revoker stays
	// authoritative over anything remote.
	if c.revoked(optionAssertKeys(r.Options)) {
		return AliasResponse{}, false, false
	}
	c.installAlias(k, r)
	return r, true, true
}

func (c *SharedCache) putAlias(k aliasKey, r AliasResponse) {
	if inserted, asserts := c.installAlias(k, r); inserted {
		if p := c.currentPeer(); p != nil {
			p.PutAlias(k.query(), asserts, r)
		}
	}
}

// installAlias inserts locally under the first-entry-wins rule, without
// notifying the peer — shared by local publication (which then notifies)
// and peer-hit installation (which must not echo).
func (c *SharedCache) installAlias(k aliasKey, r AliasResponse) (bool, []string) {
	asserts := optionAssertKeys(r.Options)
	if c.revoked(asserts) {
		// A concurrent revocation already withdrew one of this answer's
		// premises; publishing it would let lookups race past the Revoker.
		return false, nil
	}
	s := &c.alias[k.shard()%sharedShards]
	s.mu.Lock()
	old, exists := s.m[k]
	// First entry wins — except that an entry predicated on a since-revoked
	// assertion no longer answers lookups and must not squat on the slot.
	inserted := !exists || c.revoked(old.asserts)
	if inserted {
		s.m[k] = aliasEntry{resp: r, asserts: asserts}
	}
	s.mu.Unlock()
	if inserted && len(asserts) > 0 {
		c.indexEntry(asserts, entryRef{alias: true, a: k})
	}
	return inserted, asserts
}

func (c *SharedCache) getModRef(k modrefKey, q *ModRefQuery, usePeer bool) (resp ModRefResponse, ok, remote bool) {
	s := &c.modref[k.shard()%sharedShards]
	s.mu.RLock()
	e, found := s.m[k]
	s.mu.RUnlock()
	if found && !c.revoked(e.asserts) {
		return e.resp, true, false
	}
	if !usePeer {
		return ModRefResponse{}, false, false
	}
	p := c.currentPeer()
	if p == nil {
		return ModRefResponse{}, false, false
	}
	r, hit := p.GetModRef(q)
	if !hit {
		return ModRefResponse{}, false, false
	}
	r.Options = c.intern.options(r.Options)
	if c.revoked(optionAssertKeys(r.Options)) {
		return ModRefResponse{}, false, false
	}
	c.installModRef(k, r)
	return r, true, true
}

func (c *SharedCache) putModRef(k modrefKey, r ModRefResponse) {
	if inserted, asserts := c.installModRef(k, r); inserted {
		if p := c.currentPeer(); p != nil {
			p.PutModRef(k.query(), asserts, r)
		}
	}
}

func (c *SharedCache) installModRef(k modrefKey, r ModRefResponse) (bool, []string) {
	asserts := optionAssertKeys(r.Options)
	if c.revoked(asserts) {
		return false, nil
	}
	s := &c.modref[k.shard()%sharedShards]
	s.mu.Lock()
	old, exists := s.m[k]
	inserted := !exists || c.revoked(old.asserts)
	if inserted {
		s.m[k] = modrefEntry{resp: r, asserts: asserts}
	}
	s.mu.Unlock()
	if inserted && len(asserts) > 0 {
		c.indexEntry(asserts, entryRef{alias: false, m: k})
	}
	return inserted, asserts
}

// OptionAssertKeys exposes the deduplicated, sorted assertion keys of an
// option set — what a CachePeer needs to index entries for invalidation.
func OptionAssertKeys(opts []Option) []string { return optionAssertKeys(opts) }

func (c *SharedCache) indexEntry(asserts []string, ref entryRef) {
	c.idxMu.Lock()
	for _, a := range asserts {
		c.index[a] = append(c.index[a], ref)
	}
	c.idxMu.Unlock()
}

// Invalidated lists the canonical queries whose cached answers an
// invalidation removed — exactly the propositions a recovery pass must
// re-resolve under the degraded plan. Queries are reconstructed from the
// cache keys (top-level form, Desired == AnyAlias) and returned in a
// deterministic order.
type Invalidated struct {
	Alias  []*AliasQuery
	ModRef []*ModRefQuery
}

// Total is the number of removed entries.
func (iv Invalidated) Total() int { return len(iv.Alias) + len(iv.ModRef) }

// InvalidateAsserts removes every cache entry predicated on any of the
// given assertion keys (Assertion.String() identities) and returns the
// queries those entries answered. Entries whose options never mention a
// given key are untouched — the inverted index makes invalidation exact,
// not a flush. Safe for concurrent use with queries; lookups racing an
// invalidation are already protected by the Revoker check.
func (c *SharedCache) InvalidateAsserts(keys []string) Invalidated {
	refs := map[entryRef]bool{}
	c.idxMu.Lock()
	for _, k := range keys {
		for _, ref := range c.index[k] {
			refs[ref] = true
		}
		delete(c.index, k)
	}
	c.idxMu.Unlock()

	var out Invalidated
	for ref := range refs {
		if ref.alias {
			s := &c.alias[ref.a.shard()%sharedShards]
			s.mu.Lock()
			_, ok := s.m[ref.a]
			delete(s.m, ref.a)
			s.mu.Unlock()
			if ok {
				out.Alias = append(out.Alias, ref.a.query())
			}
		} else {
			s := &c.modref[ref.m.shard()%sharedShards]
			s.mu.Lock()
			_, ok := s.m[ref.m]
			delete(s.m, ref.m)
			s.mu.Unlock()
			if ok {
				out.ModRef = append(out.ModRef, ref.m.query())
			}
		}
	}
	sort.Slice(out.Alias, func(i, j int) bool {
		return out.Alias[i].describe() < out.Alias[j].describe()
	})
	sort.Slice(out.ModRef, func(i, j int) bool {
		return out.ModRef[i].describe() < out.ModRef[j].describe()
	})
	return out
}

// Flush drops every entry and the whole inverted index, returning the
// number of removed alias and mod-ref entries. This is the (deliberately
// blunt) recovery rule for a quarantined *module*: a module contributes to
// answers through premises without necessarily appearing in their
// assertion sets, so per-entry attribution would under-invalidate.
func (c *SharedCache) Flush() (alias, modref int) {
	for i := range c.alias {
		c.alias[i].mu.Lock()
		alias += len(c.alias[i].m)
		c.alias[i].m = map[aliasKey]aliasEntry{}
		c.alias[i].mu.Unlock()
	}
	for i := range c.modref {
		c.modref[i].mu.Lock()
		modref += len(c.modref[i].m)
		c.modref[i].m = map[modrefKey]modrefEntry{}
		c.modref[i].mu.Unlock()
	}
	c.idxMu.Lock()
	c.index = map[string][]entryRef{}
	c.idxMu.Unlock()
	return alias, modref
}

// query reconstructs the canonical top-level query an aliasKey was
// published under (Desired == AnyAlias by the publication rule).
func (k aliasKey) query() *AliasQuery {
	return &AliasQuery{
		L1:   MemLoc{Ptr: k.p1, Size: k.s1},
		L2:   MemLoc{Ptr: k.p2, Size: k.s2},
		Rel:  k.rel,
		Loop: k.loop,
		DT:   k.dt,
		PDT:  k.pdt,
	}
}

func (k modrefKey) query() *ModRefQuery {
	return &ModRefQuery{
		I1:   k.i1,
		I2:   k.i2,
		Loc:  MemLoc{Ptr: k.locPtr, Size: k.locSize},
		Rel:  k.rel,
		Loop: k.loop,
		DT:   k.dt,
		PDT:  k.pdt,
	}
}

// optionAssertKeys collects the deduplicated, sorted String() keys of
// every assertion across the option set; nil when the answer is
// assertion-free. The assertion-free case — every NoDep answer memory
// analysis proves outright — is the common one on the publication path, so
// it is detected with a scan and returns without allocating anything.
func optionAssertKeys(opts []Option) []string {
	n := 0
	for _, o := range opts {
		n += len(o.Asserts)
	}
	if n == 0 {
		return nil
	}
	keys := make([]string, 0, n)
	for _, o := range opts {
	perAssert:
		for i := range o.Asserts {
			k := o.Asserts[i].String()
			// Assertion sets are tiny (a handful of distinct checks per
			// answer), so a linear dedup scan beats a map allocation.
			for _, have := range keys {
				if have == k {
					continue perAssert
				}
			}
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// shard hashes the proposition for shard selection only — collisions are
// harmless (they just co-locate entries), so a cheap mix of the stable
// integer fields suffices.
func (k aliasKey) shard() uint64 {
	h := uint64(17)
	h = h*31 + valueID(k.p1)
	h = h*31 + valueID(k.p2)
	h = h*31 + uint64(k.s1)
	h = h*31 + uint64(k.s2)
	h = h*31 + uint64(k.rel)
	return h
}

func (k modrefKey) shard() uint64 {
	h := uint64(23)
	if k.i1 != nil {
		h = h*31 + uint64(k.i1.ID)
	}
	if k.i2 != nil {
		h = h*31 + uint64(k.i2.ID)
	}
	h = h*31 + valueID(k.locPtr)
	h = h*31 + uint64(k.locSize)
	h = h*31 + uint64(k.rel)
	return h
}

// valueID extracts a stable integer from the common ir.Value shapes.
// Every shape must map to a per-type discriminant: an unknown kind that
// hashed to a constant would funnel every query over it into one shard,
// serializing that shard's lock (see TestValueIDShardDistribution).
func valueID(v ir.Value) uint64 {
	switch t := v.(type) {
	case nil:
		return 0
	case *ir.Instr:
		return uint64(t.ID)*4 + 1
	case *ir.Param:
		return uint64(t.Idx)*4 + 2
	case *ir.ConstInt:
		return uint64(t.V)*4 + 3
	case *ir.ConstFloat:
		return math.Float64bits(t.V)*4 + 11
	case *ir.ConstNull:
		return 13
	case *ir.Global:
		h := uint64(1469598103934665603)
		for i := 0; i < len(t.GName); i++ {
			h = (h ^ uint64(t.GName[i])) * 1099511628211
		}
		return h
	default:
		// A value kind this switch does not know yet still gets a spread:
		// hash the dynamic type name and the value's printed form so
		// distinct values land in distinct shards instead of all colliding
		// on one constant. Cold path — every current kind is enumerated
		// above.
		h := uint64(1469598103934665603)
		for _, s := range [2]string{fmt.Sprintf("%T", v), v.String()} {
			for i := 0; i < len(s); i++ {
				h = (h ^ uint64(s[i])) * 1099511628211
			}
		}
		return h
	}
}
