package core

import (
	"sync"

	"scaf/internal/ir"
)

// SharedCache is a concurrency-safe memo table for query results, shared
// by several orchestrators (typically one per worker goroutine) analyzing
// the same program under the same configuration. Cached propositions embed
// module answers, so a cache must never be shared across orchestrators
// with different module sets, policies, or routing — build one cache per
// (program, configuration) pair.
//
// Publication rule: the orchestrator publishes only canonical entries —
// complete (not cut short by the timeout policy), top-level (depth 0, so
// no enclosing in-flight proposition could have degraded a nested premise
// into a conservative cycle-break), and for alias queries only the
// Desired == AnyAlias form (the desired-result parameter changes which
// modules answer, not the proposition, so other forms are not canonical).
// Lookups are restricted to the same top-level queries. Because a
// canonical resolution is a pure function of the proposition and the
// configuration, a hit is bit-identical to a fresh resolution, and
// parallel runs sharing a cache stay equivalent to serial runs no matter
// how workers interleave.
type SharedCache struct {
	alias  [sharedShards]aliasShard
	modref [sharedShards]modrefShard
}

const sharedShards = 64

type aliasShard struct {
	mu sync.RWMutex
	m  map[aliasKey]AliasResponse
}

type modrefShard struct {
	mu sync.RWMutex
	m  map[modrefKey]ModRefResponse
}

// NewSharedCache returns an empty cache ready for concurrent use.
func NewSharedCache() *SharedCache {
	c := &SharedCache{}
	for i := range c.alias {
		c.alias[i].m = map[aliasKey]AliasResponse{}
	}
	for i := range c.modref {
		c.modref[i].m = map[modrefKey]ModRefResponse{}
	}
	return c
}

// Len reports the number of published alias and mod-ref entries.
func (c *SharedCache) Len() (alias, modref int) {
	for i := range c.alias {
		c.alias[i].mu.RLock()
		alias += len(c.alias[i].m)
		c.alias[i].mu.RUnlock()
	}
	for i := range c.modref {
		c.modref[i].mu.RLock()
		modref += len(c.modref[i].m)
		c.modref[i].mu.RUnlock()
	}
	return alias, modref
}

func (c *SharedCache) getAlias(k aliasKey) (AliasResponse, bool) {
	s := &c.alias[k.shard()%sharedShards]
	s.mu.RLock()
	r, ok := s.m[k]
	s.mu.RUnlock()
	return r, ok
}

func (c *SharedCache) putAlias(k aliasKey, r AliasResponse) {
	s := &c.alias[k.shard()%sharedShards]
	s.mu.Lock()
	if _, ok := s.m[k]; !ok {
		s.m[k] = r
	}
	s.mu.Unlock()
}

func (c *SharedCache) getModRef(k modrefKey) (ModRefResponse, bool) {
	s := &c.modref[k.shard()%sharedShards]
	s.mu.RLock()
	r, ok := s.m[k]
	s.mu.RUnlock()
	return r, ok
}

func (c *SharedCache) putModRef(k modrefKey, r ModRefResponse) {
	s := &c.modref[k.shard()%sharedShards]
	s.mu.Lock()
	if _, ok := s.m[k]; !ok {
		s.m[k] = r
	}
	s.mu.Unlock()
}

// shard hashes the proposition for shard selection only — collisions are
// harmless (they just co-locate entries), so a cheap mix of the stable
// integer fields suffices.
func (k aliasKey) shard() uint64 {
	h := uint64(17)
	h = h*31 + valueID(k.p1)
	h = h*31 + valueID(k.p2)
	h = h*31 + uint64(k.s1)
	h = h*31 + uint64(k.s2)
	h = h*31 + uint64(k.rel)
	return h
}

func (k modrefKey) shard() uint64 {
	h := uint64(23)
	if k.i1 != nil {
		h = h*31 + uint64(k.i1.ID)
	}
	if k.i2 != nil {
		h = h*31 + uint64(k.i2.ID)
	}
	h = h*31 + valueID(k.locPtr)
	h = h*31 + uint64(k.locSize)
	h = h*31 + uint64(k.rel)
	return h
}

// valueID extracts a stable integer from the common ir.Value shapes.
func valueID(v ir.Value) uint64 {
	switch t := v.(type) {
	case nil:
		return 0
	case *ir.Instr:
		return uint64(t.ID) + 1
	case *ir.Param:
		return uint64(t.Idx) + 7
	case *ir.ConstInt:
		return uint64(t.V)*2 + 3
	case *ir.Global:
		h := uint64(1469598103934665603)
		for i := 0; i < len(t.GName); i++ {
			h = (h ^ uint64(t.GName[i])) * 1099511628211
		}
		return h
	default:
		return 5
	}
}
