package core

import (
	"testing"
	"time"

	"scaf/internal/ir"
)

// TestTimeoutCountedOncePerQuery is the regression test for the Timeouts
// over-count: once the budget expires, every consult loop at every premise
// depth re-checks the deadline, and each check used to increment the
// counter. One timed-out top-level query must count exactly once.
func TestTimeoutCountedOncePerQuery(t *testing.T) {
	// slow burns the whole budget, then issues several premise queries;
	// each premise opens a consult loop whose deadline check fires.
	slow := &fakeModule{name: "slow"}
	slow.modref = func(q *ModRefQuery, h Handle) ModRefResponse {
		if q.Rel != Same {
			return ModRefConservative() // premise: answer without recursing
		}
		time.Sleep(3 * time.Millisecond)
		for i := 0; i < 4; i++ {
			h.PremiseModRef(&ModRefQuery{Rel: Before, Loc: MemLoc{Ptr: ir.CI(int64(i)), Size: 8}})
		}
		return ModRefConservative()
	}
	tail := &fakeModule{name: "tail"}
	o := NewOrchestrator(Config{
		Modules: []Module{slow, tail},
		Timeout: time.Millisecond,
	})
	o.ModRef(&ModRefQuery{})
	st := o.Stats()
	if st.Timeouts != 1 {
		t.Errorf("Timeouts = %d, want exactly 1 for one timed-out query", st.Timeouts)
	}
	if st.Timeouts > st.TopQueries {
		t.Errorf("Timeouts (%d) exceeds TopQueries (%d)", st.Timeouts, st.TopQueries)
	}
	// A second, identical query counts its own (single) timeout.
	o.ModRef(&ModRefQuery{Rel: Same, Loc: MemLoc{Ptr: ir.CI(99), Size: 8}})
	if st.Timeouts != 2 || st.Timeouts > st.TopQueries {
		t.Errorf("after second query: Timeouts = %d, TopQueries = %d", st.Timeouts, st.TopQueries)
	}
}

// TestTimeoutReturnsBestSoFar exercises the Config.Timeout bail-out path
// directly: the best answer found before the budget expired must be
// returned, and the cut-short search must count exactly one timeout.
func TestTimeoutReturnsBestSoFar(t *testing.T) {
	partial := &fakeModule{name: "partial", alias: func(q *AliasQuery, h Handle) AliasResponse {
		return AliasFact(PartialAlias, "partial")
	}}
	slow := &fakeModule{name: "slow", alias: func(q *AliasQuery, h Handle) AliasResponse {
		time.Sleep(3 * time.Millisecond)
		return MayAliasResponse()
	}}
	definite := &fakeModule{name: "definite", alias: func(q *AliasQuery, h Handle) AliasResponse {
		return AliasFact(NoAlias, "definite")
	}}
	o := NewOrchestrator(Config{
		Modules: []Module{partial, slow, definite},
		Bailout: BailExhaustive, // only the deadline can stop the search
		Timeout: time.Millisecond,
	})
	r := o.Alias(aq())
	if r.Result != PartialAlias {
		t.Errorf("result = %s, want the best-so-far PartialAlias", r.Result)
	}
	if definite.queried != 0 {
		t.Error("search continued past the expired budget")
	}
	st := o.Stats()
	if st.Timeouts != 1 {
		t.Errorf("Timeouts = %d, want 1", st.Timeouts)
	}
	// Without the timeout the same ensemble reaches the definite answer.
	o2 := NewOrchestrator(Config{Modules: []Module{partial, slow, definite}, Bailout: BailExhaustive})
	if r2 := o2.Alias(aq()); r2.Result != NoAlias {
		t.Errorf("untimed result = %s, want NoAlias", r2.Result)
	}
}

// cycleFixture builds the cycle-taint scenario: resolving q0 first forces
// q1 to resolve inside q0's flight, where q1's premise on q0 breaks as a
// conservative cycle — a degraded answer that must not be memoized,
// because a fresh resolution of q1 is strictly more precise.
//
//	asker:  alias(q0) → premise(q1); NoAlias iff the premise is NoAlias
//	cyclic: alias(q1) → premise(q0); NoAlias iff the premise is NoAlias
//	base:   alias(q0) → NoAlias fact
//
// Fresh q1: cyclic's premise q0 resolves completely (its own nested
// premise q1 cycle-breaks, but base still proves NoAlias) → q1 = NoAlias.
// q1 nested under q0: the premise on q0 is a cycle break → q1 = MayAlias.
func cycleFixture() (o *Orchestrator, q0, q1 *AliasQuery) {
	p1, p2 := ir.CI(1), ir.CI(2)
	mkq := func(size int64) *AliasQuery {
		return &AliasQuery{L1: MemLoc{Ptr: p1, Size: size}, L2: MemLoc{Ptr: p2, Size: size}}
	}
	q0, q1 = mkq(8), mkq(16)
	asker := &fakeModule{name: "asker"}
	asker.alias = func(q *AliasQuery, h Handle) AliasResponse {
		if q.L1.Size != q0.L1.Size {
			return MayAliasResponse()
		}
		if h.PremiseAlias(q1).Result == NoAlias {
			return AliasFact(NoAlias, "asker")
		}
		return MayAliasResponse()
	}
	cyclic := &fakeModule{name: "cyclic"}
	cyclic.alias = func(q *AliasQuery, h Handle) AliasResponse {
		if q.L1.Size != q1.L1.Size {
			return MayAliasResponse()
		}
		if h.PremiseAlias(q0).Result == NoAlias {
			return AliasFact(NoAlias, "cyclic")
		}
		return MayAliasResponse()
	}
	base := &fakeModule{name: "base"}
	base.alias = func(q *AliasQuery, h Handle) AliasResponse {
		if q.L1.Size == q0.L1.Size {
			return AliasFact(NoAlias, "base")
		}
		return MayAliasResponse()
	}
	o = NewOrchestrator(Config{
		Modules:     []Module{asker, cyclic, base},
		EnableCache: true,
	})
	return o, q0, q1
}

// TestCycleTaintedResolutionNotCached is the regression test for
// cycle-tainted memoization: a proposition first resolved inside a premise
// cycle must not publish its conservatively degraded answer, so a later
// top-level ask of the same proposition is as precise as a fresh one.
func TestCycleTaintedResolutionNotCached(t *testing.T) {
	o, q0, q1 := cycleFixture()
	// Reference: a fresh orchestrator resolves q1 to NoAlias.
	fresh, _, fq1 := cycleFixture()
	if r := fresh.Alias(fq1); r.Result != NoAlias {
		t.Fatalf("fixture broken: fresh q1 = %s, want NoAlias", r.Result)
	}
	// Resolving q0 first forces q1 through the cycle-degraded path.
	if r := o.Alias(q0); r.Result != NoAlias {
		t.Fatalf("q0 = %s, want NoAlias", r.Result)
	}
	if o.Stats().CycleBreaks == 0 {
		t.Fatal("fixture broken: no premise cycle occurred")
	}
	// The poisoned-cache bug: the degraded q1 = MayAlias was memoized
	// during q0's resolution and served here.
	if r := o.Alias(q1); r.Result != NoAlias {
		t.Errorf("cached q1 = %s, want NoAlias (cycle-tainted entry was published)", r.Result)
	}
}

// TestCacheStillServesCompleteEntries guards the other direction: the
// taint must not suppress memoization of clean resolutions, including ones
// whose only cycle is internal to their own subtree (deterministic on a
// fresh resolution, hence safe to cache).
func TestCacheStillServesCompleteEntries(t *testing.T) {
	calls := 0
	inner := &fakeModule{name: "inner", alias: func(q *AliasQuery, h Handle) AliasResponse {
		calls++
		return AliasFact(NoAlias, "inner")
	}}
	loopy := &fakeModule{name: "loopy"}
	loopy.alias = func(q *AliasQuery, h Handle) AliasResponse {
		same := *q
		return h.PremiseAlias(&same) // self-cycle, internal to this resolution
	}
	o := NewOrchestrator(Config{Modules: []Module{loopy, inner}, EnableCache: true})
	q := aq()
	if r := o.Alias(q); r.Result != NoAlias {
		t.Fatalf("first ask = %s", r.Result)
	}
	if r := o.Alias(q); r.Result != NoAlias {
		t.Fatalf("second ask = %s", r.Result)
	}
	if o.Stats().CacheHits != 1 {
		t.Errorf("cache hits = %d, want 1: internal-cycle resolutions are pure and cacheable",
			o.Stats().CacheHits)
	}
	if calls != 1 {
		t.Errorf("inner consulted %d times, want 1", calls)
	}
}

// TestDepthLimitTaintNotCached: a proposition first resolved as a deep
// premise can be truncated by MaxDepth where a fresh (depth-0) resolution
// would not be; the truncated answer must not be memoized.
func TestDepthLimitTaintNotCached(t *testing.T) {
	p1, p2 := ir.CI(1), ir.CI(2)
	mkq := func(size int64) *AliasQuery {
		return &AliasQuery{L1: MemLoc{Ptr: p1, Size: size}, L2: MemLoc{Ptr: p2, Size: size}}
	}
	// chain resolves size-n propositions by asking size-(n+1) premises;
	// size 5 is proven NoAlias directly.
	chain := &fakeModule{name: "chain"}
	chain.alias = func(q *AliasQuery, h Handle) AliasResponse {
		if q.L1.Size == 5 {
			return AliasFact(NoAlias, "chain")
		}
		if h.PremiseAlias(mkq(q.L1.Size+1)).Result == NoAlias {
			return AliasFact(NoAlias, "chain")
		}
		return MayAliasResponse()
	}
	o := NewOrchestrator(Config{Modules: []Module{chain}, EnableCache: true, MaxDepth: 3})
	// Top-level size 1: needs 4 premise levels (2→5) but only 3 are
	// allowed, so the size-2 resolution is truncated and degraded.
	if r := o.Alias(mkq(1)); r.Result != MayAlias {
		t.Fatalf("size-1 = %s, want MayAlias (depth-limited)", r.Result)
	}
	if o.Stats().DepthLimits == 0 {
		t.Fatal("fixture broken: depth limit never hit")
	}
	// Fresh top-level size 2 needs only 3 premise levels (3→5): NoAlias.
	// The bug would serve the truncated MayAlias cached during the first
	// resolution.
	if r := o.Alias(mkq(2)); r.Result != NoAlias {
		t.Errorf("size-2 = %s, want NoAlias (depth-tainted entry was published)", r.Result)
	}
}
