package core

import (
	"testing"

	"scaf/internal/ir"
)

// fakeModule returns canned responses and can issue premise queries.
type fakeModule struct {
	BaseModule
	name    string
	kind    ModuleKind
	alias   func(q *AliasQuery, h Handle) AliasResponse
	modref  func(q *ModRefQuery, h Handle) ModRefResponse
	queried int
}

func (f *fakeModule) Name() string     { return f.name }
func (f *fakeModule) Kind() ModuleKind { return f.kind }

func (f *fakeModule) Alias(q *AliasQuery, h Handle) AliasResponse {
	f.queried++
	if f.alias == nil {
		return MayAliasResponse()
	}
	return f.alias(q, h)
}

func (f *fakeModule) ModRef(q *ModRefQuery, h Handle) ModRefResponse {
	f.queried++
	if f.modref == nil {
		return ModRefConservative()
	}
	return f.modref(q, h)
}

func aq() *AliasQuery {
	return &AliasQuery{L1: MemLoc{Ptr: ir.CI(1), Size: 8}, L2: MemLoc{Ptr: ir.CI(2), Size: 8}}
}

func TestOrchestratorPrecisionWins(t *testing.T) {
	m1 := &fakeModule{name: "weak", alias: func(q *AliasQuery, h Handle) AliasResponse {
		return AliasFact(PartialAlias, "weak")
	}}
	m2 := &fakeModule{name: "strong", alias: func(q *AliasQuery, h Handle) AliasResponse {
		return AliasFact(NoAlias, "strong")
	}}
	o := NewOrchestrator(Config{Modules: []Module{m1, m2}})
	r := o.Alias(aq())
	if r.Result != NoAlias {
		t.Errorf("result = %s", r.Result)
	}
	if len(r.Contribs) != 1 || r.Contribs[0] != "strong" {
		t.Errorf("contribs = %v", r.Contribs)
	}
}

func TestOrchestratorBailsOnDefiniteAffordable(t *testing.T) {
	m1 := &fakeModule{name: "first", alias: func(q *AliasQuery, h Handle) AliasResponse {
		return AliasFact(NoAlias, "first")
	}}
	m2 := &fakeModule{name: "second"}
	o := NewOrchestrator(Config{Modules: []Module{m1, m2}})
	o.Alias(aq())
	if m2.queried != 0 {
		t.Error("second module should not be consulted after definite free result")
	}
}

func TestOrchestratorSkipsProhibitiveBail(t *testing.T) {
	exp := Assertion{Module: "pts", Kind: "objects", Cost: Prohibitive}
	m1 := &fakeModule{name: "pts", alias: func(q *AliasQuery, h Handle) AliasResponse {
		return AliasSpec(NoAlias, "pts", exp)
	}}
	m2 := &fakeModule{name: "cheap", alias: func(q *AliasQuery, h Handle) AliasResponse {
		return AliasSpec(NoAlias, "cheap", Assertion{Module: "cheap", Kind: "k", Cost: 5})
	}}
	o := NewOrchestrator(Config{Modules: []Module{m1, m2}})
	r := o.Alias(aq())
	if r.Result != NoAlias {
		t.Fatalf("result = %s", r.Result)
	}
	if MinCost(r.Options) != 5 {
		t.Errorf("min cost = %g, want the cheap option", MinCost(r.Options))
	}
	if m2.queried == 0 {
		t.Error("search must continue past prohibitively-priced definite answers")
	}
}

func TestModRefModTimesRef(t *testing.T) {
	a1 := Assertion{Module: "m1", Kind: "a", Cost: 1}
	a2 := Assertion{Module: "m2", Kind: "b", Cost: 2}
	m1 := &fakeModule{name: "m1", modref: func(q *ModRefQuery, h Handle) ModRefResponse {
		return ModRefSpec(Mod, "m1", a1)
	}}
	m2 := &fakeModule{name: "m2", modref: func(q *ModRefQuery, h Handle) ModRefResponse {
		return ModRefSpec(Ref, "m2", a2)
	}}
	o := NewOrchestrator(Config{Modules: []Module{m1, m2}})
	r := o.ModRef(&ModRefQuery{})
	if r.Result != NoModRef {
		t.Fatalf("Mod x Ref should join to NoModRef, got %s", r.Result)
	}
	if MinCost(r.Options) != 3 {
		t.Errorf("combined cost = %g, want 3", MinCost(r.Options))
	}
	if len(r.Contribs) != 2 {
		t.Errorf("contribs = %v", r.Contribs)
	}
}

func TestModRefModTimesRefConflict(t *testing.T) {
	g := &ir.Global{GName: "x", Elem: ir.Int}
	p := Point{G: g}
	a1 := Assertion{Module: "m1", Kind: "a", Cost: 1, Conflicts: []Point{p}}
	a2 := Assertion{Module: "m2", Kind: "b", Cost: 2, Conflicts: []Point{p}}
	m1 := &fakeModule{name: "m1", modref: func(q *ModRefQuery, h Handle) ModRefResponse {
		return ModRefSpec(Mod, "m1", a1)
	}}
	m2 := &fakeModule{name: "m2", modref: func(q *ModRefQuery, h Handle) ModRefResponse {
		return ModRefSpec(Ref, "m2", a2)
	}}
	o := NewOrchestrator(Config{Modules: []Module{m1, m2}, Bailout: BailExhaustive})
	r := o.ModRef(&ModRefQuery{})
	if r.Result == NoModRef {
		t.Error("conflicting assertions must not combine to NoModRef")
	}
	if o.Stats().Conflicts == 0 {
		t.Error("conflict not counted")
	}
}

func TestPremiseRoutingCollaborative(t *testing.T) {
	solver := &fakeModule{name: "solver", alias: func(q *AliasQuery, h Handle) AliasResponse {
		return AliasFact(MustAlias, "solver")
	}}
	asker := &fakeModule{name: "asker", modref: func(q *ModRefQuery, h Handle) ModRefResponse {
		pr := h.PremiseAlias(aq())
		if pr.Result == MustAlias {
			return ModRefResponse{Result: NoModRef, Options: Unconditional(),
				Contribs: MergeContribs([]string{"asker"}, pr.Contribs)}
		}
		return ModRefConservative()
	}}
	o := NewOrchestrator(Config{
		Modules: []Module{asker, solver},
		Routing: RouteCollaborative,
	})
	r := o.ModRef(&ModRefQuery{})
	if r.Result != NoModRef {
		t.Fatalf("collaborative premise failed: %s", r.Result)
	}
	if len(r.Contribs) != 2 {
		t.Errorf("contribs = %v, want asker+solver", r.Contribs)
	}
	if o.Stats().PremiseQueries == 0 {
		t.Error("premise query not counted")
	}
}

func TestPremiseRoutingIsolated(t *testing.T) {
	solver := &fakeModule{name: "solver", alias: func(q *AliasQuery, h Handle) AliasResponse {
		return AliasFact(MustAlias, "solver")
	}}
	asker := &fakeModule{name: "asker", modref: func(q *ModRefQuery, h Handle) ModRefResponse {
		pr := h.PremiseAlias(aq())
		if pr.Result == MustAlias {
			return ModRefFact(NoModRef, "asker")
		}
		return ModRefConservative()
	}}
	o := NewOrchestrator(Config{
		Modules: []Module{asker, solver},
		Routing: RouteIsolated,
		Groups:  map[string]string{"asker": "a", "solver": "b"},
	})
	r := o.ModRef(&ModRefQuery{})
	if r.Result == NoModRef {
		t.Error("isolated routing must not let solver answer asker's premise")
	}

	// Same group: collaboration allowed again.
	o2 := NewOrchestrator(Config{
		Modules: []Module{asker, solver},
		Routing: RouteIsolated,
		Groups:  map[string]string{"asker": "g", "solver": "g"},
	})
	if r2 := o2.ModRef(&ModRefQuery{}); r2.Result != NoModRef {
		t.Errorf("same-group premise should resolve, got %s", r2.Result)
	}
}

func TestPremiseCycleBreaks(t *testing.T) {
	var o *Orchestrator
	m := &fakeModule{name: "loopy"}
	m.alias = func(q *AliasQuery, h Handle) AliasResponse {
		// Ask the very same query again: must get a conservative answer,
		// not infinite recursion.
		return h.PremiseAlias(q)
	}
	o = NewOrchestrator(Config{Modules: []Module{m}})
	r := o.Alias(aq())
	if r.Result != MayAlias {
		t.Errorf("cycle should resolve conservatively, got %s", r.Result)
	}
}

func TestDepthLimit(t *testing.T) {
	m := &fakeModule{name: "deep"}
	i := 0
	m.alias = func(q *AliasQuery, h Handle) AliasResponse {
		i++
		nq := *q
		nq.L1.Size = int64(i) // fresh query each time
		return h.PremiseAlias(&nq)
	}
	o := NewOrchestrator(Config{Modules: []Module{m}, MaxDepth: 5})
	r := o.Alias(aq())
	if r.Result != MayAlias {
		t.Errorf("depth limit should yield conservative result, got %s", r.Result)
	}
	if i > 10 {
		t.Errorf("premise recursion ran %d times, expected depth-limited", i)
	}
}

func TestStripDesired(t *testing.T) {
	var seen DesiredAlias = WantNoAlias
	m := &fakeModule{name: "m", alias: func(q *AliasQuery, h Handle) AliasResponse {
		seen = q.Desired
		return MayAliasResponse()
	}}
	q := aq()
	q.Desired = WantMustAlias
	o := NewOrchestrator(Config{Modules: []Module{m}, StripDesired: true})
	o.Alias(q)
	if seen != AnyAlias {
		t.Errorf("desired not stripped: %s", seen)
	}
	o2 := NewOrchestrator(Config{Modules: []Module{m}})
	o2.Alias(q)
	if seen != WantMustAlias {
		t.Errorf("desired should pass through: %s", seen)
	}
}

func TestConflictingResultsPreferFree(t *testing.T) {
	m1 := &fakeModule{name: "spec", alias: func(q *AliasQuery, h Handle) AliasResponse {
		return AliasSpec(NoAlias, "spec", Assertion{Module: "spec", Kind: "k", Cost: 1})
	}}
	m2 := &fakeModule{name: "fact", alias: func(q *AliasQuery, h Handle) AliasResponse {
		return AliasFact(MustAlias, "fact")
	}}
	o := NewOrchestrator(Config{Modules: []Module{m1, m2}, Bailout: BailExhaustive})
	r := o.Alias(aq())
	if r.Result != MustAlias {
		t.Errorf("free result must win conflicts, got %s", r.Result)
	}
}

func TestOptionAlgebra(t *testing.T) {
	a := Assertion{Module: "m", Kind: "a", Cost: 1}
	b := Assertion{Module: "m", Kind: "b", Cost: 2}
	s1 := []Option{{Asserts: []Assertion{a}}}
	s2 := []Option{{Asserts: []Assertion{b}}}

	cross := CrossOptions(s1, s2)
	if len(cross) != 1 || cross[0].Cost() != 3 {
		t.Errorf("cross = %v", cross)
	}
	union := UnionOptions(s1, s2)
	if len(union) != 2 {
		t.Errorf("union = %v", union)
	}
	cheap := CheapestOf(union)
	if len(cheap) != 1 || cheap[0].Cost() != 1 {
		t.Errorf("cheapest = %v", cheap)
	}
	// Deduplication: same assertion twice costs once.
	both := CrossOptions(s1, s1)
	if len(both) != 1 || both[0].Cost() != 1 {
		t.Errorf("self-cross should dedupe: %v", both)
	}
}

func TestOptionConflictDetection(t *testing.T) {
	g := &ir.Global{GName: "site", Elem: ir.Int}
	p := Point{G: g}
	roA := Assertion{Module: "ro", Kind: "heap", Cost: 1, Conflicts: []Point{p}}
	slA := Assertion{Module: "sl", Kind: "heap", Cost: 1, Conflicts: []Point{p}}
	s1 := []Option{{Asserts: []Assertion{roA}}}
	s2 := []Option{{Asserts: []Assertion{slA}}}
	if !OptionsConflict(s1, s2) {
		t.Error("same conflict point must conflict")
	}
	if CrossOptions(s1, s2) != nil {
		t.Error("cross of conflicting options must be empty")
	}
	// The same assertion does not conflict with itself.
	if OptionsConflict(s1, s1) {
		t.Error("identical assertions must not self-conflict")
	}
}

func TestDecompose(t *testing.T) {
	m := ir.NewModule("t")
	st := ir.NewStruct("pair", ir.Field{Name: "a", Ty: ir.Int}, ir.Field{Name: "b", Ty: ir.Int})
	m.Structs = append(m.Structs, st)
	f := m.NewFunc("f", ir.Void)
	b := f.NewBlock("entry")
	base := b.Malloc(st, ir.CI(64), "p")
	idx := b.IndexPtr(base, ir.CI(3))
	fld := b.FieldAddr(idx, 1)
	b.Ret()

	d := Decompose(fld)
	if d.Base != ir.Value(base) {
		t.Errorf("base = %v", d.Base)
	}
	if !d.KnownOff || d.Off != 3*16+8 {
		t.Errorf("off = %d known=%v, want 56", d.Off, d.KnownOff)
	}
	if !IsAllocationBase(base) {
		t.Error("malloc is an allocation base")
	}
	if sz, ok := BaseObjectSize(base); !ok || sz != 64 {
		t.Errorf("size = %d ok=%v", sz, ok)
	}
}

func TestUnderlyingBasesThroughPhi(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", ir.Void, &ir.Param{PName: "c", Ty: ir.Int})
	entry := f.NewBlock("entry")
	a := entry.Malloc(ir.Int, ir.CI(8), "a")
	bAlloc := entry.Malloc(ir.Int, ir.CI(8), "b")
	then := f.NewBlock("then")
	els := f.NewBlock("else")
	join := f.NewBlock("join")
	entry.CondBr(f.Params[0], then, els)
	then.Br(join)
	els.Br(join)
	phi := join.Phi(ir.PointerTo(ir.Int), "p")
	phi.Args = []ir.Value{a, bAlloc}
	join.Ret()

	bases, complete := UnderlyingBases(phi, 10)
	if !complete || len(bases) != 2 {
		t.Errorf("bases = %v complete = %v", bases, complete)
	}
}
