package core

import (
	"reflect"
	"testing"
)

func namedModules(kinds map[string]ModuleKind, names ...string) []Module {
	out := make([]Module, len(names))
	for i, n := range names {
		out[i] = &fakeModule{name: n, kind: kinds[n]}
	}
	return out
}

func TestReorderModules(t *testing.T) {
	mods := namedModules(nil, "a", "b", "c", "d")
	cases := []struct {
		name  string
		order []string
		want  []string
	}{
		{"full permutation", []string{"c", "a", "d", "b"}, []string{"c", "a", "d", "b"}},
		{"empty order is identity", nil, []string{"a", "b", "c", "d"}},
		{"unknown names ignored", []string{"x", "b", "y", "d"}, []string{"b", "d", "a", "c"}},
		{"unmentioned keep relative order", []string{"d"}, []string{"d", "a", "b", "c"}},
		{"duplicates collapse", []string{"b", "b", "a"}, []string{"b", "a", "c", "d"}},
	}
	for _, tc := range cases {
		got := ModuleNames(ReorderModules(mods, tc.order))
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: ReorderModules(%v) = %v, want %v", tc.name, tc.order, got, tc.want)
		}
	}
	if !reflect.DeepEqual(ModuleNames(mods), []string{"a", "b", "c", "d"}) {
		t.Errorf("ReorderModules mutated its input: %v", ModuleNames(mods))
	}
}

// consult fabricates the trace event the orchestrator emits for one module
// evaluation.
func consult(module, result string, cost float64) TraceEvent {
	return TraceEvent{Kind: TraceConsult, Module: module, Result: result, Cost: cost}
}

func TestOrderProfileCandidateSortsBySettleRate(t *testing.T) {
	p := NewOrderProfile()
	// lazy: 1/3 settle rate; eager: 2/2; never: definite answers only at
	// prohibitive cost, which must not count as settling.
	p.TraceEvent(consult("lazy", "NoAlias", 0))
	p.TraceEvent(consult("lazy", "MayAlias", 0))
	p.TraceEvent(consult("lazy", "ModRef", 0))
	p.TraceEvent(consult("eager", "NoModRef", 2))
	p.TraceEvent(consult("eager", "MustAlias", 0))
	p.TraceEvent(consult("never", "NoAlias", Prohibitive))
	p.TraceEvent(TraceEvent{Kind: TraceCacheHit, Module: "never"}) // non-consults ignored
	mods := namedModules(nil, "lazy", "eager", "never")
	got := p.Candidate(mods)
	want := []string{"eager", "lazy", "never"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Candidate = %v, want %v", got, want)
	}
}

func TestOrderProfileCandidateStaysWithinKind(t *testing.T) {
	kinds := map[string]ModuleKind{
		"m1": MemoryAnalysis, "m2": MemoryAnalysis,
		"s1": Speculation, "s2": Speculation,
	}
	p := NewOrderProfile()
	// Speculation module s2 settles everything; memory analysis settles
	// nothing. The candidate must still keep the memory-analysis block
	// ahead of the speculation block, only reordering inside each.
	p.TraceEvent(consult("s2", "NoModRef", 0))
	p.TraceEvent(consult("s1", "ModRef", 0))
	p.TraceEvent(consult("m2", "NoAlias", 1))
	p.TraceEvent(consult("m2", "NoAlias", 1))
	p.TraceEvent(consult("m1", "MayAlias", 0))
	got := p.Candidate(namedModules(kinds, "m1", "m2", "s1", "s2"))
	want := []string{"m2", "m1", "s2", "s1"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Candidate = %v, want %v", got, want)
	}
}

func TestOrderProfileUnobservedModulesKeepPosition(t *testing.T) {
	p := NewOrderProfile()
	// No trace at all: every rate is 0 and the stable sort must preserve
	// the fixed schedule exactly.
	mods := namedModules(nil, "a", "b", "c")
	if got := p.Candidate(mods); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("Candidate with empty profile = %v, want fixed order", got)
	}
}

func TestConfigModuleOrderAppliesAtConstruction(t *testing.T) {
	trail := []string{}
	mk := func(name string) *fakeModule {
		return &fakeModule{name: name, alias: func(q *AliasQuery, h Handle) AliasResponse {
			trail = append(trail, name)
			return MayAliasResponse()
		}}
	}
	o := NewOrchestrator(Config{
		Modules:     []Module{mk("a"), mk("b"), mk("c")},
		ModuleOrder: []string{"c", "a", "b"},
	})
	o.Alias(aq())
	if want := []string{"c", "a", "b"}; !reflect.DeepEqual(trail, want) {
		t.Fatalf("consult order = %v, want %v", trail, want)
	}
	if got := ModuleNames(o.Modules()); !reflect.DeepEqual(got, []string{"c", "a", "b"}) {
		t.Fatalf("Modules() = %v, want reordered schedule", got)
	}
}
