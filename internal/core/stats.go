package core

import "time"

// MaxLatencySamples bounds Stats.Latencies. RecordLatency keeps the first
// MaxLatencySamples per-query durations and counts the rest in
// LatencyDropped, so long-running orchestrators (and merges of many worker
// stats) stay bounded in memory.
const MaxLatencySamples = 1 << 16

// Stats accumulates orchestration counters.
type Stats struct {
	TopQueries     int64
	PremiseQueries int64
	Conflicts      int64
	// ModuleEvals counts individual module consultations — the
	// deterministic work measure behind query latency.
	ModuleEvals int64
	// CacheHits counts handle() invocations served from the per-orchestrator
	// memo table (Config.EnableCache).
	CacheHits int64
	// SharedHits counts top-level queries served from a cross-orchestrator
	// SharedCache (Config.Shared).
	SharedHits int64
	// RemoteHits counts the subset of SharedHits answered by the cache's
	// attached CachePeer — entries another instance of the fleet resolved
	// and published. Always <= SharedHits.
	RemoteHits int64
	// Timeouts counts top-level queries cut short by the timeout policy —
	// at most one per top-level query, however many premise searches the
	// expired budget subsequently stops.
	Timeouts int64
	// CycleBreaks counts premise queries that re-asked an in-flight
	// proposition and were answered conservatively (paper §3.3's
	// termination rule).
	CycleBreaks int64
	// DepthLimits counts premise queries rejected at Config.MaxDepth.
	DepthLimits int64
	// ModulePanics counts module evaluations that panicked and were
	// converted into conservative answers (Config.IsolatePanics). A
	// panicked resolution is tainted: it is never memoized or published,
	// so the degraded answer is confined to the one query that hit it.
	ModulePanics int64
	// Latencies holds per-top-level-query wall-clock durations when
	// Config.RecordLatency is set, capped at MaxLatencySamples.
	Latencies []time.Duration
	// WorkSamples parallels Latencies with each query's module-eval count —
	// the deterministic work measure behind its wall-clock latency. Unlike
	// wall-clock samples, the multiset of work samples is identical across
	// machines and across serial/parallel runs (absent a SharedCache, whose
	// hits cost zero work and depend on interleaving), so percentile
	// regressions on it are machine-independent.
	WorkSamples []int64
	// LatencyDropped counts latency samples discarded past the cap.
	LatencyDropped int64
}

// recordLatency appends one latency+work sample pair, enforcing the
// MaxLatencySamples cap.
func (s *Stats) recordLatency(d time.Duration, work int64) {
	if len(s.Latencies) >= MaxLatencySamples {
		s.LatencyDropped++
		return
	}
	s.Latencies = append(s.Latencies, d)
	s.WorkSamples = append(s.WorkSamples, work)
}

// Merge folds other into s: counters add, and other's latency samples are
// appended under the same MaxLatencySamples cap (overflow lands in
// LatencyDropped). Aggregation of the counters is deterministic regardless
// of merge order; which latency samples survive the cap depends on the
// order stats are merged in, so callers aggregating worker stats should
// merge in a fixed (e.g. worker-index) order.
func (s *Stats) Merge(other *Stats) {
	if other == nil {
		return
	}
	s.TopQueries += other.TopQueries
	s.PremiseQueries += other.PremiseQueries
	s.Conflicts += other.Conflicts
	s.ModuleEvals += other.ModuleEvals
	s.CacheHits += other.CacheHits
	s.SharedHits += other.SharedHits
	s.RemoteHits += other.RemoteHits
	s.Timeouts += other.Timeouts
	s.CycleBreaks += other.CycleBreaks
	s.DepthLimits += other.DepthLimits
	s.ModulePanics += other.ModulePanics
	s.LatencyDropped += other.LatencyDropped
	for i, d := range other.Latencies {
		// Hand-built Stats may carry latencies without work samples; treat
		// the missing work as zero rather than panicking.
		var work int64
		if i < len(other.WorkSamples) {
			work = other.WorkSamples[i]
		}
		s.recordLatency(d, work)
	}
}
