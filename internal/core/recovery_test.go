package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"scaf/internal/ir"
)

// stubRevoker is a monotonic Revoker for cache tests (internal/recovery's
// Quarantine cannot be imported here without a cycle).
type stubRevoker struct {
	mu sync.Mutex
	m  map[string]bool
}

func newStubRevoker() *stubRevoker { return &stubRevoker{m: map[string]bool{}} }

func (r *stubRevoker) Revoke(key string) {
	r.mu.Lock()
	r.m[key] = true
	r.mu.Unlock()
}

func (r *stubRevoker) RevokedAssert(key string) bool {
	r.mu.Lock()
	v := r.m[key]
	r.mu.Unlock()
	return v
}

func TestPanicIsolationDegradesOneModule(t *testing.T) {
	boom := &fakeModule{name: "boom", alias: func(q *AliasQuery, h Handle) AliasResponse {
		panic("kaboom")
	}}
	good := &fakeModule{name: "good", alias: func(q *AliasQuery, h Handle) AliasResponse {
		return AliasFact(NoAlias, "good")
	}}
	var gotMod string
	var gotVal any
	o := NewOrchestrator(Config{
		Modules:       []Module{boom, good},
		IsolatePanics: true,
		OnModulePanic: func(m string, v any) { gotMod, gotVal = m, v },
	})
	r := o.Alias(aq())
	if r.Result != NoAlias {
		t.Errorf("result = %s, want the surviving module's NoAlias", r.Result)
	}
	if o.Stats().ModulePanics != 1 {
		t.Errorf("ModulePanics = %d, want 1", o.Stats().ModulePanics)
	}
	if gotMod != "boom" || fmt.Sprint(gotVal) != "kaboom" {
		t.Errorf("OnModulePanic got (%q, %v)", gotMod, gotVal)
	}
}

func TestPanicPropagatesWithoutIsolation(t *testing.T) {
	boom := &fakeModule{name: "boom", alias: func(q *AliasQuery, h Handle) AliasResponse {
		panic("kaboom")
	}}
	o := NewOrchestrator(Config{Modules: []Module{boom}})
	defer func() {
		if recover() == nil {
			t.Error("panic must propagate when IsolatePanics is off")
		}
	}()
	o.Alias(aq())
}

// A panicked resolution is tainted: neither the per-orchestrator memo nor
// the SharedCache may publish it, so the degraded answer stays confined to
// the query that hit the panic.
func TestPanicTaintBlocksPublication(t *testing.T) {
	sc := NewSharedCache()
	boom := &fakeModule{name: "boom", alias: func(q *AliasQuery, h Handle) AliasResponse {
		panic("kaboom")
	}}
	o := NewOrchestrator(Config{
		Modules:       []Module{boom},
		IsolatePanics: true,
		EnableCache:   true,
		Shared:        sc,
	})
	o.Alias(aq())
	o.Alias(aq())
	if boom.queried != 2 {
		t.Errorf("queried = %d; a panicked resolution must not be memoized", boom.queried)
	}
	if a, m := sc.Len(); a != 0 || m != 0 {
		t.Errorf("shared cache has %d/%d entries; panicked resolutions must not publish", a, m)
	}
	if o.Stats().ModulePanics != 2 {
		t.Errorf("ModulePanics = %d, want 2", o.Stats().ModulePanics)
	}
}

// A panic inside a premise resolution taints every enclosing frame up to
// and including the root.
func TestPremisePanicTaintsRoot(t *testing.T) {
	sc := NewSharedCache()
	solver := &fakeModule{name: "solver", alias: func(q *AliasQuery, h Handle) AliasResponse {
		panic("premise kaboom")
	}}
	sub := &AliasQuery{L1: MemLoc{Ptr: ir.CI(11), Size: 8}, L2: MemLoc{Ptr: ir.CI(12), Size: 8}}
	asker := &fakeModule{name: "asker", modref: func(q *ModRefQuery, h Handle) ModRefResponse {
		h.PremiseAlias(sub)
		return ModRefFact(NoModRef, "asker")
	}}
	o := NewOrchestrator(Config{
		Modules:       []Module{asker, solver},
		IsolatePanics: true,
		EnableCache:   true,
		Shared:        sc,
	})
	r := o.ModRef(&ModRefQuery{})
	if r.Result != NoModRef {
		t.Errorf("result = %s", r.Result)
	}
	if a, m := sc.Len(); a != 0 || m != 0 {
		t.Errorf("shared cache has %d/%d entries after premise panic", a, m)
	}
	// asker is consulted twice per top-level query (its own ModRef plus the
	// premise alias audience); a memoized root would leave the count at 2.
	o.ModRef(&ModRefQuery{})
	if asker.queried != 4 {
		t.Errorf("asker queried %d times, want 4; panic-tainted root must not be memoized", asker.queried)
	}
}

func TestPanicEmitsTraceEvent(t *testing.T) {
	boom := &fakeModule{name: "boom", alias: func(q *AliasQuery, h Handle) AliasResponse {
		panic("kaboom")
	}}
	var events []TraceEvent
	tr := tracerFunc(func(e TraceEvent) { events = append(events, e) })
	o := NewOrchestrator(Config{Modules: []Module{boom}, IsolatePanics: true, Tracer: tr})
	o.Alias(aq())
	var found bool
	for _, e := range events {
		if e.Kind == TraceModulePanic {
			found = true
			if e.Module != "boom" || !strings.Contains(e.Prop, "kaboom") {
				t.Errorf("panic event = %+v", e)
			}
		}
	}
	if !found {
		t.Error("no TraceModulePanic event emitted")
	}
}

type tracerFunc func(TraceEvent)

func (f tracerFunc) TraceEvent(e TraceEvent) { f(e) }

// specModuleFor answers NoAlias for exactly one proposition, predicated on
// the given assertion (always-speculative for everything else).
func specModuleFor(name string, q *AliasQuery, a Assertion) *fakeModule {
	want := keyOfAlias(q)
	return &fakeModule{name: name, alias: func(qq *AliasQuery, h Handle) AliasResponse {
		if keyOfAlias(qq) == want {
			return AliasSpec(NoAlias, name, a)
		}
		return MayAliasResponse()
	}}
}

func aqN(i int64) *AliasQuery {
	return &AliasQuery{
		L1: MemLoc{Ptr: ir.CI(2*i + 101), Size: 8},
		L2: MemLoc{Ptr: ir.CI(2*i + 102), Size: 8},
	}
}

func TestSharedCacheInvalidateIsExact(t *testing.T) {
	q1, q2, q3 := aqN(1), aqN(2), aqN(3)
	a1 := Assertion{Module: "spec", Kind: "k1", Cost: 5}
	a2 := Assertion{Module: "spec", Kind: "k2", Cost: 7}
	m1 := specModuleFor("spec1", q1, a1)
	m2 := specModuleFor("spec2", q2, a2)
	free := &fakeModule{name: "free", alias: func(qq *AliasQuery, h Handle) AliasResponse {
		if keyOfAlias(qq) == keyOfAlias(q3) {
			return AliasFact(NoAlias, "free")
		}
		return MayAliasResponse()
	}}
	sc := NewSharedCache()
	o := NewOrchestrator(Config{Modules: []Module{m1, m2, free}, Shared: sc})
	o.Alias(q1)
	o.Alias(q2)
	o.Alias(q3)
	if a, _ := sc.Len(); a != 3 {
		t.Fatalf("published %d entries, want 3", a)
	}
	if sc.IndexedAsserts() != 2 {
		t.Fatalf("indexed asserts = %d, want 2 (the free answer must not be indexed)", sc.IndexedAsserts())
	}

	inv := sc.InvalidateAsserts([]string{a1.String()})
	if inv.Total() != 1 || len(inv.Alias) != 1 {
		t.Fatalf("invalidated %d entries, want exactly 1", inv.Total())
	}
	got := inv.Alias[0]
	if got.L1 != q1.L1 || got.L2 != q1.L2 || got.Desired != AnyAlias {
		t.Errorf("reconstructed query = %+v, want %+v", got, q1)
	}
	if a, _ := sc.Len(); a != 2 {
		t.Errorf("len after invalidate = %d, want 2 (q2 and q3 untouched)", a)
	}
	if _, ok, _ := sc.getAlias(keyOfAlias(q2), nil, false); !ok {
		t.Error("entry for an unrelated assertion was invalidated")
	}
	if _, ok, _ := sc.getAlias(keyOfAlias(q3), nil, false); !ok {
		t.Error("assertion-free entry was invalidated")
	}
	if _, ok, _ := sc.getAlias(keyOfAlias(q1), nil, false); ok {
		t.Error("invalidated entry still served")
	}
	// Invalidating the same key again finds nothing.
	if again := sc.InvalidateAsserts([]string{a1.String()}); again.Total() != 0 {
		t.Errorf("second invalidation removed %d entries", again.Total())
	}
}

func TestSharedCacheRevokerBlocksLookupAndPut(t *testing.T) {
	q1 := aqN(10)
	a1 := Assertion{Module: "spec", Kind: "rv", Cost: 3}
	sc := NewSharedCache()
	rev := newStubRevoker()
	sc.SetRevoker(rev)

	o := NewOrchestrator(Config{Modules: []Module{specModuleFor("spec", q1, a1)}, Shared: sc})
	o.Alias(q1)
	if _, ok, _ := sc.getAlias(keyOfAlias(q1), nil, false); !ok {
		t.Fatal("entry not published")
	}
	rev.Revoke(a1.String())
	if _, ok, _ := sc.getAlias(keyOfAlias(q1), nil, false); ok {
		t.Error("lookup served an answer predicated on a revoked assertion")
	}

	// Put-time: a fresh publication predicated on the revoked assertion is
	// dropped, and does not block an assertion-free replacement.
	sc2 := NewSharedCache()
	sc2.SetRevoker(rev)
	o2 := NewOrchestrator(Config{Modules: []Module{specModuleFor("spec", q1, a1)}, Shared: sc2})
	o2.Alias(q1)
	if a, _ := sc2.Len(); a != 0 {
		t.Errorf("revoked-at-put entry was published (%d entries)", a)
	}
}

func TestSharedCacheFlush(t *testing.T) {
	sc := NewSharedCache()
	q1 := aqN(20)
	a1 := Assertion{Module: "spec", Kind: "fl", Cost: 1}
	o := NewOrchestrator(Config{Modules: []Module{specModuleFor("spec", q1, a1)}, Shared: sc})
	o.Alias(q1)
	if a, m := sc.Flush(); a != 1 || m != 0 {
		t.Errorf("Flush removed %d/%d, want 1/0", a, m)
	}
	if a, m := sc.Len(); a != 0 || m != 0 {
		t.Errorf("cache non-empty after flush: %d/%d", a, m)
	}
	if sc.IndexedAsserts() != 0 {
		t.Errorf("index non-empty after flush: %d", sc.IndexedAsserts())
	}
}

// Satellite: under -race, the SharedCache must never serve an answer
// predicated on an assertion that was observably quarantined before the
// lookup started. Revocation is monotonic, so "revoked-before-get implies
// miss" is the exact invariant; 16 workers query/publish while one
// goroutine revokes and invalidates.
func TestSharedCacheQuarantineRace(t *testing.T) {
	const nkeys = 64
	sc := NewSharedCache()
	rev := newStubRevoker()
	sc.SetRevoker(rev)

	asserts := make([]string, nkeys)
	keys := make([]aliasKey, nkeys)
	resps := make([]AliasResponse, nkeys)
	for i := range keys {
		a := Assertion{Module: "spec", Kind: fmt.Sprintf("race-%d", i), Cost: 1}
		asserts[i] = a.String()
		keys[i] = keyOfAlias(aqN(int64(100 + i)))
		resps[i] = AliasSpec(NoAlias, "spec", a)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; ; it++ {
				select {
				case <-stop:
					return
				default:
				}
				i := (it*7 + w) % nkeys
				revokedBefore := rev.RevokedAssert(asserts[i])
				if _, ok, _ := sc.getAlias(keys[i], nil, false); ok {
					if revokedBefore {
						t.Errorf("key %d: served an answer predicated on an already-revoked assertion", i)
						return
					}
				} else {
					sc.putAlias(keys[i], resps[i])
				}
			}
		}(w)
	}

	for i := 0; i < nkeys; i++ {
		rev.Revoke(asserts[i])
		sc.InvalidateAsserts([]string{asserts[i]})
	}
	close(stop)
	wg.Wait()

	// Everything is revoked now: no lookup may hit, whatever the racing
	// workers re-published.
	for i := range keys {
		if _, ok, _ := sc.getAlias(keys[i], nil, false); ok {
			t.Errorf("key %d still served after revocation", i)
		}
	}
}
