package core

import (
	"fmt"
	"time"

	"scaf/internal/ir"
)

// TraceEventKind enumerates the orchestration events a Tracer can observe.
// Each kind fires at exactly the point the matching Stats counter (when one
// exists) is incremented, so trace-derived totals always reconcile with the
// aggregate counters: TraceTopStart ↔ TopQueries, TracePremiseStart ↔
// PremiseQueries, TraceConsult ↔ ModuleEvals, TraceCacheHit ↔ CacheHits,
// TraceSharedHit ↔ SharedHits, TraceCycleBreak ↔ CycleBreaks,
// TraceDepthLimit ↔ DepthLimits, TraceTimeout ↔ Timeouts,
// TraceModulePanic ↔ ModulePanics.
type TraceEventKind int

const (
	// TraceTopStart opens a top-level client query.
	TraceTopStart TraceEventKind = iota
	// TraceTopEnd closes a top-level query with its joined answer and
	// wall-clock duration.
	TraceTopEnd
	// TracePremiseStart opens a nested premise resolution (From names the
	// module that asked).
	TracePremiseStart
	// TracePremiseEnd closes a premise resolution with its answer.
	TracePremiseEnd
	// TraceConsult records one module evaluation: the module's own answer
	// (before joining) and its wall-clock cost.
	TraceConsult
	// TraceCacheHit marks the current resolution as served from the
	// per-orchestrator memo table.
	TraceCacheHit
	// TraceSharedHit marks the current resolution as served from the
	// cross-orchestrator SharedCache.
	TraceSharedHit
	// TraceCycleBreak marks a premise re-asking an in-flight proposition,
	// answered conservatively.
	TraceCycleBreak
	// TraceDepthLimit marks a premise rejected at Config.MaxDepth.
	TraceDepthLimit
	// TraceTimeout marks the moment the top-level query exceeded
	// Config.Timeout (at most once per top-level query).
	TraceTimeout
	// TraceModulePanic marks a module evaluation that panicked and was
	// converted into a conservative answer (Config.IsolatePanics). Module
	// names the offender; Prop carries the recovered panic value.
	TraceModulePanic
)

func (k TraceEventKind) String() string {
	switch k {
	case TraceTopStart:
		return "top_start"
	case TraceTopEnd:
		return "top_end"
	case TracePremiseStart:
		return "premise_start"
	case TracePremiseEnd:
		return "premise_end"
	case TraceConsult:
		return "consult"
	case TraceCacheHit:
		return "cache_hit"
	case TraceSharedHit:
		return "shared_hit"
	case TraceCycleBreak:
		return "cycle_break"
	case TraceDepthLimit:
		return "depth_limit"
	case TraceTimeout:
		return "timeout"
	case TraceModulePanic:
		return "module_panic"
	}
	return fmt.Sprintf("trace_kind_%d", int(k))
}

// TraceEvent is one orchestration event. Fields are populated per kind;
// unused fields are zero. Events between a TraceTopStart and its matching
// TraceTopEnd describe one top-level query's resolution tree:
// premise start/end pairs nest, consults attach to the innermost open
// resolution.
type TraceEvent struct {
	Kind TraceEventKind
	// Alias distinguishes alias (true) from mod-ref (false) propositions.
	Alias bool
	// Prop is a human-readable proposition description (start, cache,
	// cycle-break events).
	Prop string
	// Depth is the premise nesting depth (0 for top-level events).
	Depth int
	// From names the module that issued the premise ("" for the client).
	From string
	// Module names the consulted module (TraceConsult only).
	Module string
	// Result is the answer's lattice point (consult and end events).
	Result string
	// Cost is the answer's cheapest-option validation cost (consult and
	// top-end events; MinCost's empty-set sentinel when no option exists).
	Cost float64
	// Dur is wall-clock time (consult and top-end events).
	Dur time.Duration
	// Contribs lists contributing modules (top-end events).
	Contribs []string
	// TimedOut reports that the search was cut short (top-end events).
	TimedOut bool
}

// Tracer observes query resolution. Implementations must be cheap and must
// not retain the event's slices beyond the call without copying. A Tracer
// is confined to one orchestrator (orchestrators are single-goroutine);
// parallel clients attach one tracer per worker and merge afterwards.
//
// The hook contract is nil-safe and allocation-free when disabled: with
// Config.Tracer nil the orchestrator skips all event construction — the
// query hot path pays only a pointer test per site.
type Tracer interface {
	TraceEvent(TraceEvent)
}

// describe renders the proposition an alias query asks about.
func (q *AliasQuery) describe() string {
	s := fmt.Sprintf("alias %s ~ %s [%s]", q.L1, q.L2, q.Rel)
	if q.Desired != AnyAlias {
		s += " want " + q.Desired.String()
	}
	if q.Loop != nil {
		s += " in " + q.Loop.Name()
	}
	return s
}

// describe renders the proposition a mod-ref query asks about.
func (q *ModRefQuery) describe() string {
	var s string
	if q.I2 != nil {
		s = fmt.Sprintf("modref %s vs %s [%s]", fmtInstr(q.I1), fmtInstr(q.I2), q.Rel)
	} else {
		s = fmt.Sprintf("modref %s vs %s [%s]", fmtInstr(q.I1), q.Loc, q.Rel)
	}
	if q.Loop != nil {
		s += " in " + q.Loop.Name()
	}
	return s
}

func fmtInstr(in *ir.Instr) string {
	if in == nil {
		return "?"
	}
	return ir.FormatInstr(in)
}

func moduleName(m Module) string {
	if m == nil {
		return ""
	}
	return m.Name()
}
