package core

import "scaf/internal/ir"

// Decomp is a pointer expressed as base + byte offset. KnownOff is false
// when the chain contains a non-constant index, in which case Off holds
// only the constant part.
type Decomp struct {
	Base     ir.Value
	Off      int64
	KnownOff bool
}

// Decompose walks Index/Field/Bitcast chains back to the underlying base
// value, accumulating constant byte offsets — the shared vocabulary most
// analysis modules reason in.
func Decompose(p ir.Value) Decomp {
	d := Decomp{Base: p, KnownOff: true}
	for {
		in, ok := d.Base.(*ir.Instr)
		if !ok {
			return d
		}
		switch in.Op {
		case ir.OpIndex:
			elem := ir.Pointee(in.Ty)
			if c, isConst := ir.ConstIntValue(in.Args[1]); isConst {
				d.Off += c * elem.Size()
			} else {
				d.KnownOff = false
			}
			d.Base = in.Args[0]
		case ir.OpField:
			st := ir.Pointee(in.Args[0].Type()).(*ir.StructType)
			d.Off += st.Fields[in.FieldIdx].Offset
			d.Base = in.Args[0]
		case ir.OpCast:
			if in.Cast != ir.Bitcast {
				return d
			}
			d.Base = in.Args[0]
		default:
			return d
		}
	}
}

// IsAllocationBase reports whether v directly names a fresh allocation:
// an Alloca or Malloc instruction, or a Global.
func IsAllocationBase(v ir.Value) bool {
	switch x := v.(type) {
	case *ir.Global:
		return true
	case *ir.Instr:
		return x.IsAllocation()
	}
	return false
}

// BaseObjectSize returns the byte size of the object v allocates, if
// statically known.
func BaseObjectSize(v ir.Value) (int64, bool) {
	switch x := v.(type) {
	case *ir.Global:
		return x.Elem.Size(), true
	case *ir.Instr:
		switch x.Op {
		case ir.OpAlloca:
			return x.ElemTy.Size(), true
		case ir.OpMalloc:
			if n, ok := ir.ConstIntValue(x.Args[0]); ok {
				return n, true
			}
		}
	}
	return 0, false
}

// UnderlyingBases collects the set of possible decomposed bases of p,
// looking through phi nodes transitively. complete is false when the walk
// hit the limit or an unresolvable merge, meaning the set may be missing
// bases and only positive (membership) conclusions are sound.
func UnderlyingBases(p ir.Value, limit int) (bases []ir.Value, complete bool) {
	// Explicit DFS with stack-backed scratch: the walk is hot (every
	// object-based alias module calls it per query) and base sets are
	// tiny, so a linear-scanned seen list and a value stack avoid the map
	// and closure allocations of the recursive formulation. Traversal
	// order matches the recursive walk exactly: a frame's phi arguments
	// are visited in order, depth-first.
	type frame struct {
		v     ir.Value
		depth int
	}
	var stackArr [16]frame
	var seenArr [16]ir.Value
	stack, seen := stackArr[:0], seenArr[:0]
	complete = true
	stack = append(stack, frame{p, 0})
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.depth > limit {
			complete = false
			continue
		}
		d := Decompose(f.v)
		dup := false
		for _, s := range seen {
			if s == d.Base {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		seen = append(seen, d.Base)
		if in, ok := d.Base.(*ir.Instr); ok && in.Op == ir.OpPhi {
			for i := len(in.Args) - 1; i >= 0; i-- { // reversed: stack pops restore arg order
				stack = append(stack, frame{in.Args[i], f.depth + 1})
			}
			continue
		}
		bases = append(bases, d.Base)
	}
	return bases, complete
}
