package core

import "scaf/internal/ir"

// Decomp is a pointer expressed as base + byte offset. KnownOff is false
// when the chain contains a non-constant index, in which case Off holds
// only the constant part.
type Decomp struct {
	Base     ir.Value
	Off      int64
	KnownOff bool
}

// Decompose walks Index/Field/Bitcast chains back to the underlying base
// value, accumulating constant byte offsets — the shared vocabulary most
// analysis modules reason in.
func Decompose(p ir.Value) Decomp {
	d := Decomp{Base: p, KnownOff: true}
	for {
		in, ok := d.Base.(*ir.Instr)
		if !ok {
			return d
		}
		switch in.Op {
		case ir.OpIndex:
			elem := ir.Pointee(in.Ty)
			if c, isConst := ir.ConstIntValue(in.Args[1]); isConst {
				d.Off += c * elem.Size()
			} else {
				d.KnownOff = false
			}
			d.Base = in.Args[0]
		case ir.OpField:
			st := ir.Pointee(in.Args[0].Type()).(*ir.StructType)
			d.Off += st.Fields[in.FieldIdx].Offset
			d.Base = in.Args[0]
		case ir.OpCast:
			if in.Cast != ir.Bitcast {
				return d
			}
			d.Base = in.Args[0]
		default:
			return d
		}
	}
}

// IsAllocationBase reports whether v directly names a fresh allocation:
// an Alloca or Malloc instruction, or a Global.
func IsAllocationBase(v ir.Value) bool {
	switch x := v.(type) {
	case *ir.Global:
		return true
	case *ir.Instr:
		return x.IsAllocation()
	}
	return false
}

// BaseObjectSize returns the byte size of the object v allocates, if
// statically known.
func BaseObjectSize(v ir.Value) (int64, bool) {
	switch x := v.(type) {
	case *ir.Global:
		return x.Elem.Size(), true
	case *ir.Instr:
		switch x.Op {
		case ir.OpAlloca:
			return x.ElemTy.Size(), true
		case ir.OpMalloc:
			if n, ok := ir.ConstIntValue(x.Args[0]); ok {
				return n, true
			}
		}
	}
	return 0, false
}

// UnderlyingBases collects the set of possible decomposed bases of p,
// looking through phi nodes transitively. complete is false when the walk
// hit the limit or an unresolvable merge, meaning the set may be missing
// bases and only positive (membership) conclusions are sound.
func UnderlyingBases(p ir.Value, limit int) (bases []ir.Value, complete bool) {
	seen := map[ir.Value]bool{}
	complete = true
	var walk func(v ir.Value, depth int)
	walk = func(v ir.Value, depth int) {
		if depth > limit {
			complete = false
			return
		}
		d := Decompose(v)
		if seen[d.Base] {
			return
		}
		if in, ok := d.Base.(*ir.Instr); ok && in.Op == ir.OpPhi {
			seen[d.Base] = true
			for _, a := range in.Args {
				walk(a, depth+1)
			}
			return
		}
		if !seen[d.Base] {
			seen[d.Base] = true
			bases = append(bases, d.Base)
		}
	}
	walk(p, 0)
	return bases, complete
}
