//go:build !race

package core

// raceEnabled reports that this test binary was built with -race; see
// race_test.go for why allocation-count assertions check it.
const raceEnabled = false
